(* Validator for spatialdb-profile/1 documents (see Scdb_profile) and
   for the profile/attribution surface of compiled-engine reports.

   Usage:
     validate_profile --profile FILE     standalone profile document
     validate_profile --report FILE      spatialdb-report/4 document

   Exits 1 with a message on the first violation.

   --profile checks:
   - schema must be "spatialdb-profile/1", mode counting|timing,
     engine vm|vm-opt;
   - the pcs table must cover every instruction (length == the
     "instructions" count — the symbolization contract is total, a pc
     the compiler emitted but the profiler cannot attribute is a bug),
     in strictly ascending pc order;
   - every count must be a non-negative integer and every ns finite and
     non-negative (a NaN serializes as null and fails the number
     check); counting mode must carry zero ns everywhere;
   - the per-pc counts must sum to total_instructions_executed, and the
     per-opcode and per-node rollups must both re-sum to the same
     totals (count and ns) — the three views are projections of one
     measurement, not independent estimates;
   - every pcs[].node must appear in the nodes[] rollup, and every
     pcs[].tag in its node's tags.

   --report checks:
   - schema must be "spatialdb-report/4" with an "engine" argument;
   - every cost_attribution row must carry a "tags" array;
   - under a compiled engine (vm, vm-opt) the "profile" block must be
     present and pass all the --profile checks above, and under vm-opt
     at least one attribution row must carry a rewrite tag (the
     optimizer fired on the Figure 1 fixtures; a tagless vm-opt report
     means the symbolization table lost the provenance).

   `make ci` runs both forms on fresh smoke artifacts. *)

module J = Scdb_trace.Json_min

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("validate_profile: " ^ m); exit 1) fmt

let get name = function Some v -> v | None -> fail "missing field %s" name

let num name v =
  match J.to_float v with
  | Some x when Float.is_finite x -> x
  | _ -> fail "field %s is not a finite number" name

let str name v = match J.to_string v with Some s -> s | None -> fail "field %s is not a string" name

let arr name v = match J.to_list v with Some l -> l | None -> fail "field %s is not an array" name

let count_of name v =
  let x = num name v in
  if x < 0.0 || Float.rem x 1.0 <> 0.0 then fail "field %s is not a non-negative integer" name;
  x

let ns_of name v =
  let x = num name v in
  if x < 0.0 then fail "field %s is negative" name;
  x

let check_profile doc =
  (match J.to_string (get "schema" (J.member "schema" doc)) with
  | Some "spatialdb-profile/1" -> ()
  | Some other -> fail "unexpected profile schema %S" other
  | None -> fail "profile schema is not a string");
  let engine = str "engine" (get "engine" (J.member "engine" doc)) in
  if engine <> "vm" && engine <> "vm-opt" then fail "unexpected engine %S" engine;
  let mode = str "mode" (get "mode" (J.member "mode" doc)) in
  if mode <> "counting" && mode <> "timing" then fail "unexpected mode %S" mode;
  let instructions =
    count_of "instructions" (get "instructions" (J.member "instructions" doc))
  in
  let total_exec =
    count_of "total_instructions_executed"
      (get "total_instructions_executed" (J.member "total_instructions_executed" doc))
  in
  let total_ns =
    ns_of "total_profiled_ns" (get "total_profiled_ns" (J.member "total_profiled_ns" doc))
  in
  let pcs = arr "pcs" (get "pcs" (J.member "pcs" doc)) in
  (* Totality: one row per emitted instruction, ascending. *)
  if List.length pcs <> int_of_float instructions then
    fail "pcs table has %d rows but the program has %g instructions (missing pcs)"
      (List.length pcs) instructions;
  let last_pc = ref (-1) in
  let pc_count = ref 0.0 and pc_ns = ref 0.0 in
  let node_tags = Hashtbl.create 16 in
  let nodes = arr "nodes" (get "nodes" (J.member "nodes" doc)) in
  List.iteri
    (fun i row ->
      let id = int_of_float (count_of "nodes[].id" (get "nodes[].id" (J.member "id" row))) in
      let tags =
        List.map (fun t -> str "nodes[].tags[]" t) (arr "nodes[].tags" (get "nodes[].tags" (J.member "tags" row)))
      in
      ignore i;
      Hashtbl.replace node_tags id tags)
    nodes;
  List.iteri
    (fun i row ->
      let ctx = Printf.sprintf "pcs[%d]" i in
      let pc = int_of_float (count_of (ctx ^ ".pc") (get (ctx ^ ".pc") (J.member "pc" row))) in
      if pc <= !last_pc then fail "%s.pc %d breaks ascending pc order (after %d)" ctx pc !last_pc;
      last_pc := pc;
      let node =
        int_of_float (count_of (ctx ^ ".node") (get (ctx ^ ".node") (J.member "node" row)))
      in
      let tags =
        match Hashtbl.find_opt node_tags node with
        | Some t -> t
        | None -> fail "%s maps to node %d which is absent from the nodes rollup" ctx node
      in
      (match J.member "tag" row with
      | Some (J.Str t) ->
          if not (List.mem t tags) then
            fail "%s carries tag %S but node %d's rollup does not" ctx t node
      | Some J.Null | None -> ()
      | Some _ -> fail "%s.tag is neither a string nor null" ctx);
      let c = count_of (ctx ^ ".count") (get (ctx ^ ".count") (J.member "count" row)) in
      let n = ns_of (ctx ^ ".ns") (get (ctx ^ ".ns") (J.member "ns" row)) in
      if mode = "counting" && n <> 0.0 then
        fail "%s has %g ns in counting mode (should be 0)" ctx n;
      pc_count := !pc_count +. c;
      pc_ns := !pc_ns +. n)
    pcs;
  if !pc_count <> total_exec then
    fail "per-pc counts sum to %g but total_instructions_executed is %g" !pc_count total_exec;
  if Float.abs (!pc_ns -. total_ns) > 0.5 then
    fail "per-pc ns sum to %g but total_profiled_ns is %g" !pc_ns total_ns;
  let sum_rollup what rows =
    List.fold_left
      (fun (c, n) row ->
        let cf = Printf.sprintf "%s.count" what and nf = Printf.sprintf "%s.ns" what in
        ( c +. count_of cf (get cf (J.member "count" row)),
          n +. ns_of nf (get nf (J.member "ns" row)) ))
      (0.0, 0.0) rows
  in
  let op_count, op_ns =
    sum_rollup "opcodes[]" (arr "opcodes" (get "opcodes" (J.member "opcodes" doc)))
  in
  if op_count <> total_exec then
    fail "per-opcode counts sum to %g but total_instructions_executed is %g" op_count total_exec;
  if Float.abs (op_ns -. total_ns) > 0.5 then
    fail "per-opcode ns sum to %g but total_profiled_ns is %g" op_ns total_ns;
  let node_count, node_ns =
    List.fold_left
      (fun (c, n) row ->
        ( c +. count_of "nodes[].instructions" (get "nodes[].instructions" (J.member "instructions" row)),
          n +. ns_of "nodes[].ns" (get "nodes[].ns" (J.member "ns" row)) ))
      (0.0, 0.0) nodes
  in
  if node_count <> total_exec then
    fail "per-node counts sum to %g but total_instructions_executed is %g" node_count total_exec;
  if Float.abs (node_ns -. total_ns) > 0.5 then
    fail "per-node ns sum to %g but total_profiled_ns is %g" node_ns total_ns;
  engine

let check_report doc =
  (match J.to_string (get "schema" (J.member "schema" doc)) with
  | Some "spatialdb-report/4" -> ()
  | Some other -> fail "unexpected report schema %S" other
  | None -> fail "report schema is not a string");
  let args = get "args" (J.member "args" doc) in
  let engine = str "args.engine" (get "args.engine" (J.member "engine" args)) in
  let attribution =
    arr "cost_attribution" (get "cost_attribution" (J.member "cost_attribution" doc))
  in
  if attribution = [] then fail "cost_attribution is empty";
  let tagged = ref 0 in
  List.iteri
    (fun i row ->
      let ctx = Printf.sprintf "cost_attribution[%d]" i in
      let tags = arr (ctx ^ ".tags") (get (ctx ^ ".tags") (J.member "tags" row)) in
      if tags <> [] then incr tagged)
    attribution;
  match engine with
  | "interp" -> (
      match J.member "profile" doc with
      | Some J.Null | None -> ()
      | Some _ -> fail "interp report carries a profile block")
  | "vm" | "vm-opt" -> (
      match J.member "profile" doc with
      | Some J.Null | None -> fail "%s report is missing its profile block" engine
      | Some p ->
          let p_engine = check_profile p in
          if p_engine <> engine then
            fail "report engine %s but profile engine %s" engine p_engine;
          if engine = "vm-opt" && !tagged = 0 then
            fail "vm-opt report has no attribution row with rewrite tags")
  | e -> fail "unexpected args.engine %S" e

let () =
  let usage () = fail "usage: validate_profile (--profile | --report) FILE" in
  let kind, file =
    match List.tl (Array.to_list Sys.argv) with
    | [ "--profile"; f ] -> (`Profile, f)
    | [ "--report"; f ] -> (`Report, f)
    | _ -> usage ()
  in
  let ic = try open_in file with Sys_error m -> fail "%s" m in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let doc = try J.parse s with J.Parse_error m -> fail "%s: invalid JSON: %s" file m in
  (match kind with
  | `Profile -> ignore (check_profile doc)
  | `Report -> check_report doc);
  Printf.printf "validate_profile: %s OK\n" file
