(* Perf-regression harness: self-contained kernel benchmarks with
   seed-implementation baselines, emitting BENCH_<n>.json so successive
   PRs can track the trajectory of the hot paths.

   Usage:
     dune exec bench/regress.exe                 write BENCH_<next>.json
     dune exec bench/regress.exe -- -o out.json  explicit output file
     dune exec bench/regress.exe -- --fast       cheaper calibration
     dune exec bench/regress.exe -- --check BENCH_1.json
                                                 exit 1 if any kernel is
                                                 more than 2x slower than
                                                 the given baseline
     dune exec bench/regress.exe -- --trend [FILES...]
                                                 walk the committed
                                                 BENCH_<n>.json trajectory
                                                 (all of them when no FILES
                                                 are given) and exit 1 on
                                                 machine-normalized drift;
                                                 see --trend-threshold,
                                                 --trend-ref, --trend-floor

   Timing runs execute with telemetry disabled (the disabled path is
   what production pays); a separate exercise phase then re-runs the
   probabilistic kernels with telemetry on and embeds the JSON snapshot
   under the "telemetry" key, so BENCH_<n>.json carries acceptance-rate
   and step-count trajectories alongside ns/op.

   Each kernel is measured as median ns/op over several trials; the
   naive/seed baselines replicate the pre-optimization implementations
   (limb-only bigints, chord recomputation, copying lattice steps) so
   the speedup of the incremental kernels and small-int fast paths is
   visible inside a single run. *)

module P = Scdb_polytope.Polytope
module HR = Scdb_sampling.Hit_and_run
module W = Scdb_sampling.Walk
module G = Scdb_sampling.Grid
module FM = Scdb_qe.Fourier_motzkin
module Rng = Scdb_rng.Rng
module Rej = Scdb_sampling.Rejection
module Tel = Scdb_telemetry.Telemetry
module J = Scdb_trace.Json_min

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

type result = { name : string; ns_per_op : float; ops : int; trials : int }

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n land 1 = 1 then a.(n / 2) else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))

(* [f ()] performs [ops] operations of the kernel under test. *)
let measure ~fast ~name ~ops f =
  let target = if fast then 0.01 else 0.05 in
  let trials = if fast then 5 else 9 in
  (* Calibrate the repeat count so one trial takes ~[target] seconds. *)
  let rec calibrate reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= target /. 2.0 || reps > 1_000_000 then (reps, dt) else calibrate (reps * 2)
  in
  let reps, _ = calibrate 1 in
  let samples = ref [] in
  for _ = 1 to trials do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    samples := (dt *. 1e9 /. float_of_int (reps * ops)) :: !samples
  done;
  { name; ns_per_op = median !samples; ops; trials }

(* ------------------------------------------------------------------ *)
(* Seed-implementation baselines                                       *)
(* ------------------------------------------------------------------ *)

(* The seed generator: xoshiro256** with the state in mutable [int64]
   record fields.  Same algorithm and bit stream as the current
   [Rng.t], but every state store re-boxes an int64, which is exactly
   the cost the bytes-backed representation removed — so this replica
   is the honest baseline for anything direction-draw-bound. *)
module Seed_rng = struct
  type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

  let splitmix64 state =
    let open Int64 in
    state := add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let create seed =
    let state = ref (Int64.of_int seed) in
    let s0 = splitmix64 state in
    let s1 = splitmix64 state in
    let s2 = splitmix64 state in
    let s3 = splitmix64 state in
    { s0; s1; s2; s3 }

  let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

  let bits64 t =
    let open Int64 in
    let result = mul (rotl (mul t.s1 5L) 7) 9L in
    let tmp = shift_left t.s1 17 in
    t.s2 <- logxor t.s2 t.s0;
    t.s3 <- logxor t.s3 t.s1;
    t.s1 <- logxor t.s1 t.s2;
    t.s0 <- logxor t.s0 t.s3;
    t.s2 <- logxor t.s2 tmp;
    t.s3 <- rotl t.s3 45;
    result

  let float t =
    let x = Int64.shift_right_logical (bits64 t) 11 in
    Int64.to_float x *. 0x1p-53

  let uniform t lo hi = lo +. ((hi -. lo) *. float t)
  let bool t = Int64.logand (bits64 t) 1L = 1L

  let int t bound =
    let mask = Int64.of_int max_int in
    let rec go () =
      let x = Int64.to_int (Int64.logand (bits64 t) mask) in
      let r = x mod bound in
      if x - r > max_int - bound + 1 then go () else r
    in
    go ()

  let gaussian t =
    let rec go () =
      let u = uniform t (-1.0) 1.0 and v = uniform t (-1.0) 1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || s = 0.0 then go () else u *. sqrt (-2.0 *. log s /. s)
    in
    go ()

  let unit_vector t d =
    let rec go () =
      let v = Vec.init d (fun _ -> gaussian t) in
      let n = Vec.norm v in
      if n < 1e-12 then go () else Vec.scale (1.0 /. n) v
    in
    go ()
end

(* The pre-flat chord: per-row Vec.dot against the row-pointer matrix,
   recomputing both A·dir and A·x from scratch (seed
   Polytope.line_intersection). *)
let seed_line_intersection (poly : P.t) x dir =
  let tmin = ref neg_infinity and tmax = ref infinity in
  Array.iteri
    (fun i row ->
      let denom = Vec.dot row dir in
      let slack = poly.P.b.(i) -. Vec.dot row x in
      if Float.abs denom < 1e-14 then begin
        if slack < 0.0 then begin
          tmin := infinity;
          tmax := neg_infinity
        end
      end
      else if denom > 0.0 then tmax := Float.min !tmax (slack /. denom)
      else tmin := Float.max !tmin (slack /. denom))
    poly.P.a;
  if !tmin > !tmax then None else Some (!tmin, !tmax)

(* The seed hit-and-run step: allocating direction draws off the
   record-state generator, chord recomputed from scratch per step,
   position advanced through a fresh Vec.axpy (seed
   Hit_and_run.sample with the seed polytope chord). *)
let seed_hit_and_run_sample rng poly ~start ~steps =
  let dim = Vec.dim start in
  let current = ref (Vec.copy start) in
  for _ = 1 to steps do
    let dir = Seed_rng.unit_vector rng dim in
    match seed_line_intersection poly !current dir with
    | None -> ()
    | Some (lo, hi) ->
        if hi > lo && Float.is_finite lo && Float.is_finite hi then
          current := Vec.axpy (Seed_rng.uniform rng lo hi) dir !current
  done;
  !current

(* The seed lattice step: copy the index vector, materialize the float
   point, evaluate the full membership oracle. *)
let seed_walk_sample rng ~grid ~mem ~start ~steps =
  let start_idx = G.of_point grid start in
  let current = ref start_idx in
  for _ = 1 to steps do
    if not (Seed_rng.bool rng) then begin
      let dim = (grid : G.t).dim in
      let coord = Seed_rng.int rng dim in
      let delta = if Seed_rng.bool rng then 1 else -1 in
      let candidate = Array.copy !current in
      candidate.(coord) <- candidate.(coord) + delta;
      if mem (G.to_point grid candidate) then current := candidate
    end
  done;
  G.to_point grid !current

(* Seed Rational.add: textbook cross-multiplication plus a full
   canonicalizing gcd, every Bigint operation on the limb-only path. *)
let seed_rational_add (a : Rational.t) (b : Rational.t) =
  let open Bigint.Reference in
  let num = add (mul a.Rational.num b.Rational.den) (mul b.Rational.num a.Rational.den) in
  let den = mul a.Rational.den b.Rational.den in
  let g = gcd num den in
  Rational.make (fst (divmod num g)) (fst (divmod den g))

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let fixture_polytope ~dim ~extra rng =
  (* [-1,1]^dim cut by [extra] random halfspaces at distance 0.8, so the
     origin stays comfortably inside. *)
  let poly = ref (P.cube dim 1.0) in
  for _ = 1 to extra do
    poly := P.add_halfspace !poly (Rng.unit_vector rng dim) 0.8
  done;
  !poly

(* ------------------------------------------------------------------ *)
(* Telemetry exercise                                                  *)
(* ------------------------------------------------------------------ *)

(* Re-run the probabilistic kernels with collection on: hit-and-run and
   the lattice walk on the timing fixture, naive rejection on a 2-D
   body, and Algorithm 1 (sample + Karp–Luby volume) on a two-box
   union.  The resulting snapshot is the per-run stats block that
   BENCH_<n>.json carries alongside the timings. *)
let telemetry_snapshot ~poly ~grid ~centre =
  Tel.reset ();
  Tel.set_enabled true;
  let rng = Rng.create 7_2026 in
  for _ = 1 to 16 do
    ignore (HR.sample_polytope rng poly ~start:centre ~steps:32);
    ignore (W.sample_polytope rng ~grid poly ~start:centre ~steps:64)
  done;
  let tri x = (x.(0) *. x.(0)) +. (x.(1) *. x.(1)) <= 1.0 in
  ignore
    (Rej.sample_many rng ~lo:[| -1.0; -1.0 |] ~hi:[| 1.0; 1.0 |] ~mem:tri ~count:256
       ~max_attempts:10_000);
  let q = Rational.of_int in
  let mk lo hi = Convex_obs.make ~config:Convex_obs.practical_config rng (Relation.box lo hi) in
  (match (mk [| q 0; q 0 |] [| q 1; q 1 |], mk [| q 2; q 0 |] [| q 3; q 1 |]) with
  | Some a, Some b ->
      let u = Union.union2 a b in
      let params = Params.make ~gamma:0.05 ~eps:0.3 ~delta:0.2 () in
      for _ = 1 to 64 do
        ignore (Observable.sample u rng params)
      done;
      ignore (Observable.volume u rng ~eps:0.3 ~delta:0.2)
  | _ -> ());
  (* Compiled-engine exercise: strict-VM draws on the same two-box
     union, so the per-instruction vm.op.* counters ride along in the
     snapshot next to the sampler counters they explain. *)
  (let rng = Rng.create 8_2026 in
   let vars = [ "x"; "y" ] in
   let formula =
     "(0 <= x /\\ x <= 1 /\\ 0 <= y /\\ y <= 1) \\/ (2 <= x /\\ x <= 3 /\\ 0 <= y /\\ y <= 1)"
   in
   let relation = Relation.of_formula ~dim:2 (Parser.parse ~vars formula) in
   match
     Scdb_gis.Plan_exec.compiled_of_relation ~config:Convex_obs.practical_config ~gamma:0.05
       ~eps:0.3 ~delta:0.2 ~task:(Scdb_plan.Plan.Sample 64) rng relation
   with
   | Some (_, Ok prog) -> ignore (Scdb_vm.Vm.sample_many prog rng ~n:64)
   | _ -> ());
  let json = Tel.dump ~only_nonzero:true () in
  Tel.set_enabled false;
  json

(* ------------------------------------------------------------------ *)
(* Plan calibration                                                    *)
(* ------------------------------------------------------------------ *)

(* Execute the Figure 1 two-piece union through the plan-tagged
   pipeline (Scdb_gis.Plan_exec) and embed the predicted-vs-actual
   cost attribution, so the cost model's calibration trajectory rides
   along in BENCH_<n>.json like the telemetry does.  Rows carry
   id/op/predicted/actual/ratio — no "name"/"ns_per_op" keys, so the
   --check baseline scanner skips the block naturally. *)
let plan_calibration ~fast =
  let module Plan_exec = Scdb_gis.Plan_exec in
  let module Progress = Scdb_progress.Progress in
  let rng = Rng.create 11_2026 in
  let vars = [ "x"; "y" ] in
  let formula =
    "(x >= 0 /\\ y >= 0 /\\ x + y <= 1) \\/ (x >= 2 /\\ x <= 3 /\\ y >= 0 /\\ y <= 1)"
  in
  let relation = Relation.of_formula ~dim:2 (Parser.parse ~vars formula) in
  let n = if fast then 16 else 64 in
  match
    Plan_exec.observable_of_relation ~config:Convex_obs.practical_config ~gamma:0.05 ~eps:0.3
      ~delta:0.2 ~task:(Scdb_plan.Plan.Sample n) rng relation
  with
  | None -> "null"
  | Some (plan, obs) ->
      Plan_exec.arm plan;
      let params = Params.make ~gamma:0.05 ~eps:0.3 ~delta:0.2 () in
      for _ = 1 to n do
        ignore (Observable.sample obs rng params)
      done;
      let attribution = Plan_exec.attribution plan in
      Progress.stop ();
      let root = attribution.(0) in
      Printf.printf "plan calibration: root %s actual/predicted %.2fx over %d nodes\n"
        root.Plan_exec.op root.Plan_exec.ratio (Array.length attribution);
      Plan_exec.attribution_json attribution

(* ------------------------------------------------------------------ *)
(* Engine comparison                                                   *)
(* ------------------------------------------------------------------ *)

(* End-to-end draws/sec on the Figure 1 two-piece union, per execution
   engine: the observable interpreter, the strict VM (bit-exact mirror)
   and the optimized VM (cost-based plan rewrites).  Construction and
   the one-time Karp–Luby weight estimation are warmed out of the
   measurement — the gate is about the per-draw hot path.  Paired-min
   estimator for the same reason as [dirbound_gate]: scheduler noise
   only adds time. *)
let engine_sweep ~fast =
  let module Plan_exec = Scdb_gis.Plan_exec in
  let module Vm = Scdb_vm.Vm in
  let vars = [ "x"; "y" ] in
  let formula =
    "(x >= 0 /\\ y >= 0 /\\ x + y <= 1) \\/ (x >= 2 /\\ x <= 3 /\\ y >= 0 /\\ y <= 1)"
  in
  let relation = Relation.of_formula ~dim:2 (Parser.parse ~vars formula) in
  let gamma = 0.05 and eps = 0.3 and delta = 0.2 in
  let config = Convex_obs.practical_config in
  let task = Scdb_plan.Plan.Sample 1 in
  let params = Params.make ~gamma ~eps ~delta () in
  let interp =
    let rng = Rng.create 13_2026 in
    match Plan_exec.observable_of_relation ~config ~gamma ~eps ~delta ~task rng relation with
    | None -> failwith "engine sweep: union fixture is empty"
    | Some (_, obs) -> fun () -> ignore (Observable.sample_exn obs rng params)
  in
  let compiled optimize =
    let rng = Rng.create 13_2026 in
    match
      Plan_exec.compiled_of_relation ~config ~optimize ~gamma ~eps ~delta ~task rng relation
    with
    | None -> failwith "engine sweep: union fixture is empty"
    | Some (_, Error m) -> failwith ("engine sweep: union fixture does not compile: " ^ m)
    | Some (_, Ok prog) -> fun () -> ignore (Vm.sample_one prog rng)
  in
  let vm = compiled false and vm_opt = compiled true in
  let draws = List.map (fun (_, d) -> d) [ ("interp", interp); ("vm", vm); ("vm-opt", vm_opt) ] in
  (* Warm: first draw runs the cached volume estimation / prologues. *)
  List.iter (fun d -> d ()) draws;
  let rounds = if fast then 7 else 9 in
  let per_round = if fast then 200 else 600 in
  let mins = Array.make 3 infinity in
  for _ = 1 to rounds do
    List.iteri
      (fun i d ->
        let t0 = Unix.gettimeofday () in
        for _ = 1 to per_round do
          d ()
        done;
        let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int per_round in
        if ns < mins.(i) then mins.(i) <- ns)
      draws
  done;
  let interp_ns = mins.(0) and vm_ns = mins.(1) and vm_opt_ns = mins.(2) in
  Printf.printf "\nend-to-end union draws/sec per engine (paired min):\n";
  List.iteri
    (fun i name ->
      Printf.printf "  %-8s %10.1f ns/draw  %12.0f draws/sec  %5.2fx vs interp\n" name mins.(i)
        (1e9 /. mins.(i)) (interp_ns /. mins.(i)))
    [ "interp"; "vm"; "vm-opt" ];
  let json =
    Printf.sprintf
      "{\"interp_ns_per_draw\": %.3f, \"vm_ns_per_draw\": %.3f, \"vm_opt_ns_per_draw\": %.3f, \
       \"vm_speedup\": %.3f, \"vm_opt_speedup\": %.3f}"
      interp_ns vm_ns vm_opt_ns (interp_ns /. vm_ns) (interp_ns /. vm_opt_ns)
  in
  (json, interp_ns /. vm_opt_ns)

(* ------------------------------------------------------------------ *)
(* Profiler overhead                                                   *)
(* ------------------------------------------------------------------ *)

(* The instruction profiler's contract is "cheap enough to leave on":
   counting mode is allocation-free array bumps, timing mode reads the
   monotonic clock only around the kernel opcodes (walk, ensure,
   member).  Measured on the strict VM over the Figure 1 union — the
   walk-bound engine whose ~10 us draws are what a profiled production
   run actually executes; under --check the timing overhead is gated at
   5%.  Paired-min estimator for the same reason as [dirbound_gate]. *)
let profile_overhead ~fast =
  let module Plan_exec = Scdb_gis.Plan_exec in
  let module Vm = Scdb_vm.Vm in
  let module Profile = Scdb_profile.Profile in
  let vars = [ "x"; "y" ] in
  let formula =
    "(x >= 0 /\\ y >= 0 /\\ x + y <= 1) \\/ (x >= 2 /\\ x <= 3 /\\ y >= 0 /\\ y <= 1)"
  in
  let relation = Relation.of_formula ~dim:2 (Parser.parse ~vars formula) in
  let rng = Rng.create 17_2026 in
  match
    Plan_exec.compiled_of_relation ~config:Convex_obs.practical_config ~gamma:0.05 ~eps:0.3
      ~delta:0.2 ~task:(Scdb_plan.Plan.Sample 1) rng relation
  with
  | None | Some (_, Error _) -> ("null", 1.0)
  | Some (_, Ok prog) ->
      let counting = Profile.create ~mode:Profile.Counting prog in
      let timing = Profile.create ~mode:Profile.Timing prog in
      let plain () = ignore (Vm.sample_one prog rng) in
      let count () = ignore (Profile.sample_one counting rng) in
      let time () = ignore (Profile.sample_one timing rng) in
      (* Warm: the first draw runs the cached weight estimation. *)
      plain ();
      let rounds = if fast then 7 else 9 in
      let per_round = if fast then 150 else 400 in
      let mins = [| infinity; infinity; infinity |] in
      for _ = 1 to rounds do
        List.iteri
          (fun i d ->
            let t0 = Unix.gettimeofday () in
            for _ = 1 to per_round do
              d ()
            done;
            let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int per_round in
            if ns < mins.(i) then mins.(i) <- ns)
          [ plain; count; time ]
      done;
      let c_ov = mins.(1) /. mins.(0) and t_ov = mins.(2) /. mins.(0) in
      Printf.printf
        "\nprofiler overhead on the strict VM (paired min): unprofiled %.1f ns/draw, counting \
         %.1f (%.3fx), timing %.1f (%.3fx)\n"
        mins.(0) mins.(1) c_ov mins.(2) t_ov;
      ( Printf.sprintf
          "{\"unprofiled_ns_per_draw\": %.3f, \"counting_ns_per_draw\": %.3f, \
           \"timing_ns_per_draw\": %.3f, \"counting_overhead\": %.4f, \"timing_overhead\": \
           %.4f}"
          mins.(0) mins.(1) mins.(2) c_ov t_ov,
        t_ov )

(* ------------------------------------------------------------------ *)
(* Observability-context overhead                                      *)
(* ------------------------------------------------------------------ *)

(* The observability contexts' contract is that the contexted counter
   hot path costs the same as the old global one: with only the
   initial domain holding an installed registry, [with_registry]
   swap the metric cell pointers in place, so a bump is the identical
   load-compare-increment sequence either way.  Measured as paired-min
   ns per enabled counter bump, global registry vs a context's
   registry installed; gated at 1.10x under --check. *)
let ctx_overhead ~fast =
  let c = Tel.Counter.make "bench.ctx_overhead" in
  let was = Tel.enabled () in
  Tel.set_enabled true;
  let reg = Tel.Registry.create () in
  let n = if fast then 200_000 else 1_000_000 in
  let plain () =
    for _ = 1 to n do
      Tel.Counter.incr c
    done
  in
  let ctxed () =
    Tel.with_registry reg (fun () ->
        for _ = 1 to n do
          Tel.Counter.incr c
        done)
  in
  plain ();
  ctxed ();
  let rounds = if fast then 7 else 9 in
  let mins = [| infinity; infinity |] in
  for _ = 1 to rounds do
    List.iteri
      (fun i d ->
        let t0 = Unix.gettimeofday () in
        d ();
        let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n in
        if ns < mins.(i) then mins.(i) <- ns)
      [ plain; ctxed ]
  done;
  Tel.set_enabled was;
  let ov = mins.(1) /. mins.(0) in
  Printf.printf
    "\ncontexted counter bump (paired min): global %.3f ns, context installed %.3f ns (%.3fx)\n"
    mins.(0) mins.(1) ov;
  ( Printf.sprintf
      "{\"global_ns_per_bump\": %.4f, \"ctx_ns_per_bump\": %.4f, \"ctx_overhead\": %.4f}"
      mins.(0) mins.(1) ov,
    ov )

(* ------------------------------------------------------------------ *)
(* Perf-trend ledger (--trend)                                         *)
(* ------------------------------------------------------------------ *)

(* Walk the committed BENCH_<n>.json trajectory and flag silent drifts.

   Raw ns/op is machine-dependent: the committed files were written on
   different (or differently loaded) boxes, and the fixed seed-replica
   kernels alone swing by up to ~1.4x across the trajectory.  Every
   metric is therefore normalized by a reference kernel measured in the
   same file (--trend-ref, default hit_and_run.step.seed — a frozen
   implementation that can only move with the machine): the ratio
   cancels machine speed and leaves genuine relative regressions.

   A metric FAILS when its latest normalized value exceeds
   --trend-threshold times the MEDIAN of its normalized series — the
   code ended slower, relative to the machine it ran on, than its
   typical trajectory level by more than the threshold.  The median
   (not the minimum) is the baseline deliberately: the reference
   kernel itself jitters run to run, and one file whose reference
   happened to run slow deflates every normalized value in that file
   by the same common-mode factor — a minimum baseline is poisoned
   forever by a single such file (BENCH_7 set chord.seed's minimum
   ~30% below every other file in the trajectory, which would have
   made any honest later file fail), while the median shrugs off
   outlier files in either direction as long as they stay a minority.
   The tradeoff is a weaker ratchet — a regression already present in
   more than half the trajectory lifts the median with it — but the
   paired --check gate (2x vs the immediate predecessor) covers the
   step-regression case, and consecutive-step jumps above the
   threshold that later recovered are still reported as DRIFT
   warnings without failing.

   Metrics that never exceed --trend-floor (default 50 ns/op) in any
   file are skipped: a single-word bigint add runs in a handful of
   nanoseconds, where timer granularity and loop overhead swamp any
   real trend, and a sub-floor kernel that genuinely regressed past the
   floor re-enters the ledger by construction (the skip keys off the
   series MAXIMUM, not its last value). *)

let trend_fail fmt = Printf.ksprintf (fun m -> prerr_endline ("regress --trend: " ^ m); exit 2) fmt

let bench_index f =
  let base = Filename.basename f in
  let pre = "BENCH_" and suf = ".json" in
  let lp = String.length pre and ls = String.length suf in
  let lb = String.length base in
  if lb > lp + ls && String.sub base 0 lp = pre && String.sub base (lb - ls) ls = suf then
    int_of_string_opt (String.sub base lp (lb - lp - ls))
  else None

let trend_table file =
  let ic = try open_in file with Sys_error m -> trend_fail "%s" m in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let doc = try J.parse s with J.Parse_error m -> trend_fail "%s: invalid JSON: %s" file m in
  let rows =
    match Option.bind (J.member "results" doc) J.to_list with
    | Some l -> l
    | None -> trend_fail "%s: no results array" file
  in
  List.filter_map
    (fun row ->
      match
        ( Option.bind (J.member "name" row) J.to_string,
          Option.bind (J.member "ns_per_op" row) J.to_float )
      with
      | Some name, Some ns when Float.is_finite ns && ns > 0.0 -> Some (name, ns)
      | _ -> None)
    rows

let trend ~files ~threshold ~ref_name ~floor_ns =
  let files =
    match files with
    | _ :: _ -> files
    | [] ->
        Sys.readdir "." |> Array.to_list
        |> List.filter_map (fun f -> Option.map (fun i -> (i, f)) (bench_index f))
        |> List.sort compare |> List.map snd
  in
  if List.length files < 2 then
    trend_fail "need at least 2 BENCH files to compare (got %d)" (List.length files);
  let raw = List.map (fun f -> (f, trend_table f)) files in
  let norm =
    List.map
      (fun (f, tbl) ->
        match List.assoc_opt ref_name tbl with
        | Some r when r > 0.0 -> (f, List.map (fun (n, v) -> (n, v /. r)) tbl)
        | _ -> trend_fail "%s has no usable %s row to normalize by" f ref_name)
      raw
  in
  (* Metrics in first-appearance order, present in >= 2 files; the
     reference normalizes to 1.0 everywhere so it is skipped. *)
  let names =
    List.fold_left
      (fun acc (_, tbl) ->
        List.fold_left
          (fun acc (n, _) -> if n = ref_name || List.mem n acc then acc else acc @ [ n ])
          acc tbl)
      [] norm
  in
  Printf.printf "perf trend over %d file(s), normalized by %s, threshold %.2fx:\n"
    (List.length files) ref_name threshold;
  Printf.printf "  %s\n" (String.concat " -> " files);
  let failures = ref 0 and drifts = ref 0 and floored = ref 0 in
  List.iter
    (fun name ->
      let raw_series =
        List.filter_map (fun (_, tbl) -> List.assoc_opt name tbl) raw
      in
      let sub_floor =
        raw_series <> [] && List.fold_left Float.max 0.0 raw_series < floor_ns
      in
      if sub_floor then incr floored;
      let series =
        if sub_floor then []
        else List.filter_map (fun (_, tbl) -> List.assoc_opt name tbl) norm
      in
      match series with
      | [] | [ _ ] -> ()
      | vs ->
          let med =
            let a = List.sort compare vs in
            let n = List.length a in
            if n mod 2 = 1 then List.nth a (n / 2)
            else (List.nth a ((n / 2) - 1) +. List.nth a (n / 2)) /. 2.0
          in
          let last = List.nth vs (List.length vs - 1) in
          let ratio = last /. med in
          let step_drift =
            let rec go = function
              | a :: (b :: _ as rest) -> (b /. a > threshold) || go rest
              | _ -> false
            in
            go vs
          in
          let verdict =
            if ratio > threshold then begin
              incr failures;
              "FAIL"
            end
            else if step_drift then begin
              incr drifts;
              "DRIFT"
            end
            else "ok"
          in
          if verdict <> "ok" || ratio > 1.0 +. ((threshold -. 1.0) /. 2.0) then
            Printf.printf "  %-36s [%s]  last/med %5.2fx  %s\n" name
              (String.concat " " (List.map (Printf.sprintf "%.3f") vs))
              ratio verdict)
    names;
  if !floored > 0 then
    Printf.printf "%d metric(s) below the %.0f ns noise floor skipped (see --trend-floor)\n"
      !floored floor_ns;
  if !drifts > 0 then
    Printf.printf "%d metric(s) drifted past %.2fx mid-trajectory but recovered\n" !drifts
      threshold;
  if !failures > 0 then begin
    Printf.printf
      "%d metric(s) ended more than %.2fx above their trajectory median (machine-normalized)\n"
      !failures threshold;
    exit 1
  end
  else Printf.printf "no metric ends more than %.2fx above its trajectory minimum\n" threshold

(* ------------------------------------------------------------------ *)
(* Convergence diagnostics                                             *)
(* ------------------------------------------------------------------ *)

(* Multi-chain hit-and-run diagnostics on the timing fixture: ESS,
   split R-hat and the verdict ride along in BENCH_<n>.json so mixing
   regressions are as visible as ns/op regressions. *)
let diagnostics_block ~fast ~poly =
  let rng = Rng.create 9_2026 in
  let samples_per_chain = if fast then 32 else Diag_run.default_samples_per_chain in
  match Diag_run.run ~samples_per_chain rng poly with
  | None -> "null"
  | Some d ->
      Printf.printf "diagnostics: max split R-hat %.4f, %s\n"
        (Array.fold_left Float.max 1.0 d.Diag_run.rhat)
        (if d.Diag_run.verdict.Scdb_diag.Diag.converged then "converged" else "NOT converged");
      Diag_run.to_json d

(* ------------------------------------------------------------------ *)
(* Baseline comparison (--check)                                       *)
(* ------------------------------------------------------------------ *)

(* Minimal scanner for the self-emitted format: pull every
   {"name": "...", "ns_per_op": X} pair out of the results array.  The
   embedded telemetry block contains neither key, so it is skipped
   naturally. *)
let parse_baseline file =
  let ic = open_in file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let out = ref [] in
  let i = ref 0 in
  let find_from pat start =
    let pl = String.length pat in
    let rec go j =
      if j + pl > String.length s then None
      else if String.sub s j pl = pat then Some (j + pl)
      else go (j + 1)
    in
    go start
  in
  let rec loop () =
    match find_from "{\"name\": \"" !i with
    | None -> ()
    | Some j -> (
        let close = String.index_from s j '"' in
        let name = String.sub s j (close - j) in
        match find_from "\"ns_per_op\": " close with
        | None -> ()
        | Some k ->
            let e = ref k in
            while
              !e < String.length s
              && (match s.[!e] with '0' .. '9' | '.' | '-' | 'e' | '+' -> true | _ -> false)
            do
              incr e
            done;
            out := (name, float_of_string (String.sub s k (!e - k))) :: !out;
            i := !e;
            loop ())
  in
  loop ();
  List.rev !out

let check_against ~baseline results =
  let base = parse_baseline baseline in
  let failures = ref 0 in
  Printf.printf "\ncheck vs %s (fail if > 2.00x):\n" baseline;
  List.iter
    (fun r ->
      match List.assoc_opt r.name base with
      | None -> Printf.printf "  %-34s (no baseline, skipped)\n" r.name
      | Some b ->
          let ratio = r.ns_per_op /. b in
          let flag = if ratio > 2.0 then "FAIL" else "ok" in
          if ratio > 2.0 then incr failures;
          Printf.printf "  %-34s %8.1f vs %8.1f ns/op  %5.2fx  %s\n" r.name r.ns_per_op b ratio flag)
    results;
  if !failures > 0 then begin
    Printf.printf "%d kernel(s) regressed more than 2x vs %s\n" !failures baseline;
    exit 1
  end
  else Printf.printf "all kernels within 2x of %s\n" baseline

let run ~fast ~out ~check ~metrics_out =
  (* Timings measure the disabled-telemetry path — what production pays. *)
  Tel.set_enabled false;
  let rng = Rng.create 20060101 in
  let seed_rng = Seed_rng.create 20060101 in
  let dim = 12 in
  let poly = fixture_polytope ~dim ~extra:48 rng in
  let centre = Vec.create dim in
  let grid = G.make ~step:0.0625 ~dim in
  let hr_steps = 32 and walk_steps = 64 in
  let mem x = P.mem poly x in
  (* Small-operand exact arithmetic fixtures. *)
  let sa = Bigint.of_int 123_456_789 and sb = Bigint.of_int 987_654_321 in
  let qa = Rational.of_ints 355 113 and qb = Rational.of_ints 113 355 in
  let big_a = Bigint.pow (Bigint.of_int 3) 400 and big_b = Bigint.pow (Bigint.of_int 7) 300 in
  let simplex4_tuple = List.concat (Relation.tuples (Relation.standard_simplex 4)) in
  let dir = Rng.unit_vector rng dim in
  let cursor = P.Kernel.make poly centre in
  let batched_bench k =
    let rngs = Array.init k (fun i -> Rng.create (777 + i)) in
    let starts = Array.init k (fun _ -> Vec.create dim) in
    measure ~fast
      ~name:(Printf.sprintf "hit_and_run.step.batched.K%d" k)
      ~ops:(k * hr_steps)
      (fun () -> ignore (HR.sample_polytope_batch rngs poly ~starts ~steps:hr_steps))
  in
  (* Direction-bound companion fixture: the standard simplex at the
     same dimension.  With m = dim+1 rows the per-draw cost is
     dominated by the direction draw, so this sweep isolates what
     batching actually buys (per-draw overhead amortization plus the
     ziggurat direction stream) — the 72-row union fixture above is
     flop-bound: its O(m·d) chord scan is per-chain work that no
     batching can amortize, capping its K16 speedup well below 2x (see
     EXPERIMENTS.md).  Longer invocations amortize batch setup to
     noise. *)
  let sdim = 16 in
  let spoly = P.simplex sdim in
  let scentroid = Array.make sdim (1.0 /. float_of_int (sdim + 1)) in
  let dirbound_steps = 256 in
  let batched_dirbound_bench k =
    let rngs = Array.init k (fun i -> Rng.create (4242 + i)) in
    let starts = Array.init k (fun _ -> Vec.copy scentroid) in
    measure ~fast
      ~name:(Printf.sprintf "hit_and_run.step.batched.dirbound.K%d" k)
      ~ops:(k * dirbound_steps)
      (fun () -> ignore (HR.sample_polytope_batch rngs spoly ~starts ~steps:dirbound_steps))
  in
  (* The K16-vs-K1 scaling gate gets its own paired measurement:
     interleaved rounds and a min estimator (scheduler noise only ever
     adds time, so the min is the stable per-draw cost — the medians
     above can catch a noise spike on one side of the ratio and flake
     the gate on a loaded box). *)
  let dirbound_gate () =
    let rounds = if fast then 7 else 9 in
    let steps = dirbound_steps in
    let rngs1 = [| Rng.create 5151 |] in
    let starts1 = [| Vec.copy scentroid |] in
    let rngs16 = Array.init 16 (fun i -> Rng.create (6161 + i)) in
    let starts16 = Array.init 16 (fun _ -> Vec.copy scentroid) in
    let reps1 = 32 and reps16 = 4 in
    let min1 = ref infinity and min16 = ref infinity in
    for _ = 1 to rounds do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps1 do
        ignore (HR.sample_polytope_batch rngs1 spoly ~starts:starts1 ~steps)
      done;
      let t1 = Unix.gettimeofday () in
      for _ = 1 to reps16 do
        ignore (HR.sample_polytope_batch rngs16 spoly ~starts:starts16 ~steps)
      done;
      let t2 = Unix.gettimeofday () in
      let ns1 = (t1 -. t0) *. 1e9 /. float_of_int (reps1 * steps) in
      let ns16 = (t2 -. t1) *. 1e9 /. float_of_int (reps16 * 16 * steps) in
      if ns1 < !min1 then min1 := ns1;
      if ns16 < !min16 then min16 := ns16
    done;
    (!min1, !min16, !min1 /. !min16)
  in
  let results =
    [
      measure ~fast ~name:"hit_and_run.step.seed" ~ops:hr_steps (fun () ->
          ignore (seed_hit_and_run_sample seed_rng poly ~start:centre ~steps:hr_steps));
      measure ~fast ~name:"hit_and_run.step.naive" ~ops:hr_steps (fun () ->
          ignore (HR.sample rng ~chord:(HR.polytope_chord poly) ~start:centre ~steps:hr_steps));
      measure ~fast ~name:"hit_and_run.step.incremental" ~ops:hr_steps (fun () ->
          ignore (HR.sample_polytope rng poly ~start:centre ~steps:hr_steps));
      (* Batched SoA kernel at K chains: ns per chain-step (one draw),
         so draws/sec = 1e9 / ns_per_op.  Production defaults per K:
         Compat (polar) directions at K=1, Fast (ziggurat) at K>1. *)
      batched_bench 1;
      batched_bench 2;
      batched_bench 4;
      batched_bench 8;
      batched_bench 16;
      batched_dirbound_bench 1;
      batched_dirbound_bench 2;
      batched_dirbound_bench 4;
      batched_dirbound_bench 8;
      batched_dirbound_bench 16;
      measure ~fast ~name:"walk.step.seed" ~ops:walk_steps (fun () ->
          ignore (seed_walk_sample seed_rng ~grid ~mem ~start:centre ~steps:walk_steps));
      measure ~fast ~name:"walk.step.incremental" ~ops:walk_steps (fun () ->
          ignore (W.sample_polytope rng ~grid poly ~start:centre ~steps:walk_steps));
      measure ~fast ~name:"chord.seed" ~ops:1 (fun () ->
          ignore (seed_line_intersection poly centre dir));
      measure ~fast ~name:"chord.flat" ~ops:1 (fun () -> ignore (P.line_intersection poly centre dir));
      measure ~fast ~name:"chord.incremental" ~ops:1 (fun () -> ignore (P.Kernel.chord cursor dir));
      measure ~fast ~name:"bigint.add.small" ~ops:1 (fun () -> ignore (Bigint.add sa sb));
      measure ~fast ~name:"bigint.add.small.limb" ~ops:1 (fun () ->
          ignore (Bigint.Reference.add sa sb));
      measure ~fast ~name:"bigint.mul.small" ~ops:1 (fun () -> ignore (Bigint.mul sa sb));
      measure ~fast ~name:"bigint.mul.small.limb" ~ops:1 (fun () ->
          ignore (Bigint.Reference.mul sa sb));
      measure ~fast ~name:"bigint.gcd.small" ~ops:1 (fun () -> ignore (Bigint.gcd sa sb));
      measure ~fast ~name:"bigint.gcd.small.limb" ~ops:1 (fun () ->
          ignore (Bigint.Reference.gcd sa sb));
      measure ~fast ~name:"bigint.mul.big" ~ops:1 (fun () -> ignore (Bigint.mul big_a big_b));
      measure ~fast ~name:"rational.add.small" ~ops:1 (fun () -> ignore (Rational.add qa qb));
      measure ~fast ~name:"rational.add.small.seed" ~ops:1 (fun () ->
          ignore (seed_rational_add qa qb));
      measure ~fast ~name:"rational.mul.small" ~ops:1 (fun () -> ignore (Rational.mul qa qb));
      measure ~fast ~name:"fm.eliminate_var(simplex4)" ~ops:1 (fun () ->
          ignore (FM.eliminate_var_tuple ~prune:false 3 simplex4_tuple));
    ]
  in
  (* Report. *)
  Printf.printf "%-34s  %12s\n" "kernel" "median ns/op";
  Printf.printf "%s\n" (String.make 48 '-');
  List.iter (fun r -> Printf.printf "%-34s  %12.1f\n" r.name r.ns_per_op) results;
  let find n = List.find (fun r -> r.name = n) results in
  let speedup slow fastk =
    let s = (find slow).ns_per_op /. (find fastk).ns_per_op in
    Printf.printf "speedup %-28s %6.2fx  (%s -> %s)\n" fastk s slow fastk;
    s
  in
  print_newline ();
  let checks =
    [
      speedup "hit_and_run.step.seed" "hit_and_run.step.incremental";
      speedup "walk.step.seed" "walk.step.incremental";
      speedup "chord.seed" "chord.incremental";
      speedup "bigint.mul.small.limb" "bigint.mul.small";
      speedup "bigint.add.small.limb" "bigint.add.small";
      speedup "rational.add.small.seed" "rational.add.small";
    ]
  in
  List.iter (fun s -> if s < 2.0 then Printf.printf "WARNING: speedup %.2fx below the 2x target\n" s) checks;
  (* Draws/sec vs K on both fixtures: the batched kernel's scaling
     headline.  The direction-bound K16 throughput is the acceptance
     gate — enforced under --check; the flop-bound union sweep rides
     along so chord-dominated scaling regressions stay visible too. *)
  let batch_ks = [ 1; 2; 4; 8; 16 ] in
  let sweep_of prefix =
    List.map (fun k -> find (Printf.sprintf "%s.K%d" prefix k)) batch_ks
  in
  let print_sweep label rs =
    Printf.printf "\nbatched hit-and-run draws/sec vs K (%s):\n" label;
    let k1_ns = (List.hd rs).ns_per_op in
    List.iter2
      (fun k r ->
        Printf.printf "  K=%-3d %8.1f ns/draw  %12.0f draws/sec  %5.2fx\n" k r.ns_per_op
          (1e9 /. r.ns_per_op) (k1_ns /. r.ns_per_op))
      batch_ks rs
  in
  let union_results = sweep_of "hit_and_run.step.batched" in
  let dirbound_results = sweep_of "hit_and_run.step.batched.dirbound" in
  print_sweep "union fixture, flop-bound" union_results;
  print_sweep "simplex fixture, direction-bound" dirbound_results;
  let gate_k1_ns, gate_k16_ns, batch_speedup_k16 = dirbound_gate () in
  Printf.printf
    "\ndirbound scaling gate (paired min): K1 %.1f ns/draw, K16 %.1f ns/draw, %.2fx\n"
    gate_k1_ns gate_k16_ns batch_speedup_k16;
  let sweep_json rs =
    let k1_ns = (List.hd rs).ns_per_op in
    "[\n      "
    ^ String.concat ",\n      "
        (List.map2
           (fun k r ->
             Printf.sprintf
               "{\"chains\": %d, \"ns_per_draw\": %.3f, \"draws_per_sec\": %.0f, \
                \"speedup_vs_k1\": %.3f}"
               k r.ns_per_op (1e9 /. r.ns_per_op) (k1_ns /. r.ns_per_op))
           batch_ks rs)
    ^ "\n    ]"
  in
  let batch_sweep_json =
    Printf.sprintf
      "{\n\
      \    \"union\": %s,\n\
      \    \"dirbound_simplex\": %s,\n\
      \    \"dirbound_gate\": {\"k1_ns_per_draw\": %.3f, \"k16_ns_per_draw\": %.3f, \
       \"k16_speedup\": %.3f}\n\
      \  }"
      (sweep_json union_results) (sweep_json dirbound_results) gate_k1_ns gate_k16_ns
      batch_speedup_k16
  in
  (* Per-run stats block: the probabilistic kernels observed end to end. *)
  let telemetry = telemetry_snapshot ~poly ~grid ~centre in
  (* The counters the snapshot accumulated are still in the registry, so
     the Prometheus exposition is just a second rendering of them. *)
  (match metrics_out with
  | None -> ()
  | Some path ->
      Scdb_log.Metrics_export.write_file ~path;
      Printf.printf "wrote %s\n" path);
  let calibration = plan_calibration ~fast in
  let engine_json, vm_opt_speedup = engine_sweep ~fast in
  let overhead_json, timing_overhead = profile_overhead ~fast in
  let ctx_json, ctx_ov = ctx_overhead ~fast in
  let diagnostics = diagnostics_block ~fast ~poly in
  (* JSON out. *)
  let oc = open_out out in
  Printf.fprintf oc "{\n  \"schema\": \"spatialdb-bench/7\",\n  \"results\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc "    {\"name\": %S, \"ns_per_op\": %.3f, \"trials\": %d}%s\n" r.name
        r.ns_per_op r.trials
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc
    "  ],\n\
    \  \"batch_sweep\": %s,\n\
    \  \"plan_calibration\": %s,\n\
    \  \"engine_sweep\": %s,\n\
    \  \"profile_overhead\": %s,\n\
    \  \"ctx_overhead\": %s,\n\
    \  \"telemetry\": %s,\n\
    \  \"diagnostics\": %s\n\
     }\n"
    batch_sweep_json (String.trim calibration) (String.trim engine_json)
    (String.trim overhead_json) (String.trim ctx_json) (String.trim telemetry)
    (String.trim diagnostics);
  close_out oc;
  Printf.printf "\nwrote %s\n" out;
  Option.iter
    (fun baseline ->
      check_against ~baseline results;
      (* Scaling gate: on the direction-bound fixture the batched
         kernel must hold >= 2x draws/sec at K=16 over K=1, on top of
         the per-kernel 2x-slower gate above.  (The union fixture is
         not gated at 2x: its per-chain O(m·d) chord flops dominate and
         cannot amortize across chains, so its honest ceiling is lower
         — its sweep is still recorded and covered by the per-kernel
         regression check.) *)
      if batch_speedup_k16 < 2.0 then begin
        Printf.printf
          "FAIL: batched K16 draws/sec only %.2fx of K1 on the direction-bound fixture (gate: \
           >= 2x)\n"
          batch_speedup_k16;
        exit 1
      end
      else
        Printf.printf
          "batched K16 draws/sec %.2fx of K1 on the direction-bound fixture (gate: >= 2x)\n"
          batch_speedup_k16;
      (* Compiled-engine gate: the optimized VM must hold >= 2x end-to-end
         draws/sec over the interpreter on the union fixture.  The strict
         VM is informational only — it mirrors the interpreter's RNG
         stream instruction for instruction, so its win is dispatch
         overhead, not algorithmic. *)
      if vm_opt_speedup < 2.0 then begin
        Printf.printf
          "FAIL: vm-opt draws/sec only %.2fx of interp on the union fixture (gate: >= 2x)\n"
          vm_opt_speedup;
        exit 1
      end
      else
        Printf.printf "vm-opt draws/sec %.2fx of interp on the union fixture (gate: >= 2x)\n"
          vm_opt_speedup;
      (* Profiler gate: timing mode must stay within 5% of the
         unprofiled strict VM on the union fixture, so leaving the
         profiler attached to a diagnostic run never distorts what it
         measures.  Counting mode is strictly cheaper and rides along
         uninstrumented. *)
      if timing_overhead > 1.05 then begin
        Printf.printf
          "FAIL: timing-mode profiler overhead %.3fx on the strict VM (gate: <= 1.05x)\n"
          timing_overhead;
        exit 1
      end
      else
        Printf.printf "timing-mode profiler overhead %.3fx on the strict VM (gate: <= 1.05x)\n"
          timing_overhead;
      (* Context gate: installing an observability context must not
         slow the counter hot path — the sentinel-swap design makes
         the contexted bump the same instruction sequence as the
         global one, so anything past 1.10x means the fast path
         regressed. *)
      if ctx_ov > 1.10 then begin
        Printf.printf
          "FAIL: contexted counter bump %.3fx of the global path (gate: <= 1.10x)\n" ctx_ov;
        exit 1
      end
      else
        Printf.printf "contexted counter bump %.3fx of the global path (gate: <= 1.10x)\n"
          ctx_ov)
    check

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let fast = List.mem "--fast" args in
  let rec after flag = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> after flag rest
    | [] -> None
  in
  if List.mem "--trend" args then begin
    let threshold =
      match after "--trend-threshold" args with
      | None -> 1.25
      | Some s -> (
          match float_of_string_opt s with
          | Some t when t > 1.0 -> t
          | _ -> trend_fail "--trend-threshold must be a number > 1 (got %S)" s)
    in
    let ref_name = Option.value ~default:"hit_and_run.step.seed" (after "--trend-ref" args) in
    let floor_ns =
      match after "--trend-floor" args with
      | None -> 50.0
      | Some s -> (
          match float_of_string_opt s with
          | Some f when f >= 0.0 -> f
          | _ -> trend_fail "--trend-floor must be a number >= 0 (got %S)" s)
    in
    let value_flags =
      [ "-o"; "--check"; "--metrics-out"; "--trend-threshold"; "--trend-ref"; "--trend-floor" ]
    in
    let rec positionals acc = function
      | [] -> List.rev acc
      | f :: _ :: rest when List.mem f value_flags -> positionals acc rest
      | a :: rest when String.length a > 0 && a.[0] = '-' -> positionals acc rest
      | a :: rest -> positionals (a :: acc) rest
    in
    trend ~files:(positionals [] args) ~threshold ~ref_name ~floor_ns
  end
  else begin
    let check = after "--check" args in
    let metrics_out = after "--metrics-out" args in
    let out =
      match after "-o" args with
      | Some f -> f
      | None ->
          let rec next n =
            let f = Printf.sprintf "BENCH_%d.json" n in
            if Sys.file_exists f then next (n + 1) else f
          in
          next 1
    in
    run ~fast ~out ~check ~metrics_out
  end
