(* Validator for observability artifacts produced by `make ci`:

   Usage: validate_logs [--log FILE] [--metrics FILE]

   --log FILE      a JSON-lines structured log (schema spatialdb-log/1):
                   every line must parse, carry the right schema, a known
                   level, a non-empty event name, an integer span id, a
                   strictly increasing seq and a non-decreasing finite ts;
                   field values must be finite when numeric.
   --metrics FILE  a Prometheus text-format snapshot: every sample line
                   must follow a # TYPE declaration for its metric family,
                   names must match [a-zA-Z_:][a-zA-Z0-9_:]*, values must
                   parse as finite non-NaN numbers, and counter samples
                   (family declared `counter`) must be non-negative.

   Exits 1 with a message on the first violation. *)

module J = Scdb_trace.Json_min

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("validate_logs: " ^ m); exit 1) fmt

let read_file path =
  match open_in path with
  | exception Sys_error m -> fail "%s" m
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s

(* ---------------- structured log ---------------- *)

let levels = [ "debug"; "info"; "warn"; "error" ]

let check_log path =
  let lines =
    String.split_on_char '\n' (read_file path) |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then fail "%s: no log events" path;
  let last_seq = ref (-1) in
  let last_ts = ref neg_infinity in
  List.iteri
    (fun i line ->
      let doc =
        try J.parse line with J.Parse_error m -> fail "%s:%d: invalid JSON: %s" path (i + 1) m
      in
      let get name =
        match J.member name doc with
        | Some v -> v
        | None -> fail "%s:%d: missing field %s" path (i + 1) name
      in
      (match J.to_string (get "schema") with
      | Some "spatialdb-log/1" -> ()
      | Some other -> fail "%s:%d: unexpected schema %S" path (i + 1) other
      | None -> fail "%s:%d: schema is not a string" path (i + 1));
      (match J.to_string (get "level") with
      | Some l when List.mem l levels -> ()
      | Some l -> fail "%s:%d: unknown level %S" path (i + 1) l
      | None -> fail "%s:%d: level is not a string" path (i + 1));
      (match J.to_string (get "event") with
      | Some "" -> fail "%s:%d: empty event name" path (i + 1)
      | Some _ -> ()
      | None -> fail "%s:%d: event is not a string" path (i + 1));
      (match J.to_float (get "span") with
      | Some v when Float.is_integer v -> ()
      | _ -> fail "%s:%d: span is not an integer" path (i + 1));
      (match J.to_float (get "seq") with
      | Some v when Float.is_integer v ->
          let seq = int_of_float v in
          if seq <= !last_seq then
            fail "%s:%d: seq not strictly increasing (%d after %d)" path (i + 1) seq !last_seq;
          last_seq := seq
      | _ -> fail "%s:%d: seq is not an integer" path (i + 1));
      (match J.to_float (get "ts") with
      | Some ts when Float.is_finite ts ->
          if ts < !last_ts then
            fail "%s:%d: ts went backwards (%g after %g)" path (i + 1) ts !last_ts;
          last_ts := ts
      | _ -> fail "%s:%d: ts is not a finite number" path (i + 1));
      match get "fields" with
      | J.Obj kvs ->
          List.iter
            (fun (k, v) ->
              match v with
              | J.Num x when not (Float.is_finite x) ->
                  fail "%s:%d: field %s is not finite" path (i + 1) k
              | _ -> ())
            kvs
      | _ -> fail "%s:%d: fields is not an object" path (i + 1))
    lines;
  Printf.printf "validate_logs: %s OK (%d events)\n" path (List.length lines)

(* ---------------- Prometheus snapshot ---------------- *)

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_name s =
  s <> ""
  && is_name_start s.[0]
  && String.for_all is_name_char s

(* Strip a {label="..."} block if present; quantile labels on summaries. *)
let split_sample line =
  match String.index_opt line '{' with
  | Some i -> (
      match String.rindex_opt line '}' with
      | Some j when j > i ->
          Some (String.sub line 0 i, String.trim (String.sub line (j + 1) (String.length line - j - 1)))
      | _ -> None)
  | None -> (
      match String.index_opt line ' ' with
      | Some i ->
          Some (String.sub line 0 i, String.trim (String.sub line i (String.length line - i)))
      | None -> None)

let check_metrics path =
  let lines = String.split_on_char '\n' (read_file path) in
  (* metric family -> declared type *)
  let types = Hashtbl.create 16 in
  let samples = ref 0 in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      let lineno = i + 1 in
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' (String.sub line 7 (String.length line - 7)) with
        | [ name; ty ] ->
            if not (valid_name name) then fail "%s:%d: invalid metric name %S" path lineno name;
            if not (List.mem ty [ "counter"; "gauge"; "summary"; "histogram"; "untyped" ]) then
              fail "%s:%d: invalid metric type %S" path lineno ty;
            Hashtbl.replace types name ty
        | _ -> fail "%s:%d: malformed TYPE line" path lineno
      end
      else if String.length line >= 1 && line.[0] = '#' then ()
      else begin
        match split_sample line with
        | None -> fail "%s:%d: malformed sample line %S" path lineno line
        | Some (name, value_s) ->
            if not (valid_name name) then fail "%s:%d: invalid metric name %S" path lineno name;
            (* A sample belongs to the family of its TYPE declaration;
               summary samples may carry _sum/_count suffixes. *)
            let family =
              if Hashtbl.mem types name then Some name
              else
                let strip suffix =
                  let n = String.length name and k = String.length suffix in
                  if n > k && String.sub name (n - k) k = suffix then
                    Some (String.sub name 0 (n - k))
                  else None
                in
                match strip "_sum" with
                | Some f when Hashtbl.mem types f -> Some f
                | _ -> (
                    match strip "_count" with
                    | Some f when Hashtbl.mem types f -> Some f
                    | _ -> None)
            in
            let family =
              match family with
              | Some f -> f
              | None -> fail "%s:%d: sample %S has no preceding TYPE declaration" path lineno name
            in
            let v =
              match float_of_string_opt value_s with
              | Some v -> v
              | None -> fail "%s:%d: value %S does not parse" path lineno value_s
            in
            if Float.is_nan v then fail "%s:%d: %s is NaN" path lineno name;
            if not (Float.is_finite v) then fail "%s:%d: %s is not finite" path lineno name;
            if Hashtbl.find types family = "counter" && v < 0.0 then
              fail "%s:%d: counter %s is negative (%g)" path lineno name v;
            incr samples
      end)
    lines;
  if !samples = 0 then fail "%s: no metric samples" path;
  Printf.printf "validate_logs: %s OK (%d samples)\n" path !samples

let () =
  let rec go = function
    | [] -> ()
    | "--log" :: file :: rest ->
        check_log file;
        go rest
    | "--metrics" :: file :: rest ->
        check_metrics file;
        go rest
    | a :: _ -> fail "usage: validate_logs [--log FILE] [--metrics FILE] (got %S)" a
  in
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then fail "usage: validate_logs [--log FILE] [--metrics FILE]";
  go args
