(* Validator for spatialdb-plan/1 documents (see Scdb_plan.Plan) and
   for the predicted-vs-actual attribution a progressed run prints.

   Usage: validate_plan --plan FILE [--report FILE]

   Exits 1 with a message on the first violation:
   - the plan file must parse as schema spatialdb-plan/1 through
     Scdb_plan.Plan.of_json (which checks node-id contiguity, child
     structure and attribute sanity), with node_count >= 1 and a
     positive finite total_work;
   - every node budget must be finite and non-negative, and the root
     budget positive;
   - with --report, the report document must be spatialdb-report/4 and
     every cost_attribution row for a node that ran (actual > 0) must
     carry a finite positive ratio — a NaN serializes as null and
     fails, and a missing ratio key fails.

   `make ci` runs this on a fresh `spatialdb explain` plan of the
   Figure 1 triangle plus the smoke report. *)

module J = Scdb_trace.Json_min
module Plan = Scdb_plan.Plan

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("validate_plan: " ^ m); exit 1) fmt

let get name = function Some v -> v | None -> fail "missing field %s" name

let num name v =
  match J.to_float v with
  | Some x when Float.is_finite x -> x
  | _ -> fail "field %s is not a finite number" name

let read_file file =
  let ic = try open_in file with Sys_error m -> fail "%s" m in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let check_plan file =
  let doc =
    try J.parse (read_file file) with J.Parse_error m -> fail "%s: invalid JSON: %s" file m
  in
  let plan =
    match Plan.of_json doc with Ok p -> p | Error m -> fail "%s: %s" file m
  in
  if plan.Plan.node_count < 1 then fail "%s: empty plan" file;
  if not (Float.is_finite plan.Plan.total_work && plan.Plan.total_work > 0.0) then
    fail "%s: total_work %g is not finite positive" file plan.Plan.total_work;
  Plan.iter_nodes
    (fun n ->
      let b = plan.Plan.budgets.(n.Plan.id) in
      if not (Float.is_finite b && b >= 0.0) then
        fail "%s: node %d budget %g is not finite non-negative" file n.Plan.id b)
    plan;
  if plan.Plan.budgets.(plan.Plan.root.Plan.id) <= 0.0 then
    fail "%s: root budget is not positive" file;
  Printf.printf "validate_plan: %s ok (%d nodes, total predicted work %g)\n" file
    plan.Plan.node_count plan.Plan.total_work

let check_report file =
  let doc =
    try J.parse (read_file file) with J.Parse_error m -> fail "%s: invalid JSON: %s" file m
  in
  (match J.to_string (get "schema" (J.member "schema" doc)) with
  | Some "spatialdb-report/4" -> ()
  | Some other -> fail "%s: unexpected schema %S" file other
  | None -> fail "%s: schema is not a string" file);
  let rows =
    match J.to_list (get "cost_attribution" (J.member "cost_attribution" doc)) with
    | Some l -> l
    | None -> fail "%s: cost_attribution is not an array" file
  in
  if rows = [] then fail "%s: cost_attribution is empty" file;
  let executed = ref 0 in
  List.iteri
    (fun i row ->
      let ctx = Printf.sprintf "cost_attribution[%d]" i in
      ignore (num (ctx ^ ".id") (get (ctx ^ ".id") (J.member "id" row)));
      ignore (num (ctx ^ ".predicted") (get (ctx ^ ".predicted") (J.member "predicted" row)));
      let actual = num (ctx ^ ".actual") (get (ctx ^ ".actual") (J.member "actual" row)) in
      if actual > 0.0 then begin
        incr executed;
        let ratio = num (ctx ^ ".ratio") (get (ctx ^ ".ratio") (J.member "ratio" row)) in
        if ratio <= 0.0 then fail "%s: %s.ratio is %g (need > 0)" file ctx ratio
      end)
    rows;
  if !executed = 0 then fail "%s: no cost_attribution row has actual > 0" file;
  Printf.printf "validate_plan: %s attribution ok (%d rows, %d executed)\n" file
    (List.length rows) !executed

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec after flag = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> after flag rest
    | [] -> None
  in
  let plan = after "--plan" args in
  let report = after "--report" args in
  if plan = None && report = None then
    fail "usage: validate_plan --plan FILE [--report FILE]";
  Option.iter check_plan plan;
  Option.iter check_report report
