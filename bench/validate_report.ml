(* Validator for spatialdb-report/4 documents (see Scdb_gis.Report).

   Usage: validate_report FILE [--require-converged]

   Exits 1 with a message on the first violation:
   - schema must be "spatialdb-report/4";
   - the embedded trace must hold >= 10 events, every ts/dur finite and
     non-negative, ts non-decreasing (creation order);
   - the embedded plan must be schema spatialdb-plan/1 with a positive
     total_work;
   - the cost_attribution table must be non-empty and every row whose
     node actually ran (actual > 0) must carry a finite positive
     actual/predicted ratio (a NaN serializes as null and fails);
   - the audit block must carry a 16-hex-digit relation fingerprint and
     an error_budget table with one row per plan node, each granted
     eps/delta inside (0,1) (guards are exempt and serialize null);
   - the telemetry block must be schema spatialdb-telemetry/2;
   - diagnostics must be present with >= 4 chains, every R-hat and ESS
     finite (a NaN serializes as null and fails the number check);
   - with --require-converged, the verdict must be positive.

   `make ci` runs this on a fresh report of the Figure 1 triangle. *)

module J = Scdb_trace.Json_min

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("validate_report: " ^ m); exit 1) fmt

let get name = function Some v -> v | None -> fail "missing field %s" name

let num name v =
  match J.to_float v with
  | Some x when Float.is_finite x -> x
  | _ -> fail "field %s is not a finite number" name

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let require_converged = List.mem "--require-converged" args in
  let file =
    match List.filter (fun a -> a <> "--require-converged") args with
    | [ f ] -> f
    | _ -> fail "usage: validate_report FILE [--require-converged]"
  in
  let ic = open_in file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let doc = try J.parse s with J.Parse_error m -> fail "invalid JSON: %s" m in
  (* Schema. *)
  (match J.to_string (get "schema" (J.member "schema" doc)) with
  | Some "spatialdb-report/4" -> ()
  | Some other -> fail "unexpected schema %S" other
  | None -> fail "schema is not a string");
  (* Trace. *)
  let trace = get "trace" (J.member "trace" doc) in
  let events =
    match J.to_list (get "trace.traceEvents" (J.member "traceEvents" trace)) with
    | Some l -> l
    | None -> fail "trace.traceEvents is not an array"
  in
  let n_events = List.length events in
  if n_events < 10 then fail "only %d trace events (need >= 10)" n_events;
  let last_ts = ref neg_infinity in
  List.iteri
    (fun i ev ->
      let ts = num "ts" (get "ts" (J.member "ts" ev)) in
      let dur = num "dur" (get "dur" (J.member "dur" ev)) in
      if ts < 0.0 then fail "event %d has negative ts %g" i ts;
      if dur < 0.0 then fail "event %d has negative dur %g" i dur;
      if ts < !last_ts then fail "event %d breaks ts monotonicity (%g < %g)" i ts !last_ts;
      last_ts := ts)
    events;
  (* Plan. *)
  let plan = get "plan" (J.member "plan" doc) in
  (match J.to_string (get "plan.schema" (J.member "schema" plan)) with
  | Some "spatialdb-plan/1" -> ()
  | Some other -> fail "unexpected plan schema %S" other
  | None -> fail "plan schema is not a string");
  let total_work = num "plan.total_work" (get "plan.total_work" (J.member "total_work" plan)) in
  if total_work <= 0.0 then fail "plan.total_work is %g (need > 0)" total_work;
  (* Cost attribution. *)
  let attribution =
    match J.to_list (get "cost_attribution" (J.member "cost_attribution" doc)) with
    | Some l -> l
    | None -> fail "cost_attribution is not an array"
  in
  if attribution = [] then fail "cost_attribution is empty";
  List.iteri
    (fun i row ->
      let actual = num (Printf.sprintf "cost_attribution[%d].actual" i) (get "actual" (J.member "actual" row)) in
      ignore (num (Printf.sprintf "cost_attribution[%d].predicted" i) (get "predicted" (J.member "predicted" row)));
      if actual > 0.0 then begin
        let ratio = num (Printf.sprintf "cost_attribution[%d].ratio" i) (get "ratio" (J.member "ratio" row)) in
        if ratio <= 0.0 then fail "cost_attribution[%d].ratio is %g (need > 0)" i ratio
      end)
    attribution;
  (* Audit block: fingerprint + per-node error budget. *)
  let audit = get "audit" (J.member "audit" doc) in
  (match J.to_string (get "audit.fingerprint" (J.member "fingerprint" audit)) with
  | Some fp ->
      if String.length fp <> 16
         || not (String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) fp)
      then fail "audit.fingerprint %S is not 16 lowercase hex digits" fp
  | None -> fail "audit.fingerprint is not a string");
  let error_budget =
    match J.to_list (get "audit.error_budget" (J.member "error_budget" audit)) with
    | Some l -> l
    | None -> fail "audit.error_budget is not an array"
  in
  if List.length error_budget <> List.length attribution then
    fail "audit.error_budget has %d rows for %d plan nodes" (List.length error_budget)
      (List.length attribution);
  List.iteri
    (fun i row ->
      let op =
        match J.to_string (get "op" (J.member "op" row)) with
        | Some s -> s
        | None -> fail "error_budget[%d].op is not a string" i
      in
      if op <> "guard" then begin
        let e = num (Printf.sprintf "error_budget[%d].eps" i) (get "eps" (J.member "eps" row)) in
        let d =
          num (Printf.sprintf "error_budget[%d].delta" i) (get "delta" (J.member "delta" row))
        in
        if e <= 0.0 || e >= 1.0 then fail "error_budget[%d].eps is %g (need (0,1))" i e;
        if d <= 0.0 || d >= 1.0 then fail "error_budget[%d].delta is %g (need (0,1))" i d
      end)
    error_budget;
  (* Telemetry. *)
  let tel = get "telemetry" (J.member "telemetry" doc) in
  (match J.to_string (get "telemetry.schema" (J.member "schema" tel)) with
  | Some "spatialdb-telemetry/2" -> ()
  | Some other -> fail "unexpected telemetry schema %S" other
  | None -> fail "telemetry schema is not a string");
  (* Diagnostics. *)
  let diag =
    match get "diagnostics" (J.member "diagnostics" doc) with
    | J.Null -> fail "diagnostics is null"
    | d -> d
  in
  let chains = int_of_float (num "diagnostics.chains" (get "chains" (J.member "chains" diag))) in
  if chains < 4 then fail "only %d chains (need >= 4)" chains;
  let rhat =
    match J.to_list (get "diagnostics.rhat" (J.member "rhat" diag)) with
    | Some l -> l
    | None -> fail "diagnostics.rhat is not an array"
  in
  if rhat = [] then fail "diagnostics.rhat is empty";
  List.iteri (fun i v -> ignore (num (Printf.sprintf "rhat[%d]" i) v)) rhat;
  let per_chain =
    match J.to_list (get "diagnostics.per_chain" (J.member "per_chain" diag)) with
    | Some l -> l
    | None -> fail "diagnostics.per_chain is not an array"
  in
  if List.length per_chain <> chains then
    fail "per_chain has %d entries for %d chains" (List.length per_chain) chains;
  List.iteri
    (fun c entry ->
      match J.to_list (get "ess" (J.member "ess" entry)) with
      | Some esses ->
          if esses = [] then fail "chain %d has empty ess" c;
          List.iteri (fun i v -> ignore (num (Printf.sprintf "chain %d ess[%d]" c i) v)) esses
      | None -> fail "chain %d ess is not an array" c)
    per_chain;
  if require_converged then begin
    match J.to_bool (get "diagnostics.converged" (J.member "converged" diag)) with
    | Some true -> ()
    | Some false -> fail "diagnostics report non-convergence"
    | None -> fail "diagnostics.converged is not a bool"
  end;
  Printf.printf
    "validate_report: %s ok (%d trace events, %d plan nodes, %d chains, max R-hat %.4f)\n" file
    n_events (List.length attribution) chains
    (List.fold_left
       (fun acc v -> match J.to_float v with Some x -> Float.max acc x | None -> acc)
       0.0 rhat)
