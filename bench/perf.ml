(* Bechamel micro-benchmarks of the primitives every experiment leans
   on: LP solves, exact volume recursion, Fourier–Motzkin steps, walk
   and hit-and-run step throughput, hull membership. *)

open Bechamel
module P = Scdb_polytope.Polytope
module VE = Scdb_polytope.Volume_exact
module FM = Scdb_qe.Fourier_motzkin
module HR = Scdb_sampling.Hit_and_run
module W = Scdb_sampling.Walk
module G = Scdb_sampling.Grid
module HL = Scdb_hull.Hull_lp
module Lp = Scdb_lp.Lp
module Rng = Scdb_rng.Rng

let tests () =
  let rng = Util.fresh_rng () in
  let cube4 = P.unit_cube 4 in
  let simplex3 = Relation.standard_simplex 3 in
  let simplex4_tuple = List.concat (Relation.tuples (Relation.standard_simplex 4)) in
  let grid = G.make ~step:0.05 ~dim:4 in
  let hull_pts = Array.init 40 (fun _ -> Rng.in_ball rng 3) in
  let hull = HL.of_points hull_pts in
  let bigint_a = Bigint.pow (Bigint.of_int 3) 400 in
  let bigint_b = Bigint.pow (Bigint.of_int 7) 300 in
  let small_a = Bigint.of_int 123_456_789 and small_b = Bigint.of_int 987_654_321 in
  let q_a = Rational.of_ints 355 113 and q_b = Rational.of_ints 113 355 in
  let chord_dir = Rng.unit_vector rng 4 in
  let chord_cursor = P.Kernel.make cube4 (Array.make 4 0.5) in
  [
    Test.make ~name:"bigint.mul(400x300 digits)"
      (Staged.stage (fun () -> ignore (Bigint.mul bigint_a bigint_b)));
    Test.make ~name:"bigint.divmod"
      (Staged.stage (fun () -> ignore (Bigint.divmod bigint_a bigint_b)));
    Test.make ~name:"bigint.mul(small fast path)"
      (Staged.stage (fun () -> ignore (Bigint.mul small_a small_b)));
    Test.make ~name:"bigint.mul(small limb path)"
      (Staged.stage (fun () -> ignore (Bigint.Reference.mul small_a small_b)));
    Test.make ~name:"bigint.gcd(small fast path)"
      (Staged.stage (fun () -> ignore (Bigint.gcd small_a small_b)));
    Test.make ~name:"rational.add(small)"
      (Staged.stage (fun () -> ignore (Rational.add q_a q_b)));
    Test.make ~name:"rational.mul(small)"
      (Staged.stage (fun () -> ignore (Rational.mul q_a q_b)));
    Test.make ~name:"chord.line_intersection(cube4)"
      (Staged.stage (fun () -> ignore (P.line_intersection cube4 (Array.make 4 0.5) chord_dir)));
    Test.make ~name:"chord.kernel_incremental(cube4)"
      (Staged.stage (fun () -> ignore (P.Kernel.chord chord_cursor chord_dir)));
    Test.make ~name:"lp.chebyshev(cube4)"
      (Staged.stage (fun () -> ignore (Lp.chebyshev ~a:cube4.P.a ~b:cube4.P.b)));
    Test.make ~name:"volume_exact(simplex3)"
      (Staged.stage (fun () -> ignore (VE.volume_relation simplex3)));
    Test.make ~name:"fm.eliminate_one_var(simplex4)"
      (Staged.stage (fun () -> ignore (FM.eliminate_var_tuple ~prune:false 3 simplex4_tuple)));
    Test.make ~name:"fm.eliminate_one_var+prune"
      (Staged.stage (fun () -> ignore (FM.eliminate_var_tuple ~prune:true 3 simplex4_tuple)));
    Test.make ~name:"walk.100steps(cube4,oracle)"
      (Staged.stage (fun () ->
           ignore
             (W.sample rng ~grid
                ~mem:(fun x -> P.mem cube4 x)
                ~start:(Array.make 4 0.5) ~steps:100)));
    Test.make ~name:"walk.100steps(cube4,kernel)"
      (Staged.stage (fun () ->
           ignore (W.sample_polytope rng ~grid cube4 ~start:(Array.make 4 0.5) ~steps:100)));
    Test.make ~name:"hit_and_run.100steps(cube4,naive)"
      (Staged.stage (fun () ->
           ignore
             (HR.sample rng ~chord:(HR.polytope_chord cube4) ~start:(Array.make 4 0.5) ~steps:100)));
    Test.make ~name:"hit_and_run.100steps(cube4,kernel)"
      (Staged.stage (fun () ->
           ignore (HR.sample_polytope rng cube4 ~start:(Array.make 4 0.5) ~steps:100)));
    Test.make ~name:"hit_and_run.100steps(cube4,batchK1)"
      (Staged.stage (fun () ->
           ignore
             (HR.sample_polytope_batch [| rng |] cube4
                ~starts:[| Array.make 4 0.5 |]
                ~steps:100)));
    Test.make ~name:"hit_and_run.100steps(cube4,batchK4)"
      (Staged.stage
         (let rngs = Array.init 4 (fun _ -> Rng.split rng) in
          let starts = Array.init 4 (fun _ -> Array.make 4 0.5) in
          fun () -> ignore (HR.sample_polytope_batch rngs cube4 ~starts ~steps:100)));
    Test.make ~name:"hit_and_run.100steps(cube4,batchK16)"
      (Staged.stage
         (let rngs = Array.init 16 (fun _ -> Rng.split rng) in
          let starts = Array.init 16 (fun _ -> Array.make 4 0.5) in
          fun () -> ignore (HR.sample_polytope_batch rngs cube4 ~starts ~steps:100)));
    Test.make ~name:"hull_lp.mem(40pts,3d)"
      (Staged.stage (fun () -> ignore (HL.mem hull (Rng.in_ball rng 3))));
    Test.make ~name:"relation.mem_float(simplex3)"
      (Staged.stage (fun () -> ignore (Relation.mem_float simplex3 [| 0.2; 0.2; 0.2 |])));
  ]

let run ~fast =
  Util.header "PERF: bechamel micro-benchmarks of the substrate";
  let quota = Time.second (if fast then 0.25 else 1.0) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~stabilize:false () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let grouped = Test.make_grouped ~name:"spatialdb" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> Printf.sprintf "%.1f" t
        | _ -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      rows := [ name; ns; r2 ] :: !rows)
    results;
  let sorted = List.sort compare !rows in
  Util.table [ ("benchmark", 40); ("ns/run", 14); ("r^2", 8) ] sorted
