(* Validator for spatialdb-audit/1 documents (see Scdb_audit.Audit)
   and the committed accuracy ledger.

   Usage: validate_audit --audit FILE [--check BASELINE]

   --audit FILE      a spatialdb-audit/1 document (written by
                     `spatialdb audit --out`): schema checked, runs >= 1,
                     the estimates array must have exactly `runs` entries,
                     hits must equal the number of estimates within
                     eps of truth and lie in [0, runs], coverage must
                     equal hits/runs, the Clopper-Pearson bracket must
                     satisfy 0 <= cp_low <= coverage <= cp_high <= 1,
                     the verdict must be consistent with the bracket and
                     the target (pass iff cp_low >= target, fail iff
                     cp_high < target, inconclusive otherwise), the
                     fingerprint must be 16 lowercase hex digits, truth
                     must be finite positive, and every error-budget row
                     must carry grants in (0,1) (guards exempt).

   --check BASELINE  additionally gate the fresh document against the
                     committed ledger (AUDIT_1.json): the relation
                     fingerprints must be equal (same canonical shape
                     under audit), the fresh verdict must not be "fail",
                     and the fresh coverage must reach the contract
                     target.  Inconclusive verdicts at small run counts
                     are allowed — the ledger itself is the
                     high-replicate record.

   Exits 1 with a message on the first violation. *)

module J = Scdb_trace.Json_min

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("validate_audit: " ^ m); exit 1) fmt

let read_file path =
  match open_in path with
  | exception Sys_error m -> fail "%s" m
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s

let parse_file path =
  match J.parse (read_file path) with
  | doc -> doc
  | exception J.Parse_error m -> fail "%s: invalid JSON: %s" path m

let get path name = function Some v -> v | None -> fail "%s: missing field %s" path name

let num path name v =
  match J.to_float v with
  | Some x when Float.is_finite x -> x
  | _ -> fail "%s: field %s is not a finite number" path name

let str path name v =
  match J.to_string v with
  | Some s -> s
  | None -> fail "%s: field %s is not a string" path name

let field path doc name = get path name (J.member name doc)

let load_audit path =
  let doc = parse_file path in
  (match J.to_string (field path doc "schema") with
  | Some "spatialdb-audit/1" -> ()
  | Some other -> fail "%s: unexpected schema %S" path other
  | None -> fail "%s: schema is not a string" path);
  doc

let is_hex16 s =
  String.length s = 16
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let validate path doc =
  let args = field path doc "args" in
  let runs = int_of_float (num path "args.runs" (field path args "runs")) in
  if runs < 1 then fail "%s: args.runs is %d (need >= 1)" path runs;
  let eps = num path "args.eps" (field path args "eps") in
  let delta = num path "args.delta" (field path args "delta") in
  if eps <= 0.0 || eps >= 1.0 then fail "%s: args.eps is %g (need (0,1))" path eps;
  if delta <= 0.0 || delta >= 1.0 then fail "%s: args.delta is %g (need (0,1))" path delta;
  let fp = str path "fingerprint" (field path doc "fingerprint") in
  if not (is_hex16 fp) then fail "%s: fingerprint %S is not 16 lowercase hex digits" path fp;
  (match str path "oracle" (field path doc "oracle") with
  | "exact" | "reference" -> ()
  | other -> fail "%s: unknown oracle %S" path other);
  let truth = num path "truth" (field path doc "truth") in
  if truth <= 0.0 then fail "%s: truth is %g (need > 0)" path truth;
  let target = num path "target" (field path doc "target") in
  if Float.abs (target -. (1.0 -. delta)) > 1e-12 then
    fail "%s: target %g does not match 1 - delta = %g" path target (1.0 -. delta);
  let estimates =
    match J.to_list (field path doc "estimates") with
    | Some l -> l
    | None -> fail "%s: estimates is not an array" path
  in
  if List.length estimates <> runs then
    fail "%s: %d estimates for %d runs" path (List.length estimates) runs;
  (* Recompute the hit count from the raw estimates: a hit is a finite
     estimate within relative eps of truth (null = declared failure =
     miss). *)
  let recomputed =
    List.fold_left
      (fun acc e ->
        match J.to_float e with
        | Some v when Float.is_finite v && Float.abs (v -. truth) <= eps *. truth -> acc + 1
        | _ -> acc)
      0 estimates
  in
  let hits = int_of_float (num path "hits" (field path doc "hits")) in
  if hits < 0 || hits > runs then fail "%s: hits %d outside [0, %d]" path hits runs;
  if hits <> recomputed then
    fail "%s: hits %d but %d estimates are within eps of truth" path hits recomputed;
  let coverage = num path "coverage" (field path doc "coverage") in
  if Float.abs (coverage -. (float_of_int hits /. float_of_int runs)) > 1e-12 then
    fail "%s: coverage %g does not match hits/runs = %g" path coverage
      (float_of_int hits /. float_of_int runs);
  let cp_low = num path "cp_low" (field path doc "cp_low") in
  let cp_high = num path "cp_high" (field path doc "cp_high") in
  if not (0.0 <= cp_low && cp_low <= coverage && coverage <= cp_high && cp_high <= 1.0) then
    fail "%s: bracket violation: need 0 <= %g <= %g <= %g <= 1" path cp_low coverage cp_high;
  let verdict = str path "verdict" (field path doc "verdict") in
  let expected =
    if cp_low >= target then "pass" else if cp_high < target then "fail" else "inconclusive"
  in
  if verdict <> expected then
    fail "%s: verdict %S inconsistent with bracket [%g, %g] and target %g (expected %S)" path
      verdict cp_low cp_high target expected;
  let budget =
    match J.to_list (field path doc "error_budget") with
    | Some l -> l
    | None -> fail "%s: error_budget is not an array" path
  in
  if budget = [] then fail "%s: error_budget is empty" path;
  List.iteri
    (fun i row ->
      let op = str path (Printf.sprintf "error_budget[%d].op" i) (field path row "op") in
      if op <> "guard" then begin
        let e = num path (Printf.sprintf "error_budget[%d].eps" i) (field path row "eps") in
        let d = num path (Printf.sprintf "error_budget[%d].delta" i) (field path row "delta") in
        if e <= 0.0 || e >= 1.0 then fail "%s: error_budget[%d].eps is %g" path i e;
        if d <= 0.0 || d >= 1.0 then fail "%s: error_budget[%d].delta is %g" path i d
      end)
    budget;
  (fp, verdict, coverage, target, runs, hits)

let () =
  let rec parse_args acc = function
    | [] -> acc
    | "--audit" :: f :: rest -> parse_args (("audit", f) :: acc) rest
    | "--check" :: f :: rest -> parse_args (("check", f) :: acc) rest
    | a :: _ -> fail "unknown argument %s (usage: validate_audit --audit FILE [--check BASELINE])" a
  in
  let opts = parse_args [] (List.tl (Array.to_list Sys.argv)) in
  let audit_file =
    match List.assoc_opt "audit" opts with
    | Some f -> f
    | None -> fail "usage: validate_audit --audit FILE [--check BASELINE]"
  in
  let fp, verdict, coverage, target, runs, hits =
    validate audit_file (load_audit audit_file)
  in
  (match List.assoc_opt "check" opts with
  | None -> ()
  | Some baseline_file ->
      let bfp, bverdict, _, _, _, _ =
        validate baseline_file (load_audit baseline_file)
      in
      if fp <> bfp then
        fail "fingerprint mismatch: fresh %s has %s, ledger %s has %s" audit_file fp
          baseline_file bfp;
      if bverdict = "fail" then
        fail "ledger %s records a failed contract — refresh it deliberately" baseline_file;
      if verdict = "fail" then
        fail "fresh audit %s fails the contract the ledger %s passed" audit_file baseline_file;
      if coverage < target then
        fail "fresh audit %s coverage %g below contract target %g" audit_file coverage target;
      Printf.printf "validate_audit: %s ok against ledger %s (fingerprint %s)\n" audit_file
        baseline_file fp);
  Printf.printf "validate_audit: %s ok (%d/%d hits, coverage %.4f, verdict %s)\n" audit_file
    hits runs coverage verdict
