(* Validator for the multi-run status artifacts of `make ci`:

   Usage: validate_status [--status FILE [--min-contexts N]]
                          [--compare-counters A B]

   --status FILE          a spatialdb-status/1 document (written by
                          `spatialdb sample --status-out`): schema and
                          timestamp checked, every context entry must
                          carry a name and finite non-negative draws,
                          elapsed, work and budget fields, counts must
                          be non-negative integers, and acceptance /
                          budget_burn / ess must be finite when
                          non-null.
   --min-contexts N       with --status: at least N contexts must show
                          draws > 0 — the CI assertion that the
                          concurrently active job contexts really were
                          observed.
   --compare-counters A B two telemetry dump files (as written by
                          --stats-out): their "counters" objects must
                          be exactly equal.  `make ci` feeds it the
                          merged dumps of a 2-domain and a sequential
                          run of the same jobs, the differential check
                          that context merging loses nothing.

   Exits 1 with a message on the first violation. *)

module J = Scdb_trace.Json_min

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("validate_status: " ^ m); exit 1) fmt

let read_file path =
  match open_in path with
  | exception Sys_error m -> fail "%s" m
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s

let parse_file path =
  match J.parse (read_file path) with
  | d -> d
  | exception J.Parse_error m -> fail "%s: invalid JSON: %s" path m

(* ---------------- status documents ---------------- *)

let num path ctx k j =
  match Option.bind (J.member k j) J.to_float with
  | Some v when Float.is_finite v -> v
  | Some _ -> fail "%s: context %s: non-finite %s" path ctx k
  | None -> fail "%s: context %s: missing numeric %s" path ctx k

let opt_num path ctx k j =
  match J.member k j with
  | None -> fail "%s: context %s: missing field %s" path ctx k
  | Some J.Null -> None
  | Some v -> (
      match J.to_float v with
      | Some f when Float.is_finite f -> Some f
      | _ -> fail "%s: context %s: non-finite %s" path ctx k)

let check_status ~min_contexts path =
  let doc = parse_file path in
  (match Option.bind (J.member "schema" doc) J.to_string with
  | Some "spatialdb-status/1" -> ()
  | Some other -> fail "%s: unexpected schema %S" path other
  | None -> fail "%s: missing schema" path);
  (match Option.bind (J.member "ts" doc) J.to_float with
  | Some ts when Float.is_finite ts -> ()
  | _ -> fail "%s: missing or non-finite ts" path);
  let ctxs =
    match Option.bind (J.member "contexts" doc) J.to_list with
    | Some l -> l
    | None -> fail "%s: no contexts array" path
  in
  if ctxs = [] then fail "%s: empty contexts array" path;
  let active =
    List.fold_left
      (fun active j ->
        let name =
          match Option.bind (J.member "name" j) J.to_string with
          | Some n when n <> "" -> n
          | _ -> fail "%s: context without a name" path
        in
        (match Option.bind (J.member "done" j) J.to_bool with
        | Some _ -> ()
        | None -> fail "%s: context %s: missing done flag" path name);
        let checked k =
          let v = num path name k j in
          if v < 0.0 then fail "%s: context %s: negative %s" path name k;
          v
        in
        let draws = checked "draws" in
        ignore (checked "elapsed");
        ignore (checked "draws_per_sec");
        ignore (checked "work");
        ignore (checked "budget");
        List.iter
          (fun k ->
            let v = checked k in
            if Float.rem v 1.0 <> 0.0 then
              fail "%s: context %s: non-integer %s" path name k)
          [ "accepted"; "attempts"; "warns"; "errors"; "spans" ];
        ignore (opt_num path name "acceptance" j);
        ignore (opt_num path name "budget_burn" j);
        ignore (opt_num path name "ess" j);
        if draws > 0.0 then active + 1 else active)
      0 ctxs
  in
  if active < min_contexts then
    fail "%s: only %d context(s) with draws > 0 (expected >= %d)" path active min_contexts;
  Printf.printf "validate_status: %s OK (%d context(s), %d with draws)\n" path
    (List.length ctxs) active

(* ---------------- counter comparison ---------------- *)

let counters_of path =
  let doc = parse_file path in
  match J.member "counters" doc with
  | Some (J.Obj kvs) ->
      List.sort compare
        (List.map
           (fun (k, v) ->
             match J.to_float v with
             | Some f -> (k, f)
             | None -> fail "%s: counter %s is not a number" path k)
           kvs)
  | _ -> fail "%s: no counters object (not a telemetry dump?)" path

let compare_counters a b =
  let ca = counters_of a and cb = counters_of b in
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) cb;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | None -> fail "counter %s present in %s but missing from %s" k a b
      | Some w ->
          if v <> w then fail "counter %s differs: %s has %.0f, %s has %.0f" k a v b w;
          Hashtbl.remove tbl k)
    ca;
  Hashtbl.iter (fun k _ -> fail "counter %s present in %s but missing from %s" k b a) tbl;
  Printf.printf "validate_status: counters of %s and %s are identical (%d counter(s))\n" a b
    (List.length ca)

(* ---------------- driver ---------------- *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec go checked = function
    | [] -> if not checked then fail "nothing to do (see usage in the source header)"
    | "--status" :: path :: rest ->
        let min_contexts, rest =
          match rest with
          | "--min-contexts" :: n :: rest -> (
              match int_of_string_opt n with
              | Some n -> (n, rest)
              | None -> fail "malformed --min-contexts %S" n)
          | _ -> (0, rest)
        in
        check_status ~min_contexts path;
        go true rest
    | "--compare-counters" :: a :: b :: rest ->
        compare_counters a b;
        go true rest
    | a :: _ -> fail "unknown argument %S" a
  in
  go false args
