# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test bench perf check clean

all: build

build:
	dune build

test:
	dune runtest

# Perf-regression harness: writes BENCH_<n>.json in the repo root.
bench:
	dune exec bench/regress.exe

# Bechamel micro-benchmarks (finer-grained, no JSON output).
perf:
	dune exec bench/main.exe -- perf

# Tier-1 gate: full build, benches compile, tests pass.
check:
	dune build
	dune build @bench
	dune runtest

clean:
	dune clean
