# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test bench perf check ci clean

all: build

build:
	dune build

test:
	dune runtest

# Perf-regression harness: writes BENCH_<n>.json in the repo root.
bench:
	dune exec bench/regress.exe

# Bechamel micro-benchmarks (finer-grained, no JSON output).
perf:
	dune exec bench/main.exe -- perf

# Tier-1 gate: full build, benches compile, tests pass.
check:
	dune build
	dune build @bench
	dune runtest

# check + perf smoke: fail if any kernel regresses >2x vs the committed
# baseline.  Writes the throwaway report to _build/.
ci: check
	dune exec bench/regress.exe -- --fast -o _build/BENCH_ci.json --check BENCH_1.json

clean:
	dune clean
