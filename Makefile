# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test bench perf trend check ci clean

all: build

build:
	dune build

test:
	dune runtest

# Perf-regression harness: writes BENCH_<n>.json in the repo root.
bench:
	dune exec bench/regress.exe

# Bechamel micro-benchmarks (finer-grained, no JSON output).
perf:
	dune exec bench/main.exe -- perf

# Perf-trend ledger: walk every committed BENCH_<n>.json (globbed in
# index order) and flag silent normalized drifts.
trend:
	dune exec bench/regress.exe -- --trend

# Tier-1 gate: full build, benches compile, tests pass.
check:
	dune build
	dune build @bench
	dune runtest

# check + perf smoke: fail if any kernel regresses >2x vs the committed
# baseline, then a `spatialdb report` smoke query whose JSON must
# validate (schema, trace events, plan + cost attribution, finite
# diagnostics), then a cost-model smoke: `spatialdb explain` of the
# Figure 1 triangle plus a short progressed sample run, with the plan
# JSON schema-validated and every executed node required to have a
# finite actual/predicted ratio, then an observability smoke: a
# recorded sample run with structured logging and a Prometheus
# snapshot, both validated, and the flight record replayed
# bit-for-bit.  A second recorded run drives the batched multi-chain
# kernel (`--diag --chains 4`) through its own record -> replay round
# trip.  Finally a compiled-engine smoke: an interpreter-recorded
# union run is replayed through the strict VM (`--engine vm`), which
# must reproduce the recorded sample stream bit-for-bit, and an
# optimized-VM run (`--engine vm-opt`, rewritten plan so a different
# stream by design) goes through its own record -> replay round trip.
# Last, the profiler smoke: a `spatialdb report --engine vm-opt` whose
# embedded profile and tagged attribution rows must validate, a
# `spatialdb profile` run whose spatialdb-profile/1 document must
# validate, a profiled+recorded sample run whose flight record must
# still replay bit-for-bit (profiling never touches the RNG stream),
# and `regress --trend` over the committed BENCH trajectory.
# Then the observability-context smoke: the same union query run as 2
# concurrent jobs on separate domains (each in its own context) and
# again sequentially; the merged telemetry counters of the two runs
# must be identical (context merging loses nothing), the published
# spatialdb-status/1 document must validate with >= 2 contexts showing
# draws, `spatialdb status` must render it, and a contexted
# (`--status-out`) recorded run must still replay bit-for-bit.
# Finally the accuracy-contract smoke: `spatialdb audit` of the
# Figure 1 union against the exact oracle (40 replicates over 2
# domains), its spatialdb-audit/1 document validated and gated against
# the committed AUDIT_1.json ledger (same fingerprint, contract still
# met), and a domains-vs-seq audit differential: the two documents must
# be byte-identical and their merged telemetry counters exactly equal.
# Throwaway artifacts go to _build/.
ci: check
	dune exec bench/regress.exe -- --fast -o _build/BENCH_ci.json --check BENCH_1.json
	dune exec bin/spatialdb.exe -- report --vars x,y \
	  --formula "x >= 0 and y >= 0 and x + y <= 1" --seed 42 \
	  -o _build/report_smoke.json
	dune exec bench/validate_report.exe -- _build/report_smoke.json --require-converged
	dune exec bin/spatialdb.exe -- explain --vars x,y \
	  --formula "x >= 0 and y >= 0 and x + y <= 1" \
	  --format json > _build/plan_smoke.json
	dune exec bin/spatialdb.exe -- sample --vars x,y \
	  --formula "x >= 0 and y >= 0 and x + y <= 1" --seed 42 -n 3 \
	  --progress > /dev/null
	dune exec bench/validate_plan.exe -- --plan _build/plan_smoke.json \
	  --report _build/report_smoke.json
	dune exec bin/spatialdb.exe -- sample --vars x,y \
	  --formula "x >= 0 and y >= 0 and x + y <= 1" --seed 42 -n 5 \
	  --log-level debug --log-out _build/ci_log.jsonl \
	  --metrics-out _build/ci_metrics.prom \
	  --record _build/ci.flightrec.json > _build/ci_samples.tsv
	dune exec bench/validate_logs.exe -- --log _build/ci_log.jsonl \
	  --metrics _build/ci_metrics.prom
	dune exec bin/spatialdb.exe -- replay _build/ci.flightrec.json
	dune exec bin/spatialdb.exe -- sample --vars x,y \
	  --formula "x >= 0 and y >= 0 and x + y <= 1" --seed 42 -n 5 \
	  --diag --chains 4 \
	  --record _build/ci_batch.flightrec.json > _build/ci_batch_samples.tsv
	dune exec bin/spatialdb.exe -- replay _build/ci_batch.flightrec.json
	dune exec bin/spatialdb.exe -- sample --vars x,y \
	  --formula "(x >= 0 and y >= 0 and x + y <= 1) or (x >= 2 and x <= 3 and y >= 0 and y <= 1)" \
	  --seed 42 -n 5 \
	  --record _build/ci_union.flightrec.json > _build/ci_union_samples.tsv
	dune exec bin/spatialdb.exe -- replay --engine vm _build/ci_union.flightrec.json
	dune exec bin/spatialdb.exe -- sample --vars x,y \
	  --formula "(x >= 0 and y >= 0 and x + y <= 1) or (x >= 2 and x <= 3 and y >= 0 and y <= 1)" \
	  --seed 42 -n 5 --engine vm-opt \
	  --record _build/ci_vmopt.flightrec.json > _build/ci_vmopt_samples.tsv
	dune exec bin/spatialdb.exe -- replay _build/ci_vmopt.flightrec.json
	dune exec bin/spatialdb.exe -- report --vars x,y \
	  --formula "(x >= 0 and y >= 0 and x + y <= 1) or (x >= 2 and x <= 3 and y >= 0 and y <= 1)" \
	  --seed 42 --engine vm-opt -o _build/report_vmopt.json
	dune exec bench/validate_profile.exe -- --report _build/report_vmopt.json
	dune exec bin/spatialdb.exe -- profile --vars x,y \
	  --formula "(x >= 0 and y >= 0 and x + y <= 1) or (x >= 2 and x <= 3 and y >= 0 and y <= 1)" \
	  --seed 42 -n 20 --out _build/profile_smoke.json > /dev/null
	dune exec bench/validate_profile.exe -- --profile _build/profile_smoke.json
	dune exec bin/spatialdb.exe -- sample --vars x,y \
	  --formula "(x >= 0 and y >= 0 and x + y <= 1) or (x >= 2 and x <= 3 and y >= 0 and y <= 1)" \
	  --seed 42 -n 5 --engine vm --profile=counting \
	  --record _build/ci_profiled.flightrec.json > /dev/null 2> /dev/null
	dune exec bin/spatialdb.exe -- replay _build/ci_profiled.flightrec.json
	dune exec bin/spatialdb.exe -- sample --vars x,y \
	  --formula "(x >= 0 and y >= 0 and x + y <= 1) or (x >= 2 and x <= 3 and y >= 0 and y <= 1)" \
	  --seed 42 -n 20 --jobs 2 --jobs-mode domains --live \
	  --stats-out _build/ci_jobs_par.json \
	  --status-out _build/ci_status.json > _build/ci_jobs_par.tsv 2> /dev/null
	dune exec bin/spatialdb.exe -- sample --vars x,y \
	  --formula "(x >= 0 and y >= 0 and x + y <= 1) or (x >= 2 and x <= 3 and y >= 0 and y <= 1)" \
	  --seed 42 -n 20 --jobs 2 --jobs-mode seq \
	  --stats-out _build/ci_jobs_seq.json > _build/ci_jobs_seq.tsv
	cmp _build/ci_jobs_par.tsv _build/ci_jobs_seq.tsv
	dune exec bench/validate_status.exe -- \
	  --status _build/ci_status.json --min-contexts 2 \
	  --compare-counters _build/ci_jobs_par.json _build/ci_jobs_seq.json
	dune exec bin/spatialdb.exe -- status _build/ci_status.json --require 2
	dune exec bin/spatialdb.exe -- sample --vars x,y \
	  --formula "(x >= 0 and y >= 0 and x + y <= 1) or (x >= 2 and x <= 3 and y >= 0 and y <= 1)" \
	  --seed 42 -n 5 --status-out _build/ci_ctx_status.json \
	  --record _build/ci_ctx.flightrec.json > /dev/null
	dune exec bin/spatialdb.exe -- replay _build/ci_ctx.flightrec.json
	dune exec bench/regress.exe -- --trend
	dune exec bin/spatialdb.exe -- audit --vars x,y \
	  --formula "(x >= 0 and y >= 0 and x + y <= 1) or (x >= 2 and x <= 3 and y >= 0 and y <= 1)" \
	  --seed 42 --runs 40 --jobs 2 --oracle exact \
	  --out _build/audit_ci.json > /dev/null
	dune exec bench/validate_audit.exe -- --audit _build/audit_ci.json \
	  --check AUDIT_1.json
	dune exec bin/spatialdb.exe -- audit --vars x,y \
	  --formula "(x >= 0 and y >= 0 and x + y <= 1) or (x >= 2 and x <= 3 and y >= 0 and y <= 1)" \
	  --seed 42 --runs 6 --jobs 2 --jobs-mode domains --oracle exact \
	  --stats-out _build/ci_audit_par.json \
	  --out _build/ci_audit_par_doc.json > /dev/null
	dune exec bin/spatialdb.exe -- audit --vars x,y \
	  --formula "(x >= 0 and y >= 0 and x + y <= 1) or (x >= 2 and x <= 3 and y >= 0 and y <= 1)" \
	  --seed 42 --runs 6 --jobs 2 --jobs-mode seq --oracle exact \
	  --stats-out _build/ci_audit_seq.json \
	  --out _build/ci_audit_seq_doc.json > /dev/null
	cmp _build/ci_audit_par_doc.json _build/ci_audit_seq_doc.json
	dune exec bench/validate_status.exe -- \
	  --compare-counters _build/ci_audit_par.json _build/ci_audit_seq.json

clean:
	dune clean
	rm -f *.flightrec.json
