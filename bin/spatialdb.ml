(* spatialdb — command-line front end.

   Subcommands:
     sample       draw almost uniform points from a relation
     volume       estimate (or compute exactly) the volume of a relation
     qe           quantifier elimination (Fourier–Motzkin)
     reconstruct  hull-of-samples shape estimation (2-D output)

   Formulas use the FO+LIN syntax of Scdb_constr.Parser, e.g.
     spatialdb volume -v x,y -f "0 <= x <= 2 /\\ 0 <= y <= 1 /\\ x + y <= 2.5"
*)

open Cmdliner
module Rng = Scdb_rng.Rng
module Tel = Scdb_telemetry.Telemetry
module Log = Scdb_log.Log
module Metrics = Scdb_log.Metrics_export
module Flightrec = Scdb_log.Flightrec
module Flight = Scdb_gis.Flight
module Obs = Scdb_obs.Obs
module Jm = Scdb_trace.Json_min
module FM = Scdb_qe.Fourier_motzkin
module VE = Scdb_polytope.Volume_exact
module GV = Scdb_polytope.Gridvol
module H2 = Scdb_hull.Hull2d

(* ---------------- common arguments ---------------- *)

let vars_arg =
  let doc = "Comma-separated free variable names, fixing the dimension and coordinate order." in
  Arg.(required & opt (some string) None & info [ "v"; "vars" ] ~docv:"VARS" ~doc)

let formula_arg =
  let doc = "FO+LIN formula over the free variables (quantifier-free unless noted)." in
  Arg.(required & opt (some string) None & info [ "f"; "formula" ] ~docv:"FORMULA" ~doc)

let seed_arg =
  let doc = "PRNG seed (all commands are deterministic given the seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let eps_arg =
  let doc = "Relative accuracy parameter epsilon in (0,1)." in
  Arg.(value & opt float 0.2 & info [ "eps" ] ~doc)

let delta_arg =
  let doc = "Failure probability delta in (0,1)." in
  Arg.(value & opt float 0.1 & info [ "delta" ] ~doc)

let stats_arg =
  let doc =
    "Collect sampler telemetry (walk steps, acceptance rates, trial counts) and print the JSON \
     snapshot to stderr on exit.  Also enabled by setting \\$(b,SPATIALDB_STATS)."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let stats_out_arg =
  let doc =
    "Write the telemetry JSON snapshot to $(docv) on exit (implies telemetry collection)."
  in
  Arg.(value & opt (some string) None & info [ "stats-out" ] ~docv:"FILE" ~doc)

(* [at_exit] so the snapshot also appears when a command dies through
   [or_die]/[exit 1] after having burned its sampling budget. *)
let enable_stats ?stats_out stats =
  if stats || stats_out <> None then begin
    Tel.set_enabled true;
    at_exit (fun () ->
        let snapshot = Tel.dump ~only_nonzero:true () in
        if stats then prerr_endline snapshot;
        match stats_out with
        | None -> ()
        | Some file ->
            let oc = open_out file in
            output_string oc snapshot;
            output_char oc '\n';
            close_out oc)
  end

let or_die = function
  | Ok v -> v
  | Error m ->
      prerr_endline ("spatialdb: " ^ m);
      exit 1

(* Exit-code convention: 2 for usage/value errors (bad flag values,
   with the valid choices listed), 1 for runtime errors (parse
   failures, empty relations, estimation failures), and cmdliner's own
   124 for malformed command lines (unknown flags/subcommands). *)
let usage_die what got valid =
  Printf.eprintf "spatialdb: unknown %s %S (expected one of: %s)\n" what got
    (String.concat ", " valid);
  exit 2

let methods = [ "walk"; "grid"; "rejection" ]

let check_method m =
  if not (List.mem m methods) then usage_die "method" m methods

let engines = [ "interp"; "vm"; "vm-opt" ]

let check_engine e =
  if not (List.mem e engines) then usage_die "engine" e engines

let engine_arg =
  let doc =
    "Execution engine: $(b,interp) (the observable-combinator interpreter, the default), \
     $(b,vm) (plans compiled to the flat kernel VM; bit-identical rng stream and sample \
     stream to the interpreter) or $(b,vm-opt) (the VM with cost-based plan rewrites — same \
     distribution, different stream, typically the fastest)."
  in
  Arg.(value & opt string "interp" & info [ "engine" ] ~docv:"ENGINE" ~doc)

let progress_arg =
  let doc =
    "Show a live progress line on stderr (per-plan-node percent complete and an ETA derived \
     from the cost model's predicted budgets), and print the predicted-vs-actual cost \
     attribution table when the run finishes."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let overrun_arg =
  let doc =
    "Watchdog threshold for $(b,--progress): log a $(b,plan.budget_overrun) warning when a \
     plan node's actual work exceeds its predicted budget by this factor."
  in
  Arg.(value & opt float 4.0 & info [ "overrun-factor" ] ~docv:"FACTOR" ~doc)

let print_attribution ?program plan =
  prerr_endline "cost attribution (predicted vs actual, work units = steps + trials):";
  prerr_string
    (Scdb_gis.Plan_exec.attribution_text (Scdb_gis.Plan_exec.attribution ?program plan))

let profile_modes = [ "counting"; "timing" ]

let profile_mode_of_string s =
  match s with
  | "counting" -> Scdb_profile.Profile.Counting
  | "timing" -> Scdb_profile.Profile.Timing
  | m -> usage_die "profile mode" m profile_modes

let write_file path body =
  let oc = open_out path in
  output_string oc body;
  if body = "" || body.[String.length body - 1] <> '\n' then output_char oc '\n';
  close_out oc

(* ---------------- observability flags ---------------- *)

type obs = {
  log_level : string option;
  log_out : string option;
  metrics_out : string option;
  metrics_interval : float;
}

let obs_term =
  let log_level_arg =
    let doc =
      "Enable structured JSON-lines logging (schema spatialdb-log/1) at $(docv): one of \
       $(b,debug), $(b,info), $(b,warn), $(b,error).  Events go to stderr unless \
       $(b,--log-out) is given.  Also enabled by setting \\$(b,SPATIALDB_LOG)."
    in
    Arg.(value & opt (some string) None & info [ "log-level" ] ~docv:"LEVEL" ~doc)
  in
  let log_out_arg =
    let doc =
      "Write structured log events to $(docv) as JSON lines (implies logging; default level \
       info)."
    in
    Arg.(value & opt (some string) None & info [ "log-out" ] ~docv:"FILE" ~doc)
  in
  let metrics_out_arg =
    let doc =
      "Write a Prometheus text-format snapshot of the telemetry registry to $(docv) on exit \
       (implies telemetry collection).  The write is atomic (temp file + rename), so the file \
       is safe to scrape."
    in
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let metrics_interval_arg =
    let doc =
      "With $(b,--metrics-out), also re-emit the snapshot every $(docv) seconds from a \
       background thread (node-exporter textfile-collector style)."
    in
    Arg.(value & opt float 0.0 & info [ "metrics-interval" ] ~docv:"SECONDS" ~doc)
  in
  let make log_level log_out metrics_out metrics_interval =
    { log_level; log_out; metrics_out; metrics_interval }
  in
  Term.(const make $ log_level_arg $ log_out_arg $ metrics_out_arg $ metrics_interval_arg)

let setup_obs o =
  let level =
    match o.log_level with
    | None -> None
    | Some s -> (
        match Log.level_of_string s with
        | Some l -> Some l
        | None -> usage_die "log level" s [ "debug"; "info"; "warn"; "error" ])
  in
  if level <> None || o.log_out <> None then begin
    Log.set_enabled true;
    (match level with Some l -> Log.set_level l | None -> Log.set_level Log.Info);
    match o.log_out with
    | None -> Log.set_stderr true
    | Some file ->
        Log.open_file file;
        at_exit Log.close_file
  end;
  match o.metrics_out with
  | None -> ()
  | Some path ->
      Tel.set_enabled true;
      at_exit (fun () ->
          Metrics.stop_periodic ();
          Metrics.write_file ~path);
      if o.metrics_interval > 0.0 then
        Metrics.start_periodic ~path ~interval_s:o.metrics_interval

let split_vars s = String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "")

let parse_relation vars_s formula =
  let vars = split_vars vars_s in
  if vars = [] then Error "no variables given"
  else begin
    match Parser.parse ~vars formula with
    | f ->
        let f = if Formula.is_quantifier_free f then f else FM.eliminate f in
        Ok (vars, Relation.of_formula ~dim:(List.length vars) f)
    | exception Parser.Parse_error m -> Error ("parse error: " ^ m)
    | exception Lexer.Lex_error (m, pos) -> Error (Printf.sprintf "lex error at %d: %s" pos m)
  end

(* ---------------- sample ---------------- *)

let sample_cmd =
  let n_arg =
    Arg.(value & opt int 10 & info [ "n"; "samples" ] ~doc:"Number of points to draw.")
  in
  let method_arg =
    let doc =
      "Per-piece sampler: $(b,walk) (hit-and-run on the rounded body, the default), $(b,grid) \
       (the paper's lattice walk) or $(b,rejection) (exact-uniform rejection from the bounding \
       box, best in low dimension)."
    in
    Arg.(value & opt string "walk" & info [ "method" ] ~docv:"METHOD" ~doc)
  in
  let diag_arg =
    let doc =
      "Run a multi-chain convergence check (per-chain ESS, split Gelman-Rubin R-hat) on the \
       relation's first convex piece and print the verdict to stderr."
    in
    Arg.(value & flag & info [ "diag" ] ~doc)
  in
  let chains_arg =
    Arg.(
      value & opt int 4
      & info [ "chains" ]
          ~doc:
            "Chains for the $(b,--diag) check; all chains step together on the batched \
             structure-of-arrays kernel, one split RNG stream per chain.")
  in
  let record_arg =
    let doc =
      "Write a flight record (spatialdb-flightrec/1: arguments, seed, bit-exact sample stream, \
       RNG lineage, telemetry, log tail) to $(docv), replayable with $(b,spatialdb replay)."
    in
    Arg.(value & opt (some string) None & info [ "record" ] ~docv:"FILE" ~doc)
  in
  let record_anomaly_arg =
    let doc =
      "Like $(b,--record), but the record is written only when the run logged warnings or \
       errors (sampler budget exhaustion, walker stalls, ...)."
    in
    Arg.(value & opt (some string) None & info [ "record-on-anomaly" ] ~docv:"FILE" ~doc)
  in
  let profile_arg =
    let doc =
      "Attach the instruction profiler to the run (compiled engines only): $(b,counting) \
       (exact per-pc/per-opcode execution counts, allocation-free) or $(b,timing) (counts \
       plus monotonic-clock nanosecond buckets on the kernel opcodes; the default when the \
       flag is given bare).  Prints the hot-pc/per-opcode/per-node tables and the \
       predicted-vs-actual attribution to stderr.  Profiling never perturbs the RNG stream."
    in
    Arg.(
      value
      & opt (some string) None ~vopt:(Some "timing")
      & info [ "profile" ] ~docv:"MODE" ~doc)
  in
  let profile_out_arg =
    let doc =
      "With $(b,--profile), additionally write the full spatialdb-profile/1 JSON document \
       (hot pcs, opcode histogram, per-node rollup, Chrome trace events) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE" ~doc)
  in
  let run vars_s formula n seed eps delta method_ engine stats stats_out diag chains o record
      record_anomaly progress overrun_factor profile_s profile_out jobs jobs_mode live
      status_out =
    check_method method_;
    check_engine engine;
    if not (List.mem jobs_mode [ "domains"; "seq" ]) then
      usage_die "jobs mode" jobs_mode [ "domains"; "seq" ];
    if jobs < 1 then or_die (Error "--jobs must be >= 1");
    let profile_mode = Option.map profile_mode_of_string profile_s in
    enable_stats ?stats_out stats;
    setup_obs o;
    (* Anomaly detection rides on the warn/error counters, so make sure
       at least warn-level events are being counted (the ring buffer
       captures the tail regardless of sinks). *)
    if record_anomaly <> None && not (Log.would_log Log.Warn) then begin
      Log.set_enabled true;
      Log.set_level Log.Warn
    end;
    let args = { Flight.vars = split_vars vars_s; formula; n; seed; eps; delta; method_; engine } in
    let track = record <> None || record_anomaly <> None in
    let emit_points (outcome : Flight.outcome) =
      List.iter
        (fun p ->
          print_endline
            (String.concat "\t" (List.map (Printf.sprintf "%.6f") (Array.to_list p))))
        outcome.Flight.points
    in
    let outcome =
      if jobs = 1 && not live && status_out = None then
        (* The legacy single-run path: everything lands in the default
           context, exactly as before contexts existed. *)
        or_die (Flight.run ~track ~progress ~ticker:progress ~overrun_factor ?profile_mode args)
      else begin
        (* Contexted path: each job runs the whole query in its own
           observability context (seed + job index), optionally on its
           own domain, and the parent merges every context back into
           the default one so the process-wide tails (stats dumps,
           flight records, anomaly counters) see the union. *)
        if jobs > 1 && track then
          or_die (Error "--record/--record-on-anomaly require --jobs 1 (one stream per record)");
        if jobs > 1 && profile_mode <> None then or_die (Error "--profile requires --jobs 1");
        if jobs > 1 && diag then or_die (Error "--diag requires --jobs 1");
        let ctxs =
          Array.init jobs (fun i -> Obs.Ctx.create ~name:(Printf.sprintf "job-%d" i) ())
        in
        if live || status_out <> None then begin
          (* The status view reads the produced-samples telemetry
             counters, so a live/status run must count even when no
             --stats sink asked for them. *)
          Tel.set_enabled true;
          Obs.Status.start_ticker ?out:status_out ~to_stderr:live ()
        end;
        let job i =
          let c = ctxs.(i) in
          let a = { args with Flight.seed = seed + i } in
          let r = Flight.run ~ctx:c ~track ~progress:true ~overrun_factor ?profile_mode a in
          (match r with
          | Ok oc ->
              (* First-coordinate ESS estimate for the status view; the
                 points are already drawn, so this costs one FFT-free
                 autocorrelation pass. *)
              let xs = Array.of_list (List.map (fun p -> p.(0)) oc.Flight.points) in
              if Array.length xs >= 4 then Obs.Ctx.set_ess c (Scdb_diag.Diag.ess xs)
          | Error _ -> ());
          Obs.Ctx.mark_done c;
          r
        in
        let results =
          match jobs_mode with
          | "seq" -> Array.init jobs job
          | _ ->
              let doms = Array.init jobs (fun i -> Domain.spawn (fun () -> job i)) in
              Array.map Domain.join doms
        in
        if live || status_out <> None then
          Obs.Status.stop_ticker ?out:status_out ~to_stderr:live ();
        Array.iter (fun c -> Obs.Ctx.merge ~into:Obs.Ctx.default c) ctxs;
        let outcomes = Array.map or_die results in
        if jobs > 1 then begin
          Array.iter emit_points outcomes;
          exit 0
        end;
        (* jobs = 1: after the merge the default context holds exactly
           what an uncontexted run would have left behind, so the
           record/profile/diag tails below run unchanged. *)
        outcomes.(0)
      end
    in
    (match outcome.Flight.profile with
    | Some profile ->
        prerr_string
          (Scdb_profile.Profile.text_report ~plan:outcome.Flight.plan profile);
        print_attribution ?program:outcome.Flight.program outcome.Flight.plan;
        (match profile_out with
        | Some path ->
            write_file path (Scdb_profile.Profile.to_json ~plan:outcome.Flight.plan profile)
        | None -> ())
    | None -> if progress then print_attribution ?program:outcome.Flight.program outcome.Flight.plan);
    let relation = outcome.Flight.relation and rng = outcome.Flight.rng in
    emit_points outcome;
    (match record with
    | Some path -> Flightrec.write path (Flight.to_flightrec args outcome)
    | None -> ());
    (match record_anomaly with
    | Some path when Log.warn_count () + Log.error_count () > 0 ->
        Flightrec.write path (Flight.to_flightrec args outcome);
        Printf.eprintf
          "spatialdb: anomaly detected (%d warning(s), %d error(s)); flight record written to \
           %s\n"
          (Log.warn_count ()) (Log.error_count ()) path
    | _ -> ());
    if diag then begin
      let dim = Relation.dim relation in
      match Relation.tuples relation with
      | [] -> prerr_endline "spatialdb: --diag: relation has no tuple"
      | tuple :: _ -> (
          let poly = Scdb_polytope.Polytope.of_tuple ~dim tuple in
          match Diag_run.run ~chains rng poly with
          | None -> prerr_endline "spatialdb: --diag: piece is empty or unbounded"
          | Some d ->
              Printf.eprintf "diag: chains=%d thin=%d kept/chain=%d\n" chains d.Diag_run.thin
                d.Diag_run.samples_per_chain;
              Printf.eprintf "diag: split R-hat per coord: %s\n"
                (String.concat " "
                   (List.map (Printf.sprintf "%.4f") (Array.to_list d.Diag_run.rhat)));
              Array.iteri
                (fun i (c : Diag_run.chain) ->
                  Printf.eprintf "diag: chain %d: ESS %s, acceptance %.3f, max stall %d\n" i
                    (String.concat " "
                       (List.map (Printf.sprintf "%.1f") (Array.to_list c.Diag_run.ess)))
                    c.Diag_run.acceptance_rate c.Diag_run.max_stall)
                d.Diag_run.chains;
              Printf.eprintf "diag: %s (%s)\n"
                (if d.Diag_run.verdict.Scdb_diag.Diag.converged then "converged"
                 else "NOT converged")
                d.Diag_run.verdict.Scdb_diag.Diag.reason)
    end
  in
  let jobs_arg =
    let doc =
      "Run $(docv) whole-query repetitions (seeds seed, seed+1, ...), each in its own \
       observability context, and print all sample streams in job order.  Per-job streams \
       depend only on the job's seed, so the merged counters are identical whichever \
       $(b,--jobs-mode) executes them."
    in
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"K" ~doc)
  in
  let jobs_mode_arg =
    let doc =
      "How to execute $(b,--jobs): $(b,domains) (one domain per job, concurrent — the \
       default) or $(b,seq) (same contexts, one after another — the differential baseline)."
    in
    Arg.(value & opt string "domains" & info [ "jobs-mode" ] ~docv:"MODE" ~doc)
  in
  let live_arg =
    let doc =
      "Render a live per-context status line (draws/sec, acceptance rate, budget burn) to \
       stderr while sampling."
    in
    Arg.(value & flag & info [ "live" ] ~doc)
  in
  let status_out_arg =
    let doc =
      "Periodically publish the spatialdb-status/1 status document to $(docv) (atomic \
       write-then-rename, so it is safe to read at any moment — e.g. with $(b,spatialdb \
       status))."
    in
    Arg.(value & opt (some string) None & info [ "status-out" ] ~docv:"FILE" ~doc)
  in
  let doc = "Draw almost uniform points from the relation (Definition 2.2 generator)." in
  Cmd.v (Cmd.info "sample" ~doc)
    Term.(
      const run $ vars_arg $ formula_arg $ n_arg $ seed_arg $ eps_arg $ delta_arg $ method_arg
      $ engine_arg $ stats_arg $ stats_out_arg $ diag_arg $ chains_arg $ obs_term $ record_arg
      $ record_anomaly_arg $ progress_arg $ overrun_arg $ profile_arg $ profile_out_arg
      $ jobs_arg $ jobs_mode_arg $ live_arg $ status_out_arg)

(* ---------------- volume ---------------- *)

let volume_cmd =
  let mode_arg =
    let doc = "One of: exact (Lasserre + inclusion-exclusion), grid:GAMMA (fixed-dimension decomposition), sampling (DFK estimators)." in
    Arg.(value & opt string "sampling" & info [ "mode" ] ~doc)
  in
  let run vars_s formula mode seed eps delta stats stats_out o progress overrun_factor =
    enable_stats ?stats_out stats;
    setup_obs o;
    let _, relation = or_die (parse_relation vars_s formula) in
    let rng = Rng.create seed in
    match mode with
    | "exact" -> (
        match VE.float_volume_relation relation with
        | v -> Printf.printf "%.9f\n" v
        | exception VE.Unbounded -> or_die (Error "relation is unbounded")
        | exception Invalid_argument m -> or_die (Error m))
    | "sampling" -> (
        match
          Scdb_gis.Plan_exec.observable_of_relation ~gamma:Flight.gamma ~eps ~delta
            ~task:Scdb_plan.Plan.Volume rng relation
        with
        | None -> or_die (Error "relation is empty, unbounded or lower-dimensional")
        | Some (plan, obs) -> (
            if progress then begin
              Scdb_gis.Plan_exec.arm ~overrun_factor plan;
              Scdb_progress.Progress.start_ticker ()
            end;
            match Observable.volume obs rng ~eps ~delta with
            | v ->
                if progress then begin
                  Scdb_progress.Progress.stop ();
                  print_attribution plan
                end;
                Printf.printf "%.6f\n" v
            | exception Observable.Estimation_failed m ->
                if progress then Scdb_progress.Progress.stop ();
                or_die (Error m)))
    | m when String.length m > 5 && String.sub m 0 5 = "grid:" -> (
        let gamma = float_of_string (String.sub m 5 (String.length m - 5)) in
        match GV.build ~gamma relation with
        | Some g -> Printf.printf "%.6f\n" (GV.volume g)
        | None -> or_die (Error "relation is empty or unbounded"))
    | m -> usage_die "mode" m [ "exact"; "sampling"; "grid:GAMMA" ]
  in
  let doc = "Volume of the relation: exact, grid-decomposed, or the paper's (eps,delta)-estimator." in
  Cmd.v (Cmd.info "volume" ~doc)
    Term.(
      const run $ vars_arg $ formula_arg $ mode_arg $ seed_arg $ eps_arg $ delta_arg $ stats_arg
      $ stats_out_arg $ obs_term $ progress_arg $ overrun_arg)

(* ---------------- qe ---------------- *)

let qe_cmd =
  let run vars_s formula =
    let vars = split_vars vars_s in
    match Parser.parse ~vars formula with
    | f ->
        let g = FM.eliminate f in
        let name i = try List.nth vars i with _ -> Printf.sprintf "x%d" i in
        Format.printf "%a@." (Formula.pp_named name) g
    | exception Parser.Parse_error m -> or_die (Error ("parse error: " ^ m))
    | exception Lexer.Lex_error (m, pos) ->
        or_die (Error (Printf.sprintf "lex error at %d: %s" pos m))
  in
  let doc = "Eliminate quantifiers (Fourier-Motzkin with LP pruning) and print the result." in
  Cmd.v (Cmd.info "qe" ~doc) Term.(const run $ vars_arg $ formula_arg)

(* ---------------- reconstruct ---------------- *)

let reconstruct_cmd =
  let n_arg =
    Arg.(value & opt int 200 & info [ "n"; "samples" ] ~doc:"Samples per convex piece.")
  in
  let run vars_s formula n seed stats stats_out =
    enable_stats ?stats_out stats;
    let vars, relation = or_die (parse_relation vars_s formula) in
    if List.length vars <> 2 then or_die (Error "reconstruct prints polygons: exactly 2 variables required");
    let rng = Rng.create seed in
    let pieces =
      List.filter_map
        (fun tuple ->
          Convex_obs.make ~config:Convex_obs.practical_config rng
            (Relation.make ~dim:2 [ tuple ]))
        (Relation.tuples relation)
    in
    if pieces = [] then or_die (Error "no full-dimensional convex piece to reconstruct");
    let r = Reconstruct.union_estimate rng pieces ~n in
    List.iteri
      (fun i hull ->
        let pts = Array.to_list (Scdb_hull.Hull_lp.points hull) in
        let polygon = H2.hull pts in
        Printf.printf "# piece %d: %d hull vertices\n" i (List.length polygon);
        List.iter (fun v -> Printf.printf "%.6f\t%.6f\n" v.(0) v.(1)) polygon)
      r.Reconstruct.hulls
  in
  let doc = "Approximate the 2-D shape of the relation as union of sample hulls (Algorithms 3-5)." in
  Cmd.v (Cmd.info "reconstruct" ~doc)
    Term.(const run $ vars_arg $ formula_arg $ n_arg $ seed_arg $ stats_arg $ stats_out_arg)

(* ---------------- report ---------------- *)

let report_cmd =
  let n_arg =
    Arg.(value & opt int 10 & info [ "n"; "samples" ] ~doc:"Number of points to draw.")
  in
  let chains_arg =
    Arg.(value & opt int 4 & info [ "chains" ] ~doc:"Chains for the convergence check.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the report to $(docv) (default: stdout).")
  in
  let format_arg =
    let doc =
      "Output format: $(b,json) (the self-contained spatialdb-report/1 document, the default), \
       $(b,trace) (raw Chrome trace-event JSON, loadable in Perfetto) or $(b,tree) (indented \
       text rendering of the spans)."
    in
    Arg.(value & opt string "json" & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Additionally write the raw Chrome trace to $(docv).")
  in
  let run vars_s formula n seed eps delta chains out format trace_out o progress
      overrun_factor engine =
    setup_obs o;
    check_engine engine;
    if not (List.mem format [ "json"; "trace"; "tree" ]) then
      usage_die "format" format [ "json"; "trace"; "tree" ];
    let vars = split_vars vars_s in
    let report =
      or_die
        (Scdb_gis.Report.generate ~eps ~delta ~samples:n ~chains ~progress ~overrun_factor
           ~engine ~vars ~formula ~seed ())
    in
    let body =
      match format with
      | "json" -> report.Scdb_gis.Report.json
      | "trace" -> report.Scdb_gis.Report.chrome_trace ^ "\n"
      | _ -> report.Scdb_gis.Report.text_tree
    in
    (match out with
    | None -> print_string body
    | Some file ->
        let oc = open_out file in
        output_string oc body;
        close_out oc);
    match trace_out with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc report.Scdb_gis.Report.chrome_trace;
        output_char oc '\n';
        close_out oc
  in
  let doc =
    "Run the full pipeline with tracing, telemetry and convergence diagnostics enabled, and \
     emit one self-contained JSON report."
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const run $ vars_arg $ formula_arg $ n_arg $ seed_arg $ eps_arg $ delta_arg $ chains_arg
      $ out_arg $ format_arg $ trace_out_arg $ obs_term $ progress_arg $ overrun_arg
      $ engine_arg)

(* ---------------- audit ---------------- *)

let audit_cmd =
  let module A = Scdb_audit.Audit in
  let runs_arg =
    let doc =
      "Number of replicate estimates (seeds seed, seed+1, ...).  The Clopper-Pearson bracket \
       tightens with $(docv): at delta 0.1 and 95% confidence a strict pass needs >= 36 \
       all-hit replicates."
    in
    Arg.(value & opt int 40 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let jobs_arg =
    let doc =
      "Deal the replicates round-robin across $(docv) observability contexts.  Replicate \
       streams depend only on their seed, so the estimates and the verdict are identical \
       whichever $(b,--jobs-mode) executes them."
    in
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"K" ~doc)
  in
  let jobs_mode_arg =
    let doc =
      "How to execute $(b,--jobs): $(b,domains) (one domain per job, concurrent — the \
       default) or $(b,seq) (same contexts, one after another — the differential baseline)."
    in
    Arg.(value & opt string "domains" & info [ "jobs-mode" ] ~docv:"MODE" ~doc)
  in
  let oracle_arg =
    let doc =
      "Ground-truth oracle: $(b,exact) (rational volumes by Lasserre recursion with \
       inclusion-exclusion; errors when no closed form applies), $(b,reference) (one \
       high-budget run at eps/10, delta/10) or $(b,auto) (exact when possible, else \
       reference — the default)."
    in
    Arg.(value & opt string "auto" & info [ "oracle" ] ~docv:"ORACLE" ~doc)
  in
  let confidence_arg =
    let doc = "Confidence level of the Clopper-Pearson coverage bracket." in
    Arg.(value & opt float 0.95 & info [ "confidence" ] ~doc)
  in
  let gamma_arg =
    let doc =
      "Grid resolution passed to the estimator under audit (default: the pipeline's fixed \
       value).  Auditing a deliberately wrong $(docv) demonstrates the contract check \
       catching a mis-calibrated sampler."
    in
    Arg.(value & opt float Flight.gamma & info [ "gamma" ] ~doc)
  in
  let walk_steps_arg =
    let doc =
      "Fault injection: override the estimator's mixing schedule with $(docv) walk steps per \
       sample (the oracle is untouched).  Starving the walk is the demo of the auditor \
       catching a mis-mixed sampler — see EXPERIMENTS.md."
    in
    Arg.(value & opt (some int) None & info [ "walk-steps" ] ~docv:"N" ~doc)
  in
  let phase_samples_arg =
    let doc =
      "Fault injection: override the estimator's per-phase volume sample budget with $(docv) \
       (the oracle is untouched).  Corrupting the budget this way — e.g. a twentieth of the \
       practical 2000 — is the demo of the auditor catching a broken contract; see \
       EXPERIMENTS.md."
    in
    Arg.(value & opt (some int) None & info [ "phase-samples" ] ~docv:"N" ~doc)
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the spatialdb-audit/1 JSON document to $(docv).")
  in
  let run vars_s formula seed eps delta runs jobs jobs_mode oracle confidence gamma walk_steps
      phase_samples out stats stats_out o =
    if not (List.mem jobs_mode [ "domains"; "seq" ]) then
      usage_die "jobs mode" jobs_mode [ "domains"; "seq" ];
    if jobs < 1 then or_die (Error "--jobs must be >= 1");
    let oracle_v =
      match oracle with
      | "exact" -> `Exact
      | "reference" -> `Reference
      | "auto" -> `Auto
      | m -> usage_die "oracle" m [ "exact"; "reference"; "auto" ]
    in
    let mode = if jobs_mode = "seq" then A.Seq else A.Domains in
    enable_stats ?stats_out stats;
    setup_obs o;
    let vars, relation = or_die (parse_relation vars_s formula) in
    let a =
      or_die
        (A.run ~gamma ~jobs ~mode ~confidence ~oracle:oracle_v ?walk_steps ?phase_samples
           ~eps ~delta ~runs ~seed relation)
    in
    (match out with
    | Some file -> write_file file (A.to_json ~vars ~formula ~seed ~jobs ~requested:oracle a)
    | None -> ());
    print_string (A.to_text a);
    (* Exit-code convention: a failed contract is a runtime error (1);
       an inconclusive bracket still exits 0 — rerun with more --runs
       to decide. *)
    if a.A.cov.A.verdict = A.Fail then exit 1
  in
  let doc =
    "Verify the (epsilon,delta) accuracy contract empirically: obtain ground truth from an \
     exact or reference oracle, replay the volume estimator over independent seeds, bracket \
     the contract-hit fraction with an exact Clopper-Pearson interval, and attribute the \
     error budget across plan nodes.  Exits 1 when the contract demonstrably fails."
  in
  Cmd.v (Cmd.info "audit" ~doc)
    Term.(
      const run $ vars_arg $ formula_arg $ seed_arg $ eps_arg $ delta_arg $ runs_arg $ jobs_arg
      $ jobs_mode_arg $ oracle_arg $ confidence_arg $ gamma_arg $ walk_steps_arg
      $ phase_samples_arg $ out_arg $ stats_arg $ stats_out_arg $ obs_term)

(* ---------------- profile ---------------- *)

let profile_cmd =
  let n_arg =
    Arg.(value & opt int 10 & info [ "n"; "samples" ] ~doc:"Number of points to draw.")
  in
  let method_arg =
    let doc = "Per-piece sampler: $(b,walk), $(b,grid) or $(b,rejection)." in
    Arg.(value & opt string "walk" & info [ "method" ] ~docv:"METHOD" ~doc)
  in
  let engine_arg =
    let doc =
      "Compiled engine to profile: $(b,vm) (the strict mirror) or $(b,vm-opt) (with \
       cost-based rewrites, the default — the rewrite tags in the output show where its \
       speedup comes from)."
    in
    Arg.(value & opt string "vm-opt" & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let mode_arg =
    let doc =
      "Profiler mode: $(b,timing) (per-pc monotonic-clock nanosecond buckets, the default) \
       or $(b,counting) (execution counts only — allocation-free, negligible overhead)."
    in
    Arg.(value & opt string "timing" & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the spatialdb-profile/1 JSON document to $(docv).")
  in
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Rows in the hot-pc table.")
  in
  let run vars_s formula n seed eps delta method_ engine mode_s out top stats stats_out o =
    check_method method_;
    if not (List.mem engine [ "vm"; "vm-opt" ]) then
      usage_die "engine" engine [ "vm"; "vm-opt" ];
    let mode = profile_mode_of_string mode_s in
    enable_stats ?stats_out stats;
    setup_obs o;
    let args =
      { Flight.vars = split_vars vars_s; formula; n; seed; eps; delta; method_; engine }
    in
    let outcome = or_die (Flight.run ~profile_mode:mode args) in
    let plan = outcome.Flight.plan in
    let profile = Option.get outcome.Flight.profile in
    print_string (Scdb_profile.Profile.text_report ~plan ~top profile);
    print_attribution ?program:outcome.Flight.program plan;
    match out with
    | Some path -> write_file path (Scdb_profile.Profile.to_json ~plan profile)
    | None -> ()
  in
  let doc =
    "Draw points through a compiled engine under the instruction profiler and print the \
     hot-pc table, the per-opcode histogram, the per-plan-node rollup (with the compiler's \
     rewrite tags) and the predicted-vs-actual cost attribution."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ vars_arg $ formula_arg $ n_arg $ seed_arg $ eps_arg $ delta_arg $ method_arg
      $ engine_arg $ mode_arg $ out_arg $ top_arg $ stats_arg $ stats_out_arg $ obs_term)

(* ---------------- replay ---------------- *)

let replay_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Flight record ($(b,*.flightrec.json)) to replay.")
  in
  let engine_override_arg =
    let doc =
      "Replay through $(docv) ($(b,interp), $(b,vm) or $(b,vm-opt)) instead of the engine \
       recorded in the file.  Replaying an interpreter-recorded flight with $(b,--engine vm) \
       is the differential check that the compiled engine mirrors the interpreter \
       bit-for-bit."
    in
    Arg.(value & opt (some string) None & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let run file engine o =
    setup_obs o;
    Option.iter check_engine engine;
    let r = or_die (Flightrec.read file) in
    match Flight.replay ?engine r with
    | Ok n ->
        Printf.printf "replay OK: %d sample(s) reproduced bit-for-bit (seed %d)\n" n
          r.Flightrec.seed
    | Error m ->
        prerr_endline ("spatialdb: replay FAILED: " ^ m);
        exit 1
  in
  let doc =
    "Re-execute a flight record and verify the emitted sample stream is bit-identical to the \
     recorded one (diverging loudly with the first differing draw if not)."
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ file_arg $ engine_override_arg $ obs_term)

(* ---------------- status ---------------- *)

let status_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Status document written by $(b,spatialdb sample --status-out).")
  in
  let require_arg =
    let doc =
      "Exit 1 unless at least $(docv) contexts in the document show recorded draws (used by \
       CI to assert that concurrently active contexts really were observed)."
    in
    Arg.(value & opt int 0 & info [ "require" ] ~docv:"N" ~doc)
  in
  let run file require =
    let ic =
      try open_in file
      with Sys_error m -> or_die (Error m)
    in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let doc =
      match Jm.parse s with
      | d -> d
      | exception Jm.Parse_error m -> or_die (Error (file ^ ": invalid JSON: " ^ m))
    in
    (match Option.bind (Jm.member "schema" doc) Jm.to_string with
    | Some "spatialdb-status/1" -> ()
    | Some other -> or_die (Error (Printf.sprintf "%s: unexpected schema %S" file other))
    | None -> or_die (Error (file ^ ": not a spatialdb-status/1 document")));
    let ctxs =
      match Option.bind (Jm.member "contexts" doc) Jm.to_list with
      | Some l -> l
      | None -> or_die (Error (file ^ ": no contexts array"))
    in
    let num k j = Option.value ~default:0.0 (Option.bind (Jm.member k j) Jm.to_float) in
    let int_ k j = int_of_float (num k j) in
    let opt_num k j = Option.bind (Jm.member k j) Jm.to_float in
    let rows =
      List.map
        (fun j ->
          {
            Obs.Status.r_name =
              Option.value ~default:"?" (Option.bind (Jm.member "name" j) Jm.to_string);
            r_done =
              Option.value ~default:false (Option.bind (Jm.member "done" j) Jm.to_bool);
            r_elapsed = num "elapsed" j;
            r_draws = num "draws" j;
            r_rate = num "draws_per_sec" j;
            r_accepted = int_ "accepted" j;
            r_attempts = int_ "attempts" j;
            r_acceptance = opt_num "acceptance" j;
            r_work = num "work" j;
            r_budget = num "budget" j;
            r_burn = opt_num "budget_burn" j;
            r_ess = opt_num "ess" j;
            r_warns = int_ "warns" j;
            r_errors = int_ "errors" j;
            r_spans = int_ "spans" j;
          })
        ctxs
    in
    print_string (Obs.Status.render rows);
    let active =
      List.length (List.filter (fun r -> r.Obs.Status.r_draws > 0.0) rows)
    in
    if require > 0 && active < require then begin
      Printf.eprintf "spatialdb: status: only %d context(s) with draws (require %d)\n" active
        require;
      exit 1
    end
  in
  let doc =
    "Render a spatialdb-status/1 document (as published by $(b,sample --status-out)) as a \
     per-context table: draws/sec, acceptance rate, budget burn, ESS, warnings, spans."
  in
  Cmd.v (Cmd.info "status" ~doc) Term.(const run $ file_arg $ require_arg)

(* ---------------- plan ---------------- *)

let plan_cmd =
  let run vars_s formula eps delta =
    let vars = split_vars vars_s in
    (* Wrap the bare formula as a single-relation database so the
       planner's cost model applies. *)
    match Parser.parse ~vars formula with
    | exception Parser.Parse_error m -> or_die (Error ("parse error: " ^ m))
    | f ->
        let module Gis = Scdb_gis in
        let free_dim = List.length vars in
        let qf = if Formula.is_quantifier_free f then f else f in
        let schema = Gis.Schema.of_list [ ("Q", free_dim) ] in
        let inst =
          match Formula.is_quantifier_free qf with
          | true -> Gis.Instance.set (Gis.Instance.create schema) "Q" (Relation.of_formula ~dim:free_dim qf)
          | false ->
              Gis.Instance.set (Gis.Instance.create schema) "Q"
                (Relation.of_formula ~dim:free_dim (Scdb_qe.Fourier_motzkin.eliminate qf))
        in
        let query = Gis.Query.rel "Q" (List.init free_dim Fun.id) in
        let est = Gis.Planner.plan ~eps ~delta inst ~free_dim query in
        let strategy =
          match est.Gis.Planner.strategy with
          | Gis.Planner.Use_exact -> "exact (symbolic QE + Lasserre volume)"
          | Gis.Planner.Use_grid g -> Printf.sprintf "grid (gamma = %g)" g
          | Gis.Planner.Use_sampling { eps; delta } ->
              Printf.sprintf "sampling (eps = %g, delta = %g)" eps delta
        in
        Printf.printf "strategy      : %s\n" strategy;
        Printf.printf "predicted cost: %.3g work units\n" est.Gis.Planner.predicted_cost;
        Printf.printf "reason        : %s\n" est.Gis.Planner.reason
  in
  let doc = "Show which evaluation strategy the cost model would choose for the formula." in
  Cmd.v (Cmd.info "plan" ~doc) Term.(const run $ vars_arg $ formula_arg $ eps_arg $ delta_arg)

(* ---------------- explain ---------------- *)

let explain_cmd =
  let n_arg =
    Arg.(
      value & opt int 10
      & info [ "n"; "samples" ] ~doc:"Points the plan is budgeted for (sample/report tasks).")
  in
  let method_arg =
    let doc = "Per-piece sampler the plan is costed for: $(b,walk), $(b,grid) or $(b,rejection)." in
    Arg.(value & opt string "walk" & info [ "method" ] ~docv:"METHOD" ~doc)
  in
  let format_arg =
    let doc = "Output format: $(b,tree) (indented text, the default), $(b,json) (the \
               spatialdb-plan/1 document) or $(b,program) (the plan lowered to the kernel VM: \
               piece table, weight/trial slots and the instruction listing)." in
    Arg.(value & opt string "tree" & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let task_arg =
    let doc = "What to budget for: $(b,sample) ($(b,-n) points, the default), $(b,volume) (one \
               estimation) or $(b,report) (both)." in
    Arg.(value & opt string "sample" & info [ "task" ] ~docv:"TASK" ~doc)
  in
  let run vars_s formula n seed eps delta method_ engine format task_s =
    check_method method_;
    check_engine engine;
    if not (List.mem format [ "tree"; "json"; "program" ]) then
      usage_die "format" format [ "tree"; "json"; "program" ];
    let task =
      match task_s with
      | "sample" -> Scdb_plan.Plan.Sample n
      | "volume" -> Scdb_plan.Plan.Volume
      | "report" -> Scdb_plan.Plan.Report n
      | t -> usage_die "task" t [ "sample"; "volume"; "report" ]
    in
    let _, relation = or_die (parse_relation vars_s formula) in
    let sampler =
      match method_ with
      | "grid" -> Convex_obs.Grid_walk
      | "rejection" -> Convex_obs.Rejection_box
      | _ -> Convex_obs.Hit_and_run
    in
    let config = { Convex_obs.practical_config with Convex_obs.sampler } in
    if format = "program" then begin
      (* Lowering needs the prepared pieces (the rng-consuming rounding
         half), so this format takes the seed the run would use. *)
      let task = (match task with Scdb_plan.Plan.Volume -> Scdb_plan.Plan.Sample n | t -> t) in
      let rng = Rng.create seed in
      let optimize = engine = "vm-opt" in
      match
        Scdb_gis.Plan_exec.compiled_of_relation ~config ~optimize ~gamma:Flight.gamma ~eps
          ~delta ~task rng relation
      with
      | None -> or_die (Error "relation is empty, unbounded or lower-dimensional")
      | Some (_, Error m) -> or_die (Error ("plan does not compile: " ^ m))
      | Some (_, Ok prog) -> print_string (Scdb_vm.Vm.disassemble prog)
    end
    else
      match
        Scdb_gis.Plan_build.of_relation ~config ~gamma:Flight.gamma ~eps ~delta ~task relation
      with
      | None -> or_die (Error "relation is empty, unbounded or lower-dimensional")
      | Some plan ->
          print_string
            (match format with
            | "json" -> Scdb_plan.Plan.to_json plan
            | _ -> Scdb_plan.Plan.to_text_tree plan)
  in
  let doc =
    "Show the query plan and its paper-derived cost estimates (predicted walk steps, trials, \
     rng draws, membership tests and per-node work budgets) without sampling anything."
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const run $ vars_arg $ formula_arg $ n_arg $ seed_arg $ eps_arg $ delta_arg $ method_arg
      $ engine_arg $ format_arg $ task_arg)

let () =
  let doc = "uniform generation and volume estimation in spatial constraint databases" in
  let info = Cmd.info "spatialdb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            sample_cmd;
            volume_cmd;
            qe_cmd;
            reconstruct_cmd;
            report_cmd;
            audit_cmd;
            profile_cmd;
            replay_cmd;
            status_cmd;
            plan_cmd;
            explain_cmd;
          ]))
