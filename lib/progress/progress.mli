(** Execution progress against a plan's predicted budgets.

    A process-global bus the instrumented kernels feed: the executor
    pushes the current plan-node id with {!with_node}, the samplers
    report walk steps and rejection/acceptance trials as they spend
    them, and every unit is accrued to {e all} nodes on the stack —
    actuals are inclusive, exactly like the per-node budgets
    {!Scdb_plan.Plan.finalize} computes, so predicted and actual are
    directly comparable.

    Three consumers sit on top:

    - a {b watchdog} that fires once per node — a [plan.budget_overrun]
      warn-level log event and a [progress.overruns] telemetry tick —
      when the node's accrued work exceeds its predicted budget by a
      configurable factor;
    - a {b ticker} thread rendering a refreshing one-line percent/ETA
      display to stderr ([--progress]);
    - post-run {b attribution}: {!rows} is the actual column of the
      predicted-vs-actual table the report embeds.

    Disabled by default; every accrual on the disabled path is one load
    and a branch.  Accrual state lives in a {e bus}; each observability
    context owns one, the pre-context global bus survives as the
    default every domain starts with, and a bus is single-writer (the
    domain that armed it).  The ticker reads concurrently without
    locks, which is benign for monotone float cells. *)

val active : unit -> bool
(** One atomic load ([true] iff {e some} bus in the process is armed)
    — the guard for hot call sites; accruals re-check that the calling
    domain's own bus is armed. *)

val start : ?overrun_factor:float -> rows:(int * string * float) array -> unit -> unit
(** Arm the bus for a run: [rows] is [(id, label, predicted_work)] per
    plan node (from [Plan.budget_rows]), ids dense from 0.  Resets all
    actuals and the overrun state.  [overrun_factor] (default [4.0])
    sets the watchdog threshold: a node overruns when
    [actual > factor · predicted] (nodes with zero predicted budget are
    never flagged). *)

val stop : unit -> unit
(** Disarm (stops the ticker too).  Accrued actuals remain readable
    until the next {!start}. *)

val with_node : int -> (unit -> 'a) -> 'a
(** Run a thunk with node [id] pushed on the attribution stack
    (exception-safe).  No-op wrapper when the bus is inactive. *)

val enter_path : int array -> unit
(** Push a whole ancestor path (ids in any order — accrual is a set
    walk) onto the attribution stack without a closure.  Callers that
    cannot afford {!with_node}'s [Fun.protect] (the VM's inner loop)
    pair this with {!exit_path}; the array must be the same one.  No-op
    when the bus is inactive. *)

val exit_path : int array -> unit
(** Pop [Array.length path] entries pushed by {!enter_path}. *)

val add_steps : int -> unit
(** Accrue walk steps to every node on the stack (to the root when the
    stack is empty). *)

val add_trials : int -> unit
(** Accrue rejection/acceptance trials likewise. *)

val add_draws : int -> unit
(** Informational: rng draws (not part of the work metric). *)

val add_mems : int -> unit
(** Informational: membership tests (not part of the work metric). *)

val add_steps_on : int array -> int -> unit
(** [enter_path p; add_steps n; exit_path p] — accrue to the path's
    nodes {e and} whatever is already stacked beneath it. *)

val add_trials_on : int array -> int -> unit
(** Likewise for trials. *)

(** {1 Snapshots} *)

type row = {
  id : int;
  label : string;
  budget : float;  (** predicted inclusive work *)
  draws : float;
  mems : float;
  steps : float;
  trials : float;
  overrun : bool;  (** watchdog fired for this node *)
}

val row_work : row -> float
(** [steps + trials] — same metric as [Plan.work]. *)

val rows : unit -> row array
(** Snapshot in id order; [[||]] when never started. *)

val actual_work : int -> float
(** Accrued work of one node ([0.] out of range or inactive). *)

val total_work : unit -> float
(** Root's accrued work. *)

val total_budget : unit -> float
(** Root's predicted work. *)

val overrun_count : unit -> int
(** Nodes the watchdog has flagged since {!start}. *)

val elapsed : unit -> float
(** Monotonic seconds since {!start} ([0.] when never started). *)

val eta : unit -> float option
(** Remaining-time estimate [elapsed·(1−f)/f] from the work fraction
    [f = total_work/total_budget]; [None] before any work lands. *)

val render_line : unit -> string
(** The ticker's one-line rendering: overall percent, work counts, ETA
    and the per-node percents (truncated past 6 nodes). *)

(** {1 Ticker} *)

val start_ticker : ?interval:float -> unit -> unit
(** Spawn the stderr ticker thread (default 0.5 s refresh); idempotent
    while one is running. *)

val stop_ticker : unit -> unit
(** Stop it and terminate the status line with a newline. *)

(** {1 Buses as values (observability contexts)} *)

module Bus : sig
  type t

  val create : unit -> t

  val armed : t -> bool
  val rows : t -> row array
  val total_work : t -> float
  val total_budget : t -> float
  val elapsed : t -> float

  val draws : t -> float
  (** Root-node rng draws — the status view's throughput column. *)

  val trials : t -> float
  val steps : t -> float

  val merge_into : dst:t -> t -> unit
  (** Elementwise add of every accrual column {e and} the budgets (two
      runs over the same plan predict twice the work); [warned] or-ed,
      earliest start kept.  If [dst] never armed a run it adopts a copy
      of [src]'s state.  [src] is unchanged. *)
end

val with_bus : Bus.t -> (unit -> 'a) -> 'a
(** Install a bus as the calling domain's ambient accrual target for
    the duration of the thunk (exception-safe; nests).  Same
    domain/thread caveats as [Telemetry.with_registry]. *)

val current_bus : unit -> Bus.t
