module Tel = Scdb_telemetry.Telemetry
module Log = Scdb_log.Log

type state = {
  labels : string array;
  budgets : float array;
  draws : float array;
  mems : float array;
  steps : float array;
  trials : float array;
  warned : bool array;
  factor : float;
  started_at : float;
  mutable stack : int list;
}

let state : state option ref = ref None
let is_active = ref false
let overruns_c = Tel.Counter.make "progress.overruns"

let active () = !is_active

let start ?(overrun_factor = 4.0) ~rows () =
  let n =
    Array.fold_left (fun acc (id, _, _) -> Stdlib.max acc (id + 1)) 0 rows
  in
  let n = Stdlib.max 1 n in
  let st =
    {
      labels = Array.make n "?";
      budgets = Array.make n 0.0;
      draws = Array.make n 0.0;
      mems = Array.make n 0.0;
      steps = Array.make n 0.0;
      trials = Array.make n 0.0;
      warned = Array.make n false;
      factor = overrun_factor;
      started_at = Tel.Clock.now ();
      stack = [];
    }
  in
  Array.iter
    (fun (id, label, budget) ->
      st.labels.(id) <- label;
      st.budgets.(id) <- budget)
    rows;
  state := Some st;
  is_active := true

let with_node id f =
  match !state with
  | Some st when !is_active ->
      st.stack <- id :: st.stack;
      Fun.protect ~finally:(fun () ->
          match st.stack with _ :: rest -> st.stack <- rest | [] -> ())
        f
  | _ -> f ()

let enter_path ids =
  match !state with
  | Some st when !is_active ->
      for i = 0 to Array.length ids - 1 do
        st.stack <- Array.unsafe_get ids i :: st.stack
      done
  | _ -> ()

let exit_path ids =
  match !state with
  | Some st when !is_active ->
      for _ = 1 to Array.length ids do
        match st.stack with _ :: rest -> st.stack <- rest | [] -> ()
      done
  | _ -> ()

let check_overrun st id =
  if (not st.warned.(id)) && st.budgets.(id) > 0.0 then begin
    let actual = st.steps.(id) +. st.trials.(id) in
    if actual > st.factor *. st.budgets.(id) then begin
      st.warned.(id) <- true;
      Tel.Counter.incr overruns_c;
      if Log.would_log Log.Warn then
        Log.warn "plan.budget_overrun"
          [
            Log.int "node" id;
            Log.str "op" st.labels.(id);
            Log.float "predicted" st.budgets.(id);
            Log.float "actual" actual;
            Log.float "factor" st.factor;
          ]
    end
  end

let accrue cell watchdog n =
  if !is_active && n <> 0 then
    match !state with
    | None -> ()
    | Some st ->
        let v = float_of_int n in
        let touch id =
          (cell st).(id) <- (cell st).(id) +. v;
          if watchdog then check_overrun st id
        in
        (match st.stack with
        | [] -> if Array.length st.budgets > 0 then touch 0
        | ids -> List.iter touch ids)

let add_steps n = accrue (fun st -> st.steps) true n
let add_trials n = accrue (fun st -> st.trials) true n
let add_draws n = accrue (fun st -> st.draws) false n
let add_mems n = accrue (fun st -> st.mems) false n

let add_trials_on path n =
  enter_path path;
  add_trials n;
  exit_path path

let add_steps_on path n =
  enter_path path;
  add_steps n;
  exit_path path

(* -------------------------------------------------------------- *)
(* Snapshots                                                       *)
(* -------------------------------------------------------------- *)

type row = {
  id : int;
  label : string;
  budget : float;
  draws : float;
  mems : float;
  steps : float;
  trials : float;
  overrun : bool;
}

let row_work r = r.steps +. r.trials

let rows () =
  match !state with
  | None -> [||]
  | Some st ->
      Array.init (Array.length st.budgets) (fun id ->
          {
            id;
            label = st.labels.(id);
            budget = st.budgets.(id);
            draws = st.draws.(id);
            mems = st.mems.(id);
            steps = st.steps.(id);
            trials = st.trials.(id);
            overrun = st.warned.(id);
          })

let actual_work id =
  match !state with
  | Some st when id >= 0 && id < Array.length st.steps ->
      st.steps.(id) +. st.trials.(id)
  | _ -> 0.0

let total_work () = actual_work 0

let total_budget () =
  match !state with
  | Some st when Array.length st.budgets > 0 -> st.budgets.(0)
  | _ -> 0.0

let overrun_count () =
  match !state with
  | None -> 0
  | Some st -> Array.fold_left (fun acc w -> if w then acc + 1 else acc) 0 st.warned

let elapsed () =
  match !state with
  | None -> 0.0
  | Some st -> Tel.Clock.now () -. st.started_at

let eta () =
  let w = total_work () and b = total_budget () in
  if w <= 0.0 || b <= 0.0 then None
  else begin
    let f = Float.min 1.0 (w /. b) in
    Some (elapsed () *. (1.0 -. f) /. f)
  end

let pct w b = if b <= 0.0 then 0.0 else Float.min 999.0 (100.0 *. w /. b)

let render_line () =
  match !state with
  | None -> "[progress] inactive"
  | Some st ->
      let buf = Buffer.create 160 in
      let w = total_work () and b = total_budget () in
      Buffer.add_string buf
        (Printf.sprintf "[progress] %5.1f%% work %.3g/%.3g" (pct w b) w b);
      (match eta () with
      | Some e when e >= 0.0 ->
          Buffer.add_string buf (Printf.sprintf " eta %.1fs" e)
      | _ -> ());
      let n = Array.length st.budgets in
      let shown = Stdlib.min n 6 in
      for id = 0 to shown - 1 do
        Buffer.add_string buf
          (Printf.sprintf " | #%d %s %.0f%%%s" id st.labels.(id)
             (pct (st.steps.(id) +. st.trials.(id)) st.budgets.(id))
             (if st.warned.(id) then "!" else ""))
      done;
      if n > shown then Buffer.add_string buf (Printf.sprintf " | +%d more" (n - shown));
      Buffer.contents buf

(* -------------------------------------------------------------- *)
(* Ticker                                                          *)
(* -------------------------------------------------------------- *)

let ticker_running = ref false
let ticker_thread : Thread.t option ref = ref None

let ticker_loop interval =
  while !ticker_running do
    output_string stderr ("\r" ^ render_line ());
    flush stderr;
    Thread.delay interval
  done

let start_ticker ?(interval = 0.5) () =
  if not !ticker_running then begin
    ticker_running := true;
    ticker_thread := Some (Thread.create ticker_loop interval)
  end

let stop_ticker () =
  if !ticker_running then begin
    ticker_running := false;
    (match !ticker_thread with Some t -> Thread.join t | None -> ());
    ticker_thread := None;
    output_string stderr ("\r" ^ render_line () ^ "\n");
    flush stderr
  end

let stop () =
  stop_ticker ();
  is_active := false
