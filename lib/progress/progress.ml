module Tel = Scdb_telemetry.Telemetry
module Log = Scdb_log.Log

type state = {
  labels : string array;
  budgets : float array;
  draws : float array;
  mems : float array;
  steps : float array;
  trials : float array;
  warned : bool array;
  factor : float;
  started_at : float;
  mutable stack : int list;
}

(* A bus: one run's accrual state.  Contexts own one each; the
   pre-context global bus survives as the default every domain starts
   with.  A bus is single-writer (the domain that armed it); the
   global [active_count] is the one-load guard the kernels check, so a
   process with no armed bus anywhere pays exactly the old disabled
   cost. *)
type bus = { mutable b_state : state option; mutable b_armed : bool }

let make_bus () = { b_state = None; b_armed = false }
let default_bus = make_bus ()
let dls_bus : bus Domain.DLS.key = Domain.DLS.new_key (fun () -> default_bus)
let cur () = Domain.DLS.get dls_bus

let with_bus b f =
  let prev = Domain.DLS.get dls_bus in
  Domain.DLS.set dls_bus b;
  Fun.protect ~finally:(fun () -> Domain.DLS.set dls_bus prev) f

let active_count = Atomic.make 0
let active () = Atomic.get active_count > 0
let overruns_c = Tel.Counter.make "progress.overruns"

let start ?(overrun_factor = 4.0) ~rows () =
  let n =
    Array.fold_left (fun acc (id, _, _) -> Stdlib.max acc (id + 1)) 0 rows
  in
  let n = Stdlib.max 1 n in
  let st =
    {
      labels = Array.make n "?";
      budgets = Array.make n 0.0;
      draws = Array.make n 0.0;
      mems = Array.make n 0.0;
      steps = Array.make n 0.0;
      trials = Array.make n 0.0;
      warned = Array.make n false;
      factor = overrun_factor;
      started_at = Tel.Clock.now ();
      stack = [];
    }
  in
  Array.iter
    (fun (id, label, budget) ->
      st.labels.(id) <- label;
      st.budgets.(id) <- budget)
    rows;
  let b = cur () in
  b.b_state <- Some st;
  if not b.b_armed then begin
    b.b_armed <- true;
    Atomic.incr active_count
  end

let armed_state b = if b.b_armed then b.b_state else None

let with_node id f =
  match armed_state (cur ()) with
  | Some st ->
      st.stack <- id :: st.stack;
      Fun.protect ~finally:(fun () ->
          match st.stack with _ :: rest -> st.stack <- rest | [] -> ())
        f
  | None -> f ()

let enter_path ids =
  match armed_state (cur ()) with
  | Some st ->
      for i = 0 to Array.length ids - 1 do
        st.stack <- Array.unsafe_get ids i :: st.stack
      done
  | None -> ()

let exit_path ids =
  match armed_state (cur ()) with
  | Some st ->
      for _ = 1 to Array.length ids do
        match st.stack with _ :: rest -> st.stack <- rest | [] -> ()
      done
  | None -> ()

let check_overrun st id =
  if (not st.warned.(id)) && st.budgets.(id) > 0.0 then begin
    let actual = st.steps.(id) +. st.trials.(id) in
    if actual > st.factor *. st.budgets.(id) then begin
      st.warned.(id) <- true;
      Tel.Counter.incr overruns_c;
      if Log.would_log Log.Warn then
        Log.warn "plan.budget_overrun"
          [
            Log.int "node" id;
            Log.str "op" st.labels.(id);
            Log.float "predicted" st.budgets.(id);
            Log.float "actual" actual;
            Log.float "factor" st.factor;
          ]
    end
  end

let accrue cell watchdog n =
  if active () && n <> 0 then
    match armed_state (cur ()) with
    | None -> ()
    | Some st ->
        let v = float_of_int n in
        let touch id =
          (cell st).(id) <- (cell st).(id) +. v;
          if watchdog then check_overrun st id
        in
        (match st.stack with
        | [] -> if Array.length st.budgets > 0 then touch 0
        | ids -> List.iter touch ids)

let add_steps n = accrue (fun st -> st.steps) true n
let add_trials n = accrue (fun st -> st.trials) true n
let add_draws n = accrue (fun st -> st.draws) false n
let add_mems n = accrue (fun st -> st.mems) false n

let add_trials_on path n =
  enter_path path;
  add_trials n;
  exit_path path

let add_steps_on path n =
  enter_path path;
  add_steps n;
  exit_path path

(* -------------------------------------------------------------- *)
(* Snapshots                                                       *)
(* -------------------------------------------------------------- *)

type row = {
  id : int;
  label : string;
  budget : float;
  draws : float;
  mems : float;
  steps : float;
  trials : float;
  overrun : bool;
}

let row_work r = r.steps +. r.trials

let rows_of_state st =
  Array.init (Array.length st.budgets) (fun id ->
      {
        id;
        label = st.labels.(id);
        budget = st.budgets.(id);
        draws = st.draws.(id);
        mems = st.mems.(id);
        steps = st.steps.(id);
        trials = st.trials.(id);
        overrun = st.warned.(id);
      })

let rows () = match (cur ()).b_state with None -> [||] | Some st -> rows_of_state st

let actual_work_of b id =
  match b.b_state with
  | Some st when id >= 0 && id < Array.length st.steps -> st.steps.(id) +. st.trials.(id)
  | _ -> 0.0

let actual_work id = actual_work_of (cur ()) id
let total_work () = actual_work 0

let total_budget_of b =
  match b.b_state with
  | Some st when Array.length st.budgets > 0 -> st.budgets.(0)
  | _ -> 0.0

let total_budget () = total_budget_of (cur ())

let overrun_count () =
  match (cur ()).b_state with
  | None -> 0
  | Some st -> Array.fold_left (fun acc w -> if w then acc + 1 else acc) 0 st.warned

let elapsed_of b =
  match b.b_state with None -> 0.0 | Some st -> Tel.Clock.now () -. st.started_at

let elapsed () = elapsed_of (cur ())

let eta () =
  let w = total_work () and b = total_budget () in
  if w <= 0.0 || b <= 0.0 then None
  else begin
    let f = Float.min 1.0 (w /. b) in
    Some (elapsed () *. (1.0 -. f) /. f)
  end

let pct w b = if b <= 0.0 then 0.0 else Float.min 999.0 (100.0 *. w /. b)

let render_line () =
  match (cur ()).b_state with
  | None -> "[progress] inactive"
  | Some st ->
      let buf = Buffer.create 160 in
      let w = total_work () and b = total_budget () in
      Buffer.add_string buf
        (Printf.sprintf "[progress] %5.1f%% work %.3g/%.3g" (pct w b) w b);
      (match eta () with
      | Some e when e >= 0.0 ->
          Buffer.add_string buf (Printf.sprintf " eta %.1fs" e)
      | _ -> ());
      let n = Array.length st.budgets in
      let shown = Stdlib.min n 6 in
      for id = 0 to shown - 1 do
        Buffer.add_string buf
          (Printf.sprintf " | #%d %s %.0f%%%s" id st.labels.(id)
             (pct (st.steps.(id) +. st.trials.(id)) st.budgets.(id))
             (if st.warned.(id) then "!" else ""))
      done;
      if n > shown then Buffer.add_string buf (Printf.sprintf " | +%d more" (n - shown));
      Buffer.contents buf

(* -------------------------------------------------------------- *)
(* Buses as values (observability contexts)                        *)
(* -------------------------------------------------------------- *)

module Bus = struct
  type t = bus

  let create () = make_bus ()
  let armed b = b.b_armed
  let rows b = match b.b_state with None -> [||] | Some st -> rows_of_state st
  let total_work b = actual_work_of b 0
  let total_budget b = total_budget_of b
  let elapsed b = elapsed_of b

  let draws b =
    match b.b_state with
    | Some st when Array.length st.draws > 0 -> st.draws.(0)
    | _ -> 0.0

  let trials b =
    match b.b_state with
    | Some st when Array.length st.trials > 0 -> st.trials.(0)
    | _ -> 0.0

  let steps b =
    match b.b_state with
    | Some st when Array.length st.steps > 0 -> st.steps.(0)
    | _ -> 0.0

  (* Merge: elementwise add of every accrual column *and* the budgets
     (two runs over the same plan predict twice the work), [warned]
     or-ed, earliest start kept.  If [dst] never armed a run it adopts
     a copy of [src]'s state.  [src] is unchanged. *)
  let merge_into ~dst src =
    if dst != src then
      match (src.b_state, dst.b_state) with
      | None, _ -> ()
      | Some s, None ->
          dst.b_state <-
            Some
              {
                labels = Array.copy s.labels;
                budgets = Array.copy s.budgets;
                draws = Array.copy s.draws;
                mems = Array.copy s.mems;
                steps = Array.copy s.steps;
                trials = Array.copy s.trials;
                warned = Array.copy s.warned;
                factor = s.factor;
                started_at = s.started_at;
                stack = [];
              }
      | Some s, Some d ->
          let n = Stdlib.max (Array.length s.budgets) (Array.length d.budgets) in
          let ext a b op zero =
            Array.init n (fun i ->
                let x = if i < Array.length a then a.(i) else zero in
                let y = if i < Array.length b then b.(i) else zero in
                op x y)
          in
          let merged =
            {
              labels =
                Array.init n (fun i ->
                    if i < Array.length d.labels && d.labels.(i) <> "?" then d.labels.(i)
                    else if i < Array.length s.labels then s.labels.(i)
                    else "?");
              budgets = ext d.budgets s.budgets ( +. ) 0.0;
              draws = ext d.draws s.draws ( +. ) 0.0;
              mems = ext d.mems s.mems ( +. ) 0.0;
              steps = ext d.steps s.steps ( +. ) 0.0;
              trials = ext d.trials s.trials ( +. ) 0.0;
              warned = ext d.warned s.warned ( || ) false;
              factor = d.factor;
              started_at = Float.min d.started_at s.started_at;
              stack = d.stack;
            }
          in
          dst.b_state <- Some merged
end

let current_bus () = cur ()

(* -------------------------------------------------------------- *)
(* Ticker                                                          *)
(* -------------------------------------------------------------- *)

let ticker_running = ref false
let ticker_thread : Thread.t option ref = ref None

let ticker_loop interval =
  while !ticker_running do
    output_string stderr ("\r" ^ render_line ());
    flush stderr;
    Thread.delay interval
  done

let start_ticker ?(interval = 0.5) () =
  if not !ticker_running then begin
    ticker_running := true;
    ticker_thread := Some (Thread.create ticker_loop interval)
  end

let stop_ticker () =
  if !ticker_running then begin
    ticker_running := false;
    (match !ticker_thread with Some t -> Thread.join t | None -> ());
    ticker_thread := None;
    output_string stderr ("\r" ^ render_line () ^ "\n");
    flush stderr
  end

let stop () =
  stop_ticker ();
  let b = cur () in
  if b.b_armed then begin
    b.b_armed <- false;
    Atomic.decr active_count
  end
