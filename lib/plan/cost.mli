(** The paper's a-priori budget formulas, in one audited place.

    Every operator of the pipeline prescribes its own trial/sample/step
    budget up front — the DFK walk length for convex relations (§2),
    the [m·ln(1/δ)] Karp–Luby retry budget for unions (Thm 4.1), the
    [d^k]-sized rejection budget for intersections (Prop 4.1), the
    multi-phase sample sizing of the volume estimator, and the
    Chernoff/Hoeffding sample counts underneath them all.  The runtime
    ({!Scdb_sampling.Chernoff}, [Union], [Inter], [Diff], [Boost], the
    walk schedules) and the static cost model ({!Plan}) both call this
    module, so a query plan's predicted budget and the budget the
    executor actually spends come from literally the same formula —
    the invariant the budget-equality regression test pins down. *)

val samples_for_additive : eps:float -> delta:float -> int
(** Hoeffding: [⌈ln(2/δ)/(2ε²)⌉] draws estimate a Bernoulli mean within
    additive [ε] with confidence [1−δ].
    @raise Invalid_argument unless [eps > 0] and [delta > 0]. *)

val samples_for_ratio : eps:float -> delta:float -> p_lower:float -> int
(** Multiplicative Chernoff: [⌈3·ln(2/δ)/(ε²·p_lower)⌉] draws estimate
    a Bernoulli mean [p ≥ p_lower] within ratio [1+ε] with confidence
    [1−δ]. @raise Invalid_argument unless all arguments are positive. *)

val union_trials : m:int -> delta:float -> int
(** Karp–Luby retry budget (Theorem 4.1/Corollary 4.2): per-trial
    success probability is at least [1/m], so [max 4 ⌈m·ln(1/δ)⌉]
    trials fail with probability below [δ]. *)

val rejection_budget : dim:int -> poly_degree:int -> delta:float -> int
(** Intersection/difference rejection budget (Proposition 4.1): under
    the poly-relatedness promise [μ(S)/μ(T) ≤ d^k] the acceptance rate
    is at least [d^{−k}], so [max 32 ⌈d^k·ln(1/δ)⌉] trials suffice
    ([d] is clamped below at 2 so dimension 1 is not free). *)

val poly_floor : dim:int -> poly_degree:int -> float
(** The acceptance-probability floor [1/(max 2 d)^k] of the same
    promise — the [p_lower] the volume estimators feed to
    {!samples_for_ratio}. *)

val boost_runs : delta:float -> int
(** Median-boosting repetition count: the smallest odd [n ≥ 18·ln(1/δ)]
    such that the median of [n] 3/4-confident runs fails with
    probability at most [δ].
    @raise Invalid_argument unless [delta] lies in (0,1). *)

val hit_and_run_steps : dim:int -> int
(** The practical hit-and-run schedule [max 60 ⌈12·d·ln²(d+2)⌉] used by
    the pipeline (the [O*(d³)] mixing bound is a worst case, not a
    recipe). *)

val lattice_steps : dim:int -> eps:float -> int
(** The practical DFK lattice-walk schedule
    [max 200 ⌈8·d³·ln(1/ε)⌉]. *)

val rejection_box_trials : dim:int -> int
(** Heuristic attempt budget for naive rejection from a bounding box:
    the body-to-box volume ratio collapses geometrically with
    dimension, modelled as [min 20000 (4·2^d)].  A prediction aid for
    the cost model only — the runtime budget is the sampler's
    [max_attempts] argument. *)

(** {1 Inversions}

    The audit layer ({!Scdb_audit} via [spatialdb audit] and the report
    error-budget block) asks the converse question: given the samples a
    node {e actually} spent, what failure probability did it achieve at
    its granted [ε]?  These invert the bound forms above, clamped to
    [(0, 1]]. *)

val achieved_delta_additive : eps:float -> samples:int -> float
(** Invert {!samples_for_additive}: [min 1 (2·exp(−2·n·ε²))] — the
    Hoeffding failure probability [n] draws actually buy at additive
    accuracy [ε].  @raise Invalid_argument unless [eps > 0] and
    [samples >= 0]. *)

val achieved_delta_ratio : eps:float -> p_lower:float -> samples:int -> float
(** Invert {!samples_for_ratio}: [min 1 (2·exp(−n·ε²·p_lower/3))].
    @raise Invalid_argument unless all arguments are admissible. *)

val delta_at_work_ratio : delta:float -> ratio:float -> float
(** Failure probability a node achieved when it spent [ratio] times its
    granted work: every sample bound above has the exponential shape
    [δ(n) = C·exp(−K·n)] with [δ(n_granted) = delta], so
    [δ(ratio·n_granted) = 2·(delta/2)^ratio].  [nan] ratios (node never
    ran) propagate; ratios [≤ 0] degrade to 1.
    @raise Invalid_argument unless [delta] lies in (0,1). *)

val volume_phases : dim:int -> ?aspect:float -> unit -> int
(** Number of telescoping phases of the multi-phase volume estimator:
    [⌈d·log₂(R/r)⌉] for a rounded body with enclosing/inscribed radius
    ratio [R/r = aspect].  The default aspect is the a-priori rounding
    guarantee [d^{3/2}] (the runtime recomputes the exact count from
    the body it actually rounded). *)

val volume_samples_per_phase : eps:float -> delta:float -> phases:int -> int
(** Rigorous per-phase sample count of the multi-phase estimator: each
    phase ratio is ≥ 1/2, the per-phase ratio target is [ε/(2q)] and
    the per-phase failure budget [δ/q], all through
    {!samples_for_ratio}.  [0] when [phases = 0]. *)
