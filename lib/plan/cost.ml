let samples_for_additive ~eps ~delta =
  if eps <= 0.0 || delta <= 0.0 then invalid_arg "Cost.samples_for_additive";
  int_of_float (ceil (log (2.0 /. delta) /. (2.0 *. eps *. eps)))

let samples_for_ratio ~eps ~delta ~p_lower =
  if eps <= 0.0 || delta <= 0.0 || p_lower <= 0.0 then invalid_arg "Cost.samples_for_ratio";
  int_of_float (ceil (3.0 *. log (2.0 /. delta) /. (eps *. eps *. p_lower)))

let union_trials ~m ~delta =
  Stdlib.max 4 (int_of_float (ceil (float_of_int m *. log (1.0 /. delta))))

let rejection_budget ~dim ~poly_degree ~delta =
  let d = Float.max 2.0 (float_of_int dim) in
  let bound = (d ** float_of_int poly_degree) *. log (1.0 /. delta) in
  Stdlib.max 32 (int_of_float (ceil bound))

let poly_floor ~dim ~poly_degree =
  1.0 /. (Float.max 2.0 (float_of_int dim) ** float_of_int poly_degree)

let boost_runs ~delta =
  if delta <= 0.0 || delta >= 1.0 then invalid_arg "Cost.boost_runs";
  let n = int_of_float (ceil (18.0 *. log (1.0 /. delta))) in
  let n = Stdlib.max 1 n in
  if n mod 2 = 0 then n + 1 else n

let hit_and_run_steps ~dim =
  let d = float_of_int dim in
  int_of_float (Float.max 60.0 (12.0 *. d *. log (d +. 2.0) *. log (d +. 2.0)))

let lattice_steps ~dim ~eps =
  let d = float_of_int dim in
  int_of_float (Float.max 200.0 (8.0 *. d *. d *. d *. log (1.0 /. eps)))

let rejection_box_trials ~dim =
  let d = Stdlib.min dim 16 in
  Stdlib.min 20_000 (4 * (1 lsl d))

let volume_phases ~dim ?aspect () =
  if dim = 0 then 0
  else begin
    let d = float_of_int dim in
    let aspect = match aspect with Some a -> a | None -> Float.max 2.0 (d ** 1.5) in
    if aspect <= 1.0 then 0
    else int_of_float (ceil (d *. (log aspect /. log 2.0)))
  end

let achieved_delta_additive ~eps ~samples =
  if eps <= 0.0 || samples < 0 then invalid_arg "Cost.achieved_delta_additive";
  Float.min 1.0 (2.0 *. exp (-2.0 *. float_of_int samples *. eps *. eps))

let achieved_delta_ratio ~eps ~p_lower ~samples =
  if eps <= 0.0 || p_lower <= 0.0 || samples < 0 then
    invalid_arg "Cost.achieved_delta_ratio";
  Float.min 1.0 (2.0 *. exp (-.float_of_int samples *. eps *. eps *. p_lower /. 3.0))

let delta_at_work_ratio ~delta ~ratio =
  if delta <= 0.0 || delta >= 1.0 then invalid_arg "Cost.delta_at_work_ratio";
  if Float.is_nan ratio then Float.nan
  else if ratio <= 0.0 then 1.0
  else Float.min 1.0 (2.0 *. ((delta /. 2.0) ** ratio))

let volume_samples_per_phase ~eps ~delta ~phases =
  if phases = 0 then 0
  else begin
    let q = float_of_int phases in
    samples_for_ratio ~eps:(eps /. (2.0 *. q)) ~delta:(delta /. q) ~p_lower:0.5
  end
