module J = Scdb_trace.Json_min

type units = { draws : float; mems : float; steps : float; trials : float }

let work u = u.steps +. u.trials
let zero = { draws = 0.0; mems = 0.0; steps = 0.0; trials = 0.0 }

let add_units a b =
  {
    draws = a.draws +. b.draws;
    mems = a.mems +. b.mems;
    steps = a.steps +. b.steps;
    trials = a.trials +. b.trials;
  }

let scale_units k u =
  { draws = k *. u.draws; mems = k *. u.mems; steps = k *. u.steps; trials = k *. u.trials }

type op =
  | Dfk of { method_ : string; walk_steps : int; phases : int; samples_per_phase : int; constraints : int }
  | Grid_leaf of { cells : float }
  | Union_op of { trials : int; volume_trials : int }
  | Inter_op of { poly_degree : int; budget : int; volume_trials : int }
  | Diff_op of { poly_degree : int; budget : int; volume_trials : int }
  | Project_op of { keep : int; trials : int; pilot : int; volume_trials : int }
  | Boost_op of { runs : int }
  | Guard

type node = {
  id : int;
  op : op;
  dim : int;
  per_sample : units;
  per_volume : units;
  children : node list;
}

let op_name = function
  | Dfk _ -> "dfk"
  | Grid_leaf _ -> "grid"
  | Union_op _ -> "union"
  | Inter_op _ -> "inter"
  | Diff_op _ -> "diff"
  | Project_op _ -> "project"
  | Boost_op _ -> "boost"
  | Guard -> "guard"

type task = Sample of int | Volume | Report of int

(* ------------------------------------------------------------------ *)
(* Exclusive (own-node) cost of one generator call / one volume call.  *)
(* ------------------------------------------------------------------ *)

(* [m] is the child count; the estimates mirror the combinators:
   Union draws one categorical index per trial and re-tests first_index
   against all m operands, Inter tests all m memberships per trial,
   Diff tests the single guard, Project pays one acceptance draw per
   trial.  The child generator calls these trials trigger are charged
   to the children by the budget recursion, not here. *)
let exclusive op ~dim ~m =
  let f = float_of_int in
  match op with
  | Dfk { method_; walk_steps; phases; samples_per_phase; constraints = _ } ->
      let s = f walk_steps in
      let per_sample =
        match method_ with
        | "grid" -> { draws = 3.0 *. s; mems = s; steps = s; trials = 0.0 }
        | "rejection" ->
            let t = f (Cost.rejection_box_trials ~dim) in
            { draws = t *. f dim; mems = t; steps = 0.0; trials = t }
        | _ -> { draws = s *. f (dim + 1); mems = s; steps = s; trials = 0.0 }
      in
      (* The multi-phase estimator always walks (hit-and-run, or the
         lattice walk under the grid sampler): q·spp warm-started walks
         of the same length as a generator call. *)
      let n = f (phases * samples_per_phase) in
      let draws_per_step = if method_ = "grid" then 3.0 else f (dim + 1) in
      let per_volume =
        { draws = n *. s *. draws_per_step; mems = n *. s; steps = n *. s; trials = 0.0 }
      in
      (per_sample, per_volume)
  | Grid_leaf { cells } ->
      (* Sampling from a built decomposition is one categorical draw;
         building it scans every candidate cell once (a membership test
         per cell), amortized over the run. *)
      ({ zero with draws = 1.0 }, { zero with mems = cells })
  | Union_op { trials; volume_trials } ->
      let t = f trials and n = f volume_trials in
      ( { draws = t; mems = t *. f m; steps = 0.0; trials = t },
        { draws = n; mems = n *. f m; steps = 0.0; trials = n } )
  | Inter_op { budget; volume_trials; _ } ->
      let b = f budget and n = f volume_trials in
      ( { draws = 0.0; mems = b *. f m; steps = 0.0; trials = b },
        { draws = 0.0; mems = n *. f m; steps = 0.0; trials = n } )
  | Diff_op { budget; volume_trials; _ } ->
      let b = f budget and n = f volume_trials in
      ( { draws = 0.0; mems = b; steps = 0.0; trials = b },
        { draws = 0.0; mems = n; steps = 0.0; trials = n } )
  | Project_op { trials; volume_trials; _ } ->
      let t = f trials and n = f volume_trials in
      ( { draws = t; mems = t; steps = 0.0; trials = t },
        { draws = 0.0; mems = 0.0; steps = 0.0; trials = n } )
  | Boost_op _ | Guard -> (zero, zero)

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let sum_children f children = List.fold_left (fun acc c -> add_units acc (f c)) zero children

let dfk ~eps ~delta ~dim ?(method_ = "walk") ?(constraints = 0) ?volume_budget () =
  let walk_steps =
    match method_ with
    | "grid" -> Cost.lattice_steps ~dim ~eps
    | _ -> Cost.hit_and_run_steps ~dim
  in
  let phases = Cost.volume_phases ~dim () in
  let samples_per_phase =
    match volume_budget with
    | Some n -> n
    | None -> Cost.volume_samples_per_phase ~eps ~delta ~phases
  in
  let op = Dfk { method_; walk_steps; phases; samples_per_phase; constraints } in
  let per_sample, per_volume = exclusive op ~dim ~m:0 in
  { id = -1; op; dim; per_sample; per_volume; children = [] }

let grid_leaf ~dim ~cells =
  let op = Grid_leaf { cells } in
  let per_sample, per_volume = exclusive op ~dim ~m:0 in
  { id = -1; op; dim; per_sample; per_volume; children = [] }

let union_ ~eps ~delta children =
  if children = [] then invalid_arg "Plan.union_: empty list";
  let m = List.length children in
  let dim = (List.hd children).dim in
  let trials = Cost.union_trials ~m ~delta in
  let volume_trials =
    Cost.samples_for_ratio ~eps:(eps /. 3.0) ~delta:(delta /. 4.0)
      ~p_lower:(1.0 /. float_of_int m)
  in
  let op = Union_op { trials; volume_trials } in
  let excl_s, excl_v = exclusive op ~dim ~m in
  let sum_ps = sum_children (fun c -> c.per_sample) children in
  let sum_pv = sum_children (fun c -> c.per_volume) children in
  let t = float_of_int trials and n = float_of_int volume_trials in
  let fm = float_of_int m in
  let per_sample = add_units excl_s (scale_units (t /. fm) sum_ps) in
  let per_volume = add_units excl_v (add_units (scale_units (n /. fm) sum_ps) sum_pv) in
  { id = -1; op; dim; per_sample; per_volume; children }

let cap_adaptive n = Stdlib.min n 200_000

let inter_ ?(poly_degree = 3) ~eps ~delta children =
  if children = [] then invalid_arg "Plan.inter_: empty list";
  let m = List.length children in
  let dim = (List.hd children).dim in
  let budget = Cost.rejection_budget ~dim ~poly_degree ~delta in
  let volume_trials =
    cap_adaptive
      (Cost.samples_for_ratio ~eps:(eps /. 2.0) ~delta:(delta /. 8.0)
         ~p_lower:(Cost.poly_floor ~dim ~poly_degree))
  in
  let op = Inter_op { poly_degree; budget; volume_trials } in
  let excl_s, excl_v = exclusive op ~dim ~m in
  let sum_ps = sum_children (fun c -> c.per_sample) children in
  let sum_pv = sum_children (fun c -> c.per_volume) children in
  let b = float_of_int budget and n = float_of_int volume_trials in
  let fm = float_of_int m in
  let per_sample = add_units excl_s (scale_units (b /. fm) sum_ps) in
  let per_volume = add_units excl_v (add_units (scale_units (n /. fm) sum_ps) sum_pv) in
  { id = -1; op; dim; per_sample; per_volume; children }

let diff_ ?(poly_degree = 3) ~eps ~delta a b =
  let dim = a.dim in
  let budget = Cost.rejection_budget ~dim ~poly_degree ~delta in
  let volume_trials =
    cap_adaptive
      (Cost.samples_for_ratio ~eps:(eps /. 2.0) ~delta:(delta /. 8.0)
         ~p_lower:(Cost.poly_floor ~dim ~poly_degree))
  in
  let op = Diff_op { poly_degree; budget; volume_trials } in
  let excl_s, excl_v = exclusive op ~dim ~m:2 in
  let bf = float_of_int budget and n = float_of_int volume_trials in
  let per_sample = add_units excl_s (scale_units bf a.per_sample) in
  let per_volume =
    add_units excl_v (add_units (scale_units n a.per_sample) a.per_volume)
  in
  { id = -1; op; dim; per_sample; per_volume; children = [ a; b ] }

let project_ ~eps ~delta ~keep child =
  (* The runtime's retry budget is calibrated by a 32-draw pilot; the
     static stand-in assumes acceptance 1/4 (the c/4 deflation of the
     pilot quantile), giving 2/(1/4)·ln(1/δ) trials clamped to the
     runtime's own [64, 50000] window. *)
  let trials =
    Stdlib.min 50_000
      (Stdlib.max 64 (int_of_float (ceil (8.0 *. log (1.0 /. delta)))))
  in
  let pilot = 32 in
  let blocks = Stdlib.max 3 (int_of_float (ceil (4.0 *. log (2.0 /. delta)))) in
  let block_size = Stdlib.max 16 (int_of_float (ceil (9.0 /. (eps *. eps)))) in
  let volume_trials = blocks * block_size in
  let op = Project_op { keep; trials; pilot; volume_trials } in
  let excl_s, excl_v = exclusive op ~dim:keep ~m:1 in
  let t = float_of_int trials and n = float_of_int volume_trials in
  let per_sample = add_units excl_s (scale_units t child.per_sample) in
  let per_volume =
    add_units excl_v (add_units (scale_units n child.per_sample) child.per_volume)
  in
  { id = -1; op; dim = keep; per_sample; per_volume; children = [ child ] }

let boost_ ~delta child =
  let runs = Cost.boost_runs ~delta in
  {
    id = -1;
    op = Boost_op { runs };
    dim = child.dim;
    per_sample = child.per_sample;
    per_volume = scale_units (float_of_int runs) child.per_volume;
    children = [ child ];
  }

let guard ~dim = { id = -1; op = Guard; dim; per_sample = zero; per_volume = zero; children = [] }

(* ------------------------------------------------------------------ *)
(* Finalized plans: preorder ids and per-run budgets                   *)
(* ------------------------------------------------------------------ *)

type t = {
  gamma : float;
  eps : float;
  delta : float;
  task : task;
  root : node;
  node_count : int;
  budgets : float array;
  total_work : float;
}

let rec number next n =
  let id = !next in
  incr next;
  let children = List.map (number next) n.children in
  { n with id; children }

(* Demand on each child given a demand of [s] generator calls and [v]
   volume estimations on the node.  The one-time child volume estimates
   a combinator performs (operand weights, smallest-operand selection)
   appear as a volume demand of 1 per child whenever the node runs. *)
let child_demands op ~m ~s ~v children =
  let executed = s > 0.0 || v > 0.0 in
  let once = if executed then 1.0 else 0.0 in
  let fm = float_of_int (Stdlib.max 1 m) in
  match op with
  | Dfk _ | Grid_leaf _ | Guard -> []
  | Union_op { trials; volume_trials } ->
      let calls = ((float_of_int trials *. s) +. (float_of_int volume_trials *. v)) /. fm in
      List.map (fun c -> (c, calls, once)) children
  | Inter_op { budget; volume_trials; _ } ->
      let calls = ((float_of_int budget *. s) +. (float_of_int volume_trials *. v)) /. fm in
      List.map (fun c -> (c, calls, once)) children
  | Diff_op { budget; volume_trials; _ } -> (
      match children with
      | [ a; g ] ->
          let calls = (float_of_int budget *. s) +. (float_of_int volume_trials *. v) in
          [ (a, calls, once); (g, 0.0, 0.0) ]
      | cs -> List.map (fun c -> (c, 0.0, 0.0)) cs)
  | Project_op { trials; pilot; volume_trials; _ } -> (
      match children with
      | [ c ] ->
          let calls =
            (float_of_int trials *. s)
            +. (float_of_int volume_trials *. v)
            +. (float_of_int pilot *. once)
          in
          [ (c, calls, v) ]
      | cs -> List.map (fun c -> (c, 0.0, 0.0)) cs)
  | Boost_op { runs } -> (
      match children with
      | [ c ] -> [ (c, s, float_of_int runs *. v) ]
      | cs -> List.map (fun c -> (c, 0.0, 0.0)) cs)

let finalize ~gamma ~eps ~delta ~task node =
  let next = ref 0 in
  let root = number next node in
  let node_count = !next in
  let budgets = Array.make node_count 0.0 in
  let rec fill n ~s ~v =
    let m = List.length n.children in
    let excl_s, excl_v = exclusive n.op ~dim:n.dim ~m in
    let own = (s *. work excl_s) +. (v *. work excl_v) in
    let below =
      List.fold_left
        (fun acc (c, s_c, v_c) -> acc +. fill c ~s:s_c ~v:v_c)
        0.0
        (child_demands n.op ~m ~s ~v n.children)
    in
    let total = own +. below in
    budgets.(n.id) <- total;
    total
  in
  let s, v =
    match task with
    | Sample n -> (float_of_int n, 0.0)
    | Volume -> (0.0, 1.0)
    | Report n -> (float_of_int n, 1.0)
  in
  let total_work = fill root ~s ~v in
  { gamma; eps; delta; task; root; node_count; budgets; total_work }

let rec iter_node f n =
  f n;
  List.iter (iter_node f) n.children

let iter_nodes f t = iter_node f t.root

let budget_rows t =
  let rows = Array.make t.node_count (0, "", 0.0) in
  iter_nodes (fun n -> rows.(n.id) <- (n.id, op_name n.op, t.budgets.(n.id))) t;
  rows

let find_node t id =
  let found = ref None in
  iter_nodes (fun n -> if n.id = id then found := Some n) t;
  !found

type budget_grant = { g_id : int; g_op : string; g_eps : float; g_delta : float }

(* The volume-path (ε,δ) splits, mirroring how the runtime combinators
   thread their accuracy parameters down (Union.volume, Inter.volume,
   Diff.volume, Project, Boost in lib/core): the grant of a node is
   the contract its own estimation phase must satisfy, the children's
   grants are the sub-contracts it hands them.  Guards are
   membership-only and carry no grant (nan). *)
let error_budget t =
  let rows = ref [] in
  let rec go node eps delta =
    let m = List.length node.children in
    let (self_eps, self_delta), child_grant =
      match node.op with
      | Dfk _ | Grid_leaf _ -> ((eps, delta), (eps, delta))
      | Union_op _ ->
          (* Algorithm 1: child volumes at ε/3, δ/(4m); the node's own
             acceptance-fraction phase at ε/3, δ/4. *)
          ((eps /. 3.0, delta /. 4.0), (eps /. 3.0, delta /. float_of_int (4 * m)))
      | Inter_op _ ->
          ((eps /. 2.0, delta /. 4.0), (eps /. 2.0, delta /. float_of_int (4 * m)))
      | Diff_op _ -> ((eps /. 2.0, delta /. 4.0), (eps /. 2.0, delta /. 4.0))
      | Project_op _ -> ((eps /. 3.0, delta /. 3.0), (eps /. 3.0, delta /. 3.0))
      | Boost_op _ ->
          (* Median boosting: each run is only 3/4-confident. *)
          ((eps, delta), (eps, 0.25))
      | Guard -> ((Float.nan, Float.nan), (Float.nan, Float.nan))
    in
    rows := { g_id = node.id; g_op = op_name node.op; g_eps = self_eps; g_delta = self_delta } :: !rows;
    let ce, cd = child_grant in
    List.iter (fun c -> go c ce cd) node.children
  in
  go t.root t.eps t.delta;
  let arr = Array.of_list !rows in
  Array.sort (fun a b -> compare a.g_id b.g_id) arr;
  arr

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let schema = "spatialdb-plan/1"

let jnum v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let attrs_of_op op =
  match op with
  | Dfk { walk_steps; phases; samples_per_phase; constraints; _ } ->
      [
        ("walk_steps", float_of_int walk_steps);
        ("phases", float_of_int phases);
        ("samples_per_phase", float_of_int samples_per_phase);
        ("constraints", float_of_int constraints);
      ]
  | Grid_leaf { cells } -> [ ("cells", cells) ]
  | Union_op { trials; volume_trials } ->
      [ ("trials", float_of_int trials); ("volume_trials", float_of_int volume_trials) ]
  | Inter_op { poly_degree; budget; volume_trials }
  | Diff_op { poly_degree; budget; volume_trials } ->
      [
        ("poly_degree", float_of_int poly_degree);
        ("budget", float_of_int budget);
        ("volume_trials", float_of_int volume_trials);
      ]
  | Project_op { keep; trials; pilot; volume_trials } ->
      [
        ("keep", float_of_int keep);
        ("trials", float_of_int trials);
        ("pilot", float_of_int pilot);
        ("volume_trials", float_of_int volume_trials);
      ]
  | Boost_op { runs } -> [ ("runs", float_of_int runs) ]
  | Guard -> []

let units_json u =
  Printf.sprintf "{\"draws\": %s, \"mems\": %s, \"steps\": %s, \"trials\": %s, \"work\": %s}"
    (jnum u.draws) (jnum u.mems) (jnum u.steps) (jnum u.trials) (jnum (work u))

let task_fields = function
  | Sample n -> ("sample", n)
  | Volume -> ("volume", 0)
  | Report n -> ("report", n)

let to_json t =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  let rec node_json indent n =
    let pad = String.make indent ' ' in
    add pad;
    add
      (Printf.sprintf "{\"id\": %d, \"op\": \"%s\", \"dim\": %d," n.id (op_name n.op) n.dim);
    (match n.op with
    | Dfk { method_; _ } -> add (Printf.sprintf " \"method\": \"%s\"," method_)
    | _ -> ());
    add " \"attrs\": {";
    add
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k (jnum v)) (attrs_of_op n.op)));
    add "},\n";
    add (pad ^ " \"per_sample\": " ^ units_json n.per_sample ^ ",\n");
    add (pad ^ " \"per_volume\": " ^ units_json n.per_volume ^ ",\n");
    add (pad ^ Printf.sprintf " \"budget\": %s," (jnum t.budgets.(n.id)));
    add " \"children\": [";
    if n.children = [] then add "]}"
    else begin
      add "\n";
      List.iteri
        (fun i c ->
          if i > 0 then add ",\n";
          node_json (indent + 2) c)
        n.children;
      add ("\n" ^ pad ^ "]}")
    end
  in
  let task_name, n = task_fields t.task in
  add "{\n";
  add (Printf.sprintf " \"schema\": \"%s\",\n" schema);
  add (Printf.sprintf " \"task\": \"%s\",\n" task_name);
  add (Printf.sprintf " \"n\": %d,\n" n);
  add (Printf.sprintf " \"gamma\": %s,\n" (jnum t.gamma));
  add (Printf.sprintf " \"eps\": %s,\n" (jnum t.eps));
  add (Printf.sprintf " \"delta\": %s,\n" (jnum t.delta));
  add (Printf.sprintf " \"node_count\": %d,\n" t.node_count);
  add (Printf.sprintf " \"total_work\": %s,\n" (jnum t.total_work));
  add " \"root\":\n";
  node_json 2 t.root;
  add "\n}\n";
  Buffer.contents buf

exception Bad of string

let of_json doc =
  let get name o =
    match J.member name o with Some v -> v | None -> raise (Bad ("missing " ^ name))
  in
  let num name o =
    match J.to_float (get name o) with
    | Some v -> v
    | None -> raise (Bad (name ^ " is not a number"))
  in
  let inum name o = int_of_float (num name o) in
  let str name o =
    match J.to_string (get name o) with
    | Some s -> s
    | None -> raise (Bad (name ^ " is not a string"))
  in
  let units_of o =
    {
      draws = num "draws" o;
      mems = num "mems" o;
      steps = num "steps" o;
      trials = num "trials" o;
    }
  in
  try
    (match str "schema" doc with
    | s when s = schema -> ()
    | s -> raise (Bad (Printf.sprintf "unexpected schema %S" s)));
    let node_count = inum "node_count" doc in
    if node_count <= 0 then raise (Bad "node_count must be positive");
    let budgets = Array.make node_count 0.0 in
    let seen = Array.make node_count false in
    let rec read_node o =
      let id = inum "id" o in
      if id < 0 || id >= node_count then raise (Bad (Printf.sprintf "node id %d out of range" id));
      if seen.(id) then raise (Bad (Printf.sprintf "duplicate node id %d" id));
      seen.(id) <- true;
      budgets.(id) <- num "budget" o;
      let attrs = get "attrs" o in
      let a name = inum name attrs in
      let op =
        match str "op" o with
        | "dfk" ->
            Dfk
              {
                method_ = str "method" o;
                walk_steps = a "walk_steps";
                phases = a "phases";
                samples_per_phase = a "samples_per_phase";
                constraints = a "constraints";
              }
        | "grid" -> Grid_leaf { cells = num "cells" attrs }
        | "union" -> Union_op { trials = a "trials"; volume_trials = a "volume_trials" }
        | "inter" ->
            Inter_op
              { poly_degree = a "poly_degree"; budget = a "budget"; volume_trials = a "volume_trials" }
        | "diff" ->
            Diff_op
              { poly_degree = a "poly_degree"; budget = a "budget"; volume_trials = a "volume_trials" }
        | "project" ->
            Project_op
              { keep = a "keep"; trials = a "trials"; pilot = a "pilot"; volume_trials = a "volume_trials" }
        | "boost" -> Boost_op { runs = a "runs" }
        | "guard" -> Guard
        | other -> raise (Bad (Printf.sprintf "unknown op %S" other))
      in
      let children =
        match J.to_list (get "children" o) with
        | Some l -> List.map read_node l
        | None -> raise (Bad "children is not an array")
      in
      {
        id;
        op;
        dim = inum "dim" o;
        per_sample = units_of (get "per_sample" o);
        per_volume = units_of (get "per_volume" o);
        children;
      }
    in
    let root = read_node (get "root" doc) in
    if Array.exists not seen then raise (Bad "node ids are not contiguous");
    let task =
      match (str "task" doc, inum "n" doc) with
      | "sample", n -> Sample n
      | "volume", _ -> Volume
      | "report", n -> Report n
      | other, _ -> raise (Bad (Printf.sprintf "unknown task %S" other))
    in
    Ok
      {
        gamma = num "gamma" doc;
        eps = num "eps" doc;
        delta = num "delta" doc;
        task;
        root;
        node_count;
        budgets;
        total_work = num "total_work" doc;
      }
  with Bad m -> Error m

(* ------------------------------------------------------------------ *)
(* Text tree                                                           *)
(* ------------------------------------------------------------------ *)

let to_text_tree t =
  let buf = Buffer.create 1024 in
  let task_name, n = task_fields t.task in
  Buffer.add_string buf
    (Printf.sprintf "plan %s (n=%d, γ=%g ε=%g δ=%g) — total predicted work %.3g\n" task_name n
       t.gamma t.eps t.delta t.total_work);
  let rec render prefix is_last n =
    let branch = if is_last then "└─ " else "├─ " in
    let attrs =
      String.concat " "
        (List.map (fun (k, v) -> Printf.sprintf "%s=%g" k v) (attrs_of_op n.op))
    in
    let meth = match n.op with Dfk { method_; _ } -> " method=" ^ method_ | _ -> "" in
    Buffer.add_string buf
      (Printf.sprintf "%s%s%s #%d dim=%d%s%s  sample=%.3g volume=%.3g budget=%.3g\n" prefix
         branch (op_name n.op) n.id n.dim meth
         (if attrs = "" then "" else " [" ^ attrs ^ "]")
         (work n.per_sample) (work n.per_volume) t.budgets.(n.id));
    let prefix' = prefix ^ if is_last then "   " else "│  " in
    let rec go = function
      | [] -> ()
      | [ c ] -> render prefix' true c
      | c :: rest ->
          render prefix' false c;
          go rest
    in
    go n.children
  in
  render "" true t.root;
  Buffer.contents buf
