(** Static query plans with paper-derived cost estimates.

    A plan is a tree mirroring the {!Scdb_core.Observable} combinator
    algebra — convex/DFK leaves, fixed-dimension grid leaves, union,
    intersection, difference, projection, confidence boosting and
    membership-only guards — where every node carries an {e a-priori}
    cost estimate (predicted rng draws, membership tests, walk steps
    and rejection trials) computed from the (γ,ε,δ) parameters with the
    formulas of {!Cost}.  Nothing is sampled to build a plan: it is the
    EXPLAIN side of the pipeline, and the budgets it prescribes are the
    ones the progress bus and the overrun watchdog hold the execution
    to.

    The comparable work metric is [steps + trials] — exactly the units
    the instrumented samplers report at run time — while draws and
    membership tests ride along for inspection.  Serializes to the
    versioned [spatialdb-plan/1] JSON schema (with a reader for tests
    and validators) and to an indented text tree. *)

type units = { draws : float; mems : float; steps : float; trials : float }

val work : units -> float
(** [steps + trials]: the portion of the estimate the runtime can
    observe cheaply (walk steps and rejection/acceptance trials), and
    therefore the unit predicted budgets and actuals are compared in. *)

val zero : units
val add_units : units -> units -> units
val scale_units : float -> units -> units

(** Operator of a plan node, carrying the paper-prescribed budgets the
    node was costed with. *)
type op =
  | Dfk of { method_ : string; walk_steps : int; phases : int; samples_per_phase : int; constraints : int }
      (** Convex leaf: DFK lattice walk / hit-and-run / rejection-box
          generator plus the multi-phase volume estimator. *)
  | Grid_leaf of { cells : float }
      (** Fixed-dimension γ-grid decomposition (Theorem 3.1). *)
  | Union_op of { trials : int; volume_trials : int }
      (** Karp–Luby union (Theorem 4.1). *)
  | Inter_op of { poly_degree : int; budget : int; volume_trials : int }
      (** Rejection intersection (Proposition 4.1). *)
  | Diff_op of { poly_degree : int; budget : int; volume_trials : int }
      (** Guarded difference (Corollary 4.3). *)
  | Project_op of { keep : int; trials : int; pilot : int; volume_trials : int }
      (** Fiber-compensated projection (Theorem 4.3 / Algorithm 2). *)
  | Boost_op of { runs : int }  (** median confidence boosting *)
  | Guard  (** membership-only subtrahend: never sampled, never measured *)

type node = {
  id : int;  (** preorder index, assigned by {!finalize}; [-1] before *)
  op : op;
  dim : int;
  per_sample : units;  (** inclusive expected cost of one generator call *)
  per_volume : units;  (** inclusive expected cost of one volume estimation *)
  children : node list;
}

val op_name : op -> string
(** ["dfk"], ["grid"], ["union"], ["inter"], ["diff"], ["project"],
    ["boost"], ["guard"]. *)

(** What the plan is budgeted for. *)
type task =
  | Sample of int  (** draw [n] points *)
  | Volume  (** one volume estimation *)
  | Report of int  (** [n] points and one volume estimation *)

(** {1 Node constructors}

    Each constructor computes the node's inclusive cost estimate from
    its children and the {!Cost} formulas.  The caller passes the
    {e sub-call} accuracy parameters the runtime would use (e.g. a
    union's children are built at [ε/3], per Algorithm 1), mirroring
    how the combinators thread [Params.third_eps] down. *)

val dfk :
  eps:float ->
  delta:float ->
  dim:int ->
  ?method_:string ->
  ?constraints:int ->
  ?volume_budget:int ->
  unit ->
  node
(** [method_] is ["walk"] (hit-and-run, default), ["grid"] (lattice
    walk) or ["rejection"] (bounding-box rejection).  [constraints] is
    the description size of the tuple (membership-oracle cost;
    informational).  [volume_budget] fixes the per-phase sample count
    (the CLI's practical budget); omitted, the rigorous
    {!Cost.volume_samples_per_phase} sizing applies. *)

val grid_leaf : dim:int -> cells:float -> node

val union_ : eps:float -> delta:float -> node list -> node
(** @raise Invalid_argument on an empty list. *)

val inter_ : ?poly_degree:int -> eps:float -> delta:float -> node list -> node
val diff_ : ?poly_degree:int -> eps:float -> delta:float -> node -> node -> node
val project_ : eps:float -> delta:float -> keep:int -> node -> node
val boost_ : delta:float -> node -> node
val guard : dim:int -> node

(** {1 Finalized plans} *)

type t = {
  gamma : float;
  eps : float;
  delta : float;
  task : task;
  root : node;  (** ids assigned in preorder, root = 0 *)
  node_count : int;
  budgets : float array;
      (** per-node {e inclusive} predicted work (in {!work} units) for
          executing [task] once, indexed by node id *)
  total_work : float;  (** [budgets.(0)] *)
}

val finalize : gamma:float -> eps:float -> delta:float -> task:task -> node -> t
(** Assign preorder ids and compute the per-run budget of every node:
    the expected number of work units (walk steps + trials) the subtree
    rooted there spends executing [task], including the one-time child
    volume estimates a union/intersection performs before its first
    draw. *)

val budget_rows : t -> (int * string * float) array
(** [(id, op_name, predicted_work)] per node, in id order — the feed
    for the progress bus. *)

val iter_nodes : (node -> unit) -> t -> unit
(** Preorder traversal. *)

val find_node : t -> int -> node option

type budget_grant = { g_id : int; g_op : string; g_eps : float; g_delta : float }
(** The (ε,δ) sub-contract granted to one plan node on the volume
    path.  [nan] for membership-only guards. *)

val error_budget : t -> budget_grant array
(** Per-node granted accuracy budgets, in id order: the plan's (ε,δ)
    recursively split exactly the way the runtime combinators thread
    their parameters — a union's children are granted (ε/3, δ/4m) and
    its own acceptance phase (ε/3, δ/4) per Algorithm 1, intersections
    and differences halve ε with δ/4m / δ/4, projections split both by
    3, boosting runs children at fixed confidence 3/4.  The audit layer
    joins these grants with the runtime attribution actuals to report
    consumed-vs-granted slack per node. *)

(** {1 Serialization} *)

val schema : string
(** ["spatialdb-plan/1"]. *)

val to_json : t -> string
(** The [spatialdb-plan/1] document: parameters, task, total work and
    the node tree with per-node estimates, attributes and budgets. *)

val of_json : Scdb_trace.Json_min.t -> (t, string) result
(** Reader for the same schema (validators and round-trip tests). *)

val to_text_tree : t -> string
(** Indented human-readable rendering. *)
