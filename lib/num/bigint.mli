(** Arbitrary-precision signed integers.

    Values whose magnitude fits a native [int] are carried on a
    word-sized fast path; larger values fall back to sign-magnitude
    limbs in base [2^15].  The representation is canonical, so
    {!equal}, {!compare} and {!hash} never depend on how a value was
    computed.  All operations are purely functional.  This module
    exists because the exact pipeline (Fourier–Motzkin elimination,
    exact simplex) produces coefficients whose bit-size grows quickly,
    far beyond native [int] — while the vast majority of intermediate
    values (simplex pivots, FM combinations on real inputs) stay small
    enough for single-word arithmetic. *)

type t

val zero : t
val one : t
val minus_one : t
val two : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val to_int_opt : t -> int option

val to_float : t -> float
(** Nearest float; may overflow to [infinity] for huge values. *)

val of_string : string -> t
(** Decimal, with optional leading [-] or [+].
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Comparisons} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val hash : t -> int

val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t

val divmod : t -> t -> t * t
(** Truncated division: [divmod a b = (q, r)] with [a = q*b + r],
    [|r| < |b|] and [sign r = sign a] (or [r = 0]).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv_rem : t -> t -> t * t
(** Euclidean division: remainder is always non-negative. *)

val gcd : t -> t -> t
(** Non-negative gcd; [gcd 0 0 = 0]. *)

val lcm : t -> t -> t

val pow : t -> int -> t
(** [pow b n] for [n >= 0]. @raise Invalid_argument on negative exponent. *)

val shift_left : t -> int -> t
(** Multiply by [2^n], [n >= 0]. *)

val shift_right : t -> int -> t
(** Arithmetic shift towards zero on the magnitude: [|a| / 2^n] with the
    sign of [a] (truncated division by [2^n]). *)

val succ : t -> t
val pred : t -> t

(** {1 Size} *)

val num_bits : t -> int
(** Bit length of the magnitude; [num_bits zero = 0]. *)

val fits_int : t -> bool

(** {1 Reference implementation}

    Limb-only variants that bypass the small-int fast paths and run the
    sign-magnitude code unconditionally.  They compute the same values
    (results are renormalized, so they are [equal] to the fast ones);
    tests use them as the oracle for the fast paths and the perf
    harness uses them as the seed baseline. *)

module Reference : sig
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val divmod : t -> t -> t * t
  val gcd : t -> t -> t
end

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
