(* Arbitrary-precision integers with a small-int fast path.

   Representation is a tagged union: values whose magnitude fits a
   native [int] (excluding [min_int], so negation never overflows) are
   carried as [Small of int] and handled with word-sized arithmetic;
   everything else is [Big] in sign-magnitude form with little-endian
   limbs in base 2^15.  The limb base is chosen small enough that
   schoolbook products ([< 2^30]) and long sums of them stay far below
   [max_int] on 64-bit platforms, which keeps every inner loop in plain
   [int] arithmetic.

   Canonical-form invariant (relied on by [compare], [equal] and
   [hash]): a value is [Small] iff its magnitude is at most [max_int];
   a [Big] value always has [num_bits > Sys.int_size - 1].  All
   constructors normalize through {!norm_sign_mag}. *)

let base_bits = 15
let base = 1 lsl base_bits (* 32768 *)
let base_mask = base - 1

type t = Small of int | Big of { sign : int; mag : int array }
(* [Big.sign] is -1 or 1 (never 0: zero is [Small 0]); [Big.mag] has no
   trailing zero limbs and does not fit a native [int]. *)

let zero = Small 0
let one = Small 1
let minus_one = Small (-1)
let two = Small 2

(* ------------------------------------------------------------------ *)
(* Magnitude (unsigned) primitives                                     *)
(* ------------------------------------------------------------------ *)

(* Number of significant limbs of [m] when trailing zeros may exist. *)
let significant m =
  let i = ref (Array.length m) in
  while !i > 0 && m.(!i - 1) = 0 do
    decr i
  done;
  !i

let trim m =
  let n = significant m in
  if n = Array.length m then m else Array.sub m 0 n

let ucompare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let uadd a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r.(lr - 1) <- !carry;
  trim r

(* Requires [a >= b] limb-wise magnitude. *)
let usub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  trim r

let umul_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let s = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- s land base_mask;
          carry := s lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land base_mask;
          carry := s lsr base_bits;
          incr k
        done
      end
    done;
    trim r
  end

let karatsuba_threshold = 32

(* Split magnitude at limb [k]: low part (limbs < k), high part. *)
let split m k =
  let l = Array.length m in
  if l <= k then (m, [||]) else (trim (Array.sub m 0 k), Array.sub m k (l - k))

let rec umul a b =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then umul_school a b
  else begin
    let k = (if la > lb then la else lb) / 2 in
    let a0, a1 = split a k and b0, b1 = split b k in
    let z0 = umul a0 b0 in
    let z2 = umul a1 b1 in
    let z1 = usub (umul (uadd a0 a1) (uadd b0 b1)) (uadd z0 z2) in
    (* result = z0 + z1*base^k + z2*base^(2k) *)
    let lr = la + lb + 1 in
    let r = Array.make lr 0 in
    Array.blit z0 0 r 0 (Array.length z0);
    let add_at ofs src =
      let carry = ref 0 in
      let ls = Array.length src in
      for i = 0 to ls - 1 do
        let s = r.(ofs + i) + src.(i) + !carry in
        r.(ofs + i) <- s land base_mask;
        carry := s lsr base_bits
      done;
      let k = ref (ofs + ls) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land base_mask;
        carry := s lsr base_bits;
        incr k
      done
    in
    add_at k z1;
    add_at (2 * k) z2;
    trim r
  end

(* Multiply magnitude by a small non-negative int ([< base]). *)
let umul_small m x =
  if x = 0 then [||]
  else begin
    let l = Array.length m in
    let r = Array.make (l + 1) 0 in
    let carry = ref 0 in
    for i = 0 to l - 1 do
      let s = (m.(i) * x) + !carry in
      r.(i) <- s land base_mask;
      carry := s lsr base_bits
    done;
    r.(l) <- !carry;
    trim r
  end

(* Divide magnitude by a small positive int ([< base]); returns (quot, rem). *)
let udiv_small m x =
  let l = Array.length m in
  let q = Array.make l 0 in
  let r = ref 0 in
  for i = l - 1 downto 0 do
    let cur = (!r lsl base_bits) lor m.(i) in
    q.(i) <- cur / x;
    r := cur mod x
  done;
  (trim q, !r)

(* Shift magnitude left by [n] bits. *)
let ushift_left m n =
  if Array.length m = 0 || n = 0 then m
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let l = Array.length m in
    let r = Array.make (l + limbs + 1) 0 in
    let carry = ref 0 in
    for i = 0 to l - 1 do
      let s = (m.(i) lsl bits) lor !carry in
      r.(i + limbs) <- s land base_mask;
      carry := s lsr base_bits
    done;
    r.(l + limbs) <- !carry;
    trim r
  end

let ushift_right m n =
  if Array.length m = 0 || n = 0 then m
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let l = Array.length m in
    if limbs >= l then [||]
    else begin
      let lr = l - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = m.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < l then (m.(i + limbs + 1) lsl (base_bits - bits)) land base_mask else 0 in
        r.(i) <- if bits = 0 then m.(i + limbs) else lo lor hi
      done;
      trim r
    end
  end

(* Knuth algorithm D long division of magnitudes; returns (quot, rem).
   Requires [Array.length v >= 2] after trimming and [u >= 0], [v > 0]. *)
let udivmod_knuth u v =
  let n = Array.length v in
  (* Normalize so that the top limb of v is >= base/2. *)
  let shift =
    let top = v.(n - 1) in
    let s = ref 0 in
    let t = ref top in
    while !t < base / 2 do
      incr s;
      t := !t lsl 1
    done;
    !s
  in
  let u' = ushift_left u shift and v' = ushift_left v shift in
  let m = Array.length u' - n in
  if m < 0 then ([||], u)
  else begin
    let rem = Array.make (Array.length u' + 1) 0 in
    Array.blit u' 0 rem 0 (Array.length u');
    let q = Array.make (m + 1) 0 in
    let vtop = v'.(n - 1) in
    let vsec = if n >= 2 then v'.(n - 2) else 0 in
    for j = m downto 0 do
      (* Estimate quotient digit from the top two limbs of the current
         remainder window against the top limb of the divisor. *)
      let num = (rem.(j + n) lsl base_bits) lor rem.(j + n - 1) in
      let qhat = ref (num / vtop) in
      let rhat = ref (num mod vtop) in
      if !qhat >= base then begin
        qhat := base - 1;
        rhat := num - (!qhat * vtop)
      end;
      while
        !rhat < base
        && (!qhat * vsec) > ((!rhat lsl base_bits) lor (if j + n - 2 >= 0 then rem.(j + n - 2) else 0))
      do
        decr qhat;
        rhat := !rhat + vtop
      done;
      (* Multiply-subtract v'*qhat from the remainder window. *)
      if !qhat > 0 then begin
        let borrow = ref 0 and carry = ref 0 in
        for i = 0 to n - 1 do
          let p = (!qhat * v'.(i)) + !carry in
          carry := p lsr base_bits;
          let s = rem.(j + i) - (p land base_mask) - !borrow in
          if s < 0 then begin
            rem.(j + i) <- s + base;
            borrow := 1
          end
          else begin
            rem.(j + i) <- s;
            borrow := 0
          end
        done;
        let s = rem.(j + n) - !carry - !borrow in
        if s < 0 then begin
          (* qhat was one too large: add back. *)
          rem.(j + n) <- s + base;
          decr qhat;
          let carry = ref 0 in
          for i = 0 to n - 1 do
            let s = rem.(j + i) + v'.(i) + !carry in
            rem.(j + i) <- s land base_mask;
            carry := s lsr base_bits
          done;
          rem.(j + n) <- (rem.(j + n) + !carry) land base_mask
        end
        else rem.(j + n) <- s
      end;
      q.(j) <- !qhat
    done;
    let r = ushift_right (trim (Array.sub rem 0 n)) shift in
    (trim q, r)
  end

let udivmod u v =
  match Array.length v with
  | 0 -> raise Division_by_zero
  | 1 ->
      let q, r = udiv_small u v.(0) in
      (q, if r = 0 then [||] else [| r |])
  | _ -> if ucompare u v < 0 then ([||], u) else udivmod_knuth u v

(* ------------------------------------------------------------------ *)
(* Representation plumbing                                             *)
(* ------------------------------------------------------------------ *)

(* Magnitude limbs of a positive native int. *)
let mag_of_pos x =
  let rec limbs x acc = if x = 0 then List.rev acc else limbs (x lsr base_bits) ((x land base_mask) :: acc) in
  Array.of_list (limbs x [])

(* Native value of a trimmed magnitude known to be at most [max_int]. *)
let int_of_mag m = Array.fold_right (fun limb acc -> (acc lsl base_bits) lor limb) m 0

(* A trimmed magnitude fits a non-negative native int iff it is at most
   [max_int] = 2^62 - 1: up to 4 limbs always fit (60 bits); 5 limbs fit
   when the top limb keeps the total at or below 62 bits. *)
let mag_fits_int m =
  let l = Array.length m in
  l <= 4 || (l = 5 && m.(4) <= 3)

(* Canonicalizing constructor from sign and (possibly untrimmed)
   magnitude.  The single place where the Small/Big boundary is
   decided, so the representation of a value never depends on the
   operation that produced it. *)
let norm_sign_mag sign m =
  let m = trim m in
  if Array.length m = 0 then Small 0
  else if mag_fits_int m then Small (if sign < 0 then -int_of_mag m else int_of_mag m)
  else Big { sign = (if sign < 0 then -1 else 1); mag = m }

(* Decompose into (sign, magnitude limbs) for the limb-level code. *)
let sign_mag = function
  | Small 0 -> (0, [||])
  | Small v -> if v > 0 then (1, mag_of_pos v) else (-1, mag_of_pos (-v))
  | Big { sign; mag } -> (sign, mag)

(* ------------------------------------------------------------------ *)
(* Signed interface                                                    *)
(* ------------------------------------------------------------------ *)

let of_int x =
  if x <> min_int then Small x
  else (* min_int = -2^62 on 64-bit: magnitude does not fit [Small]. *)
    Big { sign = -1; mag = ushift_left [| 1 |] (Sys.int_size - 1) }

let sign = function Small v -> compare v 0 | Big b -> b.sign
let is_zero t = t = Small 0

let neg = function
  | Small v -> Small (-v) (* [Small] never holds [min_int] *)
  | Big b -> Big { b with sign = -b.sign }

let abs t = if sign t < 0 then neg t else t

let compare a b =
  match (a, b) with
  | Small x, Small y -> compare x y
  | Small _, Big b -> -b.sign (* |Big| > max_int >= |Small| *)
  | Big b, Small _ -> b.sign
  | Big x, Big y ->
      if x.sign <> y.sign then compare x.sign y.sign
      else if x.sign >= 0 then ucompare x.mag y.mag
      else ucompare y.mag x.mag

let equal a b =
  match (a, b) with
  | Small x, Small y -> x = y
  | Big x, Big y -> x.sign = y.sign && ucompare x.mag y.mag = 0
  | _ -> false (* canonical form: Small and Big ranges are disjoint *)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* Canonical form makes hashing representation-independent: a given
   integer value is always [Small] or always [Big], never both. *)
let hash = function
  | Small v -> Hashtbl.hash v
  | Big { sign; mag } -> Hashtbl.hash (sign, mag)

(* Slow paths through the limb code. *)
let add_slow a b =
  let sa, ma = sign_mag a and sb, mb = sign_mag b in
  if sa = 0 then b
  else if sb = 0 then a
  else if sa = sb then norm_sign_mag sa (uadd ma mb)
  else begin
    let c = ucompare ma mb in
    if c = 0 then zero
    else if c > 0 then norm_sign_mag sa (usub ma mb)
    else norm_sign_mag sb (usub mb ma)
  end

let mul_slow a b =
  let sa, ma = sign_mag a and sb, mb = sign_mag b in
  if sa = 0 || sb = 0 then zero else norm_sign_mag (sa * sb) (umul ma mb)

let add a b =
  match (a, b) with
  | Small x, Small y ->
      let s = x + y in
      (* Overflow iff operands share a sign the sum lost; a sum of
         exactly [min_int] is representable but not [Small]. *)
      if (x >= 0) = (y >= 0) && (s >= 0) <> (x >= 0) then add_slow a b
      else if s = min_int then of_int min_int
      else Small s
  | _ -> add_slow a b

let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | Small x, Small y ->
      if x = 0 || y = 0 then zero
      else begin
        let p = x * y in
        (* [p <> min_int] first: rules the lone [p / y] overflow case
           out before the division validates the product. *)
        if p <> min_int && p / y = x then Small p else mul_slow a b
      end
  | _ -> mul_slow a b

let mul_int a x =
  match a with
  | Small _ when x <> min_int -> mul a (Small x)
  | _ ->
      if x = 0 || is_zero a then zero
      else if x = min_int then mul a (of_int x)
      else begin
        let sa, ma = sign_mag a in
        let s = if x < 0 then -sa else sa in
        let ax = if x < 0 then -x else x in
        if ax < base then norm_sign_mag s (umul_small ma ax) else mul a (of_int x)
      end

let divmod a b =
  match (a, b) with
  | _, Small 0 -> raise Division_by_zero
  | Small x, Small y ->
      (* Native [/] and [mod] are truncated with [sign r = sign a],
         exactly the documented contract; operands are never [min_int]
         so [min_int / -1] cannot be reached. *)
      (Small (x / y), Small (x mod y))
  | _ ->
      let sa, ma = sign_mag a and sb, mb = sign_mag b in
      if sa = 0 then (zero, zero)
      else begin
        let q, r = udivmod ma mb in
        (norm_sign_mag (sa * sb) q, norm_sign_mag sa r)
      end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv_rem a b =
  let q, r = divmod a b in
  if sign r >= 0 then (q, r)
  else if sign b > 0 then (sub q one, add r b)
  else (add q one, sub r b)

let gcd a b =
  match (a, b) with
  | Small x, Small y ->
      let rec go a b = if b = 0 then a else go b (a mod b) in
      Small (go (Stdlib.abs x) (Stdlib.abs y))
  | _ ->
      let rec go a b = if is_zero b then a else go b (rem a b) in
      go (abs a) (abs b)

let lcm a b = if is_zero a || is_zero b then zero else abs (mul (div a (gcd a b)) b)

let pow b n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n = if n = 0 then acc else if n land 1 = 1 then go (mul acc b) (mul b b) (n lsr 1) else go acc (mul b b) (n lsr 1) in
  go one b n

let num_bits a =
  let rec bits x acc = if x = 0 then acc else bits (x lsr 1) (acc + 1) in
  match a with
  | Small 0 -> 0
  | Small v -> bits (Stdlib.abs v) 0
  | Big b ->
      let l = Array.length b.mag in
      ((l - 1) * base_bits) + bits b.mag.(l - 1) 0

let shift_left a n =
  if n < 0 then invalid_arg "Bigint.shift_left";
  match a with
  | Small 0 -> zero
  | Small v when n <= Sys.int_size - 2 && Stdlib.abs v <= Stdlib.max_int asr n -> Small (v lsl n)
  | _ ->
      let s, m = sign_mag a in
      norm_sign_mag s (ushift_left m n)

let shift_right a n =
  if n < 0 then invalid_arg "Bigint.shift_right";
  match a with
  | Small v ->
      let av = Stdlib.abs v in
      let shifted = if n >= Sys.int_size - 1 then 0 else av asr n in
      Small (if v < 0 then -shifted else shifted)
  | Big b -> norm_sign_mag b.sign (ushift_right b.mag n)

let succ a = add a one
let pred a = sub a one

(* [min_int] itself is the one native value whose magnitude (2^62)
   lives outside [Small]; recognize its limbs so the conversions below
   stay total on the native range. *)
let mag_is_min_int m =
  Array.length m = 5 && m.(4) = 4 && m.(3) = 0 && m.(2) = 0 && m.(1) = 0 && m.(0) = 0

let fits_int = function
  | Small _ -> true
  | Big b -> b.sign < 0 && mag_is_min_int b.mag

let to_int_opt = function
  | Small v -> Some v
  | Big b -> if b.sign < 0 && mag_is_min_int b.mag then Some Stdlib.min_int else None

let to_int a =
  match to_int_opt a with Some v -> v | None -> failwith "Bigint.to_int: overflow"

let to_float = function
  | Small v -> float_of_int v
  | Big b ->
      let v = Array.fold_right (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb) b.mag 0.0 in
      if b.sign < 0 then -.v else v

let to_string = function
  | Small v -> string_of_int v
  | Big b ->
      let buf = Buffer.create 32 in
      let chunks = ref [] in
      let m = ref b.mag in
      while Array.length !m > 0 do
        let q, r = udiv_small !m 10000 in
        chunks := r :: !chunks;
        m := q
      done;
      if b.sign < 0 then Buffer.add_char buf '-';
      (match !chunks with
      | [] -> ()
      | first :: rest ->
          Buffer.add_string buf (string_of_int first);
          List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest);
      Buffer.contents buf

let pp fmt a = Format.pp_print_string fmt (to_string a)

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty";
  let negative, start =
    match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  String.iter
    (fun c -> if not (c = '-' || c = '+' || (c >= '0' && c <= '9')) then invalid_arg "Bigint.of_string: bad digit")
    s;
  if len - start <= 18 then begin
    (* At most 18 digits always fits a 63-bit int. *)
    match int_of_string_opt s with
    | Some v -> of_int v
    | None -> invalid_arg "Bigint.of_string: bad digit"
  end
  else begin
    let acc = ref [||] in
    let i = ref start in
    while !i < len do
      let chunk_len = Stdlib.min 4 (len - !i) in
      let chunk = String.sub s !i chunk_len in
      String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit") chunk;
      let v = int_of_string chunk in
      let scale = match chunk_len with 1 -> 10 | 2 -> 100 | 3 -> 1000 | _ -> 10000 in
      acc := uadd (umul_small !acc scale) (if v = 0 then [||] else [| v land base_mask; v lsr base_bits |]);
      i := !i + chunk_len
    done;
    norm_sign_mag (if negative then -1 else 1) !acc
  end

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end

(* ------------------------------------------------------------------ *)
(* Limb-only reference paths                                           *)
(* ------------------------------------------------------------------ *)

module Reference = struct
  (* Every operation decomposes to sign-magnitude and runs the limb
     code unconditionally, bypassing the [Small] fast paths.  Results
     are renormalized, so they compare [equal] to the fast ones. *)

  let add a b = add_slow a b
  let sub a b = add_slow a (neg b)
  let mul a b = mul_slow a b

  let divmod a b =
    let sa, ma = sign_mag a and sb, mb = sign_mag b in
    if sb = 0 then raise Division_by_zero
    else if sa = 0 then (zero, zero)
    else begin
      let q, r = udivmod ma mb in
      (norm_sign_mag (sa * sb) q, norm_sign_mag sa r)
    end

  let gcd a b =
    let rec go ma mb = if Array.length mb = 0 then ma else go mb (snd (udivmod ma mb)) in
    let _, ma = sign_mag (abs a) and _, mb = sign_mag (abs b) in
    norm_sign_mag 1 (go ma mb)
end
