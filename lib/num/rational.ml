type t = { num : Bigint.t; den : Bigint.t }

(* Canonical form: positive reduced denominator, zero is 0/1.  The
   arithmetic below leans on two classic shortcuts (Knuth 4.5.1): when
   operands are already canonical, [add] only needs a gcd against
   [gcd a.den b.den] and [mul] only needs the two cross gcds — both
   collapse to no gcd at all in the ubiquitous integer / shared
   denominator cases that the simplex pivots and Fourier–Motzkin
   combinations produce. *)

let canonical num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    if Bigint.equal den Bigint.one then { num; den }
    else begin
      let g = Bigint.gcd num den in
      if Bigint.equal g Bigint.one then { num; den }
      else { num = Bigint.div num g; den = Bigint.div den g }
    end
  end

let make = canonical
let of_bigint n = { num = n; den = Bigint.one }
let of_int i = of_bigint (Bigint.of_int i)
let of_ints a b = canonical (Bigint.of_int a) (Bigint.of_int b)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let two = of_int 2
let half = of_ints 1 2

let of_float f =
  if not (Float.is_finite f) then invalid_arg "Rational.of_float: not finite";
  if f = 0.0 then zero
  else begin
    let mantissa, exponent = Float.frexp f in
    (* mantissa * 2^53 is integral for finite floats. *)
    let scaled = Int64.of_float (mantissa *. 9007199254740992.0) in
    let num = Bigint.of_string (Int64.to_string scaled) in
    let e = exponent - 53 in
    if e >= 0 then of_bigint (Bigint.shift_left num e)
    else canonical num (Bigint.shift_left Bigint.one (-e))
  end

let to_float t = Bigint.to_float t.num /. Bigint.to_float t.den

let sign t = Bigint.sign t.num
let is_zero t = Bigint.is_zero t.num
let is_integer t = Bigint.equal t.den Bigint.one

let compare a b =
  (* Same denominator (integers included) needs no cross products, and
     a sign mismatch decides without any multiplication. *)
  if Bigint.equal a.den b.den then Bigint.compare a.num b.num
  else begin
    let sa = Bigint.sign a.num and sb = Bigint.sign b.num in
    if sa <> sb then Stdlib.compare sa sb
    else Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)
  end

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* Canonical form plus a canonical [Bigint.hash] make this consistent
   with [equal] regardless of whether components sit on the small-int
   or the limb representation. *)
let hash t = Hashtbl.hash (Bigint.hash t.num, Bigint.hash t.den)

let neg t = { t with num = Bigint.neg t.num }
let abs t = { t with num = Bigint.abs t.num }

let inv t =
  if is_zero t then raise Division_by_zero;
  if Bigint.sign t.num < 0 then { num = Bigint.neg t.den; den = Bigint.neg t.num }
  else { num = t.den; den = t.num }

let add a b =
  if Bigint.is_zero a.num then b
  else if Bigint.is_zero b.num then a
  else if Bigint.equal a.den b.den then begin
    (* Shared denominator: only the sum can share a factor with it. *)
    let num = Bigint.add a.num b.num in
    if Bigint.equal a.den Bigint.one then { num; den = Bigint.one } else canonical num a.den
  end
  else if Bigint.equal a.den Bigint.one then
    (* n + p/q = (n·q + p)/q is already reduced: gcd(p, q) = 1. *)
    { num = Bigint.add (Bigint.mul a.num b.den) b.num; den = b.den }
  else if Bigint.equal b.den Bigint.one then
    { num = Bigint.add a.num (Bigint.mul b.num a.den); den = a.den }
  else begin
    let g = Bigint.gcd a.den b.den in
    if Bigint.equal g Bigint.one then
      (* Coprime denominators: the sum is already in lowest terms. *)
      {
        num = Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den);
        den = Bigint.mul a.den b.den;
      }
    else begin
      (* Knuth 4.5.1: reduce by g up front; the residual common factor
         of the sum divides g, so the final gcd runs on small data. *)
      let da = Bigint.div a.den g and db = Bigint.div b.den g in
      let num = Bigint.add (Bigint.mul a.num db) (Bigint.mul b.num da) in
      let den = Bigint.mul da b.den in
      let g2 = Bigint.gcd num g in
      if Bigint.equal g2 Bigint.one then { num; den }
      else { num = Bigint.div num g2; den = Bigint.div den g2 }
    end
  end

let sub a b = add a (neg b)

let mul a b =
  if Bigint.is_zero a.num || Bigint.is_zero b.num then zero
  else if Bigint.equal a.den Bigint.one && Bigint.equal b.den Bigint.one then
    { num = Bigint.mul a.num b.num; den = Bigint.one }
  else begin
    (* Cross-reduce before multiplying: with canonical operands,
       gcd(a.num·b.num, a.den·b.den) = gcd(a.num, b.den) · gcd(b.num, a.den),
       so the product below is born canonical and the gcds run on the
       small pre-product operands. *)
    let g1 = Bigint.gcd a.num b.den and g2 = Bigint.gcd b.num a.den in
    let n1 = if Bigint.equal g1 Bigint.one then a.num else Bigint.div a.num g1 in
    let n2 = if Bigint.equal g2 Bigint.one then b.num else Bigint.div b.num g2 in
    let d1 = if Bigint.equal g2 Bigint.one then a.den else Bigint.div a.den g2 in
    let d2 = if Bigint.equal g1 Bigint.one then b.den else Bigint.div b.den g1 in
    { num = Bigint.mul n1 n2; den = Bigint.mul d1 d2 }
  end

let div a b = mul a (inv b)
let mul_int a i = mul a (of_int i)

let floor t = fst (Bigint.ediv_rem t.num t.den)

let ceil t =
  let q, r = Bigint.ediv_rem t.num t.den in
  if Bigint.is_zero r then q else Bigint.succ q

let pow t n =
  if n >= 0 then { num = Bigint.pow t.num n; den = Bigint.pow t.den n }
  else inv { num = Bigint.pow t.num (-n); den = Bigint.pow t.den (-n) }

let to_string t =
  if is_integer t then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den

let pp fmt t = Format.pp_print_string fmt (to_string t)

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
      let num = Bigint.of_string (String.sub s 0 i) in
      let den = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      canonical num den
  | None -> (
      match String.index_opt s '.' with
      | None -> of_bigint (Bigint.of_string s)
      | Some i ->
          let int_part = String.sub s 0 i in
          let frac_part = String.sub s (i + 1) (String.length s - i - 1) in
          let negative = String.length int_part > 0 && int_part.[0] = '-' in
          let digits = int_part ^ frac_part in
          let digits = if digits = "" || digits = "-" || digits = "+" then digits ^ "0" else digits in
          let num = Bigint.of_string digits in
          let den = Bigint.pow (Bigint.of_int 10) (String.length frac_part) in
          let q = canonical num den in
          if negative && Bigint.sign q.num > 0 then neg q else q)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
