(** Plan→kernel compiler: flat bytecode programs for the sampling task.

    [compile] lowers a finalized {!Scdb_plan.Plan.t} to one contiguous
    instruction array executed by a small register VM: constraint rows
    of every membership oracle are packed into a shared integer/float
    pool, union dispatch is jump-threaded off the Karp–Luby categorical
    draw, rejection loops become backward jumps on trial counters, and
    convex leaves step chains through the structure-of-arrays walk
    kernel ({!Polytope.Kernel.Batch}) via its raw accessors.  The
    instruction set and operand layout are documented in DESIGN.md.

    Two engines share the format:

    - the {e strict} engine ([optimize:false], the default) is a
      bit-exact mirror of the {!Observable} interpreter: starting from
      the same rng state and the same {!Convex_obs.prepared} pieces it
      consumes the identical draw sequence and emits the identical
      sample stream, so flight records replay across engines;
    - the {e optimized} engine ([optimize:true]) additionally applies
      cost-based plan rewrites — per-leaf sampler selection
      (rejection-box when {!Scdb_plan.Cost.rejection_box_trials} beats
      the hit-and-run schedule), intersection membership conjunctions
      reordered smallest-bounding-box-first, and duplicate union leaves
      sharing one compiled piece and one volume estimate.  Rewrites
      preserve the sampling distribution but not the rng stream.

    Volume estimation (the weight prologues that seed union/argmin
    dispatch) still runs the interpreted estimators — the VM compiles
    the per-draw hot path, and the interpreter stays the differential
    oracle for it. *)

type t

val compile :
  ?optimize:bool ->
  plan:Scdb_plan.Plan.t ->
  pieces:Convex_obs.prepared array ->
  unit ->
  (t, string) result
(** Lower [plan] over its prepared convex pieces, given in preorder
    leaf order (the order {!Scdb_gis.Plan_exec} constructs them in).
    The compiler cross-checks every budget recorded in the plan
    (union trials, rejection budgets, walk schedules) against the
    {!Scdb_plan.Cost} formulas it inlines and refuses to compile on
    mismatch; only [Sample] tasks over dfk/guard/union/inter/diff
    nodes are supported. *)

val optimized : t -> bool
val dim : t -> int

val instruction_count : t -> int
(** Number of decoded instructions (not code-array words). *)

val sample_one : t -> Rng.t -> Vec.t
(** One draw, with the interpreter's retry envelope: up to
    [max 4 ⌈20·ln(1/δ)⌉] root attempts, then
    @raise Observable.Estimation_failed like {!Observable.sample_exn}. *)

val sample_many : t -> Rng.t -> n:int -> Vec.t list
(** [n] draws in order; mirrors {!Observable.sample_many}. *)

val disassemble : t -> string
(** Human-readable program listing: piece table, weight/trial slots,
    then one line per instruction ([explain --format program]). *)
