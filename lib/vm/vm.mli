(** Plan→kernel compiler: flat bytecode programs for the sampling task.

    [compile] lowers a finalized {!Scdb_plan.Plan.t} to one contiguous
    instruction array executed by a small register VM: constraint rows
    of every membership oracle are packed into a shared integer/float
    pool, union dispatch is jump-threaded off the Karp–Luby categorical
    draw, rejection loops become backward jumps on trial counters, and
    convex leaves step chains through the structure-of-arrays walk
    kernel ({!Polytope.Kernel.Batch}) via its raw accessors.  The
    instruction set and operand layout are documented in DESIGN.md.

    Two engines share the format:

    - the {e strict} engine ([optimize:false], the default) is a
      bit-exact mirror of the {!Observable} interpreter: starting from
      the same rng state and the same {!Convex_obs.prepared} pieces it
      consumes the identical draw sequence and emits the identical
      sample stream, so flight records replay across engines;
    - the {e optimized} engine ([optimize:true]) additionally applies
      cost-based plan rewrites — per-leaf sampler selection
      (rejection-box when {!Scdb_plan.Cost.rejection_box_trials} beats
      the hit-and-run schedule), intersection membership conjunctions
      reordered smallest-bounding-box-first, and duplicate union leaves
      sharing one compiled piece and one volume estimate.  Rewrites
      preserve the sampling distribution but not the rng stream.

    Volume estimation (the weight prologues that seed union/argmin
    dispatch) still runs the interpreted estimators — the VM compiles
    the per-draw hot path, and the interpreter stays the differential
    oracle for it. *)

type t

val compile :
  ?optimize:bool ->
  plan:Scdb_plan.Plan.t ->
  pieces:Convex_obs.prepared array ->
  unit ->
  (t, string) result
(** Lower [plan] over its prepared convex pieces, given in preorder
    leaf order (the order {!Scdb_gis.Plan_exec} constructs them in).
    The compiler cross-checks every budget recorded in the plan
    (union trials, rejection budgets, walk schedules) against the
    {!Scdb_plan.Cost} formulas it inlines and refuses to compile on
    mismatch; [Sample] and [Report] tasks over
    dfk/guard/union/inter/diff nodes are supported (the report task's
    volume estimation runs through {!mirror}). *)

val optimized : t -> bool
val dim : t -> int

val instruction_count : t -> int
(** Number of decoded instructions (not code-array words). *)

type prof = {
  pcounts : int array;  (** per code word: executions of the instruction based there *)
  ptimes : float array;  (** per code word: accumulated wall ns (timing mode) *)
  ptiming : bool;  (** take clock reads around WALK/ENSURE/MEMBER/MEMPOLY *)
}
(** Profiling cells for {!sample_one}: both arrays must have
    {!code_words} entries.  Counting ([ptiming = false]) is exact and
    allocation-free — one array bump per executed instruction.  Timing
    additionally buckets monotonic-clock ns per pc, but only around the
    expensive opcodes, which is what keeps its overhead within the
    documented ≤5% budget on walk-bound programs (see DESIGN.md §10).
    [Scdb_profile.Profile] owns the ergonomic wrapper. *)

val sample_one : ?prof:prof -> t -> Rng.t -> Vec.t
(** One draw, with the interpreter's retry envelope: up to
    [max 4 ⌈20·ln(1/δ)⌉] root attempts, then
    @raise Observable.Estimation_failed like {!Observable.sample_exn}.
    [prof] fills profiling cells without changing the rng stream. *)

val sample_many : ?prof:prof -> t -> Rng.t -> n:int -> Vec.t list
(** [n] draws in order; mirrors {!Observable.sample_many}. *)

val mirror : t -> Observable.t
(** The interpreted mirror of the compiled plan (each node
    Progress-tagged with its plan-node id).  The weight prologues
    estimate through it; [report --engine vm|vm-opt] runs its volume
    estimate here so the result matches the interpreter's contract. *)

(** {1 Symbolization}

    The compiler records, for every code word, the plan-node id whose
    codegen emitted it plus a rewrite tag naming the vm-opt rewrite
    that shaped it ([rejection_box_substituted], [shared_union_leaf],
    [reordered_membership]).  {!disassemble} annotates each line with
    both; the profiler folds per-pc counts through this table into
    per-node attribution rows. *)

val code_words : t -> int
(** Length of the code array — the domain of {!prof} cells and pcs. *)

val instruction_bases : t -> int array
(** Base pc of every instruction, ascending. *)

val opcode_at : t -> int -> int
(** Opcode int at a base pc. *)

val opcode_name : int -> string
(** Lower-case mnemonic ("emit", "walk", ...); total. *)

val num_opcodes : int

val node_at : t -> int -> int
(** Originating plan-node id of the code word at [pc]. *)

val tag_at : t -> int -> string option
(** Rewrite tag of the code word at [pc], if any. *)

val rewrite_tags : t -> (int * string list) list
(** Per plan-node id, the distinct rewrite tags on its instructions
    (nodes without tags omitted; sorted by id). *)

val disassemble : t -> string
(** Human-readable program listing: piece table, weight/trial slots,
    then one line per instruction annotated with its plan node and
    rewrite tag ([explain --format program]). *)
