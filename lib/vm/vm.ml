module Plan = Scdb_plan.Plan
module Cost = Scdb_plan.Cost
module Tel = Scdb_telemetry.Telemetry
module Progress = Scdb_progress.Progress
module Log = Scdb_log.Log
module Batch = Polytope.Kernel.Batch

let tel_draws = Tel.Counter.make "vm.draws"
let tel_trials = Tel.Counter.make "vm.trials"
let tel_steps = Tel.Counter.make "vm.steps"
let tel_exhausted = Tel.Counter.make "vm.exhausted"
let tel_programs = Tel.Counter.make "vm.programs"

(* ------------------------------------------------------------------ *)
(* Instruction set                                                     *)
(* ------------------------------------------------------------------ *)

(* Opcode layout (operands inline in the code array; [t]rial slot,
   [w]eight slot, [j]ump register, [p]iece index, [m]embership pool
   offset, [L] code address):

     EMIT                      1 word   halt, current point is the draw
     FAILROOT                  1 word   root retries exhausted: log + raise
     TRIALS t k                3 words  trials[t] := k
     DECJNZ t L                3 words  trials[t] -= 1; jump L while > 0
     ENSURE w                  2 words  run weight prologue w once
     ALLZERO w L               3 words  jump L when all weights[w] <= 0
     CATEGORICAL w j           3 words  j := categorical draw over weights[w]
     ARGMIN w j                3 words  j := index of smallest weight
     DISPATCH j m L0..Lm-1     3+m      jump-threaded child dispatch
     WALK p                    2 words  run piece p's sampler, set point reg
     MEMBER m Lt Lf            4 words  packed-row membership on point reg
     MEMPOLY p Lt Lf           4 words  polytope membership on point reg
     JMP L                     2 words
     TICK                      1 word   one combinator trial (progress)
     EXHAUST e                 2 words  run exhaust closure e (warn+count) *)

let op_emit = 0
let op_failroot = 1
let op_trials = 2
let op_decjnz = 3
let op_ensure = 4
let op_allzero = 5
let op_categorical = 6
let op_argmin = 7
let op_dispatch = 8
let op_walk = 9
let op_member = 10
let op_mempoly = 11
let op_jmp = 12
let op_tick = 13
let op_exhaust = 14
let num_opcodes = 15

let opcode_name = function
  | 0 -> "emit"
  | 1 -> "failroot"
  | 2 -> "trials"
  | 3 -> "decjnz"
  | 4 -> "ensure"
  | 5 -> "allzero"
  | 6 -> "categorical"
  | 7 -> "argmin"
  | 8 -> "dispatch"
  | 9 -> "walk"
  | 10 -> "member"
  | 11 -> "mempoly"
  | 12 -> "jmp"
  | 13 -> "tick"
  | 14 -> "exhaust"
  | op -> Printf.sprintf "op%d" op

(* One execution counter per opcode ([vm.op.<name>]); the Prometheus
   emitter appends [_total].  Ticked unconditionally in [exec] — the
   disabled-telemetry path is one load and a branch. *)
let op_counters = Array.init num_opcodes (fun i -> Tel.Counter.make ("vm.op." ^ opcode_name i))

(* Rewrite tags: which vm-opt rewrite produced an instruction.  Stored
   per code word next to the originating plan-node id, so optimized
   programs stay attributable after their plan-shape rewrites. *)
let tag_none = 0
let tag_rejection_box = 1
let tag_shared_leaf = 2
let tag_reordered_mem = 3

let tag_name = function
  | 1 -> Some "rejection_box_substituted"
  | 2 -> Some "shared_union_leaf"
  | 3 -> Some "reordered_membership"
  | _ -> None

exception Compile_error of string

let cerr fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Growable pools and the label-backpatching assembler                 *)
(* ------------------------------------------------------------------ *)

module Ib = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 64 0; n = 0 }

  let push b v =
    if b.n = Array.length b.a then begin
      let a' = Array.make (2 * b.n) 0 in
      Array.blit b.a 0 a' 0 b.n;
      b.a <- a'
    end;
    b.a.(b.n) <- v;
    b.n <- b.n + 1

  let len b = b.n
  let to_array b = Array.sub b.a 0 b.n
end

module Fb = struct
  type t = { mutable a : float array; mutable n : int }

  let create () = { a = Array.make 64 0.0; n = 0 }

  (* Returns the pool index of the pushed value. *)
  let push b v =
    if b.n = Array.length b.a then begin
      let a' = Array.make (2 * b.n) 0.0 in
      Array.blit b.a 0 a' 0 b.n;
      b.a <- a'
    end;
    b.a.(b.n) <- v;
    let i = b.n in
    b.n <- b.n + 1;
    i

  let to_array b = Array.sub b.a 0 b.n
end

module Asm = struct
  type t = {
    code : Ib.t;
    dbgn : Ib.t;  (* debug info: originating plan-node id per code word *)
    dbgt : Ib.t;  (* debug info: rewrite tag per code word *)
    mutable ctx_node : int;  (* current emission context, set by the gen functions *)
    mutable ctx_tag : int;
    mutable lbls : int array;
    mutable nlbl : int;
    mutable patches : int list;
  }

  let create () =
    {
      code = Ib.create ();
      dbgn = Ib.create ();
      dbgt = Ib.create ();
      ctx_node = 0;
      ctx_tag = tag_none;
      lbls = Array.make 64 (-1);
      nlbl = 0;
      patches = [];
    }

  let set_ctx a node tag =
    a.ctx_node <- node;
    a.ctx_tag <- tag

  let push a v =
    Ib.push a.code v;
    Ib.push a.dbgn a.ctx_node;
    Ib.push a.dbgt a.ctx_tag

  let new_label a =
    if a.nlbl = Array.length a.lbls then begin
      let l' = Array.make (2 * a.nlbl) (-1) in
      Array.blit a.lbls 0 l' 0 a.nlbl;
      a.lbls <- l'
    end;
    let l = a.nlbl in
    a.nlbl <- l + 1;
    a.lbls.(l) <- -1;
    l

  let bind a l = a.lbls.(l) <- Ib.len a.code

  (* Emit a label reference: the label id is written now and replaced
     by the bound address in [finalize]. *)
  let push_ref a l =
    a.patches <- Ib.len a.code :: a.patches;
    push a l

  let finalize a =
    let code = Ib.to_array a.code in
    List.iter
      (fun pos ->
        let l = code.(pos) in
        if l < 0 || l >= a.nlbl || a.lbls.(l) < 0 then
          cerr "vm: unbound label %d at code offset %d" l pos;
        code.(pos) <- a.lbls.(l))
      a.patches;
    (code, Ib.to_array a.dbgn, Ib.to_array a.dbgt)
end

(* ------------------------------------------------------------------ *)
(* Compiled pieces: one per distinct convex leaf                       *)
(* ------------------------------------------------------------------ *)

type kind = K_hr | K_grid of Grid.t | K_rej of { rlo : Vec.t; rhi : Vec.t }

type piece = {
  prep : Convex_obs.prepared;
  kind : kind;
  steps : int;  (* walk schedule of [kind]'s primary sampler *)
  hr_steps : int;  (* hit-and-run schedule (the K_rej fallback) *)
  batch : Batch.batch;  (* persistent K=1 kernel; reset per draw *)
  pdirs : float array;  (* raw direction block of [batch] *)
  plows : float array;
  phighs : float array;
  ppos : float array;  (* raw position block of [batch] *)
  pstart : Vec.t;  (* the rounded body's start point (origin) *)
  pmem : Vec.t -> bool;  (* walk oracle: body membership, no slack *)
}

let make_piece (prep : Convex_obs.prepared) kind ~steps ~hr_steps =
  let d = prep.Convex_obs.p_dim in
  let body = prep.Convex_obs.p_body in
  let start = Vec.create d in
  let batch = Batch.make body [| start |] in
  {
    prep;
    kind;
    steps;
    hr_steps;
    batch;
    pdirs = Batch.directions batch;
    plows = Batch.lows batch;
    phighs = Batch.highs batch;
    ppos = Batch.positions batch;
    pstart = start;
    pmem = (fun x -> Polytope.mem body x);
  }

(* Hit-and-run on the persistent batch kernel, chain 0.  [set_pos]
   rebuilds the chain's cache block, making the reused batch equivalent
   to the fresh cursor [Hit_and_run.sample_polytope] constructs; the
   per-step draw order (direction fill, then a uniform iff the chord is
   usable) replicates the interpreter's, so the rng stream is
   bit-identical. *)
let hr_draw p rng steps =
  Tel.Counter.add tel_steps steps;
  Progress.add_steps steps;
  let d = Vec.dim p.pstart in
  Batch.set_pos p.batch 0 p.pstart;
  for _ = 1 to steps do
    Rng.unit_vector_slice rng p.pdirs 0 d;
    Batch.chord_all p.batch;
    let lo = Array.unsafe_get p.plows 0 and hi = Array.unsafe_get p.phighs 0 in
    if hi > lo && Float.is_finite lo && Float.is_finite hi then
      Batch.advance p.batch 0 (Rng.uniform rng lo hi)
  done;
  Batch.pos p.batch 0

let walk_piece p rng =
  let point =
    match p.kind with
    | K_hr -> hr_draw p rng p.steps
    | K_grid grid -> Walk.sample rng ~grid ~mem:p.pmem ~start:p.pstart ~steps:p.steps
    | K_rej { rlo; rhi } -> (
        match Rejection.sample rng ~lo:rlo ~hi:rhi ~mem:p.pmem ~max_attempts:20_000 with
        | Some (x, _) -> x
        | None -> hr_draw p rng p.hr_steps)
  in
  Affine.apply_inverse p.prep.Convex_obs.p_transform point

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

type t = {
  code : int array;
  dbg_node : int array;  (* per code word: originating plan-node id *)
  dbg_tag : int array;  (* per code word: rewrite tag (0 = none) *)
  paths : int array array;  (* per node id: ancestry below the root, self last *)
  fpool : float array;
  mtab : int array;
  pieces : piece array;
  weights : float array array;
  ready : bool array;
  prologues : (Rng.t -> unit) array;
  trials : int array;
  jregs : int array;
  exhausts : (unit -> unit) array;
  root_attempts : int;
  root_id : int;
  pdim : int;
  opt : bool;
  header : string;
  mirror_obs : Observable.t;
}

let optimized t = t.opt
let dim t = t.pdim
let mirror t = t.mirror_obs
let code_words t = Array.length t.code
let node_at t pc = t.dbg_node.(pc)
let tag_at t pc = tag_name t.dbg_tag.(pc)
let opcode_at t pc = t.code.(pc)

(* Packed membership evaluation, mirroring [Relation.mem_float
   ~slack:1e-9]: exists over tuples of (for_all over atoms), each atom
   accumulating constant + Σ coeff·x over ascending variable index with
   the same float operation order as [Term.eval_float]. *)
let mem_rows t moff (x : Vec.t) =
  let mc = t.mtab and fp = t.fpool in
  let slack = 1e-9 in
  let ntuples = mc.(moff) in
  let p = ref (moff + 1) in
  let result = ref false in
  (try
     for _ = 1 to ntuples do
       let natoms = mc.(!p) in
       incr p;
       let ok = ref true in
       for _ = 1 to natoms do
         let op = mc.(!p) and k = mc.(!p + 1) and cidx = mc.(!p + 2) in
         p := !p + 3;
         if !ok then begin
           let acc = ref fp.(cidx) in
           for i = 0 to k - 1 do
             let var = mc.(!p + (2 * i)) and fi = mc.(!p + (2 * i) + 1) in
             acc := !acc +. (fp.(fi) *. x.(var))
           done;
           let v = !acc in
           let holds =
             match op with 0 -> v <= slack | 1 -> v < slack | _ -> Float.abs v <= slack
           in
           if not holds then ok := false
         end;
         p := !p + (2 * k)
       done;
       if !ok then begin
         result := true;
         raise Exit
       end
     done
   with Exit -> ());
  !result

exception Emitted

(* Profiling cells, filled by [exec] when supplied: [pcounts.(pc)] is
   the exact execution count of the instruction based at [pc];
   [ptimes.(pc)] accumulates wall ns when [ptiming] — only the
   expensive opcodes (WALK, ENSURE, MEMBER, MEMPOLY) take clock reads,
   which keeps the timing-mode overhead within the ≤5% budget on
   walk-bound programs. *)
type prof = { pcounts : int array; ptimes : float array; ptiming : bool }

let exec ?prof t rng =
  let code = t.code in
  let pc = ref 0 in
  let x = ref t.pieces.(0).pstart in
  let res = ref t.pieces.(0).pstart in
  (try
     while true do
       let base = !pc in
       let op = Array.unsafe_get code base in
       Tel.Counter.incr (Array.unsafe_get op_counters op);
       (match prof with
       | None -> ()
       | Some p -> Array.unsafe_set p.pcounts base (Array.unsafe_get p.pcounts base + 1));
       match op with
       | 0 (* EMIT *) ->
           res := !x;
           raise Emitted
       | 1 (* FAILROOT *) ->
           if Log.would_log Log.Error then
             Log.error "observable.sample_failed"
               [ Log.int "attempts" t.root_attempts; Log.int "dim" t.pdim ];
           raise (Observable.Estimation_failed "generator failed on every retry")
       | 2 (* TRIALS *) ->
           t.trials.(code.(base + 1)) <- code.(base + 2);
           pc := base + 3
       | 3 (* DECJNZ *) ->
           let s = code.(base + 1) in
           let v = t.trials.(s) - 1 in
           t.trials.(s) <- v;
           if v > 0 then pc := code.(base + 2) else pc := base + 3
       | 4 (* ENSURE *) ->
           let s = code.(base + 1) in
           if not t.ready.(s) then begin
             (match prof with
             | Some p when p.ptiming ->
                 let t0 = Tel.Clock.now () in
                 t.prologues.(s) rng;
                 p.ptimes.(base) <- p.ptimes.(base) +. ((Tel.Clock.now () -. t0) *. 1e9)
             | _ -> t.prologues.(s) rng);
             t.ready.(s) <- true
           end;
           pc := base + 2
       | 5 (* ALLZERO *) ->
           let w = t.weights.(code.(base + 1)) in
           if Array.for_all (fun v -> v <= 0.0) w then pc := code.(base + 2)
           else pc := base + 3
       | 6 (* CATEGORICAL *) ->
           t.jregs.(code.(base + 2)) <- Rng.categorical rng t.weights.(code.(base + 1));
           pc := base + 3
       | 7 (* ARGMIN *) ->
           let w = t.weights.(code.(base + 1)) in
           let j = ref 0 in
           Array.iteri (fun i v -> if v < w.(!j) then j := i) w;
           t.jregs.(code.(base + 2)) <- !j;
           pc := base + 3
       | 8 (* DISPATCH *) -> pc := code.(base + 3 + t.jregs.(code.(base + 1)))
       | 9 (* WALK *) ->
           (* Attribute the walk (and everything the sampler accrues
              underneath) to the leaf's plan node, not just the root:
              the ETA ticker and post-run attribution see per-leaf
              actuals exactly like the interpreter's tagged tree. *)
           let path = Array.unsafe_get t.paths (Array.unsafe_get t.dbg_node base) in
           Progress.enter_path path;
           (match prof with
           | Some p when p.ptiming ->
               let t0 = Tel.Clock.now () in
               x := walk_piece t.pieces.(code.(base + 1)) rng;
               p.ptimes.(base) <- p.ptimes.(base) +. ((Tel.Clock.now () -. t0) *. 1e9)
           | _ -> x := walk_piece t.pieces.(code.(base + 1)) rng);
           Progress.exit_path path;
           pc := base + 2
       | 10 (* MEMBER *) ->
           (match prof with
           | Some p when p.ptiming ->
               let t0 = Tel.Clock.now () in
               let r = mem_rows t code.(base + 1) !x in
               p.ptimes.(base) <- p.ptimes.(base) +. ((Tel.Clock.now () -. t0) *. 1e9);
               pc := (if r then code.(base + 2) else code.(base + 3))
           | _ ->
               pc := (if mem_rows t code.(base + 1) !x then code.(base + 2) else code.(base + 3)))
       | 11 (* MEMPOLY *) ->
           let pe = t.pieces.(code.(base + 1)) in
           (match prof with
           | Some p when p.ptiming ->
               let t0 = Tel.Clock.now () in
               let r = Polytope.mem ~slack:1e-9 pe.prep.Convex_obs.p_original !x in
               p.ptimes.(base) <- p.ptimes.(base) +. ((Tel.Clock.now () -. t0) *. 1e9);
               pc := (if r then code.(base + 2) else code.(base + 3))
           | _ ->
               pc :=
                 (if Polytope.mem ~slack:1e-9 pe.prep.Convex_obs.p_original !x then
                    code.(base + 2)
                  else code.(base + 3)))
       | 12 (* JMP *) -> pc := code.(base + 1)
       | 13 (* TICK *) ->
           Tel.Counter.incr tel_trials;
           Progress.add_trials_on (Array.unsafe_get t.paths (Array.unsafe_get t.dbg_node base)) 1;
           pc := base + 1
       | 14 (* EXHAUST *) ->
           t.exhausts.(code.(base + 1)) ();
           pc := base + 2
       | op -> failwith (Printf.sprintf "vm: bad opcode %d at %d" op base)
     done
   with Emitted -> ());
  !res

let sample_one ?prof t rng =
  Progress.with_node t.root_id @@ fun () ->
  let v = exec ?prof t rng in
  Tel.Counter.incr tel_draws;
  v

let sample_many ?prof t rng ~n =
  let acc = ref [] in
  for _ = 1 to n do
    acc := sample_one ?prof t rng :: !acc
  done;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let sampler_name (c : Convex_obs.config) =
  match c.Convex_obs.sampler with
  | Convex_obs.Grid_walk -> "grid"
  | Convex_obs.Hit_and_run -> "walk"
  | Convex_obs.Rejection_box -> "rejection"

let kind_name = function
  | K_hr -> "hit-and-run"
  | K_grid _ -> "grid-walk"
  | K_rej _ -> "rejection-box"

(* Pack a relation's membership test: [ntuples; per tuple: natoms; per
   atom: op, nterms, const-idx, (var, coeff-idx)×nterms].  Coefficients
   go through [Rational.to_float] exactly as [Term.eval_float] would. *)
let pack_relation mtab fpool r =
  let off = Ib.len mtab in
  let tuples = Relation.tuples r in
  Ib.push mtab (List.length tuples);
  List.iter
    (fun tuple ->
      Ib.push mtab (List.length tuple);
      List.iter
        (fun (atom : Atom.t) ->
          let term = atom.Atom.term in
          let opc = match atom.Atom.op with Atom.Le -> 0 | Atom.Lt -> 1 | Atom.Eq -> 2 in
          let coeffs = Term.coeffs term in
          Ib.push mtab opc;
          Ib.push mtab (List.length coeffs);
          Ib.push mtab (Fb.push fpool (Rational.to_float (Term.constant term)));
          List.iter
            (fun (v, c) ->
              Ib.push mtab v;
              Ib.push mtab (Fb.push fpool (Rational.to_float c)))
            coeffs)
        tuple)
    tuples;
  off

let is_leaf (n : Plan.node) =
  match n.Plan.op with Plan.Dfk _ | Plan.Guard -> true | _ -> false

let compile_exn opt (plan : Plan.t) (prepared : Convex_obs.prepared array) =
  (match plan.Plan.task with
  | Plan.Sample _ | Plan.Report _ -> ()
  | _ -> cerr "vm compiles sampling plans only");
  let delta = plan.Plan.delta and gamma = plan.Plan.gamma in
  (* Preorder leaves; binds piece [i] to the i-th dfk/guard leaf. *)
  let acc = ref [] in
  let rec collect (n : Plan.node) =
    match n.Plan.op with
    | Plan.Dfk _ | Plan.Guard -> acc := n :: !acc
    | Plan.Union_op _ | Plan.Inter_op _ | Plan.Diff_op _ -> List.iter collect n.Plan.children
    | op -> cerr "unsupported plan operator %S" (Plan.op_name op)
  in
  collect plan.Plan.root;
  let leaves = Array.of_list (List.rev !acc) in
  let nleaf = Array.length leaves in
  if nleaf <> Array.length prepared then
    cerr "piece count mismatch: plan has %d leaves, %d pieces prepared" nleaf
      (Array.length prepared);
  let ord_of_id = Hashtbl.create 16 in
  Array.iteri (fun i (n : Plan.node) -> Hashtbl.replace ord_of_id n.Plan.id i) leaves;
  (* Accuracy threading: the combinators sample children at ε/3
     ([Params.third_eps]); γ and δ are invariant. *)
  let eps_of_id = Hashtbl.create 16 in
  let rec thread (n : Plan.node) eps =
    Hashtbl.replace eps_of_id n.Plan.id eps;
    List.iter (fun c -> thread c (eps /. 3.0)) n.Plan.children
  in
  thread plan.Plan.root plan.Plan.eps;
  (* Duplicate-leaf sharing (optimized engine): leaves over the same
     original body with the same sampler configuration compile to one
     piece.  Rounding draws differ between duplicates, but any rounding
     of the same body yields the same sampling distribution. *)
  let leaf_eq i j =
    let a = prepared.(i) and b = prepared.(j) in
    a.Convex_obs.p_dim = b.Convex_obs.p_dim
    && a.Convex_obs.p_original.Polytope.flat = b.Convex_obs.p_original.Polytope.flat
    && a.Convex_obs.p_original.Polytope.b = b.Convex_obs.p_original.Polytope.b
    && a.Convex_obs.p_config = b.Convex_obs.p_config
  in
  let rep =
    Array.init nleaf (fun i ->
        if not opt then i
        else begin
          let r = ref i in
          (try
             for j = 0 to i - 1 do
               if leaf_eq j i then begin
                 r := j;
                 raise Exit
               end
             done
           with Exit -> ());
          !r
        end)
  in
  (* Validate leaves against the cost model and build distinct pieces. *)
  let leaf_info i (n : Plan.node) =
    let p = prepared.(i) in
    let d = p.Convex_obs.p_dim in
    if n.Plan.dim <> d then
      cerr "leaf %d (node %d): plan dim %d <> piece dim %d" i n.Plan.id n.Plan.dim d;
    let cfg = p.Convex_obs.p_config in
    let hr_steps =
      match cfg.Convex_obs.walk_steps with
      | Some s -> s
      | None -> Hit_and_run.default_steps ~dim:d
    in
    match n.Plan.op with
    | Plan.Guard -> (K_hr, hr_steps, hr_steps, false)
    | Plan.Dfk { method_; walk_steps; _ } ->
        let mname = sampler_name cfg in
        if mname <> method_ then
          cerr "leaf %d (node %d): plan method %S <> piece sampler %S" i n.Plan.id method_
            mname;
        let eps = Hashtbl.find eps_of_id n.Plan.id in
        let steps =
          match cfg.Convex_obs.walk_steps with
          | Some s -> s
          | None -> (
              match cfg.Convex_obs.sampler with
              | Convex_obs.Grid_walk -> Walk.default_steps ~dim:d ~eps
              | Convex_obs.Hit_and_run | Convex_obs.Rejection_box -> hr_steps)
        in
        if cfg.Convex_obs.walk_steps = None && steps <> walk_steps then
          cerr "leaf %d (node %d): plan walk_steps %d <> cost model %d at eps %g" i n.Plan.id
            walk_steps steps eps;
        let kind =
          match cfg.Convex_obs.sampler with
          | Convex_obs.Grid_walk ->
              K_grid (Grid.step_for ~gamma ~dim:d ~scale:p.Convex_obs.p_r_sup)
          | Convex_obs.Hit_and_run -> K_hr
          | Convex_obs.Rejection_box -> (
              (* The interpreter solves this LP on every draw; it is
                 rng-free, so hoisting it to compile time is
                 stream-preserving. *)
              match Polytope.bounding_box p.Convex_obs.p_body with
              | None -> K_hr
              | Some (lo, hi) -> K_rej { rlo = lo; rhi = hi })
        in
        let kind, swapped =
          (* Cost-based sampler selection: when the expected rejection
             budget undercuts the hit-and-run schedule, swap the leaf
             to exact-uniform box rejection (stream-changing: optimized
             engine only). *)
          if opt && kind = K_hr && Cost.rejection_box_trials ~dim:d <= steps then
            match Polytope.bounding_box p.Convex_obs.p_body with
            | Some (lo, hi) -> (K_rej { rlo = lo; rhi = hi }, true)
            | None -> (K_hr, false)
          else (kind, false)
        in
        (kind, steps, hr_steps, swapped)
    | _ -> assert false
  in
  let rt_acc = ref [] and nrt = ref 0 in
  let rt_idx = Array.make nleaf (-1) in
  let swapped = Array.make nleaf false in
  Array.iteri
    (fun i n ->
      let kind, steps, hr_steps, sw = leaf_info i n in
      swapped.(i) <- sw;
      if rep.(i) = i then begin
        rt_acc := make_piece prepared.(i) kind ~steps ~hr_steps :: !rt_acc;
        rt_idx.(i) <- !nrt;
        incr nrt
      end)
    leaves;
  (* Rewrite tag of a leaf's own instructions. *)
  let leaf_tag i =
    if rep.(i) <> i then tag_shared_leaf
    else if swapped.(i) then tag_rejection_box
    else tag_none
  in
  Array.iteri (fun i _ -> if rep.(i) <> i then rt_idx.(i) <- rt_idx.(rep.(i))) leaves;
  let pieces = Array.of_list (List.rev !rt_acc) in
  if Array.length pieces = 0 then cerr "plan has no convex pieces";
  (* Membership row packing, shared between duplicates. *)
  let mtab = Ib.create () and fpool = Fb.create () in
  let moff = Array.make nleaf (-1) in
  Array.iteri
    (fun i _ ->
      if rep.(i) = i then
        match prepared.(i).Convex_obs.p_relation with
        | Some r -> moff.(i) <- pack_relation mtab fpool r
        | None -> ())
    leaves;
  Array.iteri (fun i _ -> if rep.(i) <> i then moff.(i) <- moff.(rep.(i))) leaves;
  (* Mirror observable tree: the weight prologues estimate volumes
     through the same interpreted estimators (and internal caches) the
     interpreter engine uses, so the draw sequences coincide.  Each
     node is wrapped with a Progress tag (the same record update
     [Plan_exec.tag] applies on the interpreter side — rng-free, so
     stream-preserving): prologue volume work lands on the child that
     spends it, and [report --engine vm*] can run its volume estimate
     through the stored root mirror with full attribution. *)
  let tag_obs id (obs : Observable.t) =
    {
      obs with
      Observable.sample =
        (fun rng params -> Progress.with_node id (fun () -> obs.Observable.sample rng params));
      volume =
        (fun rng ~gamma ~eps ~delta ->
          Progress.with_node id (fun () -> obs.Observable.volume rng ~gamma ~eps ~delta));
    }
  in
  let kids_of_id = Hashtbl.create 8 in
  let ord = ref 0 in
  let rec mirror (n : Plan.node) : Observable.t =
    let obs =
      match n.Plan.op with
      | Plan.Dfk _ | Plan.Guard ->
          let i = !ord in
          incr ord;
          Convex_obs.observe prepared.(i)
      | Plan.Union_op _ ->
          let kids = Array.of_list (List.map mirror n.Plan.children) in
          Hashtbl.replace kids_of_id n.Plan.id kids;
          Union.union (Array.to_list kids)
      | Plan.Inter_op { poly_degree; _ } ->
          let kids = Array.of_list (List.map mirror n.Plan.children) in
          Hashtbl.replace kids_of_id n.Plan.id kids;
          Inter.inter ~poly_degree (Array.to_list kids)
      | Plan.Diff_op { poly_degree; _ } -> (
          match List.map mirror n.Plan.children with
          | [ a; b ] -> Diff.diff ~poly_degree a b
          | _ -> cerr "diff node %d must have exactly two children" n.Plan.id)
      | _ -> assert false
    in
    tag_obs n.Plan.id obs
  in
  let mirror_obs = mirror plan.Plan.root in
  (* Intersection membership order: smallest bounding box first, so the
     conjunction fails fast (rng-free, hence stream-preserving — but
     kept to the optimized engine so strict stays a pure mirror). *)
  let order_of_id = Hashtbl.create 8 in
  let mem_order (n : Plan.node) =
    match Hashtbl.find_opt order_of_id n.Plan.id with
    | Some o -> o
    | None ->
        let kids = Array.of_list n.Plan.children in
        let m = Array.length kids in
        let order =
          if not opt then Array.init m Fun.id
          else begin
            let key (c : Plan.node) =
              if not (is_leaf c) then Float.infinity
              else
                let i = Hashtbl.find ord_of_id c.Plan.id in
                match Polytope.bounding_box prepared.(i).Convex_obs.p_original with
                | None -> Float.infinity
                | Some (lo, hi) ->
                    let v = ref 1.0 in
                    for k = 0 to Vec.dim lo - 1 do
                      v := !v *. Float.max 0.0 (hi.(k) -. lo.(k))
                    done;
                    !v
            in
            let keys = Array.map key kids in
            Array.of_list
              (List.sort
                 (fun a b -> compare (keys.(a), a) (keys.(b), b))
                 (List.init m Fun.id))
          end
        in
        Hashtbl.replace order_of_id n.Plan.id order;
        order
  in
  (* Slot allocation. *)
  let asm = Asm.create () in
  let weights = ref [] and prologues = ref [] and wdesc = ref [] and nw = ref 0 in
  let new_wslot arr thunk desc =
    let s = !nw in
    incr nw;
    weights := arr :: !weights;
    prologues := thunk :: !prologues;
    wdesc := desc :: !wdesc;
    s
  in
  let ntr = ref 0 and tdesc = ref [] in
  let new_tslot desc =
    let s = !ntr in
    incr ntr;
    tdesc := desc :: !tdesc;
    s
  in
  let njr = ref 0 in
  let new_jreg () =
    let s = !njr in
    incr njr;
    s
  in
  let exhausts = ref [] and nex = ref 0 in
  let new_exhaust f =
    let s = !nex in
    incr nex;
    exhausts := f :: !exhausts;
    s
  in
  (* Code generation: each block runs with the point register as its
     only value state and exits through [lsucc] (point accepted) or
     [lfail] (this node declared failure, the interpreter's [None]). *)
  let rec gen_sample (n : Plan.node) ~lsucc ~lfail =
    match n.Plan.op with
    | Plan.Dfk _ ->
        let i = Hashtbl.find ord_of_id n.Plan.id in
        Asm.set_ctx asm n.Plan.id (leaf_tag i);
        Asm.push asm op_walk;
        Asm.push asm rt_idx.(i);
        Asm.push asm op_jmp;
        Asm.push_ref asm lsucc;
        ignore lfail
    | Plan.Guard -> cerr "guard node %d is membership-only and cannot be sampled" n.Plan.id
    | Plan.Union_op { trials; _ } -> gen_union n trials ~lsucc ~lfail
    | Plan.Inter_op { poly_degree; budget; _ } -> gen_inter n poly_degree budget ~lsucc ~lfail
    | Plan.Diff_op { poly_degree; budget; _ } -> gen_diff n poly_degree budget ~lsucc ~lfail
    | _ -> assert false
  and gen_mem ?(rtag = tag_none) (n : Plan.node) ~ltrue ~lfalse =
    match n.Plan.op with
    | Plan.Dfk _ | Plan.Guard ->
        let i = Hashtbl.find ord_of_id n.Plan.id in
        let tag = if rtag <> tag_none then rtag else leaf_tag i in
        Asm.set_ctx asm n.Plan.id tag;
        if moff.(i) >= 0 then begin
          Asm.push asm op_member;
          Asm.push asm moff.(i)
        end
        else begin
          Asm.push asm op_mempoly;
          Asm.push asm rt_idx.(i)
        end;
        Asm.push_ref asm ltrue;
        Asm.push_ref asm lfalse
    | Plan.Union_op _ ->
        (* exists: first accepting child wins *)
        let kids = Array.of_list n.Plan.children in
        let m = Array.length kids in
        Array.iteri
          (fun i c ->
            if i < m - 1 then begin
              let lnext = Asm.new_label asm in
              gen_mem ~rtag c ~ltrue ~lfalse:lnext;
              Asm.bind asm lnext
            end
            else gen_mem ~rtag c ~ltrue ~lfalse)
          kids
    | Plan.Inter_op _ ->
        let kids = Array.of_list n.Plan.children in
        let order = mem_order n in
        let m = Array.length kids in
        let reordered = ref false in
        Array.iteri (fun k j -> if k <> j then reordered := true) order;
        let rtag = if !reordered then tag_reordered_mem else rtag in
        Array.iteri
          (fun k j ->
            if k < m - 1 then begin
              let lnext = Asm.new_label asm in
              gen_mem ~rtag kids.(j) ~ltrue:lnext ~lfalse;
              Asm.bind asm lnext
            end
            else gen_mem ~rtag kids.(j) ~ltrue ~lfalse)
          order
    | Plan.Diff_op _ -> (
        match n.Plan.children with
        | [ a; b ] ->
            let l2 = Asm.new_label asm in
            gen_mem ~rtag a ~ltrue:l2 ~lfalse;
            Asm.bind asm l2;
            gen_mem ~rtag b ~ltrue:lfalse ~lfalse:ltrue
        | _ -> cerr "diff node %d must have exactly two children" n.Plan.id)
    | _ -> assert false
  and gen_union (n : Plan.node) trials ~lsucc ~lfail =
    let kids = Array.of_list n.Plan.children in
    let m = Array.length kids in
    let expect = Cost.union_trials ~m ~delta in
    if trials <> expect then
      cerr "union node %d: plan trials %d <> cost model %d" n.Plan.id trials expect;
    let eps = Hashtbl.find eps_of_id n.Plan.id in
    let eps3 = eps /. 3.0 and sub_delta = delta /. float_of_int (4 * m) in
    let mirrors = Hashtbl.find kids_of_id n.Plan.id in
    let w = Array.make m 0.0 in
    (* Weight sharing between duplicate sibling leaves (optimized). *)
    let dup = Array.make m (-1) in
    if opt then
      Array.iteri
        (fun i c ->
          if is_leaf c then begin
            let oi = Hashtbl.find ord_of_id c.Plan.id in
            try
              Array.iteri
                (fun k c' ->
                  if k >= i then raise Exit;
                  if is_leaf c' && leaf_eq (Hashtbl.find ord_of_id c'.Plan.id) oi then begin
                    dup.(i) <- k;
                    raise Exit
                  end)
                kids
            with Exit -> ()
          end)
        kids;
    let thunk rng =
      Array.iteri
        (fun i kid ->
          if dup.(i) >= 0 then w.(i) <- w.(dup.(i))
          else w.(i) <- Observable.volume kid rng ~gamma ~eps:eps3 ~delta:sub_delta)
        mirrors
    in
    let shared = Array.fold_left (fun c d -> if d >= 0 then c + 1 else c) 0 dup in
    let ws =
      new_wslot w thunk
        (Printf.sprintf "node %d union: m=%d eps=%g delta=%g%s" n.Plan.id m eps3 sub_delta
           (if shared > 0 then Printf.sprintf " (%d duplicate weight(s) shared)" shared
            else ""))
    in
    let ts = new_tslot (Printf.sprintf "node %d union: %d trials" n.Plan.id trials) in
    let jr = new_jreg () in
    Asm.set_ctx asm n.Plan.id (if shared > 0 then tag_shared_leaf else tag_none);
    Asm.push asm op_ensure;
    Asm.push asm ws;
    Asm.set_ctx asm n.Plan.id tag_none;
    Asm.push asm op_allzero;
    Asm.push asm ws;
    Asm.push_ref asm lfail;
    Asm.push asm op_trials;
    Asm.push asm ts;
    Asm.push asm trials;
    let ltrial = Asm.new_label asm in
    Asm.bind asm ltrial;
    Asm.push asm op_tick;
    Asm.push asm op_categorical;
    Asm.push asm ws;
    Asm.push asm jr;
    let ldec = Asm.new_label asm in
    let targets = Array.init m (fun _ -> Asm.new_label asm) in
    Asm.push asm op_dispatch;
    Asm.push asm jr;
    Asm.push asm m;
    Array.iter (fun l -> Asm.push_ref asm l) targets;
    Array.iteri
      (fun j cj ->
        Asm.bind asm targets.(j);
        let lchk = Asm.new_label asm in
        gen_sample cj ~lsucc:lchk ~lfail:ldec;
        Asm.bind asm lchk;
        (* accept iff first_index x = j: operands before j reject, j accepts *)
        for i = 0 to j - 1 do
          let lnext = Asm.new_label asm in
          gen_mem kids.(i) ~ltrue:ldec ~lfalse:lnext;
          Asm.bind asm lnext
        done;
        gen_mem cj ~ltrue:lsucc ~lfalse:ldec)
      kids;
    Asm.set_ctx asm n.Plan.id tag_none;
    Asm.bind asm ldec;
    Asm.push asm op_decjnz;
    Asm.push asm ts;
    Asm.push_ref asm ltrial;
    let e =
      new_exhaust (fun () ->
          Tel.Counter.incr tel_exhausted;
          if Log.would_log Log.Warn then
            Log.warn "union.exhausted" [ Log.int "trials" trials; Log.int "operands" m ])
    in
    Asm.push asm op_exhaust;
    Asm.push asm e;
    Asm.push asm op_jmp;
    Asm.push_ref asm lfail
  and gen_inter (n : Plan.node) poly_degree budget ~lsucc ~lfail =
    let kids = Array.of_list n.Plan.children in
    let m = Array.length kids in
    let ndim = n.Plan.dim in
    let expect = Cost.rejection_budget ~dim:ndim ~poly_degree ~delta in
    if budget <> expect then
      cerr "inter node %d: plan budget %d <> cost model %d" n.Plan.id budget expect;
    let eps = Hashtbl.find eps_of_id n.Plan.id in
    let eps3 = eps /. 3.0 and sub_delta = delta /. float_of_int (4 * m) in
    let mirrors = Hashtbl.find kids_of_id n.Plan.id in
    let w = Array.make m 0.0 in
    let thunk rng =
      Array.iteri
        (fun i kid -> w.(i) <- Observable.volume kid rng ~gamma ~eps:eps3 ~delta:sub_delta)
        mirrors
    in
    let ws =
      new_wslot w thunk
        (Printf.sprintf "node %d inter: m=%d eps=%g delta=%g" n.Plan.id m eps3 sub_delta)
    in
    let ts = new_tslot (Printf.sprintf "node %d inter: budget %d" n.Plan.id budget) in
    let jr = new_jreg () in
    Asm.set_ctx asm n.Plan.id tag_none;
    Asm.push asm op_ensure;
    Asm.push asm ws;
    Asm.push asm op_argmin;
    Asm.push asm ws;
    Asm.push asm jr;
    Asm.push asm op_trials;
    Asm.push asm ts;
    Asm.push asm budget;
    let ltrial = Asm.new_label asm in
    Asm.bind asm ltrial;
    Asm.push asm op_tick;
    let ldec = Asm.new_label asm in
    let lchk = Asm.new_label asm in
    let targets = Array.init m (fun _ -> Asm.new_label asm) in
    Asm.push asm op_dispatch;
    Asm.push asm jr;
    Asm.push asm m;
    Array.iter (fun l -> Asm.push_ref asm l) targets;
    Array.iteri
      (fun j cj ->
        Asm.bind asm targets.(j);
        gen_sample cj ~lsucc:lchk ~lfail:ldec)
      kids;
    (* shared accept check: x must lie in every operand *)
    Asm.bind asm lchk;
    let order = mem_order n in
    let reordered = ref false in
    Array.iteri (fun k j -> if k <> j then reordered := true) order;
    let rtag = if !reordered then tag_reordered_mem else tag_none in
    Array.iteri
      (fun k j ->
        if k < m - 1 then begin
          let lnext = Asm.new_label asm in
          gen_mem ~rtag kids.(j) ~ltrue:lnext ~lfalse:ldec;
          Asm.bind asm lnext
        end
        else gen_mem ~rtag kids.(j) ~ltrue:lsucc ~lfalse:ldec)
      order;
    Asm.set_ctx asm n.Plan.id tag_none;
    Asm.bind asm ldec;
    Asm.push asm op_decjnz;
    Asm.push asm ts;
    Asm.push_ref asm ltrial;
    let e =
      new_exhaust (fun () ->
          Tel.Counter.incr tel_exhausted;
          if Log.would_log Log.Warn then
            Log.warn "inter.exhausted"
              [ Log.int "budget" budget; Log.int "operands" m; Log.int "dim" ndim ])
    in
    Asm.push asm op_exhaust;
    Asm.push asm e;
    Asm.push asm op_jmp;
    Asm.push_ref asm lfail
  and gen_diff (n : Plan.node) poly_degree budget ~lsucc ~lfail =
    match n.Plan.children with
    | [ a; b ] ->
        let ndim = n.Plan.dim in
        let expect = Cost.rejection_budget ~dim:ndim ~poly_degree ~delta in
        if budget <> expect then
          cerr "diff node %d: plan budget %d <> cost model %d" n.Plan.id budget expect;
        let ts = new_tslot (Printf.sprintf "node %d diff: budget %d" n.Plan.id budget) in
        Asm.set_ctx asm n.Plan.id tag_none;
        Asm.push asm op_trials;
        Asm.push asm ts;
        Asm.push asm budget;
        let ltrial = Asm.new_label asm in
        Asm.bind asm ltrial;
        Asm.push asm op_tick;
        let ldec = Asm.new_label asm in
        let lchk = Asm.new_label asm in
        gen_sample a ~lsucc:lchk ~lfail:ldec;
        Asm.bind asm lchk;
        gen_mem b ~ltrue:ldec ~lfalse:lsucc;
        Asm.set_ctx asm n.Plan.id tag_none;
        Asm.bind asm ldec;
        Asm.push asm op_decjnz;
        Asm.push asm ts;
        Asm.push_ref asm ltrial;
        let e =
          new_exhaust (fun () ->
              Tel.Counter.incr tel_exhausted;
              if Log.would_log Log.Warn then
                Log.warn "diff.exhausted" [ Log.int "budget" budget; Log.int "dim" ndim ])
        in
        Asm.push asm op_exhaust;
        Asm.push asm e;
        Asm.push asm op_jmp;
        Asm.push_ref asm lfail
    | _ -> cerr "diff node %d must have exactly two children" n.Plan.id
  in
  (* Root retry envelope: [Observable.sample_exn]'s schedule. *)
  let root_attempts =
    Stdlib.max 4 (int_of_float (ceil (20.0 *. log (1.0 /. delta))))
  in
  let rt_slot = new_tslot (Printf.sprintf "root: %d retries" root_attempts) in
  Asm.set_ctx asm plan.Plan.root.Plan.id tag_none;
  Asm.push asm op_trials;
  Asm.push asm rt_slot;
  Asm.push asm root_attempts;
  let lattempt = Asm.new_label asm in
  Asm.bind asm lattempt;
  let lemit = Asm.new_label asm and lfail = Asm.new_label asm in
  gen_sample plan.Plan.root ~lsucc:lemit ~lfail;
  Asm.set_ctx asm plan.Plan.root.Plan.id tag_none;
  Asm.bind asm lemit;
  Asm.push asm op_emit;
  Asm.bind asm lfail;
  Asm.push asm op_decjnz;
  Asm.push asm rt_slot;
  Asm.push_ref asm lattempt;
  Asm.push asm op_failroot;
  let code, dbg_node, dbg_tag = Asm.finalize asm in
  (* Per-node ancestry below the root (self last; the root's own path
     is empty): what [exec] pushes around a WALK / trial tick so
     accrual stays inclusive without double-counting the root, which
     [sample_one] already stacks. *)
  let npaths =
    let m = ref plan.Plan.node_count in
    Plan.iter_nodes (fun (n : Plan.node) -> m := Stdlib.max !m (n.Plan.id + 1)) plan;
    !m
  in
  let paths = Array.make npaths [||] in
  let rec build_paths below (n : Plan.node) =
    let below' =
      if n.Plan.id = plan.Plan.root.Plan.id then below else n.Plan.id :: below
    in
    paths.(n.Plan.id) <- Array.of_list (List.rev below');
    List.iter (build_paths below') n.Plan.children
  in
  build_paths [] plan.Plan.root;
  let rev_array l = Array.of_list (List.rev l) in
  let header =
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "; vm program (%s engine): %d code words, dim %d, root node %d\n"
         (if opt then "optimized" else "strict")
         (Array.length code) plan.Plan.root.Plan.dim plan.Plan.root.Plan.id);
    Buffer.add_string b
      (Printf.sprintf "; gamma %g, eps %g, delta %g, %d root attempt(s)\n" gamma plan.Plan.eps
         delta root_attempts);
    Array.iteri
      (fun i (p : piece) ->
        Buffer.add_string b
          (Printf.sprintf "; piece %d: dim %d, %s, %d step(s), %d constraint row(s)\n" i
             p.prep.Convex_obs.p_dim (kind_name p.kind) p.steps
             (Polytope.num_constraints p.prep.Convex_obs.p_body)))
      pieces;
    List.iteri
      (fun i d -> Buffer.add_string b (Printf.sprintf "; weights w%d: %s\n" i d))
      (List.rev !wdesc);
    List.iteri
      (fun i d -> Buffer.add_string b (Printf.sprintf "; trials t%d: %s\n" i d))
      (List.rev !tdesc);
    Buffer.contents b
  in
  Tel.Counter.incr tel_programs;
  {
    code;
    dbg_node;
    dbg_tag;
    paths;
    fpool = Fb.to_array fpool;
    mtab = Ib.to_array mtab;
    pieces;
    weights = rev_array !weights;
    ready = Array.make (Stdlib.max 1 !nw) false;
    prologues = rev_array !prologues;
    trials = Array.make (Stdlib.max 1 !ntr) 0;
    jregs = Array.make (Stdlib.max 1 !njr) 0;
    exhausts = rev_array !exhausts;
    root_attempts;
    root_id = plan.Plan.root.Plan.id;
    pdim = plan.Plan.root.Plan.dim;
    opt;
    header;
    mirror_obs;
  }

let compile ?(optimize = false) ~plan ~pieces () =
  match compile_exn optimize plan pieces with
  | t -> Ok t
  | exception Compile_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Disassembly                                                         *)
(* ------------------------------------------------------------------ *)

let width code base =
  match code.(base) with
  | 0 | 1 | 13 -> 1
  | 4 | 9 | 12 | 14 -> 2
  | 2 | 3 | 5 | 6 | 7 -> 3
  | 10 | 11 -> 4
  | 8 -> 3 + code.(base + 2)
  | op -> failwith (Printf.sprintf "vm: bad opcode %d at %d" op base)

let instruction_count t =
  let n = ref 0 and pc = ref 0 in
  while !pc < Array.length t.code do
    incr n;
    pc := !pc + width t.code !pc
  done;
  !n

let instruction_bases t =
  let acc = ref [] and pc = ref 0 in
  while !pc < Array.length t.code do
    acc := !pc :: !acc;
    pc := !pc + width t.code !pc
  done;
  Array.of_list (List.rev !acc)

let rewrite_tags t =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun base ->
      match tag_name t.dbg_tag.(base) with
      | None -> ()
      | Some name ->
          let id = t.dbg_node.(base) in
          let cur = Option.value (Hashtbl.find_opt tbl id) ~default:[] in
          if not (List.mem name cur) then Hashtbl.replace tbl id (name :: cur))
    (instruction_bases t);
  List.sort compare
    (Hashtbl.fold (fun id tags acc -> (id, List.sort compare tags) :: acc) tbl [])

let disassemble t =
  let b = Buffer.create 1024 in
  Buffer.add_string b t.header;
  let code = t.code in
  let pc = ref 0 in
  while !pc < Array.length code do
    let base = !pc in
    let line =
      match code.(base) with
      | 0 -> "emit"
      | 1 -> "failroot"
      | 2 -> Printf.sprintf "trials      t%d, %d" code.(base + 1) code.(base + 2)
      | 3 -> Printf.sprintf "decjnz      t%d, @%d" code.(base + 1) code.(base + 2)
      | 4 -> Printf.sprintf "ensure      w%d" code.(base + 1)
      | 5 -> Printf.sprintf "allzero     w%d, @%d" code.(base + 1) code.(base + 2)
      | 6 -> Printf.sprintf "categorical w%d -> j%d" code.(base + 1) code.(base + 2)
      | 7 -> Printf.sprintf "argmin      w%d -> j%d" code.(base + 1) code.(base + 2)
      | 8 ->
          let m = code.(base + 2) in
          Printf.sprintf "dispatch    j%d [%s]" code.(base + 1)
            (String.concat " "
               (List.init m (fun i -> Printf.sprintf "@%d" code.(base + 3 + i))))
      | 9 -> Printf.sprintf "walk        p%d" code.(base + 1)
      | 10 ->
          Printf.sprintf "member      m%d, @%d, @%d" code.(base + 1) code.(base + 2)
            code.(base + 3)
      | 11 ->
          Printf.sprintf "mempoly     p%d, @%d, @%d" code.(base + 1) code.(base + 2)
            code.(base + 3)
      | 12 -> Printf.sprintf "jmp         @%d" code.(base + 1)
      | 13 -> "tick"
      | 14 -> Printf.sprintf "exhaust     e%d" code.(base + 1)
      | op -> Printf.sprintf "bad opcode %d" op
    in
    let annot =
      Printf.sprintf "n%d%s" t.dbg_node.(base)
        (match tag_name t.dbg_tag.(base) with Some s -> " " ^ s | None -> "")
    in
    Buffer.add_string b (Printf.sprintf "%5d: %-36s ; %s\n" base line annot);
    pc := base + width code base
  done;
  Buffer.contents b
