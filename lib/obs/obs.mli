(** Scoped observability contexts with merge semantics.

    A {!Ctx.t} bundles the five per-run observability stores —
    telemetry registry, trace span forest, log sink, progress bus and
    RNG lineage table — into one value.  A run installs its context
    ({!Ctx.run}), the kernels record into it through the unchanged
    ambient APIs, and the parent folds the results back with
    {!Ctx.merge}.  The pre-context process globals survive as
    {!Ctx.default}: code that never creates a context behaves exactly
    as before, bit for bit.

    Ownership contract: each store is single-writer — at most one
    domain has a context installed at a time, installs/merges happen
    from the owning (parent) side, and cross-context aggregation goes
    through [merge], never shared cells.  The {!Status} readers use
    only explicit-instance accessors, so a ticker thread can watch any
    set of live contexts without installing them. *)

module Ctx : sig
  type t

  val default : t
  (** The process-global stores, as one context.  Always first in
      {!all}. *)

  val create :
    ?name:string ->
    ?ring_capacity:int ->
    ?span_limit:int ->
    ?prov_cap:int ->
    unit ->
    t
  (** Fresh context with empty stores, registered in the process
      directory.  [name] (default ["ctx"]) labels status rows and the
      synthetic span-forest root on merge. *)

  val name : t -> string
  val created_at : t -> float

  val elapsed : t -> float
  (** Seconds from creation to {!mark_done} (or to now while live). *)

  val run : t -> (unit -> 'a) -> 'a
  (** Install all five stores as the calling domain's ambient
      observability state for the duration of the thunk
      (exception-safe; nests).  Same domain/thread caveats as
      [Telemetry.with_registry]: a [Thread] shares its domain's
      ambient state, a spawned [Domain] starts at the defaults. *)

  val merge : into:t -> t -> unit
  (** [merge ~into child] folds [child]'s stores into [into]:
      counters/histograms add (merged quantiles are exactly those of
      the concatenated observations), [child]'s span forest is spliced
      under a synthetic root named after it, log tails append, progress
      accruals and budgets add, lineage nodes re-root.  [child] is
      unchanged.  A parent-context operation — never merge two
      contexts into each other concurrently. *)

  val mark_done : t -> unit
  (** Freeze {!elapsed} and flag the context done in status rows. *)

  val finished : t -> bool

  val set_ess : t -> float -> unit
  (** Record an effective-sample-size estimate for status rows (the
      sampler computes it from its collected points; contexts don't). *)

  val ess : t -> float option

  val all : unit -> t list
  (** Every context created since process start (or the last
      {!clear_directory}), oldest first, {!default} included. *)

  val registry : t -> Scdb_telemetry.Telemetry.Registry.t
  val forest : t -> Scdb_trace.Trace.Forest.t
  val sink : t -> Scdb_log.Log.Sink.t
  val bus : t -> Scdb_progress.Progress.Bus.t
  val prov : t -> Scdb_rng.Rng.Provenance.Table.t

  val clear_directory : unit -> unit
  (** Tests only: forget every context but {!default}. *)
end

module Status : sig
  type row = {
    r_name : string;
    r_done : bool;
    r_elapsed : float;
    r_draws : float;
    r_rate : float;  (** draws/sec since the previous snapshot *)
    r_accepted : int;
    r_attempts : int;
    r_acceptance : float option;
    r_work : float;
    r_budget : float;
    r_burn : float option;  (** actual work / planned budget *)
    r_ess : float option;
    r_warns : int;
    r_errors : int;
    r_spans : int;
  }

  val snapshot : unit -> row list
  (** One row per directory context, in creation order.  Rates come
      from deltas against the previous snapshot (the first snapshot
      averages over the context's lifetime), so run exactly one status
      reader at a time. *)

  val to_json : ?ts:float -> row list -> string
  (** [spatialdb-status/1] document (one line, trailing newline). *)

  val render : row list -> string
  (** Human table, one row per context. *)

  val write : string -> row list -> unit
  (** Atomic publish: write to [path ^ ".tmp"], then rename over
      [path], so a concurrent reader never sees a torn file. *)

  val start_ticker :
    ?interval:float -> ?out:string -> ?to_stderr:bool -> unit -> unit
  (** Background thread refreshing the status every [interval] seconds
      (default 0.5): {!write} to [out] if given, a compact live line
      to stderr if [to_stderr].  Reads contexts only through
      explicit-instance accessors, so it never perturbs ambient
      state. *)

  val stop_ticker : ?out:string -> ?to_stderr:bool -> unit -> unit
  (** Stop the ticker and publish one final snapshot (so [out]
      reflects the finished run). *)
end
