module Tel = Scdb_telemetry.Telemetry
module Trace = Scdb_trace.Trace
module Log = Scdb_log.Log
module Progress = Scdb_progress.Progress
module Rng = Scdb_rng.Rng

(* ------------------------------------------------------------------ *)
(* Contexts                                                            *)
(*                                                                     *)
(* A context bundles the five per-run observability stores — telemetry *)
(* registry, trace span forest, log sink, progress bus and RNG lineage *)
(* table — into one value that a run installs, fills, and merges back  *)
(* into its parent.  The pre-context process globals survive as the    *)
(* [default] context, so every path that never creates a context       *)
(* behaves exactly as before.                                          *)
(* ------------------------------------------------------------------ *)

module Ctx = struct
  type t = {
    name : string;
    reg : Tel.Registry.t;
    forest : Trace.Forest.t;
    sink : Log.Sink.t;
    bus : Progress.Bus.t;
    prov : Rng.Provenance.Table.t;
    created_at : float;
    mutable finished_at : float option;
    mutable ess : float option;
    (* Status-rate bookkeeping, touched only by the status snapshotter. *)
    mutable last_draws : float;
    mutable last_t : float;
  }

  (* Process directory of live contexts, oldest first in [all].  The
     mutex only guards the list; context contents follow each store's
     own single-writer contract. *)
  let dir_mu = Mutex.create ()
  let dir : t list ref = ref []

  let register c =
    Mutex.lock dir_mu;
    dir := c :: !dir;
    Mutex.unlock dir_mu;
    c

  let make ~name ~reg ~forest ~sink ~bus ~prov =
    let now = Tel.Clock.now () in
    {
      name;
      reg;
      forest;
      sink;
      bus;
      prov;
      created_at = now;
      finished_at = None;
      ess = None;
      last_draws = 0.0;
      last_t = now;
    }

  (* Built at module initialization on the initial domain, before any
     context can have been installed, so the ambient stores really are
     the process defaults. *)
  let default =
    register
      (make ~name:"default" ~reg:Tel.Registry.default
         ~forest:(Trace.current_forest ()) ~sink:(Log.current_sink ())
         ~bus:(Progress.current_bus ())
         ~prov:(Rng.Provenance.current_table ()))

  let create ?(name = "ctx") ?ring_capacity ?span_limit ?prov_cap () =
    register
      (make ~name
         ~reg:(Tel.Registry.create ())
         ~forest:(Trace.Forest.create ?span_limit ())
         ~sink:(Log.Sink.create ?ring_capacity ())
         ~bus:(Progress.Bus.create ())
         ~prov:(Rng.Provenance.Table.create ?cap:prov_cap ()))

  let name c = c.name
  let registry c = c.reg
  let forest c = c.forest
  let sink c = c.sink
  let bus c = c.bus
  let prov c = c.prov
  let created_at c = c.created_at
  let finished c = c.finished_at <> None

  let mark_done c =
    if c.finished_at = None then c.finished_at <- Some (Tel.Clock.now ())

  let set_ess c v = c.ess <- Some v
  let ess c = c.ess

  let elapsed c =
    (match c.finished_at with Some t -> t | None -> Tel.Clock.now ())
    -. c.created_at

  let run c f =
    Tel.with_registry c.reg (fun () ->
        Trace.with_forest c.forest (fun () ->
            Log.with_sink c.sink (fun () ->
                Progress.with_bus c.bus (fun () ->
                    Rng.Provenance.with_table c.prov f))))

  let merge ~into src =
    if into != src then begin
      Tel.Registry.merge_into ~dst:into.reg src.reg;
      Trace.Forest.merge_into ~name:src.name ~dst:into.forest src.forest;
      Log.Sink.merge_into ~dst:into.sink src.sink;
      Progress.Bus.merge_into ~dst:into.bus src.bus;
      Rng.Provenance.Table.merge_into ~dst:into.prov src.prov
    end

  let all () =
    Mutex.lock dir_mu;
    let l = List.rev !dir in
    Mutex.unlock dir_mu;
    l

  (* Tests only: forget every context but [default]. *)
  let clear_directory () =
    Mutex.lock dir_mu;
    dir := [ default ];
    Mutex.unlock dir_mu
end

(* ------------------------------------------------------------------ *)
(* Status view                                                         *)
(*                                                                     *)
(* Everything below reads contexts through explicit-instance accessors *)
(* only ([?reg], [Bus.draws], [Sink.warn_count], …), never through the *)
(* ambient [with_*] installs — a ticker thread shares its spawning     *)
(* domain's ambient state, so installing from it would corrupt the     *)
(* owner's view.                                                       *)
(* ------------------------------------------------------------------ *)

module Status = struct
  type row = {
    r_name : string;
    r_done : bool;
    r_elapsed : float;
    r_draws : float;
    r_rate : float;  (** draws/sec since the previous snapshot *)
    r_accepted : int;
    r_attempts : int;
    r_acceptance : float option;
    r_work : float;
    r_budget : float;
    r_burn : float option;  (** actual work / planned budget *)
    r_ess : float option;
    r_warns : int;
    r_errors : int;
    r_spans : int;
  }

  (* Coarse cross-engine acceptance signal: samples produced vs trials
     spent, summed over whichever kernels ran. *)
  let accepted_counters =
    [
      "rejection.accepted";
      "walk.accepted";
      "ball_walk.accepted";
      "union.samples";
      "vm.draws";
    ]

  let attempt_counters =
    [ "rejection.attempts"; "walk.proposals"; "union.trials"; "vm.trials" ]

  let sum_counters reg names =
    List.fold_left
      (fun acc n -> acc + Option.value ~default:0 (Tel.counter_value ~reg n))
      0 names

  let row_of now (c : Ctx.t) =
    let reg = Ctx.registry c in
    let accepted = sum_counters reg accepted_counters in
    let attempts = sum_counters reg attempt_counters in
    (* The progress bus tracks work units, not emitted samples, so the
       draw count (and the rate derived from it) comes from the
       produced-samples counters. *)
    let draws =
      Float.max (Progress.Bus.draws (Ctx.bus c)) (float_of_int accepted)
    in
    let dt = now -. c.Ctx.last_t in
    let rate =
      if dt > 1e-9 && draws >= c.Ctx.last_draws then
        (draws -. c.Ctx.last_draws) /. dt
      else 0.0
    in
    c.Ctx.last_draws <- draws;
    c.Ctx.last_t <- now;
    let work = Progress.Bus.total_work (Ctx.bus c) in
    let budget = Progress.Bus.total_budget (Ctx.bus c) in
    {
      r_name = Ctx.name c;
      r_done = Ctx.finished c;
      r_elapsed = Ctx.elapsed c;
      r_draws = draws;
      r_rate = rate;
      r_accepted = accepted;
      r_attempts = attempts;
      r_acceptance =
        (if attempts > 0 then Some (float_of_int accepted /. float_of_int attempts)
         else None);
      r_work = work;
      r_budget = budget;
      r_burn = (if budget > 0.0 then Some (work /. budget) else None);
      r_ess = Ctx.ess c;
      r_warns = Log.Sink.warn_count (Ctx.sink c);
      r_errors = Log.Sink.error_count (Ctx.sink c);
      r_spans = Trace.Forest.size (Ctx.forest c);
    }

  let snapshot () =
    let now = Tel.Clock.now () in
    List.map (row_of now) (Ctx.all ())

  (* ---------------------------------------------------------------- *)
  (* Renderers                                                         *)
  (* ---------------------------------------------------------------- *)

  let json_float v =
    if Float.is_finite v then Printf.sprintf "%.17g" v
    else if v > 0.0 then "1e308"
    else if v < 0.0 then "-1e308"
    else "0"

  let json_opt = function None -> "null" | Some v -> json_float v

  let to_json ?ts rows =
    let ts = match ts with Some t -> t | None -> Tel.Clock.now () in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\"schema\": \"spatialdb-status/1\", \"ts\": ";
    Buffer.add_string buf (json_float ts);
    Buffer.add_string buf ", \"contexts\": [";
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\": \"%s\", \"done\": %b, \"elapsed\": %s, \"draws\": \
              %s, \"draws_per_sec\": %s, \"accepted\": %d, \"attempts\": %d, \
              \"acceptance\": %s, \"work\": %s, \"budget\": %s, \
              \"budget_burn\": %s, \"ess\": %s, \"warns\": %d, \"errors\": \
              %d, \"spans\": %d}"
             (Trace.json_escape r.r_name) r.r_done (json_float r.r_elapsed)
             (json_float r.r_draws) (json_float r.r_rate) r.r_accepted
             r.r_attempts (json_opt r.r_acceptance) (json_float r.r_work)
             (json_float r.r_budget) (json_opt r.r_burn) (json_opt r.r_ess)
             r.r_warns r.r_errors r.r_spans))
      rows;
    Buffer.add_string buf "]}\n";
    Buffer.contents buf

  let pct = function None -> "    -" | Some v -> Printf.sprintf "%4.0f%%" (100.0 *. v)

  let render rows =
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "%-16s %-5s %9s %12s %10s %7s %6s %8s %5s %6s\n" "CONTEXT"
         "STATE" "ELAPSED" "DRAWS" "DRAWS/S" "ACCEPT" "BURN" "ESS" "WARN"
         "SPANS");
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "%-16s %-5s %8.1fs %12.0f %10.1f %7s %6s %8s %5d %6d\n"
             r.r_name
             (if r.r_done then "done" else "run")
             r.r_elapsed r.r_draws r.r_rate
             (pct r.r_acceptance) (pct r.r_burn)
             (match r.r_ess with
             | None -> "-"
             | Some e -> Printf.sprintf "%.1f" e)
             r.r_warns r.r_spans))
      rows;
    Buffer.contents buf

  let live_line rows =
    let parts =
      List.filter_map
        (fun r ->
          if r.r_name = "default" && r.r_draws = 0.0 then None
          else
            Some
              (Printf.sprintf "%s%s %.0f@%.0f/s a%s b%s" r.r_name
                 (if r.r_done then "*" else "")
                 r.r_draws r.r_rate (pct r.r_acceptance) (pct r.r_burn)))
        rows
    in
    "[status] " ^ String.concat " | " parts

  (* Write-then-rename so a concurrent reader never sees a torn file. *)
  let write path rows =
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc (to_json rows);
    close_out oc;
    Sys.rename tmp path

  (* ---------------------------------------------------------------- *)
  (* Ticker                                                            *)
  (* ---------------------------------------------------------------- *)

  let ticker_running = ref false
  let ticker_thread : Thread.t option ref = ref None

  let tick ~out ~to_stderr () =
    let rows = snapshot () in
    (match out with None -> () | Some path -> write path rows);
    if to_stderr then begin
      output_string stderr ("\r" ^ live_line rows);
      flush stderr
    end

  let start_ticker ?(interval = 0.5) ?out ?(to_stderr = false) () =
    if not !ticker_running then begin
      ticker_running := true;
      ticker_thread :=
        Some
          (Thread.create
             (fun () ->
               while !ticker_running do
                 tick ~out ~to_stderr ();
                 Thread.delay interval
               done)
             ())
    end

  let stop_ticker ?out ?(to_stderr = false) () =
    if !ticker_running then begin
      ticker_running := false;
      (match !ticker_thread with Some t -> Thread.join t | None -> ());
      ticker_thread := None;
      tick ~out ~to_stderr ();
      if to_stderr then begin
        output_char stderr '\n';
        flush stderr
      end
    end
end
