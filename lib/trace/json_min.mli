(** Minimal JSON reader.

    Just enough to round-trip the JSON this repository emits itself
    (telemetry dumps, Chrome traces, run reports) in tests and the CI
    report validator, with no external dependency.  Numbers are read as
    floats; BMP [\uXXXX] escapes decode to UTF-8. *)

exception Parse_error of string

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> t
(** @raise Parse_error on malformed input (with an offset). *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing key or non-object. *)

val to_list : t -> t list option
val to_float : t -> float option
val to_string : t -> string option
val to_bool : t -> bool option
