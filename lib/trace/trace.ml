module Tel = Scdb_telemetry.Telemetry

let enabled_flag =
  ref
    (match Sys.getenv_opt "SPATIALDB_TRACE" with
    | Some "" | Some "0" | None -> false
    | Some _ -> true)

let enabled () = !enabled_flag

type span = {
  id : int;
  parent : int; (* -1 for roots *)
  depth : int;
  name : string;
  start_s : float; (* monotonic seconds *)
  mutable dur_s : float; (* < 0 while open *)
  mutable attrs : (string * string) list;
  counters0 : (string * int) list; (* telemetry snapshot at open *)
}

(* All spans in creation order (reversed), the stack of open spans, and
   the monotonic origin every exported timestamp is relative to.  Spans
   are created only on the enabled path; the disabled path is one
   mutable load and a branch, like [Telemetry]'s. *)
let all : span list ref = ref []
let stack : span list ref = ref []
let next_id = ref 0
let epoch = ref (Tel.Clock.now ())

(* Soft cap on recorded spans: beyond it new spans are not recorded
   (children of unrecorded spans attach to the nearest recorded
   ancestor), so a sampling loop can never make the trace unbounded. *)
let span_limit = ref 200_000
let set_span_limit n = span_limit := Stdlib.max 0 n
let recording () = !enabled_flag && !next_id < !span_limit

let reset () =
  all := [];
  stack := [];
  next_id := 0;
  epoch := Tel.Clock.now ()

let set_enabled b = enabled_flag := b

let counter_snapshot counters =
  List.map (fun c -> (c, Option.value ~default:0 (Tel.counter_value c))) counters

let open_span ~attrs ~counters name =
  let parent, depth = match !stack with [] -> (-1, 0) | p :: _ -> (p.id, p.depth + 1) in
  let s =
    {
      id = !next_id;
      parent;
      depth;
      name;
      start_s = Tel.Clock.now ();
      dur_s = -1.0;
      attrs;
      counters0 = counter_snapshot counters;
    }
  in
  incr next_id;
  all := s :: !all;
  stack := s :: !stack;
  s

let close_span s =
  if s.dur_s < 0.0 then begin
    s.dur_s <- Tel.Clock.now () -. s.start_s;
    List.iter
      (fun (c, v0) ->
        match Tel.counter_value c with
        | Some v -> s.attrs <- (c, string_of_int (v - v0)) :: s.attrs
        | None -> ())
      s.counters0;
    (* Pop down to [s]; anything deeper was left open by a non-local
       exit and is closed with the same end time. *)
    let rec pop = function
      | [] -> []
      | x :: rest ->
          if x.id = s.id then rest
          else begin
            if x.dur_s < 0.0 then x.dur_s <- s.start_s +. s.dur_s -. x.start_s;
            pop rest
          end
    in
    stack := pop !stack
  end

let span ?(attrs = []) ?(counters = []) name f =
  if not (recording ()) then f ()
  else begin
    let s = open_span ~attrs ~counters name in
    match f () with
    | v ->
        close_span s;
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        s.attrs <- ("error", Printexc.to_string e) :: s.attrs;
        close_span s;
        Printexc.raise_with_backtrace e bt
  end

(* No-closure bracket for kernels: [start] returns the span id (or -1
   when disabled), [finish] closes it.  Zero allocation when disabled. *)
let start name = if not (recording ()) then -1 else (open_span ~attrs:[] ~counters:[] name).id

let finish id =
  if id >= 0 then
    match List.find_opt (fun s -> s.id = id) !stack with
    | Some s -> close_span s
    | None -> ()

let current_id () = match !stack with [] -> -1 | s :: _ -> s.id

let add_attr k v =
  if !enabled_flag then match !stack with [] -> () | s :: _ -> s.attrs <- (k, v) :: s.attrs

let add_attr_int k v = if !enabled_flag then add_attr k (string_of_int v)
let add_attr_float k v = if !enabled_flag then add_attr k (Printf.sprintf "%.6g" v)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

type view = {
  v_id : int;
  v_parent : int;
  v_depth : int;
  v_name : string;
  v_ts_us : float;
  v_dur_us : float;
  v_attrs : (string * string) list;
}

let view_of s =
  let dur = if s.dur_s < 0.0 then Tel.Clock.now () -. s.start_s else s.dur_s in
  {
    v_id = s.id;
    v_parent = s.parent;
    v_depth = s.depth;
    v_name = s.name;
    v_ts_us = Float.max 0.0 ((s.start_s -. !epoch) *. 1e6);
    v_dur_us = Float.max 0.0 (dur *. 1e6);
    v_attrs = List.rev s.attrs;
  }

let spans () = List.rev_map view_of !all
let count () = List.length !all

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_num v =
  if Float.is_finite v then Printf.sprintf "%.3f" v else if v > 0.0 then "1e308" else "0"

(* Chrome trace-event format: an object with a [traceEvents] array of
   complete ("ph":"X") events, microsecond timestamps.  Loads in
   chrome://tracing and Perfetto. *)
let to_chrome_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  List.iteri
    (fun i v ->
      Buffer.add_string buf (if i = 0 then "\n" else ",\n");
      Buffer.add_string buf
        (Printf.sprintf "{\"name\": \"%s\", \"cat\": \"spatialdb\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"ts\": %s, \"dur\": %s"
           (json_escape v.v_name) (json_num v.v_ts_us) (json_num v.v_dur_us));
      if v.v_attrs <> [] then begin
        Buffer.add_string buf ", \"args\": {";
        List.iteri
          (fun j (k, value) ->
            if j > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf
              (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape value)))
          v.v_attrs;
        Buffer.add_string buf "}"
      end;
      Buffer.add_string buf "}")
    (spans ());
  Buffer.add_string buf "\n]}";
  Buffer.contents buf

let to_text_tree () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun v ->
      let indent = String.make (2 * v.v_depth) ' ' in
      let label = indent ^ v.v_name in
      Buffer.add_string buf (Printf.sprintf "%-48s %10.3f ms" label (v.v_dur_us /. 1e3));
      List.iter (fun (k, value) -> Buffer.add_string buf (Printf.sprintf "  %s=%s" k value)) v.v_attrs;
      Buffer.add_char buf '\n')
    (spans ());
  Buffer.contents buf
