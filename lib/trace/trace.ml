module Tel = Scdb_telemetry.Telemetry

let enabled_flag =
  ref
    (match Sys.getenv_opt "SPATIALDB_TRACE" with
    | Some "" | Some "0" | None -> false
    | Some _ -> true)

let enabled () = !enabled_flag

type span = {
  id : int;
  parent : int; (* -1 for roots *)
  depth : int;
  name : string;
  start_s : float; (* monotonic seconds *)
  mutable dur_s : float; (* < 0 while open *)
  mutable attrs : (string * string) list;
  counters0 : (string * int) list; (* telemetry snapshot at open *)
}

(* A span forest: all spans in creation order (reversed), the stack of
   open spans, and the monotonic origin every exported timestamp is
   relative to.  The origin is stamped when the forest is created (and
   re-stamped by [reset]), so a context made late in a long-lived
   process gets timestamps relative to its own birth, not process
   start.  Forests are single-writer: the domain that has one installed
   ({!with_forest}).  Spans are created only on the enabled path; the
   disabled path is one mutable load and a branch, like [Telemetry]'s. *)
type forest = {
  mutable f_all : span list;
  mutable f_stack : span list;
  mutable f_next : int;
  mutable f_epoch : float;
  mutable f_limit : int; (* soft cap on recorded spans *)
}

let make_forest ?(span_limit = 200_000) () =
  { f_all = []; f_stack = []; f_next = 0; f_epoch = Tel.Clock.now (); f_limit = span_limit }

let default_forest = make_forest ()
let dls_forest : forest Domain.DLS.key = Domain.DLS.new_key (fun () -> default_forest)
let cur () = Domain.DLS.get dls_forest

let with_forest f fn =
  let prev = Domain.DLS.get dls_forest in
  Domain.DLS.set dls_forest f;
  Fun.protect ~finally:(fun () -> Domain.DLS.set dls_forest prev) fn

let set_span_limit n = (cur ()).f_limit <- Stdlib.max 0 n
let recording () = !enabled_flag && (let f = cur () in f.f_next < f.f_limit)

let reset () =
  let f = cur () in
  f.f_all <- [];
  f.f_stack <- [];
  f.f_next <- 0;
  f.f_epoch <- Tel.Clock.now ()

let set_enabled b = enabled_flag := b

let counter_snapshot counters =
  List.map (fun c -> (c, Option.value ~default:0 (Tel.counter_value c))) counters

let open_span f ~attrs ~counters name =
  let parent, depth = match f.f_stack with [] -> (-1, 0) | p :: _ -> (p.id, p.depth + 1) in
  let s =
    {
      id = f.f_next;
      parent;
      depth;
      name;
      start_s = Tel.Clock.now ();
      dur_s = -1.0;
      attrs;
      counters0 = counter_snapshot counters;
    }
  in
  f.f_next <- f.f_next + 1;
  f.f_all <- s :: f.f_all;
  f.f_stack <- s :: f.f_stack;
  s

let close_span f s =
  if s.dur_s < 0.0 then begin
    s.dur_s <- Tel.Clock.now () -. s.start_s;
    List.iter
      (fun (c, v0) ->
        match Tel.counter_value c with
        | Some v -> s.attrs <- (c, string_of_int (v - v0)) :: s.attrs
        | None -> ())
      s.counters0;
    (* Pop down to [s]; anything deeper was left open by a non-local
       exit and is closed with the same end time. *)
    let rec pop = function
      | [] -> []
      | x :: rest ->
          if x.id = s.id then rest
          else begin
            if x.dur_s < 0.0 then x.dur_s <- s.start_s +. s.dur_s -. x.start_s;
            pop rest
          end
    in
    f.f_stack <- pop f.f_stack
  end

let span ?(attrs = []) ?(counters = []) name f =
  if not (recording ()) then f ()
  else begin
    let fo = cur () in
    let s = open_span fo ~attrs ~counters name in
    match f () with
    | v ->
        close_span fo s;
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        s.attrs <- ("error", Printexc.to_string e) :: s.attrs;
        close_span fo s;
        Printexc.raise_with_backtrace e bt
  end

(* No-closure bracket for kernels: [start] returns the span id (or -1
   when disabled), [finish] closes it.  Zero allocation when disabled. *)
let start name =
  if not (recording ()) then -1 else (open_span (cur ()) ~attrs:[] ~counters:[] name).id

let finish id =
  if id >= 0 then begin
    let f = cur () in
    match List.find_opt (fun s -> s.id = id) f.f_stack with
    | Some s -> close_span f s
    | None -> ()
  end

let current_id () = match (cur ()).f_stack with [] -> -1 | s :: _ -> s.id

let add_attr k v =
  if !enabled_flag then
    match (cur ()).f_stack with [] -> () | s :: _ -> s.attrs <- (k, v) :: s.attrs

let add_attr_int k v = if !enabled_flag then add_attr k (string_of_int v)
let add_attr_float k v = if !enabled_flag then add_attr k (Printf.sprintf "%.6g" v)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

type view = {
  v_id : int;
  v_parent : int;
  v_depth : int;
  v_name : string;
  v_ts_us : float;
  v_dur_us : float;
  v_attrs : (string * string) list;
}

let view_of epoch s =
  let dur = if s.dur_s < 0.0 then Tel.Clock.now () -. s.start_s else s.dur_s in
  {
    v_id = s.id;
    v_parent = s.parent;
    v_depth = s.depth;
    v_name = s.name;
    v_ts_us = Float.max 0.0 ((s.start_s -. epoch) *. 1e6);
    v_dur_us = Float.max 0.0 (dur *. 1e6);
    v_attrs = List.rev s.attrs;
  }

let spans () =
  let f = cur () in
  List.rev_map (view_of f.f_epoch) f.f_all

let count () = List.length (cur ()).f_all

(* ------------------------------------------------------------------ *)
(* Forests as values (observability contexts)                          *)
(* ------------------------------------------------------------------ *)

module Forest = struct
  type t = forest

  let create ?span_limit () = make_forest ?span_limit ()
  let size f = List.length f.f_all
  let epoch f = f.f_epoch

  (* Splice [src] into [dst] under a fresh synthetic root: ids are
     shifted past [dst]'s id space, [src]'s roots become children of
     the synthetic root and every depth grows by one.  Timestamps are
     absolute monotonic seconds, so re-basing on [dst]'s epoch needs no
     arithmetic.  [src] is left unchanged. *)
  let merge_into ?(name = "merged") ~dst src =
    if dst != src then begin
      let base = dst.f_next in
      let src_spans = List.rev src.f_all in
      let min_start, max_end =
        List.fold_left
          (fun (lo, hi) s ->
            let e = if s.dur_s < 0.0 then s.start_s else s.start_s +. s.dur_s in
            (Float.min lo s.start_s, Float.max hi e))
          (infinity, neg_infinity) src_spans
      in
      let start_s = if src_spans = [] then src.f_epoch else min_start in
      let root =
        {
          id = base;
          parent = -1;
          depth = 0;
          name;
          start_s;
          dur_s = (if src_spans = [] then 0.0 else Float.max 0.0 (max_end -. min_start));
          attrs = [ ("spans", string_of_int (List.length src_spans)) ];
          counters0 = [];
        }
      in
      let shifted =
        List.map
          (fun s ->
            {
              s with
              id = base + 1 + s.id;
              parent = (if s.parent < 0 then base else base + 1 + s.parent);
              depth = s.depth + 1;
              attrs = s.attrs;
            })
          src_spans
      in
      dst.f_all <- List.rev_append (root :: shifted) dst.f_all;
      dst.f_next <- base + 1 + src.f_next
    end

  let spans f = List.rev_map (view_of f.f_epoch) f.f_all
end

let current_forest () = cur ()

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_num v =
  if Float.is_finite v then Printf.sprintf "%.3f" v else if v > 0.0 then "1e308" else "0"

(* Chrome trace-event format: an object with a [traceEvents] array of
   complete ("ph":"X") events, microsecond timestamps.  Loads in
   chrome://tracing and Perfetto. *)
let to_chrome_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  List.iteri
    (fun i v ->
      Buffer.add_string buf (if i = 0 then "\n" else ",\n");
      Buffer.add_string buf
        (Printf.sprintf "{\"name\": \"%s\", \"cat\": \"spatialdb\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"ts\": %s, \"dur\": %s"
           (json_escape v.v_name) (json_num v.v_ts_us) (json_num v.v_dur_us));
      if v.v_attrs <> [] then begin
        Buffer.add_string buf ", \"args\": {";
        List.iteri
          (fun j (k, value) ->
            if j > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf
              (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape value)))
          v.v_attrs;
        Buffer.add_string buf "}"
      end;
      Buffer.add_string buf "}")
    (spans ());
  Buffer.add_string buf "\n]}";
  Buffer.contents buf

let to_text_tree () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun v ->
      let indent = String.make (2 * v.v_depth) ' ' in
      let label = indent ^ v.v_name in
      Buffer.add_string buf (Printf.sprintf "%-48s %10.3f ms" label (v.v_dur_us /. 1e3));
      List.iter (fun (k, value) -> Buffer.add_string buf (Printf.sprintf "  %s=%s" k value)) v.v_attrs;
      Buffer.add_char buf '\n')
    (spans ());
  Buffer.contents buf
