exception Parse_error of string

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

type state = { s : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some x when x = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_literal st lit v =
  let n = String.length lit in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = lit then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st ("expected " ^ lit)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    if c = '"' then Buffer.contents buf
    else if c = '\\' then begin
      if st.pos >= String.length st.s then fail st "unterminated escape";
      let e = st.s.[st.pos] in
      st.pos <- st.pos + 1;
      (match e with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'u' ->
          if st.pos + 4 > String.length st.s then fail st "truncated \\u escape";
          let hex = String.sub st.s st.pos 4 in
          st.pos <- st.pos + 4;
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u escape"
          in
          (* UTF-8 encode the BMP code point; surrogate pairs are beyond
             what our own emitters produce. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
      | _ -> fail st "bad escape");
      go ()
    end
    else begin
      Buffer.add_char buf c;
      go ()
    end
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.s && is_num st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected number";
  match float_of_string_opt (String.sub st.s start (st.pos - start)) with
  | Some v -> Num v
  | None -> fail st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then begin
        expect st '}';
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              expect st ',';
              members ((k, v) :: acc)
          | Some '}' ->
              expect st '}';
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        members []
      end
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then begin
        expect st ']';
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              expect st ',';
              elements (v :: acc)
          | Some ']' ->
              expect st ']';
              Arr (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        elements []
      end
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
let to_float = function Num v -> Some v | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
