(** Hierarchical span tracing for per-query cost attribution.

    [Telemetry] aggregates per-process; this module answers "which phase
    of {e this} query was slow".  Spans nest dynamically — whatever is
    opened while a span is open becomes its child — carry string
    attributes (dimension, γ, ε, …) and can snapshot telemetry counters
    at open and attach the deltas at close, so a [union.sample] span
    shows exactly how many trials it burned.

    Discipline matches [Telemetry]: disabled by default, and the
    disabled path of {!span}/{!start} is one mutable load and a branch
    with no allocation, no clock read.  Timestamps come from the
    monotonic clock ({!Scdb_telemetry.Telemetry.Clock}).

    Export targets: Chrome trace-event JSON ({!to_chrome_json}, loads
    in [chrome://tracing] and Perfetto) and a compact indented text
    tree ({!to_text_tree}). *)

val enabled : unit -> bool
(** Global switch; initially [false] unless the [SPATIALDB_TRACE]
    environment variable is set to a non-empty, non-["0"] value. *)

val set_enabled : bool -> unit

val reset : unit -> unit
(** Drop the ambient forest's recorded spans and restart its clock
    origin. *)

val set_span_limit : int -> unit
(** Soft cap on the ambient forest's recorded spans (default 200000):
    once reached, new spans run their body unrecorded, so tight
    sampling loops cannot make the trace unbounded.  [reset] does not
    change the limit. *)



val span : ?attrs:(string * string) list -> ?counters:string list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a span.  The span is closed even when
    [f] raises (the exception is recorded as an [error] attribute and
    re-raised with its backtrace).  [counters] names telemetry counters
    whose deltas over the span are attached as attributes at close. *)

val start : string -> int
(** Closure-free open for hot call sites: returns the span id, or [-1]
    when tracing is disabled (no allocation).  Pair with {!finish}. *)

val finish : int -> unit
(** Close the span returned by {!start}.  Children left open by a
    non-local exit are closed with the same end time; closing [-1] or
    an already-closed id is a no-op. *)

val current_id : unit -> int
(** Id of the innermost open span, or [-1] when none is open (or
    tracing is disabled).  One load and a match, no allocation — the
    structured logger stamps every event with it. *)

val add_attr : string -> string -> unit
(** Attach an attribute to the innermost open span (no-op when tracing
    is disabled or no span is open). *)

val add_attr_int : string -> int -> unit
val add_attr_float : string -> float -> unit

(** {1 Export} *)

type view = {
  v_id : int;
  v_parent : int;  (** [-1] for root spans *)
  v_depth : int;
  v_name : string;
  v_ts_us : float;  (** microseconds since the trace origin, ≥ 0 *)
  v_dur_us : float;  (** ≥ 0; still-open spans report elapsed-so-far *)
  v_attrs : (string * string) list;
}

(** {1 Forests (observability contexts)}

    Spans land in a {e forest} — the span store plus the open-span
    stack, the per-forest monotonic epoch (stamped at creation and by
    {!reset}, so a context born late in a long-lived process exports
    timestamps relative to its own birth) and the span cap.  The
    pre-context global store survives as the default forest every
    domain starts with.  Forests are single-writer: the one domain
    that currently has the forest installed. *)

module Forest : sig
  type t

  val create : ?span_limit:int -> unit -> t
  (** Fresh empty forest; its epoch is stamped now. *)

  val size : t -> int
  val epoch : t -> float

  val merge_into : ?name:string -> dst:t -> t -> unit
  (** Splice [src]'s spans into [dst] under a fresh synthetic root
      span (named [name], default ["merged"], carrying a ["spans"]
      attribute): ids shift past [dst]'s id space, [src]'s roots
      re-parent onto the synthetic root, depths grow by one.  Span
      timestamps are absolute monotonic seconds, so they re-base onto
      [dst]'s epoch exactly.  [src] is unchanged; merging a forest
      into itself is a no-op. *)

  val spans : t -> view list
  (** Like {!val:spans} but for an explicit forest (timestamps relative
      to {e its} epoch). *)
end

val with_forest : Forest.t -> (unit -> 'a) -> 'a
(** Install a forest as the calling domain's ambient span store for the
    duration of the thunk (exception-safe; nests).  Same domain/thread
    caveats as [Telemetry.with_registry]. *)

val current_forest : unit -> Forest.t

val spans : unit -> view list
(** All recorded spans in creation order (so [v_ts_us] is
    non-decreasing). *)

val count : unit -> int

val to_chrome_json : unit -> string
(** Chrome trace-event JSON: [{"displayTimeUnit": "ms", "traceEvents":
    [{"name": …, "ph": "X", "ts": …, "dur": …, "args": {…}}, …]}]. *)

val to_text_tree : unit -> string
(** Indented per-span text rendering with durations in milliseconds. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (shared by
    the report writers). *)
