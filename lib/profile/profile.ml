module Vm = Scdb_vm.Vm
module Plan = Scdb_plan.Plan
module Trace = Scdb_trace.Trace

type mode = Counting | Timing

let mode_name = function Counting -> "counting" | Timing -> "timing"

type t = {
  prog : Vm.t;
  mode : mode;
  cells : Vm.prof;
  mutable draws : int;
}

let create ?(mode = Counting) prog =
  let n = Vm.code_words prog in
  {
    prog;
    mode;
    cells =
      { Vm.pcounts = Array.make n 0; ptimes = Array.make n 0.0; ptiming = mode = Timing };
    draws = 0;
  }

let mode t = t.mode
let program t = t.prog
let draws t = t.draws

let sample_one t rng =
  t.draws <- t.draws + 1;
  Vm.sample_one ~prof:t.cells t.prog rng

let sample_many t rng ~n =
  t.draws <- t.draws + n;
  Vm.sample_many ~prof:t.cells t.prog rng ~n

(* ------------------------------------------------------------------ *)
(* Folded views                                                        *)
(* ------------------------------------------------------------------ *)

type pc_row = {
  pc : int;
  opcode : string;
  node : int;  (* originating plan-node id (symbolization table) *)
  tag : string option;  (* rewrite provenance, if any *)
  count : int;
  ns : float;  (* 0. in counting mode or for untimed opcodes *)
}

let pc_rows t =
  Array.map
    (fun pc ->
      {
        pc;
        opcode = Vm.opcode_name (Vm.opcode_at t.prog pc);
        node = Vm.node_at t.prog pc;
        tag = Vm.tag_at t.prog pc;
        count = t.cells.Vm.pcounts.(pc);
        ns = t.cells.Vm.ptimes.(pc);
      })
    (Vm.instruction_bases t.prog)

let total_count t = Array.fold_left (fun acc c -> acc + c) 0 t.cells.Vm.pcounts
let total_ns t = Array.fold_left (fun acc v -> acc +. v) 0.0 t.cells.Vm.ptimes

let hot_pcs ?(limit = 10) t =
  let rows = Array.to_list (pc_rows t) in
  let weight r = if r.ns > 0.0 then r.ns else float_of_int r.count in
  let sorted =
    List.sort
      (fun a b ->
        match compare (weight b) (weight a) with 0 -> compare a.pc b.pc | c -> c)
      (List.filter (fun r -> r.count > 0) rows)
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | r :: rest -> r :: take (k - 1) rest
  in
  take limit sorted

type opcode_row = { op_name : string; op_count : int; op_ns : float }

let per_opcode t =
  let counts = Array.make Vm.num_opcodes 0 in
  let ns = Array.make Vm.num_opcodes 0.0 in
  Array.iter
    (fun (r : pc_row) ->
      let op = Vm.opcode_at t.prog r.pc in
      counts.(op) <- counts.(op) + r.count;
      ns.(op) <- ns.(op) +. r.ns)
    (pc_rows t);
  let acc = ref [] in
  for op = Vm.num_opcodes - 1 downto 0 do
    if counts.(op) > 0 then
      acc := { op_name = Vm.opcode_name op; op_count = counts.(op); op_ns = ns.(op) } :: !acc
  done;
  !acc

type node_row = {
  node_id : int;
  instructions : int;  (* instruction executions attributed to the node *)
  node_ns : float;
  tags : string list;  (* distinct rewrite tags on the node's instructions *)
}

let per_node t =
  let tbl : (int, int ref * float ref * string list ref) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (r : pc_row) ->
      let c, s, tg =
        match Hashtbl.find_opt tbl r.node with
        | Some x -> x
        | None ->
            let x = (ref 0, ref 0.0, ref []) in
            Hashtbl.add tbl r.node x;
            x
      in
      c := !c + r.count;
      s := !s +. r.ns;
      match r.tag with
      | Some name when not (List.mem name !tg) -> tg := name :: !tg
      | _ -> ())
    (pc_rows t);
  List.sort
    (fun a b -> compare a.node_id b.node_id)
    (Hashtbl.fold
       (fun node_id (c, s, tg) acc ->
         { node_id; instructions = !c; node_ns = !s; tags = List.sort compare !tg } :: acc)
       tbl [])

let node_counts t =
  List.map (fun r -> (r.node_id, r.instructions, r.node_ns)) (per_node t)

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let engine_name t = if Vm.optimized t.prog then "vm-opt" else "vm"

let text_report ?plan ?(top = 10) t =
  let b = Buffer.create 1024 in
  let op_of_node id =
    match plan with
    | None -> ""
    | Some p -> (
        match Plan.find_node p id with
        | Some n -> " " ^ Plan.op_name n.Plan.op
        | None -> "")
  in
  Buffer.add_string b
    (Printf.sprintf "profile: engine %s, mode %s, %d draw(s), %d instruction(s) executed"
       (engine_name t) (mode_name t.mode) t.draws (total_count t));
  if t.mode = Timing then
    Buffer.add_string b (Printf.sprintf ", %.0f ns profiled" (total_ns t));
  Buffer.add_char b '\n';
  Buffer.add_string b "hot pcs:\n";
  List.iter
    (fun (r : pc_row) ->
      Buffer.add_string b
        (Printf.sprintf "  pc %5d  %-12s n%-3d%-26s count %-10d%s\n" r.pc r.opcode r.node
           (match r.tag with Some s -> " [" ^ s ^ "]" | None -> "")
           r.count
           (if r.ns > 0.0 then Printf.sprintf " %12.0f ns" r.ns else "")))
    (hot_pcs ~limit:top t);
  Buffer.add_string b "per opcode:\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  %-12s count %-10d%s\n" r.op_name r.op_count
           (if r.op_ns > 0.0 then Printf.sprintf " %12.0f ns" r.op_ns else "")))
    (per_opcode t);
  Buffer.add_string b "per plan node:\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  node %-3d%-12s instrs %-10d%s%s\n" r.node_id
           (op_of_node r.node_id) r.instructions
           (if r.node_ns > 0.0 then Printf.sprintf " %12.0f ns" r.node_ns else "")
           (match r.tags with
           | [] -> ""
           | tags -> " [" ^ String.concat ", " tags ^ "]")))
    (per_node t);
  Buffer.contents b

(* Chrome trace-event block: one complete event per plan node laid out
   sequentially (ts in µs).  In counting mode durations are the
   instruction counts — a shape view, documented in the args. *)
let trace_events t =
  let b = Buffer.create 512 in
  Buffer.add_string b "[";
  let ts = ref 0.0 in
  List.iteri
    (fun i (r : node_row) ->
      if i > 0 then Buffer.add_string b ",";
      let dur =
        if t.mode = Timing then r.node_ns /. 1000.0 else float_of_int r.instructions
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"node %d\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1,\"args\":{\"instructions\":%d,\"ns\":%.1f,\"tags\":[%s],\"unit\":\"%s\"}}"
           r.node_id !ts dur r.instructions r.node_ns
           (String.concat ","
              (List.map (fun s -> "\"" ^ Trace.json_escape s ^ "\"") r.tags))
           (if t.mode = Timing then "us" else "instructions"));
      ts := !ts +. dur)
    (per_node t);
  Buffer.add_string b "]";
  Buffer.contents b

let to_json ?plan t =
  let b = Buffer.create 4096 in
  let bases = Vm.instruction_bases t.prog in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"spatialdb-profile/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"engine\": \"%s\",\n" (engine_name t));
  Buffer.add_string b (Printf.sprintf "  \"mode\": \"%s\",\n" (mode_name t.mode));
  Buffer.add_string b (Printf.sprintf "  \"draws\": %d,\n" t.draws);
  Buffer.add_string b (Printf.sprintf "  \"code_words\": %d,\n" (Vm.code_words t.prog));
  Buffer.add_string b (Printf.sprintf "  \"instructions\": %d,\n" (Array.length bases));
  Buffer.add_string b
    (Printf.sprintf "  \"total_instructions_executed\": %d,\n" (total_count t));
  Buffer.add_string b (Printf.sprintf "  \"total_profiled_ns\": %.1f,\n" (total_ns t));
  Buffer.add_string b "  \"pcs\": [";
  Array.iteri
    (fun i (r : pc_row) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"pc\": %d, \"opcode\": \"%s\", \"node\": %d, \"tag\": %s, \"count\": %d, \"ns\": %.1f}"
           r.pc r.opcode r.node
           (match r.tag with Some s -> "\"" ^ Trace.json_escape s ^ "\"" | None -> "null")
           r.count r.ns))
    (pc_rows t);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"opcodes\": [";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf "\n    {\"opcode\": \"%s\", \"count\": %d, \"ns\": %.1f}" r.op_name
           r.op_count r.op_ns))
    (per_opcode t);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"nodes\": [";
  List.iteri
    (fun i (r : node_row) ->
      if i > 0 then Buffer.add_string b ",";
      let op =
        match plan with
        | None -> ""
        | Some p -> (
            match Plan.find_node p r.node_id with
            | Some n ->
                Printf.sprintf " \"op\": \"%s\"," (Trace.json_escape (Plan.op_name n.Plan.op))
            | None -> "")
      in
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"id\": %d,%s \"instructions\": %d, \"ns\": %.1f, \"tags\": [%s]}"
           r.node_id op r.instructions r.node_ns
           (String.concat ", "
              (List.map (fun s -> "\"" ^ Trace.json_escape s ^ "\"") r.tags))))
    (per_node t);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b (Printf.sprintf "  \"trace\": {\"traceEvents\": %s}\n" (trace_events t));
  Buffer.add_string b "}\n";
  Buffer.contents b
