(** Instruction-level profiler for compiled VM programs.

    Wraps {!Scdb_vm.Vm}'s profiling cells and folds the raw per-pc
    counters through the compiler's symbolization table (pc → plan-node
    id + rewrite tag) into the three views the tooling consumes: a
    hot-pc table, a per-opcode histogram, and per-plan-node rows with
    rewrite provenance (the actual side of predicted-vs-actual
    attribution under [--engine vm|vm-opt]).

    Two modes:

    - {b Counting} — exact execution counts per pc.  Allocation-free on
      the draw path (one array bump per executed instruction) and always
      cheap; safe to leave on.
    - {b Timing} — additionally buckets monotonic-clock ns per pc,
      taking clock reads only around the expensive opcodes (WALK,
      ENSURE, MEMBER, MEMPOLY).  Overhead is test-gated ≤5% against an
      unprofiled run on the walk-bound union fixture
      ([regress --check]).

    Profiling never touches the rng: a profiled run emits the
    bit-identical sample stream, so flight records recorded under
    [--profile] replay exactly. *)

type mode = Counting | Timing

val mode_name : mode -> string
(** ["counting"] / ["timing"]. *)

type t

val create : ?mode:mode -> Scdb_vm.Vm.t -> t
(** Fresh zeroed cells over a compiled program ([mode] defaults to
    {!Counting}). *)

val mode : t -> mode
val program : t -> Scdb_vm.Vm.t
val draws : t -> int

val sample_one : t -> Rng.t -> Vec.t
(** {!Scdb_vm.Vm.sample_one} with this profile's cells attached. *)

val sample_many : t -> Rng.t -> n:int -> Vec.t list

(** {1 Folded views} *)

type pc_row = {
  pc : int;
  opcode : string;
  node : int;  (** originating plan-node id (symbolization table) *)
  tag : string option;  (** rewrite provenance, if any *)
  count : int;
  ns : float;  (** 0. in counting mode or for untimed opcodes *)
}

val pc_rows : t -> pc_row array
(** One row per instruction (including never-executed ones), ascending
    pc — consumers can rely on full coverage. *)

val hot_pcs : ?limit:int -> t -> pc_row list
(** Executed instructions, hottest first (by ns when timed, else by
    count); [limit] defaults to 10. *)

type opcode_row = { op_name : string; op_count : int; op_ns : float }

val per_opcode : t -> opcode_row list
(** Histogram over opcodes that executed, in opcode order. *)

type node_row = {
  node_id : int;
  instructions : int;  (** instruction executions attributed to the node *)
  node_ns : float;
  tags : string list;  (** distinct rewrite tags on the node's instructions *)
}

val per_node : t -> node_row list
(** Counts and ns folded through the symbolization table, by plan-node
    id ascending. *)

val node_counts : t -> (int * int * float) list
(** [(node id, instruction executions, ns)] — the shape
    {!Scdb_gis.Plan_exec} folds into attribution rows. *)

val total_count : t -> int
val total_ns : t -> float

val engine_name : t -> string
(** ["vm"] or ["vm-opt"]. *)

(** {1 Reports} *)

val text_report : ?plan:Scdb_plan.Plan.t -> ?top:int -> t -> string
(** Human-readable hot-pc table, per-opcode histogram and per-node
    rows; [plan] adds operator names to node lines. *)

val to_json : ?plan:Scdb_plan.Plan.t -> t -> string
(** The [spatialdb-profile/1] document: full per-pc table, per-opcode
    histogram, per-node rows, and an embedded Chrome trace-event block
    (one complete event per plan node; µs durations in timing mode,
    instruction counts in counting mode). *)
