(* Shared with the static cost model: see [Scdb_plan.Cost]. *)
let runs_for ~delta = Scdb_plan.Cost.boost_runs ~delta

let median_volume rng ?gamma obs ~eps ~delta =
  let runs = runs_for ~delta in
  let values =
    Array.init runs (fun _ -> Observable.volume obs rng ?gamma ~eps ~delta:0.25)
  in
  Array.sort Float.compare values;
  values.(runs / 2)

let boost_observable obs =
  {
    obs with
    Observable.volume = (fun rng ~gamma ~eps ~delta -> median_volume rng ~gamma obs ~eps ~delta);
  }
