let runs_for ~delta =
  if delta <= 0.0 || delta >= 1.0 then invalid_arg "Boost.runs_for";
  let n = int_of_float (ceil (18.0 *. log (1.0 /. delta))) in
  let n = Stdlib.max 1 n in
  if n mod 2 = 0 then n + 1 else n

let median_volume rng ?gamma obs ~eps ~delta =
  let runs = runs_for ~delta in
  let values =
    Array.init runs (fun _ -> Observable.volume obs rng ?gamma ~eps ~delta:0.25)
  in
  Array.sort Float.compare values;
  values.(runs / 2)

let boost_observable obs =
  {
    obs with
    Observable.volume = (fun rng ~gamma ~eps ~delta -> median_volume rng ~gamma obs ~eps ~delta);
  }
