module Progress = Scdb_progress.Progress

type fiber_volume = Exact | Estimated of int

let complement ~dim keep = List.filter (fun i -> not (List.mem i keep)) (List.init dim Fun.id)

let fiber poly ~keep y =
  let d = Polytope.dim poly in
  let rest = complement ~dim:d keep in
  let e = List.length keep in
  if Vec.dim y <> e then invalid_arg "Project.fiber: point dimension mismatch";
  let keep_arr = Array.of_list keep and rest_arr = Array.of_list rest in
  let a' =
    Array.map (fun row -> Array.map (fun j -> row.(j)) rest_arr) (poly : Polytope.t).a
  in
  let b' =
    Array.mapi
      (fun i row ->
        let shift = ref 0.0 in
        Array.iteri (fun pos j -> shift := !shift +. (row.(j) *. y.(pos))) keep_arr;
        poly.b.(i) -. !shift)
      poly.a
  in
  Polytope.make ~dim:(d - e) a' b'

(* Rationalize with 2^-20 quantization: raw floats carry 53-bit dyadic
   denominators that blow up the bigint arithmetic inside the Lasserre
   recursion; 20 bits is far below the sampler's own noise. *)
let quantize x = Rational.of_float (Float.round (x *. 1048576.0) /. 1048576.0)

let exact_fiber_volume fiber_poly =
  let a = Array.map (Array.map quantize) (fiber_poly : Polytope.t).a in
  let b = Array.map quantize fiber_poly.b in
  match Volume_exact.volume_system ~dim:(Polytope.dim fiber_poly) a b with
  | v -> Rational.to_float v
  | exception Volume_exact.Unbounded -> raise (Observable.Estimation_failed "unbounded fiber")

let default_fiber_mode ~codim = if codim <= 4 then Exact else Estimated 600

let fiber_volume_of ?fiber_volume rng poly ~keep y =
  let codim = Polytope.dim poly - List.length keep in
  let mode = match fiber_volume with Some m -> m | None -> default_fiber_mode ~codim in
  let f = fiber poly ~keep y in
  match mode with
  | Exact -> exact_fiber_volume f
  | Estimated n -> (
      match Volume.estimate rng ~budget:(Volume.Practical n) f with
      | Some r -> r.Volume.volume
      | None -> 0.0)

let project ?fiber_volume ?(pilot_samples = 32) rng poly ~keep =
  let d = Polytope.dim poly in
  let e = List.length keep in
  if e = 0 || e >= d then invalid_arg "Project.project: keep must be a proper non-empty subset";
  List.iter (fun i -> if i < 0 || i >= d then invalid_arg "Project.project: coordinate out of range") keep;
  let codim = d - e in
  let mode = match fiber_volume with Some m -> m | None -> default_fiber_mode ~codim in
  match Convex_obs.of_polytope ~config:Convex_obs.practical_config rng poly with
  | None -> None
  | Some source ->
      let source = Observable.with_cached_volume source in
      (* Fiber volumes are evaluated per cell of a grid over the projected
         coordinates and memoized: Definition 2.2 discretizes everything
         to a γ-grid anyway, and the compensation only needs h at grid
         resolution.  This turns thousands of repeated volume calls into
         at most cells^e of them. *)
      let cells = 96 in
      let proj_lo, proj_step =
        match Polytope.bounding_box poly with
        | None -> (Vec.create e, Array.make e 1.0)
        | Some (lo, hi) ->
            let keep_arr = Array.of_list keep in
            let plo = Array.map (fun i -> lo.(i)) keep_arr in
            let pstep =
              Array.map (fun i -> Float.max 1e-9 ((hi.(i) -. lo.(i)) /. float_of_int cells)) keep_arr
            in
            (plo, pstep)
      in
      let cache : (int list, float) Hashtbl.t = Hashtbl.create 256 in
      let h y =
        let key =
          List.init e (fun i -> int_of_float (Float.floor ((y.(i) -. proj_lo.(i)) /. proj_step.(i))))
        in
        match Hashtbl.find_opt cache key with
        | Some v -> v
        | None ->
            let centre =
              Vec.init e (fun i -> proj_lo.(i) +. ((float_of_int (List.nth key i) +. 0.5) *. proj_step.(i)))
            in
            let v = fiber_volume_of ~fiber_volume:mode rng poly ~keep centre in
            let v = if Float.is_finite v && v > 0.0 then v else 0.0 in
            Hashtbl.replace cache key v;
            v
      in
      let mem y =
        (* y ∈ π(S) iff the fiber is a feasible system. *)
        let f = fiber poly ~keep y in
        not (Polytope.is_empty f)
      in
      (* Pre-pass: observed fiber volumes calibrate the acceptance
         constant c (a lower bound on the h values the sampler meets). *)
      let pilot_params = Params.make ~gamma:0.1 ~eps:0.2 ~delta:0.1 () in
      let pilot =
        List.filter_map
          (fun _ ->
            match Observable.sample source rng pilot_params with
            | None -> None
            | Some x ->
                let hx = h (Vec.keep x keep) in
                if hx > 0.0 then Some hx else None)
          (List.init pilot_samples Fun.id)
      in
      if pilot = [] then None
      else begin
        (* Acceptance constant: a low quantile of the observed fiber
           volumes rather than the minimum — one pilot point near a
           degenerate fiber (h → 0) would otherwise collapse the
           acceptance probability to zero.  Fibers thinner than c are
           accepted outright; the distribution error this introduces is
           bounded by the biased mass below the quantile (≈5%), well
           inside the ε-slack measured by experiment E1. *)
        let sorted = List.sort Float.compare pilot in
        let quantile_index = Stdlib.max 0 (List.length sorted / 20) in
        let c = List.nth sorted quantile_index /. 4.0 in
        let mean_inv_h =
          List.fold_left (fun acc hx -> acc +. (1.0 /. hx)) 0.0 pilot /. float_of_int (List.length pilot)
        in
        let acceptance_estimate = Float.max 1e-6 (c *. mean_inv_h) in
        let sample sample_rng params =
          let delta = Params.delta params in
          let trials =
            Stdlib.min 50_000
              (Stdlib.max 64 (int_of_float (ceil (2.0 /. acceptance_estimate *. log (1.0 /. delta)))))
          in
          let sub = Params.third_eps params in
          let rec attempt k =
            if k = 0 then None
            else begin
              Progress.add_trials 1;
              match Observable.sample source sample_rng sub with
              | None -> attempt (k - 1)
              | Some x ->
                  let y = Vec.keep x keep in
                  let hy = h y in
                  if hy <= 0.0 then attempt (k - 1)
                  else if Rng.float sample_rng < Float.min 1.0 (c /. hy) then Some y
                  else attempt (k - 1)
            end
          in
          attempt trials
        in
        let volume vol_rng ~gamma ~eps ~delta =
          (* vol(π(S)) = vol(S) · E_{x~S}[ 1/h(π(x)) ]: the fiber volumes
             cancel the projection bias in expectation. *)
          let vol_s = Observable.volume source vol_rng ~gamma ~eps:(eps /. 3.0) ~delta:(delta /. 3.0) in
          (* Source draws discretize on the caller's grid. *)
          let params = Params.make ~gamma ~eps:(eps /. 3.0) ~delta:(delta /. 3.0) () in
          let blocks = Stdlib.max 3 (int_of_float (ceil (4.0 *. log (2.0 /. delta)))) in
          let block_size = Stdlib.max 16 (int_of_float (ceil (9.0 /. (eps *. eps)))) in
          let draw r =
            match Observable.sample source r params with
            | None -> 0.0
            | Some x ->
                let hy = h (Vec.keep x keep) in
                if hy <= 0.0 then 0.0 else 1.0 /. hy
          in
          let mean = Chernoff.median_of_means vol_rng ~blocks ~block_size draw in
          vol_s *. mean
        in
        Some (Observable.make ~dim:e ~mem ~sample ~volume ())
      end

let naive_projection_sample rng source ~keep params =
  Option.map (fun x -> Vec.keep x keep) (Observable.sample source rng params)
