(** Confidence boosting by medians.

    The paper assumes the "classical" [ln(1/δ)] complexity dependence:
    an estimator correct within ratio [1+ε] with probability ≥ 3/4 can
    be boosted to confidence [1−δ] by taking the median of
    [O(ln(1/δ))] independent runs — a median is correct unless half
    the runs fail simultaneously.  This wraps any volume estimator or
    observable with that construction. *)

val runs_for : delta:float -> int
(** Odd number of repetitions [≈ 18·ln(1/δ)] such that the median of
    that many 3/4-confident runs fails with probability ≤ δ
    (Chernoff on Bernoulli(1/4) failures). *)

val median_volume :
  Rng.t -> ?gamma:float -> Observable.t -> eps:float -> delta:float -> float
(** Median of [runs_for ~delta] runs of the observable's estimator,
    each invoked at constant confidence (δ = 1/4). *)

val boost_observable : Observable.t -> Observable.t
(** Same observable with its volume estimator replaced by the
    median-boosted version. *)
