module Trace = Scdb_trace.Trace

type sampler = Grid_walk | Hit_and_run | Rejection_box

type config = {
  sampler : sampler;
  volume_budget : Volume.budget;
  walk_steps : int option;
}

let default_config = { sampler = Grid_walk; volume_budget = Volume.Rigorous; walk_steps = None }

let practical_config =
  { sampler = Hit_and_run; volume_budget = Volume.Practical 2000; walk_steps = None }

(* A prepared piece is the rng-consuming half of generator construction
   (the well-rounding preprocessing), split from the closure-building
   half so the plan→kernel compiler can reuse the exact same
   preprocessing draws and then build either an interpreted observable
   ([observe]) or a compiled program (Scdb_vm) over the same rounded
   body. *)
type prepared = {
  p_dim : int;
  p_config : config;
  p_relation : Relation.t option;
  p_original : Polytope.t;
  p_body : Polytope.t;
  p_transform : Affine.t;
  p_r_sup : float;
}

let prepare ?(config = default_config) ?relation rng poly =
  Trace.span "generator.construct"
    ~attrs:[ ("dim", string_of_int (Polytope.dim poly)) ]
  @@ fun () ->
  match Rounding.round rng poly with
  | None -> None
  | Some rounded ->
      Some
        {
          p_dim = Polytope.dim poly;
          p_config = config;
          p_relation = relation;
          p_original = poly;
          p_body = rounded.Rounding.rounded;
          p_transform = rounded.Rounding.transform;
          p_r_sup = rounded.Rounding.r_sup;
        }

let observe p =
  let config = p.p_config in
  let dim = p.p_dim in
  let body = p.p_body in
  let transform = p.p_transform in
  let r_sup = p.p_r_sup in
  let sample walk_rng params =
    let gamma = Params.gamma params and eps = Params.eps params in
    let steps =
      match config.walk_steps with
      | Some s -> s
      | None -> (
          match config.sampler with
          | Grid_walk -> Walk.default_steps ~dim ~eps
          | Hit_and_run | Rejection_box -> Hit_and_run.default_steps ~dim)
    in
    (* Walk on the γ-grid of the rounded body (where DFK mixing
       applies), then map the vertex back through the rounding
       transform. *)
    let point =
      match config.sampler with
      | Grid_walk ->
          let grid = Grid.step_for ~gamma ~dim ~scale:r_sup in
          Walk.sample walk_rng ~grid
            ~mem:(fun x -> Polytope.mem body x)
            ~start:(Vec.create dim) ~steps
      | Hit_and_run ->
          Hit_and_run.sample_polytope walk_rng body ~start:(Vec.create dim) ~steps
      | Rejection_box -> (
          (* Exactly uniform; the right tool in low dimension where
             the body fills a decent fraction of its bounding box.
             Falls back to hit-and-run if the budget runs dry, so
             the generator never fails outright. *)
          let fallback () =
            Hit_and_run.sample_polytope walk_rng body ~start:(Vec.create dim) ~steps
          in
          match Polytope.bounding_box body with
          | None -> fallback ()
          | Some (lo, hi) -> (
              match
                Rejection.sample walk_rng ~lo ~hi
                  ~mem:(fun x -> Polytope.mem body x)
                  ~max_attempts:20_000
              with
              | Some (x, _) -> x
              | None -> fallback ()))
    in
    Some (Affine.apply_inverse transform point)
  in
  (* Continuous multi-phase estimator: no grid, so γ is unused. *)
  let volume vol_rng ~gamma:_ ~eps ~delta =
    (* The body is already rounded; estimate there and undo the
       transform's volume scale. *)
    let sampler =
      match config.sampler with
      | Grid_walk -> Volume.Grid_walk
      | Hit_and_run | Rejection_box -> Volume.Hit_and_run
    in
    match
      Volume.estimate vol_rng ~eps ~delta ~sampler ~budget:config.volume_budget
        ?walk_steps:config.walk_steps body
    with
    | Some report -> report.Volume.volume /. Affine.volume_scale transform
    | None -> raise (Observable.Estimation_failed "convex volume estimation failed")
  in
  let mem =
    match p.p_relation with
    | Some r -> fun x -> Relation.mem_float ~slack:1e-9 r x
    | None -> fun x -> Polytope.mem ~slack:1e-9 p.p_original x
  in
  Observable.make ?relation:p.p_relation ~dim ~mem ~sample ~volume ()

let of_polytope ?config ?relation rng poly =
  Option.map observe (prepare ?config ?relation rng poly)

let prepare_relation ?config rng relation =
  match Relation.tuples relation with
  | [ tuple ] ->
      let poly = Polytope.of_tuple ~dim:(Relation.dim relation) tuple in
      prepare ?config ~relation rng poly
  | _ -> invalid_arg "Convex_obs.make: relation must be a single generalized tuple"

let make ?config rng relation = Option.map observe (prepare_relation ?config rng relation)
