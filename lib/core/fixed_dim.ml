let observable ?(max_cells = 2_000_000) r =
  if Relation.is_syntactically_empty r then None
  else begin
    match Gridvol.relation_bbox r with
    | None -> None
    | Some (lo, hi) ->
        let dim = Relation.dim r in
        (* Upper-bound the γ so that the decomposition fits the budget. *)
        let min_gamma =
          let widest = Array.fold_left Float.max 0.0 (Vec.sub hi lo) in
          widest /. (float_of_int max_cells ** (1.0 /. float_of_int dim))
        in
        let cache : (float, Gridvol.t option) Hashtbl.t = Hashtbl.create 4 in
        let decomposition gamma =
          let gamma = Float.max gamma min_gamma in
          match Hashtbl.find_opt cache gamma with
          | Some g -> g
          | None ->
              let g = Gridvol.build ~gamma r in
              Hashtbl.replace cache gamma g;
              g
        in
        let scale = Array.fold_left Float.max 1e-9 (Vec.sub hi lo) in
        let sample rng params =
          match decomposition (Params.gamma params *. scale) with
          | None -> None
          | Some g -> if Gridvol.cell_count g = 0 then None else Some (Gridvol.sample g rng)
        in
        (* The grid decomposition is ε-driven; γ only matters to the
           sample path, which reads it from [Params]. *)
        let volume _rng ~gamma:_ ~eps ~delta:_ =
          match decomposition (eps *. scale) with
          | None -> raise (Observable.Estimation_failed "empty or unbounded relation")
          | Some g -> Gridvol.volume g
        in
        Some
          (Observable.make ~relation:r ~dim
             ~mem:(fun x -> Relation.mem_float ~slack:1e-9 r x)
             ~sample ~volume ())
  end

let exact_volume r = Volume_exact.volume_relation r
