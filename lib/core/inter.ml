module Tel = Scdb_telemetry.Telemetry
module Progress = Scdb_progress.Progress
module Trace = Scdb_trace.Trace
module Log = Scdb_log.Log

let tel_samples = Tel.Counter.make "inter.samples"
let tel_trials = Tel.Counter.make "inter.trials"
let tel_miss = Tel.Counter.make "inter.miss"
let tel_child_failures = Tel.Counter.make "inter.child_failures"
let tel_exhausted = Tel.Counter.make "inter.exhausted"
let tel_vol_calls = Tel.Counter.make "inter.volume.calls"

(* Shared with the static cost model: see [Scdb_plan.Cost]. *)
let budget_for ~dim ~poly_degree ~delta =
  Scdb_plan.Cost.rejection_budget ~dim ~poly_degree ~delta

let inter ?(poly_degree = 3) children =
  if children = [] then invalid_arg "Inter.inter: empty list";
  let dim = Observable.dim (List.hd children) in
  List.iter
    (fun c -> if Observable.dim c <> dim then invalid_arg "Inter.inter: dimension mismatch")
    children;
  let children = Array.of_list (List.map Observable.with_cached_volume children) in
  let m = Array.length children in
  let relation =
    Array.fold_left
      (fun acc c ->
        match (acc, Observable.relation c) with
        | Some r, Some rc -> Some (Relation.inter r rc)
        | _ -> None)
      (Observable.relation children.(0))
      (Array.sub children 1 (m - 1))
  in
  let mem x = Array.for_all (fun c -> Observable.mem c x) children in
  (* Index of the smallest operand by estimated volume. *)
  let smallest rng ~gamma ~eps ~delta =
    let mu = Array.map (fun c -> Observable.volume c rng ~gamma ~eps ~delta) children in
    let j = ref 0 in
    Array.iteri (fun i v -> if v < mu.(!j) then j := i) mu;
    (!j, mu.(!j))
  in
  let sample rng params =
    Trace.span "inter.sample"
      ~counters:[ "inter.trials"; "inter.miss"; "inter.child_failures"; "inter.exhausted" ]
    @@ fun () ->
    Tel.Counter.incr tel_samples;
    Trace.add_attr_int "operands" m;
    let gamma = Params.gamma params in
    let eps3 = Params.eps params /. 3.0 in
    let delta = Params.delta params in
    let j, _ = smallest rng ~gamma ~eps:eps3 ~delta:(delta /. float_of_int (4 * m)) in
    let budget = budget_for ~dim ~poly_degree ~delta in
    let rec attempt k =
      if k = 0 then begin
        Tel.Counter.incr tel_exhausted;
        if Log.would_log Log.Warn then
          Log.warn "inter.exhausted"
            [ Log.int "budget" budget; Log.int "operands" m; Log.int "dim" dim ];
        None
      end
      else begin
        Tel.Counter.incr tel_trials;
        Progress.add_trials 1;
        match Observable.sample children.(j) rng (Params.third_eps params) with
        | None ->
            Tel.Counter.incr tel_child_failures;
            attempt (k - 1)
        | Some x ->
            if mem x then Some x
            else begin
              Tel.Counter.incr tel_miss;
              attempt (k - 1)
            end
      end
    in
    attempt budget
  in
  let volume rng ~gamma ~eps ~delta =
    (* μ(T) = μ(S_j) · P[x ∈ T | x ~ S_j], with the poly-relatedness
       promise lower-bounding the acceptance probability. *)
    Trace.span "inter.volume" @@ fun () ->
    Tel.Counter.incr tel_vol_calls;
    Trace.add_attr_float "eps" eps;
    Trace.add_attr_float "delta" delta;
    let eps2 = eps /. 2.0 in
    let j, mu_j = smallest rng ~gamma ~eps:eps2 ~delta:(delta /. float_of_int (4 * m)) in
    let p_floor = 1.0 /. (Float.max 2.0 (float_of_int dim) ** float_of_int poly_degree) in
    (* Same grid as the sample path: the caller's γ, not a fixed one. *)
    let params = Params.make ~gamma ~eps:eps2 ~delta:(delta /. 4.0) () in
    let draw r =
      match Observable.sample children.(j) r params with Some x -> mem x | None -> false
    in
    let fraction =
      Chernoff.estimate_fraction_adaptive rng ~eps:eps2 ~delta:(delta /. 4.0) ~p_floor draw
    in
    mu_j *. fraction
  in
  Observable.make ?relation ~dim ~mem ~sample ~volume ()

let inter2 ?poly_degree a b = inter ?poly_degree [ a; b ]
