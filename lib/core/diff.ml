module Tel = Scdb_telemetry.Telemetry
module Progress = Scdb_progress.Progress
module Trace = Scdb_trace.Trace
module Log = Scdb_log.Log

let tel_samples = Tel.Counter.make "diff.samples"
let tel_trials = Tel.Counter.make "diff.trials"
let tel_miss = Tel.Counter.make "diff.miss"
let tel_child_failures = Tel.Counter.make "diff.child_failures"
let tel_exhausted = Tel.Counter.make "diff.exhausted"
let tel_vol_calls = Tel.Counter.make "diff.volume.calls"

let diff ?(poly_degree = 3) a b =
  if Observable.dim a <> Observable.dim b then invalid_arg "Diff.diff: dimension mismatch";
  let dim = Observable.dim a in
  let a = Observable.with_cached_volume a in
  let relation = Observable.combine_relations Relation.diff a b in
  let mem x = Observable.mem a x && not (Observable.mem b x) in
  let sample rng params =
    Trace.span "diff.sample"
      ~counters:[ "diff.trials"; "diff.miss"; "diff.child_failures"; "diff.exhausted" ]
    @@ fun () ->
    Tel.Counter.incr tel_samples;
    let budget = Inter.budget_for ~dim ~poly_degree ~delta:(Params.delta params) in
    let rec attempt k =
      if k = 0 then begin
        Tel.Counter.incr tel_exhausted;
        if Log.would_log Log.Warn then
          Log.warn "diff.exhausted" [ Log.int "budget" budget; Log.int "dim" dim ];
        None
      end
      else begin
        Tel.Counter.incr tel_trials;
        Progress.add_trials 1;
        match Observable.sample a rng (Params.third_eps params) with
        | None ->
            Tel.Counter.incr tel_child_failures;
            attempt (k - 1)
        | Some x ->
            if Observable.mem b x then begin
              Tel.Counter.incr tel_miss;
              attempt (k - 1)
            end
            else Some x
      end
    in
    attempt budget
  in
  let volume rng ~gamma ~eps ~delta =
    Trace.span "diff.volume" @@ fun () ->
    Tel.Counter.incr tel_vol_calls;
    Trace.add_attr_float "eps" eps;
    Trace.add_attr_float "delta" delta;
    let eps2 = eps /. 2.0 in
    let mu_a = Observable.volume a rng ~gamma ~eps:eps2 ~delta:(delta /. 4.0) in
    let p_floor = 1.0 /. (Float.max 2.0 (float_of_int dim) ** float_of_int poly_degree) in
    (* Same grid as the sample path: the caller's γ, not a fixed one. *)
    let params = Params.make ~gamma ~eps:eps2 ~delta:(delta /. 4.0) () in
    let draw r =
      match Observable.sample a r params with
      | Some x -> not (Observable.mem b x)
      | None -> false
    in
    let fraction =
      Chernoff.estimate_fraction_adaptive rng ~eps:eps2 ~delta:(delta /. 4.0) ~p_floor draw
    in
    mu_a *. fraction
  in
  Observable.make ?relation ~dim ~mem ~sample ~volume ()
