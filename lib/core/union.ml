module Tel = Scdb_telemetry.Telemetry
module Progress = Scdb_progress.Progress
module Trace = Scdb_trace.Trace
module Log = Scdb_log.Log

let tel_samples = Tel.Counter.make "union.samples"
let tel_trials = Tel.Counter.make "union.trials"
let tel_first_index_miss = Tel.Counter.make "union.first_index_miss"
let tel_child_failures = Tel.Counter.make "union.child_failures"
let tel_exhausted = Tel.Counter.make "union.exhausted"
let tel_vol_calls = Tel.Counter.make "union.volume.calls"
let tel_vol_trials = Tel.Counter.make "union.volume.trials"
let tel_vol_accepted = Tel.Counter.make "union.volume.accepted"
let tel_vol_zero_acceptance = Tel.Counter.make "union.volume.zero_acceptance"
let tel_accept_rate = Tel.Histogram.make "union.volume.acceptance_rate"

(* Shared with the static cost model: see [Scdb_plan.Cost]. *)
let trials_for ~m ~delta = Scdb_plan.Cost.union_trials ~m ~delta

let union children =
  if children = [] then invalid_arg "Union.union: empty list";
  let dim = Observable.dim (List.hd children) in
  List.iter
    (fun c -> if Observable.dim c <> dim then invalid_arg "Union.union: dimension mismatch")
    children;
  let children = Array.of_list (List.map Observable.with_cached_volume children) in
  let m = Array.length children in
  let relation =
    Array.fold_left
      (fun acc c ->
        match (acc, Observable.relation c) with
        | Some r, Some rc -> Some (Relation.union r rc)
        | _ -> None)
      (Observable.relation children.(0))
      (Array.sub children 1 (m - 1))
  in
  let mem x = Array.exists (fun c -> Observable.mem c x) children in
  (* j(x): index of the first operand containing x. *)
  let first_index x =
    let rec go i = if i >= m then None else if Observable.mem children.(i) x then Some i else go (i + 1) in
    go 0
  in
  let volumes rng ~gamma ~eps ~delta =
    Array.map (fun c -> Observable.volume c rng ~gamma ~eps ~delta) children
  in
  let sample rng params =
    Trace.span "union.sample"
      ~counters:
        [ "union.trials"; "union.first_index_miss"; "union.child_failures"; "union.exhausted" ]
    @@ fun () ->
    Tel.Counter.incr tel_samples;
    Trace.add_attr_int "operands" m;
    let gamma = Params.gamma params in
    let eps3 = Params.eps params /. 3.0 in
    let delta = Params.delta params in
    let sub_delta = delta /. float_of_int (4 * m) in
    let mu = volumes rng ~gamma ~eps:eps3 ~delta:sub_delta in
    if Array.for_all (fun v -> v <= 0.0) mu then None
    else begin
    let trials = trials_for ~m ~delta in
    let rec attempt k =
      if k = 0 then begin
        Tel.Counter.incr tel_exhausted;
        if Log.would_log Log.Warn then
          Log.warn "union.exhausted" [ Log.int "trials" trials; Log.int "operands" m ];
        None
      end
      else begin
        Tel.Counter.incr tel_trials;
        Progress.add_trials 1;
        let j = Rng.categorical rng mu in
        match Observable.sample children.(j) rng (Params.third_eps params) with
        | None ->
            Tel.Counter.incr tel_child_failures;
            attempt (k - 1)
        | Some x ->
            if first_index x = Some j then Some x
            else begin
              Tel.Counter.incr tel_first_index_miss;
              attempt (k - 1)
            end
      end
    in
    attempt trials
    end
  in
  let volume rng ~gamma ~eps ~delta =
    (* Karp–Luby estimator: μ(∪) = (Σ μ̂ᵢ) · P[trial accepted], and the
       acceptance probability is at least 1/m. *)
    Trace.span "union.volume"
      ~counters:[ "union.volume.trials"; "union.volume.accepted" ]
    @@ fun () ->
    Tel.Counter.incr tel_vol_calls;
    Trace.add_attr_int "operands" m;
    Trace.add_attr_float "eps" eps;
    Trace.add_attr_float "delta" delta;
    let eps3 = eps /. 3.0 in
    let mu = volumes rng ~gamma ~eps:eps3 ~delta:(delta /. float_of_int (4 * m)) in
    let total = Array.fold_left ( +. ) 0.0 mu in
    if total <= 0.0 then 0.0
    else begin
      (* The caller's γ flows into the child generators so that the
         acceptance trials run on the same grid the sample path uses —
         a fixed γ here would make the Karp–Luby trials and the
         generator disagree on the discretization. *)
      let params = Params.make ~gamma ~eps:eps3 ~delta:(delta /. 4.0) () in
      let n =
        Chernoff.samples_for_ratio ~eps:eps3 ~delta:(delta /. 4.0) ~p_lower:(1.0 /. float_of_int m)
      in
      let accepted = ref 0 in
      for _ = 1 to n do
        let j = Rng.categorical rng mu in
        match Observable.sample children.(j) rng params with
        | None -> ()
        | Some x -> if first_index x = Some j then incr accepted
      done;
      Progress.add_trials n;
      Tel.Counter.add tel_vol_trials n;
      Tel.Counter.add tel_vol_accepted !accepted;
      if n > 0 then Tel.Histogram.observe tel_accept_rate (float_of_int !accepted /. float_of_int n);
      (* All trials rejecting while Σ μ̂ᵢ > 0 means the estimate degrades
         to 0.0 with no statistical backing (acceptance is ≥ 1/m in
         expectation) — a generator failure, not a small volume. *)
      if !accepted = 0 then begin
        Tel.Counter.incr tel_vol_zero_acceptance;
        if Log.would_log Log.Warn then
          Log.warn "union.volume.zero_acceptance"
            [ Log.int "trials" n; Log.int "operands" m; Log.float "total" total ]
      end;
      total *. float_of_int !accepted /. float_of_int n
    end
  in
  Observable.make ?relation ~dim ~mem ~sample ~volume ()

let union2 a b = union [ a; b ]
