module Diag = Scdb_diag.Diag
module Trace = Scdb_trace.Trace
module Log = Scdb_log.Log

type chain = {
  ess : float array;
  mean : float array;
  kept : int;
  acceptance_rate : float;
  max_stall : int;
}

type t = {
  dim : int;
  chains : chain array;
  thin : int;
  samples_per_chain : int;
  rhat : float array;
  verdict : Diag.verdict;
}

let default_chains = 4
let default_samples_per_chain = 64

let run ?(chains = default_chains) ?(samples_per_chain = default_samples_per_chain) rng poly =
  if chains < 1 then invalid_arg "Diag_run.run: chains must be >= 1";
  if samples_per_chain < 4 then invalid_arg "Diag_run.run: samples_per_chain must be >= 4";
  let dim = Polytope.dim poly in
  Trace.span "diag.run"
    ~attrs:
      [
        ("dim", string_of_int dim);
        ("chains", string_of_int chains);
        ("samples_per_chain", string_of_int samples_per_chain);
      ]
  @@ fun () ->
  match Rounding.round rng poly with
  | None -> None
  | Some rounded ->
      let body = rounded.Rounding.rounded in
      (* Thin at the paper-prescribed walk length: each retained draw
         has had a full mixing budget since the previous one, so the
         retained series is close to iid and R̂/ESS read cleanly. *)
      let thin = Hit_and_run.default_steps ~dim in
      let steps = thin * samples_per_chain in
      (* All chains run through the batched SoA kernel in one call:
         per-chain monitors replace the old sequential loop, and each
         chain draws from its own split of the caller's generator. *)
      let monitors = Array.init chains (fun _ -> Diag.Monitor.create ~thin ~dim ()) in
      let rngs = Array.init chains (fun _ -> Rng.split rng) in
      let starts = Array.init chains (fun _ -> Vec.create dim) in
      ignore (Hit_and_run.sample_polytope_batch ~monitors rngs body ~starts ~steps);
      let chains_stats =
        Array.map
          (fun m ->
            {
              ess = Diag.Monitor.ess_per_coord m;
              mean = Diag.Monitor.mean_per_coord m;
              kept = Diag.Monitor.kept m;
              acceptance_rate = Diag.Monitor.acceptance_rate m;
              max_stall = Diag.Monitor.max_stall m;
            })
          monitors
      in
      let monitor_list = Array.to_list monitors in
      let rhat =
        Array.init dim (fun c -> Diag.split_rhat_monitors monitor_list ~coord:c)
      in
      let ess = Array.map (fun c -> c.ess) chains_stats in
      let verdict = Diag.assess ~rhat ~ess () in
      if (not verdict.Diag.converged) && Log.would_log Log.Warn then
        Log.warn "diag.not_converged"
          [
            Log.str "reason" verdict.Diag.reason;
            Log.float "max_rhat" (Array.fold_left Float.max Float.nan rhat);
            Log.int "chains" chains;
            Log.int "samples_per_chain" samples_per_chain;
          ];
      Trace.add_attr "converged" (string_of_bool verdict.Diag.converged);
      Some
        {
          dim;
          chains = chains_stats;
          thin;
          samples_per_chain;
          rhat;
          verdict;
        }

let json_float v =
  if Float.is_nan v then "\"nan\""
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let json_float_array a =
  "[" ^ String.concat ", " (Array.to_list (Array.map json_float a)) ^ "]"

let to_json t =
  let buf = Buffer.create 1024 in
  let chain_json c =
    Printf.sprintf
      "{\"kept\": %d, \"acceptance_rate\": %s, \"max_stall\": %d, \"ess\": %s, \"mean\": %s}"
      c.kept (json_float c.acceptance_rate) c.max_stall (json_float_array c.ess)
      (json_float_array c.mean)
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"dim\": %d,\n" t.dim);
  Buffer.add_string buf (Printf.sprintf "  \"chains\": %d,\n" (Array.length t.chains));
  Buffer.add_string buf (Printf.sprintf "  \"thin\": %d,\n" t.thin);
  Buffer.add_string buf (Printf.sprintf "  \"samples_per_chain\": %d,\n" t.samples_per_chain);
  Buffer.add_string buf (Printf.sprintf "  \"rhat\": %s,\n" (json_float_array t.rhat));
  Buffer.add_string buf "  \"per_chain\": [\n    ";
  Buffer.add_string buf
    (String.concat ",\n    " (Array.to_list (Array.map chain_json t.chains)));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"converged\": %b,\n" t.verdict.Diag.converged);
  Buffer.add_string buf
    (Printf.sprintf "  \"reason\": \"%s\"\n" (String.escaped t.verdict.Diag.reason));
  Buffer.add_string buf "}";
  Buffer.contents buf
