(** The Dyer–Frieze–Kannan base case: convex well-bounded relations are
    observable.

    Builds an {!Observable.t} for a single generalized tuple: the
    generator walks a γ-grid on the well-rounded image of the body (the
    paper's construction), and the estimator is the multi-phase
    {!Scdb_sampling.Volume} scheme. *)

type sampler =
  | Grid_walk  (** the paper's lattice walk *)
  | Hit_and_run  (** continuous variant *)
  | Rejection_box
      (** exact-uniform rejection from the rounded body's bounding box;
          only sensible in low dimension (acceptance decays like the
          body/box volume ratio).  Falls back to hit-and-run when the
          attempt budget is exhausted.  Volume estimation still runs
          the hit-and-run multi-phase scheme. *)

type config = {
  sampler : sampler;
  volume_budget : Volume.budget;
  walk_steps : int option; (* override the default mixing schedule *)
}

val default_config : config
(** Grid walk, rigorous budget, default mixing schedule. *)

val practical_config : config
(** Hit-and-run with a fixed per-phase budget — what the experiments use
    when wall-clock matters more than certified constants. *)

val make : ?config:config -> Rng.t -> Relation.t -> Observable.t option
(** Observable for a relation that must consist of exactly one
    generalized tuple (i.e. be convex).  The [Rng.t] drives the
    well-rounding preprocessing.  [None] when the body is empty,
    unbounded, or lower-dimensional.
    @raise Invalid_argument if the relation has more than one tuple. *)

val of_polytope :
  ?config:config -> ?relation:Relation.t -> Rng.t -> Polytope.t -> Observable.t option
(** Same, from an explicit float polytope.  When [relation] is given it
    is stored for reporting and used as the membership oracle;
    otherwise membership tests the polytope directly. *)

(** {2 Split construction}

    Generator construction has two halves: the rng-consuming
    well-rounding preprocessing and the (pure) closure building.
    [prepare] runs only the first and returns the preprocessed piece;
    [observe] builds the interpreted observable from it.
    [of_polytope rng p = Option.map observe (prepare rng p)] — same rng
    draw sequence — and the plan→kernel compiler ({!Scdb_vm}) consumes
    prepared pieces directly, so both engines share identical
    preprocessing streams. *)

type prepared = private {
  p_dim : int;
  p_config : config;
  p_relation : Relation.t option;
  p_original : Polytope.t;  (** the body as given, pre-rounding *)
  p_body : Polytope.t;  (** the well-rounded image the walks run in *)
  p_transform : Affine.t;  (** rounding map: body = transform(original) *)
  p_r_sup : float;  (** enclosing-ball radius of the rounded body *)
}

val prepare :
  ?config:config -> ?relation:Relation.t -> Rng.t -> Polytope.t -> prepared option
(** Run the well-rounding preprocessing only.  Draws exactly the rng
    stream {!of_polytope} would; [None] under the same conditions. *)

val prepare_relation : ?config:config -> Rng.t -> Relation.t -> prepared option
(** [prepare] for a single-tuple relation, mirroring {!make}.
    @raise Invalid_argument if the relation has more than one tuple. *)

val observe : prepared -> Observable.t
(** Build the interpreted observable over a prepared piece.  Pure — no
    rng draws. *)
