(** The Dyer–Frieze–Kannan base case: convex well-bounded relations are
    observable.

    Builds an {!Observable.t} for a single generalized tuple: the
    generator walks a γ-grid on the well-rounded image of the body (the
    paper's construction), and the estimator is the multi-phase
    {!Scdb_sampling.Volume} scheme. *)

type sampler =
  | Grid_walk  (** the paper's lattice walk *)
  | Hit_and_run  (** continuous variant *)
  | Rejection_box
      (** exact-uniform rejection from the rounded body's bounding box;
          only sensible in low dimension (acceptance decays like the
          body/box volume ratio).  Falls back to hit-and-run when the
          attempt budget is exhausted.  Volume estimation still runs
          the hit-and-run multi-phase scheme. *)

type config = {
  sampler : sampler;
  volume_budget : Volume.budget;
  walk_steps : int option; (* override the default mixing schedule *)
}

val default_config : config
(** Grid walk, rigorous budget, default mixing schedule. *)

val practical_config : config
(** Hit-and-run with a fixed per-phase budget — what the experiments use
    when wall-clock matters more than certified constants. *)

val make : ?config:config -> Rng.t -> Relation.t -> Observable.t option
(** Observable for a relation that must consist of exactly one
    generalized tuple (i.e. be convex).  The [Rng.t] drives the
    well-rounding preprocessing.  [None] when the body is empty,
    unbounded, or lower-dimensional.
    @raise Invalid_argument if the relation has more than one tuple. *)

val of_polytope :
  ?config:config -> ?relation:Relation.t -> Rng.t -> Polytope.t -> Observable.t option
(** Same, from an explicit float polytope.  When [relation] is given it
    is stored for reporting and used as the membership oracle;
    otherwise membership tests the polytope directly. *)
