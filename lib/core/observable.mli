(** Observable relations: the paper's central notion.

    A relation is {e observable} when it carries both a
    (γ,ε,δ)-uniform generator and an (ε,δ)-volume estimator.  This
    module defines the runtime object the combinators ({!Union},
    {!Inter}, {!Diff}, {!Project}) compose, mirroring how the paper
    builds generators for FO+LIN operators out of the
    Dyer–Frieze–Kannan base case. *)

exception Estimation_failed of string
(** Raised by volume estimators when the underlying body turns out
    empty/unbounded or the sampler breaks down. *)

type t = {
  dim : int;
  relation : Relation.t option;
      (* symbolic description when one is materialized; projections
         deliberately avoid computing it (that is their whole point) *)
  mem : Vec.t -> bool; (* the membership oracle of the paper (linear in description size) *)
  sample : Rng.t -> Params.t -> Vec.t option; (* the (γ,ε,δ)-generator; [None] = declared failure *)
  volume : Rng.t -> gamma:float -> eps:float -> delta:float -> float;
      (* the (ε,δ)-volume estimator; [gamma] is the grid resolution any
         internal sampling must discretize on, so that volume and
         sample paths of one observable agree on the grid *)
}

val make :
  ?relation:Relation.t ->
  dim:int ->
  mem:(Vec.t -> bool) ->
  sample:(Rng.t -> Params.t -> Vec.t option) ->
  volume:(Rng.t -> gamma:float -> eps:float -> delta:float -> float) ->
  unit ->
  t

val of_relation_parts :
  relation:Relation.t ->
  mem:(Vec.t -> bool) ->
  sample:(Rng.t -> Params.t -> Vec.t option) ->
  volume:(Rng.t -> gamma:float -> eps:float -> delta:float -> float) ->
  t
(** Like {!make} with the dimension taken from the relation. *)

val dim : t -> int
val relation : t -> Relation.t option
val mem : t -> Vec.t -> bool
val sample : t -> Rng.t -> Params.t -> Vec.t option

val volume : t -> ?gamma:float -> Rng.t -> eps:float -> delta:float -> float
(** [gamma] defaults to {!Params.default}'s γ (0.1).  Combinators that
    sample internally (union, intersection, difference, projection)
    pass it through to their children's generators, so the volume path
    and the sample path of the same observable discretize on the same
    grid. *)

val sample_exn : t -> Rng.t -> Params.t -> Vec.t
(** Retry the generator up to [20·ln(1/δ)] times.
    @raise Estimation_failed when every attempt fails. *)

val sample_many : t -> Rng.t -> Params.t -> n:int -> Vec.t list
(** [n] successful draws (individual failures are retried as in
    {!sample_exn}). *)

val with_cached_volume : t -> t
(** Memoize the volume estimator per (γ,ε,δ) triple.  The combinators call
    child estimators on every trial (as written in the paper's
    Algorithm 1); caching makes that affordable without changing the
    estimate seen by any single run. *)

val combine_relations :
  (Relation.t -> Relation.t -> Relation.t) -> t -> t -> Relation.t option
(** Lift a symbolic operation to optional relations. *)
