exception Estimation_failed of string

type t = {
  dim : int;
  relation : Relation.t option;
  mem : Vec.t -> bool;
  sample : Rng.t -> Params.t -> Vec.t option;
  volume : Rng.t -> gamma:float -> eps:float -> delta:float -> float;
}

let make ?relation ~dim ~mem ~sample ~volume () =
  (match relation with
  | Some r when Relation.dim r <> dim -> invalid_arg "Observable.make: relation dimension mismatch"
  | _ -> ());
  { dim; relation; mem; sample; volume }

let of_relation_parts ~relation ~mem ~sample ~volume =
  { dim = Relation.dim relation; relation = Some relation; mem; sample; volume }

let dim t = t.dim
let relation t = t.relation
let mem t x = t.mem x
let sample t rng params = t.sample rng params

let volume t ?gamma rng ~eps ~delta =
  let gamma = match gamma with Some g -> g | None -> Params.gamma Params.default in
  t.volume rng ~gamma ~eps ~delta

let sample_exn t rng params =
  let attempts = Stdlib.max 4 (int_of_float (ceil (20.0 *. log (1.0 /. Params.delta params)))) in
  let rec go n =
    if n = 0 then begin
      let module Log = Scdb_log.Log in
      if Log.would_log Log.Error then
        Log.error "observable.sample_failed"
          [ Log.int "attempts" attempts; Log.int "dim" t.dim ];
      raise (Estimation_failed "generator failed on every retry")
    end
    else match t.sample rng params with Some x -> x | None -> go (n - 1)
  in
  go attempts

let sample_many t rng params ~n = List.init n (fun _ -> sample_exn t rng params)

let with_cached_volume t =
  let cache : (float * float * float, float) Hashtbl.t = Hashtbl.create 4 in
  let volume rng ~gamma ~eps ~delta =
    match Hashtbl.find_opt cache (gamma, eps, delta) with
    | Some v -> v
    | None ->
        let v = t.volume rng ~gamma ~eps ~delta in
        Hashtbl.replace cache (gamma, eps, delta) v;
        v
  in
  { t with volume }

let combine_relations f a b =
  match (a.relation, b.relation) with Some ra, Some rb -> Some (f ra rb) | _ -> None
