(** Multi-chain convergence harness for the hit-and-run sampler.

    Runs [m] independent hit-and-run chains on the (rounded) body,
    thinned at the paper-prescribed walk length
    ({!Scdb_sampling.Hit_and_run.default_steps}), and summarizes
    per-chain effective sample sizes and cross-chain split-R̂ per
    coordinate into a {!Scdb_diag.Diag.verdict}.

    Diagnostics are computed in the rounded body's coordinates: the
    rounding transform is affine, so mixing there is mixing of the
    mapped samples too. *)

type chain = {
  ess : float array;  (** per-coordinate effective sample size *)
  mean : float array;  (** per-coordinate mean of retained draws *)
  kept : int;  (** retained (thinned) draws *)
  acceptance_rate : float;
  max_stall : int;  (** longest consecutive-rejection run *)
}

type t = {
  dim : int;
  chains : chain array;
  thin : int;  (** walk steps between retained draws *)
  samples_per_chain : int;
  rhat : float array;  (** split Gelman–Rubin R̂ per coordinate *)
  verdict : Scdb_diag.Diag.verdict;
}

val default_chains : int
(** 4 *)

val default_samples_per_chain : int
(** 64 *)

val run :
  ?chains:int -> ?samples_per_chain:int -> Rng.t -> Polytope.t -> t option
(** Round the body, run the chains, diagnose.  [None] when the body is
    empty or unbounded (rounding fails).  Each chain draws its seed
    from [rng], so the whole run is deterministic given the seed. *)

val to_json : t -> string
(** Self-contained JSON object (no trailing newline). *)
