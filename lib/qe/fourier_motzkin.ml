module Log = Scdb_log.Log

type stats = { constraints_generated : int; max_tuple_size : int }

let empty_stats = { constraints_generated = 0; max_tuple_size = 0 }

let observe stats tuple =
  let n = List.length tuple in
  {
    constraints_generated = stats.constraints_generated + n;
    max_tuple_size = max stats.max_tuple_size n;
  }

(* Eliminate [v] from a conjunction of atoms using an equality pivot when
   available, and lower/upper combination otherwise. *)
let eliminate_var_tuple_raw v tuple =
  let has_v a = not (Rational.is_zero (Term.coeff (a : Atom.t).term v)) in
  let eq_pivot =
    List.find_opt (fun a -> (a : Atom.t).op = Atom.Eq && has_v a) tuple
  in
  match eq_pivot with
  | Some pivot ->
      (* c·v + rest = 0  ⇒  v := -rest / c. *)
      let c = Term.coeff (pivot : Atom.t).term v in
      let rest = Term.sub pivot.term (Term.monomial c v) in
      let replacement = Term.scale (Rational.neg (Rational.inv c)) rest in
      List.filter_map
        (fun a ->
          if a == pivot then None
          else
            let a' = Atom.subst a v replacement in
            if Atom.is_trivially_true a' then None else Some a')
        tuple
  | None ->
      let uppers = ref [] and lowers = ref [] and rest = ref [] in
      List.iter
        (fun (a : Atom.t) ->
          let c = Term.coeff a.term v in
          let s = Rational.sign c in
          if s = 0 then rest := a :: !rest
          else begin
            (* write the atom as  c·v + r  op  0 *)
            let r = Term.sub a.term (Term.monomial c v) in
            if s > 0 then uppers := (c, r, a.op) :: !uppers else lowers := (c, r, a.op) :: !lowers
          end)
        tuple;
      let combined =
        (* (c1 v + r1 op1 0, c1>0)  ∧  (c2 v + r2 op2 0, c2<0)
           ⇒  (−c2)·r1 + c1·r2  op  0,   strict iff either was strict. *)
        List.concat_map
          (fun (c1, r1, op1) ->
            List.filter_map
              (fun (c2, r2, op2) ->
                let term =
                  Term.add (Term.scale (Rational.neg c2) r1) (Term.scale c1 r2)
                in
                let op = if op1 = Atom.Lt || op2 = Atom.Lt then Atom.Lt else Atom.Le in
                let a = Atom.make term op in
                if Atom.is_trivially_true a then None else Some a)
              !lowers)
          !uppers
      in
      let out = List.rev_append !rest combined in
      (* The quadratic lower×upper product is where FM elimination
         blows up; a >4x growth past a few hundred atoms is the signal
         that the DNF is about to become intractable. *)
      (if Log.would_log Log.Warn then begin
         let n_out = List.length out in
         if n_out > 256 && n_out > 4 * List.length tuple then
           Log.warn "qe.dnf_blowup"
             [
               Log.int "input_atoms" (List.length tuple);
               Log.int "output_atoms" n_out;
               Log.int "lowers" (List.length !lowers);
               Log.int "uppers" (List.length !uppers);
             ]
       end);
      out

let eliminate_var_tuple ?(prune = true) v tuple =
  let result = eliminate_var_tuple_raw v tuple in
  if prune then Redundancy.prune result else result

let eliminate_vars_tuple_stats ?(prune = true) vs tuple =
  List.fold_left
    (fun (t, stats) v ->
      let t' = eliminate_var_tuple ~prune v t in
      (t', observe stats t'))
    (tuple, observe empty_stats tuple)
    vs

let eliminate_vars_tuple ?prune vs tuple = fst (eliminate_vars_tuple_stats ?prune vs tuple)

let eliminate_tuples ?prune vs tuples =
  List.filter_map
    (fun tuple ->
      let t = eliminate_vars_tuple ?prune vs tuple in
      match Dnf.simplify_tuple t with
      | None -> None
      | Some t -> if Redundancy.is_empty t then None else Some t)
    tuples

let rec eliminate ?(prune = true) f =
  match (f : Formula.t) with
  | True | False | Atom _ -> f
  | And fs -> Formula.conj (List.map (eliminate ~prune) fs)
  | Or fs -> Formula.disj (List.map (eliminate ~prune) fs)
  | Not g -> Formula.neg (eliminate ~prune g)
  | Exists (vs, g) ->
      let g' = eliminate ~prune g in
      let tuples = Dnf.of_formula g' in
      Dnf.to_formula (eliminate_tuples ~prune vs tuples)
  | Forall (vs, g) ->
      eliminate ~prune (Formula.neg (Formula.exists vs (Formula.neg g)))

let project ?prune r ~keep =
  let dim = Relation.dim r in
  List.iter
    (fun i -> if i < 0 || i >= dim then invalid_arg "Fourier_motzkin.project: coordinate out of range")
    keep;
  let drop = List.filter (fun i -> not (List.mem i keep)) (List.init dim Fun.id) in
  let renaming =
    let table = Hashtbl.create 8 in
    List.iteri (fun pos i -> Hashtbl.add table i pos) keep;
    fun i ->
      match Hashtbl.find_opt table i with
      | Some pos -> pos
      | None -> invalid_arg "Fourier_motzkin.project: residual variable after elimination"
  in
  let tuples = eliminate_tuples ?prune drop (Relation.tuples r) in
  let tuples = List.map (List.map (fun a -> Atom.rename a renaming)) tuples in
  Relation.make ~dim:(List.length keep) tuples
