(** Online convergence diagnostics for the random-walk samplers.

    The paper prescribes walk lengths under which its (γ,ε,δ) contracts
    hold; this module measures whether a deployment's chains actually
    mix at those lengths.  Building blocks:

    - {!Welford}: streaming mean/variance in O(1) memory;
    - {!ess}: effective sample size from lag-k autocorrelations
      (Geyer's initial positive sequence estimator);
    - {!split_rhat}: split-chain Gelman–Rubin potential scale reduction
      across m independent chains;
    - {!Monitor}: a per-chain hook the walk kernels
      ([Hit_and_run], [Walk], [Ball_walk]) feed with positions and
      accept/reject events, including a stall monitor (longest
      consecutive-rejection run).

    Everything is deterministic given the recorded series. *)

module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  val variance : t -> float
  (** Unbiased sample variance ([n-1] denominator); [0.] for [n < 2]. *)

  val std : t -> float
end

val autocovariance : float array -> int -> float
(** Biased ([1/n]) autocovariance at the given lag. *)

val autocorrelation : float array -> int -> float
(** Lag-k autocorrelation in [[-1, 1]]; [0.] for a constant series. *)

val ess : float array -> float
(** Effective sample size: [n / (1 + 2 Σ ρ_k)] with the sum truncated
    at the first non-positive consecutive-lag pair (Geyer initial
    positive sequence), clamped to [[1, n]]. *)

val split_rhat : float array array -> float
(** Split-chain Gelman–Rubin R̂ over m ≥ 1 chains of one coordinate:
    each chain is halved and between-half variance is compared to
    within-half variance.  Values near 1 indicate agreement; ≥ 1.1
    conventionally flags non-convergence.  Returns [1.] when fewer than
    two halves of length ≥ 2 exist. *)

module Monitor : sig
  type t

  val create : ?thin:int -> dim:int -> unit -> t
  (** Fresh monitor for one chain.  [thin] keeps every [thin]-th
      recorded position (default 1: keep all). *)

  val record : t -> float array -> unit
  (** Feed the chain position after a walk step (the kernels call this
      once per step when a monitor is attached). *)

  val record_off : t -> float array -> int -> unit
  (** [record_off t src off] records the [dim] floats at [src.(off ..)]
      as the next position — how the batched kernels feed per-chain
      monitors straight from their structure-of-arrays position block
      without copying a vector per step. *)

  val accept : t -> unit
  val reject : t -> unit

  val dim : t -> int
  val steps : t -> int
  val kept : t -> int
  val proposals : t -> int
  val accepted : t -> int
  val acceptance_rate : t -> float

  val max_stall : t -> int
  (** Longest run of consecutive rejections — a stalled walk (stuck in
      a corner, step size too large) shows up here before it shows up
      in R̂. *)

  val series : t -> int -> float array
  (** Retained positions of one coordinate, in order. *)

  val ess_per_coord : t -> float array
  val mean_per_coord : t -> float array
end

val split_rhat_monitors : Monitor.t list -> coord:int -> float
(** {!split_rhat} over the recorded series of one coordinate across
    chains. *)

type verdict = { converged : bool; reason : string }

val assess :
  ?rhat_threshold:float ->
  ?min_ess:float ->
  rhat:float array ->
  ess:float array array ->
  unit ->
  verdict
(** Combine per-coordinate R̂ and per-chain ESS into a verdict.
    Defaults: [rhat_threshold = 1.1], [min_ess = 16]. *)
