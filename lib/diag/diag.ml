(* Online convergence diagnostics for the random-walk samplers. *)

module Welford = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let d = x -. t.mean in
    t.mean <- t.mean +. (d /. float_of_int t.n);
    t.m2 <- t.m2 +. (d *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let std t = sqrt (variance t)
end

(* ------------------------------------------------------------------ *)
(* Series statistics                                                   *)
(* ------------------------------------------------------------------ *)

let series_mean x =
  let n = Array.length x in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 x /. float_of_int n

(* Biased (1/n) autocovariance at lag k, the standard choice for
   ESS estimation (it damps the noisy large-lag terms). *)
let autocovariance x k =
  let n = Array.length x in
  if k >= n then 0.0
  else begin
    let m = series_mean x in
    let acc = ref 0.0 in
    for i = 0 to n - k - 1 do
      acc := !acc +. ((x.(i) -. m) *. (x.(i + k) -. m))
    done;
    !acc /. float_of_int n
  end

let autocorrelation x k =
  let c0 = autocovariance x 0 in
  if c0 <= 0.0 then 0.0 else autocovariance x k /. c0

(* Effective sample size by Geyer's initial positive sequence: sum
   ρ(2t)+ρ(2t+1) while the pair sums stay positive, τ = 1 + 2Σρ,
   ESS = n/τ clamped to [1, n]. *)
let ess x =
  let n = Array.length x in
  if n < 4 then float_of_int n
  else begin
    let c0 = autocovariance x 0 in
    if c0 <= 1e-300 then float_of_int n
    else begin
      let rho k = autocovariance x k /. c0 in
      let acc = ref 0.0 in
      let k = ref 1 in
      let stop = ref false in
      while (not !stop) && !k + 1 < n do
        let pair = rho !k +. rho (!k + 1) in
        if pair > 0.0 then begin
          acc := !acc +. pair;
          k := !k + 2
        end
        else stop := true
      done;
      let tau = 1.0 +. (2.0 *. !acc) in
      Float.max 1.0 (Float.min (float_of_int n) (float_of_int n /. Float.max tau 1e-12))
    end
  end

(* Split-chain Gelman–Rubin: halve every chain (discarding a trailing
   odd element), then compare between- and within-half variances.
   R̂ → 1 as the halves agree; > 1.1 conventionally flags
   non-convergence. *)
let split_rhat chains =
  let halves =
    List.concat_map
      (fun c ->
        let n = Array.length c / 2 in
        if n < 2 then []
        else [ Array.sub c 0 n; Array.sub c n n ])
      (Array.to_list chains)
  in
  let m = List.length halves in
  if m < 2 then 1.0
  else begin
    let n = float_of_int (Array.length (List.hd halves)) in
    let means = List.map series_mean halves in
    let vars =
      List.map2
        (fun h mu ->
          let acc = Array.fold_left (fun a x -> a +. ((x -. mu) *. (x -. mu))) 0.0 h in
          acc /. (n -. 1.0))
        halves means
    in
    let w = List.fold_left ( +. ) 0.0 vars /. float_of_int m in
    let grand = List.fold_left ( +. ) 0.0 means /. float_of_int m in
    let b =
      n /. float_of_int (m - 1)
      *. List.fold_left (fun a mu -> a +. ((mu -. grand) *. (mu -. grand))) 0.0 means
    in
    if w <= 1e-300 then if b <= 1e-300 then 1.0 else infinity
    else sqrt ((((n -. 1.0) /. n) *. w +. (b /. n)) /. w)
  end

(* ------------------------------------------------------------------ *)
(* Walk monitor                                                        *)
(* ------------------------------------------------------------------ *)

module Monitor = struct
  type t = {
    dim : int;
    thin : int;
    mutable seen : int; (* walk steps observed via [record] *)
    mutable kept : int; (* retained (thinned) positions *)
    mutable data : float array; (* row-major kept × dim *)
    mutable proposals : int;
    mutable accepted : int;
    mutable stall : int; (* current consecutive-rejection run *)
    mutable max_stall : int;
  }

  let create ?(thin = 1) ~dim () =
    if thin < 1 then invalid_arg "Diag.Monitor.create: thin must be >= 1";
    if dim < 1 then invalid_arg "Diag.Monitor.create: dim must be >= 1";
    { dim; thin; seen = 0; kept = 0; data = Array.make (16 * dim) 0.0;
      proposals = 0; accepted = 0; stall = 0; max_stall = 0 }

  let record_off t src off =
    if off < 0 || off + t.dim > Array.length src then
      invalid_arg "Diag.Monitor.record_off: offset out of range";
    t.seen <- t.seen + 1;
    if t.seen mod t.thin = 0 then begin
      let need = (t.kept + 1) * t.dim in
      if need > Array.length t.data then begin
        let bigger = Array.make (2 * Array.length t.data) 0.0 in
        Array.blit t.data 0 bigger 0 (t.kept * t.dim);
        t.data <- bigger
      end;
      Array.blit src off t.data (t.kept * t.dim) t.dim;
      t.kept <- t.kept + 1
    end

  let record t x =
    if Array.length x <> t.dim then invalid_arg "Diag.Monitor.record: dimension mismatch";
    record_off t x 0

  let accept t =
    t.proposals <- t.proposals + 1;
    t.accepted <- t.accepted + 1;
    t.stall <- 0

  let reject t =
    t.proposals <- t.proposals + 1;
    t.stall <- t.stall + 1;
    if t.stall > t.max_stall then t.max_stall <- t.stall

  let dim t = t.dim
  let steps t = t.seen
  let kept t = t.kept
  let proposals t = t.proposals
  let accepted t = t.accepted

  let acceptance_rate t =
    if t.proposals = 0 then 0.0 else float_of_int t.accepted /. float_of_int t.proposals

  let max_stall t = t.max_stall

  let series t j =
    if j < 0 || j >= t.dim then invalid_arg "Diag.Monitor.series: coordinate out of range";
    Array.init t.kept (fun i -> t.data.((i * t.dim) + j))

  let ess_per_coord t = Array.init t.dim (fun j -> ess (series t j))
  let mean_per_coord t = Array.init t.dim (fun j -> series_mean (series t j))
end

let split_rhat_monitors monitors ~coord =
  split_rhat (Array.of_list (List.map (fun m -> Monitor.series m coord) monitors))

(* ------------------------------------------------------------------ *)
(* Verdict                                                             *)
(* ------------------------------------------------------------------ *)

type verdict = { converged : bool; reason : string }

let assess ?(rhat_threshold = 1.1) ?(min_ess = 16.0) ~rhat ~ess:ess_chains () =
  let bad_rhat =
    Array.exists (fun r -> (not (Float.is_finite r)) || r >= rhat_threshold) rhat
  in
  let worst_ess =
    Array.fold_left
      (fun acc per_coord -> Array.fold_left Float.min acc per_coord)
      infinity ess_chains
  in
  if Array.length rhat = 0 then { converged = false; reason = "no chains recorded" }
  else if bad_rhat then
    {
      converged = false;
      reason =
        Printf.sprintf "split R-hat %.3f above threshold %.2f"
          (Array.fold_left Float.max neg_infinity rhat)
          rhat_threshold;
    }
  else if Float.is_finite worst_ess && worst_ess < min_ess then
    {
      converged = false;
      reason = Printf.sprintf "effective sample size %.1f below %.0f" worst_ess min_ess;
    }
  else { converged = true; reason = "chains agree and effective sample size is adequate" }
