(** The (ε,δ) accuracy-contract auditor.

    Every estimate the pipeline emits promises the paper's contract
    [Pr(|est − truth| ≤ ε·truth) ≥ 1 − δ].  The perf side of the
    observability stack (profiler, BENCH trend ledger, live status) can
    prove how {e fast} a run was; this module proves whether the
    contract actually {e held}: it obtains ground truth from an exact
    oracle (Lasserre volumes with inclusion–exclusion over the DNF
    tuples) or a high-budget reference run, replays the estimator [N]
    times on split seeds — optionally fanned across domains with one
    {!Scdb_obs.Obs.Ctx} per job — and brackets the empirical
    contract-hit fraction with an exact Clopper–Pearson interval, so
    "coverage ≥ 1−δ" is itself a statistically sound verdict rather
    than a point estimate.  Alongside coverage it reports per-plan-node
    error-budget attribution: the (ε,δ) grants of
    {!Scdb_plan.Plan.error_budget} joined with the runtime actuals of
    {!Scdb_gis.Plan_exec.attribution} through the {!Scdb_plan.Cost}
    inversions, i.e. consumed-vs-granted slack next to
    predicted-vs-actual cost.

    Results serialize to the versioned [spatialdb-audit/1] JSON
    document; [AUDIT_1.json] in the repo root is the committed accuracy
    ledger (the analogue of the BENCH_* perf baselines), gated in CI by
    [bench/validate_audit.exe]. *)

(** Where ground truth came from. *)
type oracle = Exact | Reference

val oracle_name : oracle -> string
(** ["exact"] / ["reference"]. *)

(** Three-valued audit outcome: [Pass] when the Clopper–Pearson lower
    bound already certifies coverage ≥ 1−δ, [Fail] when even the upper
    bound rules it out, [Inconclusive] when the interval straddles the
    target (too few replicates to decide at this confidence). *)
type verdict = Pass | Fail | Inconclusive

val verdict_name : verdict -> string
(** ["pass"] / ["fail"] / ["inconclusive"]. *)

val clopper_pearson : ?confidence:float -> hits:int -> runs:int -> unit -> float * float
(** Exact (Clopper–Pearson) two-sided binomial confidence interval for
    the success probability after observing [hits] successes in [runs]
    trials, at [confidence] (default 0.95).  Computed by bisection on
    the exact binomial tails in log space — no normal approximation, so
    it is valid at the small replicate counts CI can afford.
    @raise Invalid_argument unless [0 <= hits <= runs], [runs >= 1] and
    [confidence] lies in (0,1). *)

(** {1 Oracles} *)

val exact_truth : ?max_tuples:int -> Relation.t -> Rational.t option
(** Exact ground truth via {!Scdb_polytope.Volume_exact}: Lasserre's
    recursion per tuple, inclusion–exclusion across tuples.  [None]
    when the relation is unbounded or has more than [max_tuples]
    (default 16) tuples — the [2^t] closed-form blowup guard. *)

val reference_truth :
  ?gamma:float -> eps:float -> delta:float -> seed:int -> Relation.t -> float option
(** Fallback pseudo-oracle for shapes with no closed form: one
    high-budget run of the estimator under audit at (ε/10, δ/10) with
    an 8× per-phase sample budget.  [None] when the relation is empty,
    unbounded or lower-dimensional.  Coverage measured against a
    reference truth folds the oracle's own (small) error into the
    verdict — prefer the exact oracle whenever it applies. *)

(** {1 Coverage verification} *)

type mode = Domains | Seq
(** How replicate jobs execute: one domain per job (concurrent) or
    sequentially in the same contexts.  Replicate [i] always runs on
    seed [seed + i], so both modes produce bit-identical estimates and
    the same verdict — the differential CI check. *)

type coverage = {
  runs : int;
  estimates : float array;  (** in replicate order; [nan] = declared failure *)
  hits : int;  (** replicates with [|est − truth| ≤ ε·truth] *)
  coverage : float;  (** [hits/runs] *)
  cp_low : float;
  cp_high : float;  (** Clopper–Pearson bracket of the true coverage *)
  confidence : float;
  target : float;  (** [1 − δ], what the contract promises *)
  verdict : verdict;
}

val verify :
  ?jobs:int ->
  ?mode:mode ->
  ?confidence:float ->
  eps:float ->
  delta:float ->
  runs:int ->
  seed:int ->
  truth:float ->
  (int -> float option) ->
  coverage
(** [verify ~eps ~delta ~runs ~seed ~truth estimate] replays
    [estimate (seed + i)] for [i = 0 … runs−1] and renders the
    coverage verdict.  With [jobs = K > 1] the replicates are dealt
    round-robin to [K] observability contexts named [audit-0 …]
    (spawned as domains under {!Domains}), each merged back into
    {!Scdb_obs.Obs.Ctx.default} afterwards, so telemetry from a fanned
    audit is exactly the telemetry of the sequential one.  Replicates
    bump the [audit.replicates]/[audit.hits]/[audit.misses] counters
    and the [audit.rel_error] histogram in whatever context they run
    in.  A [None] or non-finite estimate counts as a miss (a declared
    failure is a contract violation).
    @raise Invalid_argument on non-positive [runs]/[jobs] or parameters
    outside (0,1). *)

(** {1 Error-budget attribution} *)

type budget_row = Scdb_gis.Plan_exec.budget_row = {
  b_id : int;
  b_op : string;
  b_eps : float;  (** granted ε of the node's own estimation phase *)
  b_delta : float;  (** granted δ *)
  b_predicted : float;  (** predicted work (steps + trials) *)
  b_actual : float;  (** accrued work *)
  b_ratio : float;  (** actual/predicted; [nan] when the node never ran *)
  b_delta_achieved : float;
      (** δ the node actually bought with its spent work, via
          {!Scdb_plan.Cost.delta_at_work_ratio}; [nan] when it never
          ran *)
  b_slack : float;  (** [b_delta − b_delta_achieved]; negative = overdrawn *)
}
(** Re-export of {!Scdb_gis.Plan_exec.budget_row} — the same rows
    appear in the [audit] block of [spatialdb report] documents. *)

val budget_rows :
  Scdb_plan.Plan.t -> Scdb_gis.Plan_exec.attribution_row array -> budget_row array
(** Join the plan's (ε,δ) grants with the runtime cost attribution, in
    node-id order.  Guards carry [nan] budgets throughout. *)

val budget_rows_json : budget_row array -> string
(** JSON array (two-space indented block), [null] for [nan] fields. *)

val budget_rows_text : budget_row array -> string
(** Fixed-width table for terminals. *)

(** {1 Whole-relation audits} *)

type t = {
  fingerprint : string;  (** {!Relation.fingerprint} of the audited relation *)
  oracle : oracle;  (** the oracle that actually supplied [truth] *)
  truth : float;
  truth_exact : Rational.t option;  (** exact value when [oracle = Exact] *)
  eps : float;
  delta : float;
  gamma : float;
  cov : coverage;
  budget : budget_row array;  (** from one armed planned run on [seed] *)
}

val run :
  ?gamma:float ->
  ?jobs:int ->
  ?mode:mode ->
  ?confidence:float ->
  ?oracle:[ `Exact | `Reference | `Auto ] ->
  ?max_tuples:int ->
  ?walk_steps:int ->
  ?phase_samples:int ->
  eps:float ->
  delta:float ->
  runs:int ->
  seed:int ->
  Relation.t ->
  (t, string) result
(** Audit the practical volume-estimation pipeline on [relation]:
    resolve ground truth ([`Exact] is strict and errors when no closed
    form applies; [`Auto], the default, falls back to the reference
    oracle), verify coverage over [runs] replicates seeded
    [seed, seed+1, …] (the [--jobs] convention), and collect the
    error-budget attribution from one armed run on [seed].  The
    reference oracle, when used, runs on seed [seed + runs] so it
    shares no replicate stream.  [gamma] defaults to the CLI's fixed
    grid parameter ({!Scdb_gis.Flight.gamma}).  [walk_steps] and
    [phase_samples] are fault injection: they override the estimator's
    mixing schedule / per-phase volume sample budget (the oracle is
    untouched), so a deliberately starved estimator is how the
    Figure 1 regression demo shows the auditor catching a broken
    sampler. *)

val to_json :
  vars:string list -> formula:string -> seed:int -> jobs:int -> requested:string -> t -> string
(** The [spatialdb-audit/1] document.  Deterministic — no wall-clock
    fields — so audits of the same configuration are byte-identical
    and the committed ledger diffs cleanly.  [requested] records the
    oracle asked for (["exact"], ["reference"] or ["auto"]); the
    top-level [oracle] field records the one actually used. *)

val to_text : t -> string
(** Human summary: truth, coverage with its bracket, verdict, and the
    per-node error-budget table. *)
