module Tel = Scdb_telemetry.Telemetry
module Trace = Scdb_trace.Trace
module Obs = Scdb_obs.Obs
module Plan = Scdb_plan.Plan
module Cost = Scdb_plan.Cost
module Plan_exec = Scdb_gis.Plan_exec
module VE = Scdb_polytope.Volume_exact
module Volume = Scdb_sampling.Volume

let tel_replicates = Tel.Counter.make "audit.replicates"
let tel_hits = Tel.Counter.make "audit.hits"
let tel_misses = Tel.Counter.make "audit.misses"
let tel_failures = Tel.Counter.make "audit.estimation_failures"
let tel_rel_error = Tel.Histogram.make "audit.rel_error"
let tel_oracle_exact = Tel.Counter.make "audit.oracle.exact"
let tel_oracle_reference = Tel.Counter.make "audit.oracle.reference"

type oracle = Exact | Reference

let oracle_name = function Exact -> "exact" | Reference -> "reference"

type verdict = Pass | Fail | Inconclusive

let verdict_name = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Inconclusive -> "inconclusive"

(* ---------------- Clopper–Pearson ---------------- *)

let clopper_pearson ?(confidence = 0.95) ~hits ~runs () =
  if runs < 1 || hits < 0 || hits > runs then invalid_arg "Audit.clopper_pearson";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Audit.clopper_pearson: confidence must lie in (0,1)";
  let alpha = 1.0 -. confidence in
  let lf = Array.make (runs + 1) 0.0 in
  for i = 2 to runs do
    lf.(i) <- lf.(i - 1) +. log (float_of_int i)
  done;
  (* Exact binomial tails, summed in probability space from log-space
     terms: every term is <= 1, so there is no overflow to dodge and
     the sum is accurate to float precision. *)
  let tail ~ge x p =
    if p <= 0.0 then if (ge && x <= 0) || not ge then 1.0 else 0.0
    else if p >= 1.0 then if ge || x >= runs then 1.0 else 0.0
    else begin
      let lp = log p and lq = log (1.0 -. p) in
      let term k =
        exp
          (lf.(runs) -. lf.(k)
          -. lf.(runs - k)
          +. (float_of_int k *. lp)
          +. (float_of_int (runs - k) *. lq))
      in
      let s = ref 0.0 in
      if ge then
        for k = Stdlib.max 0 x to runs do
          s := !s +. term k
        done
      else
        for k = 0 to Stdlib.min runs x do
          s := !s +. term k
        done;
      Float.min 1.0 !s
    end
  in
  (* Lower bound: the p where P[X >= hits | p] (increasing in p)
     crosses α/2.  Upper bound: where P[X <= hits | p] (decreasing)
     crosses α/2. *)
  let bisect f ~increasing target =
    let lo = ref 0.0 and hi = ref 1.0 in
    for _ = 1 to 80 do
      let mid = 0.5 *. (!lo +. !hi) in
      let v = f mid in
      let mid_is_low = if increasing then v < target else v > target in
      if mid_is_low then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  in
  let low =
    if hits = 0 then 0.0 else bisect (tail ~ge:true hits) ~increasing:true (alpha /. 2.0)
  in
  let high =
    if hits = runs then 1.0
    else bisect (tail ~ge:false hits) ~increasing:false (alpha /. 2.0)
  in
  (low, high)

(* ---------------- oracles ---------------- *)

let exact_truth ?(max_tuples = 16) relation =
  match VE.volume_relation ~max_tuples relation with
  | v -> Some v
  | exception VE.Unbounded -> None
  | exception Invalid_argument _ -> None

let estimate_once ~config ~gamma ~eps ~delta relation s =
  let rng = Rng.create s in
  match
    Plan_exec.observable_of_relation ~config ~gamma ~eps ~delta ~task:Plan.Volume rng
      relation
  with
  | None -> None
  | Some (_plan, obs) -> (
      match Observable.volume obs ~gamma rng ~eps ~delta with
      | v -> Some v
      | exception Observable.Estimation_failed _ -> None)

let practical = Convex_obs.practical_config

let reference_config =
  (* 8x the practical per-phase budget; with the tightened (ε/10,δ/10)
     below this also inflates every runtime-sized trial count. *)
  match practical.Convex_obs.volume_budget with
  | Volume.Practical n -> { practical with Convex_obs.volume_budget = Volume.Practical (8 * n) }
  | _ -> practical

let reference_truth ?(gamma = Scdb_gis.Flight.gamma) ~eps ~delta ~seed relation =
  Trace.span "audit.reference_truth" @@ fun () ->
  estimate_once ~config:reference_config ~gamma ~eps:(eps /. 10.0) ~delta:(delta /. 10.0)
    relation seed

(* ---------------- coverage verification ---------------- *)

type mode = Domains | Seq

type coverage = {
  runs : int;
  estimates : float array;
  hits : int;
  coverage : float;
  cp_low : float;
  cp_high : float;
  confidence : float;
  target : float;
  verdict : verdict;
}

let verify ?(jobs = 1) ?(mode = Domains) ?(confidence = 0.95) ~eps ~delta ~runs ~seed
    ~truth estimate =
  if runs < 1 then invalid_arg "Audit.verify: runs must be >= 1";
  if jobs < 1 then invalid_arg "Audit.verify: jobs must be >= 1";
  if eps <= 0.0 || eps >= 1.0 || delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Audit.verify: eps and delta must lie in (0,1)";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Audit.verify: confidence must lie in (0,1)";
  if (not (Float.is_finite truth)) || truth <= 0.0 then
    invalid_arg "Audit.verify: truth must be finite and positive";
  let estimates = Array.make runs Float.nan in
  let replicate i =
    Tel.Counter.incr tel_replicates;
    match estimate (seed + i) with
    | Some v when Float.is_finite v ->
        (* Distinct replicate indices: the only cell of [estimates] a
           job domain writes is its own. *)
        estimates.(i) <- v;
        let rel = Float.abs (v -. truth) /. truth in
        Tel.Histogram.observe tel_rel_error rel;
        if rel <= eps then begin
          Tel.Counter.incr tel_hits;
          true
        end
        else begin
          Tel.Counter.incr tel_misses;
          false
        end
    | _ ->
        Tel.Counter.incr tel_failures;
        Tel.Counter.incr tel_misses;
        false
  in
  let hits =
    if jobs = 1 then begin
      (* Uncontexted single-job path: everything lands in the ambient
         context, exactly like a plain run. *)
      let h = ref 0 in
      for i = 0 to runs - 1 do
        if replicate i then incr h
      done;
      !h
    end
    else begin
      let ctxs =
        Array.init jobs (fun j -> Obs.Ctx.create ~name:(Printf.sprintf "audit-%d" j) ())
      in
      let job j () =
        Obs.Ctx.run ctxs.(j) (fun () ->
            let h = ref 0 in
            let i = ref j in
            while !i < runs do
              if replicate !i then incr h;
              i := !i + jobs
            done;
            Obs.Ctx.mark_done ctxs.(j);
            !h)
      in
      let per_job =
        match mode with
        | Seq -> Array.init jobs (fun j -> job j ())
        | Domains ->
            let doms = Array.init jobs (fun j -> Domain.spawn (job j)) in
            Array.map Domain.join doms
      in
      Array.iter (fun c -> Obs.Ctx.merge ~into:Obs.Ctx.default c) ctxs;
      Array.fold_left ( + ) 0 per_job
    end
  in
  let cp_low, cp_high = clopper_pearson ~confidence ~hits ~runs () in
  let target = 1.0 -. delta in
  let verdict =
    if cp_low >= target then Pass else if cp_high < target then Fail else Inconclusive
  in
  {
    runs;
    estimates;
    hits;
    coverage = float_of_int hits /. float_of_int runs;
    cp_low;
    cp_high;
    confidence;
    target;
    verdict;
  }

(* ---------------- error-budget attribution ---------------- *)

(* The grant/actual join lives in {!Plan_exec} so `spatialdb report`
   (which cannot see this library) embeds exactly the same rows. *)
type budget_row = Plan_exec.budget_row = {
  b_id : int;
  b_op : string;
  b_eps : float;
  b_delta : float;
  b_predicted : float;
  b_actual : float;
  b_ratio : float;
  b_delta_achieved : float;
  b_slack : float;
}

let budget_rows = Plan_exec.budget_attribution
let budget_rows_json = Plan_exec.budget_attribution_json
let budget_rows_text = Plan_exec.budget_attribution_text

let jnum v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

(* ---------------- whole-relation audits ---------------- *)

type t = {
  fingerprint : string;
  oracle : oracle;
  truth : float;
  truth_exact : Rational.t option;
  eps : float;
  delta : float;
  gamma : float;
  cov : coverage;
  budget : budget_row array;
}

let attribution_pass ~config ~gamma ~eps ~delta ~seed relation =
  let rng = Rng.create seed in
  match
    Plan_exec.observable_of_relation ~config ~gamma ~eps ~delta ~task:Plan.Volume
      rng relation
  with
  | None -> [||]
  | Some (plan, obs) ->
      Plan_exec.arm plan;
      (match Observable.volume obs ~gamma rng ~eps ~delta with
      | (_ : float) -> ()
      | exception Observable.Estimation_failed _ -> ());
      let rows = budget_rows plan (Plan_exec.attribution plan) in
      Scdb_progress.Progress.stop ();
      rows

let run ?(gamma = Scdb_gis.Flight.gamma) ?(jobs = 1) ?(mode = Domains) ?(confidence = 0.95)
    ?(oracle = `Auto) ?max_tuples ?walk_steps ?phase_samples ~eps ~delta ~runs ~seed relation
    =
  if Relation.is_syntactically_empty relation then Error "relation is empty"
  else begin
    (* Fault injection for the regression demo: overriding the mixing
       schedule or the per-phase sample budget starves the estimator
       without touching anything else, so a deliberately broken
       estimator meets an unchanged oracle. *)
    let config =
      match walk_steps with
      | None -> practical
      | Some n -> { practical with Convex_obs.walk_steps = Some n }
    in
    let config =
      match phase_samples with
      | None -> config
      | Some n -> { config with Convex_obs.volume_budget = Volume.Practical n }
    in
    let fingerprint = Relation.fingerprint relation in
    let truth =
      match oracle with
      | `Exact -> (
          match exact_truth ?max_tuples relation with
          | Some q -> Ok (Exact, Rational.to_float q, Some q)
          | None ->
              Error
                "no exact closed form (relation unbounded or too many tuples); use --oracle \
                 reference")
      | `Reference -> (
          match reference_truth ~gamma ~eps ~delta ~seed:(seed + runs) relation with
          | Some v when v > 0.0 -> Ok (Reference, v, None)
          | _ -> Error "reference oracle failed (relation empty, unbounded or lower-dimensional)")
      | `Auto -> (
          match exact_truth ?max_tuples relation with
          | Some q when Rational.sign q > 0 -> Ok (Exact, Rational.to_float q, Some q)
          | Some _ -> Error "relation has zero volume; nothing to audit"
          | None -> (
              match reference_truth ~gamma ~eps ~delta ~seed:(seed + runs) relation with
              | Some v when v > 0.0 -> Ok (Reference, v, None)
              | _ ->
                  Error
                    "no oracle applies (relation empty, unbounded or lower-dimensional)"))
    in
    match truth with
    | Error e -> Error e
    | Ok (_, tv, _) when tv <= 0.0 -> Error "relation has zero volume; nothing to audit"
    | Ok (used, truth, truth_exact) ->
        (match used with
        | Exact -> Tel.Counter.incr tel_oracle_exact
        | Reference -> Tel.Counter.incr tel_oracle_reference);
        let estimate s = estimate_once ~config ~gamma ~eps ~delta relation s in
        let cov =
          Trace.span "audit.verify" ~attrs:[ ("runs", string_of_int runs) ] @@ fun () ->
          verify ~jobs ~mode ~confidence ~eps ~delta ~runs ~seed ~truth estimate
        in
        let budget = attribution_pass ~config ~gamma ~eps ~delta ~seed relation in
        Ok { fingerprint; oracle = used; truth; truth_exact; eps; delta; gamma; cov; budget }
  end

(* ---------------- rendering ---------------- *)

let to_json ~vars ~formula ~seed ~jobs ~requested a =
  let buf = Buffer.create 2048 in
  let add = Buffer.add_string buf in
  add "{\n";
  add "  \"schema\": \"spatialdb-audit/1\",\n";
  add "  \"args\": {\n";
  add
    (Printf.sprintf "    \"vars\": [%s],\n"
       (String.concat ", " (List.map (fun v -> "\"" ^ Trace.json_escape v ^ "\"") vars)));
  add (Printf.sprintf "    \"formula\": \"%s\",\n" (Trace.json_escape formula));
  add (Printf.sprintf "    \"seed\": %d,\n" seed);
  add (Printf.sprintf "    \"runs\": %d,\n" a.cov.runs);
  add (Printf.sprintf "    \"jobs\": %d,\n" jobs);
  add (Printf.sprintf "    \"oracle\": \"%s\",\n" (Trace.json_escape requested));
  add (Printf.sprintf "    \"eps\": %s,\n" (jnum a.eps));
  add (Printf.sprintf "    \"delta\": %s,\n" (jnum a.delta));
  add (Printf.sprintf "    \"gamma\": %s,\n" (jnum a.gamma));
  add (Printf.sprintf "    \"confidence\": %s\n" (jnum a.cov.confidence));
  add "  },\n";
  add (Printf.sprintf "  \"fingerprint\": \"%s\",\n" a.fingerprint);
  add (Printf.sprintf "  \"oracle\": \"%s\",\n" (oracle_name a.oracle));
  add (Printf.sprintf "  \"truth\": %s,\n" (jnum a.truth));
  add
    (Printf.sprintf "  \"truth_exact\": %s,\n"
       (match a.truth_exact with
       | Some q -> "\"" ^ Rational.to_string q ^ "\""
       | None -> "null"));
  add (Printf.sprintf "  \"target\": %s,\n" (jnum a.cov.target));
  add
    (Printf.sprintf "  \"estimates\": [%s],\n"
       (String.concat ", " (List.map jnum (Array.to_list a.cov.estimates))));
  add (Printf.sprintf "  \"hits\": %d,\n" a.cov.hits);
  add (Printf.sprintf "  \"coverage\": %s,\n" (jnum a.cov.coverage));
  add (Printf.sprintf "  \"cp_low\": %s,\n" (jnum a.cov.cp_low));
  add (Printf.sprintf "  \"cp_high\": %s,\n" (jnum a.cov.cp_high));
  add (Printf.sprintf "  \"verdict\": \"%s\",\n" (verdict_name a.cov.verdict));
  add "  \"error_budget\": ";
  add (budget_rows_json a.budget);
  add "\n}\n";
  Buffer.contents buf

let to_text a =
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  add
    (Printf.sprintf "audit: fingerprint %s, oracle %s, truth %s\n" a.fingerprint
       (oracle_name a.oracle)
       (match a.truth_exact with
       | Some q -> Printf.sprintf "%s (= %.9g)" (Rational.to_string q) a.truth
       | None -> Printf.sprintf "%.9g" a.truth));
  add
    (Printf.sprintf "audit: %d/%d replicates within eps=%g of truth (coverage %.4f)\n"
       a.cov.hits a.cov.runs a.eps a.cov.coverage);
  add
    (Printf.sprintf
       "audit: %.0f%% Clopper-Pearson interval [%.4f, %.4f], contract target %.4f\n"
       (100.0 *. a.cov.confidence) a.cov.cp_low a.cov.cp_high a.cov.target);
  add (Printf.sprintf "audit: verdict %s\n" (String.uppercase_ascii (verdict_name a.cov.verdict)));
  if Array.length a.budget > 0 then begin
    add "error budget (granted vs achieved, per plan node):\n";
    add (budget_rows_text a.budget)
  end;
  Buffer.contents buf
