(** Deterministic, splittable pseudo-random generator (xoshiro256 star-star).

    Every randomized algorithm in this repository takes an explicit
    [Rng.t]; experiments and tests construct them from fixed seeds, so
    all results are reproducible bit-for-bit. *)

type t

val create : int -> t
(** New generator from an integer seed (expanded by splitmix64). *)

val split : t -> t
(** Child generator whose stream is independent of the parent's
    subsequent outputs. *)

val copy : t -> t

(** {1 Scalar draws} *)

val float : t -> float
(** Uniform in [[0,1)]. *)

val uniform : t -> float -> float -> float
(** Uniform in [[lo, hi)]. *)

val int : t -> int -> int
(** Uniform in [[0, bound)]; [bound > 0]. *)

val bool : t -> bool
val bits64 : t -> int64

val gaussian : t -> float
(** Standard normal deviate (Marsaglia polar method). *)

(** {1 Vector draws} *)

val gaussian_vec : t -> int -> Vec.t

val unit_vector : t -> int -> Vec.t
(** Uniform on the unit sphere of the given dimension. *)

val gaussian_vec_into : t -> Vec.t -> unit
(** Fill a preallocated buffer with standard normal deviates.  Consumes
    the same stream as {!gaussian_vec} of the same dimension. *)

val unit_vector_into : t -> Vec.t -> unit
(** Overwrite a preallocated buffer with a uniform unit vector without
    allocating.  Consumes the same stream as {!unit_vector} of the same
    dimension — walk kernels use this to keep the inner loop free of
    per-step allocation. *)

val in_ball : t -> int -> Vec.t
(** Uniform in the closed unit ball. *)

val in_box : t -> Vec.t -> Vec.t -> Vec.t
(** Uniform in the axis-parallel box [[lo, hi]]. *)

(** {1 Collections} *)

val shuffle : t -> 'a array -> unit
val pick : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)

val categorical : t -> float array -> int
(** Draw an index with probability proportional to the (non-negative)
    weights. @raise Invalid_argument if all weights are zero. *)
