(** Deterministic, splittable pseudo-random generator (xoshiro256 star-star).

    Every randomized algorithm in this repository takes an explicit
    [Rng.t]; experiments and tests construct them from fixed seeds, so
    all results are reproducible bit-for-bit. *)

type t

val create : int -> t
(** New generator from an integer seed (expanded by splitmix64). *)

val split : t -> t
(** Child generator whose stream is independent of the parent's
    subsequent outputs. *)

val copy : t -> t

(** {1 Stream provenance}

    Every generator carries a stable lineage id (assigned at
    {!create}/{!split}/{!copy} from a process-global counter) and a
    draw counter bumped once per raw 64-bit output.  Together they give
    the flight recorder a cheap, replayable description of which
    streams a run consumed and how far each was advanced. *)

val lineage : t -> int
(** Lineage id of this generator (unique within the process since the
    last {!Provenance.reset}). *)

val draw_count : t -> int
(** Raw 64-bit draws made through this handle since its creation
    (copies start at 0). *)

module Provenance : sig
  type info = { id : int; parent : int; op : string; draws : int }
  (** One lineage-tree node: [parent] is [-1] for roots, [op] is
      ["create"], ["split"] or ["copy"], [draws] the handle's current
      draw count. *)

  val set_tracking : bool -> unit
  (** Enable retention of the lineage tree in the calling domain's
      ambient table (off by default: tracking holds a reference to
      every registered generator, which a long-running untracked
      workload should not pay).  Retention is bounded: past the
      table's cap (default 65536 nodes) registrations are counted in
      {!dropped} instead of retained. *)

  val tracking : unit -> bool

  val reset : unit -> unit
  (** Drop the ambient table's recorded tree and restart lineage ids
      at 0, so a replay reproduces the original ids.  (The id source
      is process-global and atomic; resetting it mid-run with other
      domains creating generators would hand out duplicate ids, so
      replays are single-context by construction.) *)

  val clear : unit -> unit
  (** Drop the ambient table's retained nodes and dropped count
      without touching the id source. *)

  val set_cap : int -> unit
  (** Cap on retained nodes in the ambient table. *)

  val dropped : unit -> int
  (** Registrations not retained because the ambient table was at
      cap. *)

  val snapshot : unit -> info list
  (** All generators registered in the ambient table since the last
      {!reset}/{!clear} while tracking was on, in creation order (ids
      ascending). *)

  (** {2 Tables (observability contexts)}

      Retained lineage lives in a {e table}; contexts own one each and
      the pre-context global registry survives as the default table
      every domain starts with.  Ids come from one process-global
      atomic source, so tables merge without collisions. *)

  module Table : sig
    type t

    val create : ?cap:int -> unit -> t
    (** Fresh table (tracking off) retaining at most [cap] nodes
        (default 65536). *)

    val size : t -> int
    (** Retained nodes — bounded by the cap whatever the workload. *)

    val dropped : t -> int

    val merge_into : dst:t -> t -> unit
    (** Append [src]'s retained nodes in creation order into [dst],
        bounded by [dst]'s cap ([dst.dropped] also absorbs [src]'s
        dropped count).  Nodes whose parent is in neither table are
        re-rooted to [-1], so the merged lineage is still a forest.
        [src] is unchanged. *)
  end

  val with_table : Table.t -> (unit -> 'a) -> 'a
  (** Install a table as the calling domain's ambient lineage store
      for the duration of the thunk (exception-safe; nests).  Same
      domain/thread caveats as [Telemetry.with_registry]. *)

  val current_table : unit -> Table.t
end

(** {1 Scalar draws} *)

val float : t -> float
(** Uniform in [[0,1)]. *)

val uniform : t -> float -> float -> float
(** Uniform in [[lo, hi)]. *)

val int : t -> int -> int
(** Uniform in [[0, bound)]; [bound > 0]. *)

val bool : t -> bool
val bits64 : t -> int64

val gaussian : t -> float
(** Standard normal deviate (Marsaglia polar method). *)

val gaussian_fast : t -> float
(** Standard normal deviate by the 128-layer ziggurat: ~97.5% of draws
    cost one raw 64-bit output, one table compare and one multiply.
    Deterministic given the seed, but consumes the stream differently
    from {!gaussian} — the batched walk kernels use it for K>1 chain
    directions, while single-chain (replay-compatible) paths keep
    {!gaussian}. *)

(** {1 Vector draws} *)

val gaussian_vec : t -> int -> Vec.t

val unit_vector : t -> int -> Vec.t
(** Uniform on the unit sphere of the given dimension. *)

val gaussian_vec_into : t -> Vec.t -> unit
(** Fill a preallocated buffer with standard normal deviates.  Consumes
    the same stream as {!gaussian_vec} of the same dimension. *)

val unit_vector_into : t -> Vec.t -> unit
(** Overwrite a preallocated buffer with a uniform unit vector without
    allocating.  Consumes the same stream as {!unit_vector} of the same
    dimension — walk kernels use this to keep the inner loop free of
    per-step allocation. *)

val unit_vector_into_fast : t -> Vec.t -> unit
(** Like {!unit_vector_into} but built on {!gaussian_fast}: same
    distribution, different (still deterministic) stream use.  The
    batched kernels' K>1 throughput path. *)

val unit_vector_slice : t -> float array -> int -> int -> unit
(** [unit_vector_slice t buf off len]: {!unit_vector_into} targeting
    [buf.(off) .. buf.(off + len - 1)] — bit-identical draws, letting
    the batched kernels stage each chain's direction straight into its
    chain-major block slot without a staging vector or blit. *)

val unit_vector_slice_fast : t -> float array -> int -> int -> unit
(** Slice form of {!unit_vector_into_fast}. *)

val in_ball : t -> int -> Vec.t
(** Uniform in the closed unit ball. *)

val in_ball_into : t -> Vec.t -> unit
(** Allocation-free {!in_ball}; same stream and bit-identical values. *)

val in_ball_into_fast : t -> Vec.t -> unit
(** Allocation-free uniform ball point on the {!gaussian_fast} stream. *)

val in_ball_slice : t -> float array -> int -> int -> unit
(** Slice form of {!in_ball_into}: fill
    [buf.(off) .. buf.(off + len - 1)] with a uniform point of the
    [len]-dimensional unit ball, bit-identical to {!in_ball_into}. *)

val in_ball_slice_fast : t -> float array -> int -> int -> unit
(** Slice form of {!in_ball_into_fast}. *)

val in_box : t -> Vec.t -> Vec.t -> Vec.t
(** Uniform in the axis-parallel box [[lo, hi]]. *)

(** {1 Collections} *)

val shuffle : t -> 'a array -> unit
val pick : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)

val categorical : t -> float array -> int
(** Draw an index with probability proportional to the (non-negative)
    weights.  The returned index always has positive weight, even when
    rounding pushes the scaled draw to the total weight.
    @raise Invalid_argument if all weights are zero. *)
