(* xoshiro256** 1.0 (Blackman & Vigna), seeded through splitmix64.

   The 4×64-bit state lives in a 32-byte [Bytes.t] rather than mutable
   [int64] record fields: stores into int64 fields re-box on every
   write (4–6 heap allocations per [bits64] call without flambda),
   while the bytes load/store primitives below work on unboxed values,
   so the generator core allocates only its boxed return.  The output
   stream is bit-identical to the record-based representation.

   Stream provenance for the flight recorder rides alongside the state:
   every generator carries a stable lineage id (assigned at
   [create]/[split]/[copy]) and a per-handle draw counter bumped once
   per raw [bits64] output.  The counter is a plain mutable [int]
   field — one unboxed store per draw, no allocation — so the stream
   position of any generator can be captured and compared during
   replay. *)

type t = { state : Bytes.t; id : int; mutable draws : int }

external get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_splitmix state =
  let t = Bytes.create 32 in
  set64 t 0 (splitmix64 state);
  set64 t 8 (splitmix64 state);
  set64 t 16 (splitmix64 state);
  set64 t 24 (splitmix64 state);
  t

(* Lineage registry.  Ids are always assigned (an [incr] per generator
   creation); the tree itself — parent links plus the handle, so final
   draw counts can be read at snapshot time — is only retained while
   tracking is on, keeping long-running untracked workloads free of the
   strong references. *)
let prov_next = ref 0
let prov_tracking = ref false

type prov_node = { n_parent : int; n_op : string; n_gen : t }

let prov_nodes : (int * prov_node) list ref = ref []

let register ~parent ~op state =
  let id = !prov_next in
  incr prov_next;
  let g = { state; id; draws = 0 } in
  if !prov_tracking then
    prov_nodes := (id, { n_parent = parent; n_op = op; n_gen = g }) :: !prov_nodes;
  g

let create seed = register ~parent:(-1) ~op:"create" (of_splitmix (ref (Int64.of_int seed)))

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  t.draws <- t.draws + 1;
  let t = t.state in
  let open Int64 in
  let s0 = get64 t 0 and s1 = get64 t 8 and s2 = get64 t 16 and s3 = get64 t 24 in
  let result = mul (rotl (mul s1 5L) 7) 9L in
  let tmp = shift_left s1 17 in
  let s2 = logxor s2 s0 in
  let s3 = logxor s3 s1 in
  let s1 = logxor s1 s2 in
  let s0 = logxor s0 s3 in
  let s2 = logxor s2 tmp in
  let s3 = rotl s3 45 in
  set64 t 0 s0;
  set64 t 8 s1;
  set64 t 16 s2;
  set64 t 24 s3;
  result

let split t =
  (* Derive a child state by hashing fresh output through splitmix64. *)
  register ~parent:t.id ~op:"split" (of_splitmix (ref (bits64 t)))

let copy t = register ~parent:t.id ~op:"copy" (Bytes.copy t.state)
let lineage t = t.id
let draw_count t = t.draws

module Provenance = struct
  type info = { id : int; parent : int; op : string; draws : int }

  let set_tracking b = prov_tracking := b
  let tracking () = !prov_tracking

  let reset () =
    prov_next := 0;
    prov_nodes := []

  let snapshot () =
    List.rev_map
      (fun (id, n) -> { id; parent = n.n_parent; op = n.n_op; draws = n.n_gen.draws })
      !prov_nodes
end

let float t =
  (* Top 53 bits scaled to [0,1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1p-53

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Rejection to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec go () =
    let x = Int64.to_int (Int64.logand (bits64 t) mask) in
    let r = x mod bound in
    if x - r > max_int - bound + 1 then go () else r
  in
  go ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  (* Marsaglia polar method; discard the second deviate to keep the
     generator stateless beyond its stream position. *)
  let rec go () =
    let u = uniform t (-1.0) 1.0 and v = uniform t (-1.0) 1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || s = 0.0 then go () else u *. sqrt (-2.0 *. log s /. s)
  in
  go ()

let gaussian_vec t d = Vec.init d (fun _ -> gaussian t)

(* In-place variants for preallocated buffers: same draw order as the
   allocating versions, so a given seed yields the same stream either
   way — the incremental walk kernels rely on that. *)

let gaussian_vec_into t v =
  for i = 0 to Array.length v - 1 do
    v.(i) <- gaussian t
  done

let unit_vector_into t v =
  let d = Array.length v in
  let rec go () =
    gaussian_vec_into t v;
    let n2 = ref 0.0 in
    for i = 0 to d - 1 do
      n2 := !n2 +. (v.(i) *. v.(i))
    done;
    let n = sqrt !n2 in
    if n < 1e-12 then go ()
    else begin
      let inv = 1.0 /. n in
      for i = 0 to d - 1 do
        v.(i) <- v.(i) *. inv
      done
    end
  in
  go ()

let unit_vector t d =
  let v = Vec.create d in
  unit_vector_into t v;
  v

let in_ball t d =
  let dir = unit_vector t d in
  let r = float t ** (1.0 /. float_of_int d) in
  Vec.scale r dir

let in_box t lo hi = Vec.init (Vec.dim lo) (fun i -> uniform t lo.(i) hi.(i))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let categorical t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.categorical: zero total weight";
  let x = float t *. total in
  let acc = ref 0.0 and chosen = ref (Array.length weights - 1) in
  (try
     Array.iteri
       (fun i w ->
         acc := !acc +. w;
         if x < !acc then begin
           chosen := i;
           raise Exit
         end)
       weights
   with Exit -> ());
  !chosen
