(* xoshiro256** 1.0 (Blackman & Vigna), seeded through splitmix64.

   The 4×64-bit state lives in a 32-byte [Bytes.t] rather than mutable
   [int64] record fields: stores into int64 fields re-box on every
   write (4–6 heap allocations per [bits64] call without flambda),
   while the bytes load/store primitives below work on unboxed values,
   so the generator core allocates only its boxed return.  The output
   stream is bit-identical to the record-based representation.

   Stream provenance for the flight recorder rides alongside the state:
   every generator carries a stable lineage id (assigned at
   [create]/[split]/[copy]) and a per-handle draw counter bumped once
   per raw [bits64] output.  The counter is a plain mutable [int]
   field — one unboxed store per draw, no allocation — so the stream
   position of any generator can be captured and compared during
   replay. *)

type t = { state : Bytes.t; id : int; mutable draws : int }

external get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_splitmix state =
  let t = Bytes.create 32 in
  set64 t 0 (splitmix64 state);
  set64 t 8 (splitmix64 state);
  set64 t 16 (splitmix64 state);
  set64 t 24 (splitmix64 state);
  t

(* Lineage registry.  Ids are always assigned (one atomic fetch-add
   per generator creation — atomic so ids stay globally unique when
   concurrent domains create generators into their own contexts, which
   makes provenance-table merges collision-free); the tree itself —
   parent links plus the handle, so final draw counts can be read at
   snapshot time — is only retained while tracking is on, keeping
   long-running untracked workloads free of the strong references.

   Retained nodes live in a per-context *table*: a Hashtbl keyed by id
   (O(1) insert/lookup, replacing the old unbounded O(n) assoc list)
   plus the creation-order id list snapshots iterate, capped at
   [p_cap] retained nodes — registrations past the cap are counted in
   [p_dropped] instead of retained, so a run that splits millions of
   generators stays bounded.  Each domain resolves its ambient table
   through domain-local state; the pre-context global registry
   survives as the default table. *)
let prov_next = Atomic.make 0

type prov_node = { n_parent : int; n_op : string; n_gen : t }

type prov_table = {
  p_tbl : (int, prov_node) Hashtbl.t;
  mutable p_ids : int list; (* retained ids, newest first *)
  mutable p_cap : int;
  mutable p_dropped : int;
  mutable p_tracking : bool;
}

let default_prov_cap = 65_536

let make_prov_table ?(cap = default_prov_cap) () =
  { p_tbl = Hashtbl.create 64; p_ids = []; p_cap = Stdlib.max 0 cap; p_dropped = 0; p_tracking = false }

let default_prov = make_prov_table ()
let dls_prov : prov_table Domain.DLS.key = Domain.DLS.new_key (fun () -> default_prov)

let register ~parent ~op state =
  let id = Atomic.fetch_and_add prov_next 1 in
  let g = { state; id; draws = 0 } in
  let p = Domain.DLS.get dls_prov in
  if p.p_tracking then begin
    if Hashtbl.length p.p_tbl >= p.p_cap then p.p_dropped <- p.p_dropped + 1
    else begin
      Hashtbl.replace p.p_tbl id { n_parent = parent; n_op = op; n_gen = g };
      p.p_ids <- id :: p.p_ids
    end
  end;
  g

let create seed = register ~parent:(-1) ~op:"create" (of_splitmix (ref (Int64.of_int seed)))

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* [@inline always]: inlined callers keep the xoshiro state words in
   registers and skip the boxed [int64] return — the difference between
   an allocation per draw and none on the sampler hot paths. *)
let[@inline always] bits64 t =
  t.draws <- t.draws + 1;
  let t = t.state in
  let open Int64 in
  let s0 = get64 t 0 and s1 = get64 t 8 and s2 = get64 t 16 and s3 = get64 t 24 in
  let result = mul (rotl (mul s1 5L) 7) 9L in
  let tmp = shift_left s1 17 in
  let s2 = logxor s2 s0 in
  let s3 = logxor s3 s1 in
  let s1 = logxor s1 s2 in
  let s0 = logxor s0 s3 in
  let s2 = logxor s2 tmp in
  let s3 = rotl s3 45 in
  set64 t 0 s0;
  set64 t 8 s1;
  set64 t 16 s2;
  set64 t 24 s3;
  result

let split t =
  (* Derive a child state by hashing fresh output through splitmix64. *)
  register ~parent:t.id ~op:"split" (of_splitmix (ref (bits64 t)))

let copy t = register ~parent:t.id ~op:"copy" (Bytes.copy t.state)
let lineage t = t.id
let draw_count t = t.draws

module Provenance = struct
  type info = { id : int; parent : int; op : string; draws : int }

  let cur () = Domain.DLS.get dls_prov
  let set_tracking b = (cur ()).p_tracking <- b
  let tracking () = (cur ()).p_tracking

  let clear_table p =
    Hashtbl.reset p.p_tbl;
    p.p_ids <- [];
    p.p_dropped <- 0

  let clear () = clear_table (cur ())

  let reset () =
    Atomic.set prov_next 0;
    clear ()

  let set_cap n = (cur ()).p_cap <- Stdlib.max 0 n
  let dropped () = (cur ()).p_dropped

  let snapshot_table p =
    List.rev_map
      (fun id ->
        let n = Hashtbl.find p.p_tbl id in
        { id; parent = n.n_parent; op = n.n_op; draws = n.n_gen.draws })
      p.p_ids

  let snapshot () = snapshot_table (cur ())

  module Table = struct
    type t = prov_table

    let create ?cap () = make_prov_table ?cap ()
    let size p = Hashtbl.length p.p_tbl
    let dropped p = p.p_dropped

    (* Merge: append [src]'s retained nodes (creation order) into
       [dst], bounded by [dst]'s cap.  Ids are globally unique (the
       atomic id source), so no collisions; nodes whose parent is in
       neither table after the merge are re-rooted to -1 so the merged
       lineage is still a forest. *)
    let merge_into ~dst src =
      if dst != src then begin
        let present id = Hashtbl.mem dst.p_tbl id || Hashtbl.mem src.p_tbl id in
        List.iter
          (fun id ->
            let n = Hashtbl.find src.p_tbl id in
            if Hashtbl.length dst.p_tbl >= dst.p_cap then dst.p_dropped <- dst.p_dropped + 1
            else begin
              let n =
                if n.n_parent >= 0 && not (present n.n_parent) then { n with n_parent = -1 }
                else n
              in
              Hashtbl.replace dst.p_tbl id n;
              dst.p_ids <- id :: dst.p_ids
            end)
          (List.rev src.p_ids);
        dst.p_dropped <- dst.p_dropped + src.p_dropped
      end
  end

  let with_table (p : Table.t) f =
    let prev = Domain.DLS.get dls_prov in
    Domain.DLS.set dls_prov p;
    Fun.protect ~finally:(fun () -> Domain.DLS.set dls_prov prev) f

  let current_table () = cur ()
end

let[@inline always] float t =
  (* Top 53 bits scaled to [0,1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1p-53

let[@inline always] uniform t lo hi = lo +. ((hi -. lo) *. float t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Rejection to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec go () =
    let x = Int64.to_int (Int64.logand (bits64 t) mask) in
    let r = x mod bound in
    if x - r > max_int - bound + 1 then go () else r
  in
  go ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  (* Marsaglia polar method; discard the second deviate to keep the
     generator stateless beyond its stream position. *)
  let rec go () =
    let u = uniform t (-1.0) 1.0 and v = uniform t (-1.0) 1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || s = 0.0 then go () else u *. sqrt (-2.0 *. log s /. s)
  in
  go ()

(* Ziggurat gaussian (Doornik's ZIGNOR layout, 128 layers): the
   throughput generator behind the batched walk kernels' direction
   draws.  One raw [bits64] output covers layer index, sign and
   mantissa, and ~97.5% of draws resolve with a single table compare
   and one multiply — roughly an order of magnitude cheaper than the
   polar method's log/sqrt per deviate.  The stream use differs from
   [gaussian] (different draws per deviate), so it is a distinct,
   deterministic stream: replayable, but not interchangeable with the
   polar stream.  The single-chain kernels keep the polar method for
   bit-compatibility with existing flight records. *)

let zig_layers = 128
let zig_r = 3.442619855899
let zig_v = 9.91256303526217e-3

(* zig_x.(i) is the right edge of layer i (zig_x.(0) is the stretched
   base-layer edge accounting for the tail area); zig_ratio.(i) =
   zig_x.(i+1) / zig_x.(i) is the rectangular-acceptance threshold. *)
let zig_x = Array.make (zig_layers + 1) 0.0
let zig_ratio = Array.make zig_layers 0.0

let () =
  let f = ref (exp (-0.5 *. zig_r *. zig_r)) in
  zig_x.(0) <- zig_v /. !f;
  zig_x.(1) <- zig_r;
  zig_x.(zig_layers) <- 0.0;
  for i = 2 to zig_layers - 1 do
    zig_x.(i) <- sqrt (-2.0 *. log ((zig_v /. zig_x.(i - 1)) +. !f));
    f := exp (-0.5 *. zig_x.(i) *. zig_x.(i))
  done;
  for i = 0 to zig_layers - 1 do
    zig_ratio.(i) <- zig_x.(i + 1) /. zig_x.(i)
  done

(* New-Fang tail (Marsaglia 1964): exact conditional sampling of
   |x| > r by rejection on two exponentials. *)
let rec zig_tail t neg =
  let u1 = float t and u2 = float t in
  if u1 <= 0.0 || u2 <= 0.0 then zig_tail t neg
  else begin
    let x = log u1 /. zig_r in
    let y = log u2 in
    if -2.0 *. y < x *. x then zig_tail t neg
    else if neg then x -. zig_r
    else zig_r -. x
  end

(* Loop rather than recursion, and [@inline always]: the accept path
   (~98.9% of draws) then compiles into the caller with no call, no
   boxed return, and the layer draw's int64 in registers.  Same draw
   order and arithmetic as the recursive form, so streams are
   unchanged. *)
let[@inline always] gaussian_fast t =
  let res = ref 0.0 in
  let looping = ref true in
  while !looping do
    let bits = bits64 t in
    (* Low 7 bits pick the layer; the top 53 bits make the uniform in
       [-1, 1).  The bit sets are disjoint, and xoshiro256** scrambles
       low bits as well as high ones. *)
    let i = Int64.to_int (Int64.logand bits 127L) in
    let u = (Int64.to_float (Int64.shift_right_logical bits 11) *. 0x1p-52) -. 1.0 in
    let xi = Array.unsafe_get zig_x i in
    if Float.abs u < Array.unsafe_get zig_ratio i then begin
      res := u *. xi;
      looping := false
    end
    else if i = 0 then begin
      res := zig_tail t (u < 0.0);
      looping := false
    end
    else begin
      (* Wedge: accept x = u·x_i with probability proportional to the
         density excess over the next layer. *)
      let x = u *. xi in
      let xi1 = Array.unsafe_get zig_x (i + 1) in
      let f0 = exp (-0.5 *. ((xi *. xi) -. (x *. x))) in
      let f1 = exp (-0.5 *. ((xi1 *. xi1) -. (x *. x))) in
      if f1 +. (float t *. (f0 -. f1)) < 1.0 then begin
        res := x;
        looping := false
      end
    end
  done;
  !res

let gaussian_vec t d = Vec.init d (fun _ -> gaussian t)

(* In-place variants for preallocated buffers: same draw order as the
   allocating versions, so a given seed yields the same stream either
   way — the incremental walk kernels rely on that. *)

let gaussian_vec_into t v =
  for i = 0 to Array.length v - 1 do
    Array.unsafe_set v i (gaussian t)
  done

(* Both fills open-code the draw/normalize/retry cycle (same arithmetic
   order as the original allocating implementation, so results are
   bit-identical) instead of sharing it through a [fill] callback: the
   callback closure captured [t] and [v] and so allocated on every
   direction draw — the samplers' hottest call.  The slice forms write
   [buf.(off) .. buf.(off + len - 1)] so the batched kernel can stage
   each chain's direction straight into its chain-major block slot. *)
let unit_vector_slice t buf off len =
  let again = ref true in
  while !again do
    (* Single pass: store the deviate and accumulate the squared norm
       together (index-order sum — bit-identical to a separate pass). *)
    let n2 = ref 0.0 in
    for i = off to off + len - 1 do
      let g = gaussian t in
      Array.unsafe_set buf i g;
      n2 := !n2 +. (g *. g)
    done;
    let n = sqrt !n2 in
    if n >= 1e-12 then begin
      let inv = 1.0 /. n in
      for i = off to off + len - 1 do
        Array.unsafe_set buf i (Array.unsafe_get buf i *. inv)
      done;
      again := false
    end
  done

let unit_vector_slice_fast t buf off len =
  let again = ref true in
  while !again do
    let n2 = ref 0.0 in
    for i = off to off + len - 1 do
      let g = gaussian_fast t in
      Array.unsafe_set buf i g;
      n2 := !n2 +. (g *. g)
    done;
    let n = sqrt !n2 in
    if n >= 1e-12 then begin
      let inv = 1.0 /. n in
      for i = off to off + len - 1 do
        Array.unsafe_set buf i (Array.unsafe_get buf i *. inv)
      done;
      again := false
    end
  done

let[@inline] unit_vector_into t v = unit_vector_slice t v 0 (Array.length v)

let[@inline] unit_vector_into_fast t v =
  unit_vector_slice_fast t v 0 (Array.length v)

let unit_vector t d =
  let v = Vec.create d in
  unit_vector_into t v;
  v

let[@inline] ball_radius t d = float t ** (1.0 /. float_of_int d)

let in_ball_into t v =
  unit_vector_into t v;
  let r = ball_radius t (Array.length v) in
  for i = 0 to Array.length v - 1 do
    Array.unsafe_set v i (Array.unsafe_get v i *. r)
  done

let in_ball_into_fast t v =
  unit_vector_into_fast t v;
  let r = ball_radius t (Array.length v) in
  for i = 0 to Array.length v - 1 do
    Array.unsafe_set v i (Array.unsafe_get v i *. r)
  done

let in_ball_slice t buf off len =
  unit_vector_slice t buf off len;
  let r = ball_radius t len in
  for i = off to off + len - 1 do
    Array.unsafe_set buf i (Array.unsafe_get buf i *. r)
  done

let in_ball_slice_fast t buf off len =
  unit_vector_slice_fast t buf off len;
  let r = ball_radius t len in
  for i = off to off + len - 1 do
    Array.unsafe_set buf i (Array.unsafe_get buf i *. r)
  done

let in_ball t d =
  let dir = unit_vector t d in
  let r = ball_radius t d in
  Vec.scale r dir

let in_box t lo hi = Vec.init (Vec.dim lo) (fun i -> uniform t lo.(i) hi.(i))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let categorical t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.categorical: zero total weight";
  let x = float t *. total in
  (* Fallback for when the scan below runs off the end without firing:
     [x < acc] can stay false through the last element (e.g. [x] rounds
     up to [total] on subnormal totals), and the old last-index default
     could then select an index whose weight is 0.  Default to the last
     *positive-weight* index instead — always well-defined since
     [total > 0]. *)
  let fallback = ref 0 in
  Array.iteri (fun i w -> if w > 0.0 then fallback := i) weights;
  let acc = ref 0.0 and chosen = ref !fallback in
  (try
     Array.iteri
       (fun i w ->
         acc := !acc +. w;
         if x < !acc then begin
           chosen := i;
           raise Exit
         end)
       weights
   with Exit -> ());
  !chosen
