(** Lightweight runtime metrics for the probabilistic kernels.

    The paper's guarantees are statistical, so a running system must be
    able to see acceptance rates, trial budgets and walk lengths to know
    whether its (γ,ε,δ) contracts are being honoured.  Metric
    {e definitions} (names) are process-global and created once at
    module initialization; the {e counts} live in a {!Registry.t}, of
    which there can be many — one per observability context — with the
    pre-context global registry surviving as {!Registry.default}.
    Recording is designed for hot paths:

    - {b disabled by default}: every record operation is one mutable
      load and a conditional branch, no allocation, no syscall;
    - {b allocation-free when enabled}: counters and histograms mutate
      preallocated cells; metrics are created once at module
      initialization, never per event;
    - {b context-transparent}: a bump lands in whichever registry the
      calling domain currently has installed ({!with_registry}), at no
      measurable cost over the old global path while at most the
      initial domain has a registry installed (the [ctx_overhead] gate
      in [bench/regress.ml] enforces ≤1.10x).  While registries are
      installed on other domains, bumps resolve through domain-local
      state so concurrent contexts never race or mis-attribute;
    - {b deterministic dumps}: {!dump} renders a registry as JSON with
      metrics sorted by name.

    Thread-safety contract: a registry is single-writer — at most one
    domain has it installed at a time (install/exit themselves are
    mutex-protected and may happen from any domain).  Cross-context
    aggregation goes through {!Registry.merge_into}, not shared cells.

    Metric names are dot-separated paths ([hit_and_run.steps],
    [union.volume.trials]); {!Scope} is a convenience for building
    families under a common prefix.  Creating a metric with a name that
    already exists returns the existing instance, so a functor body or
    a re-executed module initializer never double-registers. *)

module Clock : sig
  val now : unit -> float
  (** Monotonic seconds ([CLOCK_MONOTONIC]): the origin is arbitrary,
      but differences are real elapsed time, immune to wall-clock steps
      and NTP skew.  Never allocates. *)
end

val enabled : unit -> bool
(** Global switch; initially [false] unless the [SPATIALDB_STATS]
    environment variable is set to a non-empty, non-["0"] value. *)

val set_enabled : bool -> unit

module Registry : sig
  type t
  (** A cell store: one count/histogram cell per registered metric.
      Registries are cheap (two arrays); contexts own one each. *)

  val default : t
  (** The process-global registry every bump lands in until a context
      installs its own — the pre-context behaviour, unchanged. *)

  val create : unit -> t
  (** Fresh registry with zeroed cells for every metric registered so
      far (cells for later-registered metrics appear on first use). *)

  val merge_into : dst:t -> t -> unit
  (** [merge_into ~dst src] adds [src]'s counts into [dst] and leaves
      [src] unchanged.  Counters add.  Histograms add [count], [sum]
      and per-bucket counts and extend [min]/[max], so the merged
      histogram is {e exactly} the histogram of the concatenated
      observations — quantiles included — except that [sum] may differ
      in the last few ulps by float association.  Merging a registry
      into itself is a no-op. *)
end

val with_registry : Registry.t -> (unit -> 'a) -> 'a
(** [with_registry r f] runs [f] with [r] installed as the calling
    domain's ambient registry: every bump made by this domain (and by
    threads sharing the domain) lands in [r].  Exception-safe; nests.
    Installing from a spawned domain routes that domain's bumps through
    domain-local resolution without disturbing other domains.  Do not
    call from a worker thread that merely shares a domain with other
    ambient-registry users — threads share their domain's ambient
    state.  Readers that must not disturb ambient state (status
    tickers) use the explicit [?reg] accessors instead. *)

val current_registry : unit -> Registry.t
(** The calling domain's ambient registry ({!Registry.default} unless
    inside {!with_registry}). *)

val reset : ?reg:Registry.t -> unit -> unit
(** Zero every metric cell of the given registry (default: the ambient
    one).  Definitions are kept. *)

module Counter : sig
  type t

  val make : string -> t
  (** Register (or look up) a monotonic counter. *)

  val incr : t -> unit
  val add : t -> int -> unit

  val value : t -> int
  (** Current count in the calling domain's ambient registry. *)
end

module Histogram : sig
  type t

  val make : string -> t
  (** Register (or look up) a histogram with fixed log-spaced bucket
      bounds [10^(k/2)] for [k = -18 … 18] (two buckets per decade from
      1e-9 to 1e9) plus an overflow bucket. *)

  val observe : t -> float -> unit

  val count : t -> int
  (** Observation count in the calling domain's ambient registry (the
      other readers below read the ambient registry likewise). *)

  val sum : t -> float

  val mean : t -> float
  (** [sum/count], or [0.] before the first observation. *)

  val quantile : t -> float -> float
  (** [quantile h q] for [q] in [[0,1]]: approximate order statistic by
      linear interpolation inside the log-spaced bucket containing the
      rank, clamped to the observed [[min, max]].

      {b Error bound.}  Bucket upper bounds grow by a factor of
      [√10 ≈ 3.162] per bucket, so the reported quantile and the true
      order statistic always fall inside one bucket of each other:
      the result is within a multiplicative factor of [√10] of the true
      quantile in the worst case (linear interpolation typically does
      much better), and {e exact} when all observations share a bucket
      (min/max clamping pins the single-bucket and extreme-rank cases).
      [count] and [sum] are exact — only the quantiles carry the bucket
      error, which is why the Prometheus export pairs every quantile
      family with exact [_count]/[_sum] samples.  [0.] before the first
      observation. *)
end

module Timer : sig
  type t

  val make : string -> t
  (** An elapsed-time timer on the monotonic clock ({!Clock.now});
      durations land in a histogram named [<name>.seconds]. *)

  val start : t -> float
  (** Current monotonic clock, or [0.] when telemetry is disabled (no
      clock read on the disabled path). *)

  val stop : t -> float -> unit
  (** [stop t t0] records the elapsed time since [start]'s return. *)

  val time : t -> (unit -> 'a) -> 'a
end

module Scope : sig
  type t

  val make : string -> t
  val counter : t -> string -> Counter.t
  val histogram : t -> string -> Histogram.t
  val timer : t -> string -> Timer.t
end

val dump : ?only_nonzero:bool -> ?reg:Registry.t -> unit -> string
(** JSON snapshot of a registry (schema [spatialdb-telemetry/2];
    default: the ambient registry):
    [{"schema": …, "enabled": …, "counters": {name: value, …},
      "histograms": {name: {"count": …, "sum": …, "min": …, "max": …,
      "mean": …, "p50": …, "p90": …, "p99": …,
      "buckets": [[le, n], …]}, …}}].
    [count] and [sum] are exact; [p50]/[p90]/[p99] are interpolated and
    carry the [√10] log-bucket error bound documented at
    {!Histogram.quantile}.  [buckets] entries are per-bucket (not
    cumulative) counts with [le] the bucket's inclusive upper bound
    (["inf"] for the overflow bucket); zero-count buckets are omitted,
    and [only_nonzero] (default [true]) also omits never-touched
    metrics.  Timers appear under [histograms] as [<name>.seconds]. *)

val to_prometheus : ?only_nonzero:bool -> ?reg:Registry.t -> unit -> string
(** Render a registry (default: ambient) in the Prometheus text
    exposition format (version 0.0.4).  Metric names are prefixed
    [spatialdb_] with dots mapped to underscores.  Counters become
    [counter] families with the conventional [_total] suffix;
    histograms and timers become [summary] families with
    [quantile="0.5"/"0.9"/"0.99"] samples plus exact [_sum] and
    [_count], and [_min]/[_max] gauge families carrying the exact
    observed extrema (0 on empty cells, as in {!dump}).  All values
    are finite (non-finite sums are clamped like {!dump}).
    [only_nonzero] as in {!dump}. *)

val counter_value : ?reg:Registry.t -> string -> int option
(** Registry lookup by name (default: ambient), for tests, report
    generators and the status view.  [Some 0] for a registered metric
    the given registry has never touched; [None] for an unknown name. *)

val histogram_count : ?reg:Registry.t -> string -> int option
