(** Lightweight runtime metrics for the probabilistic kernels.

    The paper's guarantees are statistical, so a running system must be
    able to see acceptance rates, trial budgets and walk lengths to know
    whether its (γ,ε,δ) contracts are being honoured.  This module is a
    process-global registry of named metrics designed for hot paths:

    - {b disabled by default}: every record operation is one mutable
      load and a conditional branch, no allocation, no syscall;
    - {b allocation-free when enabled}: counters and histograms mutate
      preallocated cells; metrics are created once at module
      initialization, never per event;
    - {b deterministic dumps}: {!dump} renders the registry as JSON
      with metrics sorted by name.

    Metric names are dot-separated paths ([hit_and_run.steps],
    [union.volume.trials]); {!Scope} is a convenience for building
    families under a common prefix.  Creating a metric with a name that
    already exists returns the existing instance, so a functor body or
    a re-executed module initializer never double-registers. *)

module Clock : sig
  val now : unit -> float
  (** Monotonic seconds ([CLOCK_MONOTONIC]): the origin is arbitrary,
      but differences are real elapsed time, immune to wall-clock steps
      and NTP skew.  Never allocates. *)
end

val enabled : unit -> bool
(** Global switch; initially [false] unless the [SPATIALDB_STATS]
    environment variable is set to a non-empty, non-["0"] value. *)

val set_enabled : bool -> unit

val reset : unit -> unit
(** Zero every registered metric (the registry itself is kept). *)

module Counter : sig
  type t

  val make : string -> t
  (** Register (or look up) a monotonic counter. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Histogram : sig
  type t

  val make : string -> t
  (** Register (or look up) a histogram with fixed log-spaced bucket
      bounds [10^(k/2)] for [k = -18 … 18] (two buckets per decade from
      1e-9 to 1e9) plus an overflow bucket. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val mean : t -> float
  (** [sum/count], or [0.] before the first observation. *)

  val quantile : t -> float -> float
  (** [quantile h q] for [q] in [[0,1]]: approximate order statistic by
      linear interpolation inside the log-spaced bucket containing the
      rank, clamped to the observed [[min, max]].

      {b Error bound.}  Bucket upper bounds grow by a factor of
      [√10 ≈ 3.162] per bucket, so the reported quantile and the true
      order statistic always fall inside one bucket of each other:
      the result is within a multiplicative factor of [√10] of the true
      quantile in the worst case (linear interpolation typically does
      much better), and {e exact} when all observations share a bucket
      (min/max clamping pins the single-bucket and extreme-rank cases).
      [count] and [sum] are exact — only the quantiles carry the bucket
      error, which is why the Prometheus export pairs every quantile
      family with exact [_count]/[_sum] samples.  [0.] before the first
      observation. *)
end

module Timer : sig
  type t

  val make : string -> t
  (** An elapsed-time timer on the monotonic clock ({!Clock.now});
      durations land in a histogram named [<name>.seconds]. *)

  val start : t -> float
  (** Current monotonic clock, or [0.] when telemetry is disabled (no
      clock read on the disabled path). *)

  val stop : t -> float -> unit
  (** [stop t t0] records the elapsed time since [start]'s return. *)

  val time : t -> (unit -> 'a) -> 'a
end

module Scope : sig
  type t

  val make : string -> t
  val counter : t -> string -> Counter.t
  val histogram : t -> string -> Histogram.t
  val timer : t -> string -> Timer.t
end

val dump : ?only_nonzero:bool -> unit -> string
(** JSON snapshot of the registry (schema [spatialdb-telemetry/2]):
    [{"schema": …, "enabled": …, "counters": {name: value, …},
      "histograms": {name: {"count": …, "sum": …, "min": …, "max": …,
      "mean": …, "p50": …, "p90": …, "p99": …,
      "buckets": [[le, n], …]}, …}}].
    [count] and [sum] are exact; [p50]/[p90]/[p99] are interpolated and
    carry the [√10] log-bucket error bound documented at
    {!Histogram.quantile}.  [buckets] entries are per-bucket (not
    cumulative) counts with [le] the bucket's inclusive upper bound
    (["inf"] for the overflow bucket); zero-count buckets are omitted,
    and [only_nonzero] (default [true]) also omits never-touched
    metrics.  Timers appear under [histograms] as [<name>.seconds]. *)

val to_prometheus : ?only_nonzero:bool -> unit -> string
(** Render the registry in the Prometheus text exposition format
    (version 0.0.4).  Metric names are prefixed [spatialdb_] with dots
    mapped to underscores.  Counters become [counter] families with the
    conventional [_total] suffix; histograms and timers become
    [summary] families with [quantile="0.5"/"0.9"/"0.99"] samples plus
    exact [_sum] and [_count].  All values are finite (non-finite sums
    are clamped like {!dump}).  [only_nonzero] as in {!dump}. *)

val counter_value : string -> int option
(** Registry lookup by name, for tests and report generators. *)

val histogram_count : string -> int option
