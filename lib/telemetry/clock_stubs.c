/* Monotonic clock for telemetry timers and trace spans.

   CLOCK_MONOTONIC is immune to wall-clock steps (NTP slew/settimeofday),
   which would otherwise corrupt duration histograms.  The native stub is
   [@@noalloc] and returns an unboxed double, so the enabled timing path
   costs one vDSO call and no OCaml allocation. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

double scdb_clock_monotonic(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}

value scdb_clock_monotonic_byte(value unit)
{
  return caml_copy_double(scdb_clock_monotonic(unit));
}
