module Clock = struct
  (* CLOCK_MONOTONIC seconds: immune to wall-clock steps and NTP skew.
     The native stub returns an unboxed double and never allocates. *)
  external now : unit -> (float[@unboxed])
    = "scdb_clock_monotonic_byte" "scdb_clock_monotonic"
  [@@noalloc]
end

let enabled_flag =
  ref
    (match Sys.getenv_opt "SPATIALDB_STATS" with
    | Some "" | Some "0" | None -> false
    | Some _ -> true)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* Bucket upper bounds 10^(k/2), k = -18 … 18: two per decade across
   the dynamic range of everything we measure (seconds, steps, rates).
   The final slot of each histogram's [buckets] array is the overflow
   bucket. *)
let bucket_bounds = Array.init 37 (fun i -> 10.0 ** ((float_of_int i /. 2.0) -. 9.0))
let n_buckets = Array.length bucket_bounds + 1

let bucket_for v =
  (* Linear scan: bounded at 37 and only on the enabled path; a binary
     search saves nothing at this size. *)
  let rec go i =
    if i >= Array.length bucket_bounds then i else if v <= bucket_bounds.(i) then i else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Cells, definitions and registries                                   *)
(*                                                                     *)
(* A metric now has two halves: the process-global *definition* (name, *)
(* dense per-kind index, created once at module initialization) and a  *)
(* per-registry *cell* holding the actual counts.  A [Registry.t] is   *)
(* just the cell store; observability contexts own one each, and the   *)
(* pre-context global registry survives as [Regs.default].         *)
(*                                                                     *)
(* Hot-path contract (measured in bench/regress.ml, [ctx_overhead]):   *)
(* each definition caches a pointer [c_cur] to the cell of the one     *)
(* registry currently installed on the *initial* domain.  A bump is    *)
(* then: enabled load + branch, cached-pointer load, sentinel compare, *)
(* unboxed store — within noise of the old global-record bump.  Only   *)
(* while a registry is installed on a *non-initial* domain do the      *)
(* cached pointers flip to a sentinel, routing every bump through the  *)
(* domain-local ambient registry so concurrent domains attribute to    *)
(* their own contexts.  The disabled path is unchanged: one mutable    *)
(* load and a branch, no allocation.                                   *)
(* ------------------------------------------------------------------ *)

type ccell = { mutable count : int }

type hcell = {
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  buckets : int array;
}

type counter = { c_name : string; c_idx : int; mutable c_cur : ccell }
type histogram = { h_name : string; h_idx : int; mutable h_cur : hcell }
type metric = M_counter of counter | M_histogram of histogram

(* The sentinels are flags, never written through: the fast path tests
   physical equality against them before storing. *)
let c_sentinel = { count = 0 }
let h_sentinel = { n = 0; sum = 0.0; vmin = infinity; vmax = neg_infinity; buckets = [||] }
let new_ccell () = { count = 0 }

let new_hcell () =
  { n = 0; sum = 0.0; vmin = infinity; vmax = neg_infinity; buckets = Array.make n_buckets 0 }

module Regs = struct
  type t = { mutable ccells : ccell array; mutable hcells : hcell array }

  let default = { ccells = [||]; hcells = [||] }
end

(* Definition tables: name -> definition plus the insertion-order list
   dumps iterate.  Guarded by [defs_mu] together with every cached-
   pointer swap; metric creation and context install/exit are rare, so
   one mutex covers all cold paths. *)
let defs_mu = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let order : metric list ref = ref []
let n_counters = ref 0
let n_histograms = ref 0

let dls_reg : Regs.t Domain.DLS.key = Domain.DLS.new_key (fun () -> Regs.default)
let initial_domain : int = (Domain.self () :> int)

(* The registry the *initial* domain currently has installed (what the
   cached pointers point at while no foreign-domain install is live). *)
let initial_ambient = ref Regs.default

(* Number of live installs on non-initial domains; > 0 means the cached
   pointers are parked on the sentinels and bumps resolve through DLS. *)
let foreign_installs = ref 0

(* Grow a registry's cell stores to cover every current definition.
   Call with [defs_mu] held.  Arrays are replaced, cells are shared, so
   a racing reader holding the old array still sees live cells. *)
let ensure_reg (r : Regs.t) =
  let nc = !n_counters and nh = !n_histograms in
  if Array.length r.ccells < nc then
    r.ccells <-
      Array.init nc (fun i -> if i < Array.length r.ccells then r.ccells.(i) else new_ccell ());
  if Array.length r.hcells < nh then
    r.hcells <-
      Array.init nh (fun i -> if i < Array.length r.hcells then r.hcells.(i) else new_hcell ())

(* With [defs_mu] held. *)
let swap_all (r : Regs.t) =
  ensure_reg r;
  List.iter
    (function
      | M_counter c -> c.c_cur <- r.ccells.(c.c_idx)
      | M_histogram h -> h.h_cur <- r.hcells.(h.h_idx))
    !order

let park_all () =
  List.iter
    (function M_counter c -> c.c_cur <- c_sentinel | M_histogram h -> h.h_cur <- h_sentinel)
    !order

let current_registry () = Domain.DLS.get dls_reg

let enter_registry reg =
  Mutex.lock defs_mu;
  if (Domain.self () :> int) = initial_domain then begin
    initial_ambient := reg;
    if !foreign_installs = 0 then swap_all reg
  end
  else begin
    incr foreign_installs;
    if !foreign_installs = 1 then park_all ()
  end;
  Mutex.unlock defs_mu

let leave_registry prev =
  Mutex.lock defs_mu;
  if (Domain.self () :> int) = initial_domain then begin
    initial_ambient := prev;
    if !foreign_installs = 0 then swap_all prev
  end
  else begin
    decr foreign_installs;
    if !foreign_installs = 0 then swap_all !initial_ambient
  end;
  Mutex.unlock defs_mu

let with_registry reg f =
  let prev = Domain.DLS.get dls_reg in
  Domain.DLS.set dls_reg reg;
  enter_registry reg;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set dls_reg prev;
      leave_registry prev)
    f

(* Cell of [c] in [reg], growing the store if the definition postdates
   the registry.  Cold: only reached through the sentinel. *)
let slow_ccell (reg : Regs.t) (c : counter) =
  let a = reg.ccells in
  if c.c_idx < Array.length a then a.(c.c_idx)
  else begin
    Mutex.lock defs_mu;
    ensure_reg reg;
    Mutex.unlock defs_mu;
    reg.ccells.(c.c_idx)
  end

let slow_hcell (reg : Regs.t) (h : histogram) =
  let a = reg.hcells in
  if h.h_idx < Array.length a then a.(h.h_idx)
  else begin
    Mutex.lock defs_mu;
    ensure_reg reg;
    Mutex.unlock defs_mu;
    reg.hcells.(h.h_idx)
  end

(* Read-only cell views: a registry that has never seen the definition
   reads as zero without being grown. *)
let ccell_ro (reg : Regs.t) idx = if idx < Array.length reg.ccells then Some reg.ccells.(idx) else None
let hcell_ro (reg : Regs.t) idx = if idx < Array.length reg.hcells then Some reg.hcells.(idx) else None

let register name m =
  Hashtbl.replace registry name m;
  order := m :: !order;
  m

module Counter = struct
  type t = counter

  let make name =
    Mutex.lock defs_mu;
    let c =
      match Hashtbl.find_opt registry name with
      | Some (M_counter c) ->
          Mutex.unlock defs_mu;
          c
      | Some (M_histogram _) ->
          Mutex.unlock defs_mu;
          invalid_arg ("Telemetry.Counter.make: " ^ name ^ " is a histogram")
      | None ->
          let idx = !n_counters in
          incr n_counters;
          let c = { c_name = name; c_idx = idx; c_cur = c_sentinel } in
          ensure_reg Regs.default;
          if !foreign_installs = 0 then begin
            ensure_reg !initial_ambient;
            c.c_cur <- (!initial_ambient).Regs.ccells.(idx)
          end;
          ignore (register name (M_counter c));
          Mutex.unlock defs_mu;
          c
    in
    c

  let slow_add c k =
    let cell = slow_ccell (Domain.DLS.get dls_reg) c in
    cell.count <- cell.count + k

  let incr c =
    if !enabled_flag then begin
      let cell = c.c_cur in
      if cell != c_sentinel then cell.count <- cell.count + 1 else slow_add c 1
    end

  let add c k =
    if !enabled_flag then begin
      let cell = c.c_cur in
      if cell != c_sentinel then cell.count <- cell.count + k else slow_add c k
    end

  let value c =
    match ccell_ro (Domain.DLS.get dls_reg) c.c_idx with Some cell -> cell.count | None -> 0
end

module Histogram = struct
  type t = histogram

  let make name =
    Mutex.lock defs_mu;
    match Hashtbl.find_opt registry name with
    | Some (M_histogram h) ->
        Mutex.unlock defs_mu;
        h
    | Some (M_counter _) ->
        Mutex.unlock defs_mu;
        invalid_arg ("Telemetry.Histogram.make: " ^ name ^ " is a counter")
    | None ->
        let idx = !n_histograms in
        incr n_histograms;
        let h = { h_name = name; h_idx = idx; h_cur = h_sentinel } in
        ensure_reg Regs.default;
        if !foreign_installs = 0 then begin
          ensure_reg !initial_ambient;
          h.h_cur <- (!initial_ambient).Regs.hcells.(idx)
        end;
        ignore (register name (M_histogram h));
        Mutex.unlock defs_mu;
        h

  let observe_cell (cell : hcell) v =
    cell.n <- cell.n + 1;
    cell.sum <- cell.sum +. v;
    if v < cell.vmin then cell.vmin <- v;
    if v > cell.vmax then cell.vmax <- v;
    let b = cell.buckets in
    let i = bucket_for v in
    b.(i) <- b.(i) + 1

  let slow_observe h v = observe_cell (slow_hcell (Domain.DLS.get dls_reg) h) v

  let observe h v =
    if !enabled_flag then begin
      let cell = h.h_cur in
      if cell != h_sentinel then observe_cell cell v else slow_observe h v
    end

  let empty_cell = h_sentinel
  let cell h = match hcell_ro (Domain.DLS.get dls_reg) h.h_idx with Some c -> c | None -> empty_cell
  let count h = (cell h).n
  let sum h = (cell h).sum
  let mean_cell (c : hcell) = if c.n = 0 then 0.0 else c.sum /. float_of_int c.n
  let mean h = mean_cell (cell h)

  (* Approximate quantile by linear interpolation inside the log-spaced
     bucket that contains the rank; [vmin]/[vmax] sharpen the first and
     last occupied buckets (and make the single-bucket case exact). *)
  let quantile_cell (c : hcell) q =
    if c.n = 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = q *. float_of_int c.n in
      let rec go i cum =
        if i >= n_buckets then c.vmax
        else begin
          let k = c.buckets.(i) in
          let cum' = cum +. float_of_int k in
          if k > 0 && cum' >= rank then begin
            let lo = if i = 0 then c.vmin else bucket_bounds.(i - 1) in
            let hi = if i >= Array.length bucket_bounds then c.vmax else bucket_bounds.(i) in
            let lo = Float.max lo c.vmin and hi = Float.min hi c.vmax in
            let frac = Float.max 0.0 (Float.min 1.0 ((rank -. cum) /. float_of_int k)) in
            let v = if hi > lo then lo +. ((hi -. lo) *. frac) else lo in
            Float.max c.vmin (Float.min c.vmax v)
          end
          else go (i + 1) cum'
        end
      in
      go 0 0.0
    end

  let quantile h q = quantile_cell (cell h) q
end

module Timer = struct
  type t = histogram

  let make name = Histogram.make (name ^ ".seconds")
  let start _t = if !enabled_flag then Clock.now () else 0.0
  let stop t t0 = if !enabled_flag then Histogram.observe t (Clock.now () -. t0)

  let time t f =
    let t0 = start t in
    let r = f () in
    stop t t0;
    r
end

module Scope = struct
  type t = string

  let make prefix = prefix
  let counter t name = Counter.make (t ^ "." ^ name)
  let histogram t name = Histogram.make (t ^ "." ^ name)
  let timer t name = Timer.make (t ^ "." ^ name)
end

(* ------------------------------------------------------------------ *)
(* Registry construction, reset and merge                              *)
(* ------------------------------------------------------------------ *)

let make_registry () =
  let r = { Regs.ccells = [||]; hcells = [||] } in
  Mutex.lock defs_mu;
  ensure_reg r;
  Mutex.unlock defs_mu;
  r

let zero_ccell (c : ccell) = c.count <- 0

let zero_hcell (h : hcell) =
  h.n <- 0;
  h.sum <- 0.0;
  h.vmin <- infinity;
  h.vmax <- neg_infinity;
  Array.fill h.buckets 0 n_buckets 0

let reset ?reg () =
  let r = match reg with Some r -> r | None -> Domain.DLS.get dls_reg in
  Mutex.lock defs_mu;
  ensure_reg r;
  Mutex.unlock defs_mu;
  Array.iter zero_ccell r.Regs.ccells;
  Array.iter zero_hcell r.Regs.hcells

(* Merge semantics (the context-merge counter/histogram laws): counters
   add; histograms add count, sum and per-bucket counts, min/max extend
   — so a merged histogram is *exactly* the histogram of the
   concatenated observations except for [sum]'s float association. *)
let merge_registry ~dst src =
  if dst != src then begin
    Mutex.lock defs_mu;
    ensure_reg dst;
    ensure_reg src;
    Mutex.unlock defs_mu;
    let dc = dst.Regs.ccells and sc = src.Regs.ccells in
    Array.iteri (fun i (d : ccell) -> d.count <- d.count + sc.(i).count) dc;
    let dh = dst.Regs.hcells and sh = src.Regs.hcells in
    Array.iteri
      (fun i (d : hcell) ->
        let s = sh.(i) in
        if s.n > 0 then begin
          d.n <- d.n + s.n;
          d.sum <- d.sum +. s.sum;
          if s.vmin < d.vmin then d.vmin <- s.vmin;
          if s.vmax > d.vmax then d.vmax <- s.vmax;
          for b = 0 to n_buckets - 1 do
            d.buckets.(b) <- d.buckets.(b) + s.buckets.(b)
          done
        end)
      dh
  end

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

(* JSON floats: plain %.17g round-trips, but normalize the non-finite
   values JSON cannot carry. *)
let json_float v =
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else if v > 0.0 then "1e308"
  else if v < 0.0 then "-1e308"
  else "0"

(* Snapshot the definition list (sorted by name) and pin the target
   registry's capacity so the per-metric cell reads below never miss. *)
let export_defs (r : Regs.t) =
  Mutex.lock defs_mu;
  ensure_reg r;
  let name_of = function M_counter c -> c.c_name | M_histogram h -> h.h_name in
  let metrics = List.sort (fun a b -> compare (name_of a) (name_of b)) (List.rev !order) in
  Mutex.unlock defs_mu;
  metrics

let dump ?(only_nonzero = true) ?reg () =
  let r = match reg with Some r -> r | None -> Domain.DLS.get dls_reg in
  let metrics = export_defs r in
  let ccount (c : counter) = r.Regs.ccells.(c.c_idx).count in
  let hc (h : histogram) = r.Regs.hcells.(h.h_idx) in
  let keep = function
    | M_counter c -> (not only_nonzero) || ccount c <> 0
    | M_histogram h -> (not only_nonzero) || (hc h).n <> 0
  in
  let counters = List.filter (function M_counter _ as m -> keep m | _ -> false) metrics in
  let histograms = List.filter (function M_histogram _ as m -> keep m | _ -> false) metrics in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"spatialdb-telemetry/2\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"enabled\": %b,\n" !enabled_flag);
  Buffer.add_string buf "  \"counters\": {";
  List.iteri
    (fun i m ->
      match m with
      | M_counter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s\n    %S: %d" (if i = 0 then "" else ",") c.c_name (ccount c))
      | M_histogram _ -> ())
    counters;
  Buffer.add_string buf (if counters = [] then "},\n" else "\n  },\n");
  Buffer.add_string buf "  \"histograms\": {";
  List.iteri
    (fun i m ->
      match m with
      | M_histogram h ->
          let cell = hc h in
          Buffer.add_string buf (if i = 0 then "\n    " else ",\n    ");
          Buffer.add_string buf
            (Printf.sprintf
               "%S: {\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"mean\": %s, \"p50\": \
                %s, \"p90\": %s, \"p99\": %s, \"buckets\": ["
               h.h_name cell.n (json_float cell.sum)
               (json_float (if cell.n = 0 then 0.0 else cell.vmin))
               (json_float (if cell.n = 0 then 0.0 else cell.vmax))
               (json_float (Histogram.mean_cell cell))
               (json_float (Histogram.quantile_cell cell 0.50))
               (json_float (Histogram.quantile_cell cell 0.90))
               (json_float (Histogram.quantile_cell cell 0.99)));
          let first = ref true in
          Array.iteri
            (fun b k ->
              if k > 0 then begin
                let le =
                  if b < Array.length bucket_bounds then json_float bucket_bounds.(b) else "\"inf\""
                in
                if not !first then Buffer.add_string buf ", ";
                first := false;
                Buffer.add_string buf (Printf.sprintf "[%s, %d]" le k)
              end)
            cell.buckets;
          Buffer.add_string buf "]}"
      | M_counter _ -> ())
    histograms;
  Buffer.add_string buf (if histograms = [] then "}\n" else "\n  }\n");
  Buffer.add_string buf "}";
  Buffer.contents buf

(* Prometheus text exposition format (version 0.0.4).  Counters render
   as [counter] samples with the conventional [_total] suffix;
   histograms render as [summary] families carrying the interpolated
   p50/p90/p99 quantiles plus exact [_sum]/[_count] and [_min]/[_max]
   gauges — the quantiles inherit the log-bucket error bound
   documented in the interface; the sum, count and extrema do not. *)
let prometheus_name name =
  let buf = Buffer.create (String.length name + 16) in
  Buffer.add_string buf "spatialdb_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let prometheus_float v =
  (* Prometheus accepts Go-style floats; keep them finite and plain. *)
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else if v > 0.0 then "1e308"
  else if v < 0.0 then "-1e308"
  else "0"

let to_prometheus ?(only_nonzero = true) ?reg () =
  let r = match reg with Some r -> r | None -> Domain.DLS.get dls_reg in
  let metrics = export_defs r in
  let buf = Buffer.create 2048 in
  List.iter
    (fun m ->
      match m with
      | M_counter c ->
          let count = r.Regs.ccells.(c.c_idx).count in
          if (not only_nonzero) || count <> 0 then begin
            let n = prometheus_name c.c_name ^ "_total" in
            Buffer.add_string buf (Printf.sprintf "# HELP %s spatialdb counter %s\n" n c.c_name);
            Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
            Buffer.add_string buf (Printf.sprintf "%s %d\n" n count)
          end
      | M_histogram h ->
          let cell = r.Regs.hcells.(h.h_idx) in
          if (not only_nonzero) || cell.n <> 0 then begin
            let n = prometheus_name h.h_name in
            Buffer.add_string buf (Printf.sprintf "# HELP %s spatialdb histogram %s\n" n h.h_name);
            Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
            List.iter
              (fun (label, q) ->
                Buffer.add_string buf
                  (Printf.sprintf "%s{quantile=\"%s\"} %s\n" n label
                     (prometheus_float (Histogram.quantile_cell cell q))))
              [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99) ];
            Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" n (prometheus_float cell.sum));
            Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n cell.n);
            (* The exact observed extrema (tracked per cell alongside
               the buckets); gauge families because a merged/reset min
               can move either way.  Clamped to 0 on empty cells, like
               [dump]. *)
            List.iter
              (fun (suffix, v) ->
                let g = n ^ suffix in
                Buffer.add_string buf
                  (Printf.sprintf "# TYPE %s gauge\n%s %s\n" g g
                     (prometheus_float (if cell.n = 0 then 0.0 else v))))
              [ ("_min", cell.vmin); ("_max", cell.vmax) ]
          end)
    metrics;
  Buffer.contents buf

let counter_value ?reg name =
  let r = match reg with Some r -> r | None -> Domain.DLS.get dls_reg in
  match Hashtbl.find_opt registry name with
  | Some (M_counter c) -> (
      match ccell_ro r c.c_idx with Some cell -> Some cell.count | None -> Some 0)
  | _ -> None

let histogram_count ?reg name =
  match Hashtbl.find_opt registry name with
  | Some (M_histogram h) ->
      let r = match reg with Some r -> r | None -> Domain.DLS.get dls_reg in
      (match hcell_ro r h.h_idx with Some cell -> Some cell.n | None -> Some 0)
  | _ -> None

module Registry = struct
  include Regs

  let create () = make_registry ()
  let merge_into ~dst src = merge_registry ~dst src
end
