module Clock = struct
  (* CLOCK_MONOTONIC seconds: immune to wall-clock steps and NTP skew.
     The native stub returns an unboxed double and never allocates. *)
  external now : unit -> (float[@unboxed])
    = "scdb_clock_monotonic_byte" "scdb_clock_monotonic"
  [@@noalloc]
end

let enabled_flag =
  ref
    (match Sys.getenv_opt "SPATIALDB_STATS" with
    | Some "" | Some "0" | None -> false
    | Some _ -> true)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* Bucket upper bounds 10^(k/2), k = -18 … 18: two per decade across
   the dynamic range of everything we measure (seconds, steps, rates).
   The final slot of each histogram's [buckets] array is the overflow
   bucket. *)
let bucket_bounds = Array.init 37 (fun i -> 10.0 ** ((float_of_int i /. 2.0) -. 9.0))
let n_buckets = Array.length bucket_bounds + 1

let bucket_for v =
  (* Linear scan: bounded at 37 and only on the enabled path; a binary
     search saves nothing at this size. *)
  let rec go i =
    if i >= Array.length bucket_bounds then i else if v <= bucket_bounds.(i) then i else go (i + 1)
  in
  go 0

type counter = { c_name : string; mutable count : int }

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  buckets : int array;
}

type metric = M_counter of counter | M_histogram of histogram

(* Registry: insertion-ordered list for iteration plus a name table for
   idempotent creation.  Metric creation happens at module
   initialization, never on a hot path, so a plain list is fine. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let order : metric list ref = ref []

let register name m =
  Hashtbl.replace registry name m;
  order := m :: !order;
  m

module Counter = struct
  type t = counter

  let make name =
    match Hashtbl.find_opt registry name with
    | Some (M_counter c) -> c
    | Some (M_histogram _) -> invalid_arg ("Telemetry.Counter.make: " ^ name ^ " is a histogram")
    | None -> (
        match register name (M_counter { c_name = name; count = 0 }) with
        | M_counter c -> c
        | M_histogram _ -> assert false)

  let incr c = if !enabled_flag then c.count <- c.count + 1
  let add c k = if !enabled_flag then c.count <- c.count + k
  let value c = c.count
end

module Histogram = struct
  type t = histogram

  let make name =
    match Hashtbl.find_opt registry name with
    | Some (M_histogram h) -> h
    | Some (M_counter _) -> invalid_arg ("Telemetry.Histogram.make: " ^ name ^ " is a counter")
    | None -> (
        match
          register name
            (M_histogram
               {
                 h_name = name;
                 n = 0;
                 sum = 0.0;
                 vmin = infinity;
                 vmax = neg_infinity;
                 buckets = Array.make n_buckets 0;
               })
        with
        | M_histogram h -> h
        | M_counter _ -> assert false)

  let observe h v =
    if !enabled_flag then begin
      h.n <- h.n + 1;
      h.sum <- h.sum +. v;
      if v < h.vmin then h.vmin <- v;
      if v > h.vmax then h.vmax <- v;
      let b = h.buckets in
      let i = bucket_for v in
      b.(i) <- b.(i) + 1
    end

  let count h = h.n
  let sum h = h.sum
  let mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n

  (* Approximate quantile by linear interpolation inside the log-spaced
     bucket that contains the rank; [vmin]/[vmax] sharpen the first and
     last occupied buckets (and make the single-bucket case exact). *)
  let quantile h q =
    if h.n = 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = q *. float_of_int h.n in
      let rec go i cum =
        if i >= n_buckets then h.vmax
        else begin
          let c = h.buckets.(i) in
          let cum' = cum +. float_of_int c in
          if c > 0 && cum' >= rank then begin
            let lo = if i = 0 then h.vmin else bucket_bounds.(i - 1) in
            let hi = if i >= Array.length bucket_bounds then h.vmax else bucket_bounds.(i) in
            let lo = Float.max lo h.vmin and hi = Float.min hi h.vmax in
            let frac = Float.max 0.0 (Float.min 1.0 ((rank -. cum) /. float_of_int c)) in
            let v = if hi > lo then lo +. ((hi -. lo) *. frac) else lo in
            Float.max h.vmin (Float.min h.vmax v)
          end
          else go (i + 1) cum'
        end
      in
      go 0 0.0
    end
end

module Timer = struct
  type t = histogram

  let make name = Histogram.make (name ^ ".seconds")
  let start _t = if !enabled_flag then Clock.now () else 0.0
  let stop t t0 = if !enabled_flag then Histogram.observe t (Clock.now () -. t0)

  let time t f =
    let t0 = start t in
    let r = f () in
    stop t t0;
    r
end

module Scope = struct
  type t = string

  let make prefix = prefix
  let counter t name = Counter.make (t ^ "." ^ name)
  let histogram t name = Histogram.make (t ^ "." ^ name)
  let timer t name = Timer.make (t ^ "." ^ name)
end

let reset () =
  List.iter
    (function
      | M_counter c -> c.count <- 0
      | M_histogram h ->
          h.n <- 0;
          h.sum <- 0.0;
          h.vmin <- infinity;
          h.vmax <- neg_infinity;
          Array.fill h.buckets 0 n_buckets 0)
    !order

(* JSON floats: plain %.17g round-trips, but normalize the non-finite
   values JSON cannot carry. *)
let json_float v =
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else if v > 0.0 then "1e308"
  else if v < 0.0 then "-1e308"
  else "0"

let dump ?(only_nonzero = true) () =
  let name_of = function M_counter c -> c.c_name | M_histogram h -> h.h_name in
  let metrics = List.sort (fun a b -> compare (name_of a) (name_of b)) (List.rev !order) in
  let keep = function
    | M_counter c -> (not only_nonzero) || c.count <> 0
    | M_histogram h -> (not only_nonzero) || h.n <> 0
  in
  let counters = List.filter (function M_counter _ as m -> keep m | _ -> false) metrics in
  let histograms = List.filter (function M_histogram _ as m -> keep m | _ -> false) metrics in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"spatialdb-telemetry/2\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"enabled\": %b,\n" !enabled_flag);
  Buffer.add_string buf "  \"counters\": {";
  List.iteri
    (fun i m ->
      match m with
      | M_counter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s\n    %S: %d" (if i = 0 then "" else ",") c.c_name c.count)
      | M_histogram _ -> ())
    counters;
  Buffer.add_string buf (if counters = [] then "},\n" else "\n  },\n");
  Buffer.add_string buf "  \"histograms\": {";
  List.iteri
    (fun i m ->
      match m with
      | M_histogram h ->
          Buffer.add_string buf (if i = 0 then "\n    " else ",\n    ");
          Buffer.add_string buf
            (Printf.sprintf
               "%S: {\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"mean\": %s, \"p50\": \
                %s, \"p90\": %s, \"p99\": %s, \"buckets\": ["
               h.h_name h.n (json_float h.sum)
               (json_float (if h.n = 0 then 0.0 else h.vmin))
               (json_float (if h.n = 0 then 0.0 else h.vmax))
               (json_float (Histogram.mean h))
               (json_float (Histogram.quantile h 0.50))
               (json_float (Histogram.quantile h 0.90))
               (json_float (Histogram.quantile h 0.99)));
          let first = ref true in
          Array.iteri
            (fun b k ->
              if k > 0 then begin
                let le =
                  if b < Array.length bucket_bounds then json_float bucket_bounds.(b) else "\"inf\""
                in
                if not !first then Buffer.add_string buf ", ";
                first := false;
                Buffer.add_string buf (Printf.sprintf "[%s, %d]" le k)
              end)
            h.buckets;
          Buffer.add_string buf "]}"
      | M_counter _ -> ())
    histograms;
  Buffer.add_string buf (if histograms = [] then "}\n" else "\n  }\n");
  Buffer.add_string buf "}";
  Buffer.contents buf

(* Prometheus text exposition format (version 0.0.4).  Counters render
   as [counter] samples with the conventional [_total] suffix;
   histograms render as [summary] families carrying the interpolated
   p50/p90/p99 quantiles plus exact [_sum]/[_count] — the quantiles
   inherit the log-bucket error bound documented in the interface, the
   sum and count do not. *)
let prometheus_name name =
  let buf = Buffer.create (String.length name + 16) in
  Buffer.add_string buf "spatialdb_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let prometheus_float v =
  (* Prometheus accepts Go-style floats; keep them finite and plain. *)
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else if v > 0.0 then "1e308"
  else if v < 0.0 then "-1e308"
  else "0"

let to_prometheus ?(only_nonzero = true) () =
  let name_of = function M_counter c -> c.c_name | M_histogram h -> h.h_name in
  let metrics = List.sort (fun a b -> compare (name_of a) (name_of b)) (List.rev !order) in
  let buf = Buffer.create 2048 in
  List.iter
    (fun m ->
      match m with
      | M_counter c ->
          if (not only_nonzero) || c.count <> 0 then begin
            let n = prometheus_name c.c_name ^ "_total" in
            Buffer.add_string buf (Printf.sprintf "# HELP %s spatialdb counter %s\n" n c.c_name);
            Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
            Buffer.add_string buf (Printf.sprintf "%s %d\n" n c.count)
          end
      | M_histogram h ->
          if (not only_nonzero) || h.n <> 0 then begin
            let n = prometheus_name h.h_name in
            Buffer.add_string buf (Printf.sprintf "# HELP %s spatialdb histogram %s\n" n h.h_name);
            Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
            List.iter
              (fun (label, q) ->
                Buffer.add_string buf
                  (Printf.sprintf "%s{quantile=\"%s\"} %s\n" n label
                     (prometheus_float (Histogram.quantile h q))))
              [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99) ];
            Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" n (prometheus_float h.sum));
            Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.n)
          end)
    metrics;
  Buffer.contents buf

let counter_value name =
  match Hashtbl.find_opt registry name with Some (M_counter c) -> Some c.count | _ -> None

let histogram_count name =
  match Hashtbl.find_opt registry name with Some (M_histogram h) -> Some h.n | _ -> None
