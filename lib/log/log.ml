module Tel = Scdb_telemetry.Telemetry
module Trace = Scdb_trace.Trace

type level = Debug | Info | Warn | Error

let priority = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* SPATIALDB_LOG=warn enables stderr logging at that level; any other
   non-empty, non-"0" value means Info. *)
let env_level =
  match Sys.getenv_opt "SPATIALDB_LOG" with
  | None | Some "" | Some "0" -> None
  | Some s -> Some (Option.value ~default:Info (level_of_string s))

let enabled_flag = ref (env_level <> None)
let min_priority = ref (priority (Option.value ~default:Info env_level))

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let set_level l = min_priority := priority l

let level () =
  if !min_priority <= 0 then Debug
  else if !min_priority = 1 then Info
  else if !min_priority = 2 then Warn
  else Error

let would_log l = !enabled_flag && priority l >= !min_priority

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(*                                                                     *)
(* A sink bundles everything one event stream owns: the bounded ring   *)
(* buffer (the flight recorder's last-N tail, capacity fixed at sink   *)
(* creation), the sequence number, the warn/error counters, the render *)
(* scratch buffer and the output channels.  Each observability context *)
(* owns a sink; the pre-context globals survive as the default sink    *)
(* every domain starts with.  A per-sink mutex serializes emission, so *)
(* two domains sharing one sink interleave whole lines, never torn     *)
(* ones.  Level policy stays process-global (one load on the disabled  *)
(* path).                                                              *)
(* ------------------------------------------------------------------ *)

type sink = {
  mutable ring : string array;
  mutable ring_next : int; (* total events pushed since last clear *)
  mutable s_seq : int;
  mutable s_warns : int;
  mutable s_errors : int;
  s_buf : Buffer.t;
  s_mu : Mutex.t;
  mutable s_stderr : bool;
  mutable s_file : out_channel option;
}

let make_sink ?(ring_capacity = 256) ?(stderr_sink = false) () =
  {
    ring = Array.make (Stdlib.max 1 ring_capacity) "";
    ring_next = 0;
    s_seq = 0;
    s_warns = 0;
    s_errors = 0;
    s_buf = Buffer.create 256;
    s_mu = Mutex.create ();
    s_stderr = stderr_sink;
    s_file = None;
  }

let default_sink = make_sink ~stderr_sink:(env_level <> None) ()
let dls_sink : sink Domain.DLS.key = Domain.DLS.new_key (fun () -> default_sink)
let cur () = Domain.DLS.get dls_sink

let with_sink s f =
  let prev = Domain.DLS.get dls_sink in
  Domain.DLS.set dls_sink s;
  Fun.protect ~finally:(fun () -> Domain.DLS.set dls_sink prev) f

let locked s f =
  Mutex.lock s.s_mu;
  match f () with
  | v ->
      Mutex.unlock s.s_mu;
      v
  | exception e ->
      Mutex.unlock s.s_mu;
      raise e

let set_ring_capacity n =
  let s = cur () in
  locked s (fun () ->
      s.ring <- Array.make (Stdlib.max 1 n) "";
      s.ring_next <- 0)

(* With the sink's mutex held. *)
let ring_push s line =
  let r = s.ring in
  r.(s.ring_next mod Array.length r) <- line;
  s.ring_next <- s.ring_next + 1

let tail_of s =
  locked s (fun () ->
      let r = s.ring in
      let cap = Array.length r in
      let n = Stdlib.min s.ring_next cap in
      let first = s.ring_next - n in
      List.init n (fun i -> r.((first + i) mod cap)))

let tail () = tail_of (cur ())

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

type field =
  | F_str of string * string
  | F_int of string * int
  | F_float of string * float
  | F_bool of string * bool

let str k v = F_str (k, v)
let int k v = F_int (k, v)
let float k v = F_float (k, v)
let bool k v = F_bool (k, v)

let warn_count () = (cur ()).s_warns
let error_count () = (cur ()).s_errors

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else if v > 0.0 then "1e308"
  else if v < 0.0 then "-1e308"
  else "0"

(* With the sink's mutex held (the scratch buffer is per-sink). *)
let render s level event fields =
  let buf = s.s_buf in
  Buffer.clear buf;
  Buffer.add_string buf "{\"schema\": \"spatialdb-log/1\", \"seq\": ";
  Buffer.add_string buf (string_of_int s.s_seq);
  Buffer.add_string buf (Printf.sprintf ", \"ts\": %.6f" (Tel.Clock.now ()));
  Buffer.add_string buf ", \"level\": \"";
  Buffer.add_string buf (level_name level);
  Buffer.add_string buf "\", \"span\": ";
  Buffer.add_string buf (string_of_int (Trace.current_id ()));
  Buffer.add_string buf ", \"event\": \"";
  Buffer.add_string buf (Trace.json_escape event);
  Buffer.add_string buf "\", \"fields\": {";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ", ";
      let key k = "\"" ^ Trace.json_escape k ^ "\": " in
      match f with
      | F_str (k, v) -> Buffer.add_string buf (key k ^ "\"" ^ Trace.json_escape v ^ "\"")
      | F_int (k, v) -> Buffer.add_string buf (key k ^ string_of_int v)
      | F_float (k, v) -> Buffer.add_string buf (key k ^ json_float v)
      | F_bool (k, v) -> Buffer.add_string buf (key k ^ string_of_bool v))
    fields;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let emit level event fields =
  if would_log level then begin
    let s = cur () in
    locked s (fun () ->
        let line = render s level event fields in
        s.s_seq <- s.s_seq + 1;
        (match level with
        | Warn -> s.s_warns <- s.s_warns + 1
        | Error -> s.s_errors <- s.s_errors + 1
        | Debug | Info -> ());
        ring_push s line;
        if s.s_stderr then begin
          output_string stderr line;
          output_char stderr '\n';
          flush stderr
        end;
        match s.s_file with
        | None -> ()
        | Some oc ->
            output_string oc line;
            output_char oc '\n')
  end

let debug event fields = emit Debug event fields
let info event fields = emit Info event fields
let warn event fields = emit Warn event fields
let error event fields = emit Error event fields

(* ------------------------------------------------------------------ *)
(* Sink management                                                     *)
(* ------------------------------------------------------------------ *)

let set_stderr b = (cur ()).s_stderr <- b

let close_file () =
  let s = cur () in
  locked s (fun () ->
      match s.s_file with
      | None -> ()
      | Some oc ->
          flush oc;
          close_out oc;
          s.s_file <- None)

let open_file path =
  close_file ();
  let s = cur () in
  locked s (fun () -> s.s_file <- Some (open_out path))

let reset () =
  let s = cur () in
  locked s (fun () ->
      s.s_seq <- 0;
      s.s_warns <- 0;
      s.s_errors <- 0;
      Array.fill s.ring 0 (Array.length s.ring) "";
      s.ring_next <- 0)

module Sink = struct
  type t = sink

  let create ?ring_capacity ?stderr () = make_sink ?ring_capacity ?stderr_sink:stderr ()
  let tail = tail_of
  let seq s = s.s_seq
  let warn_count s = s.s_warns
  let error_count s = s.s_errors

  (* Merge: append [src]'s ring tail into [dst] (oldest first, subject
     to [dst]'s capacity) and add the event/warn/error counts.  [src]
     is unchanged.  Lock order is dst-then-src; merging is a parent-
     context operation, never concurrent in both directions. *)
  let merge_into ~dst src =
    if dst != src then begin
      let lines = tail_of src in
      let seq, warns, errors =
        locked src (fun () -> (src.s_seq, src.s_warns, src.s_errors))
      in
      locked dst (fun () ->
          List.iter (ring_push dst) lines;
          dst.s_seq <- dst.s_seq + seq;
          dst.s_warns <- dst.s_warns + warns;
          dst.s_errors <- dst.s_errors + errors)
    end
end

let current_sink () = cur ()
