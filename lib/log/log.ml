module Tel = Scdb_telemetry.Telemetry
module Trace = Scdb_trace.Trace

type level = Debug | Info | Warn | Error

let priority = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* SPATIALDB_LOG=warn enables stderr logging at that level; any other
   non-empty, non-"0" value means Info. *)
let env_level =
  match Sys.getenv_opt "SPATIALDB_LOG" with
  | None | Some "" | Some "0" -> None
  | Some s -> Some (Option.value ~default:Info (level_of_string s))

let enabled_flag = ref (env_level <> None)
let min_priority = ref (priority (Option.value ~default:Info env_level))
let stderr_sink = ref (env_level <> None)
let file_sink : out_channel option ref = ref None

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let set_level l = min_priority := priority l

let level () =
  if !min_priority <= 0 then Debug
  else if !min_priority = 1 then Info
  else if !min_priority = 2 then Warn
  else Error

let would_log l = !enabled_flag && priority l >= !min_priority

(* ------------------------------------------------------------------ *)
(* Ring buffer (the flight recorder's last-N event tail)               *)
(* ------------------------------------------------------------------ *)

let ring : string array ref = ref (Array.make 256 "")
let ring_next = ref 0 (* total events pushed since last clear *)

let set_ring_capacity n =
  ring := Array.make (Stdlib.max 1 n) "";
  ring_next := 0

let ring_push line =
  let r = !ring in
  r.(!ring_next mod Array.length r) <- line;
  incr ring_next

let tail () =
  let r = !ring in
  let cap = Array.length r in
  let n = Stdlib.min !ring_next cap in
  let first = !ring_next - n in
  List.init n (fun i -> r.((first + i) mod cap))

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

type field =
  | F_str of string * string
  | F_int of string * int
  | F_float of string * float
  | F_bool of string * bool

let str k v = F_str (k, v)
let int k v = F_int (k, v)
let float k v = F_float (k, v)
let bool k v = F_bool (k, v)

let seq = ref 0
let warns = ref 0
let errors = ref 0
let warn_count () = !warns
let error_count () = !errors

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else if v > 0.0 then "1e308"
  else if v < 0.0 then "-1e308"
  else "0"

(* Shared scratch buffer: emission is rare relative to the kernels and
   the library is single-threaded like the rest of the stack. *)
let buf = Buffer.create 256

let render level event fields =
  Buffer.clear buf;
  Buffer.add_string buf "{\"schema\": \"spatialdb-log/1\", \"seq\": ";
  Buffer.add_string buf (string_of_int !seq);
  Buffer.add_string buf (Printf.sprintf ", \"ts\": %.6f" (Tel.Clock.now ()));
  Buffer.add_string buf ", \"level\": \"";
  Buffer.add_string buf (level_name level);
  Buffer.add_string buf "\", \"span\": ";
  Buffer.add_string buf (string_of_int (Trace.current_id ()));
  Buffer.add_string buf ", \"event\": \"";
  Buffer.add_string buf (Trace.json_escape event);
  Buffer.add_string buf "\", \"fields\": {";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ", ";
      let key k = "\"" ^ Trace.json_escape k ^ "\": " in
      match f with
      | F_str (k, v) -> Buffer.add_string buf (key k ^ "\"" ^ Trace.json_escape v ^ "\"")
      | F_int (k, v) -> Buffer.add_string buf (key k ^ string_of_int v)
      | F_float (k, v) -> Buffer.add_string buf (key k ^ json_float v)
      | F_bool (k, v) -> Buffer.add_string buf (key k ^ string_of_bool v))
    fields;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let emit level event fields =
  if would_log level then begin
    let line = render level event fields in
    incr seq;
    (match level with Warn -> incr warns | Error -> incr errors | Debug | Info -> ());
    ring_push line;
    if !stderr_sink then begin
      output_string stderr line;
      output_char stderr '\n';
      flush stderr
    end;
    match !file_sink with
    | None -> ()
    | Some oc ->
        output_string oc line;
        output_char oc '\n'
  end

let debug event fields = emit Debug event fields
let info event fields = emit Info event fields
let warn event fields = emit Warn event fields
let error event fields = emit Error event fields

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let set_stderr b = stderr_sink := b

let close_file () =
  match !file_sink with
  | None -> ()
  | Some oc ->
      flush oc;
      close_out oc;
      file_sink := None

let open_file path =
  close_file ();
  file_sink := Some (open_out path)

let reset () =
  seq := 0;
  warns := 0;
  errors := 0;
  let r = !ring in
  Array.fill r 0 (Array.length r) "";
  ring_next := 0
