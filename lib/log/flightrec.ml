module J = Scdb_trace.Json_min
module Trace = Scdb_trace.Trace
module Rng = Scdb_rng.Rng

type t = {
  command : string;
  args : (string * string) list;
  seed : int;
  samples : float array list;
  lineage : Rng.Provenance.info list;
  telemetry : string option;
  log_tail : string list;
}

let schema = "spatialdb-flightrec/1"
let arg t k = List.assoc_opt k t.args

(* Samples are stored as hex-float strings ("0x1.8p-1"): JSON numbers
   round-trip through decimal printers, hex floats are bit-exact by
   construction. *)
let hex_of_float f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else Printf.sprintf "%h" f

let float_of_hex s =
  match s with
  | "nan" -> Some Float.nan
  | "inf" -> Some Float.infinity
  | "-inf" -> Some Float.neg_infinity
  | _ -> float_of_string_opt s

let to_json t =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n";
  add (Printf.sprintf "  \"schema\": %S,\n" schema);
  add (Printf.sprintf "  \"command\": \"%s\",\n" (Trace.json_escape t.command));
  add "  \"args\": {";
  List.iteri
    (fun i (k, v) ->
      add (if i = 0 then "\n" else ",\n");
      add (Printf.sprintf "    \"%s\": \"%s\"" (Trace.json_escape k) (Trace.json_escape v)))
    t.args;
  add (if t.args = [] then "},\n" else "\n  },\n");
  add (Printf.sprintf "  \"seed\": %d,\n" t.seed);
  add "  \"samples\": [";
  List.iteri
    (fun i p ->
      add (if i = 0 then "\n" else ",\n");
      add "    [";
      Array.iteri
        (fun j x ->
          if j > 0 then add ", ";
          add (Printf.sprintf "\"%s\"" (hex_of_float x)))
        p;
      add "]")
    t.samples;
  add (if t.samples = [] then "],\n" else "\n  ],\n");
  add "  \"rng\": [";
  List.iteri
    (fun i (n : Rng.Provenance.info) ->
      add (if i = 0 then "\n" else ",\n");
      add
        (Printf.sprintf "    {\"id\": %d, \"parent\": %d, \"op\": \"%s\", \"draws\": %d}" n.id
           n.parent (Trace.json_escape n.op) n.draws))
    t.lineage;
  add (if t.lineage = [] then "],\n" else "\n  ],\n");
  add "  \"telemetry\": ";
  (match t.telemetry with
  | None -> add "null"
  | Some raw -> add (String.concat "\n  " (String.split_on_char '\n' raw)));
  add ",\n";
  add "  \"log_tail\": [";
  List.iteri
    (fun i line ->
      add (if i = 0 then "\n" else ",\n");
      add "    ";
      add line)
    t.log_tail;
  add (if t.log_tail = [] then "]\n" else "\n  ]\n");
  add "}\n";
  Buffer.contents buf

(* Minimal re-serializer so telemetry and log events parsed by Json_min
   can be carried back out as raw strings. *)
let rec json_to_string = function
  | J.Null -> "null"
  | J.Bool b -> string_of_bool b
  | J.Num v ->
      if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
      else Printf.sprintf "%.17g" v
  | J.Str s -> "\"" ^ Trace.json_escape s ^ "\""
  | J.Arr l -> "[" ^ String.concat ", " (List.map json_to_string l) ^ "]"
  | J.Obj kvs ->
      "{"
      ^ String.concat ", "
          (List.map (fun (k, v) -> "\"" ^ Trace.json_escape k ^ "\": " ^ json_to_string v) kvs)
      ^ "}"

let of_json s =
  match J.parse s with
  | exception J.Parse_error m -> Error ("invalid JSON: " ^ m)
  | doc -> (
      let field name = J.member name doc in
      match J.member "schema" doc with
      | Some (J.Str sc) when sc = schema -> (
          let command =
            match field "command" with Some (J.Str c) -> Some c | _ -> None
          in
          let seed =
            match field "seed" with
            | Some (J.Num v) when Float.is_integer v -> Some (int_of_float v)
            | _ -> None
          in
          match (command, seed) with
          | None, _ -> Error "missing or malformed command"
          | _, None -> Error "missing or malformed seed"
          | Some command, Some seed -> (
              let args =
                match field "args" with
                | Some (J.Obj kvs) ->
                    Some
                      (List.filter_map
                         (fun (k, v) -> match v with J.Str s -> Some (k, s) | _ -> None)
                         kvs)
                | _ -> None
              in
              let samples =
                match field "samples" with
                | Some (J.Arr rows) ->
                    let parse_row = function
                      | J.Arr cells ->
                          let coords =
                            List.map
                              (function
                                | J.Str h -> float_of_hex h
                                | J.Num v -> Some v
                                | _ -> None)
                              cells
                          in
                          if List.for_all Option.is_some coords then
                            Some (Array.of_list (List.map Option.get coords))
                          else None
                      | _ -> None
                    in
                    let rows = List.map parse_row rows in
                    if List.for_all Option.is_some rows then
                      Some (List.map Option.get rows)
                    else None
                | _ -> None
              in
              let lineage =
                match field "rng" with
                | Some (J.Arr nodes) ->
                    let parse_node n =
                      let num k =
                        match J.member k n with
                        | Some (J.Num v) when Float.is_integer v -> Some (int_of_float v)
                        | _ -> None
                      in
                      let op = match J.member "op" n with Some (J.Str s) -> Some s | _ -> None in
                      match (num "id", num "parent", op, num "draws") with
                      | Some id, Some parent, Some op, Some draws ->
                          Some { Rng.Provenance.id; parent; op; draws }
                      | _ -> None
                    in
                    let nodes = List.map parse_node nodes in
                    if List.for_all Option.is_some nodes then
                      Some (List.map Option.get nodes)
                    else None
                | _ -> None
              in
              let telemetry =
                match field "telemetry" with
                | Some J.Null | None -> Some None
                | Some (J.Obj _ as o) -> Some (Some (json_to_string o))
                | _ -> None
              in
              let log_tail =
                match field "log_tail" with
                | Some (J.Arr lines) -> Some (List.map json_to_string lines)
                | None -> Some []
                | _ -> None
              in
              match (args, samples, lineage, telemetry, log_tail) with
              | Some args, Some samples, Some lineage, Some telemetry, Some log_tail ->
                  Ok { command; args; seed; samples; lineage; telemetry; log_tail }
              | None, _, _, _, _ -> Error "malformed args object"
              | _, None, _, _, _ -> Error "malformed samples array"
              | _, _, None, _, _ -> Error "malformed rng lineage array"
              | _, _, _, None, _ -> Error "malformed telemetry block"
              | _, _, _, _, None -> Error "malformed log_tail array"))
      | Some (J.Str other) -> Error (Printf.sprintf "unexpected schema %S (want %S)" other schema)
      | _ -> Error "missing schema field")

let write path t =
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc

let read path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      of_json s

let compare_samples ~recorded ~replayed =
  let bits = Int64.bits_of_float in
  let rec go i rec_rest rep_rest =
    match (rec_rest, rep_rest) with
    | [], [] -> Ok i
    | [], _ :: _ -> Error (Printf.sprintf "replay produced extra samples after index %d" (i - 1))
    | _ :: _, [] ->
        Error
          (Printf.sprintf "replay stream ended early: recorded %d more sample(s) after index %d"
             (List.length rec_rest) (i - 1))
    | a :: rec_rest, b :: rep_rest ->
        if Array.length a <> Array.length b then
          Error
            (Printf.sprintf "sample %d: dimension mismatch (recorded %d, replayed %d)" i
               (Array.length a) (Array.length b))
        else begin
          let divergent = ref (-1) in
          (try
             for j = 0 to Array.length a - 1 do
               if bits a.(j) <> bits b.(j) then begin
                 divergent := j;
                 raise Exit
               end
             done
           with Exit -> ());
          if !divergent >= 0 then begin
            let j = !divergent in
            Error
              (Printf.sprintf
                 "first divergence at sample %d, coordinate %d: recorded %s (%.17g), replayed %s \
                  (%.17g)"
                 i j (hex_of_float a.(j)) a.(j) (hex_of_float b.(j)) b.(j))
          end
          else go (i + 1) rec_rest rep_rest
        end
  in
  go 0 recorded replayed
