module Tel = Scdb_telemetry.Telemetry

let write_file ~path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Tel.to_prometheus ());
  close_out oc;
  Sys.rename tmp path

let running = ref false

let start_periodic ~path ~interval_s =
  if interval_s > 0.0 && not !running then begin
    running := true;
    ignore
      (Thread.create
         (fun () ->
           while !running do
             Thread.delay interval_s;
             if !running then try write_file ~path with Sys_error _ -> ()
           done)
         ())
  end

let stop_periodic () = running := false
