(** Leveled, span-correlated structured logging.

    [Telemetry] aggregates and [Trace] attributes cost; this module is
    the narrative channel: discrete events (a pivot cap hit, a
    rejection budget exhausted, a non-convergence verdict) rendered as
    one JSON object per line under the versioned [spatialdb-log/1]
    schema, so a long-running workload can be tailed, shipped and
    machine-parsed.

    Discipline matches [Telemetry]/[Trace]:

    - {b disabled by default}: {!would_log} is one mutable load and a
      comparison, no allocation.  Hot call sites guard with it —
      [if Log.would_log Log.Warn then Log.warn "…" [...]] — so the
      disabled path never builds the field list;
    - {b span-correlated}: every event is stamped with the innermost
      open [Trace] span id ([-1] when none), a strictly increasing
      sequence number and a monotonic-clock timestamp;
    - {b pluggable sinks}: stderr, a file, and a bounded in-memory ring
      buffer (always live while logging is enabled) that the flight
      recorder snapshots as the last-N event tail.

    Event schema:
    [{"schema": "spatialdb-log/1", "seq": …, "ts": …, "level": "…",
      "span": …, "event": "…", "fields": {…}}]. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> level option
(** Case-insensitive parse of {!level_name} forms. *)

val enabled : unit -> bool
(** Global switch; initially [false] unless the [SPATIALDB_LOG]
    environment variable is set to a non-empty, non-["0"] value (a
    level name selects that level, anything else means [Info]), in
    which case events also go to stderr. *)

val set_enabled : bool -> unit

val set_level : level -> unit
(** Minimum level recorded (default [Info]). *)

val level : unit -> level

val would_log : level -> bool
(** [true] iff an event at this level would be recorded right now.
    One load and a comparison, no allocation — the guard hot call
    sites use before building a field list. *)

(** {1 Fields} *)

type field

val str : string -> string -> field
val int : string -> int -> field
val float : string -> float -> field
val bool : string -> bool -> field

(** {1 Emission} *)

val emit : level -> string -> field list -> unit
(** [emit level event fields] records one event (no-op below the
    current level or when disabled).  [event] is a dot-separated path
    like the telemetry metric names ([simplex.iteration_cap]). *)

val debug : string -> field list -> unit
val info : string -> field list -> unit
val warn : string -> field list -> unit
val error : string -> field list -> unit

val warn_count : unit -> int
(** Warn-level events recorded since the last {!reset} — the flight
    recorder's anomaly signal. *)

val error_count : unit -> int

(** {1 Sinks} *)

val set_stderr : bool -> unit
(** Mirror events to stderr (default: only when [SPATIALDB_LOG]
    enabled logging at startup). *)

val open_file : string -> unit
(** Append events to the given file (JSON lines); closes any
    previously opened file sink. *)

val close_file : unit -> unit
(** Close the file sink, if any (flushes first). *)

val set_ring_capacity : int -> unit
(** Resize the ambient sink's in-memory ring buffer (default 256
    events); the current contents are dropped. *)

val tail : unit -> string list
(** The ambient sink's ring contents, oldest first: the last-N
    rendered event lines (without trailing newline). *)

val reset : unit -> unit
(** Clear the ambient sink's ring, sequence number and warn/error
    counters.  Output channels, level and the enabled flag are
    untouched. *)

(** {1 Sinks as values (observability contexts)}

    Every event stream — ring, sequence number, warn/error counters,
    render scratch and output channels — lives in a {e sink}.  The
    pre-context globals survive as the default sink every domain
    starts with; contexts own one each.  A per-sink mutex serializes
    emission, so two domains sharing one sink interleave whole lines,
    never torn ones.  Level policy ({!set_level}/{!set_enabled}) stays
    process-global. *)

module Sink : sig
  type t

  val create : ?ring_capacity:int -> ?stderr:bool -> unit -> t
  (** Fresh sink: ring of [ring_capacity] events (default 256),
      stderr mirroring off unless [stderr] (no file sink). *)

  val tail : t -> string list
  val seq : t -> int
  val warn_count : t -> int
  val error_count : t -> int

  val merge_into : dst:t -> t -> unit
  (** Append [src]'s ring tail into [dst] (oldest first, bounded by
      [dst]'s capacity) and add the event/warn/error counts; [src] is
      unchanged.  A parent-context operation — do not merge two sinks
      into each other concurrently. *)
end

val with_sink : Sink.t -> (unit -> 'a) -> 'a
(** Install a sink as the calling domain's ambient event stream for
    the duration of the thunk (exception-safe; nests).  Same
    domain/thread caveats as [Telemetry.with_registry]. *)

val current_sink : unit -> Sink.t
