(** Flight records: capture-and-replay envelopes for randomized runs.

    The paper's guarantees are probabilistic, so a (γ,ε,δ)-generator
    that misbehaves can only be debugged by replaying its exact RNG
    stream.  A flight record ([*.flightrec.json], schema
    [spatialdb-flightrec/1]) snapshots everything needed to do that:
    the command and its arguments, the seed, the sample stream the run
    emitted (hex floats, bit-exact), the RNG lineage tree with final
    draw counts, a telemetry snapshot and the last-N structured log
    events.

    This module owns the format — building, writing, parsing and the
    bit-exact stream comparison.  Re-executing a record lives with the
    pipeline code ([Scdb_gis.Flight]), which this library cannot see. *)

type t = {
  command : string;  (** subcommand that produced the record, e.g. ["sample"] *)
  args : (string * string) list;  (** stringly argument map, e.g. [("vars", "x,y")] *)
  seed : int;
  samples : float array list;  (** the emitted sample stream, in order *)
  lineage : Scdb_rng.Rng.Provenance.info list;
  telemetry : string option;  (** raw telemetry JSON dump, if collection was on *)
  log_tail : string list;  (** last-N rendered [spatialdb-log/1] lines *)
}

val schema : string
(** ["spatialdb-flightrec/1"]. *)

val arg : t -> string -> string option
(** Lookup in [args]. *)

val to_json : t -> string

val of_json : string -> (t, string) result
(** Parse and validate a record (schema check included). *)

val write : string -> t -> unit
(** Write to a file (the conventional extension is [.flightrec.json]). *)

val read : string -> (t, string) result

val compare_samples :
  recorded:float array list -> replayed:float array list -> (int, string) result
(** Bitwise comparison of two sample streams ([Int64.bits_of_float],
    so NaN payloads and signed zeros count).  [Ok n] with the stream
    length on success; on the first divergence, [Error] carries the
    sample index, coordinate, and both values in hex and decimal. *)
