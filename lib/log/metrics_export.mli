(** Prometheus textfile-collector emitter.

    Renders the telemetry registry ({!Scdb_telemetry.Telemetry.to_prometheus})
    into a file a node-exporter-style sidecar can scrape.  Writes are
    atomic — the snapshot lands in [<path>.tmp] and is renamed over the
    target — so a scraper never observes a torn file.  {!start_periodic}
    spawns a daemon thread re-emitting on a fixed interval, which is
    how a multi-hour volume estimation stays watchable live. *)

val write_file : path:string -> unit
(** One atomic snapshot (write [<path>.tmp], rename to [path]). *)

val start_periodic : path:string -> interval_s:float -> unit
(** Emit every [interval_s] seconds from a daemon thread until
    {!stop_periodic} (or process exit).  No-op if [interval_s <= 0] or
    an emitter is already running.  Write failures are swallowed: a
    full disk must not kill the workload being observed. *)

val stop_periodic : unit -> unit
