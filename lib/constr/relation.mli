(** Generalized relations: finitely representable subsets of [R^d].

    A relation is a dimension together with a finite union of
    generalized tuples (the DNF of its defining quantifier-free
    formula).  This is the object the paper's generators and estimators
    operate on. *)

type t = private { dim : int; tuples : Dnf.tuple list }

val make : dim:int -> Dnf.tuple list -> t
(** @raise Invalid_argument if an atom mentions a variable [>= dim]. *)

val of_formula : dim:int -> Formula.t -> t
(** DNF conversion of a quantifier-free formula.
    @raise Invalid_argument on quantified input. *)

val to_formula : t -> Formula.t
val dim : t -> int
val tuples : t -> Dnf.tuple list

val size : t -> int
(** Description size: total number of atoms. *)

val mem : t -> Rational.t array -> bool
val mem_float : ?slack:float -> t -> Vec.t -> bool

val union : t -> t -> t
(** @raise Invalid_argument on dimension mismatch. *)

val inter : t -> t -> t
(** Tuple-wise product: DNF of the conjunction. *)

val complement_tuple : Dnf.tuple -> t -> t option
(** [complement_tuple t r]: the relation [t ∧ ¬r] in DNF, or [None] if
    empty syntactically. *)

val diff : t -> t -> t
(** [diff r s = r ∧ ¬s], distributed back to DNF. *)

val is_syntactically_empty : t -> bool

(** {1 Common shapes} (axis-aligned; exact rational data) *)

val box : Rational.t array -> Rational.t array -> t
(** [box lo hi] in dimension [Array.length lo]. *)

val unit_cube : int -> t
val cube : int -> Rational.t -> t
(** [cube d r] is [[-r, r]^d]. *)

val standard_simplex : int -> t
(** [{x >= 0, Σx <= 1}]. *)

val cross_polytope : int -> Rational.t -> t
(** [{Σ|xᵢ| <= r}] as the intersection of its [2^d] facets — one
    generalized tuple with [2^d] atoms. *)

val halfspace : dim:int -> Term.t -> t
(** [{x | term <= 0}]. *)


val fingerprint : t -> string
(** Canonical 64-bit fingerprint of the relation, as 16 lowercase hex
    characters.  Computed over the DNF'd exact-rational atoms:
    every atom is rescaled so its leading coefficient has absolute
    value 1 (sign-normalized for equalities), atoms are sorted and
    deduplicated within each tuple, tuples are sorted and deduplicated
    across the relation, and the result is FNV-1a-hashed together with
    the dimension.  Insensitive to atom/tuple order, duplicate
    atoms/tuples, positive rescaling of atoms and the internal bigint
    representation of coefficients; distinct syntax trees of the same
    set may still fingerprint differently (this is canonical hashing,
    not semantic equivalence).  Keys audit ledger entries and, later,
    prepared-relation caches. *)

val to_text : t -> string
(** The relation as parseable FO+LIN text (variables named [x0 …]);
    [Parser.parse_relation ~vars:["x0";…]] inverts it. *)

val pp : Format.formatter -> t -> unit
