type t = { dim : int; tuples : Dnf.tuple list }

let check_vars dim tuples =
  List.iter
    (fun tuple ->
      List.iter
        (fun a ->
          if Atom.max_var a >= dim then
            invalid_arg
              (Printf.sprintf "Relation.make: variable x%d out of dimension %d" (Atom.max_var a) dim))
        tuple)
    tuples

let make ~dim tuples =
  check_vars dim tuples;
  { dim; tuples = List.filter_map Dnf.simplify_tuple tuples }

let of_formula ~dim f =
  Scdb_trace.Trace.span "dnf.normalize" ~attrs:[ ("dim", string_of_int dim) ] @@ fun () ->
  let r = make ~dim (Dnf.of_formula f) in
  Scdb_trace.Trace.add_attr_int "tuples" (List.length r.tuples);
  r

let to_formula r = Dnf.to_formula r.tuples
let dim r = r.dim
let tuples r = r.tuples
let size r = List.fold_left (fun acc t -> acc + List.length t) 0 r.tuples

let mem r x = List.exists (fun t -> Dnf.tuple_holds t x) r.tuples
let mem_float ?slack r x = List.exists (fun t -> Dnf.tuple_holds_float ?slack t x) r.tuples

let union a b =
  if a.dim <> b.dim then invalid_arg "Relation.union: dimension mismatch";
  { dim = a.dim; tuples = a.tuples @ b.tuples }

let inter a b =
  if a.dim <> b.dim then invalid_arg "Relation.inter: dimension mismatch";
  let tuples =
    List.concat_map (fun ta -> List.filter_map (fun tb -> Dnf.simplify_tuple (ta @ tb)) b.tuples) a.tuples
  in
  { dim = a.dim; tuples }

let complement_tuple tuple r =
  (* tuple ∧ ¬(∨ tuples of r): push the negation through DNF. *)
  let negated =
    Formula.conj
      (List.map
         (fun t -> Formula.neg (Dnf.tuple_to_formula t))
         r.tuples)
  in
  let f = Formula.conj [ Dnf.tuple_to_formula tuple; negated ] in
  let tuples = Dnf.of_formula f in
  if tuples = [] then None else Some { dim = r.dim; tuples }

let diff a b =
  if a.dim <> b.dim then invalid_arg "Relation.diff: dimension mismatch";
  let pieces = List.filter_map (fun t -> complement_tuple t b) a.tuples in
  { dim = a.dim; tuples = List.concat_map (fun r -> r.tuples) pieces }

let is_syntactically_empty r = r.tuples = []

let box lo hi =
  let d = Array.length lo in
  if Array.length hi <> d then invalid_arg "Relation.box: dimension mismatch";
  let atoms = ref [] in
  for i = d - 1 downto 0 do
    (* lo_i <= x_i <= hi_i *)
    atoms := Atom.le (Term.var i) (Term.const hi.(i)) :: Atom.ge (Term.var i) (Term.const lo.(i)) :: !atoms
  done;
  make ~dim:d [ !atoms ]

let unit_cube d = box (Array.make d Rational.zero) (Array.make d Rational.one)
let cube d r = box (Array.make d (Rational.neg r)) (Array.make d r)

let standard_simplex d =
  let nonneg = List.init d (fun i -> Atom.ge (Term.var i) Term.zero) in
  let sum = List.fold_left (fun acc i -> Term.add acc (Term.var i)) Term.zero (List.init d Fun.id) in
  make ~dim:d [ Atom.le sum (Term.const Rational.one) :: nonneg ]

let cross_polytope d r =
  (* Σ εᵢ xᵢ <= r for every sign pattern ε. *)
  let rec patterns i acc =
    if i = d then [ acc ]
    else patterns (i + 1) ((1, i) :: acc) @ patterns (i + 1) ((-1, i) :: acc)
  in
  let facet signs =
    let term =
      List.fold_left
        (fun acc (s, i) -> Term.add acc (Term.monomial (Rational.of_int s) i))
        Term.zero signs
    in
    Atom.le term (Term.const r)
  in
  make ~dim:d [ List.map facet (patterns 0 []) ]

let halfspace ~dim term = make ~dim [ [ Atom.make term Atom.Le ] ]


(* ---------------- canonical fingerprints ---------------- *)

(* One atom as canonical text.  The term is rescaled so the leading
   non-zero coefficient (first by variable order, else the constant)
   has absolute value 1 — [2x - 2 <= 0] and [x - 1 <= 0] are the same
   constraint and must hash identically.  Equality atoms additionally
   fix the leading sign, since [t = 0] and [-t = 0] coincide.
   Rational.to_string is canonical over the reduced representation, so
   the text (and the hash) is independent of how the coefficients were
   computed — including the Small/Big bigint boundary. *)
let canonical_atom (a : Atom.t) =
  let t = a.Atom.term in
  let lead =
    match Term.coeffs t with (_, c) :: _ -> c | [] -> Term.constant t
  in
  let t =
    if Rational.is_zero lead then t
    else begin
      let scale =
        match a.Atom.op with
        | Atom.Eq -> Rational.inv lead (* sign-normalizing: lead becomes +1 *)
        | Atom.Le | Atom.Lt -> Rational.inv (Rational.abs lead)
      in
      Term.scale scale t
    end
  in
  let op = match a.Atom.op with Atom.Le -> "<=" | Atom.Lt -> "<" | Atom.Eq -> "=" in
  let buf = Buffer.create 32 in
  List.iter
    (fun (i, c) -> Buffer.add_string buf (Printf.sprintf "%d*%s+" i (Rational.to_string c)))
    (Term.coeffs t);
  Buffer.add_string buf (Rational.to_string (Term.constant t));
  Buffer.add_string buf op;
  Buffer.contents buf

let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let fingerprint r =
  let tuple_key tuple =
    String.concat ";" (List.sort_uniq String.compare (List.map canonical_atom tuple))
  in
  let keys = List.sort_uniq String.compare (List.map tuple_key r.tuples) in
  let payload = Printf.sprintf "dim=%d|%s" r.dim (String.concat "|" keys) in
  Printf.sprintf "%016Lx" (fnv64 payload)

let to_text r =
  if r.tuples = [] then "false"
  else Format.asprintf "%a" Formula.pp (Dnf.to_formula r.tuples)

let pp fmt r =
  Format.fprintf fmt "@[<v>dim %d:@ %a@]" r.dim
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun f t ->
         Format.fprintf f "| %a" Formula.pp (Dnf.tuple_to_formula t)))
    r.tuples
