(** Plan-tagged execution: the bridge from static plans to the
    progress bus and the predicted-vs-actual attribution table.

    Builds the same observable tree as {!Eval.observable_of_relation}
    while constructing the matching {!Scdb_plan.Plan.t}, and wraps
    every observable so its sample/volume calls run inside
    [Progress.with_node] with the plan-node id — the accrued actuals
    land on exactly the node whose budget predicted them.  The wrapper
    is transparent to the RNG stream, so flight-recorder replay is
    unaffected. *)

val tag : int -> Observable.t -> Observable.t
(** Wrap sample/volume in [Progress.with_node id]. *)

val observable_of_relation :
  ?config:Convex_obs.config ->
  gamma:float ->
  eps:float ->
  delta:float ->
  task:Scdb_plan.Plan.task ->
  Rng.t ->
  Relation.t ->
  (Scdb_plan.Plan.t * Observable.t) option
(** Build plan and tagged observable together, from the tuples that
    actually yielded observables — plan ids and runtime attribution
    agree by construction. *)

val compiled_of_relation :
  ?config:Convex_obs.config ->
  ?optimize:bool ->
  gamma:float ->
  eps:float ->
  delta:float ->
  task:Scdb_plan.Plan.task ->
  Rng.t ->
  Relation.t ->
  (Scdb_plan.Plan.t * (Scdb_vm.Vm.t, string) result) option
(** The compiled-engine twin of {!observable_of_relation}: identical
    per-tuple preprocessing rng draws and identical plan, but the
    prepared pieces are lowered through {!Scdb_vm.Vm.compile} (strict
    mirror by default; [optimize:true] enables the stream-changing
    cost-based rewrites).  [None] under the same emptiness conditions;
    [Some (plan, Error _)] when the plan has a shape the compiler
    refuses. *)

val arm : ?overrun_factor:float -> Scdb_plan.Plan.t -> unit
(** [Progress.start] with the plan's budget rows. *)

type attribution_row = {
  id : int;
  op : string;
  predicted : float;
  actual : float;
  ratio : float;  (** [actual/predicted]; [nan] when the node never ran *)
  tags : string list;  (** rewrite provenance under the optimized engine *)
}

val attribution : ?program:Scdb_vm.Vm.t -> Scdb_plan.Plan.t -> attribution_row array
(** Join the plan's budgets with the progress bus's accrued actuals,
    in node-id order.  Call after the run, before the next
    [Progress.start].  When the run executed a compiled [program], its
    symbolization table supplies each node's rewrite tags
    ([rejection_box_substituted], [shared_union_leaf],
    [reordered_membership]) so attribution rows carry provenance. *)

val attribution_json : attribution_row array -> string
(** JSON array (two-space indented block) with [null] ratios for nodes
    that never ran. *)

val attribution_text : attribution_row array -> string
(** Fixed-width table for terminals. *)

type budget_row = {
  b_id : int;
  b_op : string;
  b_eps : float;  (** granted ε of the node's own estimation phase *)
  b_delta : float;  (** granted δ *)
  b_predicted : float;  (** predicted work (steps + trials) *)
  b_actual : float;  (** accrued work *)
  b_ratio : float;  (** [actual/predicted]; [nan] when the node never ran *)
  b_delta_achieved : float;
      (** the δ the node's spent work actually buys at its granted ε,
          via {!Scdb_plan.Cost.delta_at_work_ratio}; [nan] when it
          never ran *)
  b_slack : float;  (** [b_delta − b_delta_achieved]; negative = overdrawn *)
}
(** One node of the error-budget attribution: the (ε,δ) sub-contract
    the plan granted ({!Scdb_plan.Plan.error_budget}) joined with the
    work the node actually spent.  Guards carry [nan] throughout. *)

val budget_attribution : Scdb_plan.Plan.t -> attribution_row array -> budget_row array
(** Join grants with runtime actuals, in node-id order — the audit
    block of [spatialdb report] and the [error_budget] section of
    [spatialdb audit] documents. *)

val budget_attribution_json : budget_row array -> string
(** JSON array (two-space indented block); [nan] fields render as
    [null]. *)

val budget_attribution_text : budget_row array -> string
(** Fixed-width table for terminals. *)
