module Plan = Scdb_plan.Plan
module Polytope = Scdb_polytope.Polytope
module Volume = Scdb_sampling.Volume

let method_name (c : Convex_obs.config) =
  match c.Convex_obs.sampler with
  | Convex_obs.Grid_walk -> "grid"
  | Convex_obs.Hit_and_run -> "walk"
  | Convex_obs.Rejection_box -> "rejection"

let volume_budget_of (c : Convex_obs.config) =
  match c.Convex_obs.volume_budget with
  | Volume.Practical n -> Some n
  | Volume.Rigorous -> None

let leaf_node ?(config = Convex_obs.practical_config) ~eps ~delta ~dim tuple =
  Plan.dfk ~eps ~delta ~dim ~method_:(method_name config)
    ~constraints:(List.length tuple)
    ?volume_budget:(volume_budget_of config) ()

(* Static stand-in for the viability checks [Convex_obs.make] performs
   at runtime (empty / unbounded bodies yield no observable): EXPLAIN
   may not sample, so lower-dimensionality — which the runtime detects
   during well-rounding — is not re-checked here. *)
let tuple_viable ~dim tuple =
  let poly = Polytope.of_tuple ~dim tuple in
  (not (Polytope.is_empty poly)) && Polytope.bounding_box poly <> None

let node_of_relation ?(config = Convex_obs.practical_config) ~eps ~delta r =
  let dim = Relation.dim r in
  match List.filter (tuple_viable ~dim) (Relation.tuples r) with
  | [] -> None
  | [ tuple ] -> Some (leaf_node ~config ~eps ~delta ~dim tuple)
  | many ->
      (* Children are costed at the sub-call parameters the union
         threads down: ε/3 generators, δ/(4m) setup volumes. *)
      let m = List.length many in
      let sub_eps = eps /. 3.0 and sub_delta = delta /. float_of_int (4 * m) in
      let children =
        List.map (leaf_node ~config ~eps:sub_eps ~delta:sub_delta ~dim) many
      in
      Some (Plan.union_ ~eps ~delta children)

let of_relation ?config ~gamma ~eps ~delta ~task r =
  Option.map (Plan.finalize ~gamma ~eps ~delta ~task) (node_of_relation ?config ~eps ~delta r)
