module FM = Scdb_qe.Fourier_motzkin
module Tel = Scdb_telemetry.Telemetry
module Log = Scdb_log.Log
module Flightrec = Scdb_log.Flightrec

type args = {
  vars : string list;
  formula : string;
  n : int;
  seed : int;
  eps : float;
  delta : float;
  method_ : string;
  engine : string;
}

type outcome = {
  points : Vec.t list;
  relation : Relation.t;
  rng : Rng.t;
  plan : Scdb_plan.Plan.t;
  program : Scdb_vm.Vm.t option;
  profile : Scdb_profile.Profile.t option;
}

let ( let* ) = Result.bind

(* The CLI's fixed grid parameter: replay must reproduce it exactly,
   so it lives here rather than in bin/. *)
let gamma = 0.05

let sampler_of_method = function
  | "walk" -> Ok Convex_obs.Hit_and_run
  | "grid" -> Ok Convex_obs.Grid_walk
  | "rejection" -> Ok Convex_obs.Rejection_box
  | m -> Error ("unknown method " ^ m)

let check_engine = function
  | ("interp" | "vm" | "vm-opt") as e -> Ok e
  | e -> Error ("unknown engine " ^ e)

let parse_relation a =
  if a.vars = [] then Error "no variables given"
  else begin
    match Parser.parse ~vars:a.vars a.formula with
    | f ->
        let f = if Formula.is_quantifier_free f then f else FM.eliminate f in
        Ok (Relation.of_formula ~dim:(List.length a.vars) f)
    | exception Parser.Parse_error m -> Error ("parse error: " ^ m)
    | exception Lexer.Lex_error (m, pos) -> Error (Printf.sprintf "lex error at %d: %s" pos m)
  end

let run_inner ~track ~progress ~ticker ?overrun_factor ?profile_mode a =
  let* sampler = sampler_of_method a.method_ in
  let* engine = check_engine a.engine in
  let* () =
    if profile_mode <> None && engine = "interp" then
      Error "profiling requires a compiled engine (--engine vm or vm-opt)"
    else Ok ()
  in
  let* relation = parse_relation a in
  if track then begin
    Rng.Provenance.reset ();
    Rng.Provenance.set_tracking true
  end;
  let rng = Rng.create a.seed in
  let config = { Convex_obs.practical_config with Convex_obs.sampler } in
  let task = Scdb_plan.Plan.Sample a.n in
  (* Both engines share the parse, the preprocessing rng draws and the
     plan; they differ only in how the n draws are executed. *)
  let built =
    match engine with
    | "interp" -> (
        match
          Plan_exec.observable_of_relation ~config ~gamma ~eps:a.eps ~delta:a.delta ~task rng
            relation
        with
        | None -> Error "relation is empty, unbounded or lower-dimensional"
        | Some (plan, obs) ->
            let params = Params.make ~gamma ~eps:a.eps ~delta:a.delta () in
            Ok (plan, None, None, fun () -> Observable.sample_many obs rng params ~n:a.n))
    | _ -> (
        let optimize = engine = "vm-opt" in
        match
          Plan_exec.compiled_of_relation ~config ~optimize ~gamma ~eps:a.eps ~delta:a.delta
            ~task rng relation
        with
        | None -> Error "relation is empty, unbounded or lower-dimensional"
        | Some (_, Error m) -> Error ("plan does not compile: " ^ m)
        | Some (plan, Ok prog) -> (
            match profile_mode with
            | None ->
                Ok (plan, Some prog, None, fun () -> Scdb_vm.Vm.sample_many prog rng ~n:a.n)
            | Some mode ->
                let pr = Scdb_profile.Profile.create ~mode prog in
                Ok
                  ( plan,
                    Some prog,
                    Some pr,
                    fun () -> Scdb_profile.Profile.sample_many pr rng ~n:a.n )))
  in
  let* plan, program, profile, draw = built in
  (* Profiled runs arm the bus even without --progress so the per-node
     actual column of the attribution table is populated; the stderr
     ticker is separate so a contexted job can arm its bus for the
     status view without fighting over the terminal. *)
  if progress || profile <> None then Plan_exec.arm ?overrun_factor plan;
  if ticker then Scdb_progress.Progress.start_ticker ();
  let finish_progress () =
    if progress || profile <> None then Scdb_progress.Progress.stop ()
  in
  if Log.would_log Log.Info then
    Log.info "sample.run"
      [
        Log.str "formula" a.formula;
        Log.str "method" a.method_;
        Log.str "engine" engine;
        Log.int "n" a.n;
        Log.int "seed" a.seed;
        Log.float "eps" a.eps;
        Log.float "delta" a.delta;
      ];
  match draw () with
  | points ->
      finish_progress ();
      if Log.would_log Log.Info then
        Log.info "sample.done"
          [ Log.int "points" (List.length points); Log.int "draws" (Rng.draw_count rng) ];
      Ok { points; relation; rng; plan; program; profile }
  | exception Observable.Estimation_failed m ->
      finish_progress ();
      Error m

let run ?ctx ?(track = false) ?(progress = false) ?(ticker = false) ?overrun_factor
    ?profile_mode a =
  let body () = run_inner ~track ~progress ~ticker ?overrun_factor ?profile_mode a in
  match ctx with
  | None -> body ()
  | Some c -> Scdb_obs.Obs.Ctx.run c body

let to_flightrec a (o : outcome) =
  {
    Flightrec.command = "sample";
    args =
      [
        ("vars", String.concat "," a.vars);
        ("formula", a.formula);
        ("n", string_of_int a.n);
        ("eps", Printf.sprintf "%.17g" a.eps);
        ("delta", Printf.sprintf "%.17g" a.delta);
        ("method", a.method_);
        ("engine", a.engine);
      ];
    seed = a.seed;
    samples = o.points;
    lineage = Rng.Provenance.snapshot ();
    telemetry = (if Tel.enabled () then Some (Tel.dump ~only_nonzero:true ()) else None);
    log_tail = Log.tail ();
  }

let args_of_flightrec (r : Flightrec.t) =
  let* () =
    if r.Flightrec.command = "sample" then Ok ()
    else Error (Printf.sprintf "cannot replay %S records (only \"sample\")" r.Flightrec.command)
  in
  let req k = Option.to_result ~none:("record is missing argument " ^ k) (Flightrec.arg r k) in
  let* vars_s = req "vars" in
  let* formula = req "formula" in
  let* n_s = req "n" in
  let* eps_s = req "eps" in
  let* delta_s = req "delta" in
  let* n = Option.to_result ~none:"malformed n" (int_of_string_opt n_s) in
  let* eps = Option.to_result ~none:"malformed eps" (float_of_string_opt eps_s) in
  let* delta = Option.to_result ~none:"malformed delta" (float_of_string_opt delta_s) in
  let vars =
    String.split_on_char ',' vars_s |> List.map String.trim |> List.filter (( <> ) "")
  in
  let method_ = Option.value ~default:"walk" (Flightrec.arg r "method") in
  let engine = Option.value ~default:"interp" (Flightrec.arg r "engine") in
  Ok { vars; formula; n; seed = r.Flightrec.seed; eps; delta; method_; engine }

let total_draws lineage =
  List.fold_left (fun acc (i : Rng.Provenance.info) -> acc + i.Rng.Provenance.draws) 0 lineage

let replay ?engine (r : Flightrec.t) =
  let* a = args_of_flightrec r in
  let a = match engine with Some e -> { a with engine = e } | None -> a in
  let* o = run ~track:true a in
  ignore o.rng;
  let* n = Flightrec.compare_samples ~recorded:r.Flightrec.samples ~replayed:o.points in
  (* The sample stream is the contract, but the draw totals are a
     cheap second opinion: matching points with different draw counts
     means some non-emitting code path changed. *)
  let recorded = total_draws r.Flightrec.lineage in
  let replayed = total_draws (Rng.Provenance.snapshot ()) in
  if r.Flightrec.lineage <> [] && recorded <> replayed then
    Error
      (Printf.sprintf
         "sample stream matches but total RNG draws differ: recorded %d, replayed %d" recorded
         replayed)
  else Ok n
