module FM = Scdb_qe.Fourier_motzkin
module Polytope = Scdb_polytope.Polytope

let rec unfold inst (q : Query.t) : Formula.t =
  match q with
  | Query.Rel (name, args) ->
      let r = Instance.get_exn inst name in
      let arg_arr = Array.of_list args in
      Formula.rename (Relation.to_formula r) (fun i -> arg_arr.(i))
  | Query.Constr a -> Formula.atom a
  | Query.And qs -> Formula.conj (List.map (unfold inst) qs)
  | Query.Or qs -> Formula.disj (List.map (unfold inst) qs)
  | Query.Not q -> Formula.neg (unfold inst q)
  | Query.Exists (vs, q) -> Formula.exists vs (unfold inst q)

let symbolic inst ~free_dim q =
  let f = FM.eliminate (unfold inst q) in
  Relation.of_formula ~dim:free_dim f

let observable_of_relation ?config rng r =
  let dim = Relation.dim r in
  let pieces =
    List.filter_map
      (fun tuple -> Convex_obs.make ?config rng (Relation.make ~dim [ tuple ]))
      (Relation.tuples r)
  in
  match pieces with [] -> None | [ one ] -> Some one | many -> Some (Union.union many)

(* ------------------------------------------------------------------ *)
(* Normalization of queries into disjuncts of                          *)
(*   ∃ ē. (positive-conjunction ∧ ¬guard₁ ∧ … )                        *)
(* ------------------------------------------------------------------ *)

type piece = { evars : int list; pos : Query.t list; neg : Query.t list }

exception Unsupported of string

let empty_piece = { evars = []; pos = []; neg = [] }

let merge_pieces a b = { evars = a.evars @ b.evars; pos = a.pos @ b.pos; neg = a.neg @ b.neg }

(* Push negations to atoms first; [Not] survives only directly above a
   relation atom (a guard).  Constraint atoms negate symbolically. *)
let rec push_not (q : Query.t) : Query.t =
  match q with
  | Query.Rel _ | Query.Constr _ -> q
  | Query.And qs -> Query.conj (List.map push_not qs)
  | Query.Or qs -> Query.disj (List.map push_not qs)
  | Query.Exists (vs, q) -> Query.exists vs (push_not q)
  | Query.Not body -> (
      match body with
      | Query.Rel _ -> q
      | Query.Constr a -> Query.disj (List.map Query.constr (Atom.negate a))
      | Query.Not inner -> push_not inner
      | Query.And qs -> push_not (Query.disj (List.map Query.neg qs))
      | Query.Or qs -> push_not (Query.conj (List.map Query.neg qs))
      | Query.Exists _ -> raise (Unsupported "negated existential (universal quantification)"))

let rec pieces_of (q : Query.t) : piece list =
  match q with
  | Query.Rel _ | Query.Constr _ -> [ { empty_piece with pos = [ q ] } ]
  | Query.Not (Query.Rel _) -> [ { empty_piece with neg = [ q ] } ]
  | Query.Not _ -> raise (Unsupported "negation not pushed to an atom")
  | Query.Or qs -> List.concat_map pieces_of qs
  | Query.And qs ->
      List.fold_left
        (fun acc q ->
          let ps = pieces_of q in
          List.concat_map (fun a -> List.map (merge_pieces a) ps) acc)
        [ empty_piece ] qs
  | Query.Exists (vs, q) ->
      List.map (fun p -> { p with evars = vs @ p.evars }) (pieces_of q)

(* Observable with only a membership oracle: legal as the subtrahend of
   {!Diff.diff}, which never samples or measures it. *)
let membership_only r =
  Observable.make ~relation:r ~dim:(Relation.dim r)
    ~mem:(fun x -> Relation.mem_float ~slack:1e-9 r x)
    ~sample:(fun _ _ -> None)
    ~volume:(fun _ ~gamma:_ ~eps:_ ~delta:_ ->
      raise (Observable.Estimation_failed "membership-only observable"))
    ()

let compile_piece ?config ?poly_degree rng inst ~free_dim piece =
  (* Rename the piece's quantified variables to free_dim, free_dim+1, … *)
  let evars = piece.evars in
  let ambient = free_dim + List.length evars in
  let renaming =
    let table = Hashtbl.create 8 in
    List.iteri (fun k v -> Hashtbl.add table v (free_dim + k)) evars;
    fun i ->
      match Hashtbl.find_opt table i with
      | Some j -> j
      | None ->
          if i < free_dim then i
          else raise (Unsupported (Printf.sprintf "variable x%d is neither free nor quantified" i))
  in
  let pos_formula =
    Formula.rename (Formula.conj (List.map (unfold inst) piece.pos)) renaming
  in
  if not (Formula.is_quantifier_free pos_formula) then
    raise (Unsupported "nested quantifier inside a piece body");
  let pos_relation = Relation.of_formula ~dim:ambient pos_formula in
  match piece.neg with
  | [] when evars = [] -> (
      match observable_of_relation ?config rng pos_relation with
      | Some o -> o
      | None -> raise (Unsupported "piece is empty or unbounded"))
  | [] ->
      (* Positive existential piece: project each convex tuple and take
         the union (π distributes over ∪). *)
      let keep = List.init free_dim Fun.id in
      let projections =
        List.filter_map
          (fun tuple ->
            let poly = Polytope.of_tuple ~dim:ambient tuple in
            Project.project rng poly ~keep)
          (Relation.tuples pos_relation)
      in
      (match projections with
      | [] -> raise (Unsupported "no projectable tuple (empty or unbounded piece)")
      | [ one ] -> one
      | many -> Union.union many)
  | negs ->
      if evars <> [] then
        raise (Unsupported "difference under an existential quantifier");
      let guard_formula =
        Formula.rename (Formula.disj (List.map (fun g -> match g with Query.Not r -> unfold inst r | _ -> assert false) negs)) renaming
      in
      let guard_relation = Relation.of_formula ~dim:free_dim guard_formula in
      (match observable_of_relation ?config rng pos_relation with
      | None -> raise (Unsupported "piece is empty or unbounded")
      | Some pos_obs -> Diff.diff ?poly_degree pos_obs (membership_only guard_relation))

let compile ?config ?poly_degree rng inst ~free_dim q =
  Scdb_trace.Trace.span "eval.compile"
    ~attrs:[ ("free_dim", string_of_int free_dim) ]
  @@ fun () ->
  match Query.well_formed (Instance.schema inst) q with
  | Error e -> Error e
  | Ok () -> (
      try
        let pieces = pieces_of (push_not q) in
        if pieces = [] then Error "query normalizes to the empty disjunction"
        else begin
          let compiled = List.map (compile_piece ?config ?poly_degree rng inst ~free_dim) pieces in
          match compiled with [ one ] -> Ok one | many -> Ok (Union.union many)
        end
      with
      | Unsupported msg -> Error msg
      | Observable.Estimation_failed msg -> Error msg)

let reconstruct ?config ?(samples_per_piece = 150) rng inst ~free_dim q =
  if not (Query.is_positive_existential q) then
    Error "reconstruction requires a positive existential query (Theorem 4.4)"
  else begin
    match Query.well_formed (Instance.schema inst) q with
    | Error e -> Error e
    | Ok () -> (
        try
          let pieces = pieces_of (push_not q) in
          (* One observable per piece, then one hull per piece
             (Algorithm 5): pieces must stay separate so each hull
             covers a convex set. *)
          let piece_observables =
            List.concat_map
              (fun piece ->
                (* Split multi-tuple pieces further: one hull per tuple. *)
                let evars = piece.evars in
                let ambient = free_dim + List.length evars in
                let renaming =
                  let table = Hashtbl.create 8 in
                  List.iteri (fun k v -> Hashtbl.add table v (free_dim + k)) evars;
                  fun i -> match Hashtbl.find_opt table i with Some j -> j | None -> i
                in
                let f = Formula.rename (Formula.conj (List.map (unfold inst) piece.pos)) renaming in
                let r = Relation.of_formula ~dim:ambient f in
                List.filter_map
                  (fun tuple ->
                    if evars = [] then
                      Convex_obs.make ?config rng (Relation.make ~dim:ambient [ tuple ])
                    else begin
                      let poly = Polytope.of_tuple ~dim:ambient tuple in
                      Project.project rng poly ~keep:(List.init free_dim Fun.id)
                    end)
                  (Relation.tuples r))
              pieces
          in
          if piece_observables = [] then Error "no non-empty convex piece to reconstruct"
          else Ok (Reconstruct.union_estimate rng piece_observables ~n:samples_per_piece)
        with
        | Unsupported msg -> Error msg
        | Observable.Estimation_failed msg -> Error msg)
  end
