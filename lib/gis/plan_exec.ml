module Plan = Scdb_plan.Plan
module Progress = Scdb_progress.Progress

let tag id (obs : Observable.t) =
  {
    obs with
    Observable.sample =
      (fun rng params -> Progress.with_node id (fun () -> obs.Observable.sample rng params));
    volume =
      (fun rng ~gamma ~eps ~delta ->
        Progress.with_node id (fun () -> obs.Observable.volume rng ~gamma ~eps ~delta));
  }

let observable_of_relation ?(config = Convex_obs.practical_config) ~gamma ~eps ~delta ~task
    rng r =
  let dim = Relation.dim r in
  let pieces =
    List.filter_map
      (fun tuple ->
        Option.map
          (fun obs -> (tuple, obs))
          (Convex_obs.make ~config rng (Relation.make ~dim [ tuple ])))
      (Relation.tuples r)
  in
  match pieces with
  | [] -> None
  | [ (tuple, obs) ] ->
      let node = Plan_build.leaf_node ~config ~eps ~delta ~dim tuple in
      let plan = Plan.finalize ~gamma ~eps ~delta ~task node in
      Some (plan, tag plan.Plan.root.Plan.id obs)
  | many ->
      let m = List.length many in
      let sub_eps = eps /. 3.0 and sub_delta = delta /. float_of_int (4 * m) in
      let leaves =
        List.map
          (fun (tuple, _) -> Plan_build.leaf_node ~config ~eps:sub_eps ~delta:sub_delta ~dim tuple)
          many
      in
      let plan = Plan.finalize ~gamma ~eps ~delta ~task (Plan.union_ ~eps ~delta leaves) in
      let wrapped =
        List.map2
          (fun child (_, obs) -> tag child.Plan.id obs)
          plan.Plan.root.Plan.children many
      in
      Some (plan, tag plan.Plan.root.Plan.id (Union.union wrapped))

(* Mirror of [observable_of_relation] for the compiled engine: same
   per-tuple preprocessing draws (prepare is the rng half of make), same
   plan, but the pieces feed the plan→kernel compiler instead of the
   interpreter.  Keeping the two in lockstep is what makes [--engine vm]
   replay interpreter-recorded flights bit-for-bit. *)
let compiled_of_relation ?(config = Convex_obs.practical_config) ?(optimize = false) ~gamma
    ~eps ~delta ~task rng r =
  let dim = Relation.dim r in
  let pieces =
    List.filter_map
      (fun tuple ->
        Option.map
          (fun prep -> (tuple, prep))
          (Convex_obs.prepare_relation ~config rng (Relation.make ~dim [ tuple ])))
      (Relation.tuples r)
  in
  match pieces with
  | [] -> None
  | [ (tuple, prep) ] ->
      let node = Plan_build.leaf_node ~config ~eps ~delta ~dim tuple in
      let plan = Plan.finalize ~gamma ~eps ~delta ~task node in
      Some (plan, Scdb_vm.Vm.compile ~optimize ~plan ~pieces:[| prep |] ())
  | many ->
      let m = List.length many in
      let sub_eps = eps /. 3.0 and sub_delta = delta /. float_of_int (4 * m) in
      let leaves =
        List.map
          (fun (tuple, _) -> Plan_build.leaf_node ~config ~eps:sub_eps ~delta:sub_delta ~dim tuple)
          many
      in
      let plan = Plan.finalize ~gamma ~eps ~delta ~task (Plan.union_ ~eps ~delta leaves) in
      let preps = Array.of_list (List.map snd many) in
      Some (plan, Scdb_vm.Vm.compile ~optimize ~plan ~pieces:preps ())

let arm ?overrun_factor plan =
  let rows =
    Array.map (fun (id, label, budget) -> (id, label, budget)) (Plan.budget_rows plan)
  in
  Progress.start ?overrun_factor ~rows ()

type attribution_row = {
  id : int;
  op : string;
  predicted : float;
  actual : float;
  ratio : float;  (** [actual/predicted]; [nan] when the node never ran *)
  tags : string list;  (** rewrite provenance under the optimized engine *)
}

let attribution ?program plan =
  let actuals = Progress.rows () in
  let tags_of =
    match program with
    | None -> fun _ -> []
    | Some prog ->
        let table = Scdb_vm.Vm.rewrite_tags prog in
        fun id -> Option.value (List.assoc_opt id table) ~default:[]
  in
  Array.map
    (fun (id, op, predicted) ->
      let actual =
        if id < Array.length actuals then Progress.row_work actuals.(id) else 0.0
      in
      let ratio =
        if actual <= 0.0 then Float.nan
        else if predicted > 0.0 then actual /. predicted
        else Float.infinity
      in
      { id; op; predicted; actual; ratio; tags = tags_of id })
    (Plan.budget_rows plan)

let attribution_json rows =
  let jnum v =
    if Float.is_nan v then "null"
    else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
    else Printf.sprintf "%.17g" v
  in
  let row r =
    Printf.sprintf
      "    {\"id\": %d, \"op\": \"%s\", \"predicted\": %s, \"actual\": %s, \"ratio\": %s, \"tags\": [%s]}"
      r.id r.op (jnum r.predicted) (jnum r.actual)
      (if Float.is_finite r.ratio then jnum r.ratio else "null")
      (String.concat ", " (List.map (fun t -> "\"" ^ t ^ "\"") r.tags))
  in
  "[\n" ^ String.concat ",\n" (List.map row (Array.to_list rows)) ^ "\n  ]"

type budget_row = {
  b_id : int;
  b_op : string;
  b_eps : float;
  b_delta : float;
  b_predicted : float;
  b_actual : float;
  b_ratio : float;
  b_delta_achieved : float;
  b_slack : float;
}

let budget_attribution plan (attr : attribution_row array) =
  let actuals = Hashtbl.create 16 in
  Array.iter (fun a -> Hashtbl.replace actuals a.id a) attr;
  Array.map
    (fun (g : Scdb_plan.Plan.budget_grant) ->
      let predicted, actual, ratio =
        match Hashtbl.find_opt actuals g.Scdb_plan.Plan.g_id with
        | Some a -> (a.predicted, a.actual, a.ratio)
        | None -> (Float.nan, Float.nan, Float.nan)
      in
      let achieved =
        if Float.is_nan g.Scdb_plan.Plan.g_delta then Float.nan
        else Scdb_plan.Cost.delta_at_work_ratio ~delta:g.Scdb_plan.Plan.g_delta ~ratio
      in
      {
        b_id = g.Scdb_plan.Plan.g_id;
        b_op = g.Scdb_plan.Plan.g_op;
        b_eps = g.Scdb_plan.Plan.g_eps;
        b_delta = g.Scdb_plan.Plan.g_delta;
        b_predicted = predicted;
        b_actual = actual;
        b_ratio = ratio;
        b_delta_achieved = achieved;
        b_slack = g.Scdb_plan.Plan.g_delta -. achieved;
      })
    (Scdb_plan.Plan.error_budget plan)

let budget_attribution_json rows =
  let jnum v =
    if Float.is_nan v then "null"
    else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
    else Printf.sprintf "%.17g" v
  in
  let row r =
    Printf.sprintf
      "    {\"id\": %d, \"op\": \"%s\", \"eps\": %s, \"delta\": %s, \"predicted\": %s, \
       \"actual\": %s, \"ratio\": %s, \"delta_achieved\": %s, \"slack\": %s}"
      r.b_id r.b_op (jnum r.b_eps) (jnum r.b_delta) (jnum r.b_predicted) (jnum r.b_actual)
      (jnum r.b_ratio) (jnum r.b_delta_achieved) (jnum r.b_slack)
  in
  "[\n" ^ String.concat ",\n" (List.map row (Array.to_list rows)) ^ "\n  ]"

let budget_attribution_text rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%4s  %-8s %10s %10s %8s %12s %12s\n" "id" "op" "eps" "delta" "ratio"
       "achieved" "slack");
  Array.iter
    (fun r ->
      let g v = if Float.is_nan v then "-" else Printf.sprintf "%.3g" v in
      Buffer.add_string buf
        (Printf.sprintf "%4d  %-8s %10s %10s %8s %12s %12s\n" r.b_id r.b_op (g r.b_eps)
           (g r.b_delta)
           (if Float.is_finite r.b_ratio then Printf.sprintf "%.2f" r.b_ratio else "-")
           (g r.b_delta_achieved) (g r.b_slack)))
    rows;
  Buffer.contents buf

let attribution_text rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%4s  %-8s %14s %14s %8s  %s\n" "id" "op" "predicted" "actual" "ratio"
       "rewrites");
  Array.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%4d  %-8s %14.3g %14.3g %8s  %s\n" r.id r.op r.predicted r.actual
           (if Float.is_finite r.ratio then Printf.sprintf "%.2f" r.ratio else "-")
           (match r.tags with [] -> "-" | tags -> String.concat "," tags)))
    rows;
  Buffer.contents buf
