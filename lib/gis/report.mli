(** Self-contained run reports ([spatialdb report]).

    Runs a full query pipeline — parse, normalize, build generators,
    sample, estimate volume, and a multi-chain convergence check
    ({!Scdb_core.Diag_run}) — with tracing and telemetry enabled, and
    packages everything into one JSON document (schema
    [spatialdb-report/1]) embedding:

    - the CLI-equivalent arguments (vars, formula, seed, ε, δ, …);
    - the drawn samples and the volume estimate;
    - per-chain ESS, split-R̂ per coordinate and a convergence verdict;
    - the telemetry snapshot ([spatialdb-telemetry/2]);
    - the full Chrome trace (loadable in Perfetto as-is).

    The previous telemetry/trace enabled states are restored on exit;
    the recorded spans and counters reflect only this run. *)

type t = {
  json : string;  (** the [spatialdb-report/1] document *)
  chrome_trace : string;  (** raw Chrome trace-event JSON *)
  text_tree : string;  (** indented text rendering of the spans *)
}

val generate :
  ?eps:float ->
  ?delta:float ->
  ?samples:int ->
  ?chains:int ->
  ?samples_per_chain:int ->
  vars:string list ->
  formula:string ->
  seed:int ->
  unit ->
  (t, string) result
(** Defaults: [eps = 0.2], [delta = 0.1], [samples = 10],
    [chains = Diag_run.default_chains],
    [samples_per_chain = Diag_run.default_samples_per_chain].
    [Error reason] on parse errors or empty/unbounded relations. *)
