(** Self-contained run reports ([spatialdb report]).

    Runs a full query pipeline — parse, normalize, build generators,
    sample, estimate volume, and a multi-chain convergence check
    ({!Scdb_core.Diag_run}) — with tracing and telemetry enabled, and
    packages everything into one JSON document (schema
    [spatialdb-report/4]) embedding:

    - the CLI-equivalent arguments (vars, formula, seed, ε, δ, …);
    - the drawn samples and the volume estimate;
    - the cost-model plan ([spatialdb-plan/1], task [Report n]) and the
      predicted-vs-actual cost attribution per plan node (absolute work
      in steps + trials, and the actual/predicted ratio — [null] for
      nodes that never ran);
    - per-chain ESS, split-R̂ per coordinate and a convergence verdict;
    - the telemetry snapshot ([spatialdb-telemetry/2]);
    - the full Chrome trace (loadable in Perfetto as-is).

    The progress bus is armed around the planned work (sampling and the
    volume estimate); the diagnostics run outside it so they cannot
    pollute the attribution.  The previous telemetry/trace enabled
    states are restored on exit; the recorded spans and counters
    reflect only this run. *)

type t = {
  json : string;  (** the [spatialdb-report/4] document *)
  chrome_trace : string;  (** raw Chrome trace-event JSON *)
  text_tree : string;  (** indented text rendering of the spans *)
}

val generate :
  ?eps:float ->
  ?delta:float ->
  ?samples:int ->
  ?chains:int ->
  ?samples_per_chain:int ->
  ?progress:bool ->
  ?overrun_factor:float ->
  ?engine:string ->
  vars:string list ->
  formula:string ->
  seed:int ->
  unit ->
  (t, string) result
(** Defaults: [eps = 0.2], [delta = 0.1], [samples = 10],
    [chains = Diag_run.default_chains],
    [samples_per_chain = Diag_run.default_samples_per_chain].
    [progress] additionally runs the live stderr ticker;
    [overrun_factor] tunes the budget watchdog (default 4).
    [engine] is ["interp"] (default), ["vm"] or ["vm-opt"]; the
    compiled engines run the draws through the instruction profiler
    (timing mode) and embed the [spatialdb-profile/1] document under
    the report's ["profile"] key, with rewrite tags on the
    attribution rows.
    [Error reason] on parse errors or empty/unbounded relations. *)
