module Tel = Scdb_telemetry.Telemetry
module Trace = Scdb_trace.Trace
module FM = Scdb_qe.Fourier_motzkin
module Polytope = Scdb_polytope.Polytope

type t = { json : string; chrome_trace : string; text_tree : string }

let json_float v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let generate ?(eps = 0.2) ?(delta = 0.1) ?(samples = 10)
    ?(chains = Diag_run.default_chains)
    ?(samples_per_chain = Diag_run.default_samples_per_chain) ?(progress = false)
    ?overrun_factor ?(engine = "interp") ~vars ~formula ~seed () =
  if vars = [] then Error "no variables given"
  else if not (List.mem engine [ "interp"; "vm"; "vm-opt" ]) then
    Error ("unknown engine " ^ engine)
  else begin
    let tel_was = Tel.enabled () and trace_was = Trace.enabled () in
    Tel.set_enabled true;
    Tel.reset ();
    Trace.set_enabled true;
    Trace.reset ();
    let dim = List.length vars in
    let rng = Rng.create seed in
    let result =
      Trace.span "report"
        ~attrs:[ ("seed", string_of_int seed); ("dim", string_of_int dim) ]
      @@ fun () ->
      let parsed =
        Trace.span "formula.parse" (fun () ->
            match Parser.parse ~vars formula with
            | f -> Ok f
            | exception Parser.Parse_error m -> Error ("parse error: " ^ m)
            | exception Lexer.Lex_error (m, pos) ->
                Error (Printf.sprintf "lex error at %d: %s" pos m))
      in
      match parsed with
      | Error e -> Error e
      | Ok f -> (
          let f =
            if Formula.is_quantifier_free f then f
            else Trace.span "qe.eliminate" (fun () -> FM.eliminate f)
          in
          let relation = Relation.of_formula ~dim f in
          let task = Scdb_plan.Plan.Report samples in
          let built =
            (* The progress bus collects per-node actuals for the
               attribution table; armed only around the planned work
               (diagnostics below are outside the plan and must not
               pollute the root's actuals). *)
            match engine with
            | "interp" -> (
                match
                  Plan_exec.observable_of_relation ~config:Convex_obs.practical_config
                    ~gamma:0.05 ~eps ~delta ~task rng relation
                with
                | None -> Error "relation is empty, unbounded or lower-dimensional"
                | Some (plan, obs) ->
                    Plan_exec.arm ?overrun_factor plan;
                    if progress then Scdb_progress.Progress.start_ticker ();
                    let params = Params.make ~gamma:0.05 ~eps ~delta () in
                    let pts =
                      Trace.span "report.sample" ~attrs:[ ("n", string_of_int samples) ]
                        (fun () -> Observable.sample_many obs rng params ~n:samples)
                    in
                    let vol =
                      Trace.span "report.volume" (fun () ->
                          match Observable.volume obs rng ~eps ~delta with
                          | v -> Some v
                          | exception Observable.Estimation_failed _ -> None)
                    in
                    let attribution = Plan_exec.attribution plan in
                    Scdb_progress.Progress.stop ();
                    Ok (plan, attribution, pts, vol, None))
            | _ -> (
                (* Compiled engines: draws run through the instruction
                   profiler (timing mode — a report is a diagnostic
                   document), volume through the program's interpreted
                   mirror, and the attribution rows carry the
                   compiler's rewrite tags. *)
                let optimize = engine = "vm-opt" in
                match
                  Plan_exec.compiled_of_relation ~config:Convex_obs.practical_config
                    ~optimize ~gamma:0.05 ~eps ~delta ~task rng relation
                with
                | None -> Error "relation is empty, unbounded or lower-dimensional"
                | Some (_, Error m) -> Error ("plan does not compile: " ^ m)
                | Some (plan, Ok prog) -> (
                    Plan_exec.arm ?overrun_factor plan;
                    if progress then Scdb_progress.Progress.start_ticker ();
                    let profile =
                      Scdb_profile.Profile.create ~mode:Scdb_profile.Profile.Timing prog
                    in
                    match
                      Trace.span "report.sample" ~attrs:[ ("n", string_of_int samples) ]
                        (fun () -> Scdb_profile.Profile.sample_many profile rng ~n:samples)
                    with
                    | pts ->
                        let vol =
                          Trace.span "report.volume" (fun () ->
                              match
                                Observable.volume (Scdb_vm.Vm.mirror prog) rng ~eps ~delta
                              with
                              | v -> Some v
                              | exception Observable.Estimation_failed _ -> None)
                        in
                        let attribution = Plan_exec.attribution ~program:prog plan in
                        Scdb_progress.Progress.stop ();
                        Ok
                          ( plan,
                            attribution,
                            pts,
                            vol,
                            Some (Scdb_profile.Profile.to_json ~plan profile) )
                    | exception Observable.Estimation_failed m ->
                        Scdb_progress.Progress.stop ();
                        Error ("sampling failed: " ^ m)))
          in
          match built with
          | Error e -> Error e
          | Ok (plan, attribution, pts, vol, profile_json) ->
              let diag =
                match Relation.tuples relation with
                | tuple :: _ ->
                    Diag_run.run ~chains ~samples_per_chain rng
                      (Polytope.of_tuple ~dim tuple)
                | [] -> None
              in
              Ok (relation, plan, attribution, pts, vol, diag, profile_json))
    in
    (* Export after the root span closes so every duration is final. *)
    let out =
      match result with
      | Error e -> Error e
      | Ok (relation, plan, attribution, pts, vol, diag, profile_json) ->
          let chrome = Trace.to_chrome_json () in
          let text = Trace.to_text_tree () in
          let telemetry = Tel.dump ~only_nonzero:true () in
          let buf = Buffer.create 8192 in
          let add = Buffer.add_string buf in
          add "{\n";
          add "  \"schema\": \"spatialdb-report/4\",\n";
          add "  \"args\": {\n";
          add
            (Printf.sprintf "    \"vars\": [%s],\n"
               (String.concat ", "
                  (List.map (fun v -> "\"" ^ Trace.json_escape v ^ "\"") vars)));
          add (Printf.sprintf "    \"formula\": \"%s\",\n" (Trace.json_escape formula));
          add (Printf.sprintf "    \"engine\": \"%s\",\n" (Trace.json_escape engine));
          add (Printf.sprintf "    \"seed\": %d,\n" seed);
          add (Printf.sprintf "    \"eps\": %s,\n" (json_float eps));
          add (Printf.sprintf "    \"delta\": %s,\n" (json_float delta));
          add (Printf.sprintf "    \"samples\": %d,\n" samples);
          add (Printf.sprintf "    \"chains\": %d,\n" chains);
          add (Printf.sprintf "    \"samples_per_chain\": %d\n" samples_per_chain);
          add "  },\n";
          add (Printf.sprintf "  \"dim\": %d,\n" dim);
          add (Printf.sprintf "  \"tuples\": %d,\n" (List.length (Relation.tuples relation)));
          add "  \"samples\": [\n";
          add
            (String.concat ",\n"
               (List.map
                  (fun p ->
                    "    ["
                    ^ String.concat ", "
                        (List.map json_float (Array.to_list p))
                    ^ "]")
                  pts));
          add "\n  ],\n";
          add
            (Printf.sprintf "  \"volume\": %s,\n"
               (match vol with Some v -> json_float v | None -> "null"));
          add "  \"plan\": ";
          add
            (String.concat "\n  "
               (String.split_on_char '\n' (String.trim (Scdb_plan.Plan.to_json plan))));
          add ",\n";
          add "  \"cost_attribution\": ";
          add (Plan_exec.attribution_json attribution);
          add ",\n";
          (* The accuracy twin of cost_attribution: the (ε,δ) grants
             each node received, the δ its spent work actually bought,
             and the remaining slack — keyed by the relation's
             canonical fingerprint (the future cache key). *)
          add "  \"audit\": {\n";
          add
            (Printf.sprintf "    \"fingerprint\": \"%s\",\n" (Relation.fingerprint relation));
          add "    \"error_budget\": ";
          add (Plan_exec.budget_attribution_json (Plan_exec.budget_attribution plan attribution));
          add "\n  },\n";
          add "  \"diagnostics\": ";
          (match diag with
          | Some d ->
              add
                (String.concat "\n  "
                   (String.split_on_char '\n' (Diag_run.to_json d)))
          | None -> add "null");
          add ",\n";
          add "  \"profile\": ";
          (match profile_json with
          | Some pj -> add (String.concat "\n  " (String.split_on_char '\n' (String.trim pj)))
          | None -> add "null");
          add ",\n";
          add (Printf.sprintf "  \"span_count\": %d,\n" (Trace.count ()));
          add "  \"telemetry\": ";
          add (String.concat "\n  " (String.split_on_char '\n' telemetry));
          add ",\n";
          add "  \"trace\": ";
          add chrome;
          add "\n}\n";
          Ok { json = Buffer.contents buf; chrome_trace = chrome; text_tree = text }
    in
    Tel.set_enabled tel_was;
    Trace.set_enabled trace_was;
    out
  end
