module Tel = Scdb_telemetry.Telemetry
module Trace = Scdb_trace.Trace
module FM = Scdb_qe.Fourier_motzkin
module Polytope = Scdb_polytope.Polytope

type t = { json : string; chrome_trace : string; text_tree : string }

let json_float v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let generate ?(eps = 0.2) ?(delta = 0.1) ?(samples = 10)
    ?(chains = Diag_run.default_chains)
    ?(samples_per_chain = Diag_run.default_samples_per_chain) ?(progress = false)
    ?overrun_factor ~vars ~formula ~seed () =
  if vars = [] then Error "no variables given"
  else begin
    let tel_was = Tel.enabled () and trace_was = Trace.enabled () in
    Tel.set_enabled true;
    Tel.reset ();
    Trace.set_enabled true;
    Trace.reset ();
    let dim = List.length vars in
    let rng = Rng.create seed in
    let result =
      Trace.span "report"
        ~attrs:[ ("seed", string_of_int seed); ("dim", string_of_int dim) ]
      @@ fun () ->
      let parsed =
        Trace.span "formula.parse" (fun () ->
            match Parser.parse ~vars formula with
            | f -> Ok f
            | exception Parser.Parse_error m -> Error ("parse error: " ^ m)
            | exception Lexer.Lex_error (m, pos) ->
                Error (Printf.sprintf "lex error at %d: %s" pos m))
      in
      match parsed with
      | Error e -> Error e
      | Ok f -> (
          let f =
            if Formula.is_quantifier_free f then f
            else Trace.span "qe.eliminate" (fun () -> FM.eliminate f)
          in
          let relation = Relation.of_formula ~dim f in
          match
            Plan_exec.observable_of_relation ~config:Convex_obs.practical_config ~gamma:0.05
              ~eps ~delta ~task:(Scdb_plan.Plan.Report samples) rng relation
          with
          | None -> Error "relation is empty, unbounded or lower-dimensional"
          | Some (plan, obs) ->
              (* The progress bus collects per-node actuals for the
                 attribution table; armed only around the planned work
                 (diagnostics below are outside the plan and must not
                 pollute the root's actuals). *)
              Plan_exec.arm ?overrun_factor plan;
              if progress then Scdb_progress.Progress.start_ticker ();
              let params = Params.make ~gamma:0.05 ~eps ~delta () in
              let pts =
                Trace.span "report.sample" ~attrs:[ ("n", string_of_int samples) ]
                  (fun () -> Observable.sample_many obs rng params ~n:samples)
              in
              let vol =
                Trace.span "report.volume" (fun () ->
                    match Observable.volume obs rng ~eps ~delta with
                    | v -> Some v
                    | exception Observable.Estimation_failed _ -> None)
              in
              let attribution = Plan_exec.attribution plan in
              Scdb_progress.Progress.stop ();
              let diag =
                match Relation.tuples relation with
                | tuple :: _ ->
                    Diag_run.run ~chains ~samples_per_chain rng
                      (Polytope.of_tuple ~dim tuple)
                | [] -> None
              in
              Ok (relation, plan, attribution, pts, vol, diag))
    in
    (* Export after the root span closes so every duration is final. *)
    let out =
      match result with
      | Error e -> Error e
      | Ok (relation, plan, attribution, pts, vol, diag) ->
          let chrome = Trace.to_chrome_json () in
          let text = Trace.to_text_tree () in
          let telemetry = Tel.dump ~only_nonzero:true () in
          let buf = Buffer.create 8192 in
          let add = Buffer.add_string buf in
          add "{\n";
          add "  \"schema\": \"spatialdb-report/2\",\n";
          add "  \"args\": {\n";
          add
            (Printf.sprintf "    \"vars\": [%s],\n"
               (String.concat ", "
                  (List.map (fun v -> "\"" ^ Trace.json_escape v ^ "\"") vars)));
          add (Printf.sprintf "    \"formula\": \"%s\",\n" (Trace.json_escape formula));
          add (Printf.sprintf "    \"seed\": %d,\n" seed);
          add (Printf.sprintf "    \"eps\": %s,\n" (json_float eps));
          add (Printf.sprintf "    \"delta\": %s,\n" (json_float delta));
          add (Printf.sprintf "    \"samples\": %d,\n" samples);
          add (Printf.sprintf "    \"chains\": %d,\n" chains);
          add (Printf.sprintf "    \"samples_per_chain\": %d\n" samples_per_chain);
          add "  },\n";
          add (Printf.sprintf "  \"dim\": %d,\n" dim);
          add (Printf.sprintf "  \"tuples\": %d,\n" (List.length (Relation.tuples relation)));
          add "  \"samples\": [\n";
          add
            (String.concat ",\n"
               (List.map
                  (fun p ->
                    "    ["
                    ^ String.concat ", "
                        (List.map json_float (Array.to_list p))
                    ^ "]")
                  pts));
          add "\n  ],\n";
          add
            (Printf.sprintf "  \"volume\": %s,\n"
               (match vol with Some v -> json_float v | None -> "null"));
          add "  \"plan\": ";
          add
            (String.concat "\n  "
               (String.split_on_char '\n' (String.trim (Scdb_plan.Plan.to_json plan))));
          add ",\n";
          add "  \"cost_attribution\": ";
          add (Plan_exec.attribution_json attribution);
          add ",\n";
          add "  \"diagnostics\": ";
          (match diag with
          | Some d ->
              add
                (String.concat "\n  "
                   (String.split_on_char '\n' (Diag_run.to_json d)))
          | None -> add "null");
          add ",\n";
          add (Printf.sprintf "  \"span_count\": %d,\n" (Trace.count ()));
          add "  \"telemetry\": ";
          add (String.concat "\n  " (String.split_on_char '\n' telemetry));
          add ",\n";
          add "  \"trace\": ";
          add chrome;
          add "\n}\n";
          Ok { json = Buffer.contents buf; chrome_trace = chrome; text_tree = text }
    in
    Tel.set_enabled tel_was;
    Trace.set_enabled trace_was;
    out
  end
