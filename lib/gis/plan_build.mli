(** Static query plans for GIS relations — the EXPLAIN path.

    Mirrors {!Eval.observable_of_relation} without touching an RNG:
    every viable generalized tuple becomes a DFK leaf (costed for the
    configured sampler and volume budget), and multi-tuple relations
    get a Karp–Luby union root whose children are costed at the
    sub-call parameters the runtime threads down (ε/3, δ/(4m)).
    Nothing is sampled; viability is the static polytope check
    (non-empty, bounded), a conservative stand-in for the runtime's
    well-rounding test. *)

val method_name : Convex_obs.config -> string
(** ["walk"], ["grid"] or ["rejection"] — the plan-leaf method label
    for a sampler configuration. *)

val leaf_node :
  ?config:Convex_obs.config ->
  eps:float ->
  delta:float ->
  dim:int ->
  Scdb_constr.Dnf.tuple ->
  Scdb_plan.Plan.node
(** Unchecked DFK leaf for one tuple (the executor calls this for
    tuples it has already built an observable for).  Default config is
    {!Convex_obs.practical_config}. *)

val node_of_relation :
  ?config:Convex_obs.config ->
  eps:float ->
  delta:float ->
  Relation.t ->
  Scdb_plan.Plan.node option
(** Plan tree for a relation: [None] when no tuple is viable. *)

val of_relation :
  ?config:Convex_obs.config ->
  gamma:float ->
  eps:float ->
  delta:float ->
  task:Scdb_plan.Plan.task ->
  Relation.t ->
  Scdb_plan.Plan.t option
(** {!node_of_relation} followed by [Plan.finalize]. *)
