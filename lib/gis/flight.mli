(** Flight-recorded sampling runs: one code path for the CLI, the
    recorder and the replayer.

    {!Scdb_log.Flightrec} owns the record {e format}; this module owns
    its {e semantics} — it can see the parser, the evaluator and the
    observable pipeline, so it is the layer that turns a record back
    into an execution.  [spatialdb sample] runs through {!run} whether
    or not a record is being captured, which is what makes replay
    meaningful: the recorded stream and the replayed stream come from
    literally the same code. *)

type args = {
  vars : string list;  (** free variables, fixing dimension and coordinate order *)
  formula : string;  (** FO+LIN source text *)
  n : int;  (** points to draw *)
  seed : int;
  eps : float;
  delta : float;
  method_ : string;  (** ["walk"], ["grid"] or ["rejection"] *)
  engine : string;
      (** ["interp"] (the observable interpreter), ["vm"] (the strict
          compiled engine — same rng stream as the interpreter) or
          ["vm-opt"] (compiled with cost-based rewrites; same
          distribution, different stream) *)
}

val gamma : float
(** The CLI's fixed grid parameter (0.05): replay and the cost model
    must reproduce it exactly, so it lives here rather than in bin/. *)

type outcome = {
  points : Vec.t list;  (** the emitted sample stream, in order *)
  relation : Relation.t;  (** the parsed (and quantifier-eliminated) relation *)
  rng : Rng.t;  (** the root generator, post-run (for follow-on work like [--diag]) *)
  plan : Scdb_plan.Plan.t;
      (** the cost-model plan the run was budgeted against (task
          [Sample n]); with [~progress:true] its predicted-vs-actual
          attribution is readable via {!Plan_exec.attribution} after
          the run *)
  program : Scdb_vm.Vm.t option;
      (** the compiled program, under [--engine vm|vm-opt] (supplies
          rewrite tags to {!Plan_exec.attribution}) *)
  profile : Scdb_profile.Profile.t option;  (** filled when [profile_mode] was given *)
}

val run :
  ?ctx:Scdb_obs.Obs.Ctx.t ->
  ?track:bool ->
  ?progress:bool ->
  ?ticker:bool ->
  ?overrun_factor:float ->
  ?profile_mode:Scdb_profile.Profile.mode ->
  args ->
  (outcome, string) result
(** Parse, build the plan-tagged observable, draw [n] points.  With
    [~ctx] the whole run executes with that observability context
    installed ({!Scdb_obs.Obs.Ctx.run}), so every metric, span, event,
    accrual and lineage node lands in the context's stores instead of
    the process globals.  With [~track:true] the RNG provenance
    registry is reset and enabled first, so the lineage tree in
    {!to_flightrec} is complete and its ids are reproducible.  With
    [~progress:true] the (ambient) progress bus is armed with the
    plan's budgets ([overrun_factor] tunes the watchdog);
    [~ticker:true] additionally runs the stderr progress ticker for
    the duration — kept separate so concurrent contexted jobs can arm
    their buses for the status view without fighting over the
    terminal.  [profile_mode] (compiled engines only — an [Error]
    under ["interp"]) attaches an instruction profiler and arms the
    progress bus ticker-free, so the outcome carries both the profile
    and readable attribution.  None of these options perturb the RNG
    stream, so replay is unaffected.  Emits [sample.run] /
    [sample.done] info events. *)

val to_flightrec : args -> outcome -> Scdb_log.Flightrec.t
(** Snapshot a finished run as a [spatialdb-flightrec/1] record
    (current provenance registry, telemetry dump if collection is on,
    and the log ring tail). *)

val args_of_flightrec : Scdb_log.Flightrec.t -> (args, string) result
(** Recover the run arguments from a record.  Fails on records written
    by a different subcommand or with missing/malformed arguments. *)

val replay : ?engine:string -> Scdb_log.Flightrec.t -> (int, string) result
(** Re-execute a record with provenance tracking and compare the
    replayed stream bit-for-bit against the recorded one
    ({!Scdb_log.Flightrec.compare_samples}), then cross-check total
    RNG draw counts against the recorded lineage.  [Ok n] returns the
    verified stream length; any divergence reports the first differing
    sample, coordinate and both values.  [engine] overrides the
    record's engine — replaying an interpreter-recorded flight with
    [~engine:"vm"] (or vice versa) is the differential test that the
    compiled engine is a bit-exact mirror. *)
