type t = {
  transform : Affine.t;
  rounded : Polytope.t;
  centre : Vec.t;
  r_inf : float;
  r_sup : float;
}

let covariance points mean =
  let d = Vec.dim mean in
  let n = float_of_int (List.length points) in
  let c = Mat.create d d in
  List.iter
    (fun p ->
      let delta = Vec.sub p mean in
      for i = 0 to d - 1 do
        for j = 0 to d - 1 do
          c.(i).(j) <- c.(i).(j) +. (delta.(i) *. delta.(j) /. n)
        done
      done)
    points;
  (* Small ridge keeps the Cholesky factor well-defined on degenerate
     sample clouds. *)
  for i = 0 to d - 1 do
    c.(i).(i) <- c.(i).(i) +. 1e-9
  done;
  c

(* Affine map recentring the Chebyshev centre at the origin and scaling
   the inscribed ball to radius 1. *)
let recentre poly =
  match Polytope.chebyshev poly with
  | None -> None
  | Some (centre, r) when r > 0.0 ->
      let d = Polytope.dim poly in
      let scale = Mat.init d d (fun i j -> if i = j then 1.0 /. r else 0.0) in
      Affine.make scale (Vec.scale (-1.0 /. r) centre)
  | Some _ -> None

let round rng ?(rounds = 2) ?samples_per_round poly =
  let d = Polytope.dim poly in
  let samples_per_round = Option.value samples_per_round ~default:(16 * d) in
  if Polytope.is_empty poly || not (Polytope.is_bounded poly) then None
  else begin
    Scdb_trace.Trace.span "rounding.round"
      ~attrs:
        [ ("dim", string_of_int d); ("rounds", string_of_int rounds);
          ("samples_per_round", string_of_int samples_per_round) ]
    @@ fun () ->
    match recentre poly with
    | None -> None
    | Some t0 ->
        let transform = ref t0 in
        let body = ref (Polytope.transform t0 poly) in
        for _ = 1 to rounds do
          let steps = Hit_and_run.default_steps ~dim:d in
          let start = ref (Vec.create d) in
          let points =
            List.init samples_per_round (fun _ ->
                let p = Hit_and_run.sample_polytope rng !body ~start:!start ~steps in
                start := p;
                p)
          in
          let n = float_of_int samples_per_round in
          let mean =
            Vec.scale (1.0 /. n) (List.fold_left Vec.add (Vec.create d) points)
          in
          let cov = covariance points mean in
          (match Mat.cholesky cov with
          | None -> () (* degenerate cloud: skip the whitening round *)
          | Some l -> (
              match Mat.inv l with
              | None -> ()
              | Some l_inv -> (
                  match Affine.make l_inv (Vec.neg (Mat.mul_vec l_inv mean)) with
                  | None -> ()
                  | Some whiten ->
                      body := Polytope.transform whiten !body;
                      transform := Affine.compose whiten !transform)));
          (* Keep the Chebyshev centre at the origin between rounds. *)
          match recentre !body with
          | None -> ()
          | Some re ->
              body := Polytope.transform re !body;
              transform := Affine.compose re !transform
        done;
        (match recentre !body with
        | Some re ->
            body := Polytope.transform re !body;
            transform := Affine.compose re !transform
        | None -> ());
        (match Polytope.sandwich !body with
        | None -> None
        | Some (centre, r_inf, r_sup) ->
            Some { transform = !transform; rounded = !body; centre; r_inf; r_sup })
  end

let aspect_ratio t = t.r_sup /. t.r_inf
