(** Metropolis ball walk on a convex body.

    The third classical sampler (next to the lattice walk and
    hit-and-run): propose a uniform point in the δ-ball around the
    current position and move iff it stays inside.  The proposal is
    symmetric, so the stationary distribution is uniform.  Step size
    trades acceptance rate against mixing; the default follows the
    usual δ = Θ(r/√d) rule for a body with inscribed radius r. *)

type stats = { steps : int; accepted : int }

val default_radius : dim:int -> r_inscribed:float -> float

val walk :
  ?monitor:Scdb_diag.Diag.Monitor.t ->
  Rng.t ->
  mem:(Vec.t -> bool) ->
  start:Vec.t ->
  steps:int ->
  radius:float ->
  Vec.t * stats
(** Final position and acceptance statistics.  The start must satisfy
    [mem]. @raise Invalid_argument otherwise.  When a [monitor] is
    attached, every step records the chain position and an
    accept/reject event. *)

val sample_polytope :
  ?monitor:Scdb_diag.Diag.Monitor.t ->
  Rng.t -> Polytope.t -> start:Vec.t -> steps:int -> ?radius:float -> unit -> Vec.t
(** Ball walk with the polytope membership oracle; the default radius
    uses the Chebyshev radius of the body. *)

val sample_polytope_batch :
  ?monitors:Scdb_diag.Diag.Monitor.t array ->
  ?dir_mode:Hit_and_run.dir_mode ->
  Rng.t array ->
  Polytope.t ->
  starts:Vec.t array ->
  steps:int ->
  ?radius:float ->
  unit ->
  Vec.t array
(** K Metropolis ball chains on the batched kernel
    ({!Polytope.Kernel.Batch}): one shared pass evaluates all K
    proposals per step against the cached row products instead of K
    from-scratch membership tests.  Chain [c] consumes only [rngs.(c)];
    [Compat] matches {!walk}'s per-chain ball-point stream, [Fast]
    (default for K > 1) uses the ziggurat stream.  Accounting is per
    invocation.
    @raise Invalid_argument on empty/mismatched arrays or a degenerate
    body with no explicit [radius]. *)
