(** The Dyer–Frieze–Kannan lattice walk.

    Lazy simple random walk on the graph induced by a γ-grid on a
    convex body, driven by a membership oracle only.  Transition
    probabilities are symmetric ([1/(4d)] to each of the [2d] lattice
    neighbours that stay inside, laziness [1/2]), so the stationary
    distribution is exactly uniform on the vertex set; rapid mixing on
    well-rounded bodies is the DFK theorem this repository measures in
    experiment E2. *)

type oracle = Vec.t -> bool

val default_steps : dim:int -> eps:float -> int
(** Practical mixing schedule [O(d³ ln(1/ε))] (the d¹⁹ of the original
    analysis is a worst-case bound, not a recipe). *)

val walk :
  ?monitor:Scdb_diag.Diag.Monitor.t ->
  Rng.t -> grid:Grid.t -> mem:oracle -> start:int array -> steps:int -> int array
(** Final lattice vertex after [steps] transitions.  The start vertex
    must satisfy the oracle. @raise Invalid_argument otherwise.  When a
    [monitor] is attached, every step records the chain position and
    every non-lazy proposal an accept/reject event. *)

val sample :
  ?monitor:Scdb_diag.Diag.Monitor.t ->
  Rng.t -> grid:Grid.t -> mem:oracle -> start:Vec.t -> steps:int -> Vec.t
(** [walk] wrapped to float points: rounds [start] to the grid and
    returns the final vertex as a point. *)

val sample_polytope :
  ?monitor:Scdb_diag.Diag.Monitor.t ->
  Rng.t -> grid:Grid.t -> Polytope.t -> start:Vec.t -> steps:int -> Vec.t
(** Specialization with the polytope membership oracle, run on the
    incremental cached-product kernel ({!Polytope.Kernel}): a lattice
    move tests and commits in [O(m)] column updates instead of the
    [O(m·d)] oracle evaluation, with no per-step allocation.  Consumes
    the same rng stream as [sample] with the equivalent oracle. *)

val sample_polytope_batch :
  ?monitors:Scdb_diag.Diag.Monitor.t array ->
  Rng.t array ->
  grid:Grid.t ->
  Polytope.t ->
  starts:Vec.t array ->
  steps:int ->
  Vec.t array
(** K lattice chains on the batched kernel
    ({!Polytope.Kernel.Batch}).  Chain [c] consumes only [rngs.(c)]
    with the same draw order as {!sample_polytope}, so each chain is
    bit-identical to a single-chain run from the same rng and start;
    telemetry/progress accounting is per invocation.
    @raise Invalid_argument on empty/mismatched arrays or a start
    outside the body. *)

val trajectory :
  Rng.t -> grid:Grid.t -> mem:oracle -> start:int array -> steps:int -> int array list
(** All visited vertices (for mixing diagnostics), most recent first. *)
