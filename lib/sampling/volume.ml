module Tel = Scdb_telemetry.Telemetry
module Trace = Scdb_trace.Trace
module Log = Scdb_log.Log

let tel_estimates = Tel.Counter.make "volume.estimates"
let tel_phases = Tel.Counter.make "volume.phases"
let tel_samples = Tel.Counter.make "volume.samples"
let tel_ratio = Tel.Histogram.make "volume.phase_ratio"

type sampler = Grid_walk | Hit_and_run

type budget = Rigorous | Practical of int

type report = {
  volume : float;
  phases : int;
  samples_per_phase : int;
  walk_steps : int;
  rounding_ratio : float;
}

let rec ball_volume ~dim ~radius =
  match dim with
  | 0 -> 1.0
  | 1 -> 2.0 *. radius
  | d -> ball_volume ~dim:(d - 2) ~radius *. 2.0 *. Float.pi *. radius *. radius /. float_of_int d

(* Sample one point of [poly ∩ B(0, radius)], warm-started. *)
let phase_sample rng ~sampler ~poly ~radius ~walk_steps ~grid_gamma start =
  match sampler with
  | Hit_and_run ->
      let chord =
        Hit_and_run.intersect_chords
          [ Hit_and_run.polytope_chord poly; Hit_and_run.ball_chord ~centre:(Vec.create (Polytope.dim poly)) ~radius ]
      in
      Hit_and_run.sample rng ~chord ~start ~steps:walk_steps
  | Grid_walk ->
      let dim = Polytope.dim poly in
      let grid = Grid.step_for ~gamma:grid_gamma ~dim ~scale:radius in
      let mem x = Polytope.mem poly x && Vec.norm x <= radius in
      (* The origin is interior (inscribed unit ball), so its lattice
         vertex is a valid start. *)
      let start = if mem (Grid.round_to_grid grid start) then start else Vec.create dim in
      Walk.sample rng ~grid ~mem ~start ~steps:walk_steps

let estimate rng ?(eps = 0.25) ?(delta = 0.25) ?(sampler = Hit_and_run) ?(budget = Rigorous)
    ?walk_steps ?rounding_rounds poly =
  let d = Polytope.dim poly in
  if d = 0 then Some { volume = 1.0; phases = 0; samples_per_phase = 0; walk_steps = 0; rounding_ratio = 1.0 }
  else begin
    match Rounding.round rng ?rounds:rounding_rounds poly with
    | None -> None
    | Some rounded ->
        let body = rounded.Rounding.rounded in
        let r0 = rounded.Rounding.r_inf and rq = rounded.Rounding.r_sup in
        (* Radii rᵢ = r₀·2^{i/d} until the enclosing ball is covered:
           each K_{i-1} ⊇ shrunk copy of K_i, so the ratio is ≥ 1/2. *)
        let q =
          if rq <= r0 then 0
          else int_of_float (ceil (float_of_int d *. (log (rq /. r0) /. log 2.0)))
        in
        let radius i = r0 *. (2.0 ** (float_of_int i /. float_of_int d)) in
        let samples_per_phase =
          match budget with
          | Practical n -> n
          | Rigorous ->
              if q = 0 then 0
              else
                (* Per-phase ratio target (1+ε)^{1/q} − 1 ≈ ε/q, each
                   ratio is ≥ 1/2, and the per-phase failure budget is
                   δ/q. *)
                let eps_phase = eps /. (2.0 *. float_of_int q) in
                Chernoff.samples_for_ratio ~eps:eps_phase ~delta:(delta /. float_of_int q)
                  ~p_lower:0.5
        in
        let walk_steps =
          match walk_steps with
          | Some s -> s
          | None -> (
              match sampler with
              | Hit_and_run -> Hit_and_run.default_steps ~dim:d
              | Grid_walk -> Walk.default_steps ~dim:d ~eps)
        in
        Tel.Counter.incr tel_estimates;
        Tel.Counter.add tel_phases q;
        Tel.Counter.add tel_samples (q * samples_per_phase);
        let sp_est = Trace.start "volume.estimate" in
        Trace.add_attr_int "dim" d;
        Trace.add_attr_int "phases" q;
        Trace.add_attr_int "samples_per_phase" samples_per_phase;
        Trace.add_attr_int "walk_steps" walk_steps;
        let product = ref 1.0 in
        let start = ref (Vec.create d) in
        for i = 1 to q do
          let r_small = radius (i - 1) and r_big = Float.min rq (radius i) in
          let sp_phase = Trace.start "volume.phase" in
          Trace.add_attr_int "phase" i;
          Trace.add_attr_float "radius" r_big;
          let hits = ref 0 in
          for _ = 1 to samples_per_phase do
            let p =
              phase_sample rng ~sampler ~poly:body ~radius:r_big ~walk_steps ~grid_gamma:eps !start
            in
            start := p;
            if Vec.norm p <= r_small then incr hits
          done;
          (* The telescoping product needs every phase ratio ≥ ~1/2; a
             zero-hit phase means the walk never reached the inner ball
             and the floor below is doing all the work. *)
          if !hits = 0 && samples_per_phase > 0 && Log.would_log Log.Warn then
            Log.warn "volume.phase_collapse"
              [
                Log.int "phase" i;
                Log.int "phases" q;
                Log.int "samples_per_phase" samples_per_phase;
                Log.float "radius" r_big;
              ];
          let ratio =
            if samples_per_phase = 0 then 1.0
            else Float.max (float_of_int !hits /. float_of_int samples_per_phase) 1e-9
          in
          Tel.Histogram.observe tel_ratio ratio;
          Trace.add_attr_int "hits" !hits;
          Trace.add_attr_float "ratio" ratio;
          Trace.finish sp_phase;
          product := !product /. ratio
        done;
        Trace.finish sp_est;
        let inner = ball_volume ~dim:d ~radius:r0 in
        let vol_rounded = inner *. !product in
        let volume = vol_rounded /. Affine.volume_scale rounded.Rounding.transform in
        Some
          {
            volume;
            phases = q;
            samples_per_phase;
            walk_steps;
            rounding_ratio = Rounding.aspect_ratio rounded;
          }
  end
