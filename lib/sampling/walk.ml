module Tel = Scdb_telemetry.Telemetry
module Progress = Scdb_progress.Progress
module Trace = Scdb_trace.Trace
module Diag = Scdb_diag.Diag
module Log = Scdb_log.Log

let tel_steps = Tel.Counter.make "walk.steps"
let tel_walks = Tel.Counter.make "walk.walks"
let tel_proposals = Tel.Counter.make "walk.proposals"
let tel_accepted = Tel.Counter.make "walk.accepted"

type oracle = Vec.t -> bool

(* Shared with the static cost model: see [Scdb_plan.Cost]. *)
let default_steps ~dim ~eps = Scdb_plan.Cost.lattice_steps ~dim ~eps

let step ?monitor rng grid mem current =
  (* Lazy symmetric walk: stay with probability 1/2, otherwise try a
     uniformly random lattice neighbour and move only if it remains in
     the body. *)
  if Rng.bool rng then current
  else begin
    let dim = (grid : Grid.t).dim in
    let coord = Rng.int rng dim in
    let delta = if Rng.bool rng then 1 else -1 in
    let candidate = Array.copy current in
    candidate.(coord) <- candidate.(coord) + delta;
    Tel.Counter.incr tel_proposals;
    if mem (Grid.to_point grid candidate) then begin
      Tel.Counter.incr tel_accepted;
      (match monitor with Some m -> Diag.Monitor.accept m | None -> ());
      candidate
    end
    else begin
      (match monitor with Some m -> Diag.Monitor.reject m | None -> ());
      current
    end
  end

let walk ?monitor rng ~grid ~mem ~start ~steps =
  if not (mem (Grid.to_point grid start)) then invalid_arg "Walk.walk: start outside the body";
  Tel.Counter.incr tel_walks;
  Tel.Counter.add tel_steps steps;
  Progress.add_steps steps;
  let sp = Trace.start "grid_walk.walk" in
  Trace.add_attr_int "steps" steps;
  let current = ref start in
  for _ = 1 to steps do
    current := step ?monitor rng grid mem !current;
    match monitor with Some m -> Diag.Monitor.record m (Grid.to_point grid !current) | None -> ()
  done;
  Trace.finish sp;
  !current

let sample ?monitor rng ~grid ~mem ~start ~steps =
  let start_idx = Grid.of_point grid start in
  Grid.to_point grid (walk ?monitor rng ~grid ~mem ~start:start_idx ~steps)

(* Polytope specialization on the incremental kernel: a lattice move
   changes one coordinate, so the membership test degrades from the
   O(m·d) oracle evaluation to an O(m) single-column update of the
   cached row products.  Draw order matches [sample] with the
   membership oracle exactly. *)
let sample_polytope ?monitor rng ~grid poly ~start ~steps =
  let g = (grid : Grid.t) in
  let idx = Grid.of_point grid start in
  let x = Grid.to_point grid idx in
  if not (Polytope.mem poly x) then invalid_arg "Walk.walk: start outside the body";
  Tel.Counter.incr tel_walks;
  Tel.Counter.add tel_steps steps;
  Progress.add_steps steps;
  let sp = Trace.start "grid_walk.walk" in
  Trace.add_attr_int "steps" steps;
  Trace.add_attr_int "dim" g.dim;
  let cur = Polytope.Kernel.make poly x in
  let proposals = ref 0 and accepted = ref 0 in
  for _ = 1 to steps do
    (if not (Rng.bool rng) then begin
       let coord = Rng.int rng g.dim in
       let delta = if Rng.bool rng then 1 else -1 in
       (* Same expression as [Grid.to_point], so accepted positions are
          bit-identical to the oracle walk's. *)
       let v = float_of_int (idx.(coord) + delta) *. g.step in
       Tel.Counter.incr tel_proposals;
       incr proposals;
       if Polytope.Kernel.try_set_coord cur coord v then begin
         Tel.Counter.incr tel_accepted;
         incr accepted;
         (match monitor with Some m -> Diag.Monitor.accept m | None -> ());
         idx.(coord) <- idx.(coord) + delta
       end
       else match monitor with Some m -> Diag.Monitor.reject m | None -> ()
     end);
    match monitor with Some m -> Diag.Monitor.record m (Polytope.Kernel.pos cur) | None -> ()
  done;
  (* Every proposal rejected: the grid step straddles the body (γ too
     coarse for this polytope), so the lattice walk cannot mix. *)
  if !proposals >= 32 && !accepted = 0 && Log.would_log Log.Warn then
    Log.warn "walk.stuck"
      [ Log.int "proposals" !proposals; Log.int "steps" steps; Log.float "grid_step" g.step ];
  Trace.finish sp;
  Polytope.Kernel.pos cur

let trajectory rng ~grid ~mem ~start ~steps =
  if not (mem (Grid.to_point grid start)) then invalid_arg "Walk.trajectory: start outside the body";
  let rec go acc current n =
    if n = 0 then acc
    else begin
      let next = step rng grid mem current in
      go (next :: acc) next (n - 1)
    end
  in
  go [ start ] start steps
