module Tel = Scdb_telemetry.Telemetry
module Progress = Scdb_progress.Progress
module Trace = Scdb_trace.Trace
module Diag = Scdb_diag.Diag
module Log = Scdb_log.Log

let tel_steps = Tel.Counter.make "walk.steps"
let tel_walks = Tel.Counter.make "walk.walks"
let tel_proposals = Tel.Counter.make "walk.proposals"
let tel_accepted = Tel.Counter.make "walk.accepted"

type oracle = Vec.t -> bool

(* Shared with the static cost model: see [Scdb_plan.Cost]. *)
let default_steps ~dim ~eps = Scdb_plan.Cost.lattice_steps ~dim ~eps

let step ?monitor rng grid mem current =
  (* Lazy symmetric walk: stay with probability 1/2, otherwise try a
     uniformly random lattice neighbour and move only if it remains in
     the body. *)
  if Rng.bool rng then current
  else begin
    let dim = (grid : Grid.t).dim in
    let coord = Rng.int rng dim in
    let delta = if Rng.bool rng then 1 else -1 in
    let candidate = Array.copy current in
    candidate.(coord) <- candidate.(coord) + delta;
    Tel.Counter.incr tel_proposals;
    if mem (Grid.to_point grid candidate) then begin
      Tel.Counter.incr tel_accepted;
      (match monitor with Some m -> Diag.Monitor.accept m | None -> ());
      candidate
    end
    else begin
      (match monitor with Some m -> Diag.Monitor.reject m | None -> ());
      current
    end
  end

let walk ?monitor rng ~grid ~mem ~start ~steps =
  if not (mem (Grid.to_point grid start)) then invalid_arg "Walk.walk: start outside the body";
  Tel.Counter.incr tel_walks;
  Tel.Counter.add tel_steps steps;
  Progress.add_steps steps;
  let sp = Trace.start "grid_walk.walk" in
  Trace.add_attr_int "steps" steps;
  let current = ref start in
  for _ = 1 to steps do
    current := step ?monitor rng grid mem !current;
    match monitor with Some m -> Diag.Monitor.record m (Grid.to_point grid !current) | None -> ()
  done;
  Trace.finish sp;
  !current

let sample ?monitor rng ~grid ~mem ~start ~steps =
  let start_idx = Grid.of_point grid start in
  Grid.to_point grid (walk ?monitor rng ~grid ~mem ~start:start_idx ~steps)

(* Polytope specialization on the incremental kernel: a lattice move
   changes one coordinate, so the membership test degrades from the
   O(m·d) oracle evaluation to an O(m) single-column update of the
   cached row products.  Draw order matches [sample] with the
   membership oracle exactly. *)
let sample_polytope ?monitor rng ~grid poly ~start ~steps =
  let g = (grid : Grid.t) in
  let idx = Grid.of_point grid start in
  let x = Grid.to_point grid idx in
  if not (Polytope.mem poly x) then invalid_arg "Walk.walk: start outside the body";
  Tel.Counter.incr tel_walks;
  Tel.Counter.add tel_steps steps;
  Progress.add_steps steps;
  let sp = Trace.start "grid_walk.walk" in
  Trace.add_attr_int "steps" steps;
  Trace.add_attr_int "dim" g.dim;
  let cur = Polytope.Kernel.make poly x in
  (* Proposal/acceptance telemetry is summed once per invocation; the
     inner loop only touches the local counters. *)
  let proposals = ref 0 and accepted = ref 0 in
  for _ = 1 to steps do
    (if not (Rng.bool rng) then begin
       let coord = Rng.int rng g.dim in
       let delta = if Rng.bool rng then 1 else -1 in
       (* Same expression as [Grid.to_point], so accepted positions are
          bit-identical to the oracle walk's. *)
       let v = float_of_int (idx.(coord) + delta) *. g.step in
       incr proposals;
       if Polytope.Kernel.try_set_coord cur coord v then begin
         incr accepted;
         (match monitor with Some m -> Diag.Monitor.accept m | None -> ());
         idx.(coord) <- idx.(coord) + delta
       end
       else match monitor with Some m -> Diag.Monitor.reject m | None -> ()
     end);
    match monitor with Some m -> Diag.Monitor.record m (Polytope.Kernel.pos cur) | None -> ()
  done;
  Tel.Counter.add tel_proposals !proposals;
  Tel.Counter.add tel_accepted !accepted;
  (* Every proposal rejected: the grid step straddles the body (γ too
     coarse for this polytope), so the lattice walk cannot mix. *)
  if !proposals >= 32 && !accepted = 0 && Log.would_log Log.Warn then
    Log.warn "walk.stuck"
      [ Log.int "proposals" !proposals; Log.int "steps" steps; Log.float "grid_step" g.step ];
  Trace.finish sp;
  Polytope.Kernel.pos cur

(* Batched lattice walk: K chains share one [Polytope.Kernel.Batch]
   state.  A lattice move is a single-column O(m) update, so batching
   buys locality and per-batch accounting rather than arithmetic
   amortization — but it gives `--chains` one uniform engine across all
   three samplers.  Chain [c] consumes only [rngs.(c)] with the same
   per-chain draw order as [sample_polytope] (lazy bool, then coord and
   sign iff moving), so a chain is bit-identical to a single-chain run
   from the same rng. *)
let sample_polytope_batch ?monitors rngs ~grid poly ~starts ~steps =
  let k = Array.length rngs in
  if k = 0 then invalid_arg "Walk.sample_polytope_batch: no chains";
  if Array.length starts <> k then
    invalid_arg "Walk.sample_polytope_batch: starts/rngs length mismatch";
  let mons = match monitors with Some ms -> ms | None -> [||] in
  if Array.length mons <> 0 && Array.length mons <> k then
    invalid_arg "Walk.sample_polytope_batch: monitors/rngs length mismatch";
  let g = (grid : Grid.t) in
  let idxs = Array.map (Grid.of_point grid) starts in
  let xs = Array.map (Grid.to_point grid) idxs in
  Array.iter
    (fun x ->
      if not (Polytope.mem poly x) then
        invalid_arg "Walk.sample_polytope_batch: start outside the body")
    xs;
  Tel.Counter.add tel_walks k;
  Tel.Counter.add tel_steps (k * steps);
  Progress.add_steps (k * steps);
  let sp = Trace.start "grid_walk.batch" in
  Trace.add_attr_int "chains" k;
  Trace.add_attr_int "steps" steps;
  Trace.add_attr_int "dim" g.dim;
  let b = Polytope.Kernel.Batch.make poly xs in
  let monitored = Array.length mons > 0 in
  let proposals = ref 0 and accepted = ref 0 in
  for _ = 1 to steps do
    for c = 0 to k - 1 do
      let rng = Array.unsafe_get rngs c in
      (if not (Rng.bool rng) then begin
         let idx = Array.unsafe_get idxs c in
         let coord = Rng.int rng g.dim in
         let delta = if Rng.bool rng then 1 else -1 in
         let v = float_of_int (idx.(coord) + delta) *. g.step in
         incr proposals;
         if Polytope.Kernel.Batch.try_set_coord b c coord v then begin
           incr accepted;
           if monitored then Diag.Monitor.accept mons.(c);
           idx.(coord) <- idx.(coord) + delta
         end
         else if monitored then Diag.Monitor.reject mons.(c)
       end);
      if monitored then
        Diag.Monitor.record_off mons.(c) (Polytope.Kernel.Batch.positions b) (c * g.dim)
    done
  done;
  Tel.Counter.add tel_proposals !proposals;
  Tel.Counter.add tel_accepted !accepted;
  if !proposals >= 32 && !accepted = 0 && Log.would_log Log.Warn then
    Log.warn "walk.stuck"
      [ Log.int "proposals" !proposals; Log.int "steps" steps; Log.float "grid_step" g.step ];
  Trace.finish sp;
  Array.init k (fun c -> Polytope.Kernel.Batch.pos b c)

let trajectory rng ~grid ~mem ~start ~steps =
  if not (mem (Grid.to_point grid start)) then invalid_arg "Walk.trajectory: start outside the body";
  let rec go acc current n =
    if n = 0 then acc
    else begin
      let next = step rng grid mem current in
      go (next :: acc) next (n - 1)
    end
  in
  go [ start ] start steps
