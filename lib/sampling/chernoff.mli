(** Chernoff/Hoeffding sample-size arithmetic.

    Centralizes every "how many samples do I need" computation, so that
    the (ε,δ) guarantees quoted in the paper map to one audited place. *)

val samples_for_additive : eps:float -> delta:float -> int
(** Hoeffding: [n ≥ ln(2/δ)/(2ε²)] draws estimate a Bernoulli mean
    within additive [ε] with confidence [1−δ]. *)

val samples_for_ratio : eps:float -> delta:float -> p_lower:float -> int
(** Multiplicative Chernoff: enough draws to estimate a Bernoulli mean
    [p ≥ p_lower] within ratio [1+ε] with confidence [1−δ]:
    [n ≥ 3·ln(2/δ)/(ε²·p_lower)]. *)

val estimate_fraction : Scdb_rng.Rng.t -> samples:int -> (Scdb_rng.Rng.t -> bool) -> float
(** Empirical mean of [samples] Bernoulli draws. *)

val estimate_fraction_adaptive :
  Scdb_rng.Rng.t ->
  eps:float ->
  delta:float ->
  p_floor:float ->
  ?max_samples:int ->
  (Scdb_rng.Rng.t -> bool) ->
  float
(** Two-stage estimation of a Bernoulli mean [p] to ratio [1+ε]: a
    pilot run of 400 draws sizes the main run from the {e observed}
    rate instead of the worst-case floor [p_floor], so the cost scales
    with [1/p] rather than [1/p_floor].  The failure budget is split
    [δ/2] per phase, the pilot draws count toward the main-phase
    budget, and the pilot hits are folded into the returned fraction
    (all draws are i.i.d., so discarding them would only waste
    samples).  Falls back to the floor-based sample count (capped at
    [max_samples], default 200_000) when the pilot sees no successes;
    returns [0.] if none are ever seen. *)

val median_of_means :
  Scdb_rng.Rng.t -> blocks:int -> block_size:int -> (Scdb_rng.Rng.t -> float) -> float
(** Median of [blocks] means of [block_size] draws each — boosts a
    constant-confidence estimator to confidence [1−δ] with
    [blocks = O(ln(1/δ))]. *)

val repeats_for_confidence : delta:float -> int
(** [⌈4·ln(1/δ)⌉], the paper's "repeat k times" bound for an algorithm
    succeeding with probability ≥ 1/4 per trial. *)
