module Tel = Scdb_telemetry.Telemetry
module Progress = Scdb_progress.Progress
module Trace = Scdb_trace.Trace
module Diag = Scdb_diag.Diag
module Log = Scdb_log.Log

let tel_steps = Tel.Counter.make "ball_walk.steps"
let tel_accepted = Tel.Counter.make "ball_walk.accepted"

type stats = { steps : int; accepted : int }

let default_radius ~dim ~r_inscribed = r_inscribed /. sqrt (float_of_int dim)

let walk ?monitor rng ~mem ~start ~steps ~radius =
  if not (mem start) then invalid_arg "Ball_walk.walk: start outside the body";
  let sp = Trace.start "ball_walk.walk" in
  Trace.add_attr_int "steps" steps;
  Trace.add_attr_float "radius" radius;
  let dim = Vec.dim start in
  let current = ref (Vec.copy start) in
  let accepted = ref 0 in
  for _ = 1 to steps do
    let proposal = Vec.add !current (Vec.scale radius (Rng.in_ball rng dim)) in
    (if mem proposal then begin
       current := proposal;
       incr accepted;
       match monitor with Some m -> Diag.Monitor.accept m | None -> ()
     end
     else match monitor with Some m -> Diag.Monitor.reject m | None -> ());
    match monitor with Some m -> Diag.Monitor.record m !current | None -> ()
  done;
  Tel.Counter.add tel_steps steps;
  Tel.Counter.add tel_accepted !accepted;
  Progress.add_steps steps;
  (* Zero acceptances over a real budget: the proposal radius is too
     large for the body (walker pinned at the start point). *)
  if steps >= 16 && !accepted = 0 && Log.would_log Log.Warn then
    Log.warn "ball_walk.stuck"
      [ Log.int "steps" steps; Log.float "radius" radius; Log.int "dim" dim ];
  Trace.finish sp;
  (!current, { steps; accepted = !accepted })

let sample_polytope ?monitor rng poly ~start ~steps ?radius () =
  let radius =
    match radius with
    | Some r -> r
    | None -> (
        match Polytope.chebyshev poly with
        | Some (_, r) when r > 0.0 -> default_radius ~dim:(Polytope.dim poly) ~r_inscribed:r
        | _ -> invalid_arg "Ball_walk.sample_polytope: degenerate body")
  in
  fst (walk ?monitor rng ~mem:(fun x -> Polytope.mem poly x) ~start ~steps ~radius)
