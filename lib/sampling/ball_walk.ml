module Tel = Scdb_telemetry.Telemetry

let tel_steps = Tel.Counter.make "ball_walk.steps"
let tel_accepted = Tel.Counter.make "ball_walk.accepted"

type stats = { steps : int; accepted : int }

let default_radius ~dim ~r_inscribed = r_inscribed /. sqrt (float_of_int dim)

let walk rng ~mem ~start ~steps ~radius =
  if not (mem start) then invalid_arg "Ball_walk.walk: start outside the body";
  let dim = Vec.dim start in
  let current = ref (Vec.copy start) in
  let accepted = ref 0 in
  for _ = 1 to steps do
    let proposal = Vec.add !current (Vec.scale radius (Rng.in_ball rng dim)) in
    if mem proposal then begin
      current := proposal;
      incr accepted
    end
  done;
  Tel.Counter.add tel_steps steps;
  Tel.Counter.add tel_accepted !accepted;
  (!current, { steps; accepted = !accepted })

let sample_polytope rng poly ~start ~steps ?radius () =
  let radius =
    match radius with
    | Some r -> r
    | None -> (
        match Polytope.chebyshev poly with
        | Some (_, r) when r > 0.0 -> default_radius ~dim:(Polytope.dim poly) ~r_inscribed:r
        | _ -> invalid_arg "Ball_walk.sample_polytope: degenerate body")
  in
  fst (walk rng ~mem:(fun x -> Polytope.mem poly x) ~start ~steps ~radius)
