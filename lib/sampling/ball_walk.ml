module Tel = Scdb_telemetry.Telemetry
module Progress = Scdb_progress.Progress
module Trace = Scdb_trace.Trace
module Diag = Scdb_diag.Diag
module Log = Scdb_log.Log

let tel_steps = Tel.Counter.make "ball_walk.steps"
let tel_accepted = Tel.Counter.make "ball_walk.accepted"

type stats = { steps : int; accepted : int }

let default_radius ~dim ~r_inscribed = r_inscribed /. sqrt (float_of_int dim)

let walk ?monitor rng ~mem ~start ~steps ~radius =
  if not (mem start) then invalid_arg "Ball_walk.walk: start outside the body";
  let sp = Trace.start "ball_walk.walk" in
  Trace.add_attr_int "steps" steps;
  Trace.add_attr_float "radius" radius;
  let dim = Vec.dim start in
  let current = ref (Vec.copy start) in
  let accepted = ref 0 in
  for _ = 1 to steps do
    let proposal = Vec.add !current (Vec.scale radius (Rng.in_ball rng dim)) in
    (if mem proposal then begin
       current := proposal;
       incr accepted;
       match monitor with Some m -> Diag.Monitor.accept m | None -> ()
     end
     else match monitor with Some m -> Diag.Monitor.reject m | None -> ());
    match monitor with Some m -> Diag.Monitor.record m !current | None -> ()
  done;
  Tel.Counter.add tel_steps steps;
  Tel.Counter.add tel_accepted !accepted;
  Progress.add_steps steps;
  (* Zero acceptances over a real budget: the proposal radius is too
     large for the body (walker pinned at the start point). *)
  if steps >= 16 && !accepted = 0 && Log.would_log Log.Warn then
    Log.warn "ball_walk.stuck"
      [ Log.int "steps" steps; Log.float "radius" radius; Log.int "dim" dim ];
  Trace.finish sp;
  (!current, { steps; accepted = !accepted })

let resolve_radius poly radius =
  match radius with
  | Some r -> r
  | None -> (
      match Polytope.chebyshev poly with
      | Some (_, r) when r > 0.0 -> default_radius ~dim:(Polytope.dim poly) ~r_inscribed:r
      | _ -> invalid_arg "Ball_walk.sample_polytope: degenerate body")

let sample_polytope ?monitor rng poly ~start ~steps ?radius () =
  let radius = resolve_radius poly radius in
  fst (walk ?monitor rng ~mem:(fun x -> Polytope.mem poly x) ~start ~steps ~radius)

(* Batched ball walk on [Polytope.Kernel.Batch]: all K displacement
   vectors are staged, one shared matrix pass evaluates every chain's
   proposal against the cached row products ([propose_all]), and
   accepted chains commit incrementally — replacing K full [O(m·d)]
   membership evaluations per step by one amortized pass plus [O(m)]
   commits.  Chain [c] consumes only [rngs.(c)]; [Compat] draws the
   ball point exactly like {!walk} ([Rng.in_ball]'s stream), [Fast]
   (the K>1 default) uses the ziggurat stream.  Acceptance compares the
   incrementally-cached [A·x + A·δ] against [b], which can differ from
   the from-scratch oracle in the last ulp — the stationary law is
   identical, guarded by the chi-square audits. *)
let sample_polytope_batch ?monitors ?dir_mode rngs poly ~starts ~steps ?radius () =
  let k = Array.length rngs in
  if k = 0 then invalid_arg "Ball_walk.sample_polytope_batch: no chains";
  if Array.length starts <> k then
    invalid_arg "Ball_walk.sample_polytope_batch: starts/rngs length mismatch";
  let mons = match monitors with Some ms -> ms | None -> [||] in
  if Array.length mons <> 0 && Array.length mons <> k then
    invalid_arg "Ball_walk.sample_polytope_batch: monitors/rngs length mismatch";
  let radius = resolve_radius poly radius in
  let mode =
    match dir_mode with
    | Some m -> m
    | None -> if k = 1 then Hit_and_run.Compat else Hit_and_run.Fast
  in
  let dim = Polytope.dim poly in
  let sp = Trace.start "ball_walk.batch" in
  Trace.add_attr_int "chains" k;
  Trace.add_attr_int "steps" steps;
  Trace.add_attr_float "radius" radius;
  let b = Polytope.Kernel.Batch.make poly starts in
  let dirs = Polytope.Kernel.Batch.directions b in
  let viols = Polytope.Kernel.Batch.violations b in
  let compat =
    match mode with Hit_and_run.Compat -> true | Hit_and_run.Fast -> false
  in
  let monitored = Array.length mons > 0 in
  let accepted = ref 0 in
  for _ = 1 to steps do
    (* Direct-call slice fills into the chain-major displacement block:
       no staging vector, no blit, no closure on the hot path. *)
    if compat then
      for c = 0 to k - 1 do
        Rng.in_ball_slice (Array.unsafe_get rngs c) dirs (c * dim) dim
      done
    else
      for c = 0 to k - 1 do
        Rng.in_ball_slice_fast (Array.unsafe_get rngs c) dirs (c * dim) dim
      done;
    for j = 0 to (k * dim) - 1 do
      Array.unsafe_set dirs j (radius *. Array.unsafe_get dirs j)
    done;
    Polytope.Kernel.Batch.propose_all b;
    for c = 0 to k - 1 do
      if Array.unsafe_get viols c <= 0.0 then begin
        Polytope.Kernel.Batch.advance b c 1.0;
        incr accepted;
        if monitored then Diag.Monitor.accept mons.(c)
      end
      else if monitored then Diag.Monitor.reject mons.(c);
      if monitored then
        Diag.Monitor.record_off mons.(c) (Polytope.Kernel.Batch.positions b) (c * dim)
    done
  done;
  Tel.Counter.add tel_steps (k * steps);
  Tel.Counter.add tel_accepted !accepted;
  Progress.add_steps (k * steps);
  if steps >= 16 && !accepted = 0 && Log.would_log Log.Warn then
    Log.warn "ball_walk.stuck"
      [ Log.int "steps" steps; Log.int "chains" k; Log.float "radius" radius; Log.int "dim" dim ];
  Trace.finish sp;
  Array.init k (fun c -> Polytope.Kernel.Batch.pos b c)
