module Tel = Scdb_telemetry.Telemetry
module Progress = Scdb_progress.Progress
module Trace = Scdb_trace.Trace
module Log = Scdb_log.Log

let tel_attempts = Tel.Counter.make "rejection.attempts"
let tel_accepted = Tel.Counter.make "rejection.accepted"
let tel_exhausted = Tel.Counter.make "rejection.exhausted"
let tel_rate = Tel.Histogram.make "rejection.acceptance_rate"

type stats = { attempts : int; accepted : int }

let acceptance_rate s = if s.attempts = 0 then 0.0 else float_of_int s.accepted /. float_of_int s.attempts

let record s =
  Tel.Counter.add tel_attempts s.attempts;
  Tel.Counter.add tel_accepted s.accepted;
  Progress.add_trials s.attempts;
  if s.attempts > 0 then begin
    let rate = acceptance_rate s in
    Tel.Histogram.observe tel_rate rate;
    (* A collapsing acceptance rate is the classic curse-of-dimension
       failure mode of box rejection — surface it before the budget
       exhausts entirely. *)
    if s.attempts >= 1000 && rate < 0.01 && Log.would_log Log.Warn then
      Log.warn "rejection.rate_collapse"
        [ Log.int "attempts" s.attempts; Log.int "accepted" s.accepted; Log.float "rate" rate ]
  end

let sample rng ~lo ~hi ~mem ~max_attempts =
  let sp = Trace.start "rejection.sample" in
  let rec go n =
    if n >= max_attempts then begin
      Tel.Counter.incr tel_exhausted;
      record { attempts = n; accepted = 0 };
      if Log.would_log Log.Warn then
        Log.warn "rejection.exhausted" [ Log.int "attempts" n; Log.int "max_attempts" max_attempts ];
      Trace.add_attr_int "attempts" n;
      Trace.finish sp;
      None
    end
    else begin
      let x = Rng.in_box rng lo hi in
      if mem x then begin
        record { attempts = n + 1; accepted = 1 };
        Trace.add_attr_int "attempts" (n + 1);
        Trace.finish sp;
        Some (x, n + 1)
      end
      else go (n + 1)
    end
  in
  go 0

let sample_many rng ~lo ~hi ~mem ~count ~max_attempts =
  let rec go acc accepted attempts =
    if accepted >= count || attempts >= max_attempts then begin
      if accepted < count then begin
        Tel.Counter.incr tel_exhausted;
        if Log.would_log Log.Warn then
          Log.warn "rejection.exhausted"
            [
              Log.int "attempts" attempts;
              Log.int "max_attempts" max_attempts;
              Log.int "accepted" accepted;
              Log.int "wanted" count;
            ]
      end;
      let s = { attempts; accepted } in
      record s;
      (List.rev acc, s)
    end
    else begin
      let x = Rng.in_box rng lo hi in
      if mem x then go (x :: acc) (accepted + 1) (attempts + 1)
      else go acc accepted (attempts + 1)
    end
  in
  go [] 0 0
