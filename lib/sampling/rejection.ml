module Tel = Scdb_telemetry.Telemetry
module Trace = Scdb_trace.Trace

let tel_attempts = Tel.Counter.make "rejection.attempts"
let tel_accepted = Tel.Counter.make "rejection.accepted"
let tel_exhausted = Tel.Counter.make "rejection.exhausted"
let tel_rate = Tel.Histogram.make "rejection.acceptance_rate"

type stats = { attempts : int; accepted : int }

let acceptance_rate s = if s.attempts = 0 then 0.0 else float_of_int s.accepted /. float_of_int s.attempts

let record s =
  Tel.Counter.add tel_attempts s.attempts;
  Tel.Counter.add tel_accepted s.accepted;
  if s.attempts > 0 then Tel.Histogram.observe tel_rate (acceptance_rate s)

let sample rng ~lo ~hi ~mem ~max_attempts =
  let sp = Trace.start "rejection.sample" in
  let rec go n =
    if n >= max_attempts then begin
      Tel.Counter.incr tel_exhausted;
      record { attempts = n; accepted = 0 };
      Trace.add_attr_int "attempts" n;
      Trace.finish sp;
      None
    end
    else begin
      let x = Rng.in_box rng lo hi in
      if mem x then begin
        record { attempts = n + 1; accepted = 1 };
        Trace.add_attr_int "attempts" (n + 1);
        Trace.finish sp;
        Some (x, n + 1)
      end
      else go (n + 1)
    end
  in
  go 0

let sample_many rng ~lo ~hi ~mem ~count ~max_attempts =
  let rec go acc accepted attempts =
    if accepted >= count || attempts >= max_attempts then begin
      if accepted < count then Tel.Counter.incr tel_exhausted;
      let s = { attempts; accepted } in
      record s;
      (List.rev acc, s)
    end
    else begin
      let x = Rng.in_box rng lo hi in
      if mem x then go (x :: acc) (accepted + 1) (attempts + 1)
      else go acc accepted (attempts + 1)
    end
  in
  go [] 0 0
