module Tel = Scdb_telemetry.Telemetry

let tel_steps = Tel.Counter.make "hit_and_run.steps"
let tel_samples = Tel.Counter.make "hit_and_run.samples"
let tel_degenerate = Tel.Counter.make "hit_and_run.chord_degenerate"

type chord = Vec.t -> Vec.t -> (float * float) option

let polytope_chord poly x dir = Polytope.line_intersection poly x dir

let ball_chord ~centre ~radius x dir =
  (* ||x + t·dir − c||² = r²: quadratic in t. *)
  let delta = Vec.sub x centre in
  let a = Vec.norm2 dir in
  let b = 2.0 *. Vec.dot delta dir in
  let c = Vec.norm2 delta -. (radius *. radius) in
  let disc = (b *. b) -. (4.0 *. a *. c) in
  if disc < 0.0 || a = 0.0 then None
  else begin
    let s = sqrt disc in
    Some (((-.b) -. s) /. (2.0 *. a), ((-.b) +. s) /. (2.0 *. a))
  end

let intersect_chords chords x dir =
  let rec go lo hi = function
    | [] -> if lo > hi then None else Some (lo, hi)
    | c :: rest -> (
        match c x dir with
        | None -> None
        | Some (l, h) -> go (Float.max lo l) (Float.min hi h) rest)
  in
  go neg_infinity infinity chords

let sample rng ~chord ~start ~steps =
  Tel.Counter.incr tel_samples;
  Tel.Counter.add tel_steps steps;
  let dim = Vec.dim start in
  let current = ref (Vec.copy start) in
  for _ = 1 to steps do
    let dir = Rng.unit_vector rng dim in
    match chord !current dir with
    | None -> Tel.Counter.incr tel_degenerate (* numerically outside; keep position *)
    | Some (lo, hi) ->
        if hi > lo && Float.is_finite lo && Float.is_finite hi then
          current := Vec.axpy (Rng.uniform rng lo hi) dir !current
        else Tel.Counter.incr tel_degenerate
  done;
  !current

(* Polytope specialization on the incremental kernel: the cached-product
   cursor replaces the O(m·d) chord recomputation by one O(m·d) pass
   for A·dir plus an O(m) cache update, and the preallocated direction
   buffer keeps the inner loop free of per-step allocation.  The rng
   stream is identical to the generic [sample] above, so trajectories
   agree with the naive kernel up to rounding. *)
let sample_polytope rng poly ~start ~steps =
  Tel.Counter.incr tel_samples;
  Tel.Counter.add tel_steps steps;
  let cur = Polytope.Kernel.make poly start in
  let dir = Vec.create (Polytope.dim poly) in
  for _ = 1 to steps do
    Rng.unit_vector_into rng dir;
    if Polytope.Kernel.chord cur dir then begin
      let lo = Polytope.Kernel.lo cur and hi = Polytope.Kernel.hi cur in
      if hi > lo && Float.is_finite lo && Float.is_finite hi then
        Polytope.Kernel.advance cur dir (Rng.uniform rng lo hi)
      else Tel.Counter.incr tel_degenerate
    end
    else Tel.Counter.incr tel_degenerate
  done;
  Polytope.Kernel.pos cur

let default_steps ~dim =
  let d = float_of_int dim in
  int_of_float (Float.max 60.0 (12.0 *. d *. log (d +. 2.0) *. log (d +. 2.0)))
