module Tel = Scdb_telemetry.Telemetry
module Progress = Scdb_progress.Progress
module Trace = Scdb_trace.Trace
module Diag = Scdb_diag.Diag
module Log = Scdb_log.Log

let tel_steps = Tel.Counter.make "hit_and_run.steps"
let tel_samples = Tel.Counter.make "hit_and_run.samples"
let tel_degenerate = Tel.Counter.make "hit_and_run.chord_degenerate"

type chord = Vec.t -> Vec.t -> (float * float) option

let polytope_chord poly x dir = Polytope.line_intersection poly x dir

let ball_chord ~centre ~radius x dir =
  (* ||x + t·dir − c||² = r²: quadratic in t. *)
  let delta = Vec.sub x centre in
  let a = Vec.norm2 dir in
  let b = 2.0 *. Vec.dot delta dir in
  let c = Vec.norm2 delta -. (radius *. radius) in
  let disc = (b *. b) -. (4.0 *. a *. c) in
  if disc < 0.0 || a = 0.0 then None
  else begin
    let s = sqrt disc in
    Some (((-.b) -. s) /. (2.0 *. a), ((-.b) +. s) /. (2.0 *. a))
  end

let intersect_chords chords x dir =
  let rec go lo hi = function
    | [] -> if lo > hi then None else Some (lo, hi)
    | c :: rest -> (
        match c x dir with
        | None -> None
        | Some (l, h) -> go (Float.max lo l) (Float.min hi h) rest)
  in
  go neg_infinity infinity chords

let sample ?monitor rng ~chord ~start ~steps =
  Tel.Counter.incr tel_samples;
  Tel.Counter.add tel_steps steps;
  Progress.add_steps steps;
  let dim = Vec.dim start in
  let current = ref (Vec.copy start) in
  for _ = 1 to steps do
    let dir = Rng.unit_vector rng dim in
    (match chord !current dir with
    | None ->
        (* numerically outside; keep position *)
        Tel.Counter.incr tel_degenerate;
        (match monitor with Some m -> Diag.Monitor.reject m | None -> ())
    | Some (lo, hi) ->
        if hi > lo && Float.is_finite lo && Float.is_finite hi then begin
          current := Vec.axpy (Rng.uniform rng lo hi) dir !current;
          match monitor with Some m -> Diag.Monitor.accept m | None -> ()
        end
        else begin
          Tel.Counter.incr tel_degenerate;
          match monitor with Some m -> Diag.Monitor.reject m | None -> ()
        end);
    match monitor with Some m -> Diag.Monitor.record m !current | None -> ()
  done;
  !current

(* Polytope specialization on the incremental kernel: the cached-product
   cursor replaces the O(m·d) chord recomputation by one O(m·d) pass
   for A·dir plus an O(m) cache update, and the preallocated direction
   buffer keeps the inner loop free of per-step allocation.  The rng
   stream is identical to the generic [sample] above, so trajectories
   agree with the naive kernel up to rounding. *)
let sample_polytope ?monitor rng poly ~start ~steps =
  Tel.Counter.incr tel_samples;
  Tel.Counter.add tel_steps steps;
  Progress.add_steps steps;
  let sp = Trace.start "hit_and_run.walk" in
  Trace.add_attr_int "steps" steps;
  Trace.add_attr_int "dim" (Polytope.dim poly);
  let cur = Polytope.Kernel.make poly start in
  let dir = Vec.create (Polytope.dim poly) in
  let degenerate = ref 0 in
  for _ = 1 to steps do
    Rng.unit_vector_into rng dir;
    (if Polytope.Kernel.chord cur dir then begin
       let lo = Polytope.Kernel.lo cur and hi = Polytope.Kernel.hi cur in
       if hi > lo && Float.is_finite lo && Float.is_finite hi then begin
         Polytope.Kernel.advance cur dir (Rng.uniform rng lo hi);
         match monitor with Some m -> Diag.Monitor.accept m | None -> ()
       end
       else begin
         Tel.Counter.incr tel_degenerate;
         incr degenerate;
         match monitor with Some m -> Diag.Monitor.reject m | None -> ()
       end
     end
     else begin
       Tel.Counter.incr tel_degenerate;
       incr degenerate;
       match monitor with Some m -> Diag.Monitor.reject m | None -> ()
     end);
    match monitor with Some m -> Diag.Monitor.record m (Polytope.Kernel.pos cur) | None -> ()
  done;
  (* Every chord degenerate means the walker never moved: the start was
     outside the body or the polytope is (numerically) lower-dimensional. *)
  if steps >= 16 && !degenerate = steps && Log.would_log Log.Warn then
    Log.warn "hit_and_run.stuck"
      [ Log.int "steps" steps; Log.int "dim" (Polytope.dim poly) ];
  Trace.finish sp;
  Polytope.Kernel.pos cur

(* Shared with the static cost model: see [Scdb_plan.Cost]. *)
let default_steps ~dim = Scdb_plan.Cost.hit_and_run_steps ~dim
