module Tel = Scdb_telemetry.Telemetry
module Progress = Scdb_progress.Progress
module Trace = Scdb_trace.Trace
module Diag = Scdb_diag.Diag
module Log = Scdb_log.Log

let tel_steps = Tel.Counter.make "hit_and_run.steps"
let tel_samples = Tel.Counter.make "hit_and_run.samples"
let tel_degenerate = Tel.Counter.make "hit_and_run.chord_degenerate"

type chord = Vec.t -> Vec.t -> (float * float) option

let polytope_chord poly x dir = Polytope.line_intersection poly x dir

let ball_chord ~centre ~radius x dir =
  (* ||x + t·dir − c||² = r²: quadratic in t. *)
  let delta = Vec.sub x centre in
  let a = Vec.norm2 dir in
  let b = 2.0 *. Vec.dot delta dir in
  let c = Vec.norm2 delta -. (radius *. radius) in
  let disc = (b *. b) -. (4.0 *. a *. c) in
  if disc < 0.0 || a = 0.0 then None
  else begin
    let s = sqrt disc in
    Some (((-.b) -. s) /. (2.0 *. a), ((-.b) +. s) /. (2.0 *. a))
  end

let intersect_chords chords x dir =
  let rec go lo hi = function
    | [] -> if lo > hi then None else Some (lo, hi)
    | c :: rest -> (
        match c x dir with
        | None -> None
        | Some (l, h) -> go (Float.max lo l) (Float.min hi h) rest)
  in
  go neg_infinity infinity chords

(* Degenerate-chord bookkeeping: the local run counter and the monitor
   rejection always move together; the telemetry counter is summed into
   [tel_degenerate] once per sampler invocation, off the hot path. *)
let[@inline] note_degenerate monitor degenerate =
  incr degenerate;
  match monitor with Some m -> Diag.Monitor.reject m | None -> ()

(* Every chord degenerate means the walker never moved: the start was
   outside the body or the polytope is (numerically) lower-dimensional. *)
let warn_stuck ~steps ~dim ~degenerate =
  if steps >= 16 && degenerate = steps && Log.would_log Log.Warn then
    Log.warn "hit_and_run.stuck" [ Log.int "steps" steps; Log.int "dim" dim ]

let sample ?monitor rng ~chord ~start ~steps =
  Tel.Counter.incr tel_samples;
  Tel.Counter.add tel_steps steps;
  Progress.add_steps steps;
  let dim = Vec.dim start in
  let current = ref (Vec.copy start) in
  let degenerate = ref 0 in
  for _ = 1 to steps do
    let dir = Rng.unit_vector rng dim in
    (match chord !current dir with
    | None ->
        (* numerically outside; keep position *)
        note_degenerate monitor degenerate
    | Some (lo, hi) ->
        if hi > lo && Float.is_finite lo && Float.is_finite hi then begin
          current := Vec.axpy (Rng.uniform rng lo hi) dir !current;
          match monitor with Some m -> Diag.Monitor.accept m | None -> ()
        end
        else note_degenerate monitor degenerate);
    match monitor with Some m -> Diag.Monitor.record m !current | None -> ()
  done;
  Tel.Counter.add tel_degenerate !degenerate;
  warn_stuck ~steps ~dim ~degenerate:!degenerate;
  !current

(* Polytope specialization on the incremental kernel: the cached-product
   cursor replaces the O(m·d) chord recomputation by one O(m·d) pass
   for A·dir plus an O(m) cache update, and the preallocated direction
   buffer keeps the inner loop free of per-step allocation.  The rng
   stream is identical to the generic [sample] above, so trajectories
   agree with the naive kernel up to rounding.

   All accounting is per-invocation: the unmonitored inner loop below is
   nothing but rng draws and kernel arithmetic. *)
let sample_polytope ?monitor rng poly ~start ~steps =
  Tel.Counter.incr tel_samples;
  Tel.Counter.add tel_steps steps;
  Progress.add_steps steps;
  let sp = Trace.start "hit_and_run.walk" in
  Trace.add_attr_int "steps" steps;
  Trace.add_attr_int "dim" (Polytope.dim poly);
  let cur = Polytope.Kernel.make poly start in
  let dir = Vec.create (Polytope.dim poly) in
  let degenerate = ref 0 in
  (match monitor with
  | None ->
      for _ = 1 to steps do
        Rng.unit_vector_into rng dir;
        if Polytope.Kernel.chord cur dir then begin
          let lo = Polytope.Kernel.lo cur and hi = Polytope.Kernel.hi cur in
          if hi > lo && Float.is_finite lo && Float.is_finite hi then
            Polytope.Kernel.advance cur dir (Rng.uniform rng lo hi)
          else incr degenerate
        end
        else incr degenerate
      done
  | Some m ->
      let monitor = Some m in
      for _ = 1 to steps do
        Rng.unit_vector_into rng dir;
        (if Polytope.Kernel.chord cur dir then begin
           let lo = Polytope.Kernel.lo cur and hi = Polytope.Kernel.hi cur in
           if hi > lo && Float.is_finite lo && Float.is_finite hi then begin
             Polytope.Kernel.advance cur dir (Rng.uniform rng lo hi);
             Diag.Monitor.accept m
           end
           else note_degenerate monitor degenerate
         end
         else note_degenerate monitor degenerate);
        Diag.Monitor.record m (Polytope.Kernel.pos cur)
      done);
  Tel.Counter.add tel_degenerate !degenerate;
  warn_stuck ~steps ~dim:(Polytope.dim poly) ~degenerate:!degenerate;
  Trace.finish sp;
  Polytope.Kernel.pos cur

(* ------------------------------------------------------------------ *)
(* Batched multi-chain sampler                                          *)
(* ------------------------------------------------------------------ *)

type dir_mode = Compat | Fast

module Batch = Polytope.Kernel.Batch

(* K chains advance in lockstep through [Polytope.Kernel.Batch]: per
   step, all K directions are drawn and staged, one shared matrix pass
   computes every chain's chord, then each chain lands uniformly on its
   own chord.  Chain [c] consumes only [rngs.(c)], and the per-chain
   draw order (direction fill, then a uniform iff the chord accepted)
   matches [sample_polytope] exactly — so in [Compat] mode every chain
   is bit-identical to a single-chain run from the same rng and start.
   [Fast] mode swaps the direction generator for the ziggurat
   ([Rng.unit_vector_into_fast]): same distribution on a cheaper,
   distinct stream, the default once K > 1 where no single-chain replay
   contract exists.  Accounting (telemetry, progress, trace, the stuck
   warning) is per batch invocation, never per step or chain. *)
let sample_polytope_batch ?monitors ?dir_mode rngs poly ~starts ~steps =
  let k = Array.length rngs in
  if k = 0 then invalid_arg "Hit_and_run.sample_polytope_batch: no chains";
  if Array.length starts <> k then
    invalid_arg "Hit_and_run.sample_polytope_batch: starts/rngs length mismatch";
  let mons = match monitors with Some ms -> ms | None -> [||] in
  if Array.length mons <> 0 && Array.length mons <> k then
    invalid_arg "Hit_and_run.sample_polytope_batch: monitors/rngs length mismatch";
  let mode = match dir_mode with Some m -> m | None -> if k = 1 then Compat else Fast in
  Tel.Counter.add tel_samples k;
  Tel.Counter.add tel_steps (k * steps);
  Progress.add_steps (k * steps);
  let sp = Trace.start "hit_and_run.batch" in
  Trace.add_attr_int "chains" k;
  Trace.add_attr_int "steps" steps;
  Trace.add_attr_int "dim" (Polytope.dim poly);
  let d = Polytope.dim poly in
  let b = Batch.make poly starts in
  let dirs = Batch.directions b in
  let lows = Batch.lows b and highs = Batch.highs b in
  let compat = match mode with Compat -> true | Fast -> false in
  let monitored = Array.length mons > 0 in
  let degenerate = ref 0 in
  for _ = 1 to steps do
    (* Two direct-call loops instead of one through a function value:
       the per-chain direction draw is the hottest call site, and the
       slice fills land straight in the chain-major direction block. *)
    if compat then
      for c = 0 to k - 1 do
        Rng.unit_vector_slice (Array.unsafe_get rngs c) dirs (c * d) d
      done
    else
      for c = 0 to k - 1 do
        Rng.unit_vector_slice_fast (Array.unsafe_get rngs c) dirs (c * d) d
      done;
    Batch.chord_all b;
    for c = 0 to k - 1 do
      let lo = Array.unsafe_get lows c and hi = Array.unsafe_get highs c in
      if hi > lo && Float.is_finite lo && Float.is_finite hi then begin
        Batch.advance b c (Rng.uniform (Array.unsafe_get rngs c) lo hi);
        if monitored then Diag.Monitor.accept mons.(c)
      end
      else begin
        incr degenerate;
        if monitored then Diag.Monitor.reject mons.(c)
      end;
      if monitored then Diag.Monitor.record_off mons.(c) (Batch.positions b) (c * d)
    done
  done;
  Tel.Counter.add tel_degenerate !degenerate;
  if steps >= 16 && !degenerate = k * steps && Log.would_log Log.Warn then
    Log.warn "hit_and_run.stuck"
      [ Log.int "steps" steps; Log.int "chains" k; Log.int "dim" d ];
  Trace.finish sp;
  Array.init k (fun c -> Batch.pos b c)

(* Shared with the static cost model: see [Scdb_plan.Cost]. *)
let default_steps ~dim = Scdb_plan.Cost.hit_and_run_steps ~dim
