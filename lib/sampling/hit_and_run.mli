(** Hit-and-run sampler on convex bodies.

    The continuous cousin of the lattice walk: pick a uniform direction,
    intersect the chord with the body, land uniformly on the chord.
    Mixes in [O*(d³)] from a warm start and needs no grid, so the
    multi-phase volume estimator and the rounding procedure both run on
    it; the lattice walk remains the reference sampler for the paper's
    grid-based definitions. *)

type chord = Vec.t -> Vec.t -> (float * float) option
(** [chord x dir] is the parameter interval of the body along
    [t ↦ x + t·dir], or [None] if the line misses it. *)

val polytope_chord : Polytope.t -> chord

val ball_chord : centre:Vec.t -> radius:float -> chord
(** Analytic chord of a Euclidean ball. *)

val intersect_chords : chord list -> chord
(** Chord of the intersection of bodies. *)

val sample :
  ?monitor:Scdb_diag.Diag.Monitor.t -> Rng.t -> chord:chord -> start:Vec.t -> steps:int -> Vec.t
(** Position after [steps] hit-and-run moves from [start] (which must
    lie in the body: the chord through it must be non-empty).  When a
    [monitor] is attached, every step feeds it the current position and
    an accept (moved) or reject (degenerate chord) event. *)

val sample_polytope :
  ?monitor:Scdb_diag.Diag.Monitor.t -> Rng.t -> Polytope.t -> start:Vec.t -> steps:int -> Vec.t
(** Like [sample] with [polytope_chord], but runs on the incremental
    cached-product kernel ({!Polytope.Kernel}): same rng stream and the
    same trajectory up to rounding, with an allocation-free inner
    loop at roughly half the arithmetic per step. *)

type dir_mode =
  | Compat  (** Polar-method directions: per-chain rng stream identical
                to {!sample_polytope}, so K=1 (and each chain of a
                same-seeded K>1 batch) replays bit-exactly against the
                single-chain kernel.  The default at K = 1. *)
  | Fast  (** Ziggurat directions ({!Rng.unit_vector_into_fast}): same
              distribution, cheaper and on a distinct deterministic
              stream.  The default at K > 1, where direction draws
              dominate the amortized batched step. *)

val sample_polytope_batch :
  ?monitors:Scdb_diag.Diag.Monitor.t array ->
  ?dir_mode:dir_mode ->
  Rng.t array ->
  Polytope.t ->
  starts:Vec.t array ->
  steps:int ->
  Vec.t array
(** Step K chains in lockstep on the batched structure-of-arrays kernel
    ({!Polytope.Kernel.Batch}): one shared pass over the constraint
    matrix computes all K chords per step.  Chain [c] consumes only
    [rngs.(c)], so chains are independent given independent generators
    (use {!Rng.split} per chain).  Telemetry/progress/trace accounting
    is per batch invocation, not per step.  When [monitors] is given
    (one per chain), each chain feeds its monitor exactly like the
    single-chain samplers do.
    @raise Invalid_argument on empty or mismatched array lengths. *)

val default_steps : dim:int -> int
(** Practical schedule [max 60 (10·d·ln d · …)] used by the pipeline. *)
