module Tel = Scdb_telemetry.Telemetry
module Progress = Scdb_progress.Progress
module Log = Scdb_log.Log

let tel_samples = Tel.Counter.make "chernoff.samples"
let tel_adaptive_calls = Tel.Counter.make "chernoff.adaptive.calls"
let tel_pilot_zero = Tel.Counter.make "chernoff.adaptive.pilot_zero"

(* The sizing formulas live in [Scdb_plan.Cost] so the static cost
   model and the runtime spend budgets from the same source. *)
let samples_for_additive = Scdb_plan.Cost.samples_for_additive
let samples_for_ratio = Scdb_plan.Cost.samples_for_ratio

let estimate_fraction rng ~samples f =
  if samples <= 0 then invalid_arg "Chernoff.estimate_fraction";
  Tel.Counter.add tel_samples samples;
  Progress.add_trials samples;
  let hits = ref 0 in
  for _ = 1 to samples do
    if f rng then incr hits
  done;
  float_of_int !hits /. float_of_int samples

let estimate_fraction_adaptive rng ~eps ~delta ~p_floor ?(max_samples = 200_000) f =
  Tel.Counter.incr tel_adaptive_calls;
  let count n =
    Tel.Counter.add tel_samples n;
    Progress.add_trials n;
    let hits = ref 0 in
    for _ = 1 to n do
      if f rng then incr hits
    done;
    !hits
  in
  (* The pilot run is itself a statistical decision (it sizes the main
     run from the observed rate), so the failure budget is split δ/2 +
     δ/2 across the two phases instead of each phase spending all of δ. *)
  let delta_phase = delta /. 2.0 in
  (* The pilot is budgeted draws like any other phase: with
     [max_samples < 400] an unclamped pilot would overspend the cap
     before the main-phase clamp ever ran. *)
  let pilot =
    if max_samples < 400 then begin
      if Log.would_log Log.Warn then
        Log.warn "chernoff.budget_exhausted"
          [
            Log.str "phase" "pilot";
            Log.int "wanted" 400;
            Log.int "max_samples" max_samples;
            Log.float "eps" eps;
            Log.float "delta" delta_phase;
          ];
      Stdlib.max 1 max_samples
    end
    else 400
  in
  let pilot_hits = count pilot in
  (* Pilot draws are i.i.d. with the main draws, so they fold into the
     final fraction instead of being thrown away. *)
  let finish n_main main_hits =
    float_of_int (pilot_hits + main_hits) /. float_of_int (pilot + n_main)
  in
  (* The bound-prescribed budget can exceed [max_samples]; clamping
     keeps the run alive but silently weakens the (ε,δ) contract, so
     the clamp is a warn-level event. *)
  let clamp phase want =
    if want > max_samples then begin
      if Log.would_log Log.Warn then
        Log.warn "chernoff.budget_exhausted"
          [
            Log.str "phase" phase;
            Log.int "wanted" want;
            Log.int "max_samples" max_samples;
            Log.float "eps" eps;
            Log.float "delta" delta_phase;
          ];
      max_samples
    end
    else want
  in
  if pilot_hits = 0 then begin
    (* No signal yet: spend the floor-based budget before concluding 0. *)
    Tel.Counter.incr tel_pilot_zero;
    if Log.would_log Log.Info then
      Log.info "chernoff.pilot_zero" [ Log.int "pilot" pilot; Log.float "p_floor" p_floor ];
    let n = clamp "floor" (samples_for_ratio ~eps ~delta:delta_phase ~p_lower:p_floor) in
    (* The pilot already spent [pilot] of the budget; cap the main phase
       so pilot + main never exceeds [max_samples]. *)
    let n_main = Stdlib.max 0 (Stdlib.min (n - pilot) (max_samples - pilot)) in
    finish n_main (count n_main)
  end
  else begin
    let p_hat = float_of_int pilot_hits /. float_of_int pilot in
    let n = clamp "adaptive" (samples_for_ratio ~eps ~delta:delta_phase ~p_lower:(p_hat /. 2.0)) in
    (* The pilot already contributed 400 of the [n] draws the bound asks
       for; only the remainder is drawn in the main phase. *)
    let n_main = Stdlib.max 0 (n - pilot) in
    finish n_main (count n_main)
  end

let median_of_means rng ~blocks ~block_size f =
  if blocks <= 0 || block_size <= 0 then invalid_arg "Chernoff.median_of_means";
  Progress.add_trials (blocks * block_size);
  let means =
    Array.init blocks (fun _ ->
        let s = ref 0.0 in
        for _ = 1 to block_size do
          s := !s +. f rng
        done;
        !s /. float_of_int block_size)
  in
  Array.sort Float.compare means;
  let n = blocks in
  if n mod 2 = 1 then means.(n / 2) else (means.((n / 2) - 1) +. means.(n / 2)) /. 2.0

let repeats_for_confidence ~delta =
  if delta <= 0.0 || delta >= 1.0 then invalid_arg "Chernoff.repeats_for_confidence";
  int_of_float (ceil (4.0 *. log (1.0 /. delta)))
