module type FIELD = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val compare : t -> t -> int
  val of_int : int -> t
  val is_zero : t -> bool
  val pp : Format.formatter -> t -> unit
end

type 'num outcome =
  | Infeasible
  | Unbounded
  | Optimal of { value : 'num; point : 'num array }

module Tel = Scdb_telemetry.Telemetry
module Log = Scdb_log.Log

(* Shared across the float and exact functor instances: the registry is
   keyed by name, so both solvers report into the same counters. *)
let tel_pivots = Tel.Counter.make "simplex.pivots"
let tel_degenerate = Tel.Counter.make "simplex.degenerate_pivots"
let tel_bland = Tel.Counter.make "simplex.bland_switches"
let tel_cap = Tel.Counter.make "simplex.cap_hits"

module Make (F : FIELD) = struct
  let neg_one = F.neg F.one
  let is_pos x = (not (F.is_zero x)) && F.compare x F.zero > 0
  let is_neg x = (not (F.is_zero x)) && F.compare x F.zero < 0

  (* A tableau in equality form: [rows.(i)] holds the coefficients of all
     columns, [rhs.(i)] the right-hand side (kept non-negative), and
     [basis.(i)] the index of the basic variable of row [i]. *)
  type tableau = {
    mutable rows : F.t array array;
    mutable rhs : F.t array;
    mutable basis : int array;
    mutable ncols : int;
  }

  let pivot t obj obj_rhs ~row ~col =
    let p = t.rows.(row).(col) in
    let inv_p = F.div F.one p in
    let prow = t.rows.(row) in
    for j = 0 to t.ncols - 1 do
      prow.(j) <- F.mul prow.(j) inv_p
    done;
    t.rhs.(row) <- F.mul t.rhs.(row) inv_p;
    let eliminate coeffs rhs_ref =
      let f = coeffs.(col) in
      if not (F.is_zero f) then begin
        for j = 0 to t.ncols - 1 do
          coeffs.(j) <- F.sub coeffs.(j) (F.mul f prow.(j))
        done;
        rhs_ref := F.sub !rhs_ref (F.mul f t.rhs.(row))
      end
    in
    Array.iteri
      (fun i coeffs ->
        if i <> row then begin
          let r = ref t.rhs.(i) in
          eliminate coeffs r;
          t.rhs.(i) <- !r
        end)
      t.rows;
    let r = ref !obj_rhs in
    eliminate obj r;
    obj_rhs := !r;
    t.basis.(row) <- col

  (* After this many consecutive degenerate pivots (leaving ratio zero,
     objective unchanged) the entering rule drops from Dantzig to
     Bland, which cannot cycle.  Small enough to bail out of a cycle
     quickly, large enough that ordinary degenerate vertices never pay
     Bland's slow-crawl price. *)
  let degeneracy_streak_limit = 32

  (* Pivot loop on the current objective row [obj] (convention: entries
     are [z_j - c_j]; entering columns are the strictly negative ones).
     [allowed] filters entering candidates.  The entering rule is
     Dantzig's most-negative reduced cost; after a streak of degenerate
     pivots it switches (for the rest of this optimization) to Bland's
     smallest-index anti-cycling rule, which terminates on every input
     in exact arithmetic.  The iteration cap is a last-resort guard
     against float round-off oscillation: the basis stays primal
     feasible throughout, so hitting it reports the current vertex as
     [`Optimal] (best effort, counted in [simplex.cap_hits]) rather
     than aborting the caller. *)
  let optimize t obj obj_rhs ~allowed =
    let m = Array.length t.rows in
    let iteration_cap = 2000 + (200 * (m + t.ncols) * (m + t.ncols)) in
    let bland = ref false in
    let streak = ref 0 in
    let rec loop iter =
      if iter > iteration_cap then begin
        Tel.Counter.incr tel_cap;
        (* Best-effort fallback: the basis is still primal feasible, so
           the caller gets the current vertex — but the event must be
           visible, it means round-off kept the pivot loop oscillating. *)
        if Log.would_log Log.Warn then
          Log.warn "simplex.iteration_cap"
            [ Log.int "iterations" iteration_cap; Log.int "rows" m; Log.int "cols" t.ncols ];
        `Optimal
      end
      else begin
      let enter = ref (-1) in
      if !bland then begin
        (* Bland: smallest index with negative reduced cost. *)
        try
          for j = 0 to t.ncols - 1 do
            if allowed j && is_neg obj.(j) then begin
              enter := j;
              raise Exit
            end
          done
        with Exit -> ()
      end
      else begin
        (* Dantzig: most negative reduced cost. *)
        let best = ref F.zero in
        for j = 0 to t.ncols - 1 do
          if allowed j && is_neg obj.(j) && F.compare obj.(j) !best < 0 then begin
            best := obj.(j);
            enter := j
          end
        done
      end;
      if !enter < 0 then `Optimal
      else begin
        let col = !enter in
        (* Leaving row: minimal ratio, ties by smallest basic index. *)
        let best = ref (-1) in
        let best_ratio = ref F.zero in
        for i = 0 to m - 1 do
          let a = t.rows.(i).(col) in
          if is_pos a then begin
            let ratio = F.div t.rhs.(i) a in
            if
              !best < 0
              || F.compare ratio !best_ratio < 0
              || (F.compare ratio !best_ratio = 0 && t.basis.(i) < t.basis.(!best))
            then begin
              best := i;
              best_ratio := ratio
            end
          end
        done;
        if !best < 0 then `Unbounded
        else begin
          Tel.Counter.incr tel_pivots;
          if F.is_zero !best_ratio then begin
            Tel.Counter.incr tel_degenerate;
            incr streak;
            if (not !bland) && !streak >= degeneracy_streak_limit then begin
              bland := true;
              Tel.Counter.incr tel_bland;
              if Log.would_log Log.Debug then
                Log.debug "simplex.bland_switch"
                  [ Log.int "degenerate_streak" !streak; Log.int "iteration" iter ]
            end
          end
          else streak := 0;
          pivot t obj obj_rhs ~row:!best ~col;
          loop (iter + 1)
        end
      end
      end
    in
    loop 0

  (* Objective row [z_j - c_j] for cost vector [cost] under the current
     basis, together with the current objective value. *)
  let price_out t cost =
    let m = Array.length t.rows in
    let obj = Array.make t.ncols F.zero in
    for j = 0 to t.ncols - 1 do
      let s = ref (F.neg cost.(j)) in
      for i = 0 to m - 1 do
        let cb = cost.(t.basis.(i)) in
        if not (F.is_zero cb) then s := F.add !s (F.mul cb t.rows.(i).(j))
      done;
      obj.(j) <- !s
    done;
    let value = ref F.zero in
    for i = 0 to m - 1 do
      let cb = cost.(t.basis.(i)) in
      if not (F.is_zero cb) then value := F.add !value (F.mul cb t.rhs.(i))
    done;
    (obj, ref !value)

  let solve_standard ~a ~b ~c =
    let m = Array.length a in
    let n = Array.length c in
    (* Columns: n structural, m slacks, then one artificial per negative
       right-hand side. *)
    let negative_rows = ref [] in
    Array.iteri (fun i bi -> if is_neg bi then negative_rows := i :: !negative_rows) b;
    let artificial_of = Array.make m (-1) in
    let n_art = List.length !negative_rows in
    List.iteri (fun k i -> artificial_of.(i) <- n + m + k) (List.rev !negative_rows);
    let ncols = n + m + n_art in
    let rows =
      Array.init m (fun i ->
          let row = Array.make ncols F.zero in
          let flip = artificial_of.(i) >= 0 in
          for j = 0 to n - 1 do
            row.(j) <- (if flip then F.neg a.(i).(j) else a.(i).(j))
          done;
          row.(n + i) <- (if flip then neg_one else F.one);
          if flip then row.(artificial_of.(i)) <- F.one;
          row)
    in
    let rhs = Array.init m (fun i -> if artificial_of.(i) >= 0 then F.neg b.(i) else b.(i)) in
    let basis = Array.init m (fun i -> if artificial_of.(i) >= 0 then artificial_of.(i) else n + i) in
    let t = { rows; rhs; basis; ncols } in
    let is_artificial j = j >= n + m in
    let infeasible = ref false in
    if n_art > 0 then begin
      (* Phase 1: maximize -(sum of artificials). *)
      let cost1 = Array.init ncols (fun j -> if is_artificial j then neg_one else F.zero) in
      let obj, obj_rhs = price_out t cost1 in
      (match optimize t obj obj_rhs ~allowed:(fun _ -> true) with
      | `Unbounded -> assert false (* phase-1 objective is bounded above by 0 *)
      | `Optimal -> if is_neg !obj_rhs then infeasible := true);
      if not !infeasible then begin
        (* Drive remaining basic artificials out, or drop redundant rows. *)
        let keep = Array.make m true in
        for i = 0 to m - 1 do
          if is_artificial t.basis.(i) then begin
            let col = ref (-1) in
            (try
               for j = 0 to (n + m) - 1 do
                 if not (F.is_zero t.rows.(i).(j)) then begin
                   col := j;
                   raise Exit
                 end
               done
             with Exit -> ());
            if !col >= 0 then begin
              let dummy_obj = Array.make ncols F.zero and dummy_rhs = ref F.zero in
              pivot t dummy_obj dummy_rhs ~row:i ~col:!col
            end
            else keep.(i) <- false
          end
        done;
        (* Rebuild without artificial columns and redundant rows. *)
        let live = ref [] in
        for i = m - 1 downto 0 do
          if keep.(i) then live := i :: !live
        done;
        let live = Array.of_list !live in
        t.rows <- Array.map (fun i -> Array.sub t.rows.(i) 0 (n + m)) live;
        t.rhs <- Array.map (fun i -> t.rhs.(i)) live;
        t.basis <- Array.map (fun i -> t.basis.(i)) live;
        t.ncols <- n + m
      end
    end;
    if !infeasible then Infeasible
    else begin
      (* Phase 2: maximize the real objective. *)
      let cost2 = Array.init t.ncols (fun j -> if j < n then c.(j) else F.zero) in
      let obj, obj_rhs = price_out t cost2 in
      match optimize t obj obj_rhs ~allowed:(fun _ -> true) with
      | `Unbounded -> Unbounded
      | `Optimal ->
          let x = Array.make n F.zero in
          Array.iteri (fun i v -> if v < n then x.(v) <- t.rhs.(i)) t.basis;
          let value = ref F.zero in
          for j = 0 to n - 1 do
            value := F.add !value (F.mul c.(j) x.(j))
          done;
          Optimal { value = !value; point = x }
    end

  let solve_free ~a ~b ~c =
    let n = Array.length c in
    let a' = Array.map (fun row -> Array.init (2 * n) (fun j -> if j < n then row.(j) else F.neg row.(j - n))) a in
    let c' = Array.init (2 * n) (fun j -> if j < n then c.(j) else F.neg c.(j - n)) in
    match solve_standard ~a:a' ~b ~c:c' with
    | Infeasible -> Infeasible
    | Unbounded -> Unbounded
    | Optimal { value; point } ->
        Optimal { value; point = Array.init n (fun j -> F.sub point.(j) point.(n + j)) }

  let feasible ~a ~b =
    let n = if Array.length a = 0 then 0 else Array.length a.(0) in
    match solve_free ~a ~b ~c:(Array.make n F.zero) with
    | Infeasible -> None
    | Unbounded -> None (* cannot happen with a zero objective *)
    | Optimal { point; _ } -> Some point
end
