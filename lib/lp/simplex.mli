(** Two-phase primal simplex, functorized over an ordered field.

    One implementation serves both the floating-point instance (fast,
    tolerance-based) and the exact rational instance (slow, certified).
    The entering rule is Dantzig's (most negative reduced cost); after
    a streak of degenerate pivots it falls back to Bland's smallest-
    index anti-cycling rule, which terminates on every input in exact
    arithmetic.  A generous iteration cap remains as a last-resort
    guard against float round-off oscillation: hitting it reports the
    current (primal-feasible) vertex instead of raising, and counts
    the event in the [simplex.cap_hits] telemetry counter along with
    [simplex.pivots], [simplex.degenerate_pivots] and
    [simplex.bland_switches]. *)

module type FIELD = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val compare : t -> t -> int
  val of_int : int -> t

  val is_zero : t -> bool
  (** Exact zero test, or a tolerance test for inexact fields. *)

  val pp : Format.formatter -> t -> unit
end

type 'num outcome =
  | Infeasible
  | Unbounded
  | Optimal of { value : 'num; point : 'num array }

module Make (F : FIELD) : sig
  val solve_standard : a:F.t array array -> b:F.t array -> c:F.t array -> F.t outcome
  (** Maximize [c·x] subject to [A x <= b], [x >= 0].
      [a] has one row per constraint. *)

  val solve_free : a:F.t array array -> b:F.t array -> c:F.t array -> F.t outcome
  (** Maximize [c·x] subject to [A x <= b] with free (sign-unrestricted)
      variables, by the standard [x = x⁺ − x⁻] split. *)

  val feasible : a:F.t array array -> b:F.t array -> F.t array option
  (** A point of [{x | A x <= b}] (free variables), if any. *)
end
