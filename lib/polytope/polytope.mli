(** Convex polyhedra in halfspace representation [{x | A x <= b}].

    The float-level geometric object behind a generalized tuple: the
    samplers walk inside it, the LP layer measures it, and the affine
    rounding maps it.  Strictness of the original constraints is
    deliberately dropped — all volume statements in the paper are
    insensitive to boundaries. *)

type t = private {
  dim : int;
  a : Mat.t;
  b : Vec.t;
  flat : float array;
      (** Row-major copy of [a] ([m·dim] entries); the cache-friendly
          representation every hot path (membership, chords, the
          incremental kernel) runs on.  Maintained by the constructors —
          treat as read-only. *)
}

val make : dim:int -> Mat.t -> Vec.t -> t
(** @raise Invalid_argument on shape mismatch. *)

val of_tuple : dim:int -> Dnf.tuple -> t
(** Halfspaces of a generalized tuple; equality atoms become two
    opposite inequalities. *)

val to_tuple : t -> Dnf.tuple
(** Back to exact atoms (coefficients via {!Scdb_num.Rational.of_float},
    so the round-trip is exact on dyadic data). *)

val box : Vec.t -> Vec.t -> t
val unit_cube : int -> t
val cube : int -> float -> t
(** [cube d r] is [[-r,r]^d]. *)

val simplex : int -> t
(** Standard simplex [{x >= 0, Σ x <= 1}]. *)

val cross_polytope : int -> float -> t
(** L1 ball of radius [r]: [2^d] facets. *)

val dim : t -> int
val num_constraints : t -> int

val mem : ?slack:float -> t -> Vec.t -> bool

val violation : t -> Vec.t -> float
(** [max_i (a_i·x − b_i)]: non-positive iff the point is inside. *)

val add_halfspace : t -> Vec.t -> float -> t
(** Intersect with [{x | w·x <= c}]. *)

val inter : t -> t -> t

val transform : Affine.t -> t -> t
(** Image under an invertible affine map:
    [transform f p = {f x | x ∈ p}]. *)

val translate : Vec.t -> t -> t

val chebyshev : t -> (Vec.t * float) option
(** Centre and radius of a largest inscribed ball; [None] if empty or
    the LP is unbounded (unbounded polyhedron). *)

val bounding_box : t -> (Vec.t * Vec.t) option
(** Componentwise LP bounds; [None] if empty or unbounded. *)

val is_empty : t -> bool
val is_bounded : t -> bool

val sandwich : t -> (Vec.t * float * float) option
(** [(centre, r_inf, r_sup)]: an inscribed ball radius and an enclosing
    ball radius around the Chebyshev centre — the well-boundedness
    witnesses of the paper.  [None] for empty or unbounded bodies. *)

val line_intersection : t -> Vec.t -> Vec.t -> (float * float) option
(** [line_intersection p x dir]: the parameter interval [(tmin, tmax)]
    of [{t | x + t·dir ∈ p}], or [None] when empty.  Central to
    hit-and-run sampling. *)

(** Incremental walk kernel.

    A {!Kernel.cursor} tracks a moving point [x] together with the
    per-row products [⟨a_i, x⟩] (the [Ax] cache).  After a chord step
    [x ← x + t·d] the cache is updated as [Ax ← Ax + t·(A·d)] — [O(m)]
    instead of the [O(m·d)] recomputation — and a single-coordinate
    lattice move only touches one column.  All scratch space lives in
    the cursor, so the per-step operations below perform no heap
    allocation; this is the engine behind [Hit_and_run.sample_polytope]
    and [Walk.sample_polytope].

    Invariant: [products c] equals [A·(pos c)] up to rounding drift,
    which is bounded by an exact recomputation every
    [refresh_interval] steps. *)
module Kernel : sig
  type cursor

  val refresh_interval : int

  val make : t -> Vec.t -> cursor
  (** Cursor at a start point (copied).
      @raise Invalid_argument on dimension mismatch. *)

  val pos : cursor -> Vec.t
  (** Copy of the current position. *)

  val products : cursor -> float array
  (** The cached [⟨a_i, x⟩] row products — read-only. *)

  val violation : cursor -> float
  val inside : ?slack:float -> cursor -> bool

  val chord : cursor -> Vec.t -> bool
  (** Intersect the line [x + t·dir] with the body using the cached
      products: one [O(m·d)] pass that also records [A·dir] for
      {!advance}.  Returns [false] when the chord is empty; otherwise
      the interval is available via {!lo} and {!hi}.  Allocation-free. *)

  val lo : cursor -> float
  val hi : cursor -> float
  (** Parameter interval of the latest {!chord}; only meaningful after
      a [chord] call that returned [true]. *)

  val advance : cursor -> Vec.t -> float -> unit
  (** [advance c dir t]: move [x ← x + t·dir] for the direction passed
      to the latest {!chord}, updating the product cache incrementally
      in [O(m + d)].  Allocation-free. *)

  val try_set_coord : ?slack:float -> cursor -> int -> float -> bool
  (** [try_set_coord c j v]: tentatively replace coordinate [j] by [v];
      commit and return [true] iff the moved point still satisfies
      every constraint within [slack].  [O(m)] — the lattice-walk step.
      Allocation-free. *)

  val refresh : cursor -> unit
  (** Recompute the product cache from the current position. *)

  (** Batched multi-chain kernel (structure of arrays).

      [Batch] steps K chains per pass over the flat constraint matrix:
      positions, directions and [A·x] caches are chain-major blocks of
      one contiguous float array each, and the shared passes walk
      chains in register blocks of four so each matrix element is
      loaded once per block and every dot-product accumulator stays in
      a register.  Per-chain arithmetic (accumulation pairing, cross-
      multiplied chord comparisons, refresh cadence) replicates the
      single-chain {!cursor} bit-for-bit, so a chain stepped through
      [Batch] produces the same trajectory as the same chain stepped
      through the cursor.  All scratch lives in the batch state: the
      per-step operations below are allocation-free (test-enforced).

      This flat SoA layout is the compilation target contract for the
      plan→kernel compiler (see DESIGN.md). *)
  module Batch : sig
    type batch

    val make : t -> Vec.t array -> batch
    (** Batch over K start points (copied), one chain each.
        @raise Invalid_argument on K = 0 or dimension mismatch. *)

    val chains : batch -> int
    val dim : batch -> int

    val pos : batch -> int -> Vec.t
    (** Copy of chain [c]'s current position. *)

    val positions : batch -> float array
    (** The raw chain-major [K×dim] position block — read-only. *)

    val set_dir : batch -> int -> Vec.t -> unit
    (** Stage chain [c]'s direction (or ball-walk displacement) into its
        slot of the chain-major direction block.  Allocation-free. *)

    val set_pos : batch -> int -> Vec.t -> unit
    (** [set_pos b c start]: reset chain [c] to [start] (copied) and
        rebuild its cache block — equivalent to chain [c] of a fresh
        {!make}, so a long-lived batch can be reused across draws
        without re-running construction.
        @raise Invalid_argument on dimension mismatch. *)

    val directions : batch -> float array
    (** The raw chain-major [K×dim] direction staging block; chain [c]
        owns [c·dim .. c·dim + dim − 1].  Writing a slot directly (e.g.
        via [Rng.unit_vector_slice]) is equivalent to {!set_dir} and
        skips the intermediate staging vector. *)

    val chord_all : batch -> unit
    (** Intersect every chain's line [x_c + t·dir_c] with the body in
        one shared pass over the matrix, recording [A·dir_c] for
        {!advance}.  Endpoints via {!lo}/{!hi}; a chain whose chord is
        empty gets [lo >= hi] or non-finite endpoints, exactly like the
        single-chain {!chord} returning [false].  Allocation-free. *)

    val lo : batch -> int -> float
    val hi : batch -> int -> float
    (** Chord interval of chain [c] from the latest {!chord_all}. *)

    val lows : batch -> float array
    val highs : batch -> float array
    (** The raw per-chain chord-endpoint arrays behind {!lo}/{!hi} —
        read-only, indexed by chain.  The samplers' accept loops read
        these directly, one array load per chain instead of two calls
        per draw. *)

    val advance : batch -> int -> float -> unit
    (** [advance b c t]: move chain [c] along its staged direction by
        [t], updating its cache block incrementally; exact refresh
        every {!refresh_interval} accepted moves.  Allocation-free. *)

    val propose_all : batch -> unit
    (** Ball-walk support: with per-chain displacements staged via
        {!set_dir}, compute every chain's worst constraint violation at
        [x_c + delta_c] in one shared pass (read via {!violation});
        commit an accepted chain with [advance b c 1.0].
        Allocation-free. *)

    val violation : batch -> int -> float
    (** Worst violation of chain [c]'s latest {!propose_all} proposal;
        non-positive iff the proposed point is inside. *)

    val violations : batch -> float array
    (** The raw per-chain violation array behind {!violation} —
        read-only, indexed by chain. *)

    val try_set_coord : ?slack:float -> batch -> int -> int -> float -> bool
    (** [try_set_coord b c j v]: the lattice-walk move for chain [c] —
        commit coordinate [j := v] iff still feasible within [slack].
        Allocation-free. *)

    val refresh_chain : batch -> int -> unit
    (** Recompute chain [c]'s cache block from its position. *)
  end
end

val pp : Format.formatter -> t -> unit
