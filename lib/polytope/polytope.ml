type t = { dim : int; a : Mat.t; b : Vec.t; flat : float array }

(* [flat] is the row-major copy of [a] every hot path runs on: one
   cache-friendly array instead of an array of row pointers.  It is
   rebuilt by [create], the single internal constructor, so it can
   never go stale. *)

let flatten dim a =
  let m = Array.length a in
  let f = Array.make (m * dim) 0.0 in
  for i = 0 to m - 1 do
    Array.blit a.(i) 0 f (i * dim) dim
  done;
  f

let create dim a b = { dim; a; b; flat = flatten dim a }

let make ~dim a b =
  let m, d = Mat.dims a in
  if m <> Vec.dim b then invalid_arg "Polytope.make: row count mismatch";
  if m > 0 && d <> dim then invalid_arg "Polytope.make: dimension mismatch";
  create dim (Mat.copy a) (Vec.copy b)

let of_tuple ~dim tuple =
  let rows =
    List.concat_map
      (fun (atom : Atom.t) ->
        match atom.op with
        | Atom.Le | Atom.Lt -> [ Atom.to_halfspace dim atom ]
        | Atom.Eq ->
            let w, c = Term.to_float_row dim atom.term in
            [ (w, -.c); (Vec.neg w, c) ])
      tuple
  in
  create dim (Array.of_list (List.map fst rows)) (Array.of_list (List.map snd rows))

let to_tuple t =
  Array.to_list
    (Array.mapi
       (fun i row ->
         let term = ref (Term.const (Rational.neg (Rational.of_float t.b.(i)))) in
         Array.iteri (fun j c -> term := Term.add !term (Term.monomial (Rational.of_float c) j)) row;
         Atom.make !term Atom.Le)
       t.a)

let box lo hi =
  let d = Vec.dim lo in
  let a = Array.init (2 * d) (fun i -> if i < d then Vec.basis d i else Vec.neg (Vec.basis d (i - d))) in
  let b = Array.init (2 * d) (fun i -> if i < d then hi.(i) else -.lo.(i - d)) in
  create d a b

let unit_cube d = box (Vec.create d) (Array.make d 1.0)
let cube d r = box (Array.make d (-.r)) (Array.make d r)

let simplex d =
  let a = Array.init (d + 1) (fun i -> if i < d then Vec.neg (Vec.basis d i) else Array.make d 1.0) in
  let b = Array.init (d + 1) (fun i -> if i < d then 0.0 else 1.0) in
  create d a b

let cross_polytope d r =
  let rec signs i acc = if i = d then [ acc ] else signs (i + 1) (1.0 :: acc) @ signs (i + 1) (-1.0 :: acc) in
  let rows = List.map (fun s -> Vec.of_list (List.rev s)) (signs 0 []) in
  create d (Array.of_list rows) (Array.make (1 lsl d) r)

let dim t = t.dim
let num_constraints t = Array.length t.b

(* ⟨a_i, v⟩ straight off the flat rows; the shared product kernel of
   [violation], [mem], [line_intersection] and the incremental cursor.
   Caller guarantees [Array.length v = t.dim] and [i] in range. *)
let[@inline] row_dot t i v =
  let d = t.dim in
  let flat = t.flat in
  let base = i * d in
  (* Two accumulators so consecutive fused multiply-adds are not
     serialized on a single loop-carried dependency. *)
  let s0 = ref 0.0 and s1 = ref 0.0 in
  let j = ref 0 in
  while !j + 1 < d do
    s0 := !s0 +. (Array.unsafe_get flat (base + !j) *. Array.unsafe_get v !j);
    s1 := !s1 +. (Array.unsafe_get flat (base + !j + 1) *. Array.unsafe_get v (!j + 1));
    j := !j + 2
  done;
  if !j < d then s0 := !s0 +. (Array.unsafe_get flat (base + !j) *. Array.unsafe_get v !j);
  !s0 +. !s1

let[@inline] check_point t x =
  if Vec.dim x <> t.dim then invalid_arg "Polytope: dimension mismatch"

let violation t x =
  let m = Array.length t.b in
  if m = 0 then 0.0
  else begin
    check_point t x;
    let worst = ref neg_infinity in
    for i = 0 to m - 1 do
      let v = row_dot t i x -. Array.unsafe_get t.b i in
      if v > !worst then worst := v
    done;
    !worst
  end

let mem ?(slack = 0.0) t x = violation t x <= slack

let add_halfspace t w c =
  create t.dim (Array.append t.a [| Vec.copy w |]) (Array.append t.b [| c |])

let inter p q =
  if p.dim <> q.dim then invalid_arg "Polytope.inter: dimension mismatch";
  create p.dim (Array.append p.a q.a) (Array.append p.b q.b)

let transform f t =
  (* y = A_f x + b_f  ⇒  x = A_f⁻¹ (y − b_f); a_i·x <= b_i becomes
     (a_i A_f⁻¹)·y <= b_i + (a_i A_f⁻¹)·b_f. *)
  let inv = (f : Affine.t).inv_mat in
  let a' = Array.map (fun row -> Mat.mul_vec (Mat.transpose inv) row) t.a in
  let b' = Array.mapi (fun i row' -> t.b.(i) +. Vec.dot row' f.offset) a' in
  create t.dim a' b'

let translate v t = transform (Affine.translation v) t

let chebyshev t = Scdb_lp.Lp.chebyshev ~a:t.a ~b:t.b

let bounding_box t =
  let d = t.dim in
  let lo = Vec.create d and hi = Vec.create d in
  let ok = ref true in
  for i = 0 to d - 1 do
    if !ok then begin
      match
        ( Scdb_lp.Lp.bound ~a:t.a ~b:t.b ~dir:(Vec.basis d i),
          Scdb_lp.Lp.bound ~a:t.a ~b:t.b ~dir:(Vec.neg (Vec.basis d i)) )
      with
      | Some up, Some down ->
          hi.(i) <- up;
          lo.(i) <- -.down
      | _ -> ok := false
    end
  done;
  if !ok then Some (lo, hi) else None

let is_empty t = Option.is_none (Scdb_lp.Lp.feasible_point ~a:t.a ~b:t.b)

let is_bounded t = is_empty t || Option.is_some (bounding_box t)

let sandwich t =
  match chebyshev t with
  | None -> None
  | Some (centre, r_inf) -> (
      match bounding_box t with
      | None -> None
      | Some (lo, hi) ->
          (* Enclosing radius: farthest box corner from the centre. *)
          let r_sup = ref 0.0 in
          for i = 0 to t.dim - 1 do
            let e = Float.max (Float.abs (hi.(i) -. centre.(i))) (Float.abs (centre.(i) -. lo.(i))) in
            r_sup := !r_sup +. (e *. e)
          done;
          Some (centre, r_inf, sqrt !r_sup))

let line_intersection t x dir =
  (* a_i·(x + s·dir) <= b_i  ⇔  s·(a_i·dir) <= b_i − a_i·x. *)
  check_point t x;
  check_point t dir;
  let m = Array.length t.b in
  let tmin = ref neg_infinity and tmax = ref infinity in
  for i = 0 to m - 1 do
    let denom = row_dot t i dir in
    let slack = Array.unsafe_get t.b i -. row_dot t i x in
    if Float.abs denom < 1e-14 then begin
      if slack < 0.0 then begin
        tmin := infinity;
        tmax := neg_infinity
      end
    end
    else if denom > 0.0 then tmax := Float.min !tmax (slack /. denom)
    else tmin := Float.max !tmin (slack /. denom)
  done;
  if !tmin > !tmax then None else Some (!tmin, !tmax)

module Kernel = struct
  type cursor = {
    poly : t;
    x : float array; (* current position *)
    ax : float array; (* cached ⟨a_i, x⟩ per row — the incremental invariant *)
    ad : float array; (* scratch: per-row products of the latest chord/move *)
    range : float array; (* [| lo; hi |] of the latest chord (flat, so writes don't box) *)
    mutable since_refresh : int;
  }

  (* Rounding drift of the [ax] cache grows with the number of
     incremental updates; recomputing every so often keeps it at the
     level of a single fresh evaluation without changing the asymptotic
     step cost. *)
  let refresh_interval = 256

  let refresh c =
    let m = Array.length c.poly.b in
    for i = 0 to m - 1 do
      Array.unsafe_set c.ax i (row_dot c.poly i c.x)
    done;
    c.since_refresh <- 0

  let make poly x =
    check_point poly x;
    let m = Array.length poly.b in
    let c =
      {
        poly;
        x = Vec.copy x;
        ax = Array.make m 0.0;
        ad = Array.make m 0.0;
        range = Array.make 2 0.0;
        since_refresh = 0;
      }
    in
    refresh c;
    c

  let pos c = Vec.copy c.x
  let products c = c.ax

  let violation c =
    let m = Array.length c.poly.b in
    if m = 0 then 0.0
    else begin
      let worst = ref neg_infinity in
      for i = 0 to m - 1 do
        let v = Array.unsafe_get c.ax i -. Array.unsafe_get c.poly.b i in
        if v > !worst then worst := v
      done;
      !worst
    end

  let inside ?(slack = 0.0) c = violation c <= slack

  let chord c dir =
    check_point c.poly dir;
    let poly = c.poly in
    let m = Array.length poly.b in
    let b = poly.b and ax = c.ax and ad = c.ad in
    (* Track each endpoint as a (num, den) pair — den > 0 for the upper
       bound, den < 0 for the lower — and compare candidates by
       cross-multiplication, so the loop performs no division at all;
       the two winning ratios are divided once at the end.  Both
       comparisons multiply through by a positive quantity
       (den·candidate_den), so they order exactly like the quotients.
       (Products of a slack and a direction product stay far from the
       float range for any realistically scaled polytope; callers with
       ~1e150 coefficients should use [line_intersection].) *)
    let hi_num = ref infinity and hi_den = ref 1.0 in
    let lo_num = ref infinity and lo_den = ref (-1.0) in
    for i = 0 to m - 1 do
      let denom = row_dot poly i dir in
      Array.unsafe_set ad i denom;
      let slack = Array.unsafe_get b i -. Array.unsafe_get ax i in
      if Float.abs denom < 1e-14 then begin
        if slack < 0.0 then begin
          (* Line parallel to a violated constraint: empty chord, and no
             later row can reopen it (the updates below never fire
             against ∓infinity bounds). *)
          lo_num := neg_infinity;
          hi_num := neg_infinity;
          lo_den := -1.0;
          hi_den := 1.0
        end
      end
      else if denom > 0.0 then begin
        if slack *. !hi_den < !hi_num *. denom then begin
          hi_num := slack;
          hi_den := denom
        end
      end
      else if slack *. !lo_den > !lo_num *. denom then begin
        lo_num := slack;
        lo_den := denom
      end
    done;
    let tmin = !lo_num /. !lo_den and tmax = !hi_num /. !hi_den in
    Array.unsafe_set c.range 0 tmin;
    Array.unsafe_set c.range 1 tmax;
    tmin <= tmax

  let lo c = c.range.(0)
  let hi c = c.range.(1)

  let advance c dir s =
    let d = c.poly.dim in
    for j = 0 to d - 1 do
      Array.unsafe_set c.x j (Array.unsafe_get c.x j +. (s *. Array.unsafe_get dir j))
    done;
    let m = Array.length c.poly.b in
    for i = 0 to m - 1 do
      Array.unsafe_set c.ax i (Array.unsafe_get c.ax i +. (s *. Array.unsafe_get c.ad i))
    done;
    c.since_refresh <- c.since_refresh + 1;
    if c.since_refresh >= refresh_interval then refresh c

  let try_set_coord ?(slack = 0.0) c j v =
    let poly = c.poly in
    let d = poly.dim in
    if j < 0 || j >= d then invalid_arg "Polytope.Kernel.try_set_coord: coordinate out of range";
    let dc = v -. Array.unsafe_get c.x j in
    let m = Array.length poly.b in
    let flat = poly.flat in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < m do
      let p = dc *. Array.unsafe_get flat ((!i * d) + j) in
      Array.unsafe_set c.ad !i p;
      if Array.unsafe_get c.ax !i +. p -. Array.unsafe_get poly.b !i > slack then ok := false;
      incr i
    done;
    if !ok then begin
      for i = 0 to m - 1 do
        Array.unsafe_set c.ax i (Array.unsafe_get c.ax i +. Array.unsafe_get c.ad i)
      done;
      Array.unsafe_set c.x j v;
      c.since_refresh <- c.since_refresh + 1;
      if c.since_refresh >= refresh_interval then refresh c
    end;
    !ok
end

let pp fmt t =
  Format.fprintf fmt "@[<v>polytope in R^%d:@ " t.dim;
  Array.iteri (fun i row -> Format.fprintf fmt "%a . x <= %g@ " Vec.pp row t.b.(i)) t.a;
  Format.fprintf fmt "@]"
