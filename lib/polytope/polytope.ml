type t = { dim : int; a : Mat.t; b : Vec.t; flat : float array }

(* [flat] is the row-major copy of [a] every hot path runs on: one
   cache-friendly array instead of an array of row pointers.  It is
   rebuilt by [create], the single internal constructor, so it can
   never go stale. *)

let flatten dim a =
  let m = Array.length a in
  let f = Array.make (m * dim) 0.0 in
  for i = 0 to m - 1 do
    Array.blit a.(i) 0 f (i * dim) dim
  done;
  f

let create dim a b = { dim; a; b; flat = flatten dim a }

let make ~dim a b =
  let m, d = Mat.dims a in
  if m <> Vec.dim b then invalid_arg "Polytope.make: row count mismatch";
  if m > 0 && d <> dim then invalid_arg "Polytope.make: dimension mismatch";
  create dim (Mat.copy a) (Vec.copy b)

let of_tuple ~dim tuple =
  let rows =
    List.concat_map
      (fun (atom : Atom.t) ->
        match atom.op with
        | Atom.Le | Atom.Lt -> [ Atom.to_halfspace dim atom ]
        | Atom.Eq ->
            let w, c = Term.to_float_row dim atom.term in
            [ (w, -.c); (Vec.neg w, c) ])
      tuple
  in
  create dim (Array.of_list (List.map fst rows)) (Array.of_list (List.map snd rows))

let to_tuple t =
  Array.to_list
    (Array.mapi
       (fun i row ->
         let term = ref (Term.const (Rational.neg (Rational.of_float t.b.(i)))) in
         Array.iteri (fun j c -> term := Term.add !term (Term.monomial (Rational.of_float c) j)) row;
         Atom.make !term Atom.Le)
       t.a)

let box lo hi =
  let d = Vec.dim lo in
  let a = Array.init (2 * d) (fun i -> if i < d then Vec.basis d i else Vec.neg (Vec.basis d (i - d))) in
  let b = Array.init (2 * d) (fun i -> if i < d then hi.(i) else -.lo.(i - d)) in
  create d a b

let unit_cube d = box (Vec.create d) (Array.make d 1.0)
let cube d r = box (Array.make d (-.r)) (Array.make d r)

let simplex d =
  let a = Array.init (d + 1) (fun i -> if i < d then Vec.neg (Vec.basis d i) else Array.make d 1.0) in
  let b = Array.init (d + 1) (fun i -> if i < d then 0.0 else 1.0) in
  create d a b

let cross_polytope d r =
  let rec signs i acc = if i = d then [ acc ] else signs (i + 1) (1.0 :: acc) @ signs (i + 1) (-1.0 :: acc) in
  let rows = List.map (fun s -> Vec.of_list (List.rev s)) (signs 0 []) in
  create d (Array.of_list rows) (Array.make (1 lsl d) r)

let dim t = t.dim
let num_constraints t = Array.length t.b

(* ⟨a_i, v⟩ straight off the flat rows; the shared product kernel of
   [violation], [mem], [line_intersection] and the incremental cursor.
   Caller guarantees [Array.length v = t.dim] and [i] in range. *)
let[@inline] row_dot t i v =
  let d = t.dim in
  let flat = t.flat in
  let base = i * d in
  (* Two accumulators so consecutive fused multiply-adds are not
     serialized on a single loop-carried dependency. *)
  let s0 = ref 0.0 and s1 = ref 0.0 in
  let j = ref 0 in
  while !j + 1 < d do
    s0 := !s0 +. (Array.unsafe_get flat (base + !j) *. Array.unsafe_get v !j);
    s1 := !s1 +. (Array.unsafe_get flat (base + !j + 1) *. Array.unsafe_get v (!j + 1));
    j := !j + 2
  done;
  if !j < d then s0 := !s0 +. (Array.unsafe_get flat (base + !j) *. Array.unsafe_get v !j);
  !s0 +. !s1

(* [row_dot] against a vector stored at [off] inside a larger flat
   array (a chain's slice of a structure-of-arrays block).  Identical
   accumulation order, so results are bit-identical to [row_dot] on a
   copied-out vector. *)
let[@inline] row_dot_off t i v off =
  let d = t.dim in
  let flat = t.flat in
  let base = i * d in
  let s0 = ref 0.0 and s1 = ref 0.0 in
  let j = ref 0 in
  while !j + 1 < d do
    s0 := !s0 +. (Array.unsafe_get flat (base + !j) *. Array.unsafe_get v (off + !j));
    s1 := !s1 +. (Array.unsafe_get flat (base + !j + 1) *. Array.unsafe_get v (off + !j + 1));
    j := !j + 2
  done;
  if !j < d then
    s0 := !s0 +. (Array.unsafe_get flat (base + !j) *. Array.unsafe_get v (off + !j));
  !s0 +. !s1

let[@inline] check_point t x =
  if Vec.dim x <> t.dim then invalid_arg "Polytope: dimension mismatch"

let violation t x =
  let m = Array.length t.b in
  if m = 0 then 0.0
  else begin
    check_point t x;
    let worst = ref neg_infinity in
    for i = 0 to m - 1 do
      let v = row_dot t i x -. Array.unsafe_get t.b i in
      if v > !worst then worst := v
    done;
    !worst
  end

let mem ?(slack = 0.0) t x = violation t x <= slack

let add_halfspace t w c =
  create t.dim (Array.append t.a [| Vec.copy w |]) (Array.append t.b [| c |])

let inter p q =
  if p.dim <> q.dim then invalid_arg "Polytope.inter: dimension mismatch";
  create p.dim (Array.append p.a q.a) (Array.append p.b q.b)

let transform f t =
  (* y = A_f x + b_f  ⇒  x = A_f⁻¹ (y − b_f); a_i·x <= b_i becomes
     (a_i A_f⁻¹)·y <= b_i + (a_i A_f⁻¹)·b_f. *)
  let inv = (f : Affine.t).inv_mat in
  let a' = Array.map (fun row -> Mat.mul_vec (Mat.transpose inv) row) t.a in
  let b' = Array.mapi (fun i row' -> t.b.(i) +. Vec.dot row' f.offset) a' in
  create t.dim a' b'

let translate v t = transform (Affine.translation v) t

let chebyshev t = Scdb_lp.Lp.chebyshev ~a:t.a ~b:t.b

let bounding_box t =
  let d = t.dim in
  let lo = Vec.create d and hi = Vec.create d in
  let ok = ref true in
  for i = 0 to d - 1 do
    if !ok then begin
      match
        ( Scdb_lp.Lp.bound ~a:t.a ~b:t.b ~dir:(Vec.basis d i),
          Scdb_lp.Lp.bound ~a:t.a ~b:t.b ~dir:(Vec.neg (Vec.basis d i)) )
      with
      | Some up, Some down ->
          hi.(i) <- up;
          lo.(i) <- -.down
      | _ -> ok := false
    end
  done;
  if !ok then Some (lo, hi) else None

let is_empty t = Option.is_none (Scdb_lp.Lp.feasible_point ~a:t.a ~b:t.b)

let is_bounded t = is_empty t || Option.is_some (bounding_box t)

let sandwich t =
  match chebyshev t with
  | None -> None
  | Some (centre, r_inf) -> (
      match bounding_box t with
      | None -> None
      | Some (lo, hi) ->
          (* Enclosing radius: farthest box corner from the centre. *)
          let r_sup = ref 0.0 in
          for i = 0 to t.dim - 1 do
            let e = Float.max (Float.abs (hi.(i) -. centre.(i))) (Float.abs (centre.(i) -. lo.(i))) in
            r_sup := !r_sup +. (e *. e)
          done;
          Some (centre, r_inf, sqrt !r_sup))

let line_intersection t x dir =
  (* a_i·(x + s·dir) <= b_i  ⇔  s·(a_i·dir) <= b_i − a_i·x. *)
  check_point t x;
  check_point t dir;
  let m = Array.length t.b in
  let tmin = ref neg_infinity and tmax = ref infinity in
  for i = 0 to m - 1 do
    let denom = row_dot t i dir in
    let slack = Array.unsafe_get t.b i -. row_dot t i x in
    if Float.abs denom < 1e-14 then begin
      if slack < 0.0 then begin
        tmin := infinity;
        tmax := neg_infinity
      end
    end
    else if denom > 0.0 then tmax := Float.min !tmax (slack /. denom)
    else tmin := Float.max !tmin (slack /. denom)
  done;
  if !tmin > !tmax then None else Some (!tmin, !tmax)

module Kernel = struct
  type cursor = {
    poly : t;
    x : float array; (* current position *)
    ax : float array; (* cached ⟨a_i, x⟩ per row — the incremental invariant *)
    ad : float array; (* scratch: per-row products of the latest chord/move *)
    range : float array; (* [| lo; hi |] of the latest chord (flat, so writes don't box) *)
    bounds : float array; (* chord-bound scratch: hi (num, den), lo (num, den) negated *)
    mutable since_refresh : int;
  }

  (* Rounding drift of the [ax] cache grows with the number of
     incremental updates; recomputing every so often keeps it at the
     level of a single fresh evaluation without changing the asymptotic
     step cost. *)
  let refresh_interval = 256

  let refresh c =
    let m = Array.length c.poly.b in
    for i = 0 to m - 1 do
      Array.unsafe_set c.ax i (row_dot c.poly i c.x)
    done;
    c.since_refresh <- 0

  let make poly x =
    check_point poly x;
    let m = Array.length poly.b in
    let c =
      {
        poly;
        x = Vec.copy x;
        ax = Array.make m 0.0;
        ad = Array.make m 0.0;
        range = Array.make 2 0.0;
        bounds = Array.make 4 0.0;
        since_refresh = 0;
      }
    in
    refresh c;
    c

  let pos c = Vec.copy c.x
  let products c = c.ax

  let violation c =
    let m = Array.length c.poly.b in
    if m = 0 then 0.0
    else begin
      let worst = ref neg_infinity in
      for i = 0 to m - 1 do
        let v = Array.unsafe_get c.ax i -. Array.unsafe_get c.poly.b i in
        if v > !worst then worst := v
      done;
      !worst
    end

  let inside ?(slack = 0.0) c = violation c <= slack

  let chord c dir =
    check_point c.poly dir;
    let poly = c.poly in
    let m = Array.length poly.b in
    let b = poly.b and ax = c.ax and ad = c.ad in
    (* Track each endpoint as a (num, den) pair — den > 0 for the upper
       bound, den < 0 for the lower — and compare candidates by
       cross-multiplication, so the loop performs no division at all;
       the two winning ratios are divided once at the end.  Both
       comparisons multiply through by a positive quantity
       (den·candidate_den), so they order exactly like the quotients.
       (Products of a slack and a direction product stay far from the
       float range for any realistically scaled polytope; callers with
       ~1e150 coefficients should use [line_intersection].)

       The lower bound is stored with numerator and denominator negated
       (slots 2–3): both negations are exact, so every compared product
       and the final quotient are bit-identical to the direct form —
       but both bound updates become the same "<" test, and the
       unpredictable sign of [denom] moves out of the branch and into
       the slot index. *)
    let bounds = c.bounds in
    Array.unsafe_set bounds 0 infinity;
    Array.unsafe_set bounds 1 1.0;
    Array.unsafe_set bounds 2 neg_infinity;
    Array.unsafe_set bounds 3 1.0;
    for i = 0 to m - 1 do
      let denom = row_dot poly i dir in
      Array.unsafe_set ad i denom;
      let slack = Array.unsafe_get b i -. Array.unsafe_get ax i in
      if Float.abs denom < 1e-14 then begin
        if slack < 0.0 then begin
          (* Line parallel to a violated constraint: empty chord, and no
             later row can reopen it (the updates below never fire
             against ∓infinity bounds). *)
          Array.unsafe_set bounds 0 neg_infinity;
          Array.unsafe_set bounds 1 1.0;
          Array.unsafe_set bounds 2 infinity;
          Array.unsafe_set bounds 3 1.0
        end
      end
      else begin
        let o = 2 * Bool.to_int (denom < 0.0) in
        if slack *. Array.unsafe_get bounds (o + 1) < Array.unsafe_get bounds o *. denom
        then
          if denom < 0.0 then begin
            Array.unsafe_set bounds o (-.slack);
            Array.unsafe_set bounds (o + 1) (-.denom)
          end
          else begin
            Array.unsafe_set bounds o slack;
            Array.unsafe_set bounds (o + 1) denom
          end
      end
    done;
    let tmin = Array.unsafe_get bounds 2 /. Array.unsafe_get bounds 3
    and tmax = Array.unsafe_get bounds 0 /. Array.unsafe_get bounds 1 in
    Array.unsafe_set c.range 0 tmin;
    Array.unsafe_set c.range 1 tmax;
    tmin <= tmax

  let lo c = c.range.(0)
  let hi c = c.range.(1)

  let advance c dir s =
    let d = c.poly.dim in
    for j = 0 to d - 1 do
      Array.unsafe_set c.x j (Array.unsafe_get c.x j +. (s *. Array.unsafe_get dir j))
    done;
    let m = Array.length c.poly.b in
    for i = 0 to m - 1 do
      Array.unsafe_set c.ax i (Array.unsafe_get c.ax i +. (s *. Array.unsafe_get c.ad i))
    done;
    c.since_refresh <- c.since_refresh + 1;
    if c.since_refresh >= refresh_interval then refresh c

  (* ---------------------------------------------------------------- *)
  (* Batched multi-chain state (structure of arrays)                   *)
  (* ---------------------------------------------------------------- *)

  (* K chains share one pass over the flat constraint matrix: each row
     is loaded once and dotted against all K directions (coordinate-
     major, so the inner chain loop is contiguous), amortizing the
     matrix traffic that dominates the single-chain chord.  Per-chain
     arithmetic — accumulation order, cross-multiplied comparisons,
     cache refresh cadence — replicates [cursor] exactly, so a chain
     stepped through [Batch] is bit-identical to the same chain stepped
     through the incremental cursor.  This flat layout is the contract
     the plan→kernel compiler (ROADMAP item 3) will target. *)
  module Batch = struct
    type batch = {
      poly : t;
      k : int; (* number of chains *)
      x : float array; (* chain-major k×d positions *)
      ax : float array; (* chain-major k×m cached ⟨a_i, x⟩ *)
      ad : float array; (* chain-major k×m products of the latest directions *)
      dir : float array; (* chain-major k×d per-chain directions *)
      (* Cross-multiplied chord bounds, two slots per chain: slot 2c
         holds the upper bound as the cursor stores it, slot 2c+1 holds
         the lower bound with numerator and denominator NEGATED.  Both
         negations are exact, so slot values, comparisons and the final
         divisions reproduce the cursor bit-for-bit — and the flipped
         sign makes both updates the same "num·den' < num'·den" test,
         keeping the unpredictable denominator-sign branch out of the
         hot row loop (the slot index absorbs it). *)
      bnum : float array; (* 2k-wide bound numerators *)
      bden : float array; (* 2k-wide bound denominators *)
      lo : float array; (* k-wide latest chord endpoints *)
      hi : float array;
      viol : float array; (* k-wide worst violation of the latest proposal *)
      since_refresh : int array;
    }

    let refresh_chain b c =
      let m = Array.length b.poly.b in
      let off = c * m in
      let xo = c * b.poly.dim in
      for i = 0 to m - 1 do
        Array.unsafe_set b.ax (off + i) (row_dot_off b.poly i b.x xo)
      done;
      b.since_refresh.(c) <- 0

    let make poly starts =
      let k = Array.length starts in
      if k < 1 then invalid_arg "Polytope.Kernel.Batch.make: no chains";
      Array.iter (check_point poly) starts;
      let d = poly.dim in
      let m = Array.length poly.b in
      let b =
        {
          poly;
          k;
          x = Array.make (k * d) 0.0;
          ax = Array.make (Stdlib.max 1 (k * m)) 0.0;
          ad = Array.make (Stdlib.max 1 (k * m)) 0.0;
          dir = Array.make (k * d) 0.0;
          bnum = Array.make (2 * k) 0.0;
          bden = Array.make (2 * k) 0.0;
          lo = Array.make k 0.0;
          hi = Array.make k 0.0;
          viol = Array.make k 0.0;
          since_refresh = Array.make k 0;
        }
      in
      Array.iteri (fun c start -> Array.blit start 0 b.x (c * d) d) starts;
      for c = 0 to k - 1 do
        refresh_chain b c
      done;
      b

    let chains b = b.k
    let dim b = b.poly.dim

    let positions b = b.x
    let pos b c = Array.sub b.x (c * b.poly.dim) b.poly.dim
    let directions b = b.dir

    let set_dir b c dir =
      let d = b.poly.dim in
      if Array.length dir <> d then invalid_arg "Polytope.Kernel.Batch.set_dir";
      Array.blit dir 0 b.dir (c * d) d

    let set_pos b c start =
      let d = b.poly.dim in
      if Array.length start <> d then invalid_arg "Polytope.Kernel.Batch.set_pos";
      Array.blit start 0 b.x (c * d) d;
      refresh_chain b c

    (* Both shared passes below ([chord_all], [propose_all]) open-code
       the same row × K-directions product: chains are processed in
       register blocks of four, so each matrix element is loaded once
       per block and all eight dot-product accumulators (two per chain,
       paired exactly like [row_dot]) live in registers instead of
       bouncing through scratch arrays.  Left-over chains (k mod 4) run
       one at a time with the cursor's own two-accumulator loop.  The
       loops are duplicated rather than abstracted into a higher-order
       function because a closure capturing the per-row continuation
       allocates on every call — and these are the allocation-free hot
       paths. *)

    (* Per-chain chord-bound update for [chord_all]; top-level (not a
       local closure — that would allocate per call) and [@inline
       always] so the unrolled epilogues feed it register values with
       no reload of the just-stored [A·dir] entry. *)
    let[@inline always] update_bound bnum bden c denom slack =
      if Float.abs denom < 1e-14 then begin
        if slack < 0.0 then begin
          (* Line parallel to a violated constraint: empty chord (same
             sentinel values as the single-chain cursor, lo slot
             negated). *)
          Array.unsafe_set bnum (2 * c) neg_infinity;
          Array.unsafe_set bden (2 * c) 1.0;
          Array.unsafe_set bnum ((2 * c) + 1) infinity;
          Array.unsafe_set bden ((2 * c) + 1) 1.0
        end
      end
      else begin
        let o = (2 * c) + Bool.to_int (denom < 0.0) in
        if slack *. Array.unsafe_get bden o < Array.unsafe_get bnum o *. denom
        then
          if denom < 0.0 then begin
            Array.unsafe_set bnum o (-.slack);
            Array.unsafe_set bden o (-.denom)
          end
          else begin
            Array.unsafe_set bnum o slack;
            Array.unsafe_set bden o denom
          end
      end

    let chord_all b =
      let poly = b.poly in
      let d = poly.dim and m = Array.length poly.b in
      let k = b.k in
      let flat = poly.flat and bvec = poly.b in
      let dir = b.dir in
      let ad = b.ad and ax = b.ax in
      let bnum = b.bnum and bden = b.bden in
      (* Cursor init hi = (∞, 1), lo = (∞, -1); the lo slot is stored
         negated: (-∞, 1). *)
      for c = 0 to k - 1 do
        Array.unsafe_set bnum (2 * c) infinity;
        Array.unsafe_set bden (2 * c) 1.0;
        Array.unsafe_set bnum ((2 * c) + 1) neg_infinity;
        Array.unsafe_set bden ((2 * c) + 1) 1.0
      done;
      let c0 = ref 0 in
      while !c0 + 3 < k do
        let da = !c0 * d in
        let db = da + d and dc = da + (2 * d) and dd = da + (3 * d) in
        let ma = !c0 * m in
        let mb = ma + m and mc = ma + (2 * m) and md = ma + (3 * m) in
        for i = 0 to m - 1 do
          let base = i * d in
          let s0a = ref 0.0 and s1a = ref 0.0 in
          let s0b = ref 0.0 and s1b = ref 0.0 in
          let s0c = ref 0.0 and s1c = ref 0.0 in
          let s0d = ref 0.0 and s1d = ref 0.0 in
          let j = ref 0 in
          while !j + 1 < d do
            let r0 = Array.unsafe_get flat (base + !j) in
            let r1 = Array.unsafe_get flat (base + !j + 1) in
            s0a := !s0a +. (r0 *. Array.unsafe_get dir (da + !j));
            s1a := !s1a +. (r1 *. Array.unsafe_get dir (da + !j + 1));
            s0b := !s0b +. (r0 *. Array.unsafe_get dir (db + !j));
            s1b := !s1b +. (r1 *. Array.unsafe_get dir (db + !j + 1));
            s0c := !s0c +. (r0 *. Array.unsafe_get dir (dc + !j));
            s1c := !s1c +. (r1 *. Array.unsafe_get dir (dc + !j + 1));
            s0d := !s0d +. (r0 *. Array.unsafe_get dir (dd + !j));
            s1d := !s1d +. (r1 *. Array.unsafe_get dir (dd + !j + 1));
            j := !j + 2
          done;
          if !j < d then begin
            let r0 = Array.unsafe_get flat (base + !j) in
            s0a := !s0a +. (r0 *. Array.unsafe_get dir (da + !j));
            s0b := !s0b +. (r0 *. Array.unsafe_get dir (db + !j));
            s0c := !s0c +. (r0 *. Array.unsafe_get dir (dc + !j));
            s0d := !s0d +. (r0 *. Array.unsafe_get dir (dd + !j))
          end;
          let sa = !s0a +. !s1a and sb = !s0b +. !s1b in
          let sc = !s0c +. !s1c and sd = !s0d +. !s1d in
          Array.unsafe_set ad (ma + i) sa;
          Array.unsafe_set ad (mb + i) sb;
          Array.unsafe_set ad (mc + i) sc;
          Array.unsafe_set ad (md + i) sd;
          let bi = Array.unsafe_get bvec i in
          update_bound bnum bden !c0 sa (bi -. Array.unsafe_get ax (ma + i));
          update_bound bnum bden (!c0 + 1) sb (bi -. Array.unsafe_get ax (mb + i));
          update_bound bnum bden (!c0 + 2) sc (bi -. Array.unsafe_get ax (mc + i));
          update_bound bnum bden (!c0 + 3) sd (bi -. Array.unsafe_get ax (md + i))
        done;
        c0 := !c0 + 4
      done;
      while !c0 < k do
        let c = !c0 in
        let dc = c * d in
        for i = 0 to m - 1 do
          let base = i * d in
          let s0 = ref 0.0 and s1 = ref 0.0 in
          let j = ref 0 in
          while !j + 1 < d do
            s0 := !s0 +. (Array.unsafe_get flat (base + !j) *. Array.unsafe_get dir (dc + !j));
            s1 :=
              !s1
              +. (Array.unsafe_get flat (base + !j + 1) *. Array.unsafe_get dir (dc + !j + 1));
            j := !j + 2
          done;
          if !j < d then
            s0 := !s0 +. (Array.unsafe_get flat (base + !j) *. Array.unsafe_get dir (dc + !j));
          let denom = !s0 +. !s1 in
          Array.unsafe_set ad ((c * m) + i) denom;
          let bi = Array.unsafe_get bvec i in
          update_bound bnum bden c denom (bi -. Array.unsafe_get ax ((c * m) + i))
        done;
        incr c0
      done;
      (* lo = (-num)/(-den) of the negated slot — bit-identical to the
         cursor's lo_num/lo_den since both negations flip the sign of
         an exact quotient twice. *)
      for c = 0 to k - 1 do
        Array.unsafe_set b.lo c
          (Array.unsafe_get bnum ((2 * c) + 1) /. Array.unsafe_get bden ((2 * c) + 1));
        Array.unsafe_set b.hi c
          (Array.unsafe_get bnum (2 * c) /. Array.unsafe_get bden (2 * c))
      done

    let lo b c = b.lo.(c)
    let hi b c = b.hi.(c)
    let lows b = b.lo
    let highs b = b.hi

    let advance b c s =
      let d = b.poly.dim in
      let m = Array.length b.poly.b in
      let xo = c * d and ao = c * m in
      for j = 0 to d - 1 do
        Array.unsafe_set b.x (xo + j)
          (Array.unsafe_get b.x (xo + j) +. (s *. Array.unsafe_get b.dir (xo + j)))
      done;
      for i = 0 to m - 1 do
        Array.unsafe_set b.ax (ao + i)
          (Array.unsafe_get b.ax (ao + i) +. (s *. Array.unsafe_get b.ad (ao + i)))
      done;
      b.since_refresh.(c) <- b.since_refresh.(c) + 1;
      if b.since_refresh.(c) >= refresh_interval then refresh_chain b c

    (* Ball-walk support: with per-chain displacement vectors stored
       via [set_dir], compute every chain's worst constraint violation
       at x + delta in one shared pass; accepted chains then [advance]
       with s = 1. *)
    let propose_all b =
      let poly = b.poly in
      let d = poly.dim and m = Array.length poly.b in
      let k = b.k in
      let flat = poly.flat and bvec = poly.b in
      let dir = b.dir in
      let ad = b.ad and ax = b.ax and viol = b.viol in
      for c = 0 to k - 1 do
        Array.unsafe_set viol c 0.0
      done;
      let c0 = ref 0 in
      while !c0 + 3 < k do
        let da = !c0 * d in
        let db = da + d and dc = da + (2 * d) and dd = da + (3 * d) in
        for i = 0 to m - 1 do
          let base = i * d in
          let s0a = ref 0.0 and s1a = ref 0.0 in
          let s0b = ref 0.0 and s1b = ref 0.0 in
          let s0c = ref 0.0 and s1c = ref 0.0 in
          let s0d = ref 0.0 and s1d = ref 0.0 in
          let j = ref 0 in
          while !j + 1 < d do
            let r0 = Array.unsafe_get flat (base + !j) in
            let r1 = Array.unsafe_get flat (base + !j + 1) in
            s0a := !s0a +. (r0 *. Array.unsafe_get dir (da + !j));
            s1a := !s1a +. (r1 *. Array.unsafe_get dir (da + !j + 1));
            s0b := !s0b +. (r0 *. Array.unsafe_get dir (db + !j));
            s1b := !s1b +. (r1 *. Array.unsafe_get dir (db + !j + 1));
            s0c := !s0c +. (r0 *. Array.unsafe_get dir (dc + !j));
            s1c := !s1c +. (r1 *. Array.unsafe_get dir (dc + !j + 1));
            s0d := !s0d +. (r0 *. Array.unsafe_get dir (dd + !j));
            s1d := !s1d +. (r1 *. Array.unsafe_get dir (dd + !j + 1));
            j := !j + 2
          done;
          if !j < d then begin
            let r0 = Array.unsafe_get flat (base + !j) in
            s0a := !s0a +. (r0 *. Array.unsafe_get dir (da + !j));
            s0b := !s0b +. (r0 *. Array.unsafe_get dir (db + !j));
            s0c := !s0c +. (r0 *. Array.unsafe_get dir (dc + !j));
            s0d := !s0d +. (r0 *. Array.unsafe_get dir (dd + !j))
          end;
          Array.unsafe_set ad ((!c0 * m) + i) (!s0a +. !s1a);
          Array.unsafe_set ad (((!c0 + 1) * m) + i) (!s0b +. !s1b);
          Array.unsafe_set ad (((!c0 + 2) * m) + i) (!s0c +. !s1c);
          Array.unsafe_set ad (((!c0 + 3) * m) + i) (!s0d +. !s1d);
          let bi = Array.unsafe_get bvec i in
          for c = !c0 to !c0 + 3 do
            let v =
              Array.unsafe_get ax ((c * m) + i) +. Array.unsafe_get ad ((c * m) + i) -. bi
            in
            if v > Array.unsafe_get viol c then Array.unsafe_set viol c v
          done
        done;
        c0 := !c0 + 4
      done;
      while !c0 < k do
        let c = !c0 in
        let dc = c * d in
        for i = 0 to m - 1 do
          let base = i * d in
          let s0 = ref 0.0 and s1 = ref 0.0 in
          let j = ref 0 in
          while !j + 1 < d do
            s0 := !s0 +. (Array.unsafe_get flat (base + !j) *. Array.unsafe_get dir (dc + !j));
            s1 :=
              !s1
              +. (Array.unsafe_get flat (base + !j + 1) *. Array.unsafe_get dir (dc + !j + 1));
            j := !j + 2
          done;
          if !j < d then
            s0 := !s0 +. (Array.unsafe_get flat (base + !j) *. Array.unsafe_get dir (dc + !j));
          let delta = !s0 +. !s1 in
          Array.unsafe_set ad ((c * m) + i) delta;
          let v = Array.unsafe_get ax ((c * m) + i) +. delta -. Array.unsafe_get bvec i in
          if v > Array.unsafe_get viol c then Array.unsafe_set viol c v
        done;
        incr c0
      done

    let violation b c = b.viol.(c)
    let violations b = b.viol

    let try_set_coord ?(slack = 0.0) b c j v =
      let poly = b.poly in
      let d = poly.dim in
      if j < 0 || j >= d then
        invalid_arg "Polytope.Kernel.Batch.try_set_coord: coordinate out of range";
      let xo = c * d in
      let dc = v -. Array.unsafe_get b.x (xo + j) in
      let m = Array.length poly.b in
      let ao = c * m in
      let flat = poly.flat in
      let ok = ref true in
      let i = ref 0 in
      while !ok && !i < m do
        let p = dc *. Array.unsafe_get flat ((!i * d) + j) in
        Array.unsafe_set b.ad (ao + !i) p;
        if Array.unsafe_get b.ax (ao + !i) +. p -. Array.unsafe_get poly.b !i > slack then
          ok := false;
        incr i
      done;
      if !ok then begin
        for i = 0 to m - 1 do
          Array.unsafe_set b.ax (ao + i)
            (Array.unsafe_get b.ax (ao + i) +. Array.unsafe_get b.ad (ao + i))
        done;
        Array.unsafe_set b.x (xo + j) v;
        b.since_refresh.(c) <- b.since_refresh.(c) + 1;
        if b.since_refresh.(c) >= refresh_interval then refresh_chain b c
      end;
      !ok
  end

  let try_set_coord ?(slack = 0.0) c j v =
    let poly = c.poly in
    let d = poly.dim in
    if j < 0 || j >= d then invalid_arg "Polytope.Kernel.try_set_coord: coordinate out of range";
    let dc = v -. Array.unsafe_get c.x j in
    let m = Array.length poly.b in
    let flat = poly.flat in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < m do
      let p = dc *. Array.unsafe_get flat ((!i * d) + j) in
      Array.unsafe_set c.ad !i p;
      if Array.unsafe_get c.ax !i +. p -. Array.unsafe_get poly.b !i > slack then ok := false;
      incr i
    done;
    if !ok then begin
      for i = 0 to m - 1 do
        Array.unsafe_set c.ax i (Array.unsafe_get c.ax i +. Array.unsafe_get c.ad i)
      done;
      Array.unsafe_set c.x j v;
      c.since_refresh <- c.since_refresh + 1;
      if c.since_refresh >= refresh_interval then refresh c
    end;
    !ok
end

let pp fmt t =
  Format.fprintf fmt "@[<v>polytope in R^%d:@ " t.dim;
  Array.iteri (fun i row -> Format.fprintf fmt "%a . x <= %g@ " Vec.pp row t.b.(i)) t.a;
  Format.fprintf fmt "@]"
