(* Arbitrary-precision integers, sign-magnitude, limbs in base 2^15.

   The limb base is chosen small enough that schoolbook products
   ([< 2^30]) and long sums of them stay far below [max_int] on 64-bit
   platforms, which keeps every inner loop in plain [int] arithmetic. *)

let base_bits = 15
let base = 1 lsl base_bits (* 32768 *)
let base_mask = base - 1

type t = {
  sign : int; (* -1, 0 or 1; 0 iff mag = [||] *)
  mag : int array; (* little-endian limbs in [0, base), no trailing zeros *)
}

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude (unsigned) primitives                                     *)
(* ------------------------------------------------------------------ *)

(* Number of significant limbs of [m] when trailing zeros may exist. *)
let significant m =
  let i = ref (Array.length m) in
  while !i > 0 && m.(!i - 1) = 0 do
    decr i
  done;
  !i

let trim m =
  let n = significant m in
  if n = Array.length m then m else Array.sub m 0 n

let make_mag_signed sign m =
  let m = trim m in
  if Array.length m = 0 then zero else { sign; mag = m }

let ucompare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let uadd a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r.(lr - 1) <- !carry;
  trim r

(* Requires [a >= b] limb-wise magnitude. *)
let usub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  trim r

let umul_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let s = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- s land base_mask;
          carry := s lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land base_mask;
          carry := s lsr base_bits;
          incr k
        done
      end
    done;
    trim r
  end

let karatsuba_threshold = 32

(* Split magnitude at limb [k]: low part (limbs < k), high part. *)
let split m k =
  let l = Array.length m in
  if l <= k then (m, [||]) else (trim (Array.sub m 0 k), Array.sub m k (l - k))

let rec umul a b =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then umul_school a b
  else begin
    let k = (if la > lb then la else lb) / 2 in
    let a0, a1 = split a k and b0, b1 = split b k in
    let z0 = umul a0 b0 in
    let z2 = umul a1 b1 in
    let z1 = usub (umul (uadd a0 a1) (uadd b0 b1)) (uadd z0 z2) in
    (* result = z0 + z1*base^k + z2*base^(2k) *)
    let lr = la + lb + 1 in
    let r = Array.make lr 0 in
    Array.blit z0 0 r 0 (Array.length z0);
    let add_at ofs src =
      let carry = ref 0 in
      let ls = Array.length src in
      for i = 0 to ls - 1 do
        let s = r.(ofs + i) + src.(i) + !carry in
        r.(ofs + i) <- s land base_mask;
        carry := s lsr base_bits
      done;
      let k = ref (ofs + ls) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land base_mask;
        carry := s lsr base_bits;
        incr k
      done
    in
    add_at k z1;
    add_at (2 * k) z2;
    trim r
  end

(* Multiply magnitude by a small non-negative int ([< base]). *)
let umul_small m x =
  if x = 0 then [||]
  else begin
    let l = Array.length m in
    let r = Array.make (l + 1) 0 in
    let carry = ref 0 in
    for i = 0 to l - 1 do
      let s = (m.(i) * x) + !carry in
      r.(i) <- s land base_mask;
      carry := s lsr base_bits
    done;
    r.(l) <- !carry;
    trim r
  end

(* Divide magnitude by a small positive int ([< base]); returns (quot, rem). *)
let udiv_small m x =
  let l = Array.length m in
  let q = Array.make l 0 in
  let r = ref 0 in
  for i = l - 1 downto 0 do
    let cur = (!r lsl base_bits) lor m.(i) in
    q.(i) <- cur / x;
    r := cur mod x
  done;
  (trim q, !r)

(* Shift magnitude left by [n] bits. *)
let ushift_left m n =
  if Array.length m = 0 || n = 0 then m
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let l = Array.length m in
    let r = Array.make (l + limbs + 1) 0 in
    let carry = ref 0 in
    for i = 0 to l - 1 do
      let s = (m.(i) lsl bits) lor !carry in
      r.(i + limbs) <- s land base_mask;
      carry := s lsr base_bits
    done;
    r.(l + limbs) <- !carry;
    trim r
  end

let ushift_right m n =
  if Array.length m = 0 || n = 0 then m
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let l = Array.length m in
    if limbs >= l then [||]
    else begin
      let lr = l - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = m.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < l then (m.(i + limbs + 1) lsl (base_bits - bits)) land base_mask else 0 in
        r.(i) <- if bits = 0 then m.(i + limbs) else lo lor hi
      done;
      trim r
    end
  end

(* Knuth algorithm D long division of magnitudes; returns (quot, rem).
   Requires [Array.length v >= 2] after trimming and [u >= 0], [v > 0]. *)
let udivmod_knuth u v =
  let n = Array.length v in
  (* Normalize so that the top limb of v is >= base/2. *)
  let shift =
    let top = v.(n - 1) in
    let s = ref 0 in
    let t = ref top in
    while !t < base / 2 do
      incr s;
      t := !t lsl 1
    done;
    !s
  in
  let u' = ushift_left u shift and v' = ushift_left v shift in
  let m = Array.length u' - n in
  if m < 0 then ([||], u)
  else begin
    let rem = Array.make (Array.length u' + 1) 0 in
    Array.blit u' 0 rem 0 (Array.length u');
    let q = Array.make (m + 1) 0 in
    let vtop = v'.(n - 1) in
    let vsec = if n >= 2 then v'.(n - 2) else 0 in
    for j = m downto 0 do
      (* Estimate quotient digit from the top two limbs of the current
         remainder window against the top limb of the divisor. *)
      let num = (rem.(j + n) lsl base_bits) lor rem.(j + n - 1) in
      let qhat = ref (num / vtop) in
      let rhat = ref (num mod vtop) in
      if !qhat >= base then begin
        qhat := base - 1;
        rhat := num - (!qhat * vtop)
      end;
      while
        !rhat < base
        && (!qhat * vsec) > ((!rhat lsl base_bits) lor (if j + n - 2 >= 0 then rem.(j + n - 2) else 0))
      do
        decr qhat;
        rhat := !rhat + vtop
      done;
      (* Multiply-subtract v'*qhat from the remainder window. *)
      if !qhat > 0 then begin
        let borrow = ref 0 and carry = ref 0 in
        for i = 0 to n - 1 do
          let p = (!qhat * v'.(i)) + !carry in
          carry := p lsr base_bits;
          let s = rem.(j + i) - (p land base_mask) - !borrow in
          if s < 0 then begin
            rem.(j + i) <- s + base;
            borrow := 1
          end
          else begin
            rem.(j + i) <- s;
            borrow := 0
          end
        done;
        let s = rem.(j + n) - !carry - !borrow in
        if s < 0 then begin
          (* qhat was one too large: add back. *)
          rem.(j + n) <- s + base;
          decr qhat;
          let carry = ref 0 in
          for i = 0 to n - 1 do
            let s = rem.(j + i) + v'.(i) + !carry in
            rem.(j + i) <- s land base_mask;
            carry := s lsr base_bits
          done;
          rem.(j + n) <- (rem.(j + n) + !carry) land base_mask
        end
        else rem.(j + n) <- s
      end;
      q.(j) <- !qhat
    done;
    let r = ushift_right (trim (Array.sub rem 0 n)) shift in
    (trim q, r)
  end

let udivmod u v =
  match Array.length v with
  | 0 -> raise Division_by_zero
  | 1 ->
      let q, r = udiv_small u v.(0) in
      (q, if r = 0 then [||] else [| r |])
  | _ -> if ucompare u v < 0 then ([||], u) else udivmod_knuth u v

(* ------------------------------------------------------------------ *)
(* Signed interface                                                    *)
(* ------------------------------------------------------------------ *)

let of_int x =
  if x = 0 then zero
  else begin
    let sign = if x < 0 then -1 else 1 in
    (* Avoid [abs min_int] overflow by carving limbs with Euclidean steps. *)
    let rec limbs x acc = if x = 0 then List.rev acc else limbs (x lsr base_bits) ((x land base_mask) :: acc) in
    let mag_of_pos x = Array.of_list (limbs x []) in
    if x = min_int then begin
      (* min_int = -2^62 on 64-bit: build from shifted one. *)
      let m = ushift_left [| 1 |] (Sys.int_size - 1) in
      { sign = -1; mag = m }
    end
    else { sign; mag = mag_of_pos (abs x) }
  end

let one = of_int 1
let minus_one = of_int (-1)
let two = of_int 2

let sign t = t.sign
let is_zero t = t.sign = 0

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then ucompare a.mag b.mag
  else ucompare b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash t = Hashtbl.hash (t.sign, t.mag)

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { sign = a.sign; mag = uadd a.mag b.mag }
  else begin
    let c = ucompare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make_mag_signed a.sign (usub a.mag b.mag)
    else make_mag_signed b.sign (usub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else { sign = a.sign * b.sign; mag = umul a.mag b.mag }

let mul_int a x =
  if x = 0 || a.sign = 0 then zero
  else if x = min_int then mul a (of_int x)
  else begin
    let s = if x < 0 then -a.sign else a.sign in
    let ax = if x < 0 then -x else x in
    if ax < base then { sign = s; mag = umul_small a.mag ax }
    else mul a (of_int x)
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else begin
    let q, r = udivmod a.mag b.mag in
    let qs = a.sign * b.sign and rs = a.sign in
    (make_mag_signed qs q, make_mag_signed rs r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv_rem a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (sub q one, add r b)
  else (add q one, sub r b)

let rec gcd a b =
  let a = abs a and b = abs b in
  if b.sign = 0 then a else gcd b (rem a b)

let lcm a b = if a.sign = 0 || b.sign = 0 then zero else abs (mul (div a (gcd a b)) b)

let pow b n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n = if n = 0 then acc else if n land 1 = 1 then go (mul acc b) (mul b b) (n lsr 1) else go acc (mul b b) (n lsr 1) in
  go one b n

let shift_left a n =
  if n < 0 then invalid_arg "Bigint.shift_left";
  if a.sign = 0 then zero else { a with mag = ushift_left a.mag n }

let shift_right a n =
  if n < 0 then invalid_arg "Bigint.shift_right";
  if a.sign = 0 then zero else make_mag_signed a.sign (ushift_right a.mag n)

let succ a = add a one
let pred a = sub a one

let num_bits a =
  let l = Array.length a.mag in
  if l = 0 then 0
  else begin
    let top = a.mag.(l - 1) in
    let rec bits x acc = if x = 0 then acc else bits (x lsr 1) (acc + 1) in
    ((l - 1) * base_bits) + bits top 0
  end

let fits_int a = num_bits a <= Sys.int_size - 2

let to_int_opt a =
  if not (fits_int a) then None
  else begin
    let v = Array.fold_right (fun limb acc -> (acc lsl base_bits) lor limb) a.mag 0 in
    Some (if a.sign < 0 then -v else v)
  end

let to_int a =
  match to_int_opt a with Some v -> v | None -> failwith "Bigint.to_int: overflow"

let to_float a =
  let v = Array.fold_right (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb) a.mag 0.0 in
  if a.sign < 0 then -.v else v

let to_string a =
  if a.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let chunks = ref [] in
    let m = ref a.mag in
    while Array.length !m > 0 do
      let q, r = udiv_small !m 10000 in
      chunks := r :: !chunks;
      m := q
    done;
    if a.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
    | [] -> ()
    | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest);
    Buffer.contents buf
  end

let pp fmt a = Format.pp_print_string fmt (to_string a)

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty";
  let negative, start =
    match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref [||] in
  let i = ref start in
  while !i < len do
    let chunk_len = Stdlib.min 4 (len - !i) in
    let chunk = String.sub s !i chunk_len in
    String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit") chunk;
    let v = int_of_string chunk in
    let scale = match chunk_len with 1 -> 10 | 2 -> 100 | 3 -> 1000 | _ -> 10000 in
    acc := uadd (umul_small !acc scale) (if v = 0 then [||] else [| v land base_mask; v lsr base_bits |]);
    i := !i + chunk_len
  done;
  make_mag_signed (if negative then -1 else 1) !acc

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
