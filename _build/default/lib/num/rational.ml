type t = { num : Bigint.t; den : Bigint.t }

let canonical num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    if Bigint.equal g Bigint.one then { num; den }
    else { num = Bigint.div num g; den = Bigint.div den g }
  end

let make = canonical
let of_bigint n = { num = n; den = Bigint.one }
let of_int i = of_bigint (Bigint.of_int i)
let of_ints a b = canonical (Bigint.of_int a) (Bigint.of_int b)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let two = of_int 2
let half = of_ints 1 2

let of_float f =
  if not (Float.is_finite f) then invalid_arg "Rational.of_float: not finite";
  if f = 0.0 then zero
  else begin
    let mantissa, exponent = Float.frexp f in
    (* mantissa * 2^53 is integral for finite floats. *)
    let scaled = Int64.of_float (mantissa *. 9007199254740992.0) in
    let num = Bigint.of_string (Int64.to_string scaled) in
    let e = exponent - 53 in
    if e >= 0 then of_bigint (Bigint.shift_left num e)
    else canonical num (Bigint.shift_left Bigint.one (-e))
  end

let to_float t = Bigint.to_float t.num /. Bigint.to_float t.den

let sign t = Bigint.sign t.num
let is_zero t = Bigint.is_zero t.num
let is_integer t = Bigint.equal t.den Bigint.one

let compare a b = Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)
let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let hash t = Hashtbl.hash (Bigint.hash t.num, Bigint.hash t.den)

let neg t = { t with num = Bigint.neg t.num }
let abs t = { t with num = Bigint.abs t.num }

let inv t =
  if is_zero t then raise Division_by_zero;
  if Bigint.sign t.num < 0 then { num = Bigint.neg t.den; den = Bigint.neg t.num }
  else { num = t.den; den = t.num }

let add a b =
  canonical
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = canonical (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)
let div a b = mul a (inv b)
let mul_int a i = canonical (Bigint.mul_int a.num i) a.den

let floor t = fst (Bigint.ediv_rem t.num t.den)

let ceil t =
  let q, r = Bigint.ediv_rem t.num t.den in
  if Bigint.is_zero r then q else Bigint.succ q

let pow t n =
  if n >= 0 then { num = Bigint.pow t.num n; den = Bigint.pow t.den n }
  else inv { num = Bigint.pow t.num (-n); den = Bigint.pow t.den (-n) }

let to_string t =
  if is_integer t then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den

let pp fmt t = Format.pp_print_string fmt (to_string t)

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
      let num = Bigint.of_string (String.sub s 0 i) in
      let den = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      canonical num den
  | None -> (
      match String.index_opt s '.' with
      | None -> of_bigint (Bigint.of_string s)
      | Some i ->
          let int_part = String.sub s 0 i in
          let frac_part = String.sub s (i + 1) (String.length s - i - 1) in
          let negative = String.length int_part > 0 && int_part.[0] = '-' in
          let digits = int_part ^ frac_part in
          let digits = if digits = "" || digits = "-" || digits = "+" then digits ^ "0" else digits in
          let num = Bigint.of_string digits in
          let den = Bigint.pow (Bigint.of_int 10) (String.length frac_part) in
          let q = canonical num den in
          if negative && Bigint.sign q.num > 0 then neg q else q)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
