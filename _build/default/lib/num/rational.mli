(** Exact rational numbers over {!Bigint}.

    Values are kept in canonical form: the denominator is positive and
    the fraction is reduced ([gcd num den = 1]; zero is [0/1]).  Used by
    the exact pipeline (Fourier–Motzkin, exact simplex) where floating
    point would silently change the geometry. *)

type t = private { num : Bigint.t; den : Bigint.t }

val zero : t
val one : t
val minus_one : t
val two : t
val half : t

(** {1 Construction} *)

val make : Bigint.t -> Bigint.t -> t
(** [make num den] in canonical form. @raise Division_by_zero if [den = 0]. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints a b = a/b]. @raise Division_by_zero if [b = 0]. *)

val of_float : float -> t
(** Exact dyadic value of a finite float.
    @raise Invalid_argument on nan or infinities. *)

val of_string : string -> t
(** Accepts ["a"], ["a/b"] and decimal literals like ["-3.25"]. *)

(** {1 Conversions} *)

val to_float : t -> float
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Predicates and comparisons} *)

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val mul_int : t -> int -> t

val floor : t -> Bigint.t
val ceil : t -> Bigint.t

val pow : t -> int -> t
(** Integer power; negative exponents invert. @raise Division_by_zero
    when raising zero to a negative power. *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
