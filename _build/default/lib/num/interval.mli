(** Outward-rounded float interval arithmetic.

    The membership oracles evaluate linear constraints in floating
    point; an interval evaluation with outward rounding turns "probably
    inside" into a certified three-way answer (inside / outside /
    undecided within rounding error).  Used by the certified membership
    variant of {!Scdb_constr.Atom}. *)

type t = private { lo : float; hi : float }
(** Invariant: [lo <= hi]; both finite unless the interval is
    everything. *)

val make : float -> float -> t
(** @raise Invalid_argument if [lo > hi] or a bound is NaN. *)

val point : float -> t
val zero : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t
val neg : t -> t

val contains : t -> float -> bool

val sign : t -> [ `Negative | `Positive | `Zero_in ]
(** Certified sign: [`Negative] iff [hi < 0], [`Positive] iff [lo > 0],
    otherwise zero lies in the interval and the sign is undecided. *)

val width : t -> float

val pp : Format.formatter -> t -> unit
