type t = { lo : float; hi : float }

(* Outward rounding by one ulp per operation: cheap and sound (the true
   result of a float op is within one ulp of the computed one). *)
let down x = if Float.is_finite x then Float.pred x else x
let up x = if Float.is_finite x then Float.succ x else x

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi || lo > hi then invalid_arg "Interval.make";
  { lo; hi }

let point x = make x x
let zero = point 0.0

let add a b = { lo = down (a.lo +. b.lo); hi = up (a.hi +. b.hi) }
let sub a b = { lo = down (a.lo -. b.hi); hi = up (a.hi -. b.lo) }
let neg a = { lo = -.a.hi; hi = -.a.lo }

let mul a b =
  let products = [ a.lo *. b.lo; a.lo *. b.hi; a.hi *. b.lo; a.hi *. b.hi ] in
  {
    lo = down (List.fold_left Float.min infinity products);
    hi = up (List.fold_left Float.max neg_infinity products);
  }

let scale s a = mul (point s) a

let contains a x = a.lo <= x && x <= a.hi

let sign a = if a.hi < 0.0 then `Negative else if a.lo > 0.0 then `Positive else `Zero_in

let width a = a.hi -. a.lo

let pp fmt a = Format.fprintf fmt "[%g, %g]" a.lo a.hi
