lib/num/interval.ml: Float Format List
