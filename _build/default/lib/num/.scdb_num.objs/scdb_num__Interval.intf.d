lib/num/interval.mli: Format
