lib/num/rational.ml: Bigint Float Format Hashtbl Int64 String
