lib/num/bigint.ml: Array Buffer Format Hashtbl List Printf Stdlib String Sys
