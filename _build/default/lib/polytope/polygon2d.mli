(** Two-dimensional specialization: vertex enumeration and exact-ish
    areas by the shoelace formula.

    Most GIS examples live in the plane, where the H-to-V conversion is
    a simple pairwise line intersection; this module provides the fast
    path the general machinery does not need LP for. *)

val vertices : Polytope.t -> Vec.t list
(** Vertices of a bounded 2-D polytope in counter-clockwise order
    (empty list when the polytope is empty or lower-dimensional).
    @raise Invalid_argument if the polytope is not 2-D. *)

val area : Polytope.t -> float
(** Shoelace area of the vertex polygon. *)

val area_of_tuple : Dnf.tuple -> float
(** Area of a 2-D generalized tuple. *)

val perimeter : Polytope.t -> float

val centroid : Polytope.t -> Vec.t option
(** Area centroid; [None] for empty/degenerate polygons. *)

val contains_polygon : Polytope.t -> Vec.t list -> bool
(** Do all listed points lie inside (with a small slack)? *)
