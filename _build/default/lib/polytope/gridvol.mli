(** Fixed-dimension grid decomposition (the paper's Lemmas 3.1–3.2).

    Cut the bounding box of a generalized relation into cubes of side
    [gamma], enumerate the cubes whose centre lies in the relation, and
    use them for volume ([count · γ^d]) and for uniform sampling (pick a
    member cube uniformly, then a uniform point inside it).  The cost is
    [(R/γ)^d] membership tests — polynomial for fixed [d], exponential
    otherwise, which is precisely the trade-off experiment E8
    demonstrates against the random-walk pipeline. *)

type t
(** An enumerated grid decomposition of a relation. *)

val relation_bbox : Relation.t -> (Vec.t * Vec.t) option
(** Bounding box of a generalized relation (per-tuple LP bounds, then
    the union box); [None] if empty or unbounded. *)

val build : gamma:float -> Relation.t -> t option
(** Enumerate member cells.  [None] when the relation is empty or
    unbounded.  @raise Invalid_argument if the grid would exceed
    [10^8] cells. *)

val cell_count : t -> int
(** Number of cells whose centre belongs to the relation. *)

val cells_scanned : t -> int
(** Total number of membership tests performed — the [(R/γ)^d] cost. *)

val volume : t -> float
(** [cell_count · γ^d]. *)

val sample : t -> Scdb_rng.Rng.t -> Vec.t
(** Uniform over the union of member cells.
    @raise Invalid_argument if there are no member cells. *)

val gamma : t -> float
