(** Exact volume of bounded polyhedra and generalized relations.

    Lasserre's recursion over exact rationals: the d-volume of
    [{A x <= b}] is [1/d · Σᵢ bᵢ/|a_{i,k}| · vol(facet i)] once facet
    [i] is parametrized by solving its hyperplane for coordinate [k]
    (the Euclidean norms cancel, keeping everything rational).

    Exponential in the dimension and polynomial for fixed dimension —
    exactly the role the Bieri–Nef sweep-plane algorithm plays in the
    paper's Lemma 3.1.  Serves as ground truth for every estimator
    test and experiment. *)

exception Unbounded

val volume_system : dim:int -> Rational.t array array -> Rational.t array -> Rational.t
(** Exact volume of [{x ∈ R^dim | A x <= b}].
    @raise Unbounded if the polyhedron is unbounded. *)

val volume_tuple : dim:int -> Dnf.tuple -> Rational.t
(** Volume of the convex set of one generalized tuple. *)

val volume_relation : ?max_tuples:int -> Relation.t -> Rational.t
(** Volume of a finite union of tuples, by inclusion–exclusion over the
    (possibly overlapping) tuples.  Cost is [2^t] exact volume calls for
    [t] tuples; [max_tuples] (default 16) guards the blowup.
    @raise Invalid_argument if the relation has more tuples than that.
    @raise Unbounded if some non-empty intersection is unbounded. *)

val float_volume_tuple : dim:int -> Dnf.tuple -> float
val float_volume_relation : ?max_tuples:int -> Relation.t -> float
