type t = { dim : int; a : Mat.t; b : Vec.t }

let make ~dim a b =
  let m, d = Mat.dims a in
  if m <> Vec.dim b then invalid_arg "Polytope.make: row count mismatch";
  if m > 0 && d <> dim then invalid_arg "Polytope.make: dimension mismatch";
  { dim; a = Mat.copy a; b = Vec.copy b }

let of_tuple ~dim tuple =
  let rows =
    List.concat_map
      (fun (atom : Atom.t) ->
        match atom.op with
        | Atom.Le | Atom.Lt -> [ Atom.to_halfspace dim atom ]
        | Atom.Eq ->
            let w, c = Term.to_float_row dim atom.term in
            [ (w, -.c); (Vec.neg w, c) ])
      tuple
  in
  {
    dim;
    a = Array.of_list (List.map fst rows);
    b = Array.of_list (List.map snd rows);
  }

let to_tuple t =
  Array.to_list
    (Array.mapi
       (fun i row ->
         let term = ref (Term.const (Rational.neg (Rational.of_float t.b.(i)))) in
         Array.iteri (fun j c -> term := Term.add !term (Term.monomial (Rational.of_float c) j)) row;
         Atom.make !term Atom.Le)
       t.a)

let box lo hi =
  let d = Vec.dim lo in
  let a = Array.init (2 * d) (fun i -> if i < d then Vec.basis d i else Vec.neg (Vec.basis d (i - d))) in
  let b = Array.init (2 * d) (fun i -> if i < d then hi.(i) else -.lo.(i - d)) in
  { dim = d; a; b }

let unit_cube d = box (Vec.create d) (Array.make d 1.0)
let cube d r = box (Array.make d (-.r)) (Array.make d r)

let simplex d =
  let a = Array.init (d + 1) (fun i -> if i < d then Vec.neg (Vec.basis d i) else Array.make d 1.0) in
  let b = Array.init (d + 1) (fun i -> if i < d then 0.0 else 1.0) in
  { dim = d; a; b }

let cross_polytope d r =
  let rec signs i acc = if i = d then [ acc ] else signs (i + 1) (1.0 :: acc) @ signs (i + 1) (-1.0 :: acc) in
  let rows = List.map (fun s -> Vec.of_list (List.rev s)) (signs 0 []) in
  { dim = d; a = Array.of_list rows; b = Array.make (1 lsl d) r }

let dim t = t.dim
let num_constraints t = Array.length t.b

let violation t x =
  let worst = ref neg_infinity in
  Array.iteri (fun i row -> worst := Float.max !worst (Vec.dot row x -. t.b.(i))) t.a;
  if Array.length t.a = 0 then 0.0 else !worst

let mem ?(slack = 0.0) t x = violation t x <= slack

let add_halfspace t w c =
  { t with a = Array.append t.a [| Vec.copy w |]; b = Array.append t.b [| c |] }

let inter p q =
  if p.dim <> q.dim then invalid_arg "Polytope.inter: dimension mismatch";
  { dim = p.dim; a = Array.append p.a q.a; b = Array.append p.b q.b }

let transform f t =
  (* y = A_f x + b_f  ⇒  x = A_f⁻¹ (y − b_f); a_i·x <= b_i becomes
     (a_i A_f⁻¹)·y <= b_i + (a_i A_f⁻¹)·b_f. *)
  let inv = (f : Affine.t).inv_mat in
  let a' = Array.map (fun row -> Mat.mul_vec (Mat.transpose inv) row) t.a in
  let b' = Array.mapi (fun i row' -> t.b.(i) +. Vec.dot row' f.offset) a' in
  { t with a = a'; b = b' }

let translate v t = transform (Affine.translation v) t

let chebyshev t = Scdb_lp.Lp.chebyshev ~a:t.a ~b:t.b

let bounding_box t =
  let d = t.dim in
  let lo = Vec.create d and hi = Vec.create d in
  let ok = ref true in
  for i = 0 to d - 1 do
    if !ok then begin
      match
        ( Scdb_lp.Lp.bound ~a:t.a ~b:t.b ~dir:(Vec.basis d i),
          Scdb_lp.Lp.bound ~a:t.a ~b:t.b ~dir:(Vec.neg (Vec.basis d i)) )
      with
      | Some up, Some down ->
          hi.(i) <- up;
          lo.(i) <- -.down
      | _ -> ok := false
    end
  done;
  if !ok then Some (lo, hi) else None

let is_empty t = Option.is_none (Scdb_lp.Lp.feasible_point ~a:t.a ~b:t.b)

let is_bounded t = is_empty t || Option.is_some (bounding_box t)

let sandwich t =
  match chebyshev t with
  | None -> None
  | Some (centre, r_inf) -> (
      match bounding_box t with
      | None -> None
      | Some (lo, hi) ->
          (* Enclosing radius: farthest box corner from the centre. *)
          let r_sup = ref 0.0 in
          for i = 0 to t.dim - 1 do
            let e = Float.max (Float.abs (hi.(i) -. centre.(i))) (Float.abs (centre.(i) -. lo.(i))) in
            r_sup := !r_sup +. (e *. e)
          done;
          Some (centre, r_inf, sqrt !r_sup))

let line_intersection t x dir =
  (* a_i·(x + s·dir) <= b_i  ⇔  s·(a_i·dir) <= b_i − a_i·x. *)
  let tmin = ref neg_infinity and tmax = ref infinity in
  Array.iteri
    (fun i row ->
      let denom = Vec.dot row dir in
      let slack = t.b.(i) -. Vec.dot row x in
      if Float.abs denom < 1e-14 then begin
        if slack < 0.0 then begin
          tmin := infinity;
          tmax := neg_infinity
        end
      end
      else if denom > 0.0 then tmax := Float.min !tmax (slack /. denom)
      else tmin := Float.max !tmin (slack /. denom))
    t.a;
  if !tmin > !tmax then None else Some (!tmin, !tmax)

let pp fmt t =
  Format.fprintf fmt "@[<v>polytope in R^%d:@ " t.dim;
  Array.iteri (fun i row -> Format.fprintf fmt "%a . x <= %g@ " Vec.pp row t.b.(i)) t.a;
  Format.fprintf fmt "@]"
