let eps = 1e-9

let vertices (p : Polytope.t) =
  if Polytope.dim p <> 2 then invalid_arg "Polygon2d.vertices: not 2-D";
  let m = Polytope.num_constraints p in
  let candidates = ref [] in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      let a1 = p.a.(i) and a2 = p.a.(j) in
      let det = (a1.(0) *. a2.(1)) -. (a1.(1) *. a2.(0)) in
      if Float.abs det > eps then begin
        let x = ((p.b.(i) *. a2.(1)) -. (p.b.(j) *. a1.(1))) /. det in
        let y = ((a1.(0) *. p.b.(j)) -. (a2.(0) *. p.b.(i))) /. det in
        let v = [| x; y |] in
        if Polytope.mem ~slack:1e-7 p v then candidates := v :: !candidates
      end
    done
  done;
  (* Deduplicate near-identical intersection points. *)
  let distinct =
    List.fold_left
      (fun acc v -> if List.exists (fun w -> Vec.dist v w < 1e-7) acc then acc else v :: acc)
      [] !candidates
  in
  match distinct with
  | [] | [ _ ] | [ _; _ ] -> []
  | vs ->
      let n = float_of_int (List.length vs) in
      let cx = List.fold_left (fun acc v -> acc +. v.(0)) 0.0 vs /. n in
      let cy = List.fold_left (fun acc v -> acc +. v.(1)) 0.0 vs /. n in
      List.sort
        (fun v w ->
          Float.compare (Float.atan2 (v.(1) -. cy) (v.(0) -. cx)) (Float.atan2 (w.(1) -. cy) (w.(0) -. cx)))
        vs

let shoelace vs =
  match vs with
  | [] | [ _ ] | [ _; _ ] -> 0.0
  | first :: _ ->
      let rec go acc = function
        | [ last ] -> acc +. ((last.(0) *. first.(1)) -. (first.(0) *. last.(1)))
        | v :: (w :: _ as rest) -> go (acc +. ((v.(0) *. w.(1)) -. (w.(0) *. v.(1)))) rest
        | [] -> acc
      in
      Float.abs (go 0.0 vs) /. 2.0

let area p = shoelace (vertices p)

let area_of_tuple tuple = area (Polytope.of_tuple ~dim:2 tuple)

let perimeter p =
  match vertices p with
  | [] -> 0.0
  | first :: _ as vs ->
      let rec go acc = function
        | [ last ] -> acc +. Vec.dist last first
        | v :: (w :: _ as rest) -> go (acc +. Vec.dist v w) rest
        | [] -> acc
      in
      go 0.0 vs

let centroid p =
  let vs = vertices p in
  let a = shoelace vs in
  if a < eps then None
  else begin
    (* Standard polygon centroid via the signed cross products. *)
    match vs with
    | [] -> None
    | first :: _ ->
        let cx = ref 0.0 and cy = ref 0.0 and signed = ref 0.0 in
        let edge v w =
          let cross = (v.(0) *. w.(1)) -. (w.(0) *. v.(1)) in
          signed := !signed +. cross;
          cx := !cx +. ((v.(0) +. w.(0)) *. cross);
          cy := !cy +. ((v.(1) +. w.(1)) *. cross)
        in
        let rec go = function
          | [ last ] -> edge last first
          | v :: (w :: _ as rest) ->
              edge v w;
              go rest
          | [] -> ()
        in
        go vs;
        if Float.abs !signed < eps then None
        else Some [| !cx /. (3.0 *. !signed); !cy /. (3.0 *. !signed) |]
  end

let contains_polygon p points = List.for_all (Polytope.mem ~slack:1e-7 p) points
