exception Unbounded

module Es = Scdb_lp.Exact_simplex
module Q = Rational

(* A constraint [row · x <= rhs] over [dim] variables. *)
type cstr = { row : Q.t array; rhs : Q.t }

let normalize_constraint c =
  (* Scale so that the first non-zero coefficient has absolute value 1;
     identical halfspaces then compare structurally equal. *)
  let lead = Array.find_opt (fun x -> not (Q.is_zero x)) c.row in
  match lead with
  | None -> None (* constant constraint: trivially true or infeasible *)
  | Some l ->
      let s = Q.inv (Q.abs l) in
      Some { row = Array.map (Q.mul s) c.row; rhs = Q.mul s c.rhs }

(* Keep, for each distinct direction, only the tightest right-hand side;
   report [None] if a constant constraint is violated (empty set). *)
let preprocess cstrs =
  let table = Hashtbl.create 16 in
  let infeasible = ref false in
  List.iter
    (fun c ->
      match normalize_constraint c with
      | None -> if Q.sign c.rhs < 0 then infeasible := true
      | Some c ->
          let key = Array.map Q.to_string c.row in
          (match Hashtbl.find_opt table key with
          | Some c' when Q.compare c'.rhs c.rhs <= 0 -> ()
          | _ -> Hashtbl.replace table key c))
    cstrs;
  if !infeasible then None
  else Some (Hashtbl.fold (fun _ c acc -> c :: acc) table [])

(* Substitute [x_k := (rhs0 − Σ_{j≠k} row0_j x_j) / row0_k] into [c],
   producing a constraint over [dim−1] variables (coordinate [k] removed). *)
let substitute ~k ~pivot c =
  let pk = pivot.row.(k) in
  let ck = c.row.(k) in
  let factor = Q.div ck pk in
  let d = Array.length c.row in
  let row =
    Array.init (d - 1) (fun j ->
        let j' = if j < k then j else j + 1 in
        Q.sub c.row.(j') (Q.mul factor pivot.row.(j')))
  in
  { row; rhs = Q.sub c.rhs (Q.mul factor pivot.rhs) }

let rec volume_rec dim cstrs =
  match preprocess cstrs with
  | None -> Q.zero
  | Some cstrs ->
      if dim = 1 then begin
        let lo = ref None and hi = ref None in
        List.iter
          (fun c ->
            let a = c.row.(0) in
            let s = Q.sign a in
            if s > 0 then begin
              let v = Q.div c.rhs a in
              match !hi with Some h when Q.compare h v <= 0 -> () | _ -> hi := Some v
            end
            else if s < 0 then begin
              let v = Q.div c.rhs a in
              match !lo with Some l when Q.compare l v >= 0 -> () | _ -> lo := Some v
            end)
          cstrs;
        match (!lo, !hi) with
        | Some l, Some h -> if Q.compare l h >= 0 then Q.zero else Q.sub h l
        | _ -> raise Unbounded
      end
      else begin
        if cstrs = [] then raise Unbounded;
        let arr = Array.of_list cstrs in
        let total = ref Q.zero in
        Array.iteri
          (fun i pivot ->
            (* Choose the substitution coordinate with the largest pivot. *)
            let k = ref 0 in
            Array.iteri (fun j c -> if Q.compare (Q.abs c) (Q.abs pivot.row.(!k)) > 0 then k := j) pivot.row;
            if not (Q.is_zero pivot.row.(!k)) then begin
              let facet =
                Array.to_list
                  (Array.mapi
                     (fun i' c -> if i' = i then None else Some (substitute ~k:!k ~pivot c))
                     arr)
                |> List.filter_map Fun.id
              in
              let sub = volume_rec (dim - 1) facet in
              if not (Q.is_zero sub) then begin
                let contribution =
                  Q.div (Q.mul pivot.rhs sub)
                    (Q.mul (Q.of_int dim) (Q.abs pivot.row.(!k)))
                in
                total := Q.add !total contribution
              end
            end)
          arr;
        !total
      end

let check_bounded ~dim a b =
  if dim = 0 then ()
  else begin
    let basis i = Array.init dim (fun j -> if i = j then Q.one else Q.zero) in
    for i = 0 to dim - 1 do
      let check c =
        match Es.maximize ~a ~b ~c with
        | Es.Unbounded -> raise Unbounded
        | Es.Infeasible | Es.Optimal _ -> ()
      in
      check (basis i);
      check (Array.map Q.neg (basis i))
    done
  end

let volume_system ~dim a b =
  if Array.length a <> Array.length b then invalid_arg "Volume_exact.volume_system";
  if dim = 0 then (if Es.is_feasible ~a ~b then Q.one else Q.zero)
  else begin
    if not (Es.is_feasible ~a ~b) then Q.zero
    else begin
      check_bounded ~dim a b;
      let cstrs = Array.to_list (Array.map2 (fun row rhs -> { row; rhs }) a b) in
      volume_rec dim cstrs
    end
  end

let tuple_system ~dim tuple =
  let rows =
    List.concat_map
      (fun (atom : Atom.t) ->
        let row = Array.make dim Q.zero in
        List.iter (fun (i, c) -> if i >= dim then invalid_arg "Volume_exact: variable out of range" else row.(i) <- c) (Term.coeffs atom.term);
        let rhs = Q.neg (Term.constant atom.term) in
        match atom.op with
        | Atom.Le | Atom.Lt -> [ (row, rhs) ]
        | Atom.Eq -> [ (row, rhs); (Array.map Q.neg row, Q.neg rhs) ])
      tuple
  in
  (Array.of_list (List.map fst rows), Array.of_list (List.map snd rows))

let volume_tuple ~dim tuple =
  let a, b = tuple_system ~dim tuple in
  volume_system ~dim a b

let volume_relation ?(max_tuples = 16) r =
  let tuples = Array.of_list (Relation.tuples r) in
  let t = Array.length tuples in
  if t > max_tuples then invalid_arg "Volume_exact.volume_relation: too many tuples";
  let dim = Relation.dim r in
  (* Inclusion–exclusion over all non-empty subsets. *)
  let total = ref Q.zero in
  for mask = 1 to (1 lsl t) - 1 do
    let members = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init t Fun.id) in
    let conj = List.concat_map (fun i -> tuples.(i)) members in
    let v = volume_tuple ~dim conj in
    let sign = if List.length members mod 2 = 1 then Q.one else Q.minus_one in
    total := Q.add !total (Q.mul sign v)
  done;
  !total

let float_volume_tuple ~dim tuple = Q.to_float (volume_tuple ~dim tuple)
let float_volume_relation ?max_tuples r = Q.to_float (volume_relation ?max_tuples r)
