(** Convex polyhedra in halfspace representation [{x | A x <= b}].

    The float-level geometric object behind a generalized tuple: the
    samplers walk inside it, the LP layer measures it, and the affine
    rounding maps it.  Strictness of the original constraints is
    deliberately dropped — all volume statements in the paper are
    insensitive to boundaries. *)

type t = private { dim : int; a : Mat.t; b : Vec.t }

val make : dim:int -> Mat.t -> Vec.t -> t
(** @raise Invalid_argument on shape mismatch. *)

val of_tuple : dim:int -> Dnf.tuple -> t
(** Halfspaces of a generalized tuple; equality atoms become two
    opposite inequalities. *)

val to_tuple : t -> Dnf.tuple
(** Back to exact atoms (coefficients via {!Scdb_num.Rational.of_float},
    so the round-trip is exact on dyadic data). *)

val box : Vec.t -> Vec.t -> t
val unit_cube : int -> t
val cube : int -> float -> t
(** [cube d r] is [[-r,r]^d]. *)

val simplex : int -> t
(** Standard simplex [{x >= 0, Σ x <= 1}]. *)

val cross_polytope : int -> float -> t
(** L1 ball of radius [r]: [2^d] facets. *)

val dim : t -> int
val num_constraints : t -> int

val mem : ?slack:float -> t -> Vec.t -> bool

val violation : t -> Vec.t -> float
(** [max_i (a_i·x − b_i)]: non-positive iff the point is inside. *)

val add_halfspace : t -> Vec.t -> float -> t
(** Intersect with [{x | w·x <= c}]. *)

val inter : t -> t -> t

val transform : Affine.t -> t -> t
(** Image under an invertible affine map:
    [transform f p = {f x | x ∈ p}]. *)

val translate : Vec.t -> t -> t

val chebyshev : t -> (Vec.t * float) option
(** Centre and radius of a largest inscribed ball; [None] if empty or
    the LP is unbounded (unbounded polyhedron). *)

val bounding_box : t -> (Vec.t * Vec.t) option
(** Componentwise LP bounds; [None] if empty or unbounded. *)

val is_empty : t -> bool
val is_bounded : t -> bool

val sandwich : t -> (Vec.t * float * float) option
(** [(centre, r_inf, r_sup)]: an inscribed ball radius and an enclosing
    ball radius around the Chebyshev centre — the well-boundedness
    witnesses of the paper.  [None] for empty or unbounded bodies. *)

val line_intersection : t -> Vec.t -> Vec.t -> (float * float) option
(** [line_intersection p x dir]: the parameter interval [(tmin, tmax)]
    of [{t | x + t·dir ∈ p}], or [None] when empty.  Central to
    hit-and-run sampling. *)

val pp : Format.formatter -> t -> unit
