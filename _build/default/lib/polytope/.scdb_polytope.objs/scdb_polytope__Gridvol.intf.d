lib/polytope/gridvol.mli: Relation Scdb_rng Vec
