lib/polytope/polytope.ml: Affine Array Atom Float Format List Mat Option Rational Scdb_lp Term Vec
