lib/polytope/polygon2d.mli: Dnf Polytope Vec
