lib/polytope/polygon2d.ml: Array Float List Polytope Vec
