lib/polytope/polytope.mli: Affine Dnf Format Mat Vec
