lib/polytope/gridvol.ml: Array Float Fun List Option Polytope Relation Scdb_rng Stdlib Vec
