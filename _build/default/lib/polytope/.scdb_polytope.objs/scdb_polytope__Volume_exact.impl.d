lib/polytope/volume_exact.ml: Array Atom Fun Hashtbl List Rational Relation Scdb_lp Term
