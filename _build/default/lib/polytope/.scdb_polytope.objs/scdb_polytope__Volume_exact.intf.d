lib/polytope/volume_exact.mli: Dnf Rational Relation
