module Rng = Scdb_rng.Rng

type t = {
  gamma : float;
  dim : int;
  origin : Vec.t; (* lower corner of the bounding box *)
  members : int array array; (* multi-indices of cells inside the relation *)
  scanned : int;
}

let relation_bbox r =
  let dim = Relation.dim r in
  (* Empty tuples (LP-infeasible, e.g. produced by DNF of a difference)
     contribute nothing; only a non-empty unbounded tuple is fatal. *)
  let boxes =
    List.filter_map
      (fun tuple ->
        let poly = Polytope.of_tuple ~dim tuple in
        match Polytope.bounding_box poly with
        | Some box -> Some (Some box)
        | None -> if Polytope.is_empty poly then None else Some None)
      (Relation.tuples r)
  in
  if boxes = [] || List.exists Option.is_none boxes then None
  else begin
    let boxes = List.filter_map Fun.id boxes in
    let lo = Vec.init dim (fun i -> List.fold_left (fun acc (l, _) -> Float.min acc l.(i)) infinity boxes) in
    let hi = Vec.init dim (fun i -> List.fold_left (fun acc (_, h) -> Float.max acc h.(i)) neg_infinity boxes) in
    Some (lo, hi)
  end

let max_cells = 100_000_000

let build ~gamma r =
  if gamma <= 0.0 then invalid_arg "Gridvol.build: gamma must be positive";
  match relation_bbox r with
  | None -> None
  | Some (lo, hi) ->
      let dim = Relation.dim r in
      let counts =
        Array.init dim (fun i -> Stdlib.max 1 (int_of_float (ceil ((hi.(i) -. lo.(i)) /. gamma))))
      in
      let total = Array.fold_left (fun acc c ->
          if acc > max_cells / Stdlib.max c 1 then invalid_arg "Gridvol.build: too many cells"
          else acc * c) 1 counts
      in
      let members = ref [] in
      let index = Array.make dim 0 in
      let centre = Vec.create dim in
      let scanned = ref 0 in
      let rec scan coord =
        if coord = dim then begin
          incr scanned;
          for i = 0 to dim - 1 do
            centre.(i) <- lo.(i) +. ((float_of_int index.(i) +. 0.5) *. gamma)
          done;
          if Relation.mem_float r centre then members := Array.copy index :: !members
        end
        else
          for v = 0 to counts.(coord) - 1 do
            index.(coord) <- v;
            scan (coord + 1)
          done
      in
      scan 0;
      assert (!scanned = total);
      Some { gamma; dim; origin = lo; members = Array.of_list !members; scanned = !scanned }

let cell_count t = Array.length t.members
let cells_scanned t = t.scanned
let gamma t = t.gamma

let volume t = float_of_int (cell_count t) *. (t.gamma ** float_of_int t.dim)

let sample t rng =
  if cell_count t = 0 then invalid_arg "Gridvol.sample: empty decomposition";
  let cell = Rng.pick rng t.members in
  Vec.init t.dim (fun i ->
      t.origin.(i) +. ((float_of_int cell.(i) +. Rng.float rng) *. t.gamma))
