(** Exact rational matrices (Gaussian elimination over {!Scdb_num.Rational}).

    Used where floating point would change the geometry: rank tests in
    quantifier elimination, exact feasibility certificates, and
    ground-truth volumes of simplices. *)

open Scdb_num

type t = Rational.t array array

val create : int -> int -> t
(** All-zero matrix. *)

val init : int -> int -> (int -> int -> Rational.t) -> t
val identity : int -> t
val dims : t -> int * int
val copy : t -> t
val of_int_rows : int list list -> t
val transpose : t -> t

val mul : t -> t -> t
val mul_vec : t -> Rational.t array -> Rational.t array

val rank : t -> int

val det : t -> Rational.t
(** @raise Invalid_argument if not square. *)

val solve : t -> Rational.t array -> Rational.t array option
(** Exact solution of [A x = b] for square non-singular [A]. *)

val inv : t -> t option

val rref : t -> t * int list
(** Reduced row-echelon form and the list of pivot column indices. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
