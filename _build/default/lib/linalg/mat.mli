(** Dense float matrices with the factorizations the samplers need.

    Row-major [float array array].  LU with partial pivoting backs
    [solve]/[inv]/[det]; Cholesky backs the covariance-based rounding
    step of the Dyer–Frieze–Kannan pipeline. *)

type t = float array array

val create : int -> int -> t
val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val diag : Vec.t -> t
val dims : t -> int * int
val copy : t -> t
val of_rows : Vec.t list -> t
val rows : t -> Vec.t list
val transpose : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val mul_vec : t -> Vec.t -> Vec.t

val lu : t -> (t * int array * int) option
(** LU decomposition with partial pivoting of a square matrix:
    [Some (lu, perm, parity)], or [None] if singular (within a small
    pivot tolerance).  [lu] stores both factors compactly. *)

val solve : t -> Vec.t -> Vec.t option
(** Solve [A x = b] for square [A]; [None] if singular. *)

val inv : t -> t option
val det : t -> float

val cholesky : t -> t option
(** Lower-triangular [L] with [L Lᵀ = A] for symmetric positive-definite
    [A]; [None] otherwise. *)

val solve_lower_triangular : t -> Vec.t -> Vec.t
(** Forward substitution with a lower-triangular matrix. *)

val solve_upper_triangular : t -> Vec.t -> Vec.t

val frobenius : t -> float

val equal_eps : float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
