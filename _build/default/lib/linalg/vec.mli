(** Dense float vectors.

    A thin, allocation-conscious layer over [float array]; all geometric
    code (polytopes, walks, hulls) speaks this type.  Operations never
    mutate their arguments unless the name says so. *)

type t = float array

val create : int -> t
(** Zero vector of the given dimension. *)

val init : int -> (int -> float) -> t
val dim : t -> int
val copy : t -> t
val of_list : float list -> t
val to_list : t -> float list

val basis : int -> int -> t
(** [basis d i] is the [i]-th standard basis vector of dimension [d]. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t
val axpy : float -> t -> t -> t
(** [axpy a x y = a*x + y]. *)

val dot : t -> t -> float
val norm2 : t -> float
(** Squared Euclidean norm. *)

val norm : t -> float
val norm_inf : t -> float
val dist : t -> t -> float

val normalize : t -> t
(** @raise Invalid_argument on the zero vector. *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t

val equal_eps : float -> t -> t -> bool
(** Component-wise comparison with absolute tolerance. *)

val lerp : t -> t -> float -> t
(** [lerp a b t = (1-t)*a + t*b]. *)

val project_out : t -> int list -> t
(** [project_out v coords] removes the listed coordinate indices,
    keeping the order of the remaining ones. *)

val keep : t -> int list -> t
(** [keep v coords] retains exactly the listed coordinates, in order. *)

val pp : Format.formatter -> t -> unit
