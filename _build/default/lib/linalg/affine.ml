type t = { mat : Mat.t; offset : Vec.t; inv_mat : Mat.t; det : float }

let make a b =
  match Mat.inv a with
  | None -> None
  | Some inv_mat ->
      let det = Mat.det a in
      if det = 0.0 then None else Some { mat = a; offset = Vec.copy b; inv_mat; det }

let identity d = { mat = Mat.identity d; offset = Vec.create d; inv_mat = Mat.identity d; det = 1.0 }

let translation b = { (identity (Vec.dim b)) with offset = Vec.copy b }

let scaling factors =
  if Array.exists (fun f -> f = 0.0) factors then None
  else begin
    let d = Vec.dim factors in
    let inv = Vec.map (fun f -> 1.0 /. f) factors in
    let det = Array.fold_left ( *. ) 1.0 factors in
    Some { mat = Mat.diag factors; offset = Vec.create d; inv_mat = Mat.diag inv; det }
  end

let apply t x = Vec.add (Mat.mul_vec t.mat x) t.offset
let apply_inverse t y = Mat.mul_vec t.inv_mat (Vec.sub y t.offset)

let compose f g =
  {
    mat = Mat.mul f.mat g.mat;
    offset = Vec.add (Mat.mul_vec f.mat g.offset) f.offset;
    inv_mat = Mat.mul g.inv_mat f.inv_mat;
    det = f.det *. g.det;
  }

let inverse t =
  {
    mat = t.inv_mat;
    offset = Vec.neg (Mat.mul_vec t.inv_mat t.offset);
    inv_mat = t.mat;
    det = 1.0 /. t.det;
  }

let volume_scale t = Float.abs t.det
let dim t = Vec.dim t.offset

let pp fmt t = Format.fprintf fmt "@[<v>A =@ %a@ b = %a@]" Mat.pp t.mat Vec.pp t.offset
