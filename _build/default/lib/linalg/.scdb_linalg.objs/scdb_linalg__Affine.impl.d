lib/linalg/affine.ml: Array Float Format Mat Vec
