lib/linalg/exact_mat.ml: Array Format List Rational Scdb_num
