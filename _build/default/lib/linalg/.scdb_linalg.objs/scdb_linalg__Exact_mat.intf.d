lib/linalg/exact_mat.mli: Format Rational Scdb_num
