lib/linalg/affine.mli: Format Mat Vec
