type t = float array

let create d = Array.make d 0.0
let init = Array.init
let dim = Array.length
let copy = Array.copy
let of_list = Array.of_list
let to_list = Array.to_list

let basis d i =
  let v = create d in
  v.(i) <- 1.0;
  v

let check_dims a b = if Array.length a <> Array.length b then invalid_arg "Vec: dimension mismatch"

let add a b =
  check_dims a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let scale s a = Array.map (fun x -> s *. x) a
let neg a = scale (-1.0) a

let axpy a x y =
  check_dims x y;
  Array.mapi (fun i xi -> (a *. xi) +. y.(i)) x

let dot a b =
  check_dims a b;
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let norm2 a = dot a a
let norm a = sqrt (norm2 a)

let norm_inf a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 a

let dist a b = norm (sub a b)

let normalize a =
  let n = norm a in
  if n = 0.0 then invalid_arg "Vec.normalize: zero vector";
  scale (1.0 /. n) a

let map = Array.map

let map2 f a b =
  check_dims a b;
  Array.mapi (fun i x -> f x b.(i)) a

let equal_eps eps a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri (fun i x -> if Float.abs (x -. b.(i)) > eps then ok := false) a;
       !ok
     end

let lerp a b t = map2 (fun x y -> ((1.0 -. t) *. x) +. (t *. y)) a b

let project_out v coords =
  let drop = Array.make (Array.length v) false in
  List.iter (fun i -> drop.(i) <- true) coords;
  let kept = ref [] in
  for i = Array.length v - 1 downto 0 do
    if not drop.(i) then kept := v.(i) :: !kept
  done;
  of_list !kept

let keep v coords = of_list (List.map (fun i -> v.(i)) coords)

let pp fmt v =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") (fun f x -> Format.fprintf f "%g" x))
    (to_list v)
