(** Invertible affine transformations [x ↦ A x + b].

    The Dyer–Frieze–Kannan pipeline rounds a convex body by an affine
    map; volumes then rescale by [|det A|], so the transform carries its
    determinant and inverse. *)

type t = private {
  mat : Mat.t;
  offset : Vec.t;
  inv_mat : Mat.t;
  det : float; (* det mat, non-zero *)
}

val make : Mat.t -> Vec.t -> t option
(** [make a b] is the map [x ↦ a x + b]; [None] if [a] is singular. *)

val identity : int -> t
val translation : Vec.t -> t

val scaling : Vec.t -> t option
(** Diagonal scaling; [None] if any factor is zero. *)

val apply : t -> Vec.t -> Vec.t
val apply_inverse : t -> Vec.t -> Vec.t

val compose : t -> t -> t
(** [compose f g] applies [g] first: [(compose f g) x = f (g x)]. *)

val inverse : t -> t

val volume_scale : t -> float
(** [|det A|]: the factor by which the map multiplies volumes. *)

val dim : t -> int
val pp : Format.formatter -> t -> unit
