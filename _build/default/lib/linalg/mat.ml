type t = float array array

let create r c = Array.make_matrix r c 0.0
let init r c f = Array.init r (fun i -> Array.init c (fun j -> f i j))
let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)
let diag v = init (Vec.dim v) (Vec.dim v) (fun i j -> if i = j then v.(i) else 0.0)

let dims m = (Array.length m, if Array.length m = 0 then 0 else Array.length m.(0))

let copy m = Array.map Array.copy m
let of_rows rows = Array.of_list (List.map Array.copy rows)
let rows m = Array.to_list (copy m)

let transpose m =
  let r, c = dims m in
  init c r (fun i j -> m.(j).(i))

let zip_with f a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ra <> rb || ca <> cb then invalid_arg "Mat: dimension mismatch";
  init ra ca (fun i j -> f a.(i).(j) b.(i).(j))

let add = zip_with ( +. )
let sub = zip_with ( -. )
let scale s = Array.map (Vec.scale s)

let mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ca <> rb then invalid_arg "Mat.mul: dimension mismatch";
  init ra cb (fun i j ->
      let s = ref 0.0 in
      for k = 0 to ca - 1 do
        s := !s +. (a.(i).(k) *. b.(k).(j))
      done;
      !s)

let mul_vec a v =
  let ra, ca = dims a in
  if ca <> Vec.dim v then invalid_arg "Mat.mul_vec: dimension mismatch";
  Vec.init ra (fun i -> Vec.dot a.(i) v)

let pivot_tolerance = 1e-12

let lu m =
  let n, c = dims m in
  if n <> c then invalid_arg "Mat.lu: not square";
  let a = copy m in
  let perm = Array.init n (fun i -> i) in
  let parity = ref 1 in
  let singular = ref false in
  (let k = ref 0 in
   while (not !singular) && !k < n do
     let kk = !k in
     (* Partial pivoting: bring the largest remaining entry of column kk up. *)
     let best = ref kk in
     for i = kk + 1 to n - 1 do
       if Float.abs a.(i).(kk) > Float.abs a.(!best).(kk) then best := i
     done;
     if Float.abs a.(!best).(kk) < pivot_tolerance then singular := true
     else begin
       if !best <> kk then begin
         let tmp = a.(kk) in
         a.(kk) <- a.(!best);
         a.(!best) <- tmp;
         let tp = perm.(kk) in
         perm.(kk) <- perm.(!best);
         perm.(!best) <- tp;
         parity := - !parity
       end;
       for i = kk + 1 to n - 1 do
         let f = a.(i).(kk) /. a.(kk).(kk) in
         a.(i).(kk) <- f;
         for j = kk + 1 to n - 1 do
           a.(i).(j) <- a.(i).(j) -. (f *. a.(kk).(j))
         done
       done;
       incr k
     end
   done);
  if !singular then None else Some (a, perm, !parity)

let lu_solve (lu, perm, _) b =
  let n = Array.length lu in
  let y = Vec.create n in
  for i = 0 to n - 1 do
    let s = ref b.(perm.(i)) in
    for j = 0 to i - 1 do
      s := !s -. (lu.(i).(j) *. y.(j))
    done;
    y.(i) <- !s
  done;
  let x = Vec.create n in
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (lu.(i).(j) *. x.(j))
    done;
    x.(i) <- !s /. lu.(i).(i)
  done;
  x

let solve m b = Option.map (fun f -> lu_solve f b) (lu m)

let inv m =
  let n = Array.length m in
  match lu m with
  | None -> None
  | Some f ->
      let cols = List.init n (fun j -> lu_solve f (Vec.basis n j)) in
      Some (transpose (of_rows cols))

let det m =
  match lu m with
  | None -> 0.0
  | Some (lu, _, parity) ->
      let n = Array.length lu in
      let d = ref (float_of_int parity) in
      for i = 0 to n - 1 do
        d := !d *. lu.(i).(i)
      done;
      !d

let cholesky m =
  let n, c = dims m in
  if n <> c then invalid_arg "Mat.cholesky: not square";
  let l = create n n in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref m.(i).(j) in
      for k = 0 to j - 1 do
        s := !s -. (l.(i).(k) *. l.(j).(k))
      done;
      if i = j then
        if !s <= 0.0 then ok := false else l.(i).(i) <- sqrt !s
      else if l.(j).(j) = 0.0 then ok := false
      else l.(i).(j) <- !s /. l.(j).(j)
    done
  done;
  if !ok then Some l else None

let solve_lower_triangular l b =
  let n = Array.length l in
  let x = Vec.create n in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for j = 0 to i - 1 do
      s := !s -. (l.(i).(j) *. x.(j))
    done;
    x.(i) <- !s /. l.(i).(i)
  done;
  x

let solve_upper_triangular u b =
  let n = Array.length u in
  let x = Vec.create n in
  for i = n - 1 downto 0 do
    let s = ref b.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (u.(i).(j) *. x.(j))
    done;
    x.(i) <- !s /. u.(i).(i)
  done;
  x

let frobenius m = sqrt (Array.fold_left (fun acc row -> acc +. Vec.norm2 row) 0.0 m)

let equal_eps eps a b =
  let ra, ca = dims a and rb, cb = dims b in
  ra = rb && ca = cb && Array.for_all2 (Vec.equal_eps eps) a b

let pp fmt m =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Vec.pp)
    (rows m)
