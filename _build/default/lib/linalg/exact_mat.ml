open Scdb_num

type t = Rational.t array array

let create r c = Array.make_matrix r c Rational.zero
let init r c f = Array.init r (fun i -> Array.init c (fun j -> f i j))
let identity n = init n n (fun i j -> if i = j then Rational.one else Rational.zero)
let dims m = (Array.length m, if Array.length m = 0 then 0 else Array.length m.(0))
let copy m = Array.map Array.copy m

let of_int_rows rows =
  Array.of_list (List.map (fun row -> Array.of_list (List.map Rational.of_int row)) rows)

let transpose m =
  let r, c = dims m in
  init c r (fun i j -> m.(j).(i))

let mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ca <> rb then invalid_arg "Exact_mat.mul: dimension mismatch";
  init ra cb (fun i j ->
      let s = ref Rational.zero in
      for k = 0 to ca - 1 do
        s := Rational.add !s (Rational.mul a.(i).(k) b.(k).(j))
      done;
      !s)

let mul_vec a v =
  let ra, ca = dims a in
  if ca <> Array.length v then invalid_arg "Exact_mat.mul_vec: dimension mismatch";
  Array.init ra (fun i ->
      let s = ref Rational.zero in
      for k = 0 to ca - 1 do
        s := Rational.add !s (Rational.mul a.(i).(k) v.(k))
      done;
      !s)

(* Gauss-Jordan to reduced row-echelon form; returns pivot columns. *)
let rref m =
  let a = copy m in
  let r, c = dims a in
  let pivots = ref [] in
  let row = ref 0 in
  for col = 0 to c - 1 do
    if !row < r then begin
      (* Find a non-zero pivot in this column at or below [row]. *)
      let p = ref (-1) in
      (try
         for i = !row to r - 1 do
           if not (Rational.is_zero a.(i).(col)) then begin
             p := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !p >= 0 then begin
        let tmp = a.(!row) in
        a.(!row) <- a.(!p);
        a.(!p) <- tmp;
        let inv_pivot = Rational.inv a.(!row).(col) in
        a.(!row) <- Array.map (fun x -> Rational.mul x inv_pivot) a.(!row);
        for i = 0 to r - 1 do
          if i <> !row && not (Rational.is_zero a.(i).(col)) then begin
            let f = a.(i).(col) in
            for j = 0 to c - 1 do
              a.(i).(j) <- Rational.sub a.(i).(j) (Rational.mul f a.(!row).(j))
            done
          end
        done;
        pivots := col :: !pivots;
        incr row
      end
    end
  done;
  (a, List.rev !pivots)

let rank m = List.length (snd (rref m))

let det m =
  let n, c = dims m in
  if n <> c then invalid_arg "Exact_mat.det: not square";
  let a = copy m in
  let sign = ref Rational.one in
  let result = ref Rational.one in
  (try
     for col = 0 to n - 1 do
       let p = ref (-1) in
       (try
          for i = col to n - 1 do
            if not (Rational.is_zero a.(i).(col)) then begin
              p := i;
              raise Exit
            end
          done
        with Exit -> ());
       if !p < 0 then begin
         result := Rational.zero;
         raise Exit
       end;
       if !p <> col then begin
         let tmp = a.(col) in
         a.(col) <- a.(!p);
         a.(!p) <- tmp;
         sign := Rational.neg !sign
       end;
       result := Rational.mul !result a.(col).(col);
       let inv_pivot = Rational.inv a.(col).(col) in
       for i = col + 1 to n - 1 do
         if not (Rational.is_zero a.(i).(col)) then begin
           let f = Rational.mul a.(i).(col) inv_pivot in
           for j = col to n - 1 do
             a.(i).(j) <- Rational.sub a.(i).(j) (Rational.mul f a.(col).(j))
           done
         end
       done
     done
   with Exit -> ());
  Rational.mul !sign !result

let solve m b =
  let n, c = dims m in
  if n <> c || n <> Array.length b then invalid_arg "Exact_mat.solve: dimension mismatch";
  let aug = init n (c + 1) (fun i j -> if j < c then m.(i).(j) else b.(i)) in
  let reduced, pivots = rref aug in
  if List.length pivots <> n || List.mem c pivots then None
  else Some (Array.init n (fun i -> reduced.(i).(c)))

let inv m =
  let n, c = dims m in
  if n <> c then invalid_arg "Exact_mat.inv: not square";
  let aug = init n (2 * n) (fun i j -> if j < n then m.(i).(j) else if j - n = i then Rational.one else Rational.zero) in
  let reduced, pivots = rref aug in
  if List.length pivots <> n || List.exists (fun p -> p >= n) pivots then None
  else Some (init n n (fun i j -> reduced.(i).(n + j)))

let equal a b =
  let ra, ca = dims a and rb, cb = dims b in
  ra = rb && ca = cb && Array.for_all2 (Array.for_all2 Rational.equal) a b

let pp fmt m =
  Array.iter
    (fun row ->
      Format.fprintf fmt "@[[%a]@]@."
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") Rational.pp)
        (Array.to_list row))
    m
