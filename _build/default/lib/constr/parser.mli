(** Recursive-descent parser for FO+LIN formulas.

    Grammar (lowest to highest precedence):
    {v
    formula    ::= 'exists' ident+ '.' formula
                 | 'forall' ident+ '.' formula
                 | implication
    implication::= disjunction ('->' formula)?
    disjunction::= conjunction ('\/' conjunction)*
    conjunction::= unary ('/\' unary)*
    unary      ::= '~' unary | '(' formula ')' | 'true' | 'false' | atom
    atom       ::= expr (relop expr)+            (chains allowed: 0 <= x <= 1)
    relop      ::= '<=' | '<' | '>=' | '>' | '=' | '<>'
    expr       ::= ['-'] term (('+'|'-') term)*
    term       ::= factor (('*'|'/') factor)*    (multiplication must stay linear)
    factor     ::= number | ident | '(' expr ')' | '-' factor
    v}

    Free variables are the names passed to {!parse}, bound to indices
    [0 .. n-1] in order; quantified variables get fresh indices and may
    shadow free names. *)

exception Parse_error of string

val parse : vars:string list -> string -> Formula.t
(** @raise Parse_error on syntax errors, unknown variables, or
    non-linear products. @raise Lexer.Lex_error on bad characters. *)

val parse_relation : vars:string list -> string -> Relation.t
(** Parse then convert to DNF.  The input must be quantifier-free.
    The relation's dimension is [List.length vars]. *)
