type tuple = Atom.t list

module ASet = Set.Make (Atom)

let simplify_tuple atoms =
  let rec go acc = function
    | [] -> Some (List.rev (ASet.elements acc))
    | a :: rest ->
        if Atom.is_trivially_false a then None
        else if Atom.is_trivially_true a then go acc rest
        else go (ASet.add a acc) rest
  in
  (* ASet already sorts; reverse of elements keeps deterministic order. *)
  match go ASet.empty atoms with Some atoms -> Some (List.rev atoms) | None -> None

let of_formula ?(limit = 100_000) f =
  if not (Formula.is_quantifier_free f) then invalid_arg "Dnf.of_formula: quantified formula";
  let f = Formula.nnf f in
  (* After NNF the formula contains only True/False/Atom/And/Or. *)
  let check_size tuples =
    if List.length tuples > limit then invalid_arg "Dnf.of_formula: tuple limit exceeded";
    tuples
  in
  let rec go = function
    | Formula.True -> [ [] ]
    | Formula.False -> []
    | Formula.Atom a -> [ [ a ] ]
    | Formula.Or fs -> check_size (List.concat_map go fs)
    | Formula.And fs ->
        List.fold_left
          (fun acc f ->
            let ts = go f in
            check_size (List.concat_map (fun partial -> List.map (fun t -> partial @ t) ts) acc))
          [ [] ] fs
    | Formula.Not _ | Formula.Exists _ | Formula.Forall _ ->
        invalid_arg "Dnf.of_formula: unexpected connective after NNF"
  in
  let tuples = List.filter_map simplify_tuple (go f) in
  (* Drop syntactic duplicates. *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun t ->
      if Hashtbl.mem seen t then false
      else begin
        Hashtbl.add seen t ();
        true
      end)
    tuples

let tuple_to_formula t = Formula.conj (List.map Formula.atom t)
let to_formula tuples = Formula.disj (List.map tuple_to_formula tuples)

let tuple_holds t x = List.for_all (fun a -> Atom.holds a x) t
let tuple_holds_float ?(slack = 0.0) t x = List.for_all (fun a -> Atom.holds_float ~slack a x) t
