type op = Le | Lt | Eq

type t = { term : Term.t; op : op }

let make term op = { term; op }
let le a b = { term = Term.sub a b; op = Le }
let lt a b = { term = Term.sub a b; op = Lt }
let ge a b = le b a
let gt a b = lt b a
let eq a b = { term = Term.sub a b; op = Eq }

let negate a =
  match a.op with
  | Le -> [ { term = Term.neg a.term; op = Lt } ] (* ¬(t ≤ 0) ⇔ −t < 0 *)
  | Lt -> [ { term = Term.neg a.term; op = Le } ]
  | Eq -> [ { term = a.term; op = Lt }; { term = Term.neg a.term; op = Lt } ]

let holds a x =
  let v = Term.eval a.term x in
  match a.op with
  | Le -> Rational.sign v <= 0
  | Lt -> Rational.sign v < 0
  | Eq -> Rational.sign v = 0

let holds_float ?(slack = 0.0) a x =
  let v = Term.eval_float a.term x in
  match a.op with Le -> v <= slack | Lt -> v < slack | Eq -> Float.abs v <= slack

let holds_certified a x =
  (* Rational coefficients may not be representable: enclose each in a
     one-ulp interval around its float image before accumulating. *)
  let enclose q =
    let f = Rational.to_float q in
    if Float.is_finite f then Interval.make (Float.pred f) (Float.succ f) else Interval.point f
  in
  let value =
    List.fold_left
      (fun acc (i, c) -> Interval.add acc (Interval.mul (enclose c) (Interval.point x.(i))))
      (enclose (Term.constant a.term))
      (Term.coeffs a.term)
  in
  match (Interval.sign value, a.op) with
  | `Negative, (Le | Lt) -> Some true
  | `Positive, (Le | Lt) -> Some false
  | `Positive, Eq | `Negative, Eq -> Some false
  | `Zero_in, _ -> None

let is_trivially_true a =
  Term.is_const a.term
  &&
  let s = Rational.sign (Term.constant a.term) in
  match a.op with Le -> s <= 0 | Lt -> s < 0 | Eq -> s = 0

let is_trivially_false a =
  Term.is_const a.term
  &&
  let s = Rational.sign (Term.constant a.term) in
  match a.op with Le -> s > 0 | Lt -> s >= 0 | Eq -> s <> 0

let vars a = Term.vars a.term
let max_var a = Term.max_var a.term
let subst a i u = { a with term = Term.subst a.term i u }
let rename a f = { a with term = Term.rename a.term f }

let to_halfspace d a =
  match a.op with
  | Eq -> invalid_arg "Atom.to_halfspace: equality atom"
  | Le | Lt ->
      let w, c = Term.to_float_row d a.term in
      (w, -.c)

let compare a b =
  let c = Stdlib.compare a.op b.op in
  if c <> 0 then c else Term.compare a.term b.term

let equal a b = compare a b = 0

let op_string = function Le -> "<=" | Lt -> "<" | Eq -> "="

let pp_named name fmt a =
  Format.fprintf fmt "%a %s 0" (Term.pp_named name) a.term (op_string a.op)

let pp fmt a = pp_named (Printf.sprintf "x%d") fmt a
