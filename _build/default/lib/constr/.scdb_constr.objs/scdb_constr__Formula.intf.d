lib/constr/formula.mli: Atom Format Rational Term Vec
