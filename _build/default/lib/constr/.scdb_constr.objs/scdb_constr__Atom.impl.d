lib/constr/atom.ml: Array Float Format Interval List Printf Rational Stdlib Term
