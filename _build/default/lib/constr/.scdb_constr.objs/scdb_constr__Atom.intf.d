lib/constr/atom.mli: Format Rational Term Vec
