lib/constr/formula.ml: Atom Format Hashtbl Int List Printf Set Stdlib String
