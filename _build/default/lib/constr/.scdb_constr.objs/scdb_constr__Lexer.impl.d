lib/constr/lexer.ml: Format List Printf Rational String
