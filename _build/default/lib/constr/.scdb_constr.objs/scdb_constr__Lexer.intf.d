lib/constr/lexer.mli: Format Rational
