lib/constr/parser.ml: Atom Format Formula Lexer List Printf Rational Relation Term
