lib/constr/parser.mli: Formula Relation
