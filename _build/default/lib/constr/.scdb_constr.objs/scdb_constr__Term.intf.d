lib/constr/term.mli: Format Rational Vec
