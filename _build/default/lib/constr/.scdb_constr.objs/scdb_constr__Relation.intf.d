lib/constr/relation.mli: Dnf Format Formula Rational Term Vec
