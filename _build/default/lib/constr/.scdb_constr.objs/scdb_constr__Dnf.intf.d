lib/constr/dnf.mli: Atom Formula Rational Vec
