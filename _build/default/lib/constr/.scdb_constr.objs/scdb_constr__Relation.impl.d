lib/constr/relation.ml: Array Atom Dnf Format Formula Fun List Printf Rational Term
