lib/constr/dnf.ml: Atom Formula Hashtbl List Set
