lib/constr/term.ml: Array Format Int List Map Printf Rational Vec
