(** Atomic linear constraints, normalized as [t ⋈ 0].

    Every comparison of two linear terms is stored as a single term
    compared to zero, with [⋈ ∈ {≤, <, =}]; the other comparison shapes
    ([≥], [>], [≠]) are expressed by negating the term or the atom. *)

type op = Le | Lt | Eq

type t = private { term : Term.t; op : op }
(** The constraint [term op 0]. *)

val le : Term.t -> Term.t -> t
(** [le a b] is [a ≤ b]. *)

val lt : Term.t -> Term.t -> t
val ge : Term.t -> Term.t -> t
val gt : Term.t -> Term.t -> t
val eq : Term.t -> Term.t -> t

val make : Term.t -> op -> t
(** [make t op] is the constraint [t op 0]. *)

val negate : t -> t list
(** De Morgan dual as a disjunction: [¬(t ≤ 0) = t > 0],
    [¬(t = 0) = t < 0 ∨ −t < 0]. *)

val holds : t -> Rational.t array -> bool
val holds_float : ?slack:float -> t -> Vec.t -> bool
(** Float membership; [slack] (default 0) relaxes the comparison to
    absorb round-off: [t(x) <= slack]. *)

val holds_certified : t -> Vec.t -> bool option
(** Interval-arithmetic membership with outward rounding: [Some b] is a
    certified answer, [None] means the point is too close to the
    boundary to decide in float precision. *)

val is_trivially_true : t -> bool
(** Constant term making the atom valid (e.g. [-1 <= 0]). *)

val is_trivially_false : t -> bool

val vars : t -> int list
val max_var : t -> int
val subst : t -> int -> Term.t -> t
val rename : t -> (int -> int) -> t

val to_halfspace : int -> t -> Vec.t * float
(** [to_halfspace d a = (w, rhs)] with the atom equivalent to
    [w·x <= rhs] (strictness dropped).  @raise Invalid_argument on
    equality atoms, which are not halfspaces. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val pp_named : (int -> string) -> Format.formatter -> t -> unit
