type token =
  | IDENT of string
  | NUM of Rational.t
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | LPAREN
  | RPAREN
  | DOT
  | COMMA
  | LE
  | LT
  | GE
  | GT
  | EQ
  | NEQ
  | AND
  | OR
  | NOT
  | IMPLIES
  | EXISTS
  | FORALL
  | TRUE
  | FALSE
  | EOF

exception Lex_error of string * int

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'

let keyword = function
  | "exists" -> Some EXISTS
  | "forall" -> Some FORALL
  | "and" -> Some AND
  | "or" -> Some OR
  | "not" -> Some NOT
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | _ -> None

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      (* A '.' is a decimal point only when followed by a digit — otherwise
         it is the quantifier dot, as in [exists z. 1 <= z]. *)
      if !i + 1 < n && input.[!i] = '.' && is_digit input.[!i + 1] then begin
        incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done
      end;
      push (NUM (Rational.of_string (String.sub input start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      let word = String.sub input start (!i - start) in
      push (match keyword word with Some t -> t | None -> IDENT word)
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      let three = if !i + 2 < n then String.sub input !i 3 else "" in
      if three = "<=>" then raise (Lex_error ("'<=>' not supported", !i))
      else if two = "<=" then (push LE; i := !i + 2)
      else if two = ">=" then (push GE; i := !i + 2)
      else if two = "<>" then (push NEQ; i := !i + 2)
      else if two = "!=" then (push NEQ; i := !i + 2)
      else if two = "->" then (push IMPLIES; i := !i + 2)
      else if two = "=>" then (push IMPLIES; i := !i + 2)
      else if two = "/\\" then (push AND; i := !i + 2)
      else if two = "\\/" then (push OR; i := !i + 2)
      else if two = "&&" then (push AND; i := !i + 2)
      else if two = "||" then (push OR; i := !i + 2)
      else begin
        (match c with
        | '+' -> push PLUS
        | '-' -> push MINUS
        | '*' -> push STAR
        | '/' -> push SLASH
        | '(' -> push LPAREN
        | ')' -> push RPAREN
        | '.' -> push DOT
        | ',' -> push COMMA
        | '<' -> push LT
        | '>' -> push GT
        | '=' -> push EQ
        | '~' | '!' -> push NOT
        | '&' -> push AND
        | '|' -> push OR
        | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !i)));
        incr i
      end
    end
  done;
  List.rev (EOF :: !tokens)

let pp_token fmt t =
  let s =
    match t with
    | IDENT s -> Printf.sprintf "identifier %S" s
    | NUM q -> Printf.sprintf "number %s" (Rational.to_string q)
    | PLUS -> "'+'"
    | MINUS -> "'-'"
    | STAR -> "'*'"
    | SLASH -> "'/'"
    | LPAREN -> "'('"
    | RPAREN -> "')'"
    | DOT -> "'.'"
    | COMMA -> "','"
    | LE -> "'<='"
    | LT -> "'<'"
    | GE -> "'>='"
    | GT -> "'>'"
    | EQ -> "'='"
    | NEQ -> "'<>'"
    | AND -> "'/\\'"
    | OR -> "'\\/'"
    | NOT -> "'~'"
    | IMPLIES -> "'->'"
    | EXISTS -> "'exists'"
    | FORALL -> "'forall'"
    | TRUE -> "'true'"
    | FALSE -> "'false'"
    | EOF -> "end of input"
  in
  Format.pp_print_string fmt s
