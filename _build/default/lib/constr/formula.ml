type t =
  | True
  | False
  | Atom of Atom.t
  | And of t list
  | Or of t list
  | Not of t
  | Exists of int list * t
  | Forall of int list * t

let tru = True
let fls = False

let atom a =
  if Atom.is_trivially_true a then True
  else if Atom.is_trivially_false a then False
  else Atom a

let conj fs =
  let flat =
    List.concat_map (function And gs -> gs | True -> [] | f -> [ f ]) fs
  in
  if List.exists (fun f -> f = False) flat then False
  else match flat with [] -> True | [ f ] -> f | fs -> And fs

let disj fs =
  let flat = List.concat_map (function Or gs -> gs | False -> [] | f -> [ f ]) fs in
  if List.exists (fun f -> f = True) flat then True
  else match flat with [] -> False | [ f ] -> f | fs -> Or fs

let neg = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let exists vs f = match (vs, f) with [], f -> f | _, True -> True | _, False -> False | vs, Exists (ws, g) -> Exists (vs @ ws, g) | vs, f -> Exists (vs, f)

let forall vs f = match (vs, f) with [], f -> f | _, True -> True | _, False -> False | vs, Forall (ws, g) -> Forall (vs @ ws, g) | vs, f -> Forall (vs, f)

let implies a b = disj [ neg a; b ]

module ISet = Set.Make (Int)

let rec free_set = function
  | True | False -> ISet.empty
  | Atom a -> ISet.of_list (Atom.vars a)
  | And fs | Or fs -> List.fold_left (fun acc f -> ISet.union acc (free_set f)) ISet.empty fs
  | Not f -> free_set f
  | Exists (vs, f) | Forall (vs, f) -> ISet.diff (free_set f) (ISet.of_list vs)

let free_vars f = ISet.elements (free_set f)

let rec max_var = function
  | True | False -> -1
  | Atom a -> Atom.max_var a
  | And fs | Or fs -> List.fold_left (fun acc f -> Stdlib.max acc (max_var f)) (-1) fs
  | Not f -> max_var f
  | Exists (vs, f) | Forall (vs, f) ->
      List.fold_left Stdlib.max (max_var f) vs

let rec is_quantifier_free = function
  | True | False | Atom _ -> true
  | And fs | Or fs -> List.for_all is_quantifier_free fs
  | Not f -> is_quantifier_free f
  | Exists _ | Forall _ -> false

let rec size = function
  | True | False | Atom _ -> 1
  | And fs | Or fs -> List.fold_left (fun acc f -> acc + size f) 1 fs
  | Not f -> 1 + size f
  | Exists (_, f) | Forall (_, f) -> 1 + size f

let rec atoms = function
  | True | False -> []
  | Atom a -> [ a ]
  | And fs | Or fs -> List.concat_map atoms fs
  | Not f -> atoms f
  | Exists (_, f) | Forall (_, f) -> atoms f

let rec eval f x =
  match f with
  | True -> true
  | False -> false
  | Atom a -> Atom.holds a x
  | And fs -> List.for_all (fun f -> eval f x) fs
  | Or fs -> List.exists (fun f -> eval f x) fs
  | Not f -> not (eval f x)
  | Exists _ | Forall _ -> invalid_arg "Formula.eval: quantified formula"

let rec eval_float ?(slack = 0.0) f x =
  match f with
  | True -> true
  | False -> false
  | Atom a -> Atom.holds_float ~slack a x
  | And fs -> List.for_all (fun f -> eval_float ~slack f x) fs
  | Or fs -> List.exists (fun f -> eval_float ~slack f x) fs
  | Not f -> not (eval_float ~slack f x)
  | Exists _ | Forall _ -> invalid_arg "Formula.eval_float: quantified formula"

let rec nnf f =
  match f with
  | True | False | Atom _ -> f
  | And fs -> conj (List.map nnf fs)
  | Or fs -> disj (List.map nnf fs)
  | Exists (vs, f) -> exists vs (nnf f)
  | Forall (vs, f) -> neg (exists vs (nnf (neg f)))
  | Not g -> (
      match g with
      | True -> False
      | False -> True
      | Atom a -> disj (List.map atom (Atom.negate a))
      | And fs -> disj (List.map (fun f -> nnf (neg f)) fs)
      | Or fs -> conj (List.map (fun f -> nnf (neg f)) fs)
      | Not h -> nnf h
      | Exists (vs, h) -> neg (exists vs (nnf h))
      | Forall (vs, h) -> exists vs (nnf (neg h)))

let rec rename f r =
  match f with
  | True | False -> f
  | Atom a -> Atom (Atom.rename a r)
  | And fs -> And (List.map (fun f -> rename f r) fs)
  | Or fs -> Or (List.map (fun f -> rename f r) fs)
  | Not f -> Not (rename f r)
  | Exists (vs, f) -> Exists (List.map r vs, rename f r)
  | Forall (vs, f) -> Forall (List.map r vs, rename f r)

let rec nnf_deep f =
  match f with
  | True | False | Atom _ -> f
  | And fs -> conj (List.map nnf_deep fs)
  | Or fs -> disj (List.map nnf_deep fs)
  | Exists (vs, f) -> exists vs (nnf_deep f)
  | Forall (vs, f) -> forall vs (nnf_deep f)
  | Not g -> (
      match g with
      | True -> False
      | False -> True
      | Atom a -> disj (List.map atom (Atom.negate a))
      | And fs -> disj (List.map (fun f -> nnf_deep (Not f)) fs)
      | Or fs -> conj (List.map (fun f -> nnf_deep (Not f)) fs)
      | Not h -> nnf_deep h
      | Exists (vs, h) -> forall vs (nnf_deep (Not h))
      | Forall (vs, h) -> exists vs (nnf_deep (Not h)))

type quantifier_block = E of int list | A of int list

(* Rename helper for a total function given as hashtable with identity
   default. *)
let renaming_of table i = match Hashtbl.find_opt table i with Some j -> j | None -> i

let prenex f =
  let counter = ref (max_var f + 1) in
  let fresh () =
    let v = !counter in
    incr counter;
    v
  in
  (* Returns (prefix, matrix); all bound variables freshly renamed. *)
  let rec go f =
    match f with
    | True | False | Atom _ -> ([], f)
    | And fs ->
        let parts = List.map go fs in
        (List.concat_map fst parts, conj (List.map snd parts))
    | Or fs ->
        let parts = List.map go fs in
        (List.concat_map fst parts, disj (List.map snd parts))
    | Exists (vs, g) -> quantify (fun ws -> E ws) vs g
    | Forall (vs, g) -> quantify (fun ws -> A ws) vs g
    | Not _ -> assert false (* removed by nnf_deep *)
  and quantify block vs g =
    let table = Hashtbl.create 4 in
    let ws = List.map (fun v -> let w = fresh () in Hashtbl.add table v w; w) vs in
    let prefix, matrix = go (rename g (renaming_of table)) in
    (* The renaming of [vs] must happen before recursing on inner
       quantifiers; since [rename] runs first, inner binders are
       untouched (their names are distinct by freshness). *)
    (block ws :: prefix, matrix)
  in
  go (nnf_deep f)

let of_prenex (prefix, matrix) =
  List.fold_right
    (fun block acc -> match block with E vs -> exists vs acc | A vs -> forall vs acc)
    prefix matrix

let rec subst f i u =
  match f with
  | True | False -> f
  | Atom a -> atom (Atom.subst a i u)
  | And fs -> conj (List.map (fun f -> subst f i u) fs)
  | Or fs -> disj (List.map (fun f -> subst f i u) fs)
  | Not f -> neg (subst f i u)
  | Exists (vs, g) -> if List.mem i vs then f else Exists (vs, subst g i u)
  | Forall (vs, g) -> if List.mem i vs then f else Forall (vs, subst g i u)

let rec map_atoms g = function
  | True -> True
  | False -> False
  | Atom a -> g a
  | And fs -> conj (List.map (map_atoms g) fs)
  | Or fs -> disj (List.map (map_atoms g) fs)
  | Not f -> neg (map_atoms g f)
  | Exists (vs, f) -> exists vs (map_atoms g f)
  | Forall (vs, f) -> forall vs (map_atoms g f)

let rec equal a b =
  match (a, b) with
  | True, True | False, False -> true
  | Atom x, Atom y -> Atom.equal x y
  | And xs, And ys | Or xs, Or ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Not x, Not y -> equal x y
  | Exists (vs, x), Exists (ws, y) | Forall (vs, x), Forall (ws, y) -> vs = ws && equal x y
  | _ -> false

let rec pp_named name fmt f =
  let pp = pp_named name in
  let pp_list sep fmt fs =
    Format.pp_print_list
      ~pp_sep:(fun f () -> Format.fprintf f " %s@ " sep)
      (fun f g ->
        match g with
        | And _ | Or _ | Exists _ | Forall _ -> Format.fprintf f "(%a)" pp g
        | _ -> pp f g)
      fmt fs
  in
  match f with
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Atom a -> Atom.pp_named name fmt a
  | And fs -> Format.fprintf fmt "@[%a@]" (pp_list "/\\") fs
  | Or fs -> Format.fprintf fmt "@[%a@]" (pp_list "\\/") fs
  | Not f -> Format.fprintf fmt "~(%a)" pp f
  | Exists (vs, f) ->
      Format.fprintf fmt "@[exists %s.@ %a@]" (String.concat " " (List.map name vs)) pp f
  | Forall (vs, f) ->
      Format.fprintf fmt "@[forall %s.@ %a@]" (String.concat " " (List.map name vs)) pp f

let pp fmt f = pp_named (Printf.sprintf "x%d") fmt f
