(** Disjunctive normal form.

    A quantifier-free FO+LIN formula is equivalent to a finite union of
    {e generalized tuples} (conjunctions of atoms); this module performs
    the distribution, with pruning of trivially-empty tuples and
    syntactic duplicate removal. *)

type tuple = Atom.t list
(** A generalized tuple: the conjunction of its atoms (a convex set). *)

val of_formula : ?limit:int -> Formula.t -> tuple list
(** DNF of a quantifier-free formula.  [limit] (default 100_000) bounds
    the number of tuples produced.
    @raise Invalid_argument if the formula has quantifiers or the limit
    is exceeded. *)

val tuple_to_formula : tuple -> Formula.t
val to_formula : tuple list -> Formula.t

val simplify_tuple : tuple -> tuple option
(** Remove duplicate and trivially-true atoms; [None] if the tuple
    contains a trivially-false atom. *)

val tuple_holds : tuple -> Rational.t array -> bool
val tuple_holds_float : ?slack:float -> tuple -> Vec.t -> bool
