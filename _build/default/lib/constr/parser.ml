exception Parse_error of string

type state = { mutable tokens : Lexer.token list; mutable next_var : int }

let peek st = match st.tokens with [] -> Lexer.EOF | t :: _ -> t

let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st token =
  if peek st = token then advance st
  else
    raise
      (Parse_error
         (Format.asprintf "expected %a but found %a" Lexer.pp_token token Lexer.pp_token (peek st)))

let fail_at st msg =
  raise (Parse_error (Format.asprintf "%s (at %a)" msg Lexer.pp_token (peek st)))

(* Environment: [(string * int) list], name -> variable index, with
   shadowing decided by assoc order. *)
let lookup env name =
  match List.assoc_opt name env with
  | Some i -> i
  | None -> raise (Parse_error (Printf.sprintf "unknown variable %S" name))

(* --- expressions ------------------------------------------------------ *)

let rec parse_expr st env =
  let negated = peek st = Lexer.MINUS in
  if negated then advance st;
  let first = parse_term st env in
  let first = if negated then Term.neg first else first in
  let rec loop acc =
    match peek st with
    | Lexer.PLUS ->
        advance st;
        loop (Term.add acc (parse_term st env))
    | Lexer.MINUS ->
        advance st;
        loop (Term.sub acc (parse_term st env))
    | _ -> acc
  in
  loop first

and parse_term st env =
  let first = parse_factor st env in
  let rec loop acc =
    match peek st with
    | Lexer.STAR ->
        advance st;
        let rhs = parse_factor st env in
        if Term.is_const acc then loop (Term.scale (Term.constant acc) rhs)
        else if Term.is_const rhs then loop (Term.scale (Term.constant rhs) acc)
        else raise (Parse_error "non-linear product of two variables")
    | Lexer.SLASH ->
        advance st;
        let rhs = parse_factor st env in
        if not (Term.is_const rhs) then raise (Parse_error "division by a variable")
        else if Rational.is_zero (Term.constant rhs) then raise (Parse_error "division by zero")
        else loop (Term.scale (Rational.inv (Term.constant rhs)) acc)
    | _ -> acc
  in
  loop first

and parse_factor st env =
  match peek st with
  | Lexer.NUM q ->
      advance st;
      Term.const q
  | Lexer.IDENT name ->
      advance st;
      Term.var (lookup env name)
  | Lexer.MINUS ->
      advance st;
      Term.neg (parse_factor st env)
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st env in
      expect st Lexer.RPAREN;
      e
  | _ -> fail_at st "expected an arithmetic factor"

(* --- formulas --------------------------------------------------------- *)

let relop_of_token = function
  | Lexer.LE -> Some `Le
  | Lexer.LT -> Some `Lt
  | Lexer.GE -> Some `Ge
  | Lexer.GT -> Some `Gt
  | Lexer.EQ -> Some `Eq
  | Lexer.NEQ -> Some `Neq
  | _ -> None

let apply_relop op lhs rhs =
  match op with
  | `Le -> Formula.atom (Atom.le lhs rhs)
  | `Lt -> Formula.atom (Atom.lt lhs rhs)
  | `Ge -> Formula.atom (Atom.ge lhs rhs)
  | `Gt -> Formula.atom (Atom.gt lhs rhs)
  | `Eq -> Formula.atom (Atom.eq lhs rhs)
  | `Neq -> Formula.neg (Formula.atom (Atom.eq lhs rhs))

let rec parse_formula st env =
  match peek st with
  | Lexer.EXISTS | Lexer.FORALL ->
      let quantifier = peek st in
      advance st;
      let rec names acc =
        match peek st with
        | Lexer.IDENT n ->
            advance st;
            if peek st = Lexer.COMMA then advance st;
            names (n :: acc)
        | _ -> List.rev acc
      in
      let ns = names [] in
      if ns = [] then fail_at st "expected variable names after quantifier";
      expect st Lexer.DOT;
      let indices = List.map (fun _ -> let i = st.next_var in st.next_var <- st.next_var + 1; i) ns in
      let env' = List.rev_append (List.combine ns indices) env in
      let body = parse_formula st env' in
      if quantifier = Lexer.EXISTS then Formula.exists indices body
      else Formula.forall indices body
  | _ -> parse_implication st env

and parse_implication st env =
  let lhs = parse_disjunction st env in
  if peek st = Lexer.IMPLIES then begin
    advance st;
    let rhs = parse_formula st env in
    Formula.implies lhs rhs
  end
  else lhs

and parse_disjunction st env =
  let first = parse_conjunction st env in
  let rec loop acc =
    if peek st = Lexer.OR then begin
      advance st;
      loop (parse_conjunction st env :: acc)
    end
    else Formula.disj (List.rev acc)
  in
  loop [ first ]

and parse_conjunction st env =
  let first = parse_unary st env in
  let rec loop acc =
    if peek st = Lexer.AND then begin
      advance st;
      loop (parse_unary st env :: acc)
    end
    else Formula.conj (List.rev acc)
  in
  loop [ first ]

and parse_unary st env =
  match peek st with
  | Lexer.NOT ->
      advance st;
      Formula.neg (parse_unary st env)
  | Lexer.TRUE ->
      advance st;
      Formula.tru
  | Lexer.FALSE ->
      advance st;
      Formula.fls
  | Lexer.EXISTS | Lexer.FORALL -> parse_formula st env
  | Lexer.LPAREN ->
      (* Could be a parenthesized formula or a parenthesized expression
         starting an atom: backtrack on failure. *)
      let saved = st.tokens in
      (try
         advance st;
         let f = parse_formula st env in
         expect st Lexer.RPAREN;
         (* If a relational operator follows, this was an expression. *)
         match relop_of_token (peek st) with
         | Some _ ->
             st.tokens <- saved;
             parse_atom st env
         | None -> f
       with Parse_error _ ->
         st.tokens <- saved;
         parse_atom st env)
  | _ -> parse_atom st env

and parse_atom st env =
  let lhs = parse_expr st env in
  match relop_of_token (peek st) with
  | None -> fail_at st "expected a comparison operator"
  | Some _ ->
      (* Chains: e1 op e2 op e3 ... become conjunctions of adjacent pairs. *)
      let rec chain acc lhs =
        match relop_of_token (peek st) with
        | None -> Formula.conj (List.rev acc)
        | Some op ->
            advance st;
            let rhs = parse_expr st env in
            chain (apply_relop op lhs rhs :: acc) rhs
      in
      chain [] lhs

let parse ~vars input =
  let tokens = Lexer.tokenize input in
  let env = List.mapi (fun i n -> (n, i)) vars in
  let st = { tokens; next_var = List.length vars } in
  let f = parse_formula st (List.rev env) in
  expect st Lexer.EOF;
  f

let parse_relation ~vars input =
  let f = parse ~vars input in
  if not (Formula.is_quantifier_free f) then
    raise (Parse_error "parse_relation: formula has quantifiers (eliminate them first)");
  Relation.of_formula ~dim:(List.length vars) f
