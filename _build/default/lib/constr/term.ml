module IMap = Map.Make (Int)

type t = { coeffs : Rational.t IMap.t; constant : Rational.t }

let normalize coeffs = IMap.filter (fun _ c -> not (Rational.is_zero c)) coeffs

let zero = { coeffs = IMap.empty; constant = Rational.zero }
let const c = { coeffs = IMap.empty; constant = c }
let of_int i = const (Rational.of_int i)
let var i = { coeffs = IMap.singleton i Rational.one; constant = Rational.zero }

let monomial c i =
  if Rational.is_zero c then zero else { coeffs = IMap.singleton i c; constant = Rational.zero }

let make coeffs constant =
  let m =
    List.fold_left
      (fun acc (i, c) ->
        IMap.update i (function None -> Some c | Some c' -> Some (Rational.add c c')) acc)
      IMap.empty coeffs
  in
  { coeffs = normalize m; constant }

let add a b =
  {
    coeffs =
      IMap.union
        (fun _ x y ->
          let s = Rational.add x y in
          if Rational.is_zero s then None else Some s)
        a.coeffs b.coeffs;
    constant = Rational.add a.constant b.constant;
  }

let scale s t =
  if Rational.is_zero s then zero
  else { coeffs = IMap.map (Rational.mul s) t.coeffs; constant = Rational.mul s t.constant }

let neg t = scale Rational.minus_one t
let sub a b = add a (neg b)

let coeff t i = match IMap.find_opt i t.coeffs with Some c -> c | None -> Rational.zero
let constant t = t.constant
let coeffs t = IMap.bindings t.coeffs
let vars t = List.map fst (coeffs t)
let max_var t = match IMap.max_binding_opt t.coeffs with Some (i, _) -> i | None -> -1
let is_const t = IMap.is_empty t.coeffs

let eval t x =
  IMap.fold (fun i c acc -> Rational.add acc (Rational.mul c x.(i))) t.coeffs t.constant

let eval_float t x =
  IMap.fold
    (fun i c acc -> acc +. (Rational.to_float c *. x.(i)))
    t.coeffs
    (Rational.to_float t.constant)

let subst t i u =
  match IMap.find_opt i t.coeffs with
  | None -> t
  | Some c ->
      let rest = { t with coeffs = IMap.remove i t.coeffs } in
      add rest (scale c u)

let rename t f =
  (* Non-injective renamings merge coefficients (x + y under x,y ↦ z
     becomes 2z), so substituting repeated arguments stays sound. *)
  let coeffs =
    IMap.fold
      (fun i c acc ->
        IMap.update (f i)
          (function
            | None -> Some c
            | Some c' ->
                let s = Rational.add c c' in
                if Rational.is_zero s then None else Some s)
          acc)
      t.coeffs IMap.empty
  in
  { t with coeffs }

let compare a b =
  let c = IMap.compare Rational.compare a.coeffs b.coeffs in
  if c <> 0 then c else Rational.compare a.constant b.constant

let equal a b = compare a b = 0

let to_float_row d t =
  if max_var t >= d then invalid_arg "Term.to_float_row: variable out of range";
  let w = Vec.create d in
  IMap.iter (fun i c -> w.(i) <- Rational.to_float c) t.coeffs;
  (w, Rational.to_float t.constant)

let pp_named name fmt t =
  let parts = coeffs t in
  if parts = [] then Rational.pp fmt t.constant
  else begin
    let first = ref true in
    let print_signed q text =
      let s = Rational.sign q in
      if !first then begin
        if s < 0 then Format.pp_print_string fmt "-";
        first := false
      end
      else Format.pp_print_string fmt (if s < 0 then " - " else " + ");
      text (Rational.abs q)
    in
    List.iter
      (fun (i, c) ->
        print_signed c (fun a ->
            if Rational.equal a Rational.one then Format.pp_print_string fmt (name i)
            else Format.fprintf fmt "%a*%s" Rational.pp a (name i)))
      parts;
    if not (Rational.is_zero t.constant) then
      print_signed t.constant (fun a -> Rational.pp fmt a)
  end

let default_name i = Printf.sprintf "x%d" i
let pp fmt t = pp_named default_name fmt t
