(** Tokenizer for the FO+LIN text syntax (see {!Parser}). *)

type token =
  | IDENT of string
  | NUM of Rational.t
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | LPAREN
  | RPAREN
  | DOT
  | COMMA
  | LE
  | LT
  | GE
  | GT
  | EQ
  | NEQ
  | AND
  | OR
  | NOT
  | IMPLIES
  | EXISTS
  | FORALL
  | TRUE
  | FALSE
  | EOF

exception Lex_error of string * int
(** Message and character offset. *)

val tokenize : string -> token list
(** @raise Lex_error on an unrecognized character. *)

val pp_token : Format.formatter -> token -> unit
