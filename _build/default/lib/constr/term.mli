(** Linear terms [Σ cᵢ·xᵢ + c] over the structure R_lin = ⟨R,+,−,<,0,1⟩.

    Variables are integers; coefficients are exact rationals.  Terms are
    kept sparse and normalized (no explicit zero coefficients), so
    structural equality coincides with semantic equality. *)

type t

val zero : t
val const : Rational.t -> t
val of_int : int -> t
val var : int -> t
(** The term [x_i] with coefficient 1. *)

val monomial : Rational.t -> int -> t
(** [monomial c i] is [c·x_i]. *)

val make : (int * Rational.t) list -> Rational.t -> t
(** [make coeffs const]; repeated variables are summed. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Rational.t -> t -> t

val coeff : t -> int -> Rational.t
val constant : t -> Rational.t
val coeffs : t -> (int * Rational.t) list
(** Sorted by variable index; zero coefficients omitted. *)

val vars : t -> int list
(** Variables with non-zero coefficient, ascending. *)

val max_var : t -> int
(** Largest variable index, or [-1] for constant terms. *)

val is_const : t -> bool

val eval : t -> Rational.t array -> Rational.t
(** Value at an exact point; the array must cover all variables. *)

val eval_float : t -> Vec.t -> float
(** Value at a float point (coefficients converted on the fly). *)

val subst : t -> int -> t -> t
(** [subst t i u] replaces [x_i] by the term [u]. *)

val rename : t -> (int -> int) -> t
(** Apply a variable renaming.  Non-injective renamings merge
    coefficients: [x + y] under [x,y ↦ z] becomes [2z]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_float_row : int -> t -> Vec.t * float
(** [to_float_row d t = (w, c)] with [t(x) = w·x + c] for [x] of
    dimension [d].  Variables [>= d] must not occur. *)

val pp : Format.formatter -> t -> unit
val pp_named : (int -> string) -> Format.formatter -> t -> unit
