(** First-order formulas over R_lin (FO+LIN).

    The constraint-database query language: boolean combinations and
    quantification over atomic linear constraints.  Quantifier-free
    formulas in disjunctive normal form are the "generalized relations"
    of the paper; {!Dnf} performs that conversion and {!Scdb_qe} removes
    quantifiers. *)

type t =
  | True
  | False
  | Atom of Atom.t
  | And of t list
  | Or of t list
  | Not of t
  | Exists of int list * t
  | Forall of int list * t

(** {1 Smart constructors} (perform cheap simplifications) *)

val tru : t
val fls : t
val atom : Atom.t -> t
val conj : t list -> t
val disj : t list -> t
val neg : t -> t
val exists : int list -> t -> t
val forall : int list -> t -> t
val implies : t -> t -> t

(** {1 Inspection} *)

val free_vars : t -> int list
(** Ascending, without duplicates. *)

val max_var : t -> int
(** Largest variable occurring anywhere (free or bound), or [-1]. *)

val is_quantifier_free : t -> bool

val size : t -> int
(** Number of syntax nodes — the "description size" of the paper. *)

val atoms : t -> Atom.t list
(** All atoms, in syntactic order (with duplicates). *)

(** {1 Semantics} *)

val eval : t -> Rational.t array -> bool
(** Exact evaluation of a {e quantifier-free} formula.
    @raise Invalid_argument on quantifiers. *)

val eval_float : ?slack:float -> t -> Vec.t -> bool
(** Float evaluation of a quantifier-free formula. *)

(** {1 Transformations} *)

val nnf : t -> t
(** Negation normal form; [Not] disappears (pushed into atoms),
    [Forall] becomes [¬∃¬]. The result has only [True], [False],
    [Atom], [And], [Or], [Exists]. *)

val nnf_deep : t -> t
(** Quantifier-aware negation normal form: like {!nnf} but using the
    quantifier dualities [¬∃ = ∀¬] and [¬∀ = ∃¬], so [Not] disappears
    entirely and both quantifiers may appear. *)

type quantifier_block = E of int list | A of int list

val prenex : t -> quantifier_block list * t
(** Prenex normal form: a quantifier prefix (outermost first) and a
    quantifier-free matrix.  Bound variables are renamed to fresh
    indices above {!max_var}, so no capture can occur.  The result is
    logically equivalent to the input. *)

val of_prenex : quantifier_block list * t -> t

val subst : t -> int -> Term.t -> t
val rename : t -> (int -> int) -> t

val map_atoms : (Atom.t -> t) -> t -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val pp_named : (int -> string) -> Format.formatter -> t -> unit
