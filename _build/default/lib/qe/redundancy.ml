module Es = Scdb_lp.Exact_simplex

let tuple_dim tuple = 1 + List.fold_left (fun acc a -> max acc (Atom.max_var a)) (-1) tuple

(* Row [w] and rhs [r] with the atom's closure equivalent to [w·x <= r]. *)
let atom_rows dim a =
  let term = (a : Atom.t).term in
  let row = Array.make dim Rational.zero in
  List.iter (fun (i, c) -> row.(i) <- c) (Term.coeffs term);
  let rhs = Rational.neg (Term.constant term) in
  match a.op with
  | Atom.Le | Atom.Lt -> [ (row, rhs) ]
  | Atom.Eq -> [ (row, rhs); (Array.map Rational.neg row, Rational.neg rhs) ]

let tuple_to_system tuple =
  let dim = tuple_dim tuple in
  let rows = List.concat_map (atom_rows dim) tuple in
  (Array.of_list (List.map fst rows), Array.of_list (List.map snd rows))

let is_empty tuple =
  let a, b = tuple_to_system tuple in
  not (Es.is_feasible ~a ~b)

let is_full_dim_nonempty tuple ~dim =
  if dim = 0 then not (is_empty tuple)
  else begin
    (* Maximize r subject to  w_i·x + ||w_i||₁ r <= b_i, giving an inscribed
       L∞-style ball; r > 0 iff the open set is non-empty.  The L1 norm of
       the row keeps the computation rational. *)
    let a, b = tuple_to_system tuple in
    let m = Array.length a in
    let rows =
      Array.init m (fun i ->
          let norm1 = Array.fold_left (fun acc c -> Rational.add acc (Rational.abs c)) Rational.zero a.(i) in
          Array.init (dim + 1) (fun j -> if j < dim then a.(i).(j) else norm1))
    in
    let c = Array.init (dim + 1) (fun j -> if j < dim then Rational.zero else Rational.one) in
    match Es.maximize ~a:rows ~b ~c with
    | Es.Infeasible -> false
    | Es.Unbounded -> true
    | Es.Optimal { value; _ } -> Rational.sign value > 0
  end

let implies_atom tuple a =
  let dim = max (tuple_dim tuple) (1 + Atom.max_var a) in
  let rows = List.concat_map (atom_rows dim) tuple in
  let sys_a = Array.of_list (List.map fst rows) in
  let sys_b = Array.of_list (List.map snd rows) in
  List.for_all (fun (row, rhs) -> Es.implied ~a:sys_a ~b:sys_b ~row ~rhs) (atom_rows dim a)

let prune tuple =
  (* One pass: keep an atom only if the others do not already imply it.
     Scanning against the currently-kept set plus the not-yet-processed
     tail keeps the result order-independent enough and never weakens
     the system. *)
  let rec go kept = function
    | [] -> List.rev kept
    | a :: rest ->
        let others = List.rev_append kept rest in
        if others <> [] && implies_atom others a then go kept rest else go (a :: kept) rest
  in
  go [] tuple
