lib/qe/redundancy.ml: Array Atom List Rational Scdb_lp Term
