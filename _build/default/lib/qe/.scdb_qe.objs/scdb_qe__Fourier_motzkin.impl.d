lib/qe/fourier_motzkin.ml: Atom Dnf Formula Fun Hashtbl List Rational Redundancy Relation Term
