lib/qe/redundancy.mli: Atom Dnf Rational
