lib/qe/fourier_motzkin.mli: Dnf Formula Relation
