(** Fourier–Motzkin quantifier elimination over R_lin.

    The classical symbolic projection algorithm, with doubly-exponential
    worst case in the number of eliminated variables — the baseline the
    paper's sampling reconstruction (its Algorithm 3) is compared
    against.  Exact rational arithmetic throughout. *)

type stats = { constraints_generated : int; max_tuple_size : int }
(** Work counters accumulated by an elimination run. *)

val eliminate_var_tuple : ?prune:bool -> int -> Dnf.tuple -> Dnf.tuple
(** Eliminate one existentially-quantified variable from a conjunction.
    Equality atoms with the variable are used as substitutions;
    otherwise lower/upper bound pairs are combined.  [prune] (default
    true) runs LP redundancy removal on the result. *)

val eliminate_vars_tuple : ?prune:bool -> int list -> Dnf.tuple -> Dnf.tuple

val eliminate_vars_tuple_stats : ?prune:bool -> int list -> Dnf.tuple -> Dnf.tuple * stats

val eliminate : ?prune:bool -> Formula.t -> Formula.t
(** Full quantifier elimination: the result is quantifier-free and
    equivalent.  Universal quantifiers are handled through negation. *)

val project : ?prune:bool -> Relation.t -> keep:int list -> Relation.t
(** Project a generalized relation onto the listed coordinates (in the
    given order): eliminate all others and rename the kept variables to
    [0 .. e-1].  Empty tuples are dropped (exact LP test). *)
