(** LP-based simplification of generalized tuples.

    Fourier–Motzkin elimination squares the number of constraints at
    every step; pruning implied constraints with an exact LP after each
    round is what keeps the symbolic baseline usable at all. *)

val tuple_to_system : Dnf.tuple -> Rational.t array array * Rational.t array
(** [(A, b)] with the tuple equivalent (up to strictness) to [A x <= b].
    Equality atoms become two opposite inequalities.  Variables are
    [0 .. max_var]. *)

val is_empty : Dnf.tuple -> bool
(** Exact emptiness of the closure of the tuple (strict constraints
    relaxed).  A closed-empty tuple is genuinely empty. *)

val is_full_dim_nonempty : Dnf.tuple -> dim:int -> bool
(** True iff the tuple contains an open ball, decided exactly by a
    Chebyshev-style LP: the strict/non-strict distinction is then
    irrelevant for volume purposes. *)

val prune : Dnf.tuple -> Dnf.tuple
(** Remove atoms implied by the rest (exact LP test).  The resulting
    tuple defines the same set up to a measure-zero boundary; on
    full-dimensional tuples the volume is unchanged. *)

val implies_atom : Dnf.tuple -> Atom.t -> bool
(** Whether every point of the (closed) tuple satisfies the (closed)
    atom. *)
