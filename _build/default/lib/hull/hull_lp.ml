module Rng = Scdb_rng.Rng

type t = {
  pts : Vec.t array;
  dim : int;
  polygon : Vec.t list option; (* 2-D fast path: hull vertices, O(n) membership *)
}

let of_points pts =
  if Array.length pts = 0 then invalid_arg "Hull_lp.of_points: no points";
  let dim = Vec.dim pts.(0) in
  Array.iter (fun p -> if Vec.dim p <> dim then invalid_arg "Hull_lp.of_points: mixed dimensions") pts;
  let polygon = if dim = 2 then Some (Hull2d.hull (Array.to_list pts)) else None in
  { pts = Array.map Vec.copy pts; dim; polygon }

let dim t = t.dim
let num_points t = Array.length t.pts
let points t = Array.map Vec.copy t.pts

let mem t x =
  match t.polygon with
  | Some vs -> Hull2d.mem vs x
  | None -> Scdb_lp.Lp.in_hull ~points:t.pts x

let bounding_box t =
  let lo = Vec.init t.dim (fun i -> Array.fold_left (fun acc p -> Float.min acc p.(i)) infinity t.pts) in
  let hi = Vec.init t.dim (fun i -> Array.fold_left (fun acc p -> Float.max acc p.(i)) neg_infinity t.pts) in
  (lo, hi)

let box_volume lo hi =
  let v = ref 1.0 in
  for i = 0 to Vec.dim lo - 1 do
    v := !v *. Float.max 0.0 (hi.(i) -. lo.(i))
  done;
  !v

let volume_mc rng ?(samples = 20_000) t =
  let lo, hi = bounding_box t in
  let vol_box = box_volume lo hi in
  if vol_box = 0.0 then 0.0
  else begin
    let hits = ref 0 in
    for _ = 1 to samples do
      if mem t (Rng.in_box rng lo hi) then incr hits
    done;
    vol_box *. float_of_int !hits /. float_of_int samples
  end

let symmetric_difference_mc rng ?(samples = 20_000) t other ~lo ~hi =
  let vol_box = box_volume lo hi in
  if vol_box = 0.0 then 0.0
  else begin
    let hits = ref 0 in
    for _ = 1 to samples do
      let x = Rng.in_box rng lo hi in
      if mem t x <> other x then incr hits
    done;
    vol_box *. float_of_int !hits /. float_of_int samples
  end
