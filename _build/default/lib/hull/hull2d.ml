let cross o a b = ((a.(0) -. o.(0)) *. (b.(1) -. o.(1))) -. ((a.(1) -. o.(1)) *. (b.(0) -. o.(0)))

let hull points =
  List.iter (fun p -> if Vec.dim p <> 2 then invalid_arg "Hull2d.hull: not 2-D") points;
  let sorted =
    List.sort_uniq
      (fun a b ->
        let c = Float.compare a.(0) b.(0) in
        if c <> 0 then c else Float.compare a.(1) b.(1))
      points
  in
  match sorted with
  | [] | [ _ ] | [ _; _ ] -> sorted
  | _ ->
      let build pts =
        List.fold_left
          (fun acc p ->
            let rec pop = function
              | b :: a :: rest when cross a b p <= 1e-12 -> pop (a :: rest)
              | acc -> acc
            in
            p :: pop acc)
          [] pts
      in
      let lower = build sorted in
      let upper = build (List.rev sorted) in
      (* Each chain ends with its last point duplicated at the start of
         the other; drop the duplicates and orient counter-clockwise. *)
      let strip = function [] -> [] | _ :: rest -> rest in
      List.rev_append (strip lower) (List.rev (strip upper))

let shoelace vs =
  match vs with
  | [] | [ _ ] | [ _; _ ] -> 0.0
  | first :: _ ->
      let rec go acc = function
        | [ last ] -> acc +. ((last.(0) *. first.(1)) -. (first.(0) *. last.(1)))
        | v :: (w :: _ as rest) -> go (acc +. ((v.(0) *. w.(1)) -. (w.(0) *. v.(1)))) rest
        | [] -> acc
      in
      Float.abs (go 0.0 vs) /. 2.0

let area points = shoelace (hull points)

let edges vs =
  match vs with
  | [] | [ _ ] -> []
  | first :: _ ->
      let rec go acc = function
        | [ last ] -> (last, first) :: acc
        | v :: (w :: _ as rest) -> go ((v, w) :: acc) rest
        | [] -> acc
      in
      go [] vs

let to_tuple points =
  match hull points with
  | [] | [ _ ] | [ _; _ ] -> None
  | vs ->
      (* CCW orientation: the interior is to the left of each directed
         edge (v,w), i.e. cross(v,w,x) >= 0, rewritten as an atom. *)
      let atom (v, w) =
        let dx = w.(0) -. v.(0) and dy = w.(1) -. v.(1) in
        (* -dy·x + dx·y >= -dy·v0 + dx·v1 *)
        let q = Rational.of_float in
        let lhs = Term.add (Term.monomial (q (-.dy)) 0) (Term.monomial (q dx) 1) in
        let rhs = Term.const (q ((-.dy *. v.(0)) +. (dx *. v.(1)))) in
        Atom.ge lhs rhs
      in
      Some (List.map atom (edges vs))

let to_relation points = Option.map (fun t -> Relation.make ~dim:2 [ t ]) (to_tuple points)

let mem points x =
  match hull points with
  | [] -> false
  | [ p ] -> Vec.dist p x < 1e-9
  | [ p; q ] ->
      (* Degenerate segment: collinear and within the bounding box. *)
      Float.abs (cross p q x) < 1e-7
      && x.(0) >= Float.min p.(0) q.(0) -. 1e-9
      && x.(0) <= Float.max p.(0) q.(0) +. 1e-9
      && x.(1) >= Float.min p.(1) q.(1) -. 1e-9
      && x.(1) <= Float.max p.(1) q.(1) +. 1e-9
  | vs -> List.for_all (fun (v, w) -> cross v w x >= -1e-9) (edges vs)
