(** Planar convex hulls (Andrew's monotone chain, O(n log n)).

    The reconstruction algorithms produce explicit polygons in the
    plane; higher dimensions stay implicit through {!Hull_lp}. *)

val hull : Vec.t list -> Vec.t list
(** Hull vertices in counter-clockwise order, collinear points removed.
    Returns the input (deduplicated) when fewer than 3 distinct
    points. @raise Invalid_argument on non-2-D input. *)

val area : Vec.t list -> float
(** Shoelace area of [hull points]. *)

val to_tuple : Vec.t list -> Dnf.tuple option
(** The hull polygon as a generalized tuple (one [≤] atom per edge);
    [None] when the hull is degenerate (fewer than 3 vertices). *)

val to_relation : Vec.t list -> Relation.t option
(** 2-D relation of the hull polygon. *)

val mem : Vec.t list -> Vec.t -> bool
(** Is the point inside the hull of the given points (boundary
    included)?  O(n) half-plane checks against the hull edges. *)
