(** Implicit convex hulls in arbitrary dimension.

    Computing facets of a d-dimensional hull costs O(N^{d/2}) — the
    exponential step the paper's Proposition 4.3 confines to the low
    output dimension.  For everything else the hull stays implicit:
    membership is an LP feasibility question, and volumes are Monte
    Carlo estimates against that membership oracle. *)

type t

val of_points : Vec.t array -> t
(** @raise Invalid_argument on an empty array or mixed dimensions. *)

val dim : t -> int
val num_points : t -> int
val points : t -> Vec.t array

val mem : t -> Vec.t -> bool
(** LP feasibility: is the point a convex combination of the inputs? *)

val bounding_box : t -> Vec.t * Vec.t

val volume_mc : Scdb_rng.Rng.t -> ?samples:int -> t -> float
(** Monte Carlo volume from bounding-box sampling (additive error wrt
    the box volume; default 20_000 samples). *)

val symmetric_difference_mc :
  Scdb_rng.Rng.t -> ?samples:int -> t -> (Vec.t -> bool) -> lo:Vec.t -> hi:Vec.t -> float
(** MC volume of [hull Δ other] inside the box [[lo,hi]]. *)
