lib/hull/hull_lp.ml: Array Float Hull2d Scdb_lp Scdb_rng Vec
