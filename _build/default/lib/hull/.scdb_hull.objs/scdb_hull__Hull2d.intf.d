lib/hull/hull2d.mli: Dnf Relation Vec
