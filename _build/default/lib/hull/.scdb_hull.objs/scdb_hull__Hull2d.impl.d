lib/hull/hull2d.ml: Array Atom Float List Option Rational Relation Term Vec
