lib/hull/hull_lp.mli: Scdb_rng Vec
