type t =
  | Rel of string * int list
  | Constr of Atom.t
  | And of t list
  | Or of t list
  | Not of t
  | Exists of int list * t

let rel name args = Rel (name, args)
let constr a = Constr a

let conj = function [ q ] -> q | qs -> And qs
let disj = function [ q ] -> q | qs -> Or qs
let neg = function Not q -> q | q -> Not q
let exists vs q = match vs with [] -> q | vs -> (match q with Exists (ws, r) -> Exists (vs @ ws, r) | _ -> Exists (vs, q))

let relation_names q =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Rel (name, _) ->
        if not (Hashtbl.mem seen name) then begin
          Hashtbl.add seen name ();
          acc := name :: !acc
        end
    | Constr _ -> ()
    | And qs | Or qs -> List.iter go qs
    | Not q | Exists (_, q) -> go q
  in
  go q;
  List.rev !acc

module ISet = Set.Make (Int)

let rec free_set = function
  | Rel (_, args) -> ISet.of_list args
  | Constr a -> ISet.of_list (Atom.vars a)
  | And qs | Or qs -> List.fold_left (fun acc q -> ISet.union acc (free_set q)) ISet.empty qs
  | Not q -> free_set q
  | Exists (vs, q) -> ISet.diff (free_set q) (ISet.of_list vs)

let free_vars q = ISet.elements (free_set q)

let rec max_var = function
  | Rel (_, args) -> List.fold_left Stdlib.max (-1) args
  | Constr a -> Atom.max_var a
  | And qs | Or qs -> List.fold_left (fun acc q -> Stdlib.max acc (max_var q)) (-1) qs
  | Not q -> max_var q
  | Exists (vs, q) -> List.fold_left Stdlib.max (max_var q) vs

let rec is_positive_existential = function
  | Rel _ | Constr _ -> true
  | And qs | Or qs -> List.for_all is_positive_existential qs
  | Not _ -> false
  | Exists (_, q) -> is_positive_existential q

let well_formed schema q =
  let rec go = function
    | Rel (name, args) -> (
        match Schema.arity schema name with
        | None -> Error (Printf.sprintf "unknown relation %s" name)
        | Some a when a <> List.length args ->
            Error (Printf.sprintf "%s expects %d arguments, got %d" name a (List.length args))
        | Some _ -> Ok ())
    | Constr _ -> Ok ()
    | And qs | Or qs ->
        List.fold_left (fun acc q -> match acc with Error _ -> acc | Ok () -> go q) (Ok ()) qs
    | Not q | Exists (_, q) -> go q
  in
  go q

(* ---------------------------------------------------------------- *)
(* Parser: the Scdb_constr grammar plus relation atoms Name(x,y).    *)
(* ---------------------------------------------------------------- *)

open Scdb_constr

exception Err = Parser.Parse_error

type pstate = { mutable tokens : Lexer.token list; mutable next_var : int; schema : Schema.t }

let peek st = match st.tokens with [] -> Lexer.EOF | t :: _ -> t
let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st token =
  if peek st = token then advance st
  else raise (Err (Format.asprintf "expected %a but found %a" Lexer.pp_token token Lexer.pp_token (peek st)))

let lookup env name =
  match List.assoc_opt name env with
  | Some i -> i
  | None -> raise (Err (Printf.sprintf "unknown variable %S" name))

let is_relation_name name = name <> "" && name.[0] >= 'A' && name.[0] <= 'Z'

(* Linear expressions (same grammar as Scdb_constr.Parser). *)
let rec parse_expr st env =
  let negated = peek st = Lexer.MINUS in
  if negated then advance st;
  let first = parse_term st env in
  let first = if negated then Term.neg first else first in
  let rec loop acc =
    match peek st with
    | Lexer.PLUS ->
        advance st;
        loop (Term.add acc (parse_term st env))
    | Lexer.MINUS ->
        advance st;
        loop (Term.sub acc (parse_term st env))
    | _ -> acc
  in
  loop first

and parse_term st env =
  let first = parse_factor st env in
  let rec loop acc =
    match peek st with
    | Lexer.STAR ->
        advance st;
        let rhs = parse_factor st env in
        if Term.is_const acc then loop (Term.scale (Term.constant acc) rhs)
        else if Term.is_const rhs then loop (Term.scale (Term.constant rhs) acc)
        else raise (Err "non-linear product of two variables")
    | Lexer.SLASH ->
        advance st;
        let rhs = parse_factor st env in
        if not (Term.is_const rhs) then raise (Err "division by a variable")
        else if Rational.is_zero (Term.constant rhs) then raise (Err "division by zero")
        else loop (Term.scale (Rational.inv (Term.constant rhs)) acc)
    | _ -> acc
  in
  loop first

and parse_factor st env =
  match peek st with
  | Lexer.NUM q ->
      advance st;
      Term.const q
  | Lexer.IDENT name when not (is_relation_name name) ->
      advance st;
      Term.var (lookup env name)
  | Lexer.MINUS ->
      advance st;
      Term.neg (parse_factor st env)
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st env in
      expect st Lexer.RPAREN;
      e
  | t -> raise (Err (Format.asprintf "expected an arithmetic factor, found %a" Lexer.pp_token t))

let relop_of_token = function
  | Lexer.LE -> Some `Le
  | Lexer.LT -> Some `Lt
  | Lexer.GE -> Some `Ge
  | Lexer.GT -> Some `Gt
  | Lexer.EQ -> Some `Eq
  | _ -> None

let apply_relop op lhs rhs =
  match op with
  | `Le -> Constr (Atom.le lhs rhs)
  | `Lt -> Constr (Atom.lt lhs rhs)
  | `Ge -> Constr (Atom.ge lhs rhs)
  | `Gt -> Constr (Atom.gt lhs rhs)
  | `Eq -> Constr (Atom.eq lhs rhs)

let rec parse_query st env =
  match peek st with
  | Lexer.EXISTS ->
      advance st;
      let rec names acc =
        match peek st with
        | Lexer.IDENT n when not (is_relation_name n) ->
            advance st;
            if peek st = Lexer.COMMA then advance st;
            names (n :: acc)
        | _ -> List.rev acc
      in
      let ns = names [] in
      if ns = [] then raise (Err "expected variable names after 'exists'");
      expect st Lexer.DOT;
      let indices =
        List.map
          (fun _ ->
            let i = st.next_var in
            st.next_var <- st.next_var + 1;
            i)
          ns
      in
      let env' = List.rev_append (List.combine ns indices) env in
      exists indices (parse_query st env')
  | _ -> parse_disjunction st env

and parse_disjunction st env =
  let first = parse_conjunction st env in
  let rec loop acc =
    if peek st = Lexer.OR then begin
      advance st;
      loop (parse_conjunction st env :: acc)
    end
    else match List.rev acc with [ q ] -> q | qs -> Or qs
  in
  loop [ first ]

and parse_conjunction st env =
  let first = parse_unary st env in
  let rec loop acc =
    if peek st = Lexer.AND then begin
      advance st;
      loop (parse_unary st env :: acc)
    end
    else match List.rev acc with [ q ] -> q | qs -> And qs
  in
  loop [ first ]

and parse_unary st env =
  match peek st with
  | Lexer.NOT ->
      advance st;
      neg (parse_unary st env)
  | Lexer.EXISTS -> parse_query st env
  | Lexer.IDENT name when is_relation_name name ->
      advance st;
      expect st Lexer.LPAREN;
      let rec args acc =
        match peek st with
        | Lexer.IDENT n when not (is_relation_name n) ->
            advance st;
            let acc = lookup env n :: acc in
            if peek st = Lexer.COMMA then begin
              advance st;
              args acc
            end
            else List.rev acc
        | t -> raise (Err (Format.asprintf "expected a variable name in %s(...), found %a" name Lexer.pp_token t))
      in
      let arguments = args [] in
      expect st Lexer.RPAREN;
      (match Schema.arity st.schema name with
      | None -> raise (Err (Printf.sprintf "unknown relation %s" name))
      | Some a when a <> List.length arguments ->
          raise (Err (Printf.sprintf "%s expects %d arguments, got %d" name a (List.length arguments)))
      | Some _ -> ());
      Rel (name, arguments)
  | Lexer.LPAREN ->
      let saved = st.tokens in
      (try
         advance st;
         let q = parse_query st env in
         expect st Lexer.RPAREN;
         match relop_of_token (peek st) with
         | Some _ ->
             st.tokens <- saved;
             parse_atom st env
         | None -> q
       with Err _ ->
         st.tokens <- saved;
         parse_atom st env)
  | _ -> parse_atom st env

and parse_atom st env =
  let lhs = parse_expr st env in
  match relop_of_token (peek st) with
  | None -> raise (Err "expected a comparison operator")
  | Some _ ->
      let rec chain acc lhs =
        match relop_of_token (peek st) with
        | None -> conj (List.rev acc)
        | Some op ->
            advance st;
            let rhs = parse_expr st env in
            chain (apply_relop op lhs rhs :: acc) rhs
      in
      chain [] lhs

let parse ~schema ~vars input =
  let tokens = Lexer.tokenize input in
  let env = List.mapi (fun i n -> (n, i)) vars in
  let st = { tokens; next_var = List.length vars; schema } in
  let q = parse_query st (List.rev env) in
  expect st Lexer.EOF;
  q

let rec pp fmt = function
  | Rel (name, args) ->
      Format.fprintf fmt "%s(%s)" name (String.concat ", " (List.map (Printf.sprintf "x%d") args))
  | Constr a -> Atom.pp fmt a
  | And qs ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " /\\ ") pp)
        qs
  | Or qs ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " \\/ ") pp)
        qs
  | Not q -> Format.fprintf fmt "~%a" pp q
  | Exists (vs, q) ->
      Format.fprintf fmt "exists %s. %a" (String.concat " " (List.map (Printf.sprintf "x%d") vs)) pp q
