(** SVG rendering of planar relations, sample clouds and hulls.

    A constraint database about maps deserves pictures: this renders
    2-D generalized relations (per-tuple polygons), point clouds from
    the generators, and reconstruction hulls into a standalone SVG
    document — the visual analogue of the paper's Fig. 1. *)

type style = { fill : string; stroke : string; opacity : float }

val default_style : style
(** Grey fill, black stroke. *)

type element

val relation : ?style:style -> Relation.t -> element
(** One polygon per full-dimensional tuple (2-D relations only;
    @raise Invalid_argument otherwise). *)

val points : ?colour:string -> ?radius:float -> Vec.t list -> element

val polygon : ?style:style -> Vec.t list -> element
(** Explicit polygon (e.g. a reconstruction hull), given its vertices
    in order. *)

val render :
  width:int -> height:int -> lo:Vec.t -> hi:Vec.t -> element list -> string
(** SVG document; world coordinates [[lo,hi]] are mapped to the
    viewport (y axis flipped so north is up). *)

val write_file : string -> string -> unit
(** [write_file path doc]. *)
