(** Finitely representable instances: one generalized relation per
    schema name. *)

type t

val create : Schema.t -> t

val schema : t -> Schema.t

val set : t -> string -> Relation.t -> t
(** @raise Invalid_argument if the name is not in the schema or the
    relation's dimension differs from the declared arity. *)

val get : t -> string -> Relation.t option
val get_exn : t -> string -> Relation.t

val names : t -> string list
(** Names that have been populated. *)

val total_size : t -> int
(** Sum of the description sizes of all populated relations. *)
