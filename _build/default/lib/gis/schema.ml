type t = (string * int) list (* reversed declaration order *)

let empty = []

let add t ~name ~arity =
  if arity <= 0 then invalid_arg "Schema.add: non-positive arity";
  if List.mem_assoc name t then invalid_arg ("Schema.add: duplicate relation " ^ name);
  (name, arity) :: t

let of_list l = List.fold_left (fun acc (name, arity) -> add acc ~name ~arity) empty l

let arity t name = List.assoc_opt name t
let mem t name = List.mem_assoc name t
let names t = List.rev_map fst t

let pp fmt t =
  List.iter (fun (name, arity) -> Format.fprintf fmt "%s/%d@ " name arity) (List.rev t)
