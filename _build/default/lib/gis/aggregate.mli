(** Approximate aggregates over query results.

    The paper's motivating application: GIS workloads ask for areas,
    coverage fractions and range counts where an approximate answer at
    a fraction of the symbolic cost is the right trade.  Every
    aggregate here can run in three modes — exact (fixed dimension),
    grid (Lemma 3.2) or sampling (the paper's estimators) — so callers
    and experiments can compare them. *)

type mode =
  | Exact  (** Lasserre + inclusion–exclusion: exponential in dim, exact. *)
  | Grid of float  (** Fixed-dimension γ-grid decomposition. *)
  | Sampling of { eps : float; delta : float }  (** The paper's estimators. *)

val volume :
  ?config:Convex_obs.config -> Rng.t -> Instance.t -> free_dim:int -> mode -> Query.t ->
  (float, string) result
(** Volume (area in 2-D) of the query result. *)

val coverage :
  ?config:Convex_obs.config -> Rng.t -> Instance.t -> free_dim:int -> mode ->
  window:Relation.t -> Query.t -> (float, string) result
(** Fraction of [window] covered by the query result:
    [vol(result ∩ window) / vol(window)]. *)

val average :
  ?config:Convex_obs.config -> Rng.t -> Instance.t -> free_dim:int ->
  samples:int -> Query.t -> f:(Vec.t -> float) -> (float, string) result
(** Monte-Carlo average of [f] over the (approximately uniform) result
    set — AVG-style aggregates. *)
