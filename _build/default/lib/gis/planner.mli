(** Cost-based choice between evaluation strategies.

    The paper's point is asymptotic: symbolic evaluation (quantifier
    elimination + exact volume) is exact but exponential in dimension
    and doubly exponential in eliminated variables, while sampling is
    polynomial but approximate.  This planner encodes that trade as a
    concrete cost model and picks a strategy per query, the way a
    database optimizer would. *)

type strategy =
  | Use_exact  (** symbolic QE + Lasserre volume *)
  | Use_grid of float  (** fixed-dimension γ-grid *)
  | Use_sampling of { eps : float; delta : float }

type estimate = {
  strategy : strategy;
  predicted_cost : float; (* abstract work units; comparable across strategies *)
  reason : string;
}

val plan :
  ?eps:float -> ?delta:float -> Instance.t -> free_dim:int -> Query.t -> estimate
(** Choose a strategy for evaluating the volume of the query result.
    [eps]/[delta] (defaults 0.25) are the accuracy targets should
    sampling be selected. *)

val cost_exact : Instance.t -> free_dim:int -> Query.t -> float
(** Predicted work for the symbolic route: DNF tuple count estimate ×
    Lasserre recursion bound [m^d], plus the Fourier–Motzkin factor
    [m^{2^k}] for [k] quantified variables (capped to avoid overflow). *)

val cost_grid : free_dim:int -> extent_cells:int -> float
val cost_sampling : free_dim:int -> pieces:int -> eps:float -> delta:float -> float

val run : ?eps:float -> ?delta:float ->
  ?config:Convex_obs.config -> Rng.t -> Instance.t -> free_dim:int -> Query.t ->
  (float * estimate, string) result
(** Plan, then execute via {!Aggregate.volume} with the chosen mode. *)
