(** Query evaluation: the symbolic baseline and the approximate planner.

    Two execution strategies for FO+LIN queries over an instance:

    - {!symbolic}: unfold relation atoms and run Fourier–Motzkin
      quantifier elimination — exact, but doubly exponential in the
      number of eliminated variables (the cost the paper wants to
      avoid);
    - {!compile}: build an {!Scdb_core.Observable.t} by composing the
      paper's generators — union for [∨], intersection for [∧],
      difference for guarded [¬], fiber-compensated projection for
      [∃] — giving sampling and volume estimation without any symbolic
      blowup. *)

val unfold : Instance.t -> Query.t -> Formula.t
(** Replace every relation atom by its instance definition (variables
    renamed into the query's).  The result is FO+LIN.
    @raise Invalid_argument on unpopulated relation names. *)

val symbolic : Instance.t -> free_dim:int -> Query.t -> Relation.t
(** Exact evaluation: unfold, eliminate quantifiers, normalize. *)

val observable_of_relation :
  ?config:Convex_obs.config -> Rng.t -> Relation.t -> Observable.t option
(** Union of per-tuple DFK observables (empty / lower-dimensional
    tuples are dropped); [None] when nothing full-dimensional
    remains. *)

val compile :
  ?config:Convex_obs.config ->
  ?poly_degree:int ->
  Rng.t ->
  Instance.t ->
  free_dim:int ->
  Query.t ->
  (Observable.t, string) result
(** The approximate planner.  Supported fragment: disjunctions of
    pieces [∃ z̄. (positive conjunction [∧ ¬guards])], where guards may
    not mention the quantified variables and pieces with quantifiers
    must be purely positive (the paper's Theorem 4.4 fragment plus
    guarded difference).  Returns [Error reason] outside the
    fragment. *)

val reconstruct :
  ?config:Convex_obs.config ->
  ?samples_per_piece:int ->
  Rng.t ->
  Instance.t ->
  free_dim:int ->
  Query.t ->
  (Reconstruct.t, string) result
(** Algorithm 5: reconstruct a positive existential query as a union of
    convex hulls, one per compiled piece. *)
