(** Synthetic GIS data generators.

    The paper has no published dataset (it is a theory paper), so the
    examples and experiments run on synthetic land-use maps with
    analytically known ground truth: convex parcels, lakes, thin road
    corridors and 3-D elevation prisms, all as generalized relations
    with exact rational coefficients. *)

val random_convex_parcel :
  Rng.t -> centre:Vec.t -> radius:float -> facets:int -> Relation.t
(** One generalized tuple: a bounded convex polygon/polytope around
    [centre], cut by [facets] random halfplanes plus a bounding box
    (guaranteeing well-boundedness). *)

val parcel_grid :
  Rng.t -> rows:int -> cols:int -> cell:float -> jitter:float -> Relation.t list
(** [rows·cols] disjoint convex parcels, one per grid cell, each inset
    by a random jitter — a stylized cadastral map on
    [[0, cols·cell] × [0, rows·cell]]. *)

val lakes : Rng.t -> extent:float -> count:int -> Relation.t
(** A union of random convex "lakes" inside [[0,extent]²]. *)

val road : from:float * float -> to_:float * float -> width:float -> Relation.t
(** A thin rectangle (corridor) between two points. *)

val elevation_prism : base:Relation.t -> height:Rational.t -> Relation.t
(** 3-D prism: the 2-D base extruded to [0 <= z <= height].
    @raise Invalid_argument if the base is not 2-D. *)

val land_use_schema : Schema.t
(** [Parcels/2, Lakes/2, Roads/2, Terrain/3]. *)

val land_use_instance : Rng.t -> extent:float -> Instance.t
(** A populated instance of {!land_use_schema} over [[0,extent]²]:
    a 3×3 parcel grid, two lakes, one diagonal road, and terrain prisms
    over the parcels. *)
