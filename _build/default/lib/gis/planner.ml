type strategy =
  | Use_exact
  | Use_grid of float
  | Use_sampling of { eps : float; delta : float }

type estimate = { strategy : strategy; predicted_cost : float; reason : string }

(* Crude statistics of the unfolded query. *)
let rec query_stats inst (q : Query.t) =
  (* returns (atoms, disjuncts, quantified) *)
  match q with
  | Query.Rel (name, _) ->
      let r = Instance.get_exn inst name in
      (Relation.size r, Stdlib.max 1 (List.length (Relation.tuples r)), 0)
  | Query.Constr _ -> (1, 1, 0)
  | Query.And qs ->
      List.fold_left
        (fun (a, d, k) q ->
          let a', d', k' = query_stats inst q in
          (a + a', d * Stdlib.max 1 d', k + k'))
        (0, 1, 0) qs
  | Query.Or qs ->
      List.fold_left
        (fun (a, d, k) q ->
          let a', d', k' = query_stats inst q in
          (a + a', d + d', k + k'))
        (0, 0, 0) qs
  | Query.Not q -> query_stats inst q
  | Query.Exists (vs, q) ->
      let a, d, k = query_stats inst q in
      (a, d, k + List.length vs)

let cap = 1e18

let cost_exact inst ~free_dim q =
  let atoms, disjuncts, quantified = query_stats inst q in
  let m = float_of_int (Stdlib.max 2 atoms) in
  (* Fourier–Motzkin: m^(2^k) constraints in the worst case. *)
  let fm = Float.min cap (m ** Float.min 60.0 (2.0 ** float_of_int quantified)) in
  (* Lasserre: ~m^d per tuple; inclusion–exclusion: 2^tuples volume calls. *)
  let lasserre = Float.min cap (m ** float_of_int free_dim) in
  let ie = Float.min cap (2.0 ** float_of_int (Stdlib.min 40 disjuncts)) in
  Float.min cap (fm +. (ie *. lasserre))

let cost_grid ~free_dim ~extent_cells =
  Float.min cap (float_of_int extent_cells ** float_of_int free_dim)

let cost_sampling ~free_dim ~pieces ~eps ~delta =
  (* per piece: rounding + phases(q = O(d log d)) x Chernoff samples x walk steps *)
  let d = float_of_int free_dim in
  let phases = Float.max 1.0 (d *. 2.0) in
  let samples = 3.0 *. log (2.0 /. delta) /. (eps *. eps) *. phases *. phases *. 2.0 in
  let steps = Float.max 60.0 (12.0 *. d *. log (d +. 2.0) ** 2.0) in
  float_of_int (Stdlib.max 1 pieces) *. phases *. samples *. steps

let plan ?(eps = 0.25) ?(delta = 0.25) inst ~free_dim q =
  let _, disjuncts, quantified = query_stats inst q in
  let exact_cost = cost_exact inst ~free_dim q in
  let grid_gamma = 0.05 in
  let grid_cost = cost_grid ~free_dim ~extent_cells:(int_of_float (1.0 /. grid_gamma)) in
  let sampling_cost = cost_sampling ~free_dim ~pieces:disjuncts ~eps ~delta in
  (* The grid needs a quantifier-free symbolic result first, so its real
     cost includes the FM part of the exact route. *)
  let grid_total = grid_cost +. Float.min cap (exact_cost /. 2.0) in
  if exact_cost <= Float.min grid_total sampling_cost then
    {
      strategy = Use_exact;
      predicted_cost = exact_cost;
      reason =
        Printf.sprintf "small symbolic result (k=%d quantified, %d disjuncts)" quantified disjuncts;
    }
  else if grid_total <= sampling_cost then
    {
      strategy = Use_grid grid_gamma;
      predicted_cost = grid_total;
      reason = Printf.sprintf "low dimension %d favours the γ-grid" free_dim;
    }
  else
    {
      strategy = Use_sampling { eps; delta };
      predicted_cost = sampling_cost;
      reason =
        Printf.sprintf "dimension %d / %d quantified vars favour sampling" free_dim quantified;
    }

let run ?eps ?delta ?config rng inst ~free_dim q =
  let est = plan ?eps ?delta inst ~free_dim q in
  let mode =
    match est.strategy with
    | Use_exact -> Aggregate.Exact
    | Use_grid g -> Aggregate.Grid g
    | Use_sampling { eps; delta } -> Aggregate.Sampling { eps; delta }
  in
  Result.map (fun v -> (v, est)) (Aggregate.volume ?config rng inst ~free_dim mode q)
