let q = Rational.of_float

(* Atom u·x <= rhs from float data. *)
let halfplane_atom u rhs =
  let term = ref (Term.const (Rational.neg (q rhs))) in
  Array.iteri (fun i c -> term := Term.add !term (Term.monomial (q c) i)) u;
  Atom.make !term Atom.Le

let box_atoms centre radius =
  let d = Vec.dim centre in
  List.concat_map
    (fun i ->
      [
        halfplane_atom (Vec.basis d i) (centre.(i) +. radius);
        halfplane_atom (Vec.neg (Vec.basis d i)) (radius -. centre.(i));
      ])
    (List.init d Fun.id)

let random_convex_parcel rng ~centre ~radius ~facets =
  let d = Vec.dim centre in
  let cuts =
    List.init facets (fun _ ->
        let u = Rng.unit_vector rng d in
        let offset = Rng.uniform rng (0.55 *. radius) radius in
        halfplane_atom u (Vec.dot u centre +. offset))
  in
  Relation.make ~dim:d [ cuts @ box_atoms centre radius ]

let parcel_grid rng ~rows ~cols ~cell ~jitter =
  List.concat_map
    (fun i ->
      List.map
        (fun j ->
          let centre = [| (float_of_int j +. 0.5) *. cell; (float_of_int i +. 0.5) *. cell |] in
          let inset = Rng.uniform rng 0.0 jitter in
          let radius = cell *. (0.45 -. inset) in
          random_convex_parcel rng ~centre ~radius ~facets:(5 + Rng.int rng 4))
        (List.init cols Fun.id))
    (List.init rows Fun.id)

let lakes rng ~extent ~count =
  let blobs =
    List.init count (fun _ ->
        let centre =
          [| Rng.uniform rng (0.2 *. extent) (0.8 *. extent); Rng.uniform rng (0.2 *. extent) (0.8 *. extent) |]
        in
        let radius = Rng.uniform rng (0.05 *. extent) (0.15 *. extent) in
        random_convex_parcel rng ~centre ~radius ~facets:7)
  in
  List.fold_left Relation.union (List.hd blobs) (List.tl blobs)

let road ~from ~to_ ~width =
  let x0, y0 = from and x1, y1 = to_ in
  let dx = x1 -. x0 and dy = y1 -. y0 in
  let len = sqrt ((dx *. dx) +. (dy *. dy)) in
  if len = 0.0 then invalid_arg "Synth.road: degenerate endpoints";
  let d = [| dx /. len; dy /. len |] in
  let n = [| -.d.(1); d.(0) |] in
  let p0 = [| x0; y0 |] in
  let atoms =
    [
      halfplane_atom (Vec.neg d) (-.Vec.dot d p0) (* d·x >= d·p0 *);
      halfplane_atom d (Vec.dot d p0 +. len);
      halfplane_atom n (Vec.dot n p0 +. (width /. 2.0));
      halfplane_atom (Vec.neg n) ((width /. 2.0) -. Vec.dot n p0);
    ]
  in
  Relation.make ~dim:2 [ atoms ]

let elevation_prism ~base ~height =
  if Relation.dim base <> 2 then invalid_arg "Synth.elevation_prism: base must be 2-D";
  let z_atoms =
    [ Atom.ge (Term.var 2) Term.zero; Atom.le (Term.var 2) (Term.const height) ]
  in
  Relation.make ~dim:3 (List.map (fun tuple -> tuple @ z_atoms) (Relation.tuples base))

let land_use_schema =
  Schema.of_list [ ("Parcels", 2); ("Lakes", 2); ("Roads", 2); ("Terrain", 3) ]

let land_use_instance rng ~extent =
  let cell = extent /. 3.0 in
  let parcels = parcel_grid rng ~rows:3 ~cols:3 ~cell ~jitter:0.05 in
  let parcels_rel = List.fold_left Relation.union (List.hd parcels) (List.tl parcels) in
  let lakes_rel = lakes rng ~extent ~count:2 in
  let road_rel =
    road ~from:(0.05 *. extent, 0.1 *. extent) ~to_:(0.95 *. extent, 0.9 *. extent)
      ~width:(0.04 *. extent)
  in
  let terrain =
    List.mapi
      (fun k p ->
        elevation_prism ~base:p ~height:(Rational.of_ints (3 + (k mod 4)) 2))
      parcels
  in
  let terrain_rel = List.fold_left Relation.union (List.hd terrain) (List.tl terrain) in
  let inst = Instance.create land_use_schema in
  let inst = Instance.set inst "Parcels" parcels_rel in
  let inst = Instance.set inst "Lakes" lakes_rel in
  let inst = Instance.set inst "Roads" road_rel in
  Instance.set inst "Terrain" terrain_rel
