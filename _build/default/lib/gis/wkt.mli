(** Well-Known Text interop for planar relations.

    The OGC exchange format GIS tools speak: [POLYGON ((x y, …))] and
    [MULTIPOLYGON (((…)), ((…)))].  Exported geometry comes from the
    per-tuple vertex enumeration; imported polygons must be convex
    (generalized tuples are convex — a non-convex ring is rejected, as
    the constraint model would silently convexify it otherwise). *)

val of_relation : Relation.t -> string
(** [POLYGON] for one tuple, [MULTIPOLYGON] otherwise; empty tuples are
    skipped, [POLYGON EMPTY] when nothing remains.
    @raise Invalid_argument on non-2-D relations. *)

val to_relation : string -> (Relation.t, string) result
(** Parse a WKT [POLYGON]/[MULTIPOLYGON] (outer rings only, no holes)
    into a 2-D relation, one generalized tuple per ring.  Rings must be
    closed and convex; [Error] explains violations. *)

val ring_of_points : Vec.t list -> string
(** One parenthesized coordinate ring (closing the loop). *)
