module P = Scdb_polytope.Polytope
module P2 = Scdb_polytope.Polygon2d

type style = { fill : string; stroke : string; opacity : float }

let default_style = { fill = "#cccccc"; stroke = "#222222"; opacity = 0.8 }

type shape =
  | Polygon of style * Vec.t list
  | Points of string * float * Vec.t list

type element = shape list

let relation ?(style = default_style) r =
  if Relation.dim r <> 2 then invalid_arg "Svg.relation: 2-D relations only";
  List.filter_map
    (fun tuple ->
      let poly = P.of_tuple ~dim:2 tuple in
      match P2.vertices poly with [] -> None | vs -> Some (Polygon (style, vs)))
    (Relation.tuples r)

let points ?(colour = "#d62728") ?(radius = 2.0) pts = [ Points (colour, radius, pts) ]

let polygon ?(style = default_style) vertices = [ Polygon (style, vertices) ]

let render ~width ~height ~lo ~hi elements =
  let buf = Buffer.create 4096 in
  let sx = float_of_int width /. (hi.(0) -. lo.(0)) in
  let sy = float_of_int height /. (hi.(1) -. lo.(1)) in
  let px p = (p.(0) -. lo.(0)) *. sx in
  let py p = float_of_int height -. ((p.(1) -. lo.(1)) *. sy) in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">\n"
       width height width height);
  Buffer.add_string buf "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  List.iter
    (List.iter (function
      | Polygon (style, vs) ->
          let coords =
            String.concat " " (List.map (fun v -> Printf.sprintf "%.2f,%.2f" (px v) (py v)) vs)
          in
          Buffer.add_string buf
            (Printf.sprintf
               "<polygon points=\"%s\" fill=\"%s\" stroke=\"%s\" fill-opacity=\"%.2f\"/>\n" coords
               style.fill style.stroke style.opacity)
      | Points (colour, radius, pts) ->
          List.iter
            (fun p ->
              Buffer.add_string buf
                (Printf.sprintf "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"%.1f\" fill=\"%s\"/>\n" (px p)
                   (py p) radius colour))
            pts))
    elements;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_file path doc =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc)
