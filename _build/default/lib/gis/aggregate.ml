module Volume_exact = Scdb_polytope.Volume_exact
module Gridvol = Scdb_polytope.Gridvol

type mode =
  | Exact
  | Grid of float
  | Sampling of { eps : float; delta : float }

let relation_volume rng ?config mode r =
  match mode with
  | Exact -> (
      match Volume_exact.float_volume_relation ~max_tuples:16 r with
      | v -> Ok v
      | exception Volume_exact.Unbounded -> Error "unbounded query result"
      | exception Invalid_argument m -> Error m)
  | Grid gamma -> (
      match Gridvol.build ~gamma r with
      | Some g -> Ok (Gridvol.volume g)
      | None -> Error "empty or unbounded query result"
      | exception Invalid_argument m -> Error m)
  | Sampling { eps; delta } -> (
      match Eval.observable_of_relation ?config rng r with
      | Some o -> (
          match Observable.volume o rng ~eps ~delta with
          | v -> Ok v
          | exception Observable.Estimation_failed m -> Error m)
      | None -> Ok 0.0)

let volume ?config rng inst ~free_dim mode q =
  match mode with
  | Exact | Grid _ ->
      (* Exact modes need the symbolic result (fixed dimension). *)
      let r = Eval.symbolic inst ~free_dim q in
      relation_volume rng ?config mode r
  | Sampling { eps; delta } -> (
      match Eval.compile ?config rng inst ~free_dim q with
      | Error e -> Error e
      | Ok o -> (
          match Observable.volume o rng ~eps ~delta with
          | v -> Ok v
          | exception Observable.Estimation_failed m -> Error m))

let coverage ?config rng inst ~free_dim mode ~window q =
  if Relation.dim window <> free_dim then Error "window dimension mismatch"
  else begin
    match relation_volume rng ?config mode window with
    | Error e -> Error e
    | Ok wv when wv <= 0.0 -> Error "window has zero volume"
    | Ok wv -> (
        match mode with
        | Exact | Grid _ ->
            let r = Eval.symbolic inst ~free_dim q in
            let clipped = Relation.inter r window in
            Result.map (fun v -> v /. wv) (relation_volume rng ?config mode clipped)
        | Sampling { eps; delta } -> (
            match Eval.compile ?config rng inst ~free_dim q with
            | Error e -> Error e
            | Ok o -> (
                match Eval.observable_of_relation ?config rng window with
                | None -> Error "window is empty or unbounded"
                | Some w -> (
                    let clipped = Inter.inter2 o w in
                    match Observable.volume clipped rng ~eps ~delta with
                    | v -> Ok (v /. wv)
                    | exception Observable.Estimation_failed m -> Error m))))
  end

let average ?config rng inst ~free_dim ~samples q ~f =
  match Eval.compile ?config rng inst ~free_dim q with
  | Error e -> Error e
  | Ok o -> (
      let params = Params.make ~gamma:0.05 ~eps:0.2 ~delta:0.1 () in
      match Observable.sample_many o rng params ~n:samples with
      | points ->
          Ok (List.fold_left (fun acc p -> acc +. f p) 0.0 points /. float_of_int samples)
      | exception Observable.Estimation_failed m -> Error m)
