module P = Scdb_polytope.Polytope
module P2 = Scdb_polytope.Polygon2d
module H2 = Scdb_hull.Hull2d

let ring_of_points pts =
  match pts with
  | [] -> "()"
  | first :: _ ->
      let coord p = Printf.sprintf "%g %g" p.(0) p.(1) in
      "(" ^ String.concat ", " (List.map coord (pts @ [ first ])) ^ ")"

let of_relation r =
  if Relation.dim r <> 2 then invalid_arg "Wkt.of_relation: 2-D relations only";
  let rings =
    List.filter_map
      (fun tuple ->
        match P2.vertices (P.of_tuple ~dim:2 tuple) with
        | [] -> None
        | vs -> Some (ring_of_points vs))
      (Relation.tuples r)
  in
  match rings with
  | [] -> "POLYGON EMPTY"
  | [ ring ] -> "POLYGON (" ^ ring ^ ")"
  | rings -> "MULTIPOLYGON (" ^ String.concat ", " (List.map (fun ring -> "(" ^ ring ^ ")") rings) ^ ")"

(* ------------------------- parsing ------------------------- *)

type token = Word of string | Num of float | LP | RP | Comma

let tokenize s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  let is_word c = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') in
  let is_num c = (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E' in
  (try
     while !i < n do
       let c = s.[!i] in
       if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
       else if c = '(' then begin out := LP :: !out; incr i end
       else if c = ')' then begin out := RP :: !out; incr i end
       else if c = ',' then begin out := Comma :: !out; incr i end
       else if is_word c then begin
         let start = !i in
         while !i < n && is_word s.[!i] do incr i done;
         out := Word (String.uppercase_ascii (String.sub s start (!i - start))) :: !out
       end
       else if is_num c then begin
         let start = !i in
         while !i < n && is_num s.[!i] do incr i done;
         out := Num (float_of_string (String.sub s start (!i - start))) :: !out
       end
       else raise Exit
     done;
     ()
   with Exit | Failure _ -> out := [ Word "<LEX-ERROR>" ]);
  List.rev !out

let parse_ring tokens =
  (* LP num num { ',' num num } RP  ->  point list and remaining tokens *)
  let rec points acc = function
    | Num x :: Num y :: Comma :: rest -> points ([| x; y |] :: acc) rest
    | Num x :: Num y :: RP :: rest -> Ok (List.rev ([| x; y |] :: acc), rest)
    | _ -> Error "malformed coordinate ring"
  in
  match tokens with LP :: rest -> points [] rest | _ -> Error "expected '('"

let ring_to_tuple pts =
  (* closed ring: first = last; require convexity *)
  let pts =
    match (pts, List.rev pts) with
    | first :: _, last :: _ when Vec.dist first last < 1e-12 -> List.tl (List.rev pts) |> List.rev
    | _ -> pts
  in
  if List.length pts < 3 then Error "ring has fewer than 3 distinct points"
  else begin
    let hull = H2.hull pts in
    if List.length hull <> List.length pts then Error "ring is not convex"
    else
      match H2.to_tuple pts with
      | Some tuple -> Ok tuple
      | None -> Error "degenerate ring"
  end

let to_relation s =
  let ( let* ) = Result.bind in
  match tokenize s with
  | Word "POLYGON" :: Word "EMPTY" :: [] -> Ok (Relation.make ~dim:2 [])
  | Word "POLYGON" :: rest ->
      (* POLYGON ((ring)) — outer ring only *)
      let* inner =
        match rest with LP :: more -> Ok more | _ -> Error "expected '(' after POLYGON"
      in
      let* pts, after = parse_ring inner in
      let* () = (match after with RP :: [] -> Ok () | _ -> Error "holes are not supported") in
      let* tuple = ring_to_tuple pts in
      Ok (Relation.make ~dim:2 [ tuple ])
  | Word "MULTIPOLYGON" :: LP :: rest ->
      let rec rings acc tokens =
        match tokens with
        | LP :: more -> (
            let* pts, after = parse_ring more in
            let* () = (match after with RP :: _ -> Ok () | _ -> Error "holes are not supported") in
            let* tuple = ring_to_tuple pts in
            match after with
            | RP :: Comma :: more' -> rings (tuple :: acc) more'
            | RP :: RP :: [] -> Ok (List.rev (tuple :: acc))
            | _ -> Error "malformed MULTIPOLYGON")
        | _ -> Error "expected '(' starting a polygon"
      in
      let* tuples = rings [] rest in
      Ok (Relation.make ~dim:2 tuples)
  | _ -> Error "expected POLYGON or MULTIPOLYGON"
