(** Relational database schemas for spatial constraint databases.

    A schema names the generalized relations an instance must provide
    and fixes the arity (spatial dimension) of each. *)

type t

val empty : t

val add : t -> name:string -> arity:int -> t
(** @raise Invalid_argument on duplicate names or non-positive arity. *)

val of_list : (string * int) list -> t

val arity : t -> string -> int option
val mem : t -> string -> bool
val names : t -> string list
(** In declaration order. *)

val pp : Format.formatter -> t -> unit
