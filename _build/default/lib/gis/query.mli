(** FO+LIN queries over a database schema.

    The query language of the paper: atoms are either relation symbols
    applied to variables or linear constraints, closed under boolean
    connectives and quantification.  Variables are integers; the free
    variables of the query are [0 .. free_dim-1]. *)

type t =
  | Rel of string * int list (* R(x_{i₁}, …, x_{iₖ}) *)
  | Constr of Atom.t
  | And of t list
  | Or of t list
  | Not of t
  | Exists of int list * t

val rel : string -> int list -> t
val constr : Atom.t -> t
val conj : t list -> t
val disj : t list -> t
val neg : t -> t
val exists : int list -> t -> t

val relation_names : t -> string list
(** Distinct, in first-occurrence order. *)

val free_vars : t -> int list
val max_var : t -> int
val is_positive_existential : t -> bool
(** No negation, no universal quantification — the fragment of
    Theorem 4.4's reconstruction. *)

val well_formed : Schema.t -> t -> (unit, string) result
(** Arity check of every relation atom against the schema. *)

val parse : schema:Schema.t -> vars:string list -> string -> t
(** Text syntax: the FO+LIN grammar of {!Scdb_constr.Parser} extended
    with relation atoms [Name(x, y, …)] whose arguments are variable
    names.  Relation names must start with an uppercase letter.
    @raise Scdb_constr.Parser.Parse_error on syntax or arity errors. *)

val pp : Format.formatter -> t -> unit
