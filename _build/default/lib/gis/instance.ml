module SMap = Map.Make (String)

type t = { schema : Schema.t; relations : Relation.t SMap.t }

let create schema = { schema; relations = SMap.empty }

let schema t = t.schema

let set t name relation =
  match Schema.arity t.schema name with
  | None -> invalid_arg ("Instance.set: unknown relation " ^ name)
  | Some arity ->
      if Relation.dim relation <> arity then
        invalid_arg
          (Printf.sprintf "Instance.set: %s has arity %d but relation has dimension %d" name arity
             (Relation.dim relation));
      { t with relations = SMap.add name relation t.relations }

let get t name = SMap.find_opt name t.relations

let get_exn t name =
  match get t name with
  | Some r -> r
  | None -> invalid_arg ("Instance.get_exn: unpopulated relation " ^ name)

let names t = List.map fst (SMap.bindings t.relations)

let total_size t = SMap.fold (fun _ r acc -> acc + Relation.size r) t.relations 0
