lib/gis/aggregate.ml: Eval Inter List Observable Params Relation Result Scdb_polytope
