lib/gis/query.ml: Atom Format Hashtbl Int Lexer List Parser Printf Rational Scdb_constr Schema Set Stdlib String Term
