lib/gis/svg.mli: Relation Vec
