lib/gis/instance.mli: Relation Schema
