lib/gis/synth.ml: Array Atom Fun Instance List Rational Relation Rng Schema Term Vec
