lib/gis/instance.ml: List Map Printf Relation Schema String
