lib/gis/eval.ml: Array Atom Convex_obs Diff Formula Fun Hashtbl Instance List Observable Printf Project Query Reconstruct Relation Scdb_polytope Scdb_qe Union
