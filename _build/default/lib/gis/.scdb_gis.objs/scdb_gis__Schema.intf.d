lib/gis/schema.mli: Format
