lib/gis/aggregate.mli: Convex_obs Instance Query Relation Rng Vec
