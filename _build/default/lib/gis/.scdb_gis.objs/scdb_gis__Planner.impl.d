lib/gis/planner.ml: Aggregate Float Instance List Printf Query Relation Result Stdlib
