lib/gis/schema.ml: Format List
