lib/gis/eval.mli: Convex_obs Formula Instance Observable Query Reconstruct Relation Rng
