lib/gis/wkt.ml: Array List Printf Relation Result Scdb_hull Scdb_polytope String Vec
