lib/gis/synth.mli: Instance Rational Relation Rng Schema Vec
