lib/gis/svg.ml: Array Buffer Fun List Printf Relation Scdb_polytope String Vec
