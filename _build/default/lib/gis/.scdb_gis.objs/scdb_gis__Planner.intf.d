lib/gis/planner.mli: Convex_obs Instance Query Rng
