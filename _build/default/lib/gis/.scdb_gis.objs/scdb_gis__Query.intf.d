lib/gis/query.mli: Atom Format Schema
