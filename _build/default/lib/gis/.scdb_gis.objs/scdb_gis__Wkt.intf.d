lib/gis/wkt.mli: Relation Vec
