module Hull_lp = Scdb_hull.Hull_lp
module Hull2d = Scdb_hull.Hull2d

type t = { dim : int; hulls : Hull_lp.t list }

let mem t x = List.exists (fun h -> Hull_lp.mem h x) t.hulls

let samples_for_lemma41 ~eps ~delta ~dim ~vertices =
  let d = float_of_int dim and r = float_of_int vertices in
  4.0 *. r *. r *. d *. d /. (eps ** 4.0) /. (d ** ((2.0 *. d) -. 2.0)) *. log (1.0 /. delta)

let default_params = Params.make ~gamma:0.05 ~eps:0.15 ~delta:0.1 ()

let convex_hull_estimate rng obs ~n =
  let points = Observable.sample_many obs rng default_params ~n in
  { dim = Observable.dim obs; hulls = [ Hull_lp.of_points (Array.of_list points) ] }

let union_estimate rng pieces ~n =
  match pieces with
  | [] -> invalid_arg "Reconstruct.union_estimate: no pieces"
  | first :: _ ->
      let dim = Observable.dim first in
      List.iter
        (fun p -> if Observable.dim p <> dim then invalid_arg "Reconstruct.union_estimate: dimension mismatch")
        pieces;
      let hulls =
        List.map
          (fun piece ->
            let points = Observable.sample_many piece rng default_params ~n in
            Hull_lp.of_points (Array.of_list points))
          pieces
      in
      { dim; hulls }

let to_relation_2d t =
  if t.dim <> 2 then None
  else begin
    let tuples =
      List.map (fun h -> Hull2d.to_tuple (Array.to_list (Hull_lp.points h))) t.hulls
    in
    if List.exists Option.is_none tuples then None
    else Some (Relation.make ~dim:2 (List.filter_map Fun.id tuples))
  end

let symmetric_difference_mc rng ?(samples = 20_000) t reference ~lo ~hi =
  let vol_box =
    let v = ref 1.0 in
    for i = 0 to Vec.dim lo - 1 do
      v := !v *. Float.max 0.0 (hi.(i) -. lo.(i))
    done;
    !v
  in
  if vol_box = 0.0 then 0.0
  else begin
    let hits = ref 0 in
    for _ = 1 to samples do
      let x = Rng.in_box rng lo hi in
      if mem t x <> reference x then incr hits
    done;
    vol_box *. float_of_int !hits /. float_of_int samples
  end
