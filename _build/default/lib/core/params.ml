type t = { gamma : float; eps : float; delta : float }

let check name v =
  if not (v > 0.0 && v < 1.0) then
    invalid_arg (Printf.sprintf "Params.make: %s = %g not in (0,1)" name v)

let make ?(gamma = 0.1) ?(eps = 0.1) ?(delta = 0.1) () =
  check "gamma" gamma;
  check "eps" eps;
  check "delta" delta;
  { gamma; eps; delta }

let default = make ()

let gamma t = t.gamma
let eps t = t.eps
let delta t = t.delta

let third_eps t = { t with eps = t.eps /. 3.0 }
let with_delta t delta =
  check "delta" delta;
  { t with delta }

let pp fmt t = Format.fprintf fmt "(γ=%g, ε=%g, δ=%g)" t.gamma t.eps t.delta
