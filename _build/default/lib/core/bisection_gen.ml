let volume rng ~budget poly =
  if Polytope.is_empty poly then 0.0
  else
    match Volume.estimate rng ~budget:(Volume.Practical budget) poly with
    | Some r -> Float.max 0.0 r.Volume.volume
    | None -> 0.0

let sample rng ?(volume_budget = 400) ?(bisections = 8) poly =
  match Polytope.bounding_box poly with
  | None -> None
  | Some (lo0, hi0) ->
      let d = Polytope.dim poly in
      let body = ref poly in
      let cell_lo = Vec.copy lo0 and cell_hi = Vec.copy hi0 in
      let ok = ref true in
      (* Narrow each coordinate to a thin slab by volume-weighted coin
         flips; the slab (not a point) is kept so that the remaining
         body stays full-dimensional — the geometric form of JVV
         self-reducibility. *)
      for coord = 0 to d - 1 do
        if !ok then begin
          for _ = 1 to bisections do
            if !ok then begin
              let mid = 0.5 *. (cell_lo.(coord) +. cell_hi.(coord)) in
              let left = Polytope.add_halfspace !body (Vec.basis d coord) mid in
              let right = Polytope.add_halfspace !body (Vec.neg (Vec.basis d coord)) (-.mid) in
              let vl = volume rng ~budget:volume_budget left in
              let vr = volume rng ~budget:volume_budget right in
              if vl +. vr <= 0.0 then ok := false
              else if Rng.float rng < vl /. (vl +. vr) then begin
                cell_hi.(coord) <- mid;
                body := left
              end
              else begin
                cell_lo.(coord) <- mid;
                body := right
              end
            end
          done
        end
      done;
      if not !ok then None
      else begin
        (* Uniform point of the final cell ∩ body by rejection, falling
           back to the Chebyshev centre of the residual body. *)
        let rec draw tries =
          if tries = 0 then Option.map fst (Polytope.chebyshev !body)
          else begin
            let p = Rng.in_box rng cell_lo cell_hi in
            if Polytope.mem ~slack:1e-12 poly p then Some p else draw (tries - 1)
          end
        in
        draw 64
      end

let sample_many rng ?volume_budget ?bisections poly ~n =
  let rec go acc k budget_guard =
    if k = 0 || budget_guard = 0 then List.rev acc
    else
      match sample rng ?volume_budget ?bisections poly with
      | Some p -> go (p :: acc) (k - 1) budget_guard
      | None -> go acc k (budget_guard - 1)
  in
  go [] n (4 * n)
