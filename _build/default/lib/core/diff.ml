let diff ?(poly_degree = 3) a b =
  if Observable.dim a <> Observable.dim b then invalid_arg "Diff.diff: dimension mismatch";
  let dim = Observable.dim a in
  let a = Observable.with_cached_volume a in
  let relation = Observable.combine_relations Relation.diff a b in
  let mem x = Observable.mem a x && not (Observable.mem b x) in
  let sample rng params =
    let budget = Inter.budget_for ~dim ~poly_degree ~delta:(Params.delta params) in
    let rec attempt k =
      if k = 0 then None
      else
        match Observable.sample a rng (Params.third_eps params) with
        | None -> attempt (k - 1)
        | Some x -> if Observable.mem b x then attempt (k - 1) else Some x
    in
    attempt budget
  in
  let volume rng ~eps ~delta =
    let eps2 = eps /. 2.0 in
    let mu_a = Observable.volume a rng ~eps:eps2 ~delta:(delta /. 4.0) in
    let p_floor = 1.0 /. (Float.max 2.0 (float_of_int dim) ** float_of_int poly_degree) in
    let params = Params.make ~gamma:0.1 ~eps:eps2 ~delta:(delta /. 4.0) () in
    let draw r =
      match Observable.sample a r params with
      | Some x -> not (Observable.mem b x)
      | None -> false
    in
    let fraction =
      Chernoff.estimate_fraction_adaptive rng ~eps:eps2 ~delta:(delta /. 4.0) ~p_floor draw
    in
    mu_a *. fraction
  in
  Observable.make ?relation ~dim ~mem ~sample ~volume ()
