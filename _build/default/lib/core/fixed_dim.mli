(** Fixed-dimension observability (Theorem 3.1, Lemmas 3.1–3.2).

    When the dimension is a constant, {e every} generalized relation —
    convex or not, connected or not — is observable by brute force:
    decompose the bounding box into γ-cubes, enumerate the cubes inside
    the relation, and both the count (volume) and a uniform cube choice
    (generator) follow.  The [(R/γ)^d] cost is polynomial for fixed [d]
    and the subject of experiment E8's crossover against the
    random-walk pipeline. *)

val observable : ?max_cells:int -> Relation.t -> Observable.t option
(** [None] when the relation is (syntactically or geometrically) empty
    or unbounded.  Decompositions are cached per γ.  The generator uses
    γ from its {!Params.t}; the volume estimator uses γ = ε (their
    roles coincide here: resolution is the only error source).
    [max_cells] (default [2_000_000]) bounds each decomposition;
    exceeding it raises [Invalid_argument] — that blowup in growing
    dimension is the point of Section 3's fixed-dimension hypothesis. *)

val exact_volume : Relation.t -> Rational.t
(** The exact polynomial-time fixed-dimension volume (Lemma 3.1's role,
    implemented by the Lasserre recursion + inclusion–exclusion).
    @raise Scdb_polytope.Volume_exact.Unbounded on unbounded input. *)
