type cnf = int list list

let check_literal ~nvars l =
  let v = abs l in
  if l = 0 || v > nvars then invalid_arg "Sat_encode: bad literal"

let quarter = Rational.of_ints 1 4
let three_quarters = Rational.of_ints 3 4

(* The unit-cube atoms 0 <= x_i <= 1 for all variables. *)
let cube_atoms nvars =
  List.concat_map
    (fun i -> [ Atom.ge (Term.var i) Term.zero; Atom.le (Term.var i) (Term.const Rational.one) ])
    (List.init nvars Fun.id)

let literal_tuple ~nvars l =
  check_literal ~nvars l;
  let i = abs l - 1 in
  let slab =
    if l > 0 then [ Atom.gt (Term.var i) (Term.const three_quarters); Atom.lt (Term.var i) (Term.const Rational.one) ]
    else [ Atom.gt (Term.var i) Term.zero; Atom.lt (Term.var i) (Term.const quarter) ]
  in
  slab @ cube_atoms nvars

let literal_relation ~nvars l = Relation.make ~dim:nvars [ literal_tuple ~nvars l ]

let clause_relation ~nvars clause =
  if clause = [] then invalid_arg "Sat_encode.clause_relation: empty clause";
  Relation.make ~dim:nvars (List.map (literal_tuple ~nvars) clause)

let clause_observables ?config rng ~nvars cnf =
  List.map
    (fun clause ->
      let slabs =
        List.filter_map
          (fun l -> Convex_obs.make ?config rng (literal_relation ~nvars l))
          clause
      in
      if slabs = [] then invalid_arg "Sat_encode.clause_observables: unbuildable clause";
      Union.union slabs)
    cnf

(* Cell decomposition: each coordinate lies in F=(0,1/4), M=(1/4,3/4) or
   T=(3/4,1), with measures 1/4, 1/2, 1/4. *)
let exact_volume ~nvars cnf =
  List.iter (List.iter (check_literal ~nvars)) cnf;
  let measure = function 0 -> quarter | 1 -> Rational.half | _ -> quarter in
  let cell = Array.make nvars 0 in
  let total = ref Rational.zero in
  let satisfied () =
    List.for_all
      (fun clause ->
        List.exists
          (fun l ->
            let i = abs l - 1 in
            if l > 0 then cell.(i) = 2 else cell.(i) = 0)
          clause)
      cnf
  in
  let rec scan i =
    if i = nvars then begin
      if satisfied () then begin
        let m = Array.fold_left (fun acc c -> Rational.mul acc (measure c)) Rational.one cell in
        total := Rational.add !total m
      end
    end
    else
      for v = 0 to 2 do
        cell.(i) <- v;
        scan (i + 1)
      done
  in
  scan 0;
  !total

let count_models ~nvars cnf =
  List.iter (List.iter (check_literal ~nvars)) cnf;
  let count = ref 0 in
  for mask = 0 to (1 lsl nvars) - 1 do
    let sat =
      List.for_all
        (fun clause ->
          List.exists
            (fun l ->
              let bit = mask land (1 lsl (abs l - 1)) <> 0 in
              if l > 0 then bit else not bit)
            clause)
        cnf
    in
    if sat then incr count
  done;
  !count

let is_satisfiable ~nvars cnf = count_models ~nvars cnf > 0

let random_3cnf rng ~nvars ~clauses =
  if nvars < 3 then invalid_arg "Sat_encode.random_3cnf: need at least 3 variables";
  List.init clauses (fun _ ->
      (* Three distinct variables, random polarities. *)
      let rec pick acc =
        if List.length acc = 3 then acc
        else begin
          let v = 1 + Rng.int rng nvars in
          if List.mem v acc then pick acc else pick (v :: acc)
        end
      in
      List.map (fun v -> if Rng.bool rng then v else -v) (pick []))
