(** Projection of a convex relation (Theorem 4.3, Algorithm 2, Fig. 1).

    Projecting a uniform sample of [S ⊆ R^d] onto coordinates [I] is
    {e not} uniform on [π_I(S)]: a point lands in a cylinder with
    probability proportional to the cylinder's fiber volume (the
    paper's Fig. 1).  Algorithm 2 compensates by rejecting the
    projected point with probability proportional to the volume
    [h(y)] of its fiber [H_S(y)]:

    {v
    repeat k times:
      x  <- ApproxGen(S, γ, ε/3, ·)
      y  <- π_I(x)
      ĥ  <- ApproxVol(H_S(y), ε/3, ·)
      return y with probability c/ĥ      (c a fiber-volume lower bound)
    v}

    No symbolic quantifier elimination is performed; membership in the
    projection is an LP feasibility question on the fibers. *)

type fiber_volume =
  | Exact  (** Lasserre recursion on the fiber (cost exponential in d−e; fine for small fibers) *)
  | Estimated of int  (** multi-phase estimator with a per-phase sample budget *)

val project :
  ?fiber_volume:fiber_volume ->
  ?pilot_samples:int ->
  Rng.t ->
  Polytope.t ->
  keep:int list ->
  Observable.t option
(** Observable for [π_keep(S)].  Default fiber volumes: [Exact] when
    [d − e <= 3], else [Estimated 600].  [pilot_samples] (default 32)
    sizes the pre-pass that sets the acceptance constant [c] (the
    minimum observed fiber volume).  [None] when [S] is empty or
    unbounded.
    @raise Invalid_argument if [keep] is empty, out of range, or the
    full coordinate set. *)

val fiber : Polytope.t -> keep:int list -> Vec.t -> Polytope.t
(** The fiber polytope [H_S(y)] in the eliminated coordinates. *)

val fiber_volume_of : ?fiber_volume:fiber_volume -> Rng.t -> Polytope.t -> keep:int list -> Vec.t -> float

val naive_projection_sample : Rng.t -> Observable.t -> keep:int list -> Params.t -> Vec.t option
(** The {e biased} baseline of Fig. 1: sample the source and project,
    with no compensation.  Exists so E1 can measure the bias. *)
