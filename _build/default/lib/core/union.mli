(** Union of observable relations (Theorem 4.1/4.2, Corollary 4.2).

    The paper's Algorithm 1, the geometric analogue of the Karp–Luby
    #DNF sampler: choose an operand with probability proportional to
    its estimated volume, draw a point from it, and keep the point only
    when the chosen operand is the {e first} one containing it — which
    makes every point of the union counted exactly once.  A direct walk
    on the union would fail: it may be disconnected, or connected by
    thin tubes that the walk crosses exponentially rarely. *)

val union : Observable.t list -> Observable.t
(** m-ary union (Corollary 4.2).  Child volume estimators are cached
    per (ε,δ).  @raise Invalid_argument on an empty list or mixed
    dimensions. *)

val union2 : Observable.t -> Observable.t -> Observable.t
(** Binary case of Theorem 4.1. *)

val trials_for : m:int -> delta:float -> int
(** Retry budget: per-trial success probability is at least [1/m], so
    [⌈m·ln(1/δ)⌉] trials fail with probability below [δ]. *)
