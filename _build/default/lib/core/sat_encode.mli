(** The geometric SAT encoding of §4.1.3.

    Literal [xᵢ] becomes the slab [3/4 < xᵢ < 1], literal [¬xᵢ] the
    slab [0 < xᵢ < 1/4] (inside the ambient unit cube); a clause is the
    union of its literal slabs and a CNF instance the intersection of
    its clauses.  A relative volume estimator for arbitrary
    intersections would decide SAT — hence the poly-relatedness
    restriction in Proposition 4.1 is necessary unless P = NP.

    Clauses are lists of non-zero literals: [+i] for variable [i],
    [-i] for its negation ([i] is 1-based). *)

type cnf = int list list

val literal_relation : nvars:int -> int -> Relation.t
(** The slab of one literal, inside [0,1]^nvars. *)

val clause_relation : nvars:int -> int list -> Relation.t
(** Union of the clause's literal slabs. *)

val clause_observables :
  ?config:Convex_obs.config -> Rng.t -> nvars:int -> cnf -> Observable.t list
(** One observable per clause (a {!Union} of convex slab observables) —
    feeding these to {!Inter.inter} exercises the paper's whole algebra
    on a SAT instance. *)

val exact_volume : nvars:int -> cnf -> Rational.t
(** Exact volume of the intersection, by the 3^n cell decomposition
    (each coordinate lies in (0,¼), (¼,¾) or (¾,1)).  Exponential in
    [nvars]; intended for ground truth with [nvars <= 12]. *)

val count_models : nvars:int -> cnf -> int
(** Brute-force model count (2^n). *)

val is_satisfiable : nvars:int -> cnf -> bool

val random_3cnf : Rng.t -> nvars:int -> clauses:int -> cnf
(** Random 3-CNF with distinct variables per clause. *)
