(** Intersection of observable relations (Proposition 4.1,
    Corollary 4.3).

    Sample from the smallest operand and keep the points lying in all
    others.  This is efficient exactly when the intersection is
    {e poly-related} to that operand — the paper's sufficient
    condition; when it fails (an exponentially thin intersection) the
    rejection loop exhausts its budget and the generator reports
    failure, which is the behaviour experiment E6 measures.  The
    restriction is necessary unless P = NP (SAT encoding of §4.1.3). *)

val inter : ?poly_degree:int -> Observable.t list -> Observable.t
(** [poly_degree] is the exponent [k] of the poly-relatedness promise
    [μ(min Sᵢ)/μ(T) ≤ d^k] (default 3); it sizes the rejection budget
    [O(d^k · ln(1/δ))] and the volume-estimator sample count.
    @raise Invalid_argument on an empty list or mixed dimensions. *)

val inter2 : ?poly_degree:int -> Observable.t -> Observable.t -> Observable.t

val budget_for : dim:int -> poly_degree:int -> delta:float -> int
