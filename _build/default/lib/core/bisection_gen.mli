(** Generation from approximate counting, Jerrum–Valiant–Vazirani style.

    The paper builds on [19]'s equivalence between almost uniform
    generation and approximate counting for self-reducible problems.
    Convex bodies are "self-reducible" geometrically: fixing a
    coordinate range splits the body into two convex halves whose
    volumes the estimator can compare.  This module implements the
    counting→generation direction: draw each coordinate by recursive
    bisection, weighting each half by its estimated volume.

    It is polynomially slower than the walk (one volume estimation per
    bisection step) and exists to demonstrate the reduction; the walk
    samplers are the production path. *)

val sample :
  Rng.t ->
  ?volume_budget:int ->
  ?bisections:int ->
  Polytope.t ->
  Vec.t option
(** One approximate sample.  [bisections] (default 8) halvings per
    coordinate — the output is uniform over a grid of [2^bisections]
    slabs per axis, matching the γ-grid discretization of the paper.
    [volume_budget] is the per-phase sample count of the inner
    estimator (default 400).  [None] if the body is empty or
    unbounded. *)

val sample_many :
  Rng.t -> ?volume_budget:int -> ?bisections:int -> Polytope.t -> n:int -> Vec.t list
