(** Difference of observable relations (Proposition 4.2).

    Sample from the minuend and keep the points outside the
    subtrahend.  Neither connected nor convex in general, yet
    observable whenever [S₁ − S₂] is poly-related to [S₁]. *)

val diff : ?poly_degree:int -> Observable.t -> Observable.t -> Observable.t
(** [diff a b] is the observable for [a − b].  [poly_degree] plays the
    same budget role as in {!Inter}.
    @raise Invalid_argument on dimension mismatch. *)
