lib/core/reconstruct.mli: Observable Relation Rng Scdb_hull Vec
