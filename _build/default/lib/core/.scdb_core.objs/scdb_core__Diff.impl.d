lib/core/diff.ml: Chernoff Float Inter Observable Params Relation
