lib/core/project.ml: Array Chernoff Convex_obs Float Fun Hashtbl List Observable Option Params Polytope Rational Rng Stdlib Vec Volume Volume_exact
