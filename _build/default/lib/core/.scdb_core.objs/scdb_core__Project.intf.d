lib/core/project.mli: Observable Params Polytope Rng Vec
