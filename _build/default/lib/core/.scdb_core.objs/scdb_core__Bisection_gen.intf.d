lib/core/bisection_gen.mli: Polytope Rng Vec
