lib/core/sat_encode.ml: Array Atom Convex_obs Fun List Rational Relation Rng Term Union
