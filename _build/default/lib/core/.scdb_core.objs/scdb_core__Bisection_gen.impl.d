lib/core/bisection_gen.ml: Array Float List Option Polytope Rng Vec Volume
