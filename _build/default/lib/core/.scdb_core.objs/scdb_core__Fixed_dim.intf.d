lib/core/fixed_dim.mli: Observable Rational Relation
