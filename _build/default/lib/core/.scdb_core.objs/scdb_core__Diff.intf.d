lib/core/diff.mli: Observable
