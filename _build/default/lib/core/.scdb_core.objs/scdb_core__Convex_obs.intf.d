lib/core/convex_obs.mli: Observable Polytope Relation Rng Volume
