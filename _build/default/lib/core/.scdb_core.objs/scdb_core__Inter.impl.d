lib/core/inter.ml: Array Chernoff Float List Observable Params Relation Stdlib
