lib/core/union.mli: Observable
