lib/core/observable.mli: Params Relation Rng Vec
