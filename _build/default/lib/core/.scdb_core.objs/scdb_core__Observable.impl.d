lib/core/observable.ml: Hashtbl List Params Relation Rng Stdlib Vec
