lib/core/reconstruct.ml: Array Float Fun List Observable Option Params Relation Rng Scdb_hull Vec
