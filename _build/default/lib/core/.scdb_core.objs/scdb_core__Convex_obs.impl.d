lib/core/convex_obs.ml: Affine Grid Hit_and_run Observable Params Polytope Relation Rounding Vec Volume Walk
