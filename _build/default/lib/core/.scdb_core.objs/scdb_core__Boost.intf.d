lib/core/boost.mli: Observable Rng
