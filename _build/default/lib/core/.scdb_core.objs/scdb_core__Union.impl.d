lib/core/union.ml: Array Chernoff List Observable Params Relation Rng Stdlib
