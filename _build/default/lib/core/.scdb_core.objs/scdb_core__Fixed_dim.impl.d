lib/core/fixed_dim.ml: Array Float Gridvol Hashtbl Observable Params Relation Vec Volume_exact
