lib/core/sat_encode.mli: Convex_obs Observable Rational Relation Rng
