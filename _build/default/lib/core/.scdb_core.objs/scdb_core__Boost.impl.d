lib/core/boost.ml: Array Float Observable Stdlib
