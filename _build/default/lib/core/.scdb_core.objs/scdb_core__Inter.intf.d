lib/core/inter.mli: Observable
