(** The (γ, ε, δ) parameter triple of Definition 2.2.

    [gamma] controls the grid resolution (how well [|V|·p^d]
    approximates the volume), [eps] the distance of the output
    distribution from uniform, and [delta] the allowed failure
    probability. *)

type t = private { gamma : float; eps : float; delta : float }

val make : ?gamma:float -> ?eps:float -> ?delta:float -> unit -> t
(** Defaults [(0.1, 0.1, 0.1)].
    @raise Invalid_argument unless all lie in (0, 1). *)

val default : t

val gamma : t -> float
val eps : t -> float
val delta : t -> float

val third_eps : t -> t
(** [ε := ε/3] — the sub-call parameter of Algorithms 1 and 2, so three
    compounding approximations stay within [(1+ε)]. *)

val with_delta : t -> float -> t

val pp : Format.formatter -> t -> unit
