(** Shape reconstruction from uniform samples (§4.3: Lemma 4.1,
    Algorithms 3–5, Theorem 4.4).

    An (ε,δ)-estimator for a relation [S] outputs a set [Ŝ] with
    [μ(S Δ Ŝ) <= ε·μ(S)] with probability [1−δ], using only point
    membership — no quantifier elimination.  For convex [S] the convex
    hull of [N] uniform samples works (Affentranger–Wieacker rate);
    positive existential queries are reconstructed as unions of such
    hulls, one per disjunct. *)

type t = {
  dim : int;
  hulls : Scdb_hull.Hull_lp.t list; (* one per reconstructed disjunct *)
}
(** The reconstructed set: the union of the hulls. *)

val mem : t -> Vec.t -> bool

val samples_for_lemma41 : eps:float -> delta:float -> dim:int -> vertices:int -> float
(** The sample count of Lemma 4.1,
    [N = O(4r²d² / (ε⁴ d^{2d−2}) · ln(1/δ))] — returned as a float
    because the constant-free bound is astronomically conservative;
    experiments size N empirically and verify the rate instead. *)

val convex_hull_estimate : Rng.t -> Observable.t -> n:int -> t
(** Algorithm 3: [n] uniform samples, hull kept implicit (LP
    membership).  Use [to_relation_2d] to materialize in the plane. *)

val union_estimate : Rng.t -> Observable.t list -> n:int -> t
(** Algorithms 4–5: one hull per observable piece (each piece must be
    convex for the guarantee to hold — e.g. projections of convex
    relations, intersections of convex relations), [n] samples each. *)

val to_relation_2d : t -> Relation.t option
(** Materialize a planar reconstruction as a generalized relation
    (union of one generalized tuple per hull).  [None] if any hull is
    degenerate or the dimension is not 2. *)

val symmetric_difference_mc :
  Rng.t -> ?samples:int -> t -> (Vec.t -> bool) -> lo:Vec.t -> hi:Vec.t -> float
(** Monte-Carlo volume of [t Δ reference] inside a box — the quality
    measure [μ(S Δ Ŝ)] of Definition 4.1. *)
