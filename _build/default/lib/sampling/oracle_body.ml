type t = {
  dim : int;
  mem : Vec.t -> bool;
  inner : Vec.t * float;
  outer : float;
}

let make ~dim ~mem ~inner ~outer =
  if snd inner <= 0.0 || outer < snd inner then invalid_arg "Oracle_body.make: bad witnesses";
  { dim; mem; inner; outer }

let ellipsoid a =
  match Mat.cholesky a with
  | None -> None
  | Some _ ->
      let d = Array.length a in
      let mem x = Vec.dot x (Mat.mul_vec a x) <= 1.0 in
      (* eigenvalue bounds via the Rayleigh quotient on the axes would be
         loose; use trace/det-free bounds: the inner radius is
         1/sqrt(λmax) >= 1/sqrt(trace), the outer is 1/sqrt(λmin) and
         λmin >= det / (trace/(d-1))^{d-1} — cheaper: power iteration. *)
      let power m =
        let v = ref (Vec.init d (fun i -> 1.0 /. sqrt (float_of_int d +. float_of_int i))) in
        for _ = 1 to 60 do
          let w = Mat.mul_vec m !v in
          let n = Vec.norm w in
          if n > 0.0 then v := Vec.scale (1.0 /. n) w
        done;
        Vec.dot !v (Mat.mul_vec m !v)
      in
      let lmax = power a in
      let lmin =
        match Mat.inv a with Some ai -> 1.0 /. power ai | None -> 0.0
      in
      if lmin <= 0.0 then None
      else
        Some
          {
            dim = d;
            mem;
            inner = (Vec.create d, 0.99 /. sqrt lmax);
            outer = 1.01 /. sqrt lmin;
          }

let chord body x dir =
  if not (body.mem x) then None
  else begin
    (* Find the boundary crossing along ±dir: double until outside
       (bounded by the outer radius), then bisect. *)
    let extent sign =
      let step = ref (0.25 *. snd body.inner) in
      let t = ref 0.0 in
      let guard = 2.2 *. body.outer in
      while body.mem (Vec.axpy (sign *. (!t +. !step)) dir x) && !t +. !step < guard do
        t := !t +. !step;
        step := !step *. 2.0
      done;
      (* boundary in ( t, t+step ] *)
      let lo = ref !t and hi = ref (Float.min (!t +. !step) guard) in
      for _ = 1 to 24 do
        let mid = 0.5 *. (!lo +. !hi) in
        if body.mem (Vec.axpy (sign *. mid) dir x) then lo := mid else hi := mid
      done;
      !lo
    in
    Some (-.extent (-1.0), extent 1.0)
  end

let sample rng body ~start ~steps = Hit_and_run.sample rng ~chord:(chord body) ~start ~steps

let estimate_volume rng ?(samples_per_phase = 1500) ?steps body =
  let d = body.dim in
  let steps = match steps with Some s -> s | None -> Hit_and_run.default_steps ~dim:d in
  let centre, r0 = body.inner in
  let rq = body.outer in
  let q =
    if rq <= r0 then 0
    else int_of_float (ceil (float_of_int d *. (log (rq /. r0) /. log 2.0)))
  in
  let radius i = r0 *. (2.0 ** (float_of_int i /. float_of_int d)) in
  let product = ref 1.0 in
  let start = ref (Vec.copy centre) in
  for i = 1 to q do
    let r_small = radius (i - 1) and r_big = Float.min rq (radius i) in
    let phase_chord =
      Hit_and_run.intersect_chords [ chord body; Hit_and_run.ball_chord ~centre ~radius:r_big ]
    in
    let hits = ref 0 in
    for _ = 1 to samples_per_phase do
      let p = Hit_and_run.sample rng ~chord:phase_chord ~start:!start ~steps in
      start := p;
      if Vec.dist p centre <= r_small then incr hits
    done;
    let ratio = Float.max (float_of_int !hits /. float_of_int samples_per_phase) 1e-9 in
    product := !product /. ratio
  done;
  Volume.ball_volume ~dim:d ~radius:r0 *. !product
