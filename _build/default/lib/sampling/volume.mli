(** Multi-phase volume estimation for convex bodies (Dyer–Frieze–Kannan).

    Round the body, slice it by a geometric sequence of concentric balls
    [B(r₀) ⊆ … ⊆ B(r_q)] with bounded volume ratios, estimate each
    ratio [vol(Kᵢ₋₁)/vol(Kᵢ)] by sampling from the larger body, and
    telescope from the known inner-ball volume.  The paper's (ε,δ)
    guarantee comes from Chernoff bounds on each phase. *)

type sampler = Grid_walk | Hit_and_run
(** Which sampler drives the phases: the paper's lattice walk, or the
    continuous hit-and-run (default; same stationary law, cheaper). *)

type budget =
  | Rigorous
      (** Sample counts derived from (ε,δ) through {!Chernoff}; can be
          expensive for small ε. *)
  | Practical of int  (** Fixed number of samples per phase. *)

type report = {
  volume : float;
  phases : int;
  samples_per_phase : int;
  walk_steps : int;
  rounding_ratio : float; (* r_sup / r_inf achieved by rounding *)
}

val ball_volume : dim:int -> radius:float -> float
(** Closed-form Euclidean ball volume (recursion
    [V_d = V_{d−2}·2πr²/d]). *)

val estimate :
  Rng.t ->
  ?eps:float ->
  ?delta:float ->
  ?sampler:sampler ->
  ?budget:budget ->
  ?walk_steps:int ->
  ?rounding_rounds:int ->
  Polytope.t ->
  report option
(** Estimated volume of a bounded convex polytope; [None] when the body
    is empty or unbounded.  Defaults: [eps=0.25], [delta=0.25],
    hit-and-run, rigorous budget.  [rounding_rounds] is forwarded to
    {!Rounding.round} (0 disables isotropic whitening — ablation E14). *)
