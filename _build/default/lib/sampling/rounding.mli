(** Well-rounding of convex bodies (the DFK preprocessing step).

    The paper assumes the body is brought to a position where it
    contains the unit ball and fits in a ball of radius [√(d(d+1))]
    before the walk starts.  We achieve a practical equivalent by
    iterated isotropic rescaling: sample with hit-and-run, whiten with
    the inverse Cholesky factor of the sample covariance, recentre on
    the Chebyshev centre, and finally scale the inscribed ball to
    radius 1. *)

type t = {
  transform : Affine.t; (* maps the original body onto [rounded] *)
  rounded : Polytope.t;
  centre : Vec.t; (* Chebyshev centre of [rounded]: the origin *)
  r_inf : float; (* inscribed-ball radius of [rounded] (≈ 1) *)
  r_sup : float; (* enclosing-ball radius of [rounded] *)
}

val round : Rng.t -> ?rounds:int -> ?samples_per_round:int -> Polytope.t -> t option
(** [None] when the body is empty or unbounded.  Defaults: 2 rounds of
    [16·d] samples.  [volume_scale transform] converts volumes back:
    [vol(body) = vol(rounded) / Affine.volume_scale transform]. *)

val aspect_ratio : t -> float
(** [r_sup / r_inf] — the sandwiching quality actually achieved. *)
