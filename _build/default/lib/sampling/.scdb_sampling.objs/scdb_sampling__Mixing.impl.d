lib/sampling/mixing.ml: Array Float Stdlib Vec
