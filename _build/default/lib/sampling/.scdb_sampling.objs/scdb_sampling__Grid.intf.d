lib/sampling/grid.mli: Vec
