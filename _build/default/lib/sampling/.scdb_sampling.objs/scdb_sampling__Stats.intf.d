lib/sampling/stats.mli:
