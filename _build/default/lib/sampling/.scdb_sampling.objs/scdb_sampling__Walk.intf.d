lib/sampling/walk.mli: Grid Polytope Rng Vec
