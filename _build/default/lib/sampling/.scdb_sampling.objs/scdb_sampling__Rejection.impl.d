lib/sampling/rejection.ml: List Rng
