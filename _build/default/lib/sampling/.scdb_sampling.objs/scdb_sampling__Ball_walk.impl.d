lib/sampling/ball_walk.ml: Polytope Rng Vec
