lib/sampling/volume.ml: Affine Chernoff Float Grid Hit_and_run Polytope Rounding Vec Walk
