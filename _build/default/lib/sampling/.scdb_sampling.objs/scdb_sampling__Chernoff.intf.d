lib/sampling/chernoff.mli: Scdb_rng
