lib/sampling/walk.ml: Array Float Grid Polytope Rng Vec
