lib/sampling/volume.mli: Polytope Rng
