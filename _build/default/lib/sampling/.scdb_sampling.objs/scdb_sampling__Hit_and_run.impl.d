lib/sampling/hit_and_run.ml: Float Polytope Rng Vec
