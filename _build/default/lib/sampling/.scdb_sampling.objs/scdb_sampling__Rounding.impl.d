lib/sampling/rounding.ml: Affine Array Hit_and_run List Mat Option Polytope Vec
