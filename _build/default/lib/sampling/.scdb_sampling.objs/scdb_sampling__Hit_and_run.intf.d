lib/sampling/hit_and_run.mli: Polytope Rng Vec
