lib/sampling/ball_walk.mli: Polytope Rng Vec
