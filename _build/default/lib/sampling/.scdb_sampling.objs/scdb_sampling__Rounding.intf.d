lib/sampling/rounding.mli: Affine Polytope Rng Vec
