lib/sampling/grid.ml: Array Float Fun List Vec
