lib/sampling/rejection.mli: Rng Vec
