lib/sampling/mixing.mli: Rng Vec
