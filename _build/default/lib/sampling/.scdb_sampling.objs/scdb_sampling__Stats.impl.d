lib/sampling/stats.ml: Array Float Stdlib
