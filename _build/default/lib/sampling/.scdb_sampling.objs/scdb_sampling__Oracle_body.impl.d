lib/sampling/oracle_body.ml: Array Float Hit_and_run Mat Vec Volume
