lib/sampling/oracle_body.mli: Hit_and_run Mat Rng Vec
