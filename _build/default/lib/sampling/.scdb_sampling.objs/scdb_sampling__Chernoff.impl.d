lib/sampling/chernoff.ml: Array Float Stdlib
