type t = { mutable n : int; mutable mean : float; mutable m2 : float }

let create () = { n = 0; mean = 0.0; m2 = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean))

let count t = t.n

let mean t =
  if t.n = 0 then invalid_arg "Stats.mean: empty accumulator";
  t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)

(* Inverse standard-normal CDF (Acklam's rational approximation),
   accurate to ~1e-9 — plenty for confidence intervals. *)
let inv_normal_cdf p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Stats.inv_normal_cdf";
  let a = [| -39.69683028665376; 220.9460984245205; -275.9285104469687; 138.3577518672690; -30.66479806614716; 2.506628277459239 |] in
  let b = [| -54.47609879822406; 161.5858368580409; -155.6989798598866; 66.80131188771972; -13.28068155288572 |] in
  let c = [| -0.007784894002430293; -0.3223964580411365; -2.400758277161838; -2.549732539343734; 4.374664141464968; 2.938163982698783 |] in
  let d = [| 0.007784695709041462; 0.3224671290700398; 2.445134137142996; 3.754408661907416 |] in
  let p_low = 0.02425 in
  if p < p_low then begin
    let q = sqrt (-2.0 *. log p) in
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
    +. c.(5)
    |> fun num -> num /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  end
  else if p <= 1.0 -. p_low then begin
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5)
    |> fun num ->
    num *. q /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
  end
  else begin
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  end

let confidence_interval t ~confidence =
  if confidence <= 0.0 || confidence >= 1.0 then invalid_arg "Stats.confidence_interval";
  let m = mean t in
  if t.n < 2 then (m, m)
  else begin
    let z = inv_normal_cdf (1.0 -. ((1.0 -. confidence) /. 2.0)) in
    let half = z *. stddev t /. sqrt (float_of_int t.n) in
    (m -. half, m +. half)
  end

let hoeffding_radius ~n ~range ~delta =
  if n <= 0 || range < 0.0 || delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Stats.hoeffding_radius";
  range *. sqrt (log (2.0 /. delta) /. (2.0 *. float_of_int n))

let quantile data q =
  let n = Array.length data in
  if n = 0 then invalid_arg "Stats.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: out of range";
  let sorted = Array.copy data in
  Array.sort Float.compare sorted;
  let idx = Stdlib.min (n - 1) (int_of_float (Float.round (q *. float_of_int (n - 1)))) in
  sorted.(idx)

let merge a b =
  if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2 }
  else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2 }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n) in
    { n; mean; m2 }
  end
