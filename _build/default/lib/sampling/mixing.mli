(** Mixing diagnostics for the walk samplers.

    The paper quotes worst-case mixing bounds (O(d¹⁹), improved to
    O*(d⁵)); in practice one verifies mixing empirically.  These are
    the standard MCMC diagnostics: lagged autocorrelation of a scalar
    functional along the chain, the integrated autocorrelation time,
    and the effective sample size. *)

val autocorrelation : float array -> lag:int -> float
(** Sample autocorrelation of the series at the given lag; 0 when the
    series is too short or constant. *)

val integrated_autocorrelation_time : ?max_lag:int -> float array -> float
(** [τ = 1 + 2·Σ ρ(k)] with the customary cut at the first negative
    autocorrelation (Geyer's initial positive sequence, simplified).
    At least 1. *)

val effective_sample_size : ?max_lag:int -> float array -> float
(** [n/τ]. *)

val trace :
  Rng.t -> steps:int -> thin:int -> init:Vec.t ->
  next:(Rng.t -> Vec.t -> Vec.t) -> f:(Vec.t -> float) -> float array
(** Drive a chain for [steps] transitions recording [f state] every
    [thin] steps — the input to the estimators above. *)
