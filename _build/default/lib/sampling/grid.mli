(** γ-grids: the discretization of Definition 2.2.

    A grid of step [p] is the lattice [p·Z^d]; the graph induced on a
    relation [S] has vertex set [G_p ∩ S] and edges between lattice
    neighbours at distance [p].  The paper requires [p] polynomial in
    [γ] and [1/d] so that [|V|·p^d] approximates the volume within
    ratio [1+γ]. *)

type t = private { step : float; dim : int }

val make : step:float -> dim:int -> t
(** @raise Invalid_argument on non-positive step. *)

val step_for : gamma:float -> dim:int -> scale:float -> t
(** The paper's schedule [p = O(γ/d^{3/2})], scaled to a body of
    characteristic size [scale] (e.g. its enclosing radius). *)

val to_point : t -> int array -> Vec.t
(** Lattice coordinates to a point of [R^d]. *)

val of_point : t -> Vec.t -> int array
(** Nearest lattice vertex. *)

val round_to_grid : t -> Vec.t -> Vec.t
(** [to_point t (of_point t x)]. *)

val neighbours : t -> int array -> int array list
(** The [2d] lattice neighbours. *)

val cell_volume : t -> float
(** [p^d]. *)

val count_in_ball : t -> float -> int
(** Number of lattice points in the centred ball of the given radius —
    exact in small dimension, used by tests. Cost is O((2r/p)^d). *)
