(** Convex bodies given only by a membership oracle (§5 of the paper).

    The Dyer–Frieze–Kannan generator needs nothing but a membership
    oracle, so it extends beyond linear constraints: any convex set
    defined by polynomial constraints (FO+POLY generalized tuples that
    happen to be convex) is handled by the same machinery.  Chords are
    recovered from the oracle by exponential search plus bisection,
    after which hit-and-run and the multi-phase estimator run
    unchanged. *)

type t = {
  dim : int;
  mem : Vec.t -> bool; (* must describe a convex set *)
  inner : Vec.t * float; (* a point and radius with B(c, r) ⊆ body *)
  outer : float; (* body ⊆ B(c, outer) *)
}

val make : dim:int -> mem:(Vec.t -> bool) -> inner:Vec.t * float -> outer:float -> t
(** Well-boundedness witnesses are required, exactly as in the paper. *)

val ellipsoid : Mat.t -> t option
(** The convex FO+POLY body [{x | xᵀ A x <= 1}] for symmetric positive
    definite [A] — the running example of §5.  [None] if [A] is not
    positive definite.  Exact volume: [ball_volume / sqrt(det A)]. *)

val chord : t -> Hit_and_run.chord
(** Oracle chord by doubling + bisection (24 oracle calls per end). *)

val sample : Rng.t -> t -> start:Vec.t -> steps:int -> Vec.t
(** Hit-and-run on the oracle body. *)

val estimate_volume :
  Rng.t -> ?samples_per_phase:int -> ?steps:int -> t -> float
(** Multi-phase estimator over the oracle body: concentric-ball phases
    from the inner witness to the outer radius, ratios by sampling —
    the DFK scheme verbatim, against the oracle. *)
