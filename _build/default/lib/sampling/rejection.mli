(** Naive rejection sampling from a bounding box.

    The baseline of experiment E3: exact uniformity, but the acceptance
    probability is the volume ratio body/box, which collapses like
    [1/d^{Θ(d)}] for round bodies — the paper's motivating example for
    why the random-walk machinery is necessary at all. *)

type stats = { attempts : int; accepted : int }

val sample :
  Rng.t -> lo:Vec.t -> hi:Vec.t -> mem:(Vec.t -> bool) -> max_attempts:int -> (Vec.t * int) option
(** One accepted point with the number of attempts used, or [None] if
    the budget is exhausted. *)

val sample_many :
  Rng.t -> lo:Vec.t -> hi:Vec.t -> mem:(Vec.t -> bool) -> count:int -> max_attempts:int ->
  Vec.t list * stats
(** Up to [count] accepted points within a total attempt budget. *)

val acceptance_rate : stats -> float
