type stats = { attempts : int; accepted : int }

let sample rng ~lo ~hi ~mem ~max_attempts =
  let rec go n =
    if n >= max_attempts then None
    else begin
      let x = Rng.in_box rng lo hi in
      if mem x then Some (x, n + 1) else go (n + 1)
    end
  in
  go 0

let sample_many rng ~lo ~hi ~mem ~count ~max_attempts =
  let rec go acc accepted attempts =
    if accepted >= count || attempts >= max_attempts then
      (List.rev acc, { attempts; accepted })
    else begin
      let x = Rng.in_box rng lo hi in
      if mem x then go (x :: acc) (accepted + 1) (attempts + 1)
      else go acc accepted (attempts + 1)
    end
  in
  go [] 0 0

let acceptance_rate s = if s.attempts = 0 then 0.0 else float_of_int s.accepted /. float_of_int s.attempts
