let mean xs = Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let autocorrelation xs ~lag =
  let n = Array.length xs in
  if lag >= n || n < 2 then 0.0
  else begin
    let m = mean xs in
    let var = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    (* Relative threshold: a numerically-constant series has variance at
       the level of rounding noise, which must read as "no signal". *)
    if var <= 1e-20 *. float_of_int n *. (1.0 +. (m *. m)) then 0.0
    else begin
      let cov = ref 0.0 in
      for i = 0 to n - lag - 1 do
        cov := !cov +. ((xs.(i) -. m) *. (xs.(i + lag) -. m))
      done;
      !cov /. var
    end
  end

let integrated_autocorrelation_time ?max_lag xs =
  let n = Array.length xs in
  let max_lag = match max_lag with Some l -> l | None -> Stdlib.min (n / 4) 200 in
  let tau = ref 1.0 in
  (try
     for lag = 1 to max_lag do
       let rho = autocorrelation xs ~lag in
       if rho <= 0.0 then raise Exit;
       tau := !tau +. (2.0 *. rho)
     done
   with Exit -> ());
  Float.max 1.0 !tau

let effective_sample_size ?max_lag xs =
  float_of_int (Array.length xs) /. integrated_autocorrelation_time ?max_lag xs

let trace rng ~steps ~thin ~init ~next ~f =
  if thin <= 0 then invalid_arg "Mixing.trace: thin must be positive";
  let out = Array.make (steps / thin) 0.0 in
  let state = ref (Vec.copy init) in
  for i = 1 to steps do
    state := next rng !state;
    if i mod thin = 0 && (i / thin) - 1 < Array.length out then out.((i / thin) - 1) <- f !state
  done;
  out
