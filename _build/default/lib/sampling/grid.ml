type t = { step : float; dim : int }

let make ~step ~dim =
  if step <= 0.0 then invalid_arg "Grid.make: non-positive step";
  { step; dim }

let step_for ~gamma ~dim ~scale =
  let d = float_of_int dim in
  make ~step:(gamma *. scale /. (d ** 1.5)) ~dim

let to_point t idx = Vec.init t.dim (fun i -> float_of_int idx.(i) *. t.step)

let of_point t x = Array.init t.dim (fun i -> int_of_float (Float.round (x.(i) /. t.step)))

let round_to_grid t x = to_point t (of_point t x)

let neighbours t idx =
  List.concat_map
    (fun i ->
      let up = Array.copy idx and down = Array.copy idx in
      up.(i) <- up.(i) + 1;
      down.(i) <- down.(i) - 1;
      [ up; down ])
    (List.init t.dim Fun.id)

let cell_volume t = t.step ** float_of_int t.dim

let count_in_ball t radius =
  let k = int_of_float (Float.floor (radius /. t.step)) in
  let count = ref 0 in
  let idx = Array.make t.dim 0 in
  let rec scan coord =
    if coord = t.dim then begin
      if Vec.norm (to_point t idx) <= radius then incr count
    end
    else
      for v = -k to k do
        idx.(coord) <- v;
        scan (coord + 1)
      done
  in
  scan 0;
  !count
