(** Streaming statistics and confidence intervals for estimator output.

    Welford's online mean/variance plus normal-approximation and
    Hoeffding intervals — what a user of the estimators needs to turn
    raw sample streams into "volume = v ± w at 95%" statements. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** @raise Invalid_argument on an empty accumulator. *)

val variance : t -> float
(** Unbiased sample variance; 0 for fewer than two observations. *)

val stddev : t -> float

val confidence_interval : t -> confidence:float -> float * float
(** Normal-approximation interval for the mean at the given confidence
    level in (0,1) (e.g. 0.95).  @raise Invalid_argument on empty input
    or a level outside (0,1). *)

val hoeffding_radius : n:int -> range:float -> delta:float -> float
(** Distribution-free half-width: [range·sqrt(ln(2/δ)/(2n))] for
    observations confined to an interval of length [range]. *)

val quantile : float array -> float -> float
(** Empirical quantile (nearest-rank) of a non-empty array; the array is
    not modified. @raise Invalid_argument on empty input or q outside
    [0,1]. *)

val merge : t -> t -> t
(** Combine two accumulators (parallel Welford). *)
