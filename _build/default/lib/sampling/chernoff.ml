let samples_for_additive ~eps ~delta =
  if eps <= 0.0 || delta <= 0.0 then invalid_arg "Chernoff.samples_for_additive";
  int_of_float (ceil (log (2.0 /. delta) /. (2.0 *. eps *. eps)))

let samples_for_ratio ~eps ~delta ~p_lower =
  if eps <= 0.0 || delta <= 0.0 || p_lower <= 0.0 then invalid_arg "Chernoff.samples_for_ratio";
  int_of_float (ceil (3.0 *. log (2.0 /. delta) /. (eps *. eps *. p_lower)))

let estimate_fraction rng ~samples f =
  if samples <= 0 then invalid_arg "Chernoff.estimate_fraction";
  let hits = ref 0 in
  for _ = 1 to samples do
    if f rng then incr hits
  done;
  float_of_int !hits /. float_of_int samples

let estimate_fraction_adaptive rng ~eps ~delta ~p_floor ?(max_samples = 200_000) f =
  let count n =
    let hits = ref 0 in
    for _ = 1 to n do
      if f rng then incr hits
    done;
    !hits
  in
  let pilot = 400 in
  let pilot_hits = count pilot in
  if pilot_hits = 0 then begin
    (* No signal yet: spend the floor-based budget before concluding 0. *)
    let n = Stdlib.min max_samples (samples_for_ratio ~eps ~delta ~p_lower:p_floor) in
    let hits = count n in
    float_of_int hits /. float_of_int n
  end
  else begin
    let p_hat = float_of_int pilot_hits /. float_of_int pilot in
    let n = Stdlib.min max_samples (samples_for_ratio ~eps ~delta ~p_lower:(p_hat /. 2.0)) in
    let hits = count n in
    float_of_int hits /. float_of_int n
  end

let median_of_means rng ~blocks ~block_size f =
  if blocks <= 0 || block_size <= 0 then invalid_arg "Chernoff.median_of_means";
  let means =
    Array.init blocks (fun _ ->
        let s = ref 0.0 in
        for _ = 1 to block_size do
          s := !s +. f rng
        done;
        !s /. float_of_int block_size)
  in
  Array.sort Float.compare means;
  let n = blocks in
  if n mod 2 = 1 then means.(n / 2) else (means.((n / 2) - 1) +. means.(n / 2)) /. 2.0

let repeats_for_confidence ~delta =
  if delta <= 0.0 || delta >= 1.0 then invalid_arg "Chernoff.repeats_for_confidence";
  int_of_float (ceil (4.0 *. log (1.0 /. delta)))
