(** Exact linear programming over the rationals.

    Same algorithm as the float instance but over {!Scdb_num.Rational},
    so feasibility/optimality answers are certified.  Used by
    Fourier–Motzkin redundancy removal and by ground-truth checks in
    tests. *)

open Scdb_num

type outcome =
  | Infeasible
  | Unbounded
  | Optimal of { value : Rational.t; point : Rational.t array }

val maximize : a:Rational.t array array -> b:Rational.t array -> c:Rational.t array -> outcome
(** Maximize [c·x] over [{x | A x <= b}] with free variables. *)

val feasible_point : a:Rational.t array array -> b:Rational.t array -> Rational.t array option

val is_feasible : a:Rational.t array array -> b:Rational.t array -> bool

val implied : a:Rational.t array array -> b:Rational.t array -> row:Rational.t array -> rhs:Rational.t -> bool
(** [implied ~a ~b ~row ~rhs] holds iff [row·x <= rhs] is satisfied by
    every solution of [A x <= b] (decided by maximizing [row·x]).
    An infeasible system implies everything. *)
