open Scdb_num

module Rational_field = struct
  include Rational

  let is_zero = Rational.is_zero
end

module S = Simplex.Make (Rational_field)

type outcome =
  | Infeasible
  | Unbounded
  | Optimal of { value : Rational.t; point : Rational.t array }

let maximize ~a ~b ~c =
  match S.solve_free ~a ~b ~c with
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded
  | Simplex.Optimal { value; point } -> Optimal { value; point }

let feasible_point ~a ~b = S.feasible ~a ~b
let is_feasible ~a ~b = Option.is_some (feasible_point ~a ~b)

let implied ~a ~b ~row ~rhs =
  match maximize ~a ~b ~c:row with
  | Infeasible -> true
  | Unbounded -> false
  | Optimal { value; _ } -> Rational.compare value rhs <= 0
