lib/lp/lp.ml: Array Float Format List Mat Option Simplex Vec
