lib/lp/exact_simplex.ml: Option Rational Scdb_num Simplex
