lib/lp/simplex.mli: Format
