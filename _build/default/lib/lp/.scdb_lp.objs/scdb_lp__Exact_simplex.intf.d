lib/lp/exact_simplex.mli: Rational Scdb_num
