lib/lp/lp.mli: Mat Vec
