module Float_field = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -.x
  let compare = Float.compare
  let of_int = float_of_int
  let is_zero x = Float.abs x < 1e-9
  let pp fmt x = Format.fprintf fmt "%g" x
end

module S = Simplex.Make (Float_field)

type outcome = Infeasible | Unbounded | Optimal of { value : float; point : Vec.t }

let lift = function
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded
  | Simplex.Optimal { value; point } -> Optimal { value; point }

let maximize ~a ~b ~c = lift (S.solve_free ~a ~b ~c)

let minimize ~a ~b ~c =
  match maximize ~a ~b ~c:(Vec.neg c) with
  | Optimal { value; point } -> Optimal { value = -.value; point }
  | other -> other

let feasible_point ~a ~b = S.feasible ~a ~b

let bound ~a ~b ~dir =
  match maximize ~a ~b ~c:dir with Optimal { value; _ } -> Some value | _ -> None

let chebyshev ~a ~b =
  let m, d = Mat.dims a in
  if m = 0 then None
  else begin
    (* Variables (x, r): maximize r s.t. a_i·x + ||a_i|| r <= b_i, r >= 0. *)
    let rows =
      Array.init (m + 1) (fun i ->
          if i < m then Array.init (d + 1) (fun j -> if j < d then a.(i).(j) else Vec.norm a.(i))
          else Array.init (d + 1) (fun j -> if j < d then 0.0 else -1.0))
    in
    let rhs = Array.init (m + 1) (fun i -> if i < m then b.(i) else 0.0) in
    let c = Vec.init (d + 1) (fun j -> if j < d then 0.0 else 1.0) in
    match maximize ~a:rows ~b:rhs ~c with
    | Optimal { value; point } when value >= 0.0 -> Some (Array.sub point 0 d, value)
    | _ -> None
  end

let in_hull ~points x =
  let k = Array.length points in
  if k = 0 then false
  else begin
    let d = Vec.dim x in
    (* Feasibility of {λ >= 0, Σλ = 1, Σ λ_i p_i = x} written as
       inequalities in the free-variable solver: we encode equalities as
       pairs of inequalities and non-negativity as -λ_i <= 0. *)
    let rows = ref [] and rhs = ref [] in
    let push row r =
      rows := row :: !rows;
      rhs := r :: !rhs
    in
    (* coordinate equalities *)
    for coord = 0 to d - 1 do
      let row = Array.init k (fun i -> points.(i).(coord)) in
      push row x.(coord);
      push (Vec.neg row) (-.x.(coord))
    done;
    (* Σλ = 1 *)
    let ones = Array.make k 1.0 in
    push ones 1.0;
    push (Vec.neg ones) (-1.0);
    (* λ >= 0 *)
    for i = 0 to k - 1 do
      push (Vec.scale (-1.0) (Vec.basis k i)) 0.0
    done;
    let a = Array.of_list (List.rev !rows) and b = Array.of_list (List.rev !rhs) in
    Option.is_some (feasible_point ~a ~b)
  end
