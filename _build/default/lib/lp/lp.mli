(** Floating-point linear programming over systems [A x <= b].

    Convenience layer over {!Simplex} used throughout the geometry code:
    feasibility, directional bounds, Chebyshev centres and convex-hull
    membership. *)

type outcome = Infeasible | Unbounded | Optimal of { value : float; point : Vec.t }

val maximize : a:Mat.t -> b:Vec.t -> c:Vec.t -> outcome
(** Maximize [c·x] over [{x | A x <= b}] with free variables. *)

val minimize : a:Mat.t -> b:Vec.t -> c:Vec.t -> outcome

val feasible_point : a:Mat.t -> b:Vec.t -> Vec.t option

val bound : a:Mat.t -> b:Vec.t -> dir:Vec.t -> float option
(** [bound ~a ~b ~dir] is [max dir·x] over the system, [None] when the
    system is infeasible or unbounded in that direction. *)

val chebyshev : a:Mat.t -> b:Vec.t -> (Vec.t * float) option
(** Centre and radius of a largest inscribed ball of [{x | A x <= b}];
    [None] if infeasible, radius [infinity] flagged as [None] too (the
    set must be bounded to have a finite Chebyshev ball). *)

val in_hull : points:Vec.t array -> Vec.t -> bool
(** Membership of a point in the convex hull of finitely many points,
    decided by LP feasibility. *)
