(* xoshiro256** 1.0 (Blackman & Vigna), seeded through splitmix64. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Derive a child state by hashing fresh output through splitmix64. *)
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let float t =
  (* Top 53 bits scaled to [0,1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1p-53

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Rejection to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec go () =
    let x = Int64.to_int (Int64.logand (bits64 t) mask) in
    let r = x mod bound in
    if x - r > max_int - bound + 1 then go () else r
  in
  go ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  (* Marsaglia polar method; discard the second deviate to keep the
     generator stateless beyond its stream position. *)
  let rec go () =
    let u = uniform t (-1.0) 1.0 and v = uniform t (-1.0) 1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || s = 0.0 then go () else u *. sqrt (-2.0 *. log s /. s)
  in
  go ()

let gaussian_vec t d = Vec.init d (fun _ -> gaussian t)

let unit_vector t d =
  let rec go () =
    let v = gaussian_vec t d in
    let n = Vec.norm v in
    if n < 1e-12 then go () else Vec.scale (1.0 /. n) v
  in
  go ()

let in_ball t d =
  let dir = unit_vector t d in
  let r = float t ** (1.0 /. float_of_int d) in
  Vec.scale r dir

let in_box t lo hi = Vec.init (Vec.dim lo) (fun i -> uniform t lo.(i) hi.(i))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let categorical t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.categorical: zero total weight";
  let x = float t *. total in
  let acc = ref 0.0 and chosen = ref (Array.length weights - 1) in
  (try
     Array.iteri
       (fun i w ->
         acc := !acc +. w;
         if x < !acc then begin
           chosen := i;
           raise Exit
         end)
       weights
   with Exit -> ());
  !chosen
