lib/rng/rng.mli: Vec
