(* A literal regeneration of the paper's Figure 1, as an SVG.

   The figure shows a convex set S (here the triangle with vertices
   (0,0), (1,0), (0,1)) cut into cylinders over the projection axis:
   projecting uniform samples of S concentrates where the fibers are
   long.  We draw the triangle, a uniform sample cloud inside it, and
   two strips of projected points below the axis: the naive projection
   (biased) and Algorithm 2's compensated projection (uniform).

   Run with:  dune exec examples/figure1.exe   (writes figure1.svg) *)

open Scdb_gis
module P = Scdb_polytope.Polytope
module Rng = Scdb_rng.Rng

let () =
  let rng = Rng.create 2000 in
  let tri = P.simplex 2 in
  let cfg = Convex_obs.practical_config in
  let params = Params.make ~gamma:0.05 ~eps:0.15 ~delta:0.1 () in
  let n = 250 in

  let source = Option.get (Convex_obs.of_polytope ~config:cfg rng tri) in
  let cloud = Observable.sample_many source rng params ~n in

  let naive =
    List.filter_map
      (fun _ -> Project.naive_projection_sample rng source ~keep:[ 0 ] params)
      (List.init n Fun.id)
  in
  let compensated_obs = Option.get (Project.project rng tri ~keep:[ 0 ]) in
  let compensated = Observable.sample_many compensated_obs rng params ~n in

  let strip y pts = List.map (fun p -> [| p.(0); y |]) pts in
  let tri_relation =
    Parser.parse_relation ~vars:[ "x"; "y" ] "x >= 0 /\\ y >= 0 /\\ x + y <= 1"
  in
  let doc =
    Svg.render ~width:600 ~height:720 ~lo:[| -0.08; -0.35 |] ~hi:[| 1.08; 1.08 |]
      [
        Svg.relation ~style:{ Svg.default_style with Svg.fill = "#eef3fb" } tri_relation;
        Svg.points ~colour:"#5b8ac2" ~radius:1.6 cloud;
        Svg.points ~colour:"#c1440e" ~radius:1.6 (strip (-0.12) naive);
        Svg.points ~colour:"#2a7d2e" ~radius:1.6 (strip (-0.24) compensated);
      ]
  in
  Svg.write_file "figure1.svg" doc;
  Printf.printf
    "wrote figure1.svg:\n\
    \  blue   — %d uniform samples of S (triangle)\n\
    \  orange — naive projection onto x (dense near 0: Fig. 1's bias)\n\
    \  green  — Algorithm 2 compensated projection (uniform)\n"
    n;
  (* quantify the bias for the console *)
  let mean pts = List.fold_left (fun a p -> a +. p.(0)) 0.0 pts /. float_of_int (List.length pts) in
  Printf.printf "mean x: naive %.3f (biased toward 1/3), compensated %.3f (1/2 expected)\n"
    (mean naive) (mean compensated)
