examples/gis_landuse.mli:
