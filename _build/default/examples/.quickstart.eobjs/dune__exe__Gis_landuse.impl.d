examples/gis_landuse.ml: Aggregate Array Convex_obs Eval Format Instance List Observable Params Printf Query Rational Relation Scdb_gis Scdb_rng Schema Svg Synth
