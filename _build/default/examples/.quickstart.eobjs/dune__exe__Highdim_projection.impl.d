examples/highdim_projection.ml: Array Atom List Observable Params Printf Project Rational Relation Scdb_hull Scdb_polytope Scdb_qe Scdb_rng Term Unix
