examples/sat_geometry.ml: Array Convex_obs Inter List Observable Params Printf Rational Sat_encode Scdb_rng String
