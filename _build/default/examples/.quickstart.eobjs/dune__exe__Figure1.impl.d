examples/figure1.ml: Array Convex_obs Fun List Observable Option Params Parser Printf Project Scdb_gis Scdb_polytope Scdb_rng Svg
