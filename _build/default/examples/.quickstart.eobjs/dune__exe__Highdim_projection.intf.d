examples/highdim_projection.mli:
