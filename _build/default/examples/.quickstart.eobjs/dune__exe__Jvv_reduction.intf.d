examples/jvv_reduction.mli:
