examples/jvv_reduction.ml: Array Bisection_gen List Printf Scdb_polytope Scdb_rng Scdb_sampling Stdlib
