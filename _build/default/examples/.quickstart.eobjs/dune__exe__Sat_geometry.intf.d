examples/sat_geometry.mli:
