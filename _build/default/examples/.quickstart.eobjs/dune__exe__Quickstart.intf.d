examples/quickstart.mli:
