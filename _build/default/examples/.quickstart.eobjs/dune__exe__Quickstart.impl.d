examples/quickstart.ml: Array Convex_obs Float Format List Observable Params Parser Printf Relation Scdb_polytope Scdb_rng
