(* High-dimensional projection: the paper's headline application.

   A convex body lives in R^6; we want the shape of its shadow in the
   plane.  The symbolic route (Fourier-Motzkin) eliminates 4 variables
   with doubly-exponential constraint growth; the paper's route
   (Algorithm 2 + Algorithm 3) samples the projection almost uniformly
   with fiber-volume compensation and takes a convex hull in 2-D.

   Run with:  dune exec examples/highdim_projection.exe *)

module FM = Scdb_qe.Fourier_motzkin
module P = Scdb_polytope.Polytope
module H2 = Scdb_hull.Hull2d
module HL = Scdb_hull.Hull_lp
module Rng = Scdb_rng.Rng

let q = Rational.of_int

let () =
  let rng = Rng.create 11 in
  let d = 6 in
  (* A rotated cross-polytope-flavoured body: cube ∩ random halfspaces. *)
  let tuple =
    let cube = List.concat (Relation.tuples (Relation.cube d (q 2))) in
    let cuts =
      List.init 8 (fun k ->
          let te =
            Term.make (List.init d (fun i -> (i, q (((k + i) mod 5) - 2)))) (q (-1))
          in
          Atom.make te Atom.Le)
    in
    cuts @ cube
  in

  (* Symbolic projection with LP-pruned Fourier-Motzkin. *)
  let eliminated = [ 2; 3; 4; 5 ] in
  let (projected, stats), fm_time =
    let t0 = Unix.gettimeofday () in
    let r = FM.eliminate_vars_tuple_stats ~prune:true eliminated tuple in
    (r, Unix.gettimeofday () -. t0)
  in
  Printf.printf "Fourier-Motzkin: eliminated %d vars in %.2fs, generated %d constraints (max tuple %d)\n"
    (List.length eliminated) fm_time stats.FM.constraints_generated stats.FM.max_tuple_size;
  Printf.printf "projected H-description has %d constraints\n\n" (List.length projected);

  (* Sampling route: Algorithm 2 generator on the projection. *)
  let poly = P.of_tuple ~dim:d tuple in
  let proj_obs =
    match Project.project rng poly ~keep:[ 0; 1 ] with
    | Some o -> o
    | None -> failwith "projection failed (body empty or unbounded?)"
  in
  let params = Params.make ~gamma:0.05 ~eps:0.2 ~delta:0.1 () in
  let t0 = Unix.gettimeofday () in
  let pts = Observable.sample_many proj_obs rng params ~n:150 in
  let sample_time = Unix.gettimeofday () -. t0 in
  Printf.printf "Algorithm 2: 150 compensated samples of the shadow in %.2fs\n" sample_time;

  (* Algorithm 3: hull of the samples = explicit polygon. *)
  let hull = H2.hull pts in
  Printf.printf "Algorithm 3: hull polygon with %d vertices:\n" (List.length hull);
  List.iter (fun v -> Printf.printf "  (%.3f, %.3f)\n" v.(0) v.(1)) hull;

  (* Quality: symmetric difference against the FM ground truth. *)
  let truth = P.of_tuple ~dim:2 projected in
  let implicit = HL.of_points (Array.of_list pts) in
  let sd =
    HL.symmetric_difference_mc rng ~samples:20_000 implicit
      (fun x -> P.mem truth x)
      ~lo:[| -2.0; -2.0 |] ~hi:[| 2.0; 2.0 |]
  in
  let area = Scdb_polytope.Polygon2d.area truth in
  Printf.printf "\nexact shadow area %.3f; hull area %.3f; sym-diff %.3f (relative %.3f)\n"
    area (H2.area pts) sd (sd /. area);
  Printf.printf "volume estimate via fiber identity: %.3f\n"
    (Observable.volume proj_obs rng ~eps:0.25 ~delta:0.25)
