(* Quickstart: define a generalized relation in the FO+LIN text syntax,
   make it observable, draw almost uniform samples and estimate its
   volume — then check against the exact fixed-dimension volume.

   Run with:  dune exec examples/quickstart.exe *)

module Rng = Scdb_rng.Rng
module VE = Scdb_polytope.Volume_exact

let () =
  let rng = Rng.create 42 in

  (* A hexagon-ish convex region of the plane, as a constraint formula. *)
  let region =
    Parser.parse_relation ~vars:[ "x"; "y" ]
      "0 <= x /\\ x <= 4 /\\ 0 <= y /\\ y <= 3 /\\ x + y <= 6 /\\ x - y <= 3"
  in
  Format.printf "Relation:@.%a@.@." Relation.pp region;

  (* Exact ground truth (Lasserre recursion; Lemma 3.1's role). *)
  let exact = VE.float_volume_relation region in
  Printf.printf "exact area                 = %.4f\n" exact;

  (* The Dyer-Frieze-Kannan observable: generator + volume estimator. *)
  let obs =
    match Convex_obs.make ~config:Convex_obs.practical_config rng region with
    | Some o -> o
    | None -> failwith "region is empty or unbounded"
  in
  let estimate = Observable.volume obs rng ~eps:0.1 ~delta:0.1 in
  Printf.printf "estimated area (eps=0.1)   = %.4f   (rel err %.3f)\n" estimate
    (Float.abs (estimate -. exact) /. exact);

  (* Almost uniform samples from the generator of Definition 2.2. *)
  let params = Params.make ~gamma:0.05 ~eps:0.1 ~delta:0.05 () in
  let samples = Observable.sample_many obs rng params ~n:5 in
  Printf.printf "five almost uniform samples:\n";
  List.iter (fun p -> Printf.printf "  (%.3f, %.3f)\n" p.(0) p.(1)) samples;

  (* Empirical mean should approach the centroid. *)
  let n = 2000 in
  let sum = Array.make 2 0.0 in
  List.iter
    (fun p ->
      sum.(0) <- sum.(0) +. p.(0);
      sum.(1) <- sum.(1) +. p.(1))
    (Observable.sample_many obs rng params ~n);
  Printf.printf "empirical mean of %d samples = (%.3f, %.3f)\n" n
    (sum.(0) /. float_of_int n)
    (sum.(1) /. float_of_int n)
