(* The SAT encoding of §4.1.3, as a program.

   Literal x_i  ↦  slab 3/4 < x_i < 1; literal ¬x_i  ↦  slab 0 < x_i < 1/4.
   A clause is a union of slabs; a CNF is the intersection of its clauses.
   The instance is satisfiable iff the intersection has positive volume —
   which is why relative volume estimation of arbitrary intersections is
   NP-hard and Proposition 4.1 must assume poly-relatedness.

   Run with:  dune exec examples/sat_geometry.exe *)

module Rng = Scdb_rng.Rng

let pp_clause c =
  "(" ^ String.concat " ∨ " (List.map (fun l -> if l > 0 then Printf.sprintf "x%d" l else Printf.sprintf "¬x%d" (-l)) c) ^ ")"

let () =
  let rng = Rng.create 3 in
  let nvars = 4 in
  let cnf = [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ]; [ 2; 4 ] ] in
  Printf.printf "CNF over %d variables: %s\n\n" nvars (String.concat " ∧ " (List.map pp_clause cnf));

  (* Exact geometric volume via the 3^n cell decomposition. *)
  let vol = Sat_encode.exact_volume ~nvars cnf in
  let models = Sat_encode.count_models ~nvars cnf in
  Printf.printf "models (brute force)  : %d\n" models;
  Printf.printf "intersection volume   : %s = %.6f\n" (Rational.to_string vol) (Rational.to_float vol);
  Printf.printf "decision by volume    : %s\n\n" (if Rational.sign vol > 0 then "SATISFIABLE" else "UNSATISFIABLE");

  (* The same decision through the paper's machinery: clause regions as
     Union observables, the instance as their Inter. *)
  let cfg = Convex_obs.practical_config in
  let clauses = Sat_encode.clause_observables ~config:cfg rng ~nvars cnf in
  let instance = Inter.inter ~poly_degree:6 clauses in
  let estimate = Observable.volume instance rng ~eps:0.3 ~delta:0.3 in
  Printf.printf "estimated volume (Inter of Unions): %.6f (exact %.6f)\n\n" estimate (Rational.to_float vol);

  (* A satisfying assignment read off a sample point. *)
  let params = Params.make ~gamma:0.05 ~eps:0.2 ~delta:0.1 () in
  (match Observable.sample instance rng params with
  | Some x ->
      let assignment = Array.to_list (Array.mapi (fun i v -> Printf.sprintf "x%d=%b" (i + 1) (v > 0.5)) x) in
      Printf.printf "sample point decodes to: %s\n\n" (String.concat ", " assignment)
  | None -> Printf.printf "generator failed (thin intersection)\n\n");

  (* Volume decay towards unsatisfiability on growing random instances. *)
  Printf.printf "%-8s %-8s %-12s %s\n" "clauses" "models" "volume" "decision";
  List.iter
    (fun m ->
      let cnf = Sat_encode.random_3cnf rng ~nvars:6 ~clauses:m in
      let v = Sat_encode.exact_volume ~nvars:6 cnf in
      Printf.printf "%-8d %-8d %-12.2e %s\n" m
        (Sat_encode.count_models ~nvars:6 cnf)
        (Rational.to_float v)
        (if Rational.sign v > 0 then "sat" else "unsat"))
    [ 5; 10; 20; 30; 40; 50 ]
