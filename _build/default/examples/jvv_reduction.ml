(* The Jerrum–Valiant–Vazirani connection the paper builds on:
   approximate counting and almost uniform generation are equivalent for
   self-reducible problems.  For convex bodies this works geometrically:

   - generation -> counting is the multi-phase DFK volume estimator
     (sample the bigger body, count hits in the smaller);
   - counting -> generation is coordinate bisection: choose each
     half-slab with probability proportional to its estimated volume.

   This example runs both directions on the same triangle and compares
   the resulting samplers and estimators.

   Run with:  dune exec examples/jvv_reduction.exe *)

module P = Scdb_polytope.Polytope
module Vol = Scdb_sampling.Volume
module Stats = Scdb_sampling.Stats
module Rng = Scdb_rng.Rng

let () =
  let rng = Rng.create 99 in
  let tri = P.simplex 2 in

  Printf.printf "Body: the triangle {x >= 0, y >= 0, x + y <= 1}, area 1/2.\n\n";

  (* Direction 1: generation -> counting (the DFK estimator). *)
  let acc = Stats.create () in
  for _ = 1 to 8 do
    match Vol.estimate rng ~budget:(Vol.Practical 1500) tri with
    | Some r -> Stats.add acc r.Vol.volume
    | None -> failwith "estimation failed"
  done;
  let lo, hi = Stats.confidence_interval acc ~confidence:0.95 in
  Printf.printf "generation->counting: volume = %.4f (95%% CI [%.4f, %.4f]) over %d runs\n"
    (Stats.mean acc) lo hi (Stats.count acc);

  (* Direction 2: counting -> generation (JVV bisection). *)
  let n = 300 in
  let pts = Bisection_gen.sample_many rng ~volume_budget:200 ~bisections:5 tri ~n in
  let got = List.length pts in
  let mean_x = List.fold_left (fun a p -> a +. p.(0)) 0.0 pts /. float_of_int got in
  let mean_y = List.fold_left (fun a p -> a +. p.(1)) 0.0 pts /. float_of_int got in
  Printf.printf "counting->generation: %d bisection samples, mean (%.3f, %.3f) vs centroid (0.333, 0.333)\n"
    got mean_x mean_y;

  (* Uniformity check: thirds of the triangle by x should get mass
     proportional to their areas (5/9, 3/9, 1/9 for x-bands of width 1/3). *)
  let bands = Array.make 3 0 in
  List.iter
    (fun p ->
      let b = Stdlib.min 2 (int_of_float (p.(0) *. 3.0)) in
      bands.(b) <- bands.(b) + 1)
    pts;
  Printf.printf "x-band occupancy: %.3f / %.3f / %.3f (expected 0.556 / 0.333 / 0.111)\n"
    (float_of_int bands.(0) /. float_of_int got)
    (float_of_int bands.(1) /. float_of_int got)
    (float_of_int bands.(2) /. float_of_int got);

  Printf.printf
    "\nThe walk-based generator is the efficient direction; the bisection\n\
     generator pays one volume estimation per halving and exists to make\n\
     the JVV equivalence concrete.\n"
