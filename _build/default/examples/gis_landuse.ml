(* GIS scenario: a synthetic land-use constraint database (parcels,
   lakes, a road, 3-D terrain prisms) queried in FO+LIN, with aggregates
   evaluated three ways — exact symbolic, fixed-dimension grid, and the
   paper's sampling estimators.

   Run with:  dune exec examples/gis_landuse.exe *)

open Scdb_gis
module Rng = Scdb_rng.Rng

let () =
  let rng = Rng.create 7 in
  let extent = 9.0 in
  let inst = Synth.land_use_instance rng ~extent in
  let schema = Synth.land_use_schema in
  Format.printf "schema: %a@.@." Schema.pp schema;

  let cfg = Convex_obs.practical_config in
  let answer label vars text =
    let query = Query.parse ~schema ~vars text in
    Printf.printf "%s\n  Q = %s\n" label text;
    (match Aggregate.volume rng inst ~free_dim:(List.length vars) (Aggregate.Grid 0.05) query with
    | Ok v -> Printf.printf "  grid (γ=0.05)    : %8.3f\n" v
    | Error e -> Printf.printf "  grid             : error (%s)\n" e);
    (match
       Aggregate.volume ~config:cfg rng inst ~free_dim:(List.length vars)
         (Aggregate.Sampling { eps = 0.3; delta = 0.3 })
         query
     with
    | Ok v -> Printf.printf "  sampling (ε=0.3) : %8.3f\n" v
    | Error e -> Printf.printf "  sampling         : error (%s)\n" e);
    print_newline ()
  in

  answer "Total parcel area" [ "x"; "y" ] "Parcels(x, y)";
  answer "Built-or-paved area (parcels or road)" [ "x"; "y" ] "Parcels(x, y) \\/ Roads(x, y)";
  answer "Dry parcel area (parcels minus lakes)" [ "x"; "y" ] "Parcels(x, y) /\\ ~Lakes(x, y)";
  answer "Footprint of terrain above elevation 1" [ "x"; "y" ]
    "exists z. Terrain(x, y, z) /\\ z >= 1";

  (* Coverage: which fraction of a viewport is water? *)
  let q = Rational.of_float in
  let window = Relation.box [| q 0.0; q 0.0 |] [| q extent; q extent |] in
  let lakes = Query.parse ~schema ~vars:[ "x"; "y" ] "Lakes(x, y)" in
  (match Aggregate.coverage rng inst ~free_dim:2 (Aggregate.Grid 0.05) ~window lakes with
  | Ok f -> Printf.printf "Water coverage of the map window: %.2f%%\n" (100.0 *. f)
  | Error e -> Printf.printf "coverage error: %s\n" e);

  (* Render the map plus a sample cloud of the dry-parcel query. *)
  let dry = Query.parse ~schema ~vars:[ "x"; "y" ] "Parcels(x, y) /\\ ~Lakes(x, y)" in
  (match Eval.compile ~config:cfg rng inst ~free_dim:2 dry with
  | Error e -> Printf.printf "compile error: %s\n" e
  | Ok obs ->
      let params = Params.make ~gamma:0.05 ~eps:0.25 ~delta:0.1 () in
      let cloud = Observable.sample_many obs rng params ~n:400 in
      let style fill = { Svg.default_style with Svg.fill } in
      let doc =
        Svg.render ~width:600 ~height:600 ~lo:[| 0.0; 0.0 |] ~hi:[| extent; extent |]
          [
            Svg.relation ~style:(style "#d9e7c5") (Instance.get_exn inst "Parcels");
            Svg.relation ~style:(style "#9ec9e8") (Instance.get_exn inst "Lakes");
            Svg.relation ~style:(style "#b8b8b8") (Instance.get_exn inst "Roads");
            Svg.points ~colour:"#c1440e" ~radius:1.5 cloud;
          ]
      in
      Svg.write_file "land_use.svg" doc;
      Printf.printf "wrote land_use.svg (map + 400 samples of the dry-parcel query)\n");

  (* AVG aggregate: mean elevation ceiling over wet parcels. *)
  let wet_terrain =
    Query.parse ~schema ~vars:[ "x"; "y"; "z" ] "Terrain(x, y, z) /\\ Lakes(x, y)"
  in
  (match
     Aggregate.average ~config:cfg rng inst ~free_dim:3 ~samples:300 wet_terrain ~f:(fun p -> p.(2))
   with
  | Ok m -> Printf.printf "Mean z over terrain above lakes (MC): %.3f\n" m
  | Error e -> Printf.printf "average error: %s\n" e)
