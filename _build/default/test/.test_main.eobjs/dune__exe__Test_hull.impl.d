test/test_hull.ml: Alcotest Array Float List Option QCheck QCheck_alcotest Relation Scdb_hull Scdb_rng Vec
