test/test_linalg.ml: Affine Alcotest Array Exact_mat Float Mat Option QCheck QCheck_alcotest Rational Scdb_rng Vec
