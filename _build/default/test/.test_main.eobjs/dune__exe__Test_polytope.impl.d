test/test_polytope.ml: Affine Alcotest Array Atom Float Fun List Mat Option Parser Printf QCheck QCheck_alcotest Rational Relation Scdb_polytope Scdb_rng Term Vec
