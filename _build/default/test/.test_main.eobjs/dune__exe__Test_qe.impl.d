test/test_qe.ml: Alcotest Atom Dnf Formula List Parser QCheck QCheck_alcotest Rational Relation Scdb_lp Scdb_polytope Scdb_qe Scdb_rng Term
