test/test_rng.ml: Alcotest Array Fun Printf Scdb_rng Vec
