test/test_constr.ml: Alcotest Atom Dnf Format Formula Fun Lexer List Option Parser QCheck QCheck_alcotest Rational Relation Scdb_qe Scdb_rng Term Vec
