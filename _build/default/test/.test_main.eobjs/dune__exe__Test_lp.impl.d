test/test_lp.ml: Alcotest Array Float Option QCheck QCheck_alcotest Rational Scdb_lp Scdb_rng Vec
