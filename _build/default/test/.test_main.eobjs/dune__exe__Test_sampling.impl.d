test/test_sampling.ml: Affine Alcotest Array Atom Float List Mat Option Printf Rational Relation Scdb_polytope Scdb_rng Scdb_sampling Term Vec
