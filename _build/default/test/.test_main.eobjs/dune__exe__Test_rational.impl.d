test/test_rational.ml: Alcotest Bigint Float Interval List QCheck QCheck_alcotest Rational
