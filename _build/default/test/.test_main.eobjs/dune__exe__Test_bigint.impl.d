test/test_bigint.ml: Alcotest Bigint List QCheck QCheck_alcotest String
