test/test_main.ml: Alcotest List Test_bigint Test_constr Test_core Test_gis Test_hull Test_linalg Test_lp Test_polytope Test_qe Test_rational Test_rng Test_sampling
